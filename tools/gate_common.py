"""Shared plumbing for the tools/check_*.py CI gates.

Every gate accepts `--json-out=FILE` and, alongside its human-readable
stdout report, writes one machine-readable result object:

    {"gate": "<script name>", "ok": true|false, "exit_code": 0|1|2,
     "thresholds": {...}, "measured": {...}}

so CI can aggregate gate outcomes without scraping logs. The object is
written on success *and* failure (exit code 2 — unusable input — writes
whatever was known at that point).
"""

import json


def add_json_out_arg(parser):
    """Registers the shared --json-out option on an argparse parser."""
    parser.add_argument(
        "--json-out", default="",
        help="write a machine-readable gate result object to this file")


def write_json_out(path, gate, ok, exit_code, thresholds, measured):
    """Writes the shared gate-result object; no-op when path is empty."""
    if not path:
        return
    payload = {
        "gate": gate,
        "ok": bool(ok),
        "exit_code": int(exit_code),
        "thresholds": thresholds,
        "measured": measured,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
