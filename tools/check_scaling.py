#!/usr/bin/env python3
"""Gate on the population scaling curve measured by bench/bench_scaling_curve.

Reads the bench's --json-out report (cells ordered by increasing N, constant
per-peer load) and fails unless:

  * wall ceiling: bootstrap + run wall time of the largest cell <=
    --max-wall-ms (default 60000 — a hard stop against the bootstrap or the
    event loop regressing to superlinear);
  * near-linear memory: between consecutive cells, peak RSS grows at most
    --max-rss-growth x the population ratio (default 1.5 — RSS must track
    N, not N^2 pairwise state; the slack absorbs the fixed baseline of the
    smaller cell, which flatters the ratio, and allocator rounding);
  * bounded ledger: the reservation ledger's live entry count at the horizon
    of the largest cell <= --max-active-pairs (default 2000000 — the ledger
    holds in-flight session links, not every pair ever touched).

Usage:
    bench_scaling_curve --ns=10000,50000 --json-out=BENCH_scale.json
    python3 tools/check_scaling.py BENCH_scale.json \
        [--max-wall-ms=60000] [--max-rss-growth=1.5] \
        [--max-active-pairs=2000000] [--json-out=FILE]

The wall ceiling is intentionally loose for noisy shared runners: the gate
exists to catch asymptotic regressions (per-join O(N) work, unbounded
per-pair state), not to certify quiet-machine numbers.
"""

import argparse
import json
import sys

from gate_common import add_json_out_arg, write_json_out

GATE = "check_scaling"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="bench_scaling_curve --json-out report")
    parser.add_argument("--max-wall-ms", type=float, default=60000,
                        help="max bootstrap+run wall ms of the largest cell "
                             "(default 60000)")
    parser.add_argument("--max-rss-growth", type=float, default=1.5,
                        help="max peak-RSS ratio between consecutive cells, "
                             "normalized by the population ratio "
                             "(default 1.5)")
    parser.add_argument("--max-active-pairs", type=int, default=2000000,
                        help="max live reservation-ledger entries at the "
                             "largest cell's horizon (default 2000000)")
    add_json_out_arg(parser)
    opts = parser.parse_args()
    thresholds = {"max_wall_ms": opts.max_wall_ms,
                  "max_rss_growth": opts.max_rss_growth,
                  "max_active_pairs": opts.max_active_pairs}

    with open(opts.report, encoding="utf-8") as fh:
        report = json.load(fh)

    cells = report.get("cells", [])
    required = ("peers", "bootstrap_ms", "run_ms", "rss_kb", "active_pairs")
    if not cells or any(key not in cell for cell in cells
                        for key in required):
        print("error: report has no complete cells — was bench_scaling_curve "
              "run with --json-out?", file=sys.stderr)
        write_json_out(opts.json_out, GATE, False, 2, thresholds,
                       {"cells": len(cells)})
        return 2
    cells = sorted(cells, key=lambda c: c["peers"])

    largest = cells[-1]
    wall_ms = largest["bootstrap_ms"] + largest["run_ms"]
    growth_ratios = []
    for prev, cur in zip(cells, cells[1:]):
        peers_ratio = cur["peers"] / prev["peers"]
        rss_ratio = cur["rss_kb"] / max(1, prev["rss_kb"])
        growth_ratios.append({"from_peers": prev["peers"],
                              "to_peers": cur["peers"],
                              "rss_ratio": rss_ratio,
                              "peers_ratio": peers_ratio,
                              "normalized": rss_ratio / peers_ratio})
    measured = {"largest_peers": largest["peers"], "wall_ms": wall_ms,
                "active_pairs": largest["active_pairs"],
                "growth": growth_ratios}

    print(f"wall: N={largest['peers']} bootstrap "
          f"{largest['bootstrap_ms']:.1f} + run {largest['run_ms']:.1f} = "
          f"{wall_ms:.1f} ms (max {opts.max_wall_ms:.0f})")
    for g in growth_ratios:
        print(f"rss: N={g['from_peers']} -> {g['to_peers']}: "
              f"{g['rss_ratio']:.2f}x RSS over {g['peers_ratio']:.1f}x peers "
              f"-> {g['normalized']:.3f}x normalized "
              f"(max {opts.max_rss_growth:.2f})")
    print(f"ledger: {largest['active_pairs']} live pairs at N="
          f"{largest['peers']} horizon (max {opts.max_active_pairs})")

    failures = []
    if wall_ms > opts.max_wall_ms:
        failures.append(f"wall {wall_ms:.1f} ms > {opts.max_wall_ms:.0f} ms "
                        f"at N={largest['peers']}")
    for g in growth_ratios:
        if g["normalized"] > opts.max_rss_growth:
            failures.append(
                f"RSS grew {g['normalized']:.3f}x faster than the population "
                f"between N={g['from_peers']} and N={g['to_peers']} "
                f"(max {opts.max_rss_growth:.2f}x)")
    if largest["active_pairs"] > opts.max_active_pairs:
        failures.append(f"ledger holds {largest['active_pairs']} live pairs "
                        f"> {opts.max_active_pairs}")

    ok = not failures
    write_json_out(opts.json_out, GATE, ok, 0 if ok else 1, thresholds,
                   measured)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not ok:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
