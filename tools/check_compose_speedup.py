#!/usr/bin/env python3
"""Gate on the compose-cache speedup measured by bench/micro_algorithms.

Reads a google-benchmark JSON report containing BM_QcsCompose and
BM_QcsComposeCached rows, pairs them by benchmark arguments, and fails if
the mean cached-vs-uncached speedup falls below the threshold (or if any
pair regresses below 1.0x, i.e. the cache made compose slower).

Usage:
    micro_algorithms --benchmark_filter='BM_QcsCompose' \
        --benchmark_format=json > bench.json
    python3 tools/check_compose_speedup.py bench.json [--min-speedup=1.5]

The threshold is deliberately below the ~2x seen on quiet machines: CI
runners are noisy and the gate exists to catch the cache being wired out
or pessimized, not to certify peak numbers.
"""

import argparse
import json
import sys


def load_pairs(report):
    plain, cached = {}, {}
    for row in report.get("benchmarks", []):
        name = row.get("name", "")
        if row.get("run_type") == "aggregate":
            continue
        args = "/".join(name.split("/")[1:])
        if name.startswith("BM_QcsComposeCached/"):
            cached[args] = row["real_time"]
        elif name.startswith("BM_QcsCompose/"):
            plain[args] = row["real_time"]
    return [(a, plain[a], cached[a]) for a in plain if a in cached]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="google-benchmark JSON report")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="minimum mean plain/cached ratio (default 1.5)")
    opts = parser.parse_args()

    with open(opts.report, encoding="utf-8") as fh:
        report = json.load(fh)

    pairs = load_pairs(report)
    if not pairs:
        print("error: no BM_QcsCompose/BM_QcsComposeCached pairs in report",
              file=sys.stderr)
        return 2

    print(f"{'args':>10} {'plain ns':>12} {'cached ns':>12} {'speedup':>9}")
    speedups = []
    slower = []
    for args, plain_ns, cached_ns in sorted(pairs):
        ratio = plain_ns / cached_ns
        speedups.append(ratio)
        if ratio < 1.0:
            slower.append(args)
        print(f"{args:>10} {plain_ns:>12.0f} {cached_ns:>12.0f} {ratio:>8.2f}x")

    mean = sum(speedups) / len(speedups)
    print(f"mean speedup over {len(speedups)} sizes: {mean:.2f}x "
          f"(threshold {opts.min_speedup:.2f}x)")

    if slower:
        print(f"FAIL: cache slower than uncached at {', '.join(slower)}",
              file=sys.stderr)
        return 1
    if mean < opts.min_speedup:
        print(f"FAIL: mean speedup {mean:.2f}x < {opts.min_speedup:.2f}x",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
