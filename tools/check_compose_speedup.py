#!/usr/bin/env python3
"""Gate on the compose-cache speedup measured by bench/micro_algorithms.

Reads a google-benchmark JSON report containing BM_QcsCompose and
BM_QcsComposeCached rows, pairs them by benchmark arguments, and fails if
the mean cached-vs-uncached speedup falls below the threshold (or if any
pair regresses below 1.0x, i.e. the cache made compose slower).

Usage:
    micro_algorithms --benchmark_filter='BM_QcsCompose' \
        --benchmark_format=json > bench.json
    python3 tools/check_compose_speedup.py bench.json [--min-speedup=1.5] \
        [--json-out=FILE]   # machine-readable gate result (gate_common.py)

The threshold is deliberately below the ~2x seen on quiet machines: CI
runners are noisy and the gate exists to catch the cache being wired out
or pessimized, not to certify peak numbers.
"""

import argparse
import json
import sys

from gate_common import add_json_out_arg, write_json_out

GATE = "check_compose_speedup"


def load_pairs(report):
    """Returns (pairs, problems): one (args, plain_ns, cached_ns) triple per
    benchmark size present on both sides, plus a human-readable list of
    everything that kept a row out of a pair — a missing counterpart or a
    row without a real_time field — each problem naming the offending
    BM_QcsCompose* row."""
    plain, cached = {}, {}
    problems = []
    for row in report.get("benchmarks", []):
        name = row.get("name", "")
        if row.get("run_type") == "aggregate":
            continue
        args = "/".join(name.split("/")[1:])
        if name.startswith("BM_QcsComposeCached/"):
            side = cached
        elif name.startswith("BM_QcsCompose/"):
            side = plain
        else:
            continue
        if "real_time" not in row:
            problems.append(f"row '{name}' has no real_time field")
            continue
        side[args] = row["real_time"]
    for args in sorted(plain.keys() | cached.keys()):
        if args not in cached:
            problems.append(
                f"row 'BM_QcsCompose/{args}' has no matching "
                f"'BM_QcsComposeCached/{args}' row")
        elif args not in plain:
            problems.append(
                f"row 'BM_QcsComposeCached/{args}' has no matching "
                f"'BM_QcsCompose/{args}' row")
    pairs = [(a, plain[a], cached[a]) for a in plain if a in cached]
    return pairs, problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="google-benchmark JSON report")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="minimum mean plain/cached ratio (default 1.5)")
    add_json_out_arg(parser)
    opts = parser.parse_args()
    thresholds = {"min_speedup": opts.min_speedup}

    with open(opts.report, encoding="utf-8") as fh:
        report = json.load(fh)

    pairs, problems = load_pairs(report)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        print("error: the report is missing BM_QcsCompose* rows — was "
              "micro_algorithms run with "
              "--benchmark_filter='BM_QcsCompose'?", file=sys.stderr)
        write_json_out(opts.json_out, GATE, False, 2, thresholds,
                       {"problems": problems})
        return 2
    if not pairs:
        print("error: no BM_QcsCompose/BM_QcsComposeCached pairs in report",
              file=sys.stderr)
        write_json_out(opts.json_out, GATE, False, 2, thresholds, {})
        return 2

    print(f"{'args':>10} {'plain ns':>12} {'cached ns':>12} {'speedup':>9}")
    speedups = []
    slower = []
    for args, plain_ns, cached_ns in sorted(pairs):
        ratio = plain_ns / cached_ns
        speedups.append(ratio)
        if ratio < 1.0:
            slower.append(args)
        print(f"{args:>10} {plain_ns:>12.0f} {cached_ns:>12.0f} {ratio:>8.2f}x")

    mean = sum(speedups) / len(speedups)
    print(f"mean speedup over {len(speedups)} sizes: {mean:.2f}x "
          f"(threshold {opts.min_speedup:.2f}x)")

    ok = not slower and mean >= opts.min_speedup
    write_json_out(opts.json_out, GATE, ok, 0 if ok else 1, thresholds,
                   {"mean_speedup": mean, "cells": len(speedups),
                    "regressed": slower})
    if slower:
        print(f"FAIL: cache slower than uncached at {', '.join(slower)}",
              file=sys.stderr)
        return 1
    if mean < opts.min_speedup:
        print(f"FAIL: mean speedup {mean:.2f}x < {opts.min_speedup:.2f}x",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
