#!/usr/bin/env python3
"""Gate on the serving-mode throughput measured by
bench/bench_serve_throughput.

Reads the bench's --json-out report and fails unless, on every thread
count:

  * QPS floor: sustained compose+select throughput >= --min-qps (default
    5000 — intentionally loose for noisy shared runners; the gate exists
    to catch the hot path falling off a cliff, not to certify
    quiet-machine numbers);
  * zero steady-state allocations: the operator-new hook counted at most
    --max-allocs (default 0) heap allocations across all shard threads
    between the warmup barrier and the last counted request. This is the
    structural property the engine refactor pins: a warm, frozen-clock
    shard serves entirely out of grow-only scratch, the discovery cache,
    and the neighbor tables;
  * sanity: every cell actually served requests and succeeded on
    >= --min-success of them (default 0.5 — a misbuilt world serves
    nothing but still posts a huge QPS).

Usage:
    bench_serve_throughput --json-out=BENCH_serve.json
    python3 tools/check_serve_throughput.py BENCH_serve.json \
        [--min-qps=5000] [--max-allocs=0] [--min-success=0.5] \
        [--json-out=FILE]
"""

import argparse
import json
import sys

from gate_common import add_json_out_arg, write_json_out

GATE = "check_serve_throughput"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="bench_serve_throughput --json-out "
                        "report")
    parser.add_argument("--min-qps", type=float, default=5000,
                        help="QPS floor per thread-count cell (default 5000)")
    parser.add_argument("--max-allocs", type=int, default=0,
                        help="max steady-state heap allocations per cell "
                             "(default 0)")
    parser.add_argument("--min-success", type=float, default=0.5,
                        help="min success ratio per cell (default 0.5)")
    add_json_out_arg(parser)
    opts = parser.parse_args()
    thresholds = {"min_qps": opts.min_qps, "max_allocs": opts.max_allocs,
                  "min_success": opts.min_success}

    with open(opts.report, encoding="utf-8") as fh:
        report = json.load(fh)

    cells = report.get("cells", [])
    if not cells:
        print("error: report has no cells — was bench_serve_throughput run "
              "with --json-out?", file=sys.stderr)
        write_json_out(opts.json_out, GATE, False, 2, thresholds,
                       {"cells": 0})
        return 2
    required = ("threads", "qps", "requests", "success_ratio",
                "steady_allocs")
    missing = sorted({key for cell in cells for key in required
                      if key not in cell})
    if missing:
        print(f"error: report cells are missing field(s) "
              f"{', '.join(missing)}", file=sys.stderr)
        write_json_out(opts.json_out, GATE, False, 2, thresholds,
                       {"missing": missing})
        return 2

    failures = []
    measured = {"cells": []}
    for cell in cells:
        threads = cell["threads"]
        measured["cells"].append(
            {"threads": threads, "qps": cell["qps"],
             "success_ratio": cell["success_ratio"],
             "steady_allocs": cell["steady_allocs"],
             "p50_us": cell.get("p50_us"), "p99_us": cell.get("p99_us")})
        print(f"threads={threads}: {cell['qps']:.0f} QPS over "
              f"{cell['requests']} requests, psi={cell['success_ratio']:.4f},"
              f" p50={cell.get('p50_us', 0):.1f}us "
              f"p99={cell.get('p99_us', 0):.1f}us, "
              f"steady allocs={cell['steady_allocs']}")
        if cell["requests"] <= 0:
            failures.append(f"threads={threads}: no requests served")
        if cell["qps"] < opts.min_qps:
            failures.append(f"threads={threads}: {cell['qps']:.0f} QPS < "
                            f"floor {opts.min_qps:.0f}")
        if cell["steady_allocs"] > opts.max_allocs:
            failures.append(f"threads={threads}: {cell['steady_allocs']} "
                            f"steady-state allocation(s) > "
                            f"{opts.max_allocs} — the hot path regressed")
        if cell["success_ratio"] < opts.min_success:
            failures.append(f"threads={threads}: success ratio "
                            f"{cell['success_ratio']:.3f} < "
                            f"{opts.min_success:.2f}")

    ok = not failures
    write_json_out(opts.json_out, GATE, ok, 0 if ok else 1, thresholds,
                   measured)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not ok:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
