#!/usr/bin/env python3
"""Gate on the event-engine speedup measured by bench/bench_sim_throughput.

Reads a google-benchmark JSON report containing BM_EventQueue{Hold,
CancelHeavy} rows for the slab/indexed-heap engine and their
BM_EventQueueLegacy* counterparts (the pre-refactor binary-heap engine kept
in bench/legacy_event_queue.hpp), pairs them by shape and size, and fails if
the mean legacy-vs-new throughput ratio falls below the threshold (or if any
pair regresses below 1.0x, i.e. the new engine is slower). BM_GridWallclock
rows, when present, are printed as whole-simulation context but never gated
— they measure the entire grid, not the engine.

Usage:
    bench_sim_throughput --benchmark_filter='BM_(EventQueue|GridWallclock)' \
        --benchmark_format=json > BENCH_sim.json
    python3 tools/check_sim_speedup.py BENCH_sim.json [--min-speedup=1.3] \
        [--json-out=FILE]   # machine-readable gate result (gate_common.py)

The threshold sits well below the speedups seen on quiet machines: CI
runners are noisy and the gate exists to catch the engine being pessimized,
not to certify peak numbers.
"""

import argparse
import json
import sys

from gate_common import add_json_out_arg, write_json_out

GATE = "check_sim_speedup"
SHAPES = ("Hold", "CancelHeavy")


def load_pairs(report):
    """Returns (pairs, wallclock, problems): one (label, legacy_ns, new_ns)
    triple per shape/size present on both sides, the BM_GridWallclock rows
    for context, and a list of everything that kept a row out of a pair."""
    new, legacy = {}, {}
    wallclock = []
    problems = []
    for row in report.get("benchmarks", []):
        name = row.get("name", "")
        if row.get("run_type") == "aggregate":
            continue
        if name.startswith("BM_GridWallclock/"):
            wallclock.append(row)
            continue
        for shape in SHAPES:
            legacy_prefix = f"BM_EventQueueLegacy{shape}/"
            new_prefix = f"BM_EventQueue{shape}/"
            if name.startswith(legacy_prefix):
                side, key = legacy, f"{shape}/{name[len(legacy_prefix):]}"
            elif name.startswith(new_prefix):
                side, key = new, f"{shape}/{name[len(new_prefix):]}"
            else:
                continue
            if "real_time" not in row:
                problems.append(f"row '{name}' has no real_time field")
            else:
                side[key] = row["real_time"]
            break
    for key in sorted(new.keys() | legacy.keys()):
        if key not in legacy:
            problems.append(f"'{key}' has no BM_EventQueueLegacy* counterpart")
        elif key not in new:
            problems.append(f"'{key}' has no BM_EventQueue* counterpart")
    pairs = [(k, legacy[k], new[k]) for k in new if k in legacy]
    return pairs, wallclock, problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="google-benchmark JSON report")
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="minimum mean legacy/new ratio (default 1.3)")
    add_json_out_arg(parser)
    opts = parser.parse_args()
    thresholds = {"min_speedup": opts.min_speedup}

    with open(opts.report, encoding="utf-8") as fh:
        report = json.load(fh)

    pairs, wallclock, problems = load_pairs(report)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        print("error: the report is missing BM_EventQueue* rows — was "
              "bench_sim_throughput run with "
              "--benchmark_filter='BM_(EventQueue|GridWallclock)'?",
              file=sys.stderr)
        write_json_out(opts.json_out, GATE, False, 2, thresholds,
                       {"problems": problems})
        return 2
    if not pairs:
        print("error: no BM_EventQueue*/BM_EventQueueLegacy* pairs in report",
              file=sys.stderr)
        write_json_out(opts.json_out, GATE, False, 2, thresholds, {})
        return 2

    print(f"{'shape/size':>20} {'legacy ns':>12} {'new ns':>12} {'speedup':>9}")
    speedups = []
    slower = []
    for key, legacy_ns, new_ns in sorted(pairs):
        ratio = legacy_ns / new_ns
        speedups.append(ratio)
        if ratio < 1.0:
            slower.append(key)
        print(f"{key:>20} {legacy_ns:>12.0f} {new_ns:>12.0f} {ratio:>8.2f}x")

    mean = sum(speedups) / len(speedups)
    print(f"mean speedup over {len(speedups)} cells: {mean:.2f}x "
          f"(threshold {opts.min_speedup:.2f}x)")

    for row in wallclock:
        # google-benchmark emits user counters under "counters" in newer
        # releases and as top-level row keys in older ones.
        eps = (row.get("counters", {}).get("events_per_sec")
               or row.get("events_per_sec"))
        eps_str = f", {eps:,.0f} events/sec" if eps else ""
        print(f"context: {row['name']} = {row.get('real_time', 0):,.1f} "
              f"{row.get('time_unit', 'ns')}{eps_str}")

    ok = not slower and mean >= opts.min_speedup
    write_json_out(opts.json_out, GATE, ok, 0 if ok else 1, thresholds,
                   {"mean_speedup": mean, "cells": len(speedups),
                    "regressed": slower})
    if slower:
        print(f"FAIL: new engine slower than legacy at {', '.join(slower)}",
              file=sys.stderr)
        return 1
    if mean < opts.min_speedup:
        print(f"FAIL: mean speedup {mean:.2f}x < {opts.min_speedup:.2f}x",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
