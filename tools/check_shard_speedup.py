#!/usr/bin/env python3
"""Gate on the K-way sharded-simulation speedup from bench_sim_throughput.

Reads a google-benchmark JSON report containing BM_ShardWorld/K rows (the
message-plane workload on sim::ShardRuntime at K shards), pairs the K=1 and
K=4 rows, and fails if real_time(K=1) / real_time(K=4) falls below the
threshold. The workload's output digest is identical for every K (the
golden-digest tests pin that), so the rows differ only in wall clock — this
gate certifies that the parallel runtime actually buys time.

Hosts with fewer than 4 hardware threads (read from the row's hw_threads
counter, falling back to the report context's num_cpus) cannot express a
4-way speedup; the gate then reports the measurement, marks itself skipped,
and exits 0 — CI's 4-vCPU runners are where the threshold binds.

Usage:
    bench_sim_throughput --benchmark_filter='BM_ShardWorld' \
        --benchmark_format=json > BENCH_shard.json
    python3 tools/check_shard_speedup.py BENCH_shard.json \
        [--min-speedup=1.8] [--json-out=FILE]
"""

import argparse
import json
import sys

from gate_common import add_json_out_arg, write_json_out

GATE = "check_shard_speedup"
BASE_K = 1
PAR_K = 4


def load_rows(report):
    """Returns ({K: row}, problems) for the BM_ShardWorld/K rows."""
    rows = {}
    problems = []
    for row in report.get("benchmarks", []):
        name = row.get("name", "")
        if row.get("run_type") == "aggregate":
            continue
        if not name.startswith("BM_ShardWorld/"):
            continue
        try:
            k = int(name.split("/")[1])
        except (IndexError, ValueError):
            problems.append(f"cannot parse shard count from row '{name}'")
            continue
        if "real_time" not in row:
            problems.append(f"row '{name}' has no real_time field")
            continue
        rows[k] = row
    return rows, problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="google-benchmark JSON report")
    parser.add_argument("--min-speedup", type=float, default=1.8,
                        help="minimum K=1 / K=4 wall ratio (default 1.8)")
    parser.add_argument("--min-threads", type=int, default=4,
                        help="hardware threads below which the gate skips "
                             "instead of failing (default 4)")
    add_json_out_arg(parser)
    opts = parser.parse_args()
    thresholds = {"min_speedup": opts.min_speedup,
                  "min_threads": opts.min_threads}

    with open(opts.report, encoding="utf-8") as fh:
        report = json.load(fh)

    rows, problems = load_rows(report)
    for k in (BASE_K, PAR_K):
        if k not in rows:
            problems.append(f"no BM_ShardWorld/{k} row in the report")
    if problems:
        for p in problems:
            print(f"check_shard_speedup: {p}", file=sys.stderr)
        write_json_out(opts.json_out, GATE, False, 2, thresholds,
                       {"problems": problems})
        return 2

    base, par = rows[BASE_K], rows[PAR_K]
    speedup = base["real_time"] / par["real_time"]
    hw = par.get("hw_threads") or report.get("context", {}).get("num_cpus", 0)
    measured = {
        "hw_threads": hw,
        f"real_time_k{BASE_K}": base["real_time"],
        f"real_time_k{PAR_K}": par["real_time"],
        "speedup": speedup,
        "idle_fraction_k4": par.get("idle_fraction"),
        "shard_balance_k4": par.get("shard_balance"),
        "events_per_sec_k1": base.get("events_per_sec"),
        "events_per_sec_k4": par.get("events_per_sec"),
        "skipped": False,
    }

    print(f"sharded simulation: K={BASE_K} {base['real_time']:.1f} "
          f"{base.get('time_unit', 'ns')}, K={PAR_K} {par['real_time']:.1f} "
          f"{par.get('time_unit', 'ns')} -> speedup {speedup:.2f}x "
          f"(need >= {opts.min_speedup:.2f}x, host has {hw:.0f} hw threads)")
    if par.get("idle_fraction") is not None:
        print(f"  K={PAR_K} barrier idle fraction "
              f"{par['idle_fraction']:.3f}, shard balance "
              f"{par.get('shard_balance', 0):.3f}")

    if hw < opts.min_threads:
        measured["skipped"] = True
        print(f"  SKIP: host has {hw:.0f} < {opts.min_threads} hardware "
              f"threads; a {PAR_K}-way speedup is not expressible here")
        write_json_out(opts.json_out, GATE, True, 0, thresholds, measured)
        return 0

    ok = speedup >= opts.min_speedup
    if not ok:
        print(f"  FAIL: speedup {speedup:.2f}x below the "
              f"{opts.min_speedup:.2f}x floor", file=sys.stderr)
    else:
        print("  OK")
    write_json_out(opts.json_out, GATE, ok, 0 if ok else 1, thresholds,
                   measured)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
