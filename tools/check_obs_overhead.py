#!/usr/bin/env python3
"""Gate on the observability overhead budget measured by
bench/bench_obs_overhead.

Reads the bench's --json-out report and fails unless:

  * wall overhead: obs-on wall time <= --max-overhead x obs-off (default
    1.10 — the pipeline must be cheap enough to leave on);
  * bounded memory: the tracer's peak resident span count at 10x the
    request volume <= --max-memory-growth x the 1x peak (default 2.0 —
    resident obs memory tracks *active* requests, not run length).

Usage:
    bench_obs_overhead --json-out=BENCH_obs.json
    python3 tools/check_obs_overhead.py BENCH_obs.json \
        [--max-overhead=1.10] [--max-memory-growth=2.0] [--json-out=FILE]

The wall threshold is intentionally loose for noisy shared runners: the
gate exists to catch the pipeline growing a hot-path regression (per-span
allocation, unsampled serialization), not to certify quiet-machine numbers.
"""

import argparse
import json
import sys

from gate_common import add_json_out_arg, write_json_out

GATE = "check_obs_overhead"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="bench_obs_overhead --json-out report")
    parser.add_argument("--max-overhead", type=float, default=1.10,
                        help="max obs-on/obs-off wall ratio (default 1.10)")
    parser.add_argument("--max-memory-growth", type=float, default=2.0,
                        help="max 10x/1x peak resident span ratio "
                             "(default 2.0)")
    add_json_out_arg(parser)
    opts = parser.parse_args()
    thresholds = {"max_overhead": opts.max_overhead,
                  "max_memory_growth": opts.max_memory_growth}

    with open(opts.report, encoding="utf-8") as fh:
        report = json.load(fh)

    wall = report.get("wall", {})
    memory = report.get("memory", {})
    missing = [key for section, key in
               ((wall, "overhead"), (memory, "growth"),
                (wall, "off_ms"), (wall, "on_ms"),
                (memory, "high_water_1x"), (memory, "high_water_10x"))
               if key not in section]
    if missing:
        print(f"error: report is missing field(s) {', '.join(missing)} — "
              "was bench_obs_overhead run with --json-out?", file=sys.stderr)
        write_json_out(opts.json_out, GATE, False, 2, thresholds,
                       {"missing": missing})
        return 2

    overhead = wall["overhead"]
    growth = memory["growth"]
    measured = {"overhead": overhead, "growth": growth,
                "off_ms": wall["off_ms"], "on_ms": wall["on_ms"],
                "high_water_1x": memory["high_water_1x"],
                "high_water_10x": memory["high_water_10x"]}

    print(f"wall: obs-off {wall['off_ms']:.1f} ms, "
          f"obs-on {wall['on_ms']:.1f} ms -> {overhead:.3f}x "
          f"(max {opts.max_overhead:.2f}x)")
    print(f"memory: peak resident spans {memory['high_water_1x']} at 1x, "
          f"{memory['high_water_10x']} at 10x requests -> {growth:.3f}x "
          f"(max {opts.max_memory_growth:.2f}x)")
    if memory.get("requests_10x", 0):
        print(f"context: {memory.get('requests_1x', '?')} -> "
              f"{memory['requests_10x']} requests, "
              f"{report.get('trace', {}).get('spans_emitted_1x', '?')} spans "
              f"emitted at 1x (sample 1-in-"
              f"{report.get('trace_sample', '?')})")

    failures = []
    if overhead > opts.max_overhead:
        failures.append(f"wall overhead {overhead:.3f}x > "
                        f"{opts.max_overhead:.2f}x")
    if growth > opts.max_memory_growth:
        failures.append(f"peak-span growth {growth:.3f}x > "
                        f"{opts.max_memory_growth:.2f}x")

    ok = not failures
    write_json_out(opts.json_out, GATE, ok, 0 if ok else 1, thresholds,
                   measured)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not ok:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
