#!/usr/bin/env python3
"""Gate on the discovery-backend ablation measured by bench/ablation_discovery.

Reads the bench's --json-out report (directory/dht cell pairs over a
population x churn sweep) and fails unless, for every dht cell:

  * completion: the cell served requests, answered range scans, and lost
    none of them (the sweep runs fault-free, so failed_scans must be 0);
  * scan cost: routing hops per range scan <= --hops-slope * log2(N) +
    --hops-span (defaults 4 and 140 — the O(log N) first leg plus a bounded
    on-arc span term; a per-bucket O(log N) regression blows through this
    at any population);
  * psi parity: psi(dht) >= psi(directory) - --psi-tolerance for the same
    (N, churn) cell (default 0.2 — predicate pushdown may shift individual
    outcomes but must not collapse the success ratio);
  * exactness: the quantization false-positive rate (dropped by the client
    re-check) <= --max-fp-rate (default 0.9 — the scan must stay a useful
    filter, not a full-table transfer).

Usage:
    ablation_discovery --json-out=BENCH_discovery.json
    python3 tools/check_discovery.py BENCH_discovery.json \
        [--hops-slope=4] [--hops-span=140] [--psi-tolerance=0.2] \
        [--max-fp-rate=0.9] [--json-out=FILE]
"""

import argparse
import json
import math
import sys

from gate_common import add_json_out_arg, write_json_out

GATE = "check_discovery"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="ablation_discovery --json-out report")
    parser.add_argument("--hops-slope", type=float, default=4.0,
                        help="log2(N) coefficient of the per-scan hop bound "
                             "(default 4)")
    parser.add_argument("--hops-span", type=float, default=140.0,
                        help="constant span term of the per-scan hop bound "
                             "(default 140)")
    parser.add_argument("--psi-tolerance", type=float, default=0.2,
                        help="max psi shortfall of dht vs the directory "
                             "baseline per cell (default 0.2)")
    parser.add_argument("--max-fp-rate", type=float, default=0.9,
                        help="max quantization false-positive rate "
                             "(default 0.9)")
    add_json_out_arg(parser)
    opts = parser.parse_args()
    thresholds = {"hops_slope": opts.hops_slope,
                  "hops_span": opts.hops_span,
                  "psi_tolerance": opts.psi_tolerance,
                  "max_fp_rate": opts.max_fp_rate}

    try:
        with open(opts.report, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"unusable report {opts.report}: {err}")
        write_json_out(opts.json_out, GATE, False, 2, thresholds, {})
        return 2

    cells = report.get("cells", [])
    directory = {(c["peers"], c["churn"]): c for c in cells
                 if c.get("backend") == "directory"}
    dht = [c for c in cells if c.get("backend") == "dht"]
    if not dht or not directory:
        print("report holds no directory/dht cell pair")
        write_json_out(opts.json_out, GATE, False, 2, thresholds, {})
        return 2

    ok = True
    measured = {"cells": []}
    for cell in dht:
        n, churn = cell["peers"], cell["churn"]
        label = f"N={n} churn={churn:g}"
        scans = cell.get("scans", 0)
        scanned = cell.get("scanned_postings", 0)
        hops_per_scan = cell.get("scan_hops", 0) / scans if scans else 0.0
        fp_rate = cell.get("false_positives", 0) / scanned if scanned else 0.0
        bound = opts.hops_slope * math.log2(n) + opts.hops_span

        completed = (cell.get("requests", 0) > 0 and scans > 0
                     and cell.get("failed_scans", 0) == 0)
        hops_fine = hops_per_scan <= bound
        fp_fine = fp_rate <= opts.max_fp_rate

        base = directory.get((n, churn))
        psi_floor = (base["psi"] - opts.psi_tolerance) if base else None
        psi_fine = base is not None and cell["psi"] >= psi_floor

        for cond, what in ((completed, "completed fault-free"),
                           (hops_fine,
                            f"hops/scan {hops_per_scan:.2f} <= {bound:.1f}"),
                           (fp_fine,
                            f"fp rate {fp_rate:.3f} <= {opts.max_fp_rate}"),
                           (psi_fine,
                            f"psi {cell['psi']:.3f} >= "
                            f"{psi_floor if psi_floor is not None else 'n/a'}")):
            print(f"{'PASS' if cond else 'FAIL'}  {label}: {what}")
            ok = ok and cond
        measured["cells"].append({
            "peers": n, "churn": churn, "psi": cell["psi"],
            "hops_per_scan": round(hops_per_scan, 3),
            "fp_rate": round(fp_rate, 4),
            "failed_scans": cell.get("failed_scans", 0)})

    print(f"\n{GATE}: {'OK' if ok else 'FAILED'}")
    write_json_out(opts.json_out, GATE, ok, 0 if ok else 1, thresholds,
                   measured)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
