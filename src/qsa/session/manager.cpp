#include "qsa/session/manager.hpp"

#include <algorithm>

#include "qsa/util/expects.hpp"

namespace qsa::session {
namespace {

/// Participants of a session: hosts plus requester, deduplicated.
std::vector<net::PeerId> participants_of(const Session& s) {
  std::vector<net::PeerId> participants = s.hosts;
  participants.push_back(s.requester);
  std::sort(participants.begin(), participants.end());
  participants.erase(std::unique(participants.begin(), participants.end()),
                     participants.end());
  return participants;
}

}  // namespace

SessionManager::SessionManager(sim::Simulator& simulator,
                               net::PeerTable& peers, net::NetworkModel& net,
                               const registry::ServiceCatalog& catalog)
    : simulator_(simulator), peers_(peers), net_(net), catalog_(catalog) {}

void SessionManager::set_observability(obs::Tracer* tracer,
                                       obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  if (metrics == nullptr) {
    active_gauge_ = nullptr;
    duration_hist_ = nullptr;
    time_to_failure_hist_ = nullptr;
    recovery_salvaged_hist_ = nullptr;
    provider_load_hist_ = nullptr;
    for (auto& [svc, sl] : service_load_) {
      sl.max_gauge = nullptr;
      sl.mean_gauge = nullptr;
    }
    return;
  }
  active_gauge_ = &metrics->gauge("session.active");
  duration_hist_ = &metrics->histogram("session.duration_ms");
  time_to_failure_hist_ = &metrics->histogram("session.time_to_failure_ms");
  recovery_salvaged_hist_ =
      &metrics->histogram("session.recovery_salvaged_ms");
  // provider.load* names are registered lazily on the first tracked
  // admission, so untracked runs export no concentration instruments.
}

std::uint32_t SessionManager::provider_load(net::PeerId peer) const {
  auto it = hosted_load_.find(peer);
  return it == hosted_load_.end() ? 0 : it->second;
}

namespace {

std::uint64_t concentration_key(registry::ServiceId svc,
                                net::PeerId host) noexcept {
  return (static_cast<std::uint64_t>(svc) << 32) | host;
}

}  // namespace

qos::ResourceVector SessionManager::epoch_reservations(
    net::PeerId peer) const {
  const auto it = epoch_ledger_.find(peer);
  if (it == epoch_ledger_.end() ||
      it->second.epoch != peers_.clock().epoch(simulator_.now())) {
    return qos::ResourceVector::zeros(peers_.schema().kinds());
  }
  return it->second.reserved;
}

void SessionManager::track_host_gain(net::PeerId host,
                                     registry::InstanceId instance) {
  const std::uint32_t load = ++hosted_load_[host];
  if (load > peak_provider_load_) peak_provider_load_ = load;
  const registry::ServiceId svc = catalog_.instance(instance).service;
  const std::uint32_t conc = ++service_host_load_[concentration_key(svc, host)];
  if (conc > peak_concentration_) peak_concentration_ = conc;
  const std::uint32_t active = ++service_active_[svc];
  concentration_sum_ += static_cast<double>(conc) / active;
  ++concentration_admissions_;
  detail::EpochLedger& led = epoch_ledger_[host];
  const std::int64_t epoch = peers_.clock().epoch(simulator_.now());
  if (led.epoch != epoch) {
    led.epoch = epoch;
    led.reserved = qos::ResourceVector::zeros(peers_.schema().kinds());
  }
  led.reserved += catalog_.instance(instance).resources;
  if (metrics_ == nullptr) return;
  if (provider_load_hist_ == nullptr) {
    provider_load_hist_ = &metrics_->histogram("provider.load");
  }
  provider_load_hist_->observe(static_cast<double>(load));
  detail::ServiceLoad& sl = service_load_[svc];
  if (sl.max_gauge == nullptr) {
    const std::string base = "provider.load." + std::to_string(svc);
    sl.max_gauge = &metrics_->gauge(base + ".max");
    sl.mean_gauge = &metrics_->gauge(base + ".mean");
  }
  sl.sum += static_cast<double>(load);
  ++sl.observations;
  sl.max_gauge->set(static_cast<double>(load));  // gauge keeps the high water
  sl.mean_gauge->set(sl.sum / static_cast<double>(sl.observations));
}

void SessionManager::track_host_loss(net::PeerId host,
                                     registry::InstanceId instance) {
  auto it = hosted_load_.find(host);
  if (it == hosted_load_.end()) return;
  if (--it->second == 0) hosted_load_.erase(host);
  const registry::ServiceId svc = catalog_.instance(instance).service;
  const std::uint64_t ckey = concentration_key(svc, host);
  auto cit = service_host_load_.find(ckey);
  if (cit != service_host_load_.end() && --cit->second == 0) {
    service_host_load_.erase(ckey);
  }
  auto sit = service_active_.find(svc);
  if (sit != service_active_.end() && --sit->second == 0) {
    service_active_.erase(svc);
  }
  // A release inside the epoch that booked the reservation cancels it in
  // the ledger; releases of older sessions free capacity probes also can't
  // see yet, which we conservatively ignore.
  auto lit = epoch_ledger_.find(host);
  if (lit != epoch_ledger_.end() &&
      lit->second.epoch == peers_.clock().epoch(simulator_.now())) {
    lit->second.reserved -= catalog_.instance(instance).resources;
    lit->second.reserved.clamp_negative_zero();
  }
}

void SessionManager::index(const Session& s) {
  for (net::PeerId p : participants_of(s)) by_peer_[p].push_back(s.id);
}

void SessionManager::unindex(const Session& s) {
  for (net::PeerId p : participants_of(s)) {
    if (auto bit = by_peer_.find(p); bit != by_peer_.end()) {
      auto& v = bit->second;
      if (auto vit = std::find(v.begin(), v.end(), s.id); vit != v.end()) {
        *vit = v.back();
        v.pop_back();
      }
      if (v.empty()) by_peer_.erase(bit);
    }
  }
}

core::FailureCause SessionManager::start_session(
    const core::ServiceRequest& request, const core::AggregationPlan& plan,
    net::PeerId* blamed) {
  QSA_EXPECTS(plan.ok());
  QSA_EXPECTS(plan.instances.size() == plan.hosts.size());
  QSA_EXPECTS(!plan.instances.empty());

  const sim::SimTime now = simulator_.now();
  Session s;
  s.id = next_id_++;
  s.requester = request.requester;
  s.instances = plan.instances;
  s.hosts = plan.hosts;
  s.start = now;
  s.end = now + request.session_duration;

  // All-or-nothing admission: reserve host resources, then link bandwidth,
  // rolling everything back on the first shortage.
  bool ok = true;
  net::PeerId blame = net::kNoPeer;
  for (std::size_t i = 0; i < plan.instances.size() && ok; ++i) {
    const auto& inst = catalog_.instance(plan.instances[i]);
    if (peers_.try_reserve(plan.hosts[i], inst.resources, now)) {
      s.host_reservations.push_back(
          HostReservation{plan.hosts[i], inst.resources});
    } else {
      ok = false;
      blame = plan.hosts[i];
    }
  }
  // Aggregation-flow edges: producer i feeds consumer i+1; the sink (last
  // instance) feeds the requester's host.
  for (std::size_t i = 0; i < plan.instances.size() && ok; ++i) {
    const auto& inst = catalog_.instance(plan.instances[i]);
    const net::PeerId from = plan.hosts[i];
    const net::PeerId to = i + 1 < plan.hosts.size() ? plan.hosts[i + 1]
                                                     : request.requester;
    if (net_.try_reserve(from, to, inst.bandwidth_kbps, now)) {
      s.link_reservations.push_back(
          LinkReservation{from, to, inst.bandwidth_kbps});
    } else {
      ok = false;
      blame = from;
    }
  }
  if (!ok) {
    release_all(s);
    ++stats_.rejected;
    if (blamed != nullptr) *blamed = blame;
    if (demand_) {
      DemandSignal sig;
      sig.kind = DemandSignal::Kind::kRejected;
      sig.instances = plan.instances;
      sig.hosts = plan.hosts;
      sig.blamed = blame;
      demand_(sig);
    }
    return core::FailureCause::kAdmission;
  }

  index(s);
  const SessionId id = s.id;
  s.end_event = simulator_.schedule_at(
      s.end, [this, id] { finish_session(id, core::FailureCause::kNone); });
  if (tracer_ != nullptr && request.trace_id != 0) {
    s.trace_id = request.trace_id;
    s.trace_span = tracer_->begin(s.trace_id, obs::Phase::kRunning, now);
    tracer_->annotate(s.trace_span, "hosts",
                      static_cast<double>(s.hosts.size()));
  }
  sessions_.emplace(id, std::move(s));
  ++stats_.admitted;
  if (active_gauge_ != nullptr) {
    active_gauge_->set(static_cast<double>(sessions_.size()));
  }
  if (track_load_) {
    for (std::size_t i = 0; i < plan.hosts.size(); ++i) {
      track_host_gain(plan.hosts[i], plan.instances[i]);
    }
  }
  if (demand_) {
    DemandSignal sig;
    sig.kind = DemandSignal::Kind::kAdmitted;
    sig.instances = plan.instances;
    sig.hosts = plan.hosts;
    demand_(sig);
  }
  return core::FailureCause::kNone;
}

void SessionManager::release_all(Session& s) {
  const sim::SimTime now = simulator_.now();
  for (const auto& hr : s.host_reservations) {
    peers_.release(hr.peer, hr.resources, now);  // no-op on departed peers
  }
  for (const auto& lr : s.link_reservations) {
    net_.release(lr.from, lr.to, lr.kbps, now);
  }
  s.host_reservations.clear();
  s.link_reservations.clear();
}

void SessionManager::finish_session(SessionId id, core::FailureCause cause) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session s = std::move(it->second);
  sessions_.erase(it);

  simulator_.cancel(s.end_event);
  release_all(s);
  unindex(s);

  const sim::SimTime now = simulator_.now();
  const bool completed = cause == core::FailureCause::kNone;
  if (completed) {
    ++stats_.completed;
    if (duration_hist_ != nullptr) {
      duration_hist_->observe(static_cast<double>((now - s.start).as_millis()));
    }
  } else {
    ++stats_.aborted;
    if (time_to_failure_hist_ != nullptr) {
      time_to_failure_hist_->observe(
          static_cast<double>((now - s.start).as_millis()));
    }
  }
  if (tracer_ != nullptr && s.trace_id != 0) {
    tracer_->end(s.trace_span, now,
                 completed ? obs::SpanStatus::kOk : obs::SpanStatus::kFail,
                 completed ? std::string_view{} : core::to_string(cause));
    if (completed) {
      tracer_->instant(s.trace_id, obs::Phase::kTeardown, now,
                       obs::SpanStatus::kOk);
    }
  }
  if (track_load_) {
    for (std::size_t i = 0; i < s.hosts.size(); ++i) {
      track_host_loss(s.hosts[i], s.instances[i]);
    }
  }
  if (outcome_) outcome_(s, cause);
  if (demand_) {
    DemandSignal sig;
    sig.kind = DemandSignal::Kind::kTeardown;
    sig.instances = s.instances;
    sig.hosts = s.hosts;
    sig.cause = cause;
    demand_(sig);
  }
}

bool SessionManager::try_recover(SessionId id, net::PeerId failed) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = it->second;

  const sim::SimTime now = simulator_.now();
  obs::Tracer::SpanId span = obs::Tracer::kNoSpan;
  if (tracer_ != nullptr && s.trace_id != 0) {
    span = tracer_->begin(s.trace_id, obs::Phase::kRecovery, now);
  }
  const bool repaired = recover_hosts(s, failed);
  if (repaired) {
    ++stats_.recovered;
    if (recovery_salvaged_hist_ != nullptr) {
      // Session runtime the repair saved from abortion.
      recovery_salvaged_hist_->observe(
          static_cast<double>((s.end - now).as_millis()));
    }
  }
  if (span != obs::Tracer::kNoSpan) {
    tracer_->end(span, simulator_.now(),
                 repaired ? obs::SpanStatus::kOk : obs::SpanStatus::kFail,
                 "departure");
  }
  return repaired;
}

bool SessionManager::reservation_rtt(net::PeerId a, net::PeerId b) {
  if (faults_ == nullptr || !faults_->enabled()) return true;
  const int budget = faults_->config().max_retries;
  for (int send = 0; send <= budget; ++send) {
    if (faults_->attempt(fault::Channel::kReservation, a, b).delivered) {
      return true;
    }
    // The round-trip timed out; back off before asking again.
    if (send < budget) {
      (void)faults_->backoff(fault::Channel::kReservation, send + 1);
    }
  }
  return false;
}

bool SessionManager::recover_hosts(Session& s, net::PeerId failed) {
  if (s.requester == failed) return false;  // nothing to deliver to

  // Propose a replacement for every path position the failed peer held.
  std::vector<net::PeerId> new_hosts = s.hosts;
  for (std::size_t i = 0; i < new_hosts.size(); ++i) {
    if (new_hosts[i] != failed) continue;
    if (!recovery_) return false;
    const net::PeerId replacement = recovery_(s, i, failed);
    if (replacement == net::kNoPeer || replacement == failed ||
        !peers_.alive(replacement)) {
      return false;
    }
    new_hosts[i] = replacement;
  }

  const sim::SimTime now = simulator_.now();

  // Migrate host reservations: reserve on the replacements first; only then
  // drop the old entries (the failed peer's ledger died with it).
  std::vector<HostReservation> added;
  bool ok = true;
  for (std::size_t i = 0; i < new_hosts.size() && ok; ++i) {
    if (s.hosts[i] == new_hosts[i]) continue;
    const auto& inst = catalog_.instance(s.instances[i]);
    // The reservation request itself travels over the faulty network: a
    // round-trip lost beyond the retry budget reads as the host refusing.
    if (reservation_rtt(s.requester, new_hosts[i]) &&
        peers_.try_reserve(new_hosts[i], inst.resources, now)) {
      added.push_back(HostReservation{new_hosts[i], inst.resources});
    } else {
      ok = false;
    }
  }
  if (!ok) {
    for (const auto& hr : added) peers_.release(hr.peer, hr.resources, now);
    return false;
  }

  // Rebuild the edge reservations wholesale: the failed hop invalidates its
  // adjacent edges, and a wholesale swap keeps the bookkeeping simple and
  // exact. Old edges are released first so a link shared by old and new
  // paths is not double-counted against its capacity.
  for (const auto& lr : s.link_reservations) {
    net_.release(lr.from, lr.to, lr.kbps, now);
  }
  s.link_reservations.clear();
  std::vector<LinkReservation> new_links;
  for (std::size_t i = 0; i < new_hosts.size() && ok; ++i) {
    const auto& inst = catalog_.instance(s.instances[i]);
    const net::PeerId from = new_hosts[i];
    const net::PeerId to =
        i + 1 < new_hosts.size() ? new_hosts[i + 1] : s.requester;
    if (reservation_rtt(from, to) &&
        net_.try_reserve(from, to, inst.bandwidth_kbps, now)) {
      new_links.push_back(LinkReservation{from, to, inst.bandwidth_kbps});
    } else {
      ok = false;
    }
  }
  if (!ok) {
    for (const auto& lr : new_links) net_.release(lr.from, lr.to, lr.kbps, now);
    for (const auto& hr : added) peers_.release(hr.peer, hr.resources, now);
    // The session is beyond repair: the caller aborts it. Its remaining
    // host reservations are still recorded and released by finish_session.
    return false;
  }

  // Commit: swap hosts, fix the reservation records and the peer index.
  unindex(s);
  if (track_load_) {
    for (std::size_t i = 0; i < new_hosts.size(); ++i) {
      if (s.hosts[i] == new_hosts[i]) continue;
      track_host_loss(s.hosts[i], s.instances[i]);
      track_host_gain(new_hosts[i], s.instances[i]);
    }
  }
  s.hosts = new_hosts;
  // Drop host-reservation records held on the failed peer; keep the rest
  // and append the new ones.
  std::erase_if(s.host_reservations, [&](const HostReservation& hr) {
    return hr.peer == failed;
  });
  for (const auto& hr : added) s.host_reservations.push_back(hr);
  s.link_reservations = std::move(new_links);
  index(s);
  return true;
}

void SessionManager::peer_departed(net::PeerId peer) {
  auto it = by_peer_.find(peer);
  if (it == by_peer_.end()) return;
  // finish_session / try_recover mutate by_peer_, so snapshot first.
  const std::vector<SessionId> affected = it->second;
  for (SessionId id : affected) {
    if (recovery_ && try_recover(id, peer)) continue;
    finish_session(id, core::FailureCause::kDeparture);
  }
}

}  // namespace qsa::session
