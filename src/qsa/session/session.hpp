// An admitted application session: the service path instantiated on
// concrete peers, together with the exact reservations it holds so they can
// be released precisely at teardown or abort.
#pragma once

#include <cstdint>
#include <vector>

#include "qsa/core/aggregate.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/qos/resources.hpp"
#include "qsa/sim/event_queue.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::session {

using SessionId = std::uint64_t;

struct HostReservation {
  net::PeerId peer = net::kNoPeer;
  qos::ResourceVector resources;
};

struct LinkReservation {
  net::PeerId from = net::kNoPeer;
  net::PeerId to = net::kNoPeer;
  double kbps = 0;
};

struct Session {
  SessionId id = 0;
  net::PeerId requester = net::kNoPeer;
  std::vector<registry::InstanceId> instances;  ///< source .. sink
  std::vector<net::PeerId> hosts;               ///< aligned with instances
  sim::SimTime start;
  sim::SimTime end;  ///< scheduled completion time

  std::vector<HostReservation> host_reservations;
  std::vector<LinkReservation> link_reservations;
  sim::EventHandle end_event;

  /// Observability: the originating request's trace id (0 = untraced) and
  /// the open `running` span the manager keeps for it (a generation-tagged
  /// obs::Tracer::SpanId).
  std::uint64_t trace_id = 0;
  std::uint64_t trace_span = 0;
};

}  // namespace qsa::session
