// Session is a plain data aggregate; see manager.cpp for the lifecycle
// logic. This TU compiles the header standalone.
#include "qsa/session/session.hpp"
