// The session manager: admission control and session lifetime.
//
// Admission reserves, all-or-nothing with rollback, the end-system resources
// R of every chosen instance on its host and the bandwidth b of every edge
// of the aggregation flow (source host -> ... -> sink host -> requester).
// Under reservation semantics the paper's success criterion — "all service
// instances' resource requirements are always satisfied ... during the
// entire application session" — reduces to: admission succeeded and no
// participating peer (including the requester) departed before the session
// ended.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "qsa/core/aggregate.hpp"
#include "qsa/fault/fault.hpp"
#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/obs/trace.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/session/session.hpp"
#include "qsa/sim/simulator.hpp"
#include "qsa/util/dense_map.hpp"

namespace qsa::session {

/// One admission outcome, as the replication tier wants to hear about it:
/// what was asked for, where it landed (or failed), and why. The spans point
/// into the plan/session and are only valid during the callback.
struct DemandSignal {
  enum class Kind : std::uint8_t {
    kAdmitted,  ///< reservations held; session running
    kRejected,  ///< reservation shortage; `blamed` names the short host
    kTeardown,  ///< session over (cause kNone) or aborted (kDeparture)
  };
  Kind kind = Kind::kAdmitted;
  std::span<const registry::InstanceId> instances;
  std::span<const net::PeerId> hosts;
  net::PeerId blamed = net::kNoPeer;                     ///< kRejected only
  core::FailureCause cause = core::FailureCause::kNone;  ///< kTeardown only
};

namespace detail {

/// Resources reserved on one host during probe epoch `epoch`; stale entries
/// are implicitly zero (the boundary has passed, probes see them).
struct EpochLedger {
  std::int64_t epoch = -1;
  qos::ResourceVector reserved;
};

/// Per-service concentration instruments (lazily bound gauges).
struct ServiceLoad {
  obs::Gauge* max_gauge = nullptr;
  obs::Gauge* mean_gauge = nullptr;
  double sum = 0;
  std::uint64_t observations = 0;
};

}  // namespace detail

struct SessionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   ///< admission (reservation) failures
  std::uint64_t completed = 0;  ///< ran to their scheduled end
  std::uint64_t aborted = 0;    ///< killed by a provisioning peer departure
  std::uint64_t recovered = 0;  ///< survived a departure via recovery
};

class SessionManager {
 public:
  /// Invoked when an admitted session finishes: cause kNone on completion,
  /// kDeparture on churn abort.
  using OutcomeCallback =
      std::function<void(const Session&, core::FailureCause)>;

  /// Runtime failure recovery (the paper's future-work extension): given a
  /// session that just lost `failed`, proposes a replacement host for the
  /// instance at path position `position`, or kNoPeer to give up. Invoked
  /// once per affected position.
  using RecoveryFn = std::function<net::PeerId(
      const Session&, std::size_t position, net::PeerId failed)>;

  SessionManager(sim::Simulator& simulator, net::PeerTable& peers,
                 net::NetworkModel& net,
                 const registry::ServiceCatalog& catalog);

  void set_outcome_callback(OutcomeCallback cb) { outcome_ = std::move(cb); }

  /// Invoked on every admission outcome and teardown (see DemandSignal).
  using DemandCallback = std::function<void(const DemandSignal&)>;
  void set_demand_callback(DemandCallback cb) { demand_ = std::move(cb); }

  /// Enables provider-load concentration accounting (DESIGN.md §4): how
  /// many admitted sessions each peer is hosting, its run-wide peak, and —
  /// when metrics are attached — a log-bucketed `provider.load` histogram
  /// plus per-service `provider.load.{max,mean}.s<id>` gauges. Off by
  /// default so untracked runs register no new metric names.
  void set_load_tracking(bool on) { track_load_ = on; }

  /// Attaches observability (optional; null detaches). Traced sessions
  /// (request trace_id != 0) get a `running` span from admission to
  /// completion/abort, `recovery` spans per repair attempt and a `teardown`
  /// span on normal completion; the registry gains session.* histograms and
  /// the active-session high-water gauge.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Enables mid-session departure recovery. Without it (the paper's
  /// baseline behaviour) any participant departure aborts the session.
  void set_recovery(RecoveryFn fn) { recovery_ = std::move(fn); }

  /// Attaches the fault-injection plan (null = perfect messaging, the
  /// default). Recovery's reservation round-trips may then time out and be
  /// retried with backoff; a round-trip lost on every attempt makes that
  /// repair step fail as if the resources were unavailable.
  void set_faults(const fault::FaultPlan* faults) noexcept {
    faults_ = faults;
  }

  /// Attempts to admit `plan` for `request`. On success the session runs
  /// until now + session_duration (its end event is scheduled) and kNone is
  /// returned; otherwise kAdmission, with every partial reservation rolled
  /// back. On rejection, `blamed` (when given) names the host whose
  /// reservation fell short — for host shortages the host itself, for link
  /// shortages the producer endpoint — so callers can retry selection
  /// excluding it.
  core::FailureCause start_session(const core::ServiceRequest& request,
                                   const core::AggregationPlan& plan,
                                   net::PeerId* blamed = nullptr);

  /// Aborts every active session that `peer` participates in (as host or
  /// requester). Call when churn removes a peer, before or after
  /// PeerTable::remove_peer.
  void peer_departed(net::PeerId peer);

  [[nodiscard]] std::size_t active_sessions() const noexcept {
    return sessions_.size();
  }
  /// Id of the most recently admitted session (0 if none yet). Valid right
  /// after a successful start_session.
  [[nodiscard]] SessionId last_session_id() const noexcept {
    return next_id_ - 1;
  }
  [[nodiscard]] const SessionStats& stats() const noexcept { return stats_; }

  /// Run-wide peak of concurrent sessions hosted by any single provider
  /// (0 until load tracking is enabled).
  [[nodiscard]] std::uint32_t peak_provider_load() const noexcept {
    return peak_provider_load_;
  }
  /// Run-wide peak of concurrent sessions of any *single service* on any
  /// single host (0 until load tracking is enabled): the concentration
  /// metric replication attacks — QCS funnels a service's whole demand
  /// onto one instance chain, so one pool's hosts run hot while equivalent
  /// capacity idles; clones widen the pool and cap this peak.
  [[nodiscard]] std::uint32_t peak_service_concentration() const noexcept {
    return peak_concentration_;
  }
  /// Mean co-location *share* seen at admission: for every hosted instance
  /// of every admitted session, the fraction of that service's active
  /// sessions running on the chosen host (inclusive). 1.0 means the whole
  /// service is funneled onto single hosts; spreading across an h-host
  /// pool drives it toward 1/h. Unlike the run-wide peak (or a raw depth
  /// mean) this is volume-fair — a higher-throughput run is not penalized
  /// for carrying more concurrent sessions — so it is the concentration
  /// number the replication ablation compares. 0 until load tracking is
  /// enabled.
  [[nodiscard]] double mean_service_concentration() const noexcept {
    return concentration_admissions_ == 0
               ? 0
               : concentration_sum_ /
                     static_cast<double>(concentration_admissions_);
  }
  /// Sessions `peer` currently hosts (0 when untracked or unknown).
  [[nodiscard]] std::uint32_t provider_load(net::PeerId peer) const;

  /// Host resources reserved on `peer` since the current probe-epoch
  /// boundary — commitments a probed snapshot cannot see yet. Zero when
  /// load tracking is off or nothing was reserved this epoch. Feeds the
  /// selector's load signal (core::PeerSelector::set_load_signal).
  [[nodiscard]] qos::ResourceVector epoch_reservations(net::PeerId peer) const;

 private:
  void finish_session(SessionId id, core::FailureCause cause);
  void release_all(Session& s);
  /// Attempts to keep session `id` alive after `failed` departed. Returns
  /// true when the session was repaired (hosts swapped, reservations
  /// migrated); false means the caller must abort it.
  bool try_recover(SessionId id, net::PeerId failed);
  /// The repair itself: replacement proposal + reservation migration.
  bool recover_hosts(Session& s, net::PeerId failed);
  /// Completes one reservation round-trip between `a` and `b` under the
  /// fault plan: a lost message is a timeout, retried with backoff up to the
  /// budget. Returns false when every attempt was lost (the repair step is
  /// then treated as a reservation failure). Trivially true without a plan.
  bool reservation_rtt(net::PeerId a, net::PeerId b);
  void unindex(const Session& s);
  void index(const Session& s);
  /// Load accounting on host `host` gaining/losing a hosted session; emits
  /// the concentration instruments for the instance at that position.
  void track_host_gain(net::PeerId host, registry::InstanceId instance);
  void track_host_loss(net::PeerId host, registry::InstanceId instance);

  sim::Simulator& simulator_;
  net::PeerTable& peers_;
  net::NetworkModel& net_;
  const registry::ServiceCatalog& catalog_;
  OutcomeCallback outcome_;
  DemandCallback demand_;
  RecoveryFn recovery_;
  const fault::FaultPlan* faults_ = nullptr;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Histogram* duration_hist_ = nullptr;
  obs::Histogram* time_to_failure_hist_ = nullptr;
  obs::Histogram* recovery_salvaged_hist_ = nullptr;
  obs::Histogram* provider_load_hist_ = nullptr;

  // Concentration accounting (only when track_load_).
  bool track_load_ = false;
  std::uint32_t peak_provider_load_ = 0;
  std::uint32_t peak_concentration_ = 0;
  double concentration_sum_ = 0;
  std::uint64_t concentration_admissions_ = 0;
  // The per-admission ledgers below are touched once per hosted instance on
  // every admit/teardown — flat open-addressing maps (util::DenseMap), not
  // node-based unordered_maps, keep that on the simulator's zero-allocation
  // steady-state path.
  util::DenseMap<net::PeerId, std::uint32_t> hosted_load_;
  // Concurrent sessions per (service, host) pair, key (service << 32) | host.
  util::DenseMap<std::uint64_t, std::uint32_t> service_host_load_;
  // Concurrent sessions per service (the co-location share's denominator).
  util::DenseMap<registry::ServiceId, std::uint32_t> service_active_;
  util::DenseMap<net::PeerId, detail::EpochLedger> epoch_ledger_;
  util::DenseMap<registry::ServiceId, detail::ServiceLoad> service_load_;

  std::unordered_map<SessionId, Session> sessions_;
  std::unordered_map<net::PeerId, std::vector<SessionId>> by_peer_;
  SessionId next_id_ = 1;
  SessionStats stats_;
};

}  // namespace qsa::session
