// Knobs of the demand-driven replication tier (DESIGN.md §10). Defaults are
// fully off: a default ReplicaConfig constructs no manager, schedules no
// events and keeps every run byte-identical to a build without the
// subsystem.
#pragma once

#include <cstddef>

#include "qsa/sim/time.hpp"

namespace qsa::replica {

struct ReplicaConfig {
  /// Master switch. Off (the default) constructs nothing.
  bool enabled = false;

  /// Demand score at which an instance trips replication (hysteresis high
  /// watermark). Demand is an exponentially decayed event count: +1 per
  /// admitted session using the instance, +2 per reservation rejection
  /// blamed on one of its providers, +2 per selection failure on its hop.
  double threshold = 4.0;

  /// A replica is retired once its instance's demand has decayed below
  /// threshold * retire_fraction (the hysteresis low watermark).
  double retire_fraction = 0.25;

  /// Three-fold time constant: per-instance refractory period between
  /// placement decisions, minimum replica age before retirement, and the
  /// period of the retirement sweep.
  sim::SimTime cooldown = sim::SimTime::minutes(2);

  /// Hard cap on live replicas per instance (bounds steady state).
  int max_replicas = 8;

  /// Fraction of an instance's provider pool that must look saturated in
  /// the probe snapshots (headroom < R) before a clone is placed; demand
  /// alone never replicates while the existing pool still has room.
  double min_pool_pressure = 0.5;

  /// Half-life of the demand score's exponential decay.
  sim::SimTime demand_half_life = sim::SimTime::minutes(2);

  /// How many alive peers one placement decision samples as clone hosts.
  std::size_t candidate_sample = 64;
};

}  // namespace qsa::replica
