#include "qsa/replica/manager.hpp"

#include <algorithm>
#include <cmath>

#include "qsa/probe/snapshot.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::replica {
namespace {

constexpr double kAdmitWeight = 1.0;
constexpr double kBlamedWeight = 2.0;
constexpr double kPathWeight = 1.0;      ///< non-blamed hops of a rejection
constexpr double kSelectionWeight = 2.0;
/// Share of the demand score kept after a placement decision; the drop plus
/// the refractory period form the hysteresis that keeps one hot burst from
/// cloning an instance onto every sampled host.
constexpr double kPostTripKeep = 0.5;

}  // namespace

ReplicaManager::ReplicaManager(std::uint64_t seed, const ReplicaConfig& config,
                               const registry::ServiceCatalog& catalog,
                               registry::PlacementMap& placement,
                               registry::DiscoveryBackend& discovery,
                               const net::PeerTable& peers,
                               const net::NetworkModel& net,
                               const qos::TupleWeights& weights,
                               const qos::ResourceSchema& schema)
    : config_(config),
      catalog_(catalog),
      placement_(placement),
      discovery_(discovery),
      peers_(peers),
      net_(net),
      selector_(weights, schema),
      rng_(seed) {
  QSA_EXPECTS(config_.threshold > 0);
  QSA_EXPECTS(config_.max_replicas >= 0);
  QSA_EXPECTS(config_.demand_half_life > sim::SimTime::zero());
  QSA_EXPECTS(config_.candidate_sample > 0);
}

void ReplicaManager::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    created_ = retired_ = no_host_ = nullptr;
    active_gauge_ = nullptr;
    return;
  }
  created_ = &metrics->counter("replica.created");
  retired_ = &metrics->counter("replica.retired");
  no_host_ = &metrics->counter("replica.rejected_no_host");
  active_gauge_ = &metrics->gauge("replica.active");
}

void ReplicaManager::update_active_gauge() {
  if (active_gauge_ != nullptr) {
    active_gauge_->set(static_cast<double>(records_.size()));
  }
}

void ReplicaManager::bump(registry::InstanceId instance, double weight,
                          sim::SimTime now) {
  InstanceState& st = state_[instance];
  if (now > st.as_of) {
    const double dt = static_cast<double>((now - st.as_of).as_millis());
    const double hl = static_cast<double>(config_.demand_half_life.as_millis());
    st.score *= std::exp2(-dt / hl);
    st.as_of = now;
  }
  st.score += weight;
  maybe_replicate(instance, st, now);
}

double ReplicaManager::demand(registry::InstanceId instance,
                              sim::SimTime now) const {
  auto it = state_.find(instance);
  if (it == state_.end()) return 0;
  const InstanceState& st = it->second;
  if (now <= st.as_of) return st.score;
  const double dt = static_cast<double>((now - st.as_of).as_millis());
  const double hl = static_cast<double>(config_.demand_half_life.as_millis());
  return st.score * std::exp2(-dt / hl);
}

void ReplicaManager::on_admitted(
    std::span<const registry::InstanceId> instances, sim::SimTime now) {
  for (registry::InstanceId inst : instances) {
    ++state_[inst].in_use;
    bump(inst, kAdmitWeight, now);
  }
}

void ReplicaManager::on_rejected(
    std::span<const registry::InstanceId> instances,
    std::span<const net::PeerId> hosts, net::PeerId blamed, sim::SimTime now) {
  QSA_EXPECTS(instances.size() == hosts.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    bump(instances[i], hosts[i] == blamed ? kBlamedWeight : kPathWeight, now);
  }
}

void ReplicaManager::on_selection_failure(
    std::span<const registry::InstanceId> instances, sim::SimTime now) {
  for (registry::InstanceId inst : instances) {
    bump(inst, kSelectionWeight, now);
  }
}

void ReplicaManager::on_session_ended(
    std::span<const registry::InstanceId> instances) noexcept {
  for (registry::InstanceId inst : instances) {
    auto it = state_.find(inst);
    if (it != state_.end() && it->second.in_use > 0) --it->second.in_use;
  }
}

double ReplicaManager::pool_pressure(registry::InstanceId instance,
                                     sim::SimTime now) const {
  const auto providers = placement_.providers(instance);
  if (providers.empty()) return 1.0;
  const auto& inst = catalog_.instance(instance);
  std::size_t saturated = 0;
  for (net::PeerId p : providers) {
    if (!peers_.alive(p) ||
        !inst.resources.fits_within(peers_.probed_available(p, now))) {
      ++saturated;
    }
  }
  return static_cast<double>(saturated) / static_cast<double>(providers.size());
}

ReplicaRecord ReplicaManager::select_host(registry::InstanceId instance,
                                          sim::SimTime now) {
  const auto& inst = catalog_.instance(instance);
  const auto providers = placement_.providers(instance);
  const auto& alive = peers_.alive_ids();

  // Phi's bandwidth term and the b >= beta gate are measured towards the
  // pool's anchor (its lowest-id provider): a clone must be reachable from
  // where the instance's traffic already flows.
  net::PeerId anchor = net::kNoPeer;
  for (net::PeerId p : providers) anchor = std::min(anchor, p);

  ReplicaRecord best;
  best.instance = instance;
  double best_phi = 0;
  if (alive.empty()) return best;

  // Fixed number of draws regardless of what they hit: the RNG stream stays
  // aligned across candidate outcomes, which keeps runs with different
  // thresholds comparable draw-for-draw.
  for (std::size_t d = 0; d < config_.candidate_sample; ++d) {
    const net::PeerId p = alive[rng_.index(alive.size())];
    if (std::find(providers.begin(), providers.end(), p) != providers.end()) {
      continue;  // already serves this instance
    }
    probe::PerfSnapshot snap;
    snap.alive = peers_.probed_alive(p, now);
    if (!snap.alive) continue;
    // Host capability: probed headroom must fit another copy's R...
    snap.available = peers_.probed_available(p, now);
    if (!inst.resources.fits_within(snap.available)) continue;
    // ...the host must look stable enough to outlive a retirement cycle...
    snap.uptime = peers_.probed_uptime(p, now);
    if (snap.uptime < config_.cooldown) continue;
    // ...and the path from the pool must sustain the instance's bitrate.
    if (anchor == net::kNoPeer || anchor == p) {
      snap.bandwidth_kbps = inst.bandwidth_kbps;
      snap.latency = sim::SimTime::zero();
    } else {
      snap.bandwidth_kbps = net_.probed_available_kbps(p, anchor, now);
      snap.latency = net_.latency(p, anchor);
    }
    if (snap.bandwidth_kbps < inst.bandwidth_kbps) continue;

    const double phi = selector_.phi(snap, inst);
    if (best.host == net::kNoPeer || phi > best_phi ||
        (phi == best_phi && p < best.host)) {
      best.host = p;
      best.created = now;
      best.headroom = snap.available;
      best.phi = phi;
      best_phi = phi;
    }
  }
  return best;
}

void ReplicaManager::maybe_replicate(registry::InstanceId instance,
                                     InstanceState& st, sim::SimTime now) {
  if (st.score < config_.threshold) return;
  if (st.replica_count >= config_.max_replicas) return;
  if (st.refractory_until > now) return;
  if (pool_pressure(instance, now) < config_.min_pool_pressure) return;

  // One decision per cooldown per instance, hit or miss.
  st.refractory_until = now + config_.cooldown;

  ReplicaRecord record = select_host(instance, now);
  if (record.host == net::kNoPeer) {
    ++stats_.rejected_no_host;
    if (no_host_ != nullptr) no_host_->add();
    return;
  }

  // The clone is one more provider of the template instance: same Qin/Qout
  // spec, same R, same b — it passes exactly the satisfies/resource checks
  // the originals passed at catalog generation.
  placement_.add_provider(instance, record.host);
  // The normal overlay publish path; like any publish it re-registers the
  // soft-state registration (and, on the indexed backend, mints the clone's
  // postings), so requesters see the widened pool at their next lookup.
  discovery_.publish(instance);

  st.score *= kPostTripKeep;
  ++st.replica_count;
  records_.push_back(record);
  ++stats_.created;
  if (created_ != nullptr) created_->add();
  update_active_gauge();
}

void ReplicaManager::retire(std::size_t index) {
  const ReplicaRecord& r = records_[index];
  placement_.remove_provider(r.instance, r.host);
  // Narrowing the pool changes what discovery should hand out; the backend
  // drops cached candidate lists (directory) or the clone's own postings
  // (attribute index).
  discovery_.provider_retired(r.instance, r.host);
  auto it = state_.find(r.instance);
  if (it != state_.end() && it->second.replica_count > 0) {
    --it->second.replica_count;
  }
  records_.erase(records_.begin() + static_cast<std::ptrdiff_t>(index));
}

void ReplicaManager::sweep(sim::SimTime now) {
  const double low_watermark = config_.threshold * config_.retire_fraction;
  for (std::size_t i = records_.size(); i-- > 0;) {
    const ReplicaRecord& r = records_[i];
    if (now - r.created < config_.cooldown) continue;
    auto it = state_.find(r.instance);
    if (it != state_.end() && it->second.in_use > 0) continue;
    if (demand(r.instance, now) >= low_watermark) continue;
    retire(i);
    ++stats_.retired;
    if (retired_ != nullptr) retired_->add();
  }
  update_active_gauge();
}

void ReplicaManager::peer_departed(net::PeerId peer) {
  const std::size_t before = records_.size();
  for (std::size_t i = records_.size(); i-- > 0;) {
    if (records_[i].host != peer) continue;
    auto it = state_.find(records_[i].instance);
    if (it != state_.end() && it->second.replica_count > 0) {
      --it->second.replica_count;
    }
    records_.erase(records_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  if (records_.size() != before) {
    stats_.host_departures += before - records_.size();
    update_active_gauge();
  }
}

}  // namespace qsa::replica
