// Demand-driven, QoS-aware service replication (the third tier, on top of
// composition and dynamic peer selection; DESIGN.md §10).
//
// QCS concentrates every request for an application onto the single
// cheapest instance chain, so one 40-80-provider pool saturates while
// equivalent capacity idles (DESIGN.md §4). The ReplicaManager widens the
// hot pools on demand: it keeps a per-instance soft-state demand score fed
// by admission outcomes, and when the score trips a hysteresis threshold
// while the existing provider pool looks saturated in the probe snapshots,
// it clones the instance onto one more QoS-capable host — headroom >= the
// instance's resource vector R, probed bandwidth >= b towards the current
// pool, ranked by the same Phi scalarization dynamic selection uses — and
// publishes the replica through the normal overlay publish path (which
// invalidates any cached discovery for that service, like any publish).
// Cold replicas are retired after a cooldown so steady state stays bounded.
//
// Every decision is event-driven off the simulator clock and a dedicated
// hash-derived RNG stream: runs are bit-reproducible, and with the
// subsystem disabled nothing is constructed or scheduled, keeping output
// byte-identical to a build without it.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "qsa/core/select.hpp"
#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/qos/resources.hpp"
#include "qsa/registry/backend.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/registry/placement.hpp"
#include "qsa/replica/config.hpp"
#include "qsa/sim/time.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::replica {

/// One live clone: which instance, where, and the QoS evidence it was
/// admitted on (tests assert the replica passed the same headroom checks as
/// any dynamically selected host).
struct ReplicaRecord {
  registry::InstanceId instance = 0;
  net::PeerId host = net::kNoPeer;
  sim::SimTime created;
  qos::ResourceVector headroom;  ///< probed availability at placement time
  double phi = 0;                ///< Phi score that won the placement
};

struct ReplicaStats {
  std::uint64_t created = 0;
  std::uint64_t retired = 0;           ///< cold, removed by the sweep
  std::uint64_t rejected_no_host = 0;  ///< tripped but no capable host
  std::uint64_t host_departures = 0;   ///< replicas lost to churn
};

class ReplicaManager {
 public:
  ReplicaManager(std::uint64_t seed, const ReplicaConfig& config,
                 const registry::ServiceCatalog& catalog,
                 registry::PlacementMap& placement,
                 registry::DiscoveryBackend& discovery,
                 const net::PeerTable& peers, const net::NetworkModel& net,
                 const qos::TupleWeights& weights,
                 const qos::ResourceSchema& schema);

  /// Attaches observability (optional; null detaches): replica.created /
  /// replica.retired / replica.rejected_no_host counters and the
  /// replica.active gauge.
  void set_metrics(obs::MetricsRegistry* metrics);

  // --- demand signals (wired from the session manager / harness) ---

  /// A session using `instances` was admitted.
  void on_admitted(std::span<const registry::InstanceId> instances,
                   sim::SimTime now);

  /// Admission rejected: `blamed` is the host whose reservation fell short;
  /// the instance it was to serve takes the strong signal, the rest of the
  /// path a weak one (the whole request went unserved).
  void on_rejected(std::span<const registry::InstanceId> instances,
                   std::span<const net::PeerId> hosts, net::PeerId blamed,
                   sim::SimTime now);

  /// Dynamic selection found no eligible host for any hop of `instances`.
  void on_selection_failure(std::span<const registry::InstanceId> instances,
                            sim::SimTime now);

  /// A session using `instances` ended (completion or abort); releases the
  /// in-use pins that keep the instances' replicas from retiring.
  void on_session_ended(
      std::span<const registry::InstanceId> instances) noexcept;

  /// Churn removed `peer`: drop its replica records (the placement map has
  /// already forgotten the peer wholesale).
  void peer_departed(net::PeerId peer);

  /// Periodic retirement: removes replicas that are old enough (>= one
  /// cooldown) on instances whose demand decayed below the low watermark
  /// and that no active session still uses.
  void sweep(sim::SimTime now);

  /// Current decayed demand score of an instance.
  [[nodiscard]] double demand(registry::InstanceId instance,
                              sim::SimTime now) const;

  [[nodiscard]] const std::vector<ReplicaRecord>& replicas() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t active() const noexcept { return records_.size(); }
  [[nodiscard]] const ReplicaStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ReplicaConfig& config() const noexcept {
    return config_;
  }

 private:
  struct InstanceState {
    double score = 0;             ///< decayed demand, as of `as_of`
    sim::SimTime as_of;
    sim::SimTime refractory_until;
    std::uint32_t in_use = 0;     ///< active sessions using the instance
    int replica_count = 0;
  };

  /// Adds `weight` to the (decayed) score and re-evaluates the trip.
  void bump(registry::InstanceId instance, double weight, sim::SimTime now);
  void maybe_replicate(registry::InstanceId instance, InstanceState& st,
                       sim::SimTime now);
  /// Fraction of the instance's current providers whose probed availability
  /// cannot fit another copy's R (1.0 on an empty pool).
  [[nodiscard]] double pool_pressure(registry::InstanceId instance,
                                     sim::SimTime now) const;
  /// Samples candidate hosts and returns the Phi-best QoS-capable one (or a
  /// record with host == kNoPeer). Burns a fixed number of RNG draws per
  /// call, so the stream stays aligned whatever the candidates look like.
  [[nodiscard]] ReplicaRecord select_host(registry::InstanceId instance,
                                          sim::SimTime now);
  void retire(std::size_t index);
  void update_active_gauge();

  ReplicaConfig config_;
  const registry::ServiceCatalog& catalog_;
  registry::PlacementMap& placement_;
  registry::DiscoveryBackend& discovery_;
  const net::PeerTable& peers_;
  const net::NetworkModel& net_;
  core::PeerSelector selector_;
  util::Rng rng_;

  std::unordered_map<registry::InstanceId, InstanceState> state_;
  std::vector<ReplicaRecord> records_;
  ReplicaStats stats_;

  obs::Counter* created_ = nullptr;
  obs::Counter* retired_ = nullptr;
  obs::Counter* no_host_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
};

}  // namespace qsa::replica
