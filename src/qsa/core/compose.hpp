// On-demand service composition: the QCS (QoS-Consistent & Shortest)
// algorithm of Section 3.2.
//
// Given the abstract service path (source .. sink), the candidate instances
// discovered for each service, and the user's end-to-end QoS requirement,
// QCS builds the layered candidate graph from the data sink backwards:
//
//   * a virtual node represents the requesting user; a sink-layer instance
//     is connected to it iff its Qout satisfies the user's requirement
//     (the paper anchors this by setting the sink node's QoS to the user's
//     requirement);
//   * instance B (one layer upstream) is connected to instance A iff
//     Qout_B satisfies Qin_A (equation 1);
//   * the edge entering instance B costs the scalarized resource tuple
//     (R_B, b_B) of Definition 3.1 — B's end-system requirement plus the
//     bandwidth its output needs;
//   * Dijkstra (the O(V^2) array form, matching the paper's O(K V^2) bound)
//     finds the minimum aggregated-cost path from the user anchor to the
//     source layer.
//
// The result is the QoS-consistent service path with minimum aggregated
// resource requirements, or failure when no consistent path exists.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qsa/cache/compose_cache.hpp"
#include "qsa/qos/tuple_compare.hpp"
#include "qsa/qos/vector.hpp"
#include "qsa/registry/catalog.hpp"

namespace qsa::core {

struct CompositionRequest {
  /// Candidate instances per abstract path position, source first, sink
  /// last. Every instance in `candidates[i]` implements the same abstract
  /// service.
  std::vector<std::vector<registry::InstanceId>> candidates;
  /// The user's end-to-end QoS requirement (what the sink's output must
  /// satisfy).
  qos::QosVector requirement;
};

struct CompositionResult {
  bool success = false;
  /// Chosen instance per position, source first, sink last; empty on
  /// failure.
  std::vector<registry::InstanceId> instances;
  /// Aggregated scalarized resource cost of the chosen path.
  double cost = 0;
  /// Work counters (for the complexity benches).
  std::size_t nodes = 0;
  /// Producer/consumer pair examinations — the edges of the paper's layered
  /// graph. Sink-layer checks against the user anchor are node checks, not
  /// edges, and are counted separately below.
  std::size_t edges_examined = 0;
  std::size_t nodes_checked = 0;
};

class QcsComposer {
 public:
  QcsComposer(const registry::ServiceCatalog& catalog,
              qos::TupleWeights weights, qos::ResourceSchema schema);

  [[nodiscard]] CompositionResult compose(const CompositionRequest& req) const;

  /// Allocation-free variant: writes into `out` (buffers reused) and keeps
  /// the relaxation tables as grow-only scratch on the composer, so a warm
  /// composer performs no heap allocation for path shapes it has seen.
  /// Results are bit-identical to compose(). The scratch makes a composer
  /// instance single-threaded: one composer (one algorithm) per thread.
  void compose_into(std::span<const std::vector<registry::InstanceId>> candidates,
                    const qos::QosVector& requirement,
                    CompositionResult& out) const;

  /// The scalarized cost sigma(R, b) QCS charges for including `instance`.
  [[nodiscard]] double instance_cost(registry::InstanceId instance) const;

  /// The eq. 1 edge check: does `producer`'s Qout satisfy `consumer`'s Qin?
  /// Memoized per (producer, consumer) pair when a cache is attached.
  [[nodiscard]] bool compatible(const registry::ServiceInstance& producer,
                                const registry::ServiceInstance& consumer) const;

  /// The sink-layer node check: does `inst`'s Qout satisfy the user's
  /// requirement? Memoized per (instance, requirement) when cached.
  [[nodiscard]] bool satisfies_requirement(
      const registry::ServiceInstance& inst,
      const qos::QosVector& requirement) const;

  /// Attaches the compatibility/cost memo tables (null detaches). The cache
  /// outlives the composer and must serve only this composer's (catalog,
  /// weights, schema) triple; results are bit-identical either way.
  void set_cache(cache::ComposeCache* cache) noexcept { cache_ = cache; }

  [[nodiscard]] const registry::ServiceCatalog& catalog() const noexcept {
    return catalog_;
  }
  [[nodiscard]] const qos::TupleWeights& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] const qos::ResourceSchema& schema() const noexcept {
    return schema_;
  }

 private:
  const registry::ServiceCatalog& catalog_;
  qos::TupleWeights weights_;
  qos::ResourceSchema schema_;
  cache::ComposeCache* cache_ = nullptr;

  // compose_into() scratch (mutable: compose is logically const, the
  // tables are pure workspace). Grow-only; inner vectors keep capacity.
  mutable std::vector<std::vector<double>> dist_;
  mutable std::vector<std::vector<std::uint32_t>> parent_;
  mutable std::vector<const registry::ServiceInstance*> consumers_;
  mutable std::vector<std::uint32_t> live_;
  mutable std::vector<double> live_dist_;
};

}  // namespace qsa::core
