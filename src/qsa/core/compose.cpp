#include "qsa/core/compose.hpp"

#include <limits>

#include "qsa/qos/satisfy.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

QcsComposer::QcsComposer(const registry::ServiceCatalog& catalog,
                         qos::TupleWeights weights, qos::ResourceSchema schema)
    : catalog_(catalog), weights_(weights), schema_(schema) {}

double QcsComposer::instance_cost(registry::InstanceId instance) const {
  const auto& inst = catalog_.instance(instance);
  if (cache_ != nullptr) {
    return cache_->costs.cost(instance, inst.resources, inst.bandwidth_kbps,
                              weights_, schema_);
  }
  return qos::scalarize(qos::ResourceTuple{inst.resources, inst.bandwidth_kbps},
                        weights_, schema_);
}

bool QcsComposer::compatible(const registry::ServiceInstance& producer,
                             const registry::ServiceInstance& consumer) const {
  if (cache_ != nullptr) {
    return cache_->compat.pair(producer.id, producer.qout, consumer.id,
                               consumer.qin);
  }
  return qos::satisfies(producer.qout, consumer.qin);
}

bool QcsComposer::satisfies_requirement(const registry::ServiceInstance& inst,
                                        const qos::QosVector& requirement) const {
  if (cache_ != nullptr) {
    return cache_->compat.sink(inst.id, inst.qout, requirement);
  }
  return qos::satisfies(inst.qout, requirement);
}

CompositionResult QcsComposer::compose(const CompositionRequest& req) const {
  CompositionResult result;
  const std::size_t layers = req.candidates.size();
  if (layers == 0) return result;
  for (const auto& layer : req.candidates) {
    if (layer.empty()) return result;  // a service with no candidates
    result.nodes += layer.size();
  }

  // dist[l][j]: minimum aggregated cost of a consistent partial path from
  // the user anchor through layer `l` ending at candidate j. Layers are
  // traversed sink -> source (the reverse of the aggregation flow, as the
  // paper's graph is built). This layered relaxation performs exactly the
  // edge examinations the O(V^2) Dijkstra would: each (consumer, producer)
  // pair is examined once; edge costs are nonnegative, and the layered DAG
  // admits no shortcut Dijkstra could exploit.
  std::vector<std::vector<double>> dist(layers);
  std::vector<std::vector<std::uint32_t>> parent(layers);

  const std::size_t sink = layers - 1;
  dist[sink].assign(req.candidates[sink].size(), kInf);
  parent[sink].assign(req.candidates[sink].size(), 0);
  for (std::size_t j = 0; j < req.candidates[sink].size(); ++j) {
    const auto& inst = catalog_.instance(req.candidates[sink][j]);
    ++result.nodes_checked;
    if (satisfies_requirement(inst, req.requirement)) {
      dist[sink][j] = instance_cost(inst.id);
    }
  }

  // Per-layer scratch: the consumer layer compacted down to its reachable
  // entries (finite dist), with instances resolved once. The inner loop
  // then touches only live consumers, and the edge counter hoists out to
  // one add per producer.
  std::vector<const registry::ServiceInstance*> consumers;
  std::vector<std::uint32_t> live;
  std::vector<double> live_dist;
  for (std::size_t l = sink; l-- > 0;) {
    dist[l].assign(req.candidates[l].size(), kInf);
    parent[l].assign(req.candidates[l].size(), 0);
    const std::size_t consumer_layer = l + 1;
    const std::vector<double>& cdist = dist[consumer_layer];
    consumers.clear();
    live.clear();
    live_dist.clear();
    for (std::size_t c = 0; c < req.candidates[consumer_layer].size(); ++c) {
      if (cdist[c] == kInf) continue;
      live.push_back(static_cast<std::uint32_t>(c));
      live_dist.push_back(cdist[c]);
      consumers.push_back(&catalog_.instance(req.candidates[consumer_layer][c]));
    }
    for (std::size_t j = 0; j < req.candidates[l].size(); ++j) {
      const auto& producer = catalog_.instance(req.candidates[l][j]);
      const double own = instance_cost(producer.id);
      result.edges_examined += live.size();
      double best = kInf;
      std::uint32_t best_parent = 0;
      // Ascending order keeps the lowest-index tie-break of the original
      // relaxation, so plans are unchanged.
      for (std::size_t k = 0; k < live.size(); ++k) {
        if (!compatible(producer, *consumers[k])) continue;
        const double through = live_dist[k] + own;
        if (through < best) {
          best = through;
          best_parent = live[k];
        }
      }
      dist[l][j] = best;
      parent[l][j] = best_parent;
    }
  }

  // Best entry point in the source layer.
  std::size_t best = 0;
  double best_cost = kInf;
  for (std::size_t j = 0; j < dist[0].size(); ++j) {
    if (dist[0][j] < best_cost) {
      best_cost = dist[0][j];
      best = j;
    }
  }
  if (best_cost == kInf) return result;  // no consistent path

  result.success = true;
  result.cost = best_cost;
  result.instances.resize(layers);
  std::size_t at = best;
  for (std::size_t l = 0; l < layers; ++l) {
    result.instances[l] = req.candidates[l][at];
    if (l + 1 < layers) at = parent[l][at];
  }
  return result;
}

}  // namespace qsa::core
