#include "qsa/core/compose.hpp"

#include <limits>

#include "qsa/qos/satisfy.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

QcsComposer::QcsComposer(const registry::ServiceCatalog& catalog,
                         qos::TupleWeights weights, qos::ResourceSchema schema)
    : catalog_(catalog), weights_(weights), schema_(schema) {}

double QcsComposer::instance_cost(registry::InstanceId instance) const {
  const auto& inst = catalog_.instance(instance);
  return qos::scalarize(qos::ResourceTuple{inst.resources, inst.bandwidth_kbps},
                        weights_, schema_);
}

CompositionResult QcsComposer::compose(const CompositionRequest& req) const {
  CompositionResult result;
  const std::size_t layers = req.candidates.size();
  if (layers == 0) return result;
  for (const auto& layer : req.candidates) {
    if (layer.empty()) return result;  // a service with no candidates
    result.nodes += layer.size();
  }

  // dist[l][j]: minimum aggregated cost of a consistent partial path from
  // the user anchor through layer `l` ending at candidate j. Layers are
  // traversed sink -> source (the reverse of the aggregation flow, as the
  // paper's graph is built). This layered relaxation performs exactly the
  // edge examinations the O(V^2) Dijkstra would: each (consumer, producer)
  // pair is examined once; edge costs are nonnegative, and the layered DAG
  // admits no shortcut Dijkstra could exploit.
  std::vector<std::vector<double>> dist(layers);
  std::vector<std::vector<std::uint32_t>> parent(layers);

  const std::size_t sink = layers - 1;
  dist[sink].assign(req.candidates[sink].size(), kInf);
  parent[sink].assign(req.candidates[sink].size(), 0);
  for (std::size_t j = 0; j < req.candidates[sink].size(); ++j) {
    const auto& inst = catalog_.instance(req.candidates[sink][j]);
    ++result.edges_examined;
    if (qos::satisfies(inst.qout, req.requirement)) {
      dist[sink][j] = instance_cost(inst.id);
    }
  }

  for (std::size_t l = sink; l-- > 0;) {
    dist[l].assign(req.candidates[l].size(), kInf);
    parent[l].assign(req.candidates[l].size(), 0);
    const std::size_t consumer_layer = l + 1;
    for (std::size_t j = 0; j < req.candidates[l].size(); ++j) {
      const auto& producer = catalog_.instance(req.candidates[l][j]);
      const double own = instance_cost(producer.id);
      for (std::size_t c = 0; c < req.candidates[consumer_layer].size(); ++c) {
        if (dist[consumer_layer][c] == kInf) continue;
        const auto& consumer =
            catalog_.instance(req.candidates[consumer_layer][c]);
        ++result.edges_examined;
        if (!qos::satisfies(producer.qout, consumer.qin)) continue;
        const double through = dist[consumer_layer][c] + own;
        if (through < dist[l][j]) {
          dist[l][j] = through;
          parent[l][j] = static_cast<std::uint32_t>(c);
        }
      }
    }
  }

  // Best entry point in the source layer.
  std::size_t best = 0;
  double best_cost = kInf;
  for (std::size_t j = 0; j < dist[0].size(); ++j) {
    if (dist[0][j] < best_cost) {
      best_cost = dist[0][j];
      best = j;
    }
  }
  if (best_cost == kInf) return result;  // no consistent path

  result.success = true;
  result.cost = best_cost;
  result.instances.resize(layers);
  std::size_t at = best;
  for (std::size_t l = 0; l < layers; ++l) {
    result.instances[l] = req.candidates[l][at];
    if (l + 1 < layers) at = parent[l][at];
  }
  return result;
}

}  // namespace qsa::core
