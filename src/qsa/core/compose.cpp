#include "qsa/core/compose.hpp"

#include <limits>

#include "qsa/qos/satisfy.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

QcsComposer::QcsComposer(const registry::ServiceCatalog& catalog,
                         qos::TupleWeights weights, qos::ResourceSchema schema)
    : catalog_(catalog), weights_(weights), schema_(schema) {}

double QcsComposer::instance_cost(registry::InstanceId instance) const {
  const auto& inst = catalog_.instance(instance);
  if (cache_ != nullptr) {
    return cache_->costs.cost(instance, inst.resources, inst.bandwidth_kbps,
                              weights_, schema_);
  }
  return qos::scalarize(qos::ResourceTuple{inst.resources, inst.bandwidth_kbps},
                        weights_, schema_);
}

bool QcsComposer::compatible(const registry::ServiceInstance& producer,
                             const registry::ServiceInstance& consumer) const {
  if (cache_ != nullptr) {
    return cache_->compat.pair(producer.id, producer.qout, consumer.id,
                               consumer.qin);
  }
  return qos::satisfies(producer.qout, consumer.qin);
}

bool QcsComposer::satisfies_requirement(const registry::ServiceInstance& inst,
                                        const qos::QosVector& requirement) const {
  if (cache_ != nullptr) {
    return cache_->compat.sink(inst.id, inst.qout, requirement);
  }
  return qos::satisfies(inst.qout, requirement);
}

CompositionResult QcsComposer::compose(const CompositionRequest& req) const {
  CompositionResult result;
  compose_into(req.candidates, req.requirement, result);
  return result;
}

void QcsComposer::compose_into(
    std::span<const std::vector<registry::InstanceId>> candidates,
    const qos::QosVector& requirement, CompositionResult& result) const {
  result.success = false;
  result.instances.clear();
  result.cost = 0;
  result.nodes = 0;
  result.edges_examined = 0;
  result.nodes_checked = 0;
  const std::size_t layers = candidates.size();
  if (layers == 0) return;
  for (const auto& layer : candidates) {
    if (layer.empty()) return;  // a service with no candidates
    result.nodes += layer.size();
  }

  // dist[l][j]: minimum aggregated cost of a consistent partial path from
  // the user anchor through layer `l` ending at candidate j. Layers are
  // traversed sink -> source (the reverse of the aggregation flow, as the
  // paper's graph is built). This layered relaxation performs exactly the
  // edge examinations the O(V^2) Dijkstra would: each (consumer, producer)
  // pair is examined once; edge costs are nonnegative, and the layered DAG
  // admits no shortcut Dijkstra could exploit.
  //
  // The tables are grow-only members: .assign() reuses each inner buffer,
  // so a warm composer allocates nothing for path shapes it has seen.
  if (dist_.size() < layers) dist_.resize(layers);
  if (parent_.size() < layers) parent_.resize(layers);

  const std::size_t sink = layers - 1;
  dist_[sink].assign(candidates[sink].size(), kInf);
  parent_[sink].assign(candidates[sink].size(), 0);
  for (std::size_t j = 0; j < candidates[sink].size(); ++j) {
    const auto& inst = catalog_.instance(candidates[sink][j]);
    ++result.nodes_checked;
    if (satisfies_requirement(inst, requirement)) {
      dist_[sink][j] = instance_cost(inst.id);
    }
  }

  // Per-layer scratch: the consumer layer compacted down to its reachable
  // entries (finite dist), with instances resolved once. The inner loop
  // then touches only live consumers, and the edge counter hoists out to
  // one add per producer.
  for (std::size_t l = sink; l-- > 0;) {
    dist_[l].assign(candidates[l].size(), kInf);
    parent_[l].assign(candidates[l].size(), 0);
    const std::size_t consumer_layer = l + 1;
    const std::vector<double>& cdist = dist_[consumer_layer];
    consumers_.clear();
    live_.clear();
    live_dist_.clear();
    for (std::size_t c = 0; c < candidates[consumer_layer].size(); ++c) {
      if (cdist[c] == kInf) continue;
      live_.push_back(static_cast<std::uint32_t>(c));
      live_dist_.push_back(cdist[c]);
      consumers_.push_back(&catalog_.instance(candidates[consumer_layer][c]));
    }
    for (std::size_t j = 0; j < candidates[l].size(); ++j) {
      const auto& producer = catalog_.instance(candidates[l][j]);
      const double own = instance_cost(producer.id);
      result.edges_examined += live_.size();
      double best = kInf;
      std::uint32_t best_parent = 0;
      // Ascending order keeps the lowest-index tie-break of the original
      // relaxation, so plans are unchanged.
      for (std::size_t k = 0; k < live_.size(); ++k) {
        if (!compatible(producer, *consumers_[k])) continue;
        const double through = live_dist_[k] + own;
        if (through < best) {
          best = through;
          best_parent = live_[k];
        }
      }
      dist_[l][j] = best;
      parent_[l][j] = best_parent;
    }
  }

  // Best entry point in the source layer.
  std::size_t best = 0;
  double best_cost = kInf;
  for (std::size_t j = 0; j < dist_[0].size(); ++j) {
    if (dist_[0][j] < best_cost) {
      best_cost = dist_[0][j];
      best = j;
    }
  }
  if (best_cost == kInf) return;  // no consistent path

  result.success = true;
  result.cost = best_cost;
  result.instances.resize(layers);
  std::size_t at = best;
  for (std::size_t l = 0; l < layers; ++l) {
    result.instances[l] = candidates[l][at];
    if (l + 1 < layers) at = parent_[l][at];
  }
}

}  // namespace qsa::core
