#include "qsa/core/aggregate.hpp"

#include <algorithm>

#include "qsa/core/baselines.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::core {

std::string_view to_string(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone:
      return "none";
    case FailureCause::kDiscovery:
      return "discovery";
    case FailureCause::kComposition:
      return "composition";
    case FailureCause::kSelection:
      return "selection";
    case FailureCause::kAdmission:
      return "admission";
    case FailureCause::kDeparture:
      return "departure";
  }
  return "?";
}

bool discover_candidates(const GridServices& services,
                         const ServiceRequest& request, sim::SimTime now,
                         std::vector<std::vector<registry::InstanceId>>& out,
                         AggregationPlan& plan) {
  const std::size_t services_on_path = request.abstract_path.size();
  // Grow-only: shrinking would free the inner vectors' buffers; callers
  // read exactly the first services_on_path entries.
  if (out.size() < services_on_path) out.resize(services_on_path);
  registry::DiscoveryQuery query;
  query.from = request.requester;
  query.requirement = &request.requirement;
  query.session_duration = request.session_duration;
  for (std::size_t i = 0; i < services_on_path; ++i) {
    query.service = request.abstract_path[i];
    query.is_sink = (i + 1 == services_on_path);
    const registry::DiscoveryStats stats =
        services.discovery->discover_into(query, services.net, now, out[i]);
    plan.lookup_hops += stats.hops;
    plan.setup_latency += stats.latency;
    if (out[i].empty()) {
      plan.failure = FailureCause::kDiscovery;
      return false;
    }
  }
  return true;
}

QsaAlgorithm::QsaAlgorithm(GridServices services, qos::TupleWeights weights,
                           qos::ResourceSchema schema, std::uint64_t seed,
                           QsaOptions options,
                           cache::ComposeCache* compose_cache)
    : services_(services),
      composer_(*services.catalog, weights, schema),
      selector_(weights, schema, options.selector),
      options_(options),
      rng_(util::derive_seed(seed, "qsa-algorithm", 0)) {
  QSA_EXPECTS(services.catalog && services.placement && services.discovery &&
              services.peers && services.net && services.neighbors);
  composer_.set_cache(compose_cache);
}

AggregationPlan QsaAlgorithm::aggregate(const ServiceRequest& request,
                                        sim::SimTime now) {
  AggregationPlan plan;
  aggregate_into(request, now, plan);
  return plan;
}

void QsaAlgorithm::aggregate_into(const ServiceRequest& request,
                                  sim::SimTime now, AggregationPlan& plan) {
  QSA_EXPECTS(!request.abstract_path.empty());
  plan.reset();

  // Tier 1a: discover candidate instances through the P2P lookup service.
  if (!discover_candidates(services_, request, now, candidates_, plan)) {
    return;
  }
  const std::span<const std::vector<registry::InstanceId>> candidates(
      candidates_.data(), request.abstract_path.size());

  // Tier 1b: compose the QoS-consistent shortest service path.
  if (options_.qcs_composition) {
    composer_.compose_into(candidates, request.requirement, comp_);
  } else {
    // Ablation: a random QoS-consistent path (the baseline composer), built
    // with this algorithm's own RNG stream.
    comp_ = compose_random(
        composer_,
        CompositionRequest{{candidates.begin(), candidates.end()},
                           request.requirement},
        rng_);
  }
  if (!comp_.success) {
    plan.failure = FailureCause::kComposition;
    return;
  }
  plan.instances = comp_.instances;
  plan.composition_cost = comp_.cost;

  // Tier 2: dynamic peer selection, hop by hop in the reverse direction of
  // the aggregation flow (hop 1 = the sink-layer instance, selected by the
  // requester's host).
  const std::size_t layers = plan.instances.size();
  if (hop_candidates_.size() < layers) hop_candidates_.resize(layers);
  for (std::size_t hop = 1; hop <= layers; ++hop) {
    const registry::InstanceId inst = plan.instances[layers - hop];
    auto providers = services_.placement->providers(inst);
    auto& cands = hop_candidates_[hop - 1];
    cands.clear();
    for (net::PeerId p : providers) {
      if (std::find(request.excluded_hosts.begin(),
                    request.excluded_hosts.end(),
                    p) == request.excluded_hosts.end()) {
        cands.push_back(p);
      }
    }
    if (cands.empty()) {
      plan.failure = FailureCause::kSelection;
      return;
    }
  }
  const std::span<const std::vector<net::PeerId>> hop_candidates(
      hop_candidates_.data(), layers);
  services_.neighbors->register_path(request.requester, hop_candidates, now);

  plan.hosts.assign(layers, net::kNoPeer);
  net::PeerId current = request.requester;
  for (std::size_t hop = 1; hop <= layers; ++hop) {
    const auto& inst =
        services_.catalog->instance(plan.instances[layers - hop]);
    const auto& cands = hop_candidates[hop - 1];
    const bool direct = current == request.requester;
    services_.neighbors->prepare_selection(
        current, cands, static_cast<std::uint8_t>(hop), direct, now);

    HopSelection chosen;
    if (options_.smart_selection) {
      chosen = selector_.select_hop(
          *services_.peers, *services_.net, services_.neighbors->table(current),
          current, inst, cands, request.session_duration, now, rng_);
    } else {
      // Ablation: random peer per hop, ignoring all performance information.
      chosen = HopSelection{cands[rng_.index(cands.size())], true};
    }
    if (!chosen.ok()) {
      plan.failure = FailureCause::kSelection;
      return;
    }
    if (chosen.random_fallback) ++plan.random_fallback_hops;
    plan.hosts[layers - hop] = chosen.peer;
    current = chosen.peer;
  }
}

}  // namespace qsa::core
