#include "qsa/core/aggregate.hpp"

#include <algorithm>

#include "qsa/core/baselines.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::core {

std::string_view to_string(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone:
      return "none";
    case FailureCause::kDiscovery:
      return "discovery";
    case FailureCause::kComposition:
      return "composition";
    case FailureCause::kSelection:
      return "selection";
    case FailureCause::kAdmission:
      return "admission";
    case FailureCause::kDeparture:
      return "departure";
  }
  return "?";
}

bool discover_candidates(const GridServices& services,
                         const ServiceRequest& request, sim::SimTime now,
                         std::vector<std::vector<registry::InstanceId>>& out,
                         AggregationPlan& plan) {
  out.clear();
  out.reserve(request.abstract_path.size());
  for (registry::ServiceId service : request.abstract_path) {
    registry::Discovery d = services.directory->discover(
        service, request.requester, services.net, now);
    plan.lookup_hops += d.hops;
    plan.setup_latency += d.latency;
    if (d.instances.empty()) {
      plan.failure = FailureCause::kDiscovery;
      return false;
    }
    out.push_back(std::move(d.instances));
  }
  return true;
}

QsaAlgorithm::QsaAlgorithm(GridServices services, qos::TupleWeights weights,
                           qos::ResourceSchema schema, std::uint64_t seed,
                           QsaOptions options,
                           cache::ComposeCache* compose_cache)
    : services_(services),
      composer_(*services.catalog, weights, schema),
      selector_(weights, schema, options.selector),
      options_(options),
      rng_(util::derive_seed(seed, "qsa-algorithm", 0)) {
  QSA_EXPECTS(services.catalog && services.placement && services.directory &&
              services.peers && services.net && services.neighbors);
  composer_.set_cache(compose_cache);
}

AggregationPlan QsaAlgorithm::aggregate(const ServiceRequest& request,
                                        sim::SimTime now) {
  QSA_EXPECTS(!request.abstract_path.empty());
  AggregationPlan plan;

  // Tier 1a: discover candidate instances through the P2P lookup service.
  std::vector<std::vector<registry::InstanceId>> candidates;
  if (!discover_candidates(services_, request, now, candidates, plan)) {
    return plan;
  }

  // Tier 1b: compose the QoS-consistent shortest service path.
  CompositionRequest creq{std::move(candidates), request.requirement};
  CompositionResult comp;
  if (options_.qcs_composition) {
    comp = composer_.compose(creq);
  } else {
    // Ablation: a random QoS-consistent path (the baseline composer), built
    // with this algorithm's own RNG stream.
    comp = compose_random(composer_, creq, rng_);
  }
  if (!comp.success) {
    plan.failure = FailureCause::kComposition;
    return plan;
  }
  plan.instances = comp.instances;
  plan.composition_cost = comp.cost;

  // Tier 2: dynamic peer selection, hop by hop in the reverse direction of
  // the aggregation flow (hop 1 = the sink-layer instance, selected by the
  // requester's host).
  const std::size_t layers = plan.instances.size();
  std::vector<std::vector<net::PeerId>> hop_candidates(layers);
  for (std::size_t hop = 1; hop <= layers; ++hop) {
    const registry::InstanceId inst = plan.instances[layers - hop];
    auto providers = services_.placement->providers(inst);
    auto& cands = hop_candidates[hop - 1];
    for (net::PeerId p : providers) {
      if (std::find(request.excluded_hosts.begin(),
                    request.excluded_hosts.end(),
                    p) == request.excluded_hosts.end()) {
        cands.push_back(p);
      }
    }
    if (cands.empty()) {
      plan.failure = FailureCause::kSelection;
      return plan;
    }
  }
  services_.neighbors->register_path(request.requester, hop_candidates, now);

  plan.hosts.assign(layers, net::kNoPeer);
  net::PeerId current = request.requester;
  for (std::size_t hop = 1; hop <= layers; ++hop) {
    const auto& inst =
        services_.catalog->instance(plan.instances[layers - hop]);
    const auto& cands = hop_candidates[hop - 1];
    const bool direct = current == request.requester;
    services_.neighbors->prepare_selection(
        current, cands, static_cast<std::uint8_t>(hop), direct, now);

    HopSelection chosen;
    if (options_.smart_selection) {
      chosen = selector_.select_hop(
          *services_.peers, *services_.net, services_.neighbors->table(current),
          current, inst, cands, request.session_duration, now, rng_);
    } else {
      // Ablation: random peer per hop, ignoring all performance information.
      chosen = HopSelection{cands[rng_.index(cands.size())], true};
    }
    if (!chosen.ok()) {
      plan.failure = FailureCause::kSelection;
      return plan;
    }
    if (chosen.random_fallback) ++plan.random_fallback_hops;
    plan.hosts[layers - hop] = chosen.peer;
    current = chosen.peer;
  }
  return plan;
}

}  // namespace qsa::core
