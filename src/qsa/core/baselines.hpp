// The paper's two comparison heuristics (Section 4.1):
//
//  * random — picks a random QoS-consistent service path (ignoring
//    aggregated resource cost) and a uniformly random provider peer per hop
//    (ignoring all performance information);
//  * fixed — always picks the same (deterministic first) consistent service
//    path and "dedicated" peers: the lowest-id provider of each instance.
//    This models the conventional client-server deployment the paper
//    contrasts against.
#pragma once

#include "qsa/core/aggregate.hpp"

namespace qsa::core {

/// A uniformly random QoS-consistent path through the candidate layers
/// (randomized backtracking DFS: succeeds whenever any consistent path
/// exists). Cost is reported with the same scalarization QCS uses so the
/// two are comparable.
[[nodiscard]] CompositionResult compose_random(const QcsComposer& composer,
                                               const CompositionRequest& req,
                                               util::Rng& rng);

/// The deterministic first consistent path (candidates tried in the order
/// given), used by the fixed baseline.
[[nodiscard]] CompositionResult compose_first(const QcsComposer& composer,
                                              const CompositionRequest& req);

class RandomAlgorithm final : public AggregationAlgorithm {
 public:
  RandomAlgorithm(GridServices services, qos::TupleWeights weights,
                  qos::ResourceSchema schema, std::uint64_t seed,
                  cache::ComposeCache* compose_cache = nullptr);

  [[nodiscard]] AggregationPlan aggregate(const ServiceRequest& request,
                                          sim::SimTime now) override;
  [[nodiscard]] std::string_view name() const override { return "random"; }

 private:
  GridServices services_;
  QcsComposer composer_;  // reused only for cost bookkeeping + satisfy checks
  util::Rng rng_;
};

class FixedAlgorithm final : public AggregationAlgorithm {
 public:
  FixedAlgorithm(GridServices services, qos::TupleWeights weights,
                 qos::ResourceSchema schema,
                 cache::ComposeCache* compose_cache = nullptr);

  [[nodiscard]] AggregationPlan aggregate(const ServiceRequest& request,
                                          sim::SimTime now) override;
  [[nodiscard]] std::string_view name() const override { return "fixed"; }

 private:
  GridServices services_;
  QcsComposer composer_;
};

}  // namespace qsa::core
