// Dynamic peer selection (Section 3.3): one hop of the distributed,
// hop-by-hop selection. The current peer chooses, among the candidate
// providers of the next service instance, using only its locally probed
// neighbor information:
//
//   1. candidates it has no information about are set aside;
//   2. known candidates are filtered: probed-alive, probed uptime >= the
//      application's session duration (topological-variation tolerance),
//      probed availability >= R, probed bandwidth >= b;
//   3. the survivors are ranked by the configurable composite metric
//      Phi = sum_i omega_i * ra_i / r_i + omega_{m+1} * beta / b  (eq. 4-5)
//      and the maximizer wins;
//   4. if nothing survives, the uptime filter is relaxed (best effort);
//   5. if still nothing, selection falls back to a random pick among the
//      candidates without information (the paper's random fallback); with
//      no unknowns left the hop fails.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/probe/resolution.hpp"
#include "qsa/probe/snapshot.hpp"
#include "qsa/qos/tuple_compare.hpp"
#include "qsa/registry/service.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::core {

struct HopSelection {
  net::PeerId peer = net::kNoPeer;
  bool random_fallback = false;  ///< chosen without performance information
  [[nodiscard]] bool ok() const noexcept { return peer != net::kNoPeer; }
};

/// Selector options; the defaults are the full QSA behaviour, the switches
/// drive the ablation benches.
struct SelectorOptions {
  bool use_uptime_filter = true;   ///< match uptime against session duration
  bool use_phi_ranking = true;     ///< false: uniform pick among survivors
};

class PeerSelector {
 public:
  PeerSelector(qos::TupleWeights weights, qos::ResourceSchema schema,
               SelectorOptions options = {});

  /// The composite metric Phi for a candidate snapshot against an instance's
  /// requirements. Requires strictly positive requirements.
  [[nodiscard]] double phi(const probe::PerfSnapshot& snap,
                           const registry::ServiceInstance& instance) const;

  /// Same-epoch reservation correction for a candidate, supplied by the
  /// session layer: the host resources reserved since the current
  /// probe-epoch boundary, which probed snapshots cannot see yet.
  using LoadSignal = std::function<qos::ResourceVector(net::PeerId)>;

  /// Attaches (or, with an empty function, detaches) the live load signal:
  /// each candidate's probed availability is reduced by its same-epoch
  /// reservations before the capability filter and the Phi ranking run.
  /// Without it every session admitted inside one probe epoch is ranked
  /// against the same stale snapshot, so they pile onto the epoch's single
  /// Phi maximizer and overcommit it. Off by default — plain QSA selects
  /// on probed state alone; the replication tier turns it on (the
  /// load-balancing half of the subsystem).
  void set_load_signal(LoadSignal load) { load_ = std::move(load); }

  /// One selection step: `current` picks the host for `instance` among
  /// `candidates`. `table` is `current`'s neighbor table (already prepared
  /// by the resolution protocol).
  [[nodiscard]] HopSelection select_hop(
      const net::PeerTable& peers, const net::NetworkModel& net,
      const probe::NeighborTable& table, net::PeerId current,
      const registry::ServiceInstance& instance,
      std::span<const net::PeerId> candidates, sim::SimTime session_duration,
      sim::SimTime now, util::Rng& rng) const;

  [[nodiscard]] const SelectorOptions& options() const noexcept {
    return options_;
  }

 private:
  /// A candidate the current peer holds probe information about.
  struct Known {
    net::PeerId peer;
    probe::PerfSnapshot snap;
  };

  /// One filter+rank pass over known_. Returns the winner or kNoPeer.
  [[nodiscard]] net::PeerId filter_pass(
      const registry::ServiceInstance& instance, sim::SimTime session_duration,
      bool with_uptime, util::Rng& rng) const;

  qos::TupleWeights weights_;
  qos::ResourceSchema schema_;
  SelectorOptions options_;
  LoadSignal load_;

  // select_hop() scratch (mutable: selection is logically const, these are
  // pure workspace). Grow-only capacity; PerfSnapshot is inline storage
  // (SmallVec), so a warm selector allocates nothing. One PeerSelector
  // serves one thread.
  mutable std::vector<Known> known_;
  mutable std::vector<net::PeerId> unknown_;
};

}  // namespace qsa::core
