// The two-tier QoS-aware service aggregation model (QSA): on-demand service
// composition followed by dynamic peer selection, orchestrated per request
// at session setup time (Section 3). Baselines implement the same
// AggregationAlgorithm interface.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "qsa/core/compose.hpp"
#include "qsa/core/select.hpp"
#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/probe/resolution.hpp"
#include "qsa/registry/backend.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/registry/placement.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::core {

/// Why a request failed (setup-time causes here; the session manager adds
/// admission/departure).
enum class FailureCause : std::uint8_t {
  kNone,         ///< success
  kDiscovery,    ///< a service had no discoverable candidate instances
  kComposition,  ///< no QoS-consistent service path exists
  kSelection,    ///< a hop found no acceptable peer
  kAdmission,    ///< reservation failed on the chosen peers/links
  kDeparture,    ///< a provisioning peer left mid-session
};

[[nodiscard]] std::string_view to_string(FailureCause cause);

/// A user request: the abstract service path (source .. sink) plus the
/// end-to-end QoS requirement and intended session duration.
struct ServiceRequest {
  net::PeerId requester = net::kNoPeer;
  std::vector<registry::ServiceId> abstract_path;
  qos::QosVector requirement;
  sim::SimTime session_duration;
  /// Hosts the caller has ruled out (admission-retry support: peers whose
  /// reservation just failed on stale probe data). Every algorithm honors
  /// this — QSA's selection, random's uniform pick, and fixed's dedicated
  /// host all skip excluded providers.
  std::vector<net::PeerId> excluded_hosts;
  /// Observability correlation id (the harness's 1-based request number).
  /// 0 = untraced; downstream layers (session manager) key their spans on
  /// it. Algorithms never read it.
  std::uint64_t trace_id = 0;
};

/// The aggregation decision: which instance runs where, hop by hop.
struct AggregationPlan {
  FailureCause failure = FailureCause::kNone;
  /// Chosen instances, source first, sink last (empty on failure).
  std::vector<registry::InstanceId> instances;
  /// Hosting peers, aligned with `instances`.
  std::vector<net::PeerId> hosts;
  double composition_cost = 0;
  int lookup_hops = 0;          ///< total Chord hops spent on discovery
  sim::SimTime setup_latency;   ///< summed discovery latency
  int random_fallback_hops = 0; ///< hops selected without performance info

  [[nodiscard]] bool ok() const noexcept {
    return failure == FailureCause::kNone;
  }

  /// Back to the default-constructed state, keeping the vectors' capacity —
  /// the aggregate_into() reuse contract.
  void reset() noexcept {
    failure = FailureCause::kNone;
    instances.clear();
    hosts.clear();
    composition_cost = 0;
    lookup_hops = 0;
    setup_latency = sim::SimTime::zero();
    random_fallback_hops = 0;
  }
};

class AggregationAlgorithm {
 public:
  virtual ~AggregationAlgorithm() = default;
  [[nodiscard]] virtual AggregationPlan aggregate(const ServiceRequest& request,
                                                  sim::SimTime now) = 0;
  /// Writes the plan into `out`, reusing its buffers. The serving loop's
  /// entry point: QSA overrides it allocation-free; the default wrapper
  /// (the baselines) move-assigns a fresh plan. Results are identical to
  /// aggregate() either way.
  virtual void aggregate_into(const ServiceRequest& request, sim::SimTime now,
                              AggregationPlan& out) {
    out = aggregate(request, now);
  }
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Live load balancing (replication tier): algorithms that rank hosts may
  /// discount loaded candidates. No-op for algorithms without a ranking.
  virtual void set_load_signal(PeerSelector::LoadSignal) {}
};

/// Everything an aggregation algorithm needs to consult. Non-owning; the
/// grid harness wires one up per simulation.
struct GridServices {
  const registry::ServiceCatalog* catalog = nullptr;
  const registry::PlacementMap* placement = nullptr;
  const registry::DiscoveryBackend* discovery = nullptr;
  const net::PeerTable* peers = nullptr;
  const net::NetworkModel* net = nullptr;
  probe::NeighborResolution* neighbors = nullptr;
};

/// Ablation switches for the QSA algorithm (full QSA by default).
struct QsaOptions {
  bool qcs_composition = true;    ///< false: random consistent path
  bool smart_selection = true;    ///< false: random peer per hop
  SelectorOptions selector = {};  ///< uptime filter / Phi ranking switches
};

/// The paper's QSA algorithm: QCS composition + dynamic peer selection.
class QsaAlgorithm final : public AggregationAlgorithm {
 public:
  QsaAlgorithm(GridServices services, qos::TupleWeights weights,
               qos::ResourceSchema schema, std::uint64_t seed,
               QsaOptions options = {},
               cache::ComposeCache* compose_cache = nullptr);

  [[nodiscard]] AggregationPlan aggregate(const ServiceRequest& request,
                                          sim::SimTime now) override;
  /// The hot-path entry point: steady state (warm discovery cache, warmed
  /// neighbor tables, previously seen path lengths) performs no heap
  /// allocation — the scratch below grows to a plateau and is reused.
  void aggregate_into(const ServiceRequest& request, sim::SimTime now,
                      AggregationPlan& out) override;
  [[nodiscard]] std::string_view name() const override { return "qsa"; }

  [[nodiscard]] const QcsComposer& composer() const noexcept {
    return composer_;
  }

  void set_load_signal(PeerSelector::LoadSignal load) override {
    selector_.set_load_signal(std::move(load));
  }

 private:
  GridServices services_;
  QcsComposer composer_;
  PeerSelector selector_;
  QsaOptions options_;
  util::Rng rng_;

  // Per-request scratch, grow-only (inner vectors keep their capacity
  // across requests). One QsaAlgorithm instance serves one thread.
  std::vector<std::vector<registry::InstanceId>> candidates_;
  std::vector<std::vector<net::PeerId>> hop_candidates_;
  CompositionResult comp_;
};

/// Discovers candidate instances for every service on the abstract path.
/// Shared by QSA and the baselines. Returns false (and sets the plan's
/// failure) when any service has no candidates. `out` is grow-only scratch:
/// only its first abstract_path.size() entries are meaningful after the
/// call (extra entries from earlier, longer requests keep their buffers).
bool discover_candidates(const GridServices& services,
                         const ServiceRequest& request, sim::SimTime now,
                         std::vector<std::vector<registry::InstanceId>>& out,
                         AggregationPlan& plan);

}  // namespace qsa::core
