#include "qsa/core/select.hpp"

#include <vector>

#include "qsa/util/expects.hpp"

namespace qsa::core {

PeerSelector::PeerSelector(qos::TupleWeights weights,
                           qos::ResourceSchema schema, SelectorOptions options)
    : weights_(weights), schema_(schema), options_(options) {}

double PeerSelector::phi(const probe::PerfSnapshot& snap,
                         const registry::ServiceInstance& instance) const {
  QSA_EXPECTS(snap.available.size() == schema_.kinds());
  QSA_EXPECTS(instance.resources.size() == schema_.kinds());
  double value = 0;
  for (std::size_t i = 0; i < schema_.kinds(); ++i) {
    QSA_EXPECTS(instance.resources[i] > 0);
    value += weights_.resource()[i] * snap.available[i] / instance.resources[i];
  }
  QSA_EXPECTS(instance.bandwidth_kbps > 0);
  value +=
      weights_.bandwidth() * snap.bandwidth_kbps / instance.bandwidth_kbps;
  return value;
}

net::PeerId PeerSelector::filter_pass(
    const registry::ServiceInstance& instance, sim::SimTime session_duration,
    bool with_uptime, util::Rng& rng) const {
  net::PeerId best = net::kNoPeer;
  double best_phi = 0;
  std::size_t qualified = 0;
  for (const Known& k : known_) {
    if (!k.snap.alive) continue;
    if (with_uptime && k.snap.uptime < session_duration) continue;
    if (!instance.resources.fits_within(k.snap.available)) continue;
    if (k.snap.bandwidth_kbps < instance.bandwidth_kbps) continue;
    ++qualified;
    if (options_.use_phi_ranking) {
      const double value = phi(k.snap, instance);
      if (best == net::kNoPeer || value > best_phi ||
          (value == best_phi && k.peer < best)) {
        best = k.peer;
        best_phi = value;
      }
    } else if (best == net::kNoPeer || rng.index(qualified) == 0) {
      // Reservoir-sample a uniform survivor when Phi ranking is ablated.
      // The short-circuit means the first survivor draws nothing, exactly
      // as the pre-refactor loop did: RNG streams are unchanged.
      best = k.peer;
    }
  }
  return best;
}

HopSelection PeerSelector::select_hop(
    const net::PeerTable& peers, const net::NetworkModel& net,
    const probe::NeighborTable& table, net::PeerId current,
    const registry::ServiceInstance& instance,
    std::span<const net::PeerId> candidates, sim::SimTime session_duration,
    sim::SimTime now, util::Rng& rng) const {
  known_.clear();
  unknown_.clear();
  known_.reserve(candidates.size());

  for (net::PeerId c : candidates) {
    if (table.knows(c, now)) {
      Known k{c, probe::probe(peers, net, current, c, now)};
      if (load_) {
        // Same-epoch reservation correction (replication tier): discount
        // what was committed on the candidate since the probe snapshot, so
        // the filter and ranking see near-live headroom.
        k.snap.available -= load_(c);
        k.snap.available.clamp_negative_zero();
      }
      known_.push_back(std::move(k));
    } else {
      unknown_.push_back(c);
    }
  }

  // First pass matches uptime only when the filter is on; a failed filtered
  // pass is retried relaxed (best effort). With the filter off there is
  // nothing to relax, so exactly one pass runs — the old loop's second,
  // identical pass never executed either (it broke out), but it cost a
  // dead-code guard on every call and read as if it could.
  net::PeerId best =
      filter_pass(instance, session_duration, options_.use_uptime_filter, rng);
  if (best == net::kNoPeer && options_.use_uptime_filter) {
    best = filter_pass(instance, session_duration, /*with_uptime=*/false, rng);
  }
  if (best != net::kNoPeer) return HopSelection{best, false};

  // Random fallback among candidates we lack information about.
  if (!unknown_.empty()) {
    return HopSelection{unknown_[rng.index(unknown_.size())], true};
  }
  return HopSelection{};  // hop failed
}

}  // namespace qsa::core
