#include "qsa/core/baselines.hpp"

#include <algorithm>

#include "qsa/util/expects.hpp"

namespace qsa::core {
namespace {

/// Backtracking DFS over the layered candidate graph, trying candidates in
/// the order produced by `order` (which may shuffle). Fills `chosen`
/// sink -> source; returns true on a full consistent path. Consistency
/// checks go through the composer so they share its compatibility memo.
bool dfs_path(const QcsComposer& composer, const CompositionRequest& req,
              std::vector<std::vector<registry::InstanceId>>& order,
              std::size_t layer_from_sink,
              const registry::ServiceInstance* downstream,
              std::vector<registry::InstanceId>& chosen) {
  const std::size_t layers = req.candidates.size();
  const std::size_t layer = layers - 1 - layer_from_sink;  // source index
  for (registry::InstanceId id : order[layer]) {
    const auto& inst = composer.catalog().instance(id);
    const bool consistent =
        layer_from_sink == 0
            ? composer.satisfies_requirement(inst, req.requirement)
            : composer.compatible(inst, *downstream);
    if (!consistent) continue;
    chosen[layer] = id;
    if (layer == 0) return true;  // reached the source layer
    if (dfs_path(composer, req, order, layer_from_sink + 1, &inst, chosen)) {
      return true;
    }
  }
  return false;
}

/// The providers of `instance` that survive the request's exclusion list,
/// in the placement map's (sorted) order. Order preservation matters: with
/// no exclusions the result equals the raw provider list, so random picks
/// draw the same RNG stream as before this filter existed.
std::vector<net::PeerId> eligible_providers(
    const registry::PlacementMap& placement, registry::InstanceId instance,
    const std::vector<net::PeerId>& excluded) {
  auto providers = placement.providers(instance);
  std::vector<net::PeerId> eligible;
  eligible.reserve(providers.size());
  for (net::PeerId p : providers) {
    if (std::find(excluded.begin(), excluded.end(), p) == excluded.end()) {
      eligible.push_back(p);
    }
  }
  return eligible;
}

CompositionResult compose_dfs(const QcsComposer& composer,
                              const CompositionRequest& req, util::Rng* rng) {
  CompositionResult result;
  const std::size_t layers = req.candidates.size();
  if (layers == 0) return result;
  for (const auto& layer : req.candidates) {
    if (layer.empty()) return result;
    result.nodes += layer.size();
  }

  std::vector<std::vector<registry::InstanceId>> order = req.candidates;
  if (rng != nullptr) {
    for (auto& layer : order) rng->shuffle(std::span<registry::InstanceId>(layer));
  }

  std::vector<registry::InstanceId> chosen(layers, registry::kNoInstance);
  if (!dfs_path(composer, req, order, 0, nullptr, chosen)) {
    return result;
  }
  result.success = true;
  result.instances = std::move(chosen);
  for (registry::InstanceId id : result.instances) {
    result.cost += composer.instance_cost(id);
  }
  return result;
}

}  // namespace

CompositionResult compose_random(const QcsComposer& composer,
                                 const CompositionRequest& req,
                                 util::Rng& rng) {
  return compose_dfs(composer, req, &rng);
}

CompositionResult compose_first(const QcsComposer& composer,
                                const CompositionRequest& req) {
  return compose_dfs(composer, req, nullptr);
}

RandomAlgorithm::RandomAlgorithm(GridServices services,
                                 qos::TupleWeights weights,
                                 qos::ResourceSchema schema, std::uint64_t seed,
                                 cache::ComposeCache* compose_cache)
    : services_(services),
      composer_(*services.catalog, weights, schema),
      rng_(util::derive_seed(seed, "random-algorithm", 0)) {
  QSA_EXPECTS(services.catalog && services.placement && services.discovery &&
              services.net);
  composer_.set_cache(compose_cache);
}

AggregationPlan RandomAlgorithm::aggregate(const ServiceRequest& request,
                                           sim::SimTime now) {
  QSA_EXPECTS(!request.abstract_path.empty());
  AggregationPlan plan;
  std::vector<std::vector<registry::InstanceId>> candidates;
  if (!discover_candidates(services_, request, now, candidates, plan)) {
    return plan;
  }
  CompositionResult comp = compose_random(
      composer_, CompositionRequest{std::move(candidates), request.requirement},
      rng_);
  if (!comp.success) {
    plan.failure = FailureCause::kComposition;
    return plan;
  }
  plan.instances = comp.instances;
  plan.composition_cost = comp.cost;

  plan.hosts.reserve(plan.instances.size());
  for (registry::InstanceId id : plan.instances) {
    const auto eligible = eligible_providers(*services_.placement, id,
                                             request.excluded_hosts);
    if (eligible.empty()) {
      plan.failure = FailureCause::kSelection;
      plan.hosts.clear();
      return plan;
    }
    plan.hosts.push_back(eligible[rng_.index(eligible.size())]);
    ++plan.random_fallback_hops;
  }
  return plan;
}

FixedAlgorithm::FixedAlgorithm(GridServices services, qos::TupleWeights weights,
                               qos::ResourceSchema schema,
                               cache::ComposeCache* compose_cache)
    : services_(services), composer_(*services.catalog, weights, schema) {
  QSA_EXPECTS(services.catalog && services.placement && services.discovery &&
              services.net);
  composer_.set_cache(compose_cache);
}

AggregationPlan FixedAlgorithm::aggregate(const ServiceRequest& request,
                                          sim::SimTime now) {
  QSA_EXPECTS(!request.abstract_path.empty());
  AggregationPlan plan;
  std::vector<std::vector<registry::InstanceId>> candidates;
  if (!discover_candidates(services_, request, now, candidates, plan)) {
    return plan;
  }
  // Determinism: the directory returns candidates in sorted id order, so the
  // first consistent DFS path is the same for every identical request — the
  // "always picks the same service path" behaviour.
  CompositionResult comp = compose_first(
      composer_,
      CompositionRequest{std::move(candidates), request.requirement});
  if (!comp.success) {
    plan.failure = FailureCause::kComposition;
    return plan;
  }
  plan.instances = comp.instances;
  plan.composition_cost = comp.cost;

  // Dedicated servers: the lowest-id provider of each instance, exactly as a
  // client-server deployment pins services to fixed hosts. When the dedicated
  // host has been excluded (its reservation just failed), fail over to the
  // next-lowest id, the way such deployments fail over to a standby replica.
  plan.hosts.reserve(plan.instances.size());
  for (registry::InstanceId id : plan.instances) {
    const auto eligible = eligible_providers(*services_.placement, id,
                                             request.excluded_hosts);
    if (eligible.empty()) {
      plan.failure = FailureCause::kSelection;
      plan.hosts.clear();
      return plan;
    }
    plan.hosts.push_back(*std::min_element(eligible.begin(), eligible.end()));
  }
  return plan;
}

}  // namespace qsa::core
