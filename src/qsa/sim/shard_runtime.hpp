// Conservative-lookahead parallel discrete-event runtime: partitions a
// simulation into K shards, each owning a private slab EventQueue, and runs
// them on the shared worker pool in barrier epochs.
//
// ## Why the merged event order is identical for every K
//
// The classic conservative-PDES argument (Chandy–Misra lookahead) plus one
// repo-specific ingredient:
//
//  * Epochs. Let m be the earliest pending event time across all shards and
//    L the lookahead — a lower bound on every cross-shard delivery delay
//    (here: the network model's minimum link latency, see
//    net::NetworkModel::min_latency()). Every shard may safely execute all
//    of its events in the window [m, m+L) without hearing from the others:
//    any cross-shard message produced by an event at t >= m arrives at
//    t + delay >= m + L, i.e. beyond the window. Shards rendezvous at the
//    window edge, mailboxes drain, and the next window starts at the new
//    global minimum (skip-ahead: idle stretches cost one epoch, not one
//    epoch per lookahead quantum).
//
//  * State-derived tie-break keys. Parallel execution perturbs *enqueue*
//    order, so equal-time ties must not be broken by sequence numbers the
//    way the single-threaded engine's (time, seq) order does. Every message
//    here carries a key derived from simulation state (the sender peer and
//    its per-peer send counter — see shard_world.cpp), and shard queues
//    order by (time, key, seq). Keys are unique per timestamp, so seq never
//    decides, and each shard executes the exact subsequence of one global
//    (time, key) total order that targets its peers — independent of K and
//    of thread scheduling. A model whose handlers only touch the
//    destination peer's state therefore produces byte-identical output for
//    any K, including K=1 run inline with no threads at all.
//
// ## Mailboxes
//
// Cross-shard messages travel through K*K bounded SPSC rings
// (util::SpscRing), one per directed shard pair, stamped with a per-edge
// sequence number whose contiguity the consumer asserts (a cheap FIFO
// integrity check). A full ring never blocks the producer — that would
// deadlock the epoch barrier — it spills to a producer-owned vector that
// the coordinator drains at the rendezvous. Receivers opportunistically
// drain their inboxes at the start of their epoch slice (deliveries are
// beyond the current window by the lookahead argument, so this is safe
// while producers are still running); the coordinator sweeps the remainder
// between epochs.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "qsa/sim/simulator.hpp"
#include "qsa/sim/time.hpp"
#include "qsa/util/spsc_ring.hpp"

namespace qsa::util {
class ThreadPool;
}

namespace qsa::sim {

/// One simulation message, addressed to a peer. `kind`/`a`/`b`/`x` are
/// model-defined payload; the runtime routes on dst_peer and orders on
/// (at, key).
struct ShardMessage {
  SimTime at;                  ///< absolute delivery time
  std::uint64_t key = 0;       ///< equal-time tie-break; unique per timestamp
  std::uint32_t dst_peer = 0;  ///< routing address
  std::uint32_t kind = 0;      ///< model-defined discriminator
  std::uint32_t edge_seq = 0;  ///< stamped per mailbox edge (FIFO check)
  std::uint32_t src_peer = 0;  ///< model-defined (also key material)
  std::uint64_t a = 0;         ///< model-defined payload
  std::uint64_t b = 0;         ///< model-defined payload
  double x = 0.0;              ///< model-defined payload
};

class ShardRuntime;

/// Shard-local view handed to handlers: the shard's clock and the outbound
/// message path. Only ever touched by the thread currently running the
/// shard's epoch slice.
class ShardContext {
 public:
  [[nodiscard]] SimTime now() const noexcept;
  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }
  /// Routes `m` by destination peer: same shard schedules locally, other
  /// shards go through the mailbox. Cross-shard sends must satisfy
  /// m.at >= now() + lookahead (asserted) — that delay floor is what makes
  /// the epoch window safe.
  void send(const ShardMessage& m);

 private:
  friend class ShardRuntime;
  ShardRuntime* rt_ = nullptr;
  std::uint32_t shard_ = 0;
};

/// A model plugs in one handler per shard. Handlers own the shard's slice of
/// model state and must confine writes to the destination peer of the
/// message being handled (the K-invariance contract above).
class ShardHandler {
 public:
  virtual ~ShardHandler() = default;
  virtual void on_message(ShardContext& ctx, const ShardMessage& m) = 0;
};

class ShardRuntime {
 public:
  struct Config {
    std::size_t shards = 1;
    /// Lower bound on cross-shard delivery delay; must be >= 1 ms.
    SimTime lookahead = SimTime::millis(1);
    /// Per-edge mailbox ring capacity (messages); overflow spills.
    std::size_t mailbox_capacity = 1024;
  };

  struct Stats {
    std::uint64_t epochs = 0;         ///< barrier rendezvous count (0 at K=1)
    std::uint64_t events = 0;         ///< messages executed, all shards
    std::uint64_t cross_shard = 0;    ///< messages that used a mailbox
    std::uint64_t spilled = 0;        ///< of those, how many overflowed
    std::size_t mailbox_high_water = 0;  ///< max ring occupancy seen
    double idle_ms = 0.0;   ///< summed worker wall-clock spent waiting at
                            ///< barriers (0 at K=1; not deterministic)
    double busy_ms = 0.0;   ///< summed worker wall-clock executing events
    std::vector<std::uint64_t> shard_events;  ///< executed, per shard
  };

  /// `shard_map[p]` names the owning shard of peer p (values < cfg.shards);
  /// `handlers` has exactly cfg.shards entries. `pool` is required when
  /// shards > 1 and ignored at K=1 (which runs inline on the caller).
  ShardRuntime(Config cfg, std::vector<std::uint16_t> shard_map,
               std::vector<ShardHandler*> handlers, util::ThreadPool* pool);

  /// Seeds an initial message before (or between) runs. Single-threaded.
  void inject(const ShardMessage& m);

  /// Runs all shards up to and including `horizon`. Returns executed-event
  /// count for this call; cumulative figures live in stats().
  std::size_t run(SimTime horizon);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  friend class ShardContext;

  struct Shard {
    Simulator sim;
    ShardContext ctx;
    std::vector<ShardMessage> arena;      ///< slab of queued messages
    std::vector<std::uint32_t> free_slots;
    std::uint64_t executed = 0;
    std::uint64_t cross_shard = 0;
    std::uint64_t spilled = 0;
    std::size_t mailbox_high_water = 0;
    double busy_ms = 0.0;
  };

  /// One directed mailbox edge src -> dst.
  struct Edge {
    explicit Edge(std::size_t capacity) : ring(capacity) {}
    util::SpscRing<ShardMessage> ring;
    std::vector<ShardMessage> spill;  ///< producer-owned overflow
    std::uint32_t push_seq = 0;       ///< producer-owned
    std::uint32_t pop_seq = 0;        ///< consumer-owned
  };

  [[nodiscard]] Edge& edge(std::uint32_t src, std::uint32_t dst) noexcept {
    return edges_[src * shards_.size() + dst];
  }
  /// Schedules `m` into `shard`'s queue; caller must own the shard.
  void deliver_local(std::uint32_t shard, const ShardMessage& m);
  /// Fires arena slot `slot` of `shard` (the scheduled action body).
  void fire(std::uint32_t shard, std::uint32_t slot);
  /// Routes a handler send from `src` (ShardContext::send body).
  void route(std::uint32_t src, const ShardMessage& m);
  /// Pops every message currently in dst's inbound rings.
  void drain_inboxes(std::uint32_t dst);
  /// Earliest pending event time across shards.
  [[nodiscard]] SimTime next_time() const noexcept;
  /// One shard's slice of an epoch: drain inboxes, run to the window edge.
  void run_slice(std::uint32_t shard, SimTime epoch_end);

  Config cfg_;
  std::vector<std::uint16_t> shard_map_;
  std::vector<ShardHandler*> handlers_;
  util::ThreadPool* pool_;
  std::deque<Shard> shards_;  ///< deque: ShardContext points into elements
  std::deque<Edge> edges_;    ///< K*K, row-major by source; empty at K=1
  Stats stats_;
};

}  // namespace qsa::sim
