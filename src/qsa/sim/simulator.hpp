// The discrete-event simulation driver: owns the clock and the event queue,
// advances time event-by-event until a horizon or until drained.
#pragma once

#include <cstdint>
#include <vector>

#include "qsa/sim/event_queue.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::sim {

class Simulator {
 public:
  /// Current simulated time. Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` `delay` after now.
  EventHandle schedule_in(SimTime delay, EventQueue::Action action) {
    return queue_.schedule(now_ + delay, std::move(action));
  }

  /// Schedules `action` at absolute time `at` (clamped to now if earlier).
  EventHandle schedule_at(SimTime at, EventQueue::Action action) {
    return queue_.schedule(at < now_ ? now_ : at, std::move(action));
  }

  /// Keyed variants: equal-time events fire in ascending key order instead
  /// of schedule order. The sharded runtime uses keys derived from
  /// simulation state so the total order is independent of which thread
  /// enqueued an event first.
  EventHandle schedule_at_keyed(SimTime at, std::uint64_t key,
                                EventQueue::Action action) {
    return queue_.schedule_keyed(at < now_ ? now_ : at, key,
                                 std::move(action));
  }

  void cancel(EventHandle h) { queue_.cancel(h); }

  /// Runs events until the queue drains or the next event is past `horizon`.
  /// The clock finishes at min(horizon, last event time). Returns the number
  /// of events executed.
  std::size_t run_until(SimTime horizon);

  /// Runs until the queue is fully drained.
  std::size_t run() { return run_until(SimTime::infinity()); }

  /// Registers a periodic action firing at start, start+period, ... until
  /// the horizon of the enclosing run. The action may observe now(). The
  /// action is stored once in a registry owned by the simulator; each tick's
  /// event captures only {this, index}, so re-arming never allocates.
  void every(SimTime start, SimTime period, EventQueue::Action action);

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::size_t executed_events() const noexcept {
    return executed_;
  }
  /// High-water mark of the live event count (queue-depth observability).
  [[nodiscard]] std::size_t max_pending_events() const noexcept {
    return queue_.peak_live();
  }
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }

 private:
  struct Periodic {
    SimTime period;
    EventQueue::Action action;
  };
  /// Runs periodic `idx` and re-arms its next tick.
  void fire_periodic(std::uint32_t idx);

  EventQueue queue_;
  std::vector<Periodic> periodics_;
  SimTime now_ = SimTime::zero();
  std::size_t executed_ = 0;
};

}  // namespace qsa::sim
