#include "qsa/sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "qsa/util/expects.hpp"

namespace qsa::sim {

EventHandle EventQueue::schedule_keyed(SimTime at, std::uint64_t key,
                                       Action action) {
  QSA_EXPECTS(action != nullptr);
  std::uint32_t slot;
  if (free_head_ != kNil) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();  // slab growth: the only allocating path
  }
  Slot& s = slots_[slot];
  s.time = at;
  s.key = key;
  s.seq = next_seq_++;
  s.action = std::move(action);
  s.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(slot);
  sift_up(heap_.size() - 1);
  if (heap_.size() > peak_live_) peak_live_ = heap_.size();
  return EventHandle(slot, s.seq);
}

void EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return;
  // Stale handles are inert: the slot may have been recycled (seq differs),
  // or even truncated away by the shrink policy (index out of range).
  if (h.slot_ >= slots_.size()) return;
  Slot& s = slots_[h.slot_];
  if (s.seq != h.seq_) return;
  remove_from_heap(s.heap_pos);
  release(h.slot_);
  maybe_shrink();
}

EventQueue::Fired EventQueue::pop() {
  QSA_EXPECTS(!heap_.empty());
  const std::uint32_t slot = heap_[0];
  Slot& s = slots_[slot];
  Fired fired{s.time, std::move(s.action)};
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    slots_[last].heap_pos = 0;
    sift_down(0);
  }
  release(slot);
  maybe_shrink();
  return fired;
}

void EventQueue::sift_up(std::size_t pos) noexcept {
  const std::uint32_t moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_down(std::size_t pos) noexcept {
  const std::uint32_t moving = heap_[pos];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t fence = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < fence; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = moving;
  slots_[moving].heap_pos = static_cast<std::uint32_t>(pos);
}

void EventQueue::remove_from_heap(std::size_t pos) noexcept {
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;
  heap_[pos] = last;
  slots_[last].heap_pos = static_cast<std::uint32_t>(pos);
  if (pos > 0 && before(last, heap_[(pos - 1) / 4])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

void EventQueue::release(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.seq = 0;
  s.action.reset();  // a popped action was moved out; reset is then a no-op
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::maybe_shrink() {
  const std::size_t live = heap_.size();
  if (slots_.size() < kShrinkMin || live * 4 >= slots_.size()) return;
  // Keep 2x the live count (hysteresis: re-growing right back would defeat
  // the point) and never go below the no-shrink floor.
  const std::size_t target = std::max(live * 2, kShrinkMin / 2);
  std::size_t new_size = slots_.size();
  while (new_size > target && slots_[new_size - 1].seq == 0) --new_size;
  if (new_size == slots_.size()) return;
  slots_.resize(new_size);
  slots_.shrink_to_fit();
  // The free list may reference truncated slots; rebuild it over the
  // survivors. Free-list order only decides which slot index a future event
  // reuses — firing order is (time, seq), so this cannot affect replay.
  free_head_ = kNil;
  for (std::size_t i = new_size; i-- > 0;) {
    if (slots_[i].seq == 0) {
      slots_[i].next_free = free_head_;
      free_head_ = static_cast<std::uint32_t>(i);
    }
  }
  heap_.shrink_to_fit();
  ++shrinks_;
}

}  // namespace qsa::sim
