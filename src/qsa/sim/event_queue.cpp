#include "qsa/sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "qsa/util/expects.hpp"

namespace qsa::sim {

EventHandle EventQueue::schedule(SimTime at, Action action) {
  QSA_EXPECTS(action != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Item{at, seq, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_seqs_.insert(seq);
  ++live_;
  return EventHandle(seq);
}

void EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return;
  // Only a still-pending event can be cancelled; fired or already-cancelled
  // handles are no-ops.
  if (live_seqs_.erase(h.seq_) == 0) return;
  cancelled_.insert(h.seq_);
  --live_;
}

void EventQueue::skim() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  skim();
  return heap_.empty() ? SimTime::infinity() : heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  QSA_EXPECTS(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Item item = std::move(heap_.back());
  heap_.pop_back();
  live_seqs_.erase(item.seq);
  --live_;
  return Fired{item.time, std::move(item.action)};
}

}  // namespace qsa::sim
