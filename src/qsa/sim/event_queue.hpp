// Pending-event set for the discrete-event simulator: an indexed 4-ary heap
// over a slab of pooled event slots, keyed by (time, tie-break key, sequence
// number) so that equal-time events fire in a deterministic order — a
// requirement for deterministic replays.
//
// The tie-break key defaults to 0, in which case the order degenerates to
// the classic (time, schedule order) and is bit-identical to the
// pre-key engine. The sharded runtime (shard_runtime.hpp) schedules every
// event with an explicit key derived from simulation state — not from
// scheduling order — so the merged event order is the same no matter which
// thread (and therefore in which local seq order) an event was enqueued.
//
// Hot-path cost model (the reason this is not a std::priority_queue):
//  - schedule() placement-constructs the callable straight into a recycled
//    slot (InplaceFunction, no heap) and sifts one heap index up;
//  - cancel() is an O(log n) sift-out of the live heap — no tombstones, no
//    side structures, no lazy skimming;
//  - pop() moves the callable out of the slot and releases it to the free
//    list.
// In steady state (slab at its high-water mark) none of the three touches
// the allocator. A handle is {slot, seq}: seq is globally unique and never
// reused, so handles to fired/cancelled events are inert forever, even
// after their slot has been recycled.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "qsa/sim/time.hpp"
#include "qsa/util/inplace_function.hpp"

namespace qsa::sim {

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert; so are handles to events that already fired or were cancelled.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const noexcept { return seq_ != 0; }

 private:
  friend class EventQueue;
  EventHandle(std::uint32_t slot, std::uint64_t seq) noexcept
      : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;  ///< generation: unique per event, never reused
};

class EventQueue {
 public:
  /// Inline-storage callable: captures up to `kActionCapacity` bytes live in
  /// the event slot itself, so scheduling never allocates. Larger captures
  /// fail to compile (box them explicitly if ever needed).
  static constexpr std::size_t kActionCapacity = 48;
  using Action = util::InplaceFunction<void(), kActionCapacity>;

  /// Schedules `action` at absolute time `at`. Returns a handle usable with
  /// cancel(). Equal-time events fire in schedule order (key 0).
  EventHandle schedule(SimTime at, Action action) {
    return schedule_keyed(at, 0, std::move(action));
  }

  /// Schedules `action` at `at` with an explicit tie-break key: equal-time
  /// events fire in ascending key order, with the sequence number only
  /// breaking (time, key) collisions. Callers that need an enqueue-order-
  /// independent total order must make keys unique per (time) — see
  /// shard_runtime.hpp.
  EventHandle schedule_keyed(SimTime at, std::uint64_t key, Action action);

  /// Removes a pending event from the heap and recycles its slot; a no-op
  /// for inert, fired or already-cancelled handles.
  void cancel(EventHandle h);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  /// Number of live (not cancelled, not fired) events.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Earliest live event time; SimTime::infinity() when empty.
  [[nodiscard]] SimTime next_time() const noexcept {
    return heap_.empty() ? SimTime::infinity() : slots_[heap_[0]].time;
  }

  struct Fired {
    SimTime time;
    Action action;
  };
  /// Pops and returns the earliest live event. Requires !empty().
  Fired pop();

  // --- capacity observability (tests, sim.queue_peak gauge) ---

  /// Current slab size: live events plus recycled free slots.
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slots_.size();
  }
  /// High-water mark of the live event count.
  [[nodiscard]] std::size_t peak_live() const noexcept { return peak_live_; }
  /// Times the shrink policy released slab/heap storage after a spike.
  [[nodiscard]] std::size_t shrink_count() const noexcept { return shrinks_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffU;
  /// Slabs below this size never shrink: small queues keep their storage so
  /// steady-state scheduling stays allocation-free.
  static constexpr std::size_t kShrinkMin = 1024;

  struct Slot {
    SimTime time;
    std::uint64_t key = 0;  ///< tie-break between equal-time events
    std::uint64_t seq = 0;  ///< 0 = free
    std::uint32_t heap_pos = 0;
    std::uint32_t next_free = kNil;
    Action action;
  };

  /// True when slot `a` fires before slot `b`: (time, key, seq) order.
  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const noexcept {
    const Slot& x = slots_[a];
    const Slot& y = slots_[b];
    if (x.time != y.time) return x.time < y.time;
    if (x.key != y.key) return x.key < y.key;
    return x.seq < y.seq;
  }

  void sift_up(std::size_t pos) noexcept;
  void sift_down(std::size_t pos) noexcept;
  /// Removes the heap entry at `pos`, restoring the heap property.
  void remove_from_heap(std::size_t pos) noexcept;
  /// Recycles `slot` onto the free list (destroys any held action).
  void release(std::uint32_t slot) noexcept;
  /// After a churn spike: once live events fall below 1/4 of the slab, drop
  /// trailing free slots and return the spare storage. Live slots are never
  /// moved (outstanding handles index them), so this is opportunistic.
  void maybe_shrink();

  std::vector<Slot> slots_;           ///< slab, grows to high-water and stays
  std::vector<std::uint32_t> heap_;   ///< 4-ary heap of slot indices
  std::uint32_t free_head_ = kNil;    ///< intrusive free list through slots
  std::uint64_t next_seq_ = 1;
  std::size_t peak_live_ = 0;
  std::size_t shrinks_ = 0;
};

}  // namespace qsa::sim
