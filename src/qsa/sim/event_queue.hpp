// Pending-event set for the discrete-event simulator: a binary heap keyed by
// (time, sequence number) so that equal-time events fire in schedule order —
// a requirement for deterministic replays. Cancellation is lazy: a cancelled
// event stays in the heap but is skipped when it surfaces (departed peers
// cancel their pending timers this way).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "qsa/sim/time.hpp"

namespace qsa::sim {

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const noexcept { return seq_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t seq) noexcept : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at`. Returns a handle usable with
  /// cancel().
  EventHandle schedule(SimTime at, Action action);

  /// Marks an event as cancelled; a no-op for inert or already-fired handles.
  void cancel(EventHandle h);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  /// Number of live (not cancelled, not fired) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Earliest live event time; SimTime::infinity() when empty.
  [[nodiscard]] SimTime next_time();

  struct Fired {
    SimTime time;
    Action action;
  };
  /// Pops and returns the earliest live event. Requires !empty().
  Fired pop();

 private:
  struct Item {
    SimTime time;
    std::uint64_t seq = 0;
    Action action;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  /// Removes cancelled items from the top of the heap.
  void skim();

  std::vector<Item> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> live_seqs_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace qsa::sim
