// Simulated time as an integral millisecond count. Integer time keeps the
// event queue total order exact (no floating-point tie ambiguity); the
// paper's experiments span at most 400 simulated minutes = 2.4e7 ms, far
// inside 64-bit range.
#pragma once

#include <compare>
#include <cstdint>

namespace qsa::sim {

class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) noexcept {
    return SimTime(ms);
  }
  [[nodiscard]] static constexpr SimTime seconds(double s) noexcept {
    return SimTime(static_cast<std::int64_t>(s * 1e3));
  }
  [[nodiscard]] static constexpr SimTime minutes(double m) noexcept {
    return SimTime(static_cast<std::int64_t>(m * 60e3));
  }
  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime(0); }
  /// A time later than any event the simulator will ever schedule.
  [[nodiscard]] static constexpr SimTime infinity() noexcept {
    return SimTime(INT64_MAX);
  }

  [[nodiscard]] constexpr std::int64_t as_millis() const noexcept { return ms_; }
  [[nodiscard]] constexpr double as_seconds() const noexcept { return static_cast<double>(ms_) / 1e3; }
  [[nodiscard]] constexpr double as_minutes() const noexcept { return static_cast<double>(ms_) / 60e3; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime(a.ms_ + b.ms_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime(a.ms_ - b.ms_);
  }
  constexpr SimTime& operator+=(SimTime o) noexcept {
    ms_ += o.ms_;
    return *this;
  }

 private:
  constexpr explicit SimTime(std::int64_t ms) noexcept : ms_(ms) {}
  std::int64_t ms_ = 0;
};

}  // namespace qsa::sim
