#include "qsa/sim/shard_runtime.hpp"

#include <algorithm>
#include <chrono>

#include "qsa/util/expects.hpp"
#include "qsa/util/thread_pool.hpp"

namespace qsa::sim {

namespace {

using WallClock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(WallClock::time_point t0) noexcept {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0)
      .count();
}

}  // namespace

SimTime ShardContext::now() const noexcept {
  return rt_->shards_[shard_].sim.now();
}

void ShardContext::send(const ShardMessage& m) { rt_->route(shard_, m); }

ShardRuntime::ShardRuntime(Config cfg, std::vector<std::uint16_t> shard_map,
                           std::vector<ShardHandler*> handlers,
                           util::ThreadPool* pool)
    : cfg_(cfg),
      shard_map_(std::move(shard_map)),
      handlers_(std::move(handlers)),
      pool_(pool) {
  QSA_EXPECTS(cfg_.shards >= 1);
  QSA_EXPECTS(cfg_.lookahead >= SimTime::millis(1));
  QSA_EXPECTS(handlers_.size() == cfg_.shards);
  QSA_EXPECTS(cfg_.shards == 1 || pool_ != nullptr);
  for (std::uint16_t s : shard_map_) QSA_EXPECTS(s < cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    Shard& shard = shards_.emplace_back();
    shard.ctx.rt_ = this;
    shard.ctx.shard_ = static_cast<std::uint32_t>(s);
  }
  if (cfg_.shards > 1) {
    for (std::size_t i = 0; i < cfg_.shards * cfg_.shards; ++i) {
      edges_.emplace_back(cfg_.mailbox_capacity);
    }
  }
  stats_.shard_events.assign(cfg_.shards, 0);
}

void ShardRuntime::inject(const ShardMessage& m) {
  QSA_EXPECTS(m.dst_peer < shard_map_.size());
  deliver_local(shard_map_[m.dst_peer], m);
}

void ShardRuntime::deliver_local(std::uint32_t shard, const ShardMessage& m) {
  Shard& sh = shards_[shard];
  std::uint32_t slot;
  if (!sh.free_slots.empty()) {
    slot = sh.free_slots.back();
    sh.free_slots.pop_back();
    sh.arena[slot] = m;
  } else {
    slot = static_cast<std::uint32_t>(sh.arena.size());
    sh.arena.push_back(m);
  }
  // The action captures 16 bytes — far under the slot's inline capacity —
  // because the message body lives in the shard's arena, not the capture.
  sh.sim.schedule_at_keyed(m.at, m.key,
                           [this, shard, slot] { fire(shard, slot); });
}

void ShardRuntime::fire(std::uint32_t shard, std::uint32_t slot) {
  Shard& sh = shards_[shard];
  const ShardMessage m = sh.arena[slot];  // copy: handlers may grow the arena
  sh.free_slots.push_back(slot);
  handlers_[shard]->on_message(sh.ctx, m);
}

void ShardRuntime::route(std::uint32_t src, const ShardMessage& m) {
  QSA_EXPECTS(m.dst_peer < shard_map_.size());
  const std::uint32_t dst = shard_map_[m.dst_peer];
  if (dst == src) {
    deliver_local(src, m);
    return;
  }
  // The whole epoch-window argument rests on this floor: a cross-shard
  // message may not arrive sooner than one lookahead after its send.
  QSA_ASSERT(m.at >= shards_[src].sim.now() + cfg_.lookahead);
  Shard& sender = shards_[src];
  Edge& e = edge(src, dst);
  ShardMessage stamped = m;
  stamped.edge_seq = e.push_seq++;
  ++sender.cross_shard;
  // Once an edge has spilled, later messages must spill too until the
  // coordinator drains the backlog: letting them re-enter the ring would
  // reorder the edge's FIFO (the consumer asserts edge_seq contiguity).
  if (!e.spill.empty() || !e.ring.try_push(stamped)) {
    e.spill.push_back(stamped);
    ++sender.spilled;
  } else {
    sender.mailbox_high_water =
        std::max(sender.mailbox_high_water, e.ring.size());
  }
}

void ShardRuntime::drain_inboxes(std::uint32_t dst) {
  for (std::uint32_t src = 0; src < shards_.size(); ++src) {
    if (src == dst) continue;
    Edge& e = edge(src, dst);
    ShardMessage m;
    while (e.ring.try_pop(m)) {
      QSA_ASSERT(m.edge_seq == e.pop_seq);
      ++e.pop_seq;
      deliver_local(dst, m);
    }
  }
}

SimTime ShardRuntime::next_time() const noexcept {
  SimTime lo = SimTime::infinity();
  for (const Shard& sh : shards_) lo = std::min(lo, sh.sim.queue().next_time());
  return lo;
}

void ShardRuntime::run_slice(std::uint32_t shard, SimTime epoch_end) {
  const auto t0 = WallClock::now();
  Shard& sh = shards_[shard];
  // Inbox deliveries are all beyond epoch_end (lookahead floor), so draining
  // here — while producers may still be pushing — only pre-schedules future
  // work; anything pushed after this point waits for the coordinator sweep.
  drain_inboxes(shard);
  sh.sim.run_until(epoch_end);
  sh.busy_ms += ms_since(t0);
}

std::size_t ShardRuntime::run(SimTime horizon) {
  QSA_EXPECTS(horizon < SimTime::infinity());
  const std::uint64_t events_before = stats_.events;
  if (cfg_.shards == 1) {
    // Fast path: no pool, no mailboxes, no barriers — the keyed queue alone
    // carries the total order, so this is the plain single-threaded engine.
    const auto t0 = WallClock::now();
    shards_[0].sim.run_until(horizon);
    shards_[0].busy_ms += ms_since(t0);
  } else {
    const std::size_t k = shards_.size();
    std::vector<double> busy_before(k);
    for (;;) {
      const SimTime m = next_time();
      if (m > horizon) break;
      const SimTime epoch_end =
          std::min(horizon, m + cfg_.lookahead - SimTime::millis(1));
      for (std::size_t s = 0; s < k; ++s) busy_before[s] = shards_[s].busy_ms;
      const auto t0 = WallClock::now();
      pool_->parallel_for(k, [this, epoch_end](std::size_t s) {
        run_slice(static_cast<std::uint32_t>(s), epoch_end);
      });
      const double region_ms = ms_since(t0);
      for (std::size_t s = 0; s < k; ++s) {
        stats_.idle_ms +=
            std::max(0.0, region_ms - (shards_[s].busy_ms - busy_before[s]));
      }
      ++stats_.epochs;
      // Post-barrier sweep: single-threaded, so the coordinator owns every
      // ring endpoint and every spill vector here.
      for (std::uint32_t dst = 0; dst < k; ++dst) {
        drain_inboxes(dst);
        for (std::uint32_t src = 0; src < k; ++src) {
          if (src == dst) continue;
          Edge& e = edge(src, dst);
          for (const ShardMessage& m : e.spill) {
            QSA_ASSERT(m.edge_seq == e.pop_seq);
            ++e.pop_seq;
            deliver_local(dst, m);
          }
          e.spill.clear();
        }
      }
    }
  }
  // Fold per-shard tallies into the cumulative stats snapshot.
  stats_.events = 0;
  stats_.cross_shard = 0;
  stats_.spilled = 0;
  stats_.mailbox_high_water = 0;
  stats_.busy_ms = 0.0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = shards_[s];
    stats_.shard_events[s] = sh.sim.executed_events();
    stats_.events += sh.sim.executed_events();
    stats_.cross_shard += sh.cross_shard;
    stats_.spilled += sh.spilled;
    stats_.mailbox_high_water =
        std::max(stats_.mailbox_high_water, sh.mailbox_high_water);
    stats_.busy_ms += sh.busy_ms;
  }
  return static_cast<std::size_t>(stats_.events - events_before);
}

}  // namespace qsa::sim
