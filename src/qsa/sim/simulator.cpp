#include "qsa/sim/simulator.hpp"

#include <utility>

namespace qsa::sim {

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    if (queue_.next_time() > horizon) break;
    auto [time, action] = queue_.pop();
    now_ = time;
    action();
    ++count;
    ++executed_;
  }
  if (horizon != SimTime::infinity() && now_ < horizon) now_ = horizon;
  return count;
}

void Simulator::every(SimTime start, SimTime period,
                      EventQueue::Action action) {
  // The action lives in the registry for the life of the simulation; the
  // scheduled tick is a {this, idx} capture that fits the event slot. This
  // is the periodic path's whole allocation story: one registry push here,
  // nothing per tick (the shared_ptr pair the old engine allocated per
  // registration is gone entirely).
  const auto idx = static_cast<std::uint32_t>(periodics_.size());
  periodics_.push_back(Periodic{period, std::move(action)});
  schedule_at(start, [this, idx] { fire_periodic(idx); });
}

void Simulator::fire_periodic(std::uint32_t idx) {
  periodics_[idx].action();
  // Re-index after the action: it may itself register a periodic, which can
  // relocate the registry. The action-then-re-arm order matches the old
  // engine, keeping event sequence numbers (and thus replays) identical.
  schedule_in(periodics_[idx].period, [this, idx] { fire_periodic(idx); });
}

}  // namespace qsa::sim
