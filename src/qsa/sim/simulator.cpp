#include "qsa/sim/simulator.hpp"

#include <memory>
#include <utility>

namespace qsa::sim {

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    if (queue_.next_time() > horizon) break;
    auto [time, action] = queue_.pop();
    now_ = time;
    action();
    ++count;
    ++executed_;
  }
  if (horizon != SimTime::infinity() && now_ < horizon) now_ = horizon;
  return count;
}

void Simulator::every(SimTime start, SimTime period,
                      std::function<void()> action) {
  // Self-rescheduling tick. A shared_ptr closure keeps the action alive
  // across reschedules; periodic ticks run for the life of the simulation.
  auto tick = std::make_shared<std::function<void()>>();
  auto shared_action = std::make_shared<std::function<void()>>(std::move(action));
  *tick = [this, period, tick, shared_action] {
    (*shared_action)();
    schedule_in(period, *tick);
  };
  schedule_at(start, *tick);
}

}  // namespace qsa::sim
