// Time series of sampled metric values (the success-ratio fluctuation plots
// of Figures 6 and 8 sample psi every 2 minutes).
#pragma once

#include <cstddef>
#include <vector>

#include "qsa/sim/time.hpp"

namespace qsa::metrics {

struct Sample {
  sim::SimTime time;
  double value = 0;
};

class TimeSeries {
 public:
  void record(sim::SimTime time, double value) {
    samples_.push_back(Sample{time, value});
  }

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Mean of the sample values (0 when empty).
  [[nodiscard]] double mean() const;

 private:
  std::vector<Sample> samples_;
};

/// Windowed ratio sampler: counts successes/attempts since the last flush
/// and emits their ratio as one sample (how the paper's fluctuation figures
/// are computed).
class RatioSampler {
 public:
  void success() { ++successes_; ++attempts_; }
  void failure() { ++attempts_; }

  /// Emits the window's ratio into `out` and resets the window. Windows with
  /// no attempts emit `idle_value` (Figures 6/8 plot 1.0 when nothing
  /// failed because nothing arrived is not meaningful; we default to
  /// skipping such windows).
  void flush(TimeSeries& out, sim::SimTime now, bool skip_idle = true,
             double idle_value = 1.0);

  [[nodiscard]] std::uint64_t window_attempts() const noexcept {
    return attempts_;
  }

 private:
  std::uint64_t successes_ = 0;
  std::uint64_t attempts_ = 0;
};

}  // namespace qsa::metrics
