// Streaming summary statistics (Welford) and percentile extraction for
// experiment reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace qsa::metrics {

/// Single-pass mean/variance/min/max accumulator.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel replication reduction).
  void merge(const Summary& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Percentile (0 <= p <= 100) by linear interpolation between order
/// statistics; the input is copied and sorted.
[[nodiscard]] double percentile(std::vector<double> values, double p);

}  // namespace qsa::metrics
