// Aligned-text and CSV table emission for the bench harness: every figure
// bench prints the series it regenerates as both a human-readable table and
// machine-readable CSV rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qsa::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Adds a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 3);

  /// Column-aligned rendering with a header rule.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qsa::metrics
