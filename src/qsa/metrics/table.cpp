#include "qsa/metrics/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "qsa/util/expects.hpp"

namespace qsa::metrics {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  QSA_EXPECTS(!columns_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  QSA_EXPECTS(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (columns_.size() - 1), '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "," : "") << cells[c];
    }
    os << '\n';
  };
  emit_row(columns_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace qsa::metrics
