#include "qsa/metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "qsa/util/expects.hpp"

namespace qsa::metrics {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ = (na * mean_ + nb * other.mean_) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  QSA_EXPECTS(!values.empty());
  QSA_EXPECTS(p >= 0 && p <= 100);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1 - frac) + values[lo + 1] * frac;
}

}  // namespace qsa::metrics
