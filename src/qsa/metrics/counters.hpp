// Named event counters for a simulation run (requests by outcome, failure
// causes, protocol overhead, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace qsa::metrics {

class Counters {
 public:
  void add(std::string_view name, std::uint64_t delta = 1);

  [[nodiscard]] std::uint64_t get(std::string_view name) const;

  /// All counters in name order (deterministic output).
  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>& all()
      const noexcept {
    return counts_;
  }

  void clear() { counts_.clear(); }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counts_;
};

}  // namespace qsa::metrics
