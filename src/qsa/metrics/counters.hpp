// Named event counters for a simulation run (requests by outcome, failure
// causes, protocol overhead, ...).
//
// The hot path (`add` on an existing name) is one transparent hash lookup
// plus an indexed increment — no allocation, no tree walk. Names are
// interned once; `all()` materialises a name-sorted snapshot so exported
// output stays deterministic.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "qsa/util/interner.hpp"

namespace qsa::metrics {

class Counters {
 public:
  void add(std::string_view name, std::uint64_t delta = 1);

  [[nodiscard]] std::uint64_t get(std::string_view name) const;

  /// All counters as (name, value) pairs in name order (deterministic
  /// output). The views point into the interner and stay valid until
  /// clear().
  [[nodiscard]] std::vector<std::pair<std::string_view, std::uint64_t>> all()
      const;

  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  void clear();

 private:
  util::Interner names_;
  std::vector<std::uint64_t> values_;  // indexed by interner id
};

}  // namespace qsa::metrics
