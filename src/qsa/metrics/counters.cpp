#include "qsa/metrics/counters.hpp"

#include <algorithm>

namespace qsa::metrics {

void Counters::add(std::string_view name, std::uint64_t delta) {
  const util::Interner::Id id = names_.intern(name);
  if (id >= values_.size()) values_.resize(id + 1, 0);
  values_[id] += delta;
}

std::uint64_t Counters::get(std::string_view name) const {
  const util::Interner::Id id = names_.find(name);
  return id == util::Interner::kInvalid ? 0 : values_[id];
}

std::vector<std::pair<std::string_view, std::uint64_t>> Counters::all() const {
  std::vector<std::pair<std::string_view, std::uint64_t>> out;
  out.reserve(values_.size());
  for (std::size_t id = 0; id < values_.size(); ++id) {
    out.emplace_back(names_.name(static_cast<util::Interner::Id>(id)),
                     values_[id]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Counters::clear() {
  names_.clear();
  values_.clear();
}

}  // namespace qsa::metrics
