#include "qsa/metrics/counters.hpp"

namespace qsa::metrics {

void Counters::add(std::string_view name, std::uint64_t delta) {
  auto it = counts_.find(name);
  if (it == counts_.end()) {
    counts_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t Counters::get(std::string_view name) const {
  auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace qsa::metrics
