#include "qsa/metrics/timeseries.hpp"

namespace qsa::metrics {

double TimeSeries::mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (const Sample& s : samples_) sum += s.value;
  return sum / static_cast<double>(samples_.size());
}

void RatioSampler::flush(TimeSeries& out, sim::SimTime now, bool skip_idle,
                         double idle_value) {
  if (attempts_ == 0) {
    if (!skip_idle) out.record(now, idle_value);
  } else {
    out.record(now, static_cast<double>(successes_) /
                        static_cast<double>(attempts_));
  }
  successes_ = 0;
  attempts_ = 0;
}

}  // namespace qsa::metrics
