// Per-peer neighbor tables (Section 2.2 + 3.3).
//
// A peer may probe at most M neighbors, prioritized by benefit: 1-hop direct
// first, then 1-hop indirect, then 2-hop direct, and so on. Entries are soft
// state with a TTL, refreshed by the resolution protocol while a service
// path needs them. When the table is full, a new entry may evict the
// lowest-benefit (then stalest) existing entry, but never one with higher
// benefit than its own.
#pragma once

#include <cstdint>

#include "qsa/net/peer.hpp"
#include "qsa/sim/time.hpp"
#include "qsa/util/dense_map.hpp"

namespace qsa::probe {

enum class NeighborKind : std::uint8_t { kDirect, kIndirect };

/// Largest hop index an entry can carry: `NeighborEntry::hop` is a
/// std::uint8_t, so callers registering a path must keep its length within
/// this bound or the hop distance would silently wrap.
inline constexpr std::size_t kMaxHopIndex = 255;

struct NeighborEntry {
  std::uint8_t hop = 1;  ///< i-hop distance along the aggregation flow
  NeighborKind kind = NeighborKind::kDirect;
  sim::SimTime expires;  ///< soft-state deadline
};

/// Probe priority of an entry: lower is more beneficial. Matches the paper's
/// order 1-hop direct < 1-hop indirect < 2-hop direct < ...
[[nodiscard]] constexpr int benefit_rank(std::uint8_t hop,
                                         NeighborKind kind) noexcept {
  return 2 * (hop - 1) + (kind == NeighborKind::kDirect ? 0 : 1);
}

class NeighborTable {
 public:
  /// An empty table with budget 0: the state a DenseMap slot holds before a
  /// real table is assigned in (and after one is erased). add() on such a
  /// table asserts — per-peer tables are always created with a budget.
  NeighborTable() = default;

  /// `budget` is M, the maximum number of probed neighbors.
  explicit NeighborTable(std::size_t budget);

  /// Inserts or refreshes a neighbor. On refresh the entry keeps the better
  /// (lower) benefit rank and extends its TTL. Returns false when the table
  /// is full of entries at least as beneficial (the insert is rejected).
  bool add(net::PeerId peer, std::uint8_t hop, NeighborKind kind,
           sim::SimTime now, sim::SimTime ttl);

  /// True iff `peer` has a non-expired entry (i.e. the owner has probed
  /// performance information about it).
  [[nodiscard]] bool knows(net::PeerId peer, sim::SimTime now) const;

  /// Drops expired entries.
  void purge(sim::SimTime now);

  /// Removes a specific entry if present.
  void erase(net::PeerId peer);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }

  /// The live entry set. A flat open-addressing map: the per-candidate
  /// lookups selection performs on every request are a mix-mask-probe over
  /// contiguous slots, with no per-node allocation and an iteration order
  /// that is identical across platforms and standard libraries.
  [[nodiscard]] const util::DenseMap<net::PeerId, NeighborEntry>& entries()
      const noexcept {
    return entries_;
  }

 private:
  std::size_t budget_ = 0;
  util::DenseMap<net::PeerId, NeighborEntry> entries_;
};

}  // namespace qsa::probe
