// Dynamic neighbor resolution protocol (Section 3.3).
//
// After the service composer produces a service path, the requester's host
// adds every hop's candidate providers to its own table as *direct* i-hop
// neighbors, and notifies candidates so that each hop's candidates adopt the
// next hop's candidates as *indirect* neighbors (they may be asked to pick
// among them during hop-by-hop selection). Entries are soft state: the
// notifications are re-sent while the path is in use, so the TTL covers the
// session; unused entries expire.
//
// Simulation note: tables are materialized lazily. The requester's direct
// entries are registered eagerly; a candidate's indirect entries are
// registered at the moment that candidate is actually asked to select the
// next hop (`prepare_selection`) — the table content any selector observes
// is exactly what the protocol would have delivered, while the simulator
// skips building tables for the (many) candidates that are never selected.
// The full notification fan-out is still *accounted*: `messages()` counts
// every notification the real protocol would send.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qsa/fault/fault.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/probe/neighbor_table.hpp"
#include "qsa/util/dense_map.hpp"

namespace qsa::net {
class NetworkModel;
}

namespace qsa::probe {

class NeighborResolution {
 public:
  /// `budget` is M (max probed neighbors per peer); `ttl` the soft-state
  /// lifetime granted by one notification.
  NeighborResolution(std::size_t budget, sim::SimTime ttl);

  /// Attaches observability (optional; null detaches). Records
  /// `probe.notifications` (counter), `probe.staleness_at_use_ms`
  /// (histogram: entry age when a selector consults it),
  /// `probe.stale_hits` (counter: consults that found the entry already
  /// TTL-expired) and — when `net` is given — `probe.rtt_ms` (histogram:
  /// round-trip of each direct notification).
  void set_metrics(obs::MetricsRegistry* metrics,
                   const net::NetworkModel* net = nullptr);

  /// Attaches the fault-injection plan (null = perfect messaging, the
  /// default). Notifications and soft-state refreshes are then resent up to
  /// the retry budget with exponential backoff; a message lost on every
  /// attempt leaves the table entry unregistered/unrefreshed, so it goes
  /// stale exactly as the real soft-state protocol would.
  void set_faults(const fault::FaultPlan* faults) noexcept {
    faults_ = faults;
  }

  /// The (lazily created) neighbor table of a peer.
  [[nodiscard]] NeighborTable& table(net::PeerId peer);

  /// Runs the protocol for a freshly composed path: `hop_candidates[i]`
  /// holds the candidate providers of hop i+1 (hop count in the reverse
  /// direction of the aggregation flow, as the paper defines it). Registers
  /// the requester's direct entries and counts the indirect notifications.
  void register_path(net::PeerId requester,
                     std::span<const std::vector<net::PeerId>> hop_candidates,
                     sim::SimTime now);

  /// Ensures `selector`'s table reflects the notification that covered
  /// `candidates` (the providers of the hop it must now select). `hop` is
  /// the candidates' hop index from the requester; `direct` is true when the
  /// selector is the requester itself.
  void prepare_selection(net::PeerId selector,
                         std::span<const net::PeerId> candidates,
                         std::uint8_t hop, bool direct, sim::SimTime now);

  /// Forgets a departed peer's table.
  void drop_peer(net::PeerId peer);

  /// Notification messages the protocol has sent so far (overhead metric).
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }
  [[nodiscard]] sim::SimTime ttl() const noexcept { return ttl_; }

 private:
  /// Delivers one soft-state message from `a` to `b` on `ch`, resending up
  /// to the plan's retry budget. Resends always count into `messages_`; the
  /// first send only when `count_first_send` (refreshes materialized by
  /// prepare_selection were already accounted by register_path's fan-out).
  /// Returns the delivery of the first successful send, or `delivered ==
  /// false` when every attempt was lost. Trivially succeeds without a plan.
  fault::Delivery send_soft_state(fault::Channel ch, net::PeerId a,
                                  net::PeerId b, bool count_first_send);

  std::size_t budget_;
  sim::SimTime ttl_;
  util::DenseMap<net::PeerId, NeighborTable> tables_;
  std::uint64_t messages_ = 0;
  const fault::FaultPlan* faults_ = nullptr;

  // Observability handles; all null when detached (the disabled path is a
  // pointer test, no allocation).
  const net::NetworkModel* net_ = nullptr;
  obs::Counter* notifications_ = nullptr;
  obs::Counter* stale_hits_ = nullptr;
  obs::Histogram* staleness_at_use_ = nullptr;
  obs::Histogram* probe_rtt_ = nullptr;
};

}  // namespace qsa::probe
