#include "qsa/probe/snapshot.hpp"

namespace qsa::probe {

PerfSnapshot probe(const net::PeerTable& peers, const net::NetworkModel& net,
                   net::PeerId prober, net::PeerId target, sim::SimTime now) {
  PerfSnapshot s;
  s.alive = peers.probed_alive(target, now);
  if (!s.alive) return s;
  s.available = peers.probed_available(target, now);
  s.bandwidth_kbps = net.probed_available_kbps(target, prober, now);
  s.latency = net.latency(target, prober);
  s.uptime = peers.probed_uptime(target, now);
  return s;
}

}  // namespace qsa::probe
