#include "qsa/probe/resolution.hpp"

#include "qsa/util/expects.hpp"

namespace qsa::probe {

NeighborResolution::NeighborResolution(std::size_t budget, sim::SimTime ttl)
    : budget_(budget), ttl_(ttl) {
  QSA_EXPECTS(budget >= 1);
  QSA_EXPECTS(ttl > sim::SimTime::zero());
}

NeighborTable& NeighborResolution::table(net::PeerId peer) {
  auto it = tables_.find(peer);
  if (it == tables_.end()) {
    it = tables_.emplace(peer, NeighborTable(budget_)).first;
  }
  return it->second;
}

void NeighborResolution::register_path(
    net::PeerId requester,
    std::span<const std::vector<net::PeerId>> hop_candidates,
    sim::SimTime now) {
  NeighborTable& mine = table(requester);
  for (std::size_t i = 0; i < hop_candidates.size(); ++i) {
    const auto hop = static_cast<std::uint8_t>(i + 1);
    for (net::PeerId candidate : hop_candidates[i]) {
      mine.add(candidate, hop, NeighborKind::kDirect, now, ttl_);
      ++messages_;  // the notification to this candidate
    }
    // Each hop-i candidate is notified about every hop-(i+1) candidate;
    // those indirect-table updates are accounted here and materialized
    // lazily in prepare_selection.
    if (i + 1 < hop_candidates.size()) {
      messages_ += hop_candidates[i].size() * hop_candidates[i + 1].size();
    }
  }
}

void NeighborResolution::prepare_selection(
    net::PeerId selector, std::span<const net::PeerId> candidates,
    std::uint8_t hop, bool direct, sim::SimTime now) {
  NeighborTable& t = table(selector);
  const NeighborKind kind =
      direct ? NeighborKind::kDirect : NeighborKind::kIndirect;
  // Relative to the selector an indirect neighbor is one hop away; the
  // requester keeps the absolute hop index.
  const std::uint8_t entry_hop = direct ? hop : std::uint8_t{1};
  for (net::PeerId candidate : candidates) {
    t.add(candidate, entry_hop, kind, now, ttl_);
  }
}

void NeighborResolution::drop_peer(net::PeerId peer) { tables_.erase(peer); }

}  // namespace qsa::probe
