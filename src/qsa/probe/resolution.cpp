#include "qsa/probe/resolution.hpp"

#include "qsa/net/network.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::probe {

NeighborResolution::NeighborResolution(std::size_t budget, sim::SimTime ttl)
    : budget_(budget), ttl_(ttl) {
  QSA_EXPECTS(budget >= 1);
  QSA_EXPECTS(ttl > sim::SimTime::zero());
}

void NeighborResolution::set_metrics(obs::MetricsRegistry* metrics,
                                     const net::NetworkModel* net) {
  net_ = net;
  if (metrics == nullptr) {
    notifications_ = nullptr;
    stale_hits_ = nullptr;
    staleness_at_use_ = nullptr;
    probe_rtt_ = nullptr;
    return;
  }
  notifications_ = &metrics->counter("probe.notifications");
  stale_hits_ = &metrics->counter("probe.stale_hits");
  staleness_at_use_ = &metrics->histogram("probe.staleness_at_use_ms");
  probe_rtt_ = &metrics->histogram("probe.rtt_ms");
}

fault::Delivery NeighborResolution::send_soft_state(fault::Channel ch,
                                                    net::PeerId a,
                                                    net::PeerId b,
                                                    bool count_first_send) {
  if (count_first_send) ++messages_;
  if (faults_ == nullptr || !faults_->enabled()) return {};
  const int budget = faults_->config().max_retries;
  for (int send = 0; send <= budget; ++send) {
    if (send > 0) ++messages_;  // every resend is real protocol overhead
    const fault::Delivery d = faults_->attempt(ch, a, b);
    if (d.delivered) return d;
    if (send < budget) (void)faults_->backoff(ch, send + 1);
  }
  return {false, sim::SimTime::zero()};
}

NeighborTable& NeighborResolution::table(net::PeerId peer) {
  auto it = tables_.find(peer);
  if (it == tables_.end()) {
    it = tables_.emplace(peer, NeighborTable(budget_)).first;
  }
  return it->second;
}

void NeighborResolution::register_path(
    net::PeerId requester,
    std::span<const std::vector<net::PeerId>> hop_candidates,
    sim::SimTime now) {
  // NeighborEntry::hop is a uint8_t: a path longer than kMaxHopIndex would
  // silently wrap the hop distance (and with it the benefit ranking).
  QSA_EXPECTS(hop_candidates.size() <= kMaxHopIndex);
  const std::uint64_t before = messages_;
  NeighborTable& mine = table(requester);
  for (std::size_t i = 0; i < hop_candidates.size(); ++i) {
    const auto hop = static_cast<std::uint8_t>(i + 1);
    for (net::PeerId candidate : hop_candidates[i]) {
      const fault::Delivery d = send_soft_state(fault::Channel::kNotify,
                                                requester, candidate, true);
      if (!d.delivered) continue;  // entry stays unregistered (soft state)
      mine.add(candidate, hop, NeighborKind::kDirect, now, ttl_);
      if (probe_rtt_ != nullptr && net_ != nullptr) {
        probe_rtt_->observe(
            2 * static_cast<double>(net_->latency(requester, candidate)
                                        .as_millis()) +
            static_cast<double>(d.extra_delay.as_millis()));
      }
    }
    // Each hop-i candidate is notified about every hop-(i+1) candidate;
    // those indirect-table updates are accounted here and materialized
    // lazily in prepare_selection.
    if (i + 1 < hop_candidates.size()) {
      messages_ += hop_candidates[i].size() * hop_candidates[i + 1].size();
    }
  }
  if (notifications_ != nullptr) notifications_->add(messages_ - before);
}

void NeighborResolution::prepare_selection(
    net::PeerId selector, std::span<const net::PeerId> candidates,
    std::uint8_t hop, bool direct, sim::SimTime now) {
  NeighborTable& t = table(selector);
  const NeighborKind kind =
      direct ? NeighborKind::kDirect : NeighborKind::kIndirect;
  // Relative to the selector an indirect neighbor is one hop away; the
  // requester keeps the absolute hop index.
  const std::uint8_t entry_hop = direct ? hop : std::uint8_t{1};
  for (net::PeerId candidate : candidates) {
    if (staleness_at_use_ != nullptr) {
      // Entry age at the moment the selector consults it, before this
      // refresh resets the soft-state deadline. Expired entries are observed
      // too — at their full TTL-exceeded age — so the histogram reflects how
      // stale the soft state actually got, not just the fresh cases.
      if (auto it = t.entries().find(candidate); it != t.entries().end()) {
        staleness_at_use_->observe(static_cast<double>(
            (ttl_ - (it->second.expires - now)).as_millis()));
        if (it->second.expires <= now && stale_hits_ != nullptr) {
          stale_hits_->add();
        }
      }
    }
    // The refresh is itself a probe message; when it is lost on every
    // attempt the entry keeps its old deadline and decays toward stale.
    if (!send_soft_state(fault::Channel::kProbe, selector, candidate, false)
             .delivered) {
      continue;
    }
    t.add(candidate, entry_hop, kind, now, ttl_);
  }
}

void NeighborResolution::drop_peer(net::PeerId peer) { tables_.erase(peer); }

}  // namespace qsa::probe
