// Probed performance snapshots: what a peer's periodic probing has most
// recently learned about a neighbor (Section 2.2). All values are as of the
// current probe-epoch boundary — deliberately stale relative to live state,
// which is what distinguishes distributed selection from an oracle.
#pragma once

#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/qos/resources.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::probe {

struct PerfSnapshot {
  bool alive = false;              ///< liveness as of the last probe
  qos::ResourceVector available;   ///< RA: end-system resource availability
  double bandwidth_kbps = 0;       ///< beta: available bandwidth target->prober
  sim::SimTime latency;            ///< measured network latency
  sim::SimTime uptime;             ///< time connected, per the last probe
};

/// Takes the snapshot `prober` holds about `target` at time `now`.
[[nodiscard]] PerfSnapshot probe(const net::PeerTable& peers,
                                 const net::NetworkModel& net,
                                 net::PeerId prober, net::PeerId target,
                                 sim::SimTime now);

}  // namespace qsa::probe
