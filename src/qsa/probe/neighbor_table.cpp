#include "qsa/probe/neighbor_table.hpp"

#include <vector>

#include "qsa/util/expects.hpp"

namespace qsa::probe {

NeighborTable::NeighborTable(std::size_t budget) : budget_(budget) {
  QSA_EXPECTS(budget >= 1);
}

bool NeighborTable::add(net::PeerId peer, std::uint8_t hop, NeighborKind kind,
                        sim::SimTime now, sim::SimTime ttl) {
  QSA_EXPECTS(hop >= 1);
  QSA_EXPECTS(budget_ >= 1);  // default-constructed tables never take adds
  const sim::SimTime expires = now + ttl;
  if (auto it = entries_.find(peer); it != entries_.end()) {
    // Refresh: keep the better benefit, extend the deadline.
    if (benefit_rank(hop, kind) < benefit_rank(it->second.hop, it->second.kind)) {
      it->second.hop = hop;
      it->second.kind = kind;
    }
    if (expires > it->second.expires) it->second.expires = expires;
    return true;
  }
  if (entries_.size() >= budget_) {
    // Evict the lowest-benefit entry, breaking ties towards the one expiring
    // soonest — but never evict something more beneficial than the newcomer.
    // Every comparison level ends with a PeerId tiebreak: the victim is a
    // pure function of the table contents, independent of iteration order,
    // so the evicted peer (and everything downstream of the table's
    // contents) is reproducible.
    bool have_victim = false;   // worst live entry
    bool have_expired = false;  // longest-expired entry, if any
    net::PeerId victim_peer = net::kNoPeer;
    NeighborEntry victim_entry;
    net::PeerId expired_peer = net::kNoPeer;
    NeighborEntry expired_entry;
    for (const auto& [p, entry] : entries_) {
      if (entry.expires <= now) {
        if (!have_expired || entry.expires < expired_entry.expires ||
            (entry.expires == expired_entry.expires && p > expired_peer)) {
          have_expired = true;  // expired: free to reuse regardless of rank
          expired_peer = p;
          expired_entry = entry;
        }
        continue;
      }
      if (!have_victim) {
        have_victim = true;
        victim_peer = p;
        victim_entry = entry;
        continue;
      }
      const int p_rank = benefit_rank(entry.hop, entry.kind);
      const int victim_rank =
          benefit_rank(victim_entry.hop, victim_entry.kind);
      if (p_rank > victim_rank ||
          (p_rank == victim_rank &&
           (entry.expires < victim_entry.expires ||
            (entry.expires == victim_entry.expires && p > victim_peer)))) {
        victim_peer = p;
        victim_entry = entry;
      }
    }
    if (have_expired) {
      victim_peer = expired_peer;
      victim_entry = expired_entry;
      have_victim = true;
    }
    QSA_ASSERT(have_victim);
    const bool victim_expired = victim_entry.expires <= now;
    if (!victim_expired &&
        benefit_rank(victim_entry.hop, victim_entry.kind) <
            benefit_rank(hop, kind)) {
      return false;  // everything in the table beats the newcomer
    }
    entries_.erase(victim_peer);
  }
  entries_.emplace(peer, NeighborEntry{hop, kind, expires});
  return true;
}

bool NeighborTable::knows(net::PeerId peer, sim::SimTime now) const {
  auto it = entries_.find(peer);
  return it != entries_.end() && it->second.expires > now;
}

void NeighborTable::purge(sim::SimTime now) {
  // Two passes: DenseMap's backward-shift erase relocates entries, so
  // collect the expired keys first, then drop them.
  std::vector<net::PeerId> expired;
  for (const auto& [p, entry] : entries_) {
    if (entry.expires <= now) expired.push_back(p);
  }
  for (net::PeerId p : expired) entries_.erase(p);
}

void NeighborTable::erase(net::PeerId peer) { entries_.erase(peer); }

}  // namespace qsa::probe
