#include "qsa/probe/neighbor_table.hpp"

#include "qsa/util/expects.hpp"

namespace qsa::probe {

NeighborTable::NeighborTable(std::size_t budget) : budget_(budget) {
  QSA_EXPECTS(budget >= 1);
}

bool NeighborTable::add(net::PeerId peer, std::uint8_t hop, NeighborKind kind,
                        sim::SimTime now, sim::SimTime ttl) {
  QSA_EXPECTS(hop >= 1);
  const sim::SimTime expires = now + ttl;
  if (auto it = entries_.find(peer); it != entries_.end()) {
    // Refresh: keep the better benefit, extend the deadline.
    if (benefit_rank(hop, kind) < benefit_rank(it->second.hop, it->second.kind)) {
      it->second.hop = hop;
      it->second.kind = kind;
    }
    if (expires > it->second.expires) it->second.expires = expires;
    return true;
  }
  if (entries_.size() >= budget_) {
    // Evict the lowest-benefit entry, breaking ties towards the one expiring
    // soonest — but never evict something more beneficial than the newcomer.
    // Every comparison level ends with a PeerId tiebreak: iteration order of
    // the unordered_map differs across standard libraries, so without a
    // total order the evicted peer (and everything downstream of the table's
    // contents) would not be reproducible.
    auto victim = entries_.end();    // worst live entry
    auto expired = entries_.end();   // longest-expired entry, if any
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.expires <= now) {
        if (expired == entries_.end() ||
            it->second.expires < expired->second.expires ||
            (it->second.expires == expired->second.expires &&
             it->first > expired->first)) {
          expired = it;  // expired: free to reuse regardless of rank
        }
        continue;
      }
      if (victim == entries_.end()) {
        victim = it;
        continue;
      }
      const int it_rank = benefit_rank(it->second.hop, it->second.kind);
      const int victim_rank =
          benefit_rank(victim->second.hop, victim->second.kind);
      if (it_rank > victim_rank ||
          (it_rank == victim_rank &&
           (it->second.expires < victim->second.expires ||
            (it->second.expires == victim->second.expires &&
             it->first > victim->first)))) {
        victim = it;
      }
    }
    if (expired != entries_.end()) victim = expired;
    QSA_ASSERT(victim != entries_.end());
    const bool victim_expired = victim->second.expires <= now;
    if (!victim_expired &&
        benefit_rank(victim->second.hop, victim->second.kind) <
            benefit_rank(hop, kind)) {
      return false;  // everything in the table beats the newcomer
    }
    entries_.erase(victim);
  }
  entries_.emplace(peer, NeighborEntry{hop, kind, expires});
  return true;
}

bool NeighborTable::knows(net::PeerId peer, sim::SimTime now) const {
  auto it = entries_.find(peer);
  return it != entries_.end() && it->second.expires > now;
}

void NeighborTable::purge(sim::SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires <= now) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void NeighborTable::erase(net::PeerId peer) { entries_.erase(peer); }

}  // namespace qsa::probe
