#include "qsa/cache/discovery_cache.hpp"

namespace qsa::cache {

void DiscoveryCache::set_ttl(sim::SimTime ttl) {
  ttl_ = ttl;
  if (!enabled()) entries_.clear();
}

const std::vector<registry::InstanceId>* DiscoveryCache::find(
    registry::ServiceId service, sim::SimTime now) {
  if (!enabled()) return nullptr;
  const auto it = entries_.find(service);
  if (it == entries_.end() || now >= it->second.expires) {
    if (it != entries_.end()) entries_.erase(it);
    if (misses_ != nullptr) misses_->add();
    return nullptr;
  }
  if (hits_ != nullptr) hits_->add();
  return &it->second.instances;
}

void DiscoveryCache::store(
    registry::ServiceId service,
    const std::vector<registry::InstanceId>& instances, sim::SimTime now) {
  if (!enabled()) return;
  entries_[service] = Entry{instances, now + ttl_};
}

void DiscoveryCache::invalidate() {
  if (entries_.empty()) return;
  entries_.clear();
  if (invalidations_ != nullptr) invalidations_->add();
}

void DiscoveryCache::invalidate(registry::ServiceId service) {
  if (entries_.erase(service) == 0) return;
  if (invalidations_ != nullptr) invalidations_->add();
}

void DiscoveryCache::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    hits_ = nullptr;
    misses_ = nullptr;
    invalidations_ = nullptr;
    return;
  }
  hits_ = &metrics->counter("cache.discovery.hits");
  misses_ = &metrics->counter("cache.discovery.misses");
  invalidations_ = &metrics->counter("cache.discovery.invalidations");
}

}  // namespace qsa::cache
