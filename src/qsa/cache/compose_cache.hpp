// Aggregation fast-path memo tables (the composition half of qsa::cache).
//
// Every quantity memoized here is fixed once the catalog is generated:
// satisfies(Qout_B, Qin_A) depends only on the two instances' QoS vectors,
// satisfies(Qout, requirement) only on the instance and the user's
// requirement, and the scalarized cost sigma(R, b) only on the (catalog,
// weights, schema) triple. The composer re-derived all three for every
// (producer, consumer) candidate pair of every request; the memos compute
// each exactly once and replay the stored value after that, so results are
// bit-for-bit identical to the uncached computation.
//
// One ComposeCache serves exactly one composer (one catalog + weight/schema
// pair); the grid harness owns one per simulation and hands it to the
// algorithm under test. Single-threaded by design, like the simulation that
// drives it.
#pragma once

#include <cstdint>
#include <vector>

#include "qsa/obs/registry.hpp"
#include "qsa/qos/tuple_compare.hpp"
#include "qsa/qos/vector.hpp"
#include "qsa/registry/service.hpp"

namespace qsa::cache {

/// Lazily-filled pairwise memo for the eq. 1 satisfy relation, keyed by
/// instance id: a flat tri-state matrix for (producer, consumer) pairs plus
/// a small per-requirement table for the sink-layer checks (workloads draw
/// requirements from a handful of QoS levels, so a bounded set of
/// requirement memos covers them; overflow evicts round-robin).
class CompatMemo {
 public:
  /// Memoized `qos::satisfies(qout, qin)` for the producer -> consumer edge.
  /// The hit path is inline — one bounds check plus one matrix load — since
  /// the composer consults it once per candidate pair of every layer.
  [[nodiscard]] bool pair(registry::InstanceId producer,
                          const qos::QosVector& qout,
                          registry::InstanceId consumer,
                          const qos::QosVector& qin) {
    const std::size_t p = producer;
    const std::size_t c = consumer;
    if (p < dim_ && c < dim_) {
      const Verdict v = pairs_[p * dim_ + c];
      if (v != Verdict::kUnknown) {
        if (hits_ != nullptr) hits_->add();
        return v == Verdict::kYes;
      }
    }
    return pair_miss(producer, qout, consumer, qin);
  }

  /// Memoized `qos::satisfies(qout, requirement)` for the sink-layer check
  /// of `instance` against one user requirement.
  [[nodiscard]] bool sink(registry::InstanceId instance,
                          const qos::QosVector& qout,
                          const qos::QosVector& requirement);

  /// Attaches hit/miss counters (null detaches; both or neither).
  void set_metrics(obs::Counter* hits, obs::Counter* misses) noexcept {
    hits_ = hits;
    misses_ = misses;
  }

  void clear();

 private:
  enum class Verdict : std::uint8_t { kUnknown = 0, kNo, kYes };

  /// Requirement memos kept before round-robin eviction kicks in.
  static constexpr std::size_t kMaxRequirementMemos = 8;

  /// Cold path: grows the matrix if needed, evaluates the relation once,
  /// stores the verdict, counts the miss.
  [[nodiscard]] bool pair_miss(registry::InstanceId producer,
                               const qos::QosVector& qout,
                               registry::InstanceId consumer,
                               const qos::QosVector& qin);
  [[nodiscard]] Verdict& pair_cell(registry::InstanceId producer,
                                   registry::InstanceId consumer);
  /// Grows the pair matrix so ids < `need` are addressable.
  void grow(std::size_t need);
  [[nodiscard]] std::vector<Verdict>& sink_cells(
      const qos::QosVector& requirement);

  std::size_t dim_ = 0;         ///< pair matrix is dim_ x dim_
  std::vector<Verdict> pairs_;  ///< row-major [producer * dim_ + consumer]

  struct RequirementMemo {
    qos::QosVector requirement;
    std::vector<Verdict> verdicts;  ///< indexed by instance id
  };
  std::vector<RequirementMemo> sinks_;
  std::size_t sink_evict_next_ = 0;

  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
};

/// The scalarized-cost table: sigma(R_i, b_i) per instance, computed on
/// first use and an array load after that.
class CostTable {
 public:
  [[nodiscard]] double cost(registry::InstanceId instance,
                            const qos::ResourceVector& resources,
                            double bandwidth_kbps,
                            const qos::TupleWeights& weights,
                            const qos::ResourceSchema& schema) {
    if (instance < costs_.size()) {
      const double c = costs_[instance];
      if (c == c) return c;  // non-NaN: already scalarized
    }
    return fill(instance, resources, bandwidth_kbps, weights, schema);
  }

  void clear();

 private:
  /// Cold path: resizes the table and scalarizes the tuple once.
  double fill(registry::InstanceId instance,
              const qos::ResourceVector& resources, double bandwidth_kbps,
              const qos::TupleWeights& weights,
              const qos::ResourceSchema& schema);

  std::vector<double> costs_;  ///< NaN = not computed yet
};

/// The bundle a composer consults: compatibility memo + cost table.
struct ComposeCache {
  CompatMemo compat;
  CostTable costs;

  /// Resolves the `cache.compat.{hits,misses}` counters (null detaches).
  void set_metrics(obs::MetricsRegistry* metrics);

  void clear();
};

}  // namespace qsa::cache
