#include "qsa/cache/compose_cache.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qsa/qos/satisfy.hpp"

namespace qsa::cache {
namespace {

constexpr double kUnsetCost = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void CompatMemo::grow(std::size_t need) {
  // Geometric growth keeps re-layouts rare when a catalog gains instances
  // after the memo warmed up (churn arrivals never add instances, so in
  // practice this runs once, sized to the generated catalog).
  std::size_t next = std::max<std::size_t>(16, dim_ * 2);
  while (next < need) next *= 2;
  std::vector<Verdict> grown(next * next, Verdict::kUnknown);
  for (std::size_t p = 0; p < dim_; ++p) {
    std::copy_n(pairs_.begin() + static_cast<std::ptrdiff_t>(p * dim_), dim_,
                grown.begin() + static_cast<std::ptrdiff_t>(p * next));
  }
  pairs_ = std::move(grown);
  dim_ = next;
}

CompatMemo::Verdict& CompatMemo::pair_cell(registry::InstanceId producer,
                                           registry::InstanceId consumer) {
  const std::size_t need =
      static_cast<std::size_t>(std::max(producer, consumer)) + 1;
  if (need > dim_) grow(need);
  return pairs_[static_cast<std::size_t>(producer) * dim_ + consumer];
}

bool CompatMemo::pair_miss(registry::InstanceId producer,
                           const qos::QosVector& qout,
                           registry::InstanceId consumer,
                           const qos::QosVector& qin) {
  Verdict& v = pair_cell(producer, consumer);
  if (v == Verdict::kUnknown) {
    if (misses_ != nullptr) misses_->add();
    v = qos::satisfies(qout, qin) ? Verdict::kYes : Verdict::kNo;
  } else if (hits_ != nullptr) {
    hits_->add();  // unreachable today; kept so the count stays honest
  }
  return v == Verdict::kYes;
}

std::vector<CompatMemo::Verdict>& CompatMemo::sink_cells(
    const qos::QosVector& requirement) {
  for (RequirementMemo& memo : sinks_) {
    if (memo.requirement == requirement) return memo.verdicts;
  }
  if (sinks_.size() < kMaxRequirementMemos) {
    sinks_.push_back(RequirementMemo{requirement, {}});
    return sinks_.back().verdicts;
  }
  RequirementMemo& victim = sinks_[sink_evict_next_];
  sink_evict_next_ = (sink_evict_next_ + 1) % sinks_.size();
  victim.requirement = requirement;
  victim.verdicts.assign(victim.verdicts.size(), Verdict::kUnknown);
  return victim.verdicts;
}

bool CompatMemo::sink(registry::InstanceId instance, const qos::QosVector& qout,
                      const qos::QosVector& requirement) {
  std::vector<Verdict>& cells = sink_cells(requirement);
  if (instance >= cells.size()) cells.resize(instance + 1, Verdict::kUnknown);
  Verdict& v = cells[instance];
  if (v == Verdict::kUnknown) {
    if (misses_ != nullptr) misses_->add();
    v = qos::satisfies(qout, requirement) ? Verdict::kYes : Verdict::kNo;
  } else if (hits_ != nullptr) {
    hits_->add();
  }
  return v == Verdict::kYes;
}

void CompatMemo::clear() {
  dim_ = 0;
  pairs_.clear();
  sinks_.clear();
  sink_evict_next_ = 0;
}

double CostTable::fill(registry::InstanceId instance,
                       const qos::ResourceVector& resources,
                       double bandwidth_kbps, const qos::TupleWeights& weights,
                       const qos::ResourceSchema& schema) {
  if (instance >= costs_.size()) costs_.resize(instance + 1, kUnsetCost);
  double& c = costs_[instance];
  if (std::isnan(c)) {
    c = qos::scalarize(qos::ResourceTuple{resources, bandwidth_kbps}, weights,
                       schema);
  }
  return c;
}

void CostTable::clear() { costs_.clear(); }

void ComposeCache::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    compat.set_metrics(nullptr, nullptr);
    return;
  }
  compat.set_metrics(&metrics->counter("cache.compat.hits"),
                     &metrics->counter("cache.compat.misses"));
}

void ComposeCache::clear() {
  compat.clear();
  costs.clear();
}

}  // namespace qsa::cache
