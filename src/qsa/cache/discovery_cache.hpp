// TTL'd discovery cache (the lookup half of qsa::cache): a requester-side
// soft-state cache over the service directory's Chord/CAN lookups. A hit
// serves the last discovered instance list for an abstract service without
// routing — zero hops and zero latency charged, exactly as a peer replaying
// a recent lookup response from local state would. Entries expire after the
// configured TTL; a single-service registration change (publish, unpublish)
// drops only that service's entry, while a republish or peer departure
// drops the whole cache — the soft-state analogue of an invalidation
// broadcast scoped to what actually changed. Within the TTL the
// cache may serve stale instance lists (e.g. a provider that just departed
// silently); downstream selection/admission is responsible for rejecting
// what no longer exists — precisely the staleness model the paper's probing
// tier is built around.
//
// A TTL of zero (the default) disables the cache entirely: every discover
// routes through the overlay and accounting stays byte-identical to a build
// without this layer.
#pragma once

#include <unordered_map>
#include <vector>

#include "qsa/obs/registry.hpp"
#include "qsa/registry/service.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::cache {

class DiscoveryCache {
 public:
  /// Sets the entry lifetime; zero disables (and drops any cached state).
  void set_ttl(sim::SimTime ttl);

  [[nodiscard]] bool enabled() const noexcept {
    return ttl_ > sim::SimTime::zero();
  }
  [[nodiscard]] sim::SimTime ttl() const noexcept { return ttl_; }

  /// The cached instance list for `service`, or null on a miss (absent,
  /// expired, or cache disabled). Counts a hit or a miss when enabled.
  [[nodiscard]] const std::vector<registry::InstanceId>* find(
      registry::ServiceId service, sim::SimTime now);

  /// Remembers one lookup result until `now + ttl`. No-op when disabled.
  void store(registry::ServiceId service,
             const std::vector<registry::InstanceId>& instances,
             sim::SimTime now);

  /// Drops every entry (republish or peer departure — changes that can
  /// touch any service). Counts an invalidation only when live state was
  /// actually dropped.
  void invalidate();

  /// Drops only `service`'s entry (a single publish/unpublish changed one
  /// candidate list; the rest of the cache stays warm). Same counting rule
  /// as invalidate().
  void invalidate(registry::ServiceId service);

  /// Resolves the `cache.discovery.{hits,misses,invalidations}` counters
  /// (null detaches).
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  struct Entry {
    std::vector<registry::InstanceId> instances;
    sim::SimTime expires;
  };

  sim::SimTime ttl_;  ///< zero = disabled
  std::unordered_map<registry::ServiceId, Entry> entries_;

  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* invalidations_ = nullptr;
};

}  // namespace qsa::cache
