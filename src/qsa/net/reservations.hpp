// Epoch-snapshot state: the mechanism behind "probed" (stale) performance
// information.
//
// The paper's peers probe their neighbors periodically; a selector therefore
// acts on each neighbor's state as of the last probe, not its live state.
// Simulating every probe as an event costs O(peers * neighbors / period)
// events. Instead each piece of probe-visible state keeps, alongside its
// live value, a snapshot of its value at the start of the current probe
// epoch, maintained lazily:
//
//   * mutation at epoch e: if the last snapshot is older than e, the live
//     value has not changed since before e started, so it *is* the
//     epoch-start value — save it, then mutate;
//   * read-as-probed at epoch e: if the last snapshot is older than e the
//     live value is still the epoch-start value; otherwise the snapshot is.
//
// This yields exactly the value at the epoch boundary in O(1) per mutation
// with zero events — equivalent to all peers probing synchronously at epoch
// boundaries (a documented simplification of per-pair probe phases).
#pragma once

#include <cstdint>
#include <utility>

#include "qsa/sim/time.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::net {

/// Maps simulation time to probe-epoch indices.
class ProbeClock {
 public:
  explicit ProbeClock(sim::SimTime period = sim::SimTime::seconds(30))
      : period_ms_(period.as_millis()) {
    QSA_EXPECTS(period_ms_ > 0);
  }

  [[nodiscard]] sim::SimTime period() const noexcept {
    return sim::SimTime::millis(period_ms_);
  }

  /// Epoch index containing `now` (floor division; join times may be
  /// negative to pre-age peers).
  [[nodiscard]] std::int64_t epoch(sim::SimTime now) const noexcept {
    const std::int64_t ms = now.as_millis();
    std::int64_t q = ms / period_ms_;
    if (ms % period_ms_ < 0) --q;
    return q;
  }

 private:
  std::int64_t period_ms_;
};

/// A value with probe-epoch snapshot semantics.
template <typename T>
class Snapshotted {
 public:
  Snapshotted() = default;
  explicit Snapshotted(T initial) : live_(std::move(initial)) {}

  /// Applies `fn(T&)` to the live value, first saving the epoch-start
  /// snapshot if this is the first mutation in epoch `epoch`.
  template <typename Fn>
  void mutate(std::int64_t epoch, Fn&& fn) {
    if (snap_epoch_ < epoch) {
      snap_ = live_;
      snap_epoch_ = epoch;
    }
    std::forward<Fn>(fn)(live_);
  }

  /// The value as a prober reads it in epoch `epoch` (state at the epoch
  /// boundary).
  [[nodiscard]] const T& probed(std::int64_t epoch) const noexcept {
    return snap_epoch_ < epoch ? live_ : snap_;
  }

  /// The ground-truth live value (what admission control checks).
  [[nodiscard]] const T& live() const noexcept { return live_; }

  /// Epoch of the last saved snapshot (INT64_MIN when never mutated). Once
  /// the current epoch moves past it, probed() and live() agree — the state
  /// has no observer-visible history left, which is what lets the network
  /// ledger evict settled entries.
  [[nodiscard]] std::int64_t snapshot_epoch() const noexcept {
    return snap_epoch_;
  }

 private:
  T live_{};
  T snap_{};
  std::int64_t snap_epoch_ = INT64_MIN;
};

}  // namespace qsa::net
