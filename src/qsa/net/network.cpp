#include "qsa/net/network.hpp"

#include <algorithm>

#include "qsa/util/expects.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::net {

NetworkModel::NetworkModel(std::uint64_t seed, ProbeClock clock)
    : seed_(seed), clock_(clock) {}

std::uint64_t NetworkModel::pair_key(PeerId a, PeerId b) noexcept {
  // The packing is collision-free only while a PeerId fits in the low half
  // of the 64-bit key; a wider PeerId would silently alias distinct pairs
  // (lo's shifted bits colliding with hi's high bits) and corrupt the
  // reservation ledger. Fail the build instead.
  static_assert(sizeof(PeerId) * 8 <= 32,
                "pair_key packs two PeerIds into 64 bits; widen the key "
                "before widening PeerId");
  const PeerId lo = std::min(a, b);
  const PeerId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

std::uint64_t NetworkModel::pair_hash(PeerId a, PeerId b,
                                      std::uint64_t purpose) const noexcept {
  return util::mix64(util::hash_combine(seed_ ^ purpose, pair_key(a, b)));
}

double NetworkModel::capacity_kbps(PeerId a, PeerId b) const {
  if (a == b) return 1e9;  // loopback: effectively unconstrained
  constexpr std::size_t n = std::size(kBandwidthLevelsKbps);
  return kBandwidthLevelsKbps[pair_hash(a, b, util::hash_str("bw")) % n];
}

sim::SimTime NetworkModel::latency(PeerId a, PeerId b) const {
  if (a == b) return sim::SimTime::zero();
  constexpr std::size_t n = std::size(kLatencyLevelsMs);
  return sim::SimTime::millis(
      kLatencyLevelsMs[pair_hash(a, b, util::hash_str("lat")) % n]);
}

double NetworkModel::available_kbps(PeerId a, PeerId b) const {
  const auto it = links_.find(pair_key(a, b));
  const double reserved = it == links_.end() ? 0.0 : it->second.live();
  return capacity_kbps(a, b) - reserved;
}

double NetworkModel::probed_available_kbps(PeerId a, PeerId b,
                                           sim::SimTime now) const {
  const auto it = links_.find(pair_key(a, b));
  const double reserved =
      it == links_.end() ? 0.0 : it->second.probed(clock_.epoch(now));
  return capacity_kbps(a, b) - reserved;
}

bool NetworkModel::try_reserve(PeerId a, PeerId b, double kbps,
                               sim::SimTime now) {
  QSA_EXPECTS(kbps >= 0);
  if (kbps > available_kbps(a, b)) return false;
  links_[pair_key(a, b)].mutate(clock_.epoch(now),
                                [&](double& r) { r += kbps; });
  return true;
}

void NetworkModel::release(PeerId a, PeerId b, double kbps, sim::SimTime now) {
  QSA_EXPECTS(kbps >= 0);
  auto it = links_.find(pair_key(a, b));
  QSA_EXPECTS(it != links_.end());
  it->second.mutate(clock_.epoch(now), [&](double& r) {
    const double before = r;
    r -= kbps;
    // Snap float residue to exactly zero. The tolerance scales with the
    // magnitudes cancelled: releasing a multi-Mbps reservation (loopback
    // pairs run at 1e9 kbps) leaves residue far above the old absolute
    // 1e-9 window, which then accumulated across sessions into drift that
    // available_kbps() reported as phantom reservation. Relative to
    // double's 1e-16 precision, 1e-12 per unit magnitude is ~4 orders of
    // headroom yet snaps only genuine residue, never a real remaining
    // reservation. Positive residue is left untouched: it is
    // indistinguishable from live concurrent reservations here, and decays
    // the same way on their release.
    const double tol = std::max(1e-9, 1e-12 * std::max(kbps, before));
    if (r < 0 && r >= -tol) r = 0;
  });
  QSA_ENSURES(it->second.live() > -1e-9);
  // Entries are kept even at zero reservation: the epoch snapshot must stay
  // visible until the next epoch; the map stays bounded by concurrent
  // sessions in practice.
}

}  // namespace qsa::net
