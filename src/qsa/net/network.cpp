#include "qsa/net/network.hpp"

#include <algorithm>

#include "qsa/util/expects.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::net {

NetworkModel::NetworkModel(std::uint64_t seed, ProbeClock clock)
    : seed_(seed), clock_(clock) {}

std::uint64_t NetworkModel::pair_key(PeerId a, PeerId b) noexcept {
  const PeerId lo = std::min(a, b);
  const PeerId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

std::uint64_t NetworkModel::pair_hash(PeerId a, PeerId b,
                                      std::uint64_t purpose) const noexcept {
  return util::mix64(util::hash_combine(seed_ ^ purpose, pair_key(a, b)));
}

double NetworkModel::capacity_kbps(PeerId a, PeerId b) const {
  if (a == b) return 1e9;  // loopback: effectively unconstrained
  constexpr std::size_t n = std::size(kBandwidthLevelsKbps);
  return kBandwidthLevelsKbps[pair_hash(a, b, util::hash_str("bw")) % n];
}

sim::SimTime NetworkModel::latency(PeerId a, PeerId b) const {
  if (a == b) return sim::SimTime::zero();
  constexpr std::size_t n = std::size(kLatencyLevelsMs);
  return sim::SimTime::millis(
      kLatencyLevelsMs[pair_hash(a, b, util::hash_str("lat")) % n]);
}

double NetworkModel::available_kbps(PeerId a, PeerId b) const {
  const auto it = links_.find(pair_key(a, b));
  const double reserved = it == links_.end() ? 0.0 : it->second.live();
  return capacity_kbps(a, b) - reserved;
}

double NetworkModel::probed_available_kbps(PeerId a, PeerId b,
                                           sim::SimTime now) const {
  const auto it = links_.find(pair_key(a, b));
  const double reserved =
      it == links_.end() ? 0.0 : it->second.probed(clock_.epoch(now));
  return capacity_kbps(a, b) - reserved;
}

bool NetworkModel::try_reserve(PeerId a, PeerId b, double kbps,
                               sim::SimTime now) {
  QSA_EXPECTS(kbps >= 0);
  if (kbps > available_kbps(a, b)) return false;
  links_[pair_key(a, b)].mutate(clock_.epoch(now),
                                [&](double& r) { r += kbps; });
  return true;
}

void NetworkModel::release(PeerId a, PeerId b, double kbps, sim::SimTime now) {
  QSA_EXPECTS(kbps >= 0);
  auto it = links_.find(pair_key(a, b));
  QSA_EXPECTS(it != links_.end());
  it->second.mutate(clock_.epoch(now), [&](double& r) {
    r -= kbps;
    if (r < 0 && r >= -1e-9) r = 0;
  });
  QSA_ENSURES(it->second.live() > -1e-9);
  // Entries are kept even at zero reservation: the epoch snapshot must stay
  // visible until the next epoch; the map stays bounded by concurrent
  // sessions in practice.
}

}  // namespace qsa::net
