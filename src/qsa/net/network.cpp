#include "qsa/net/network.hpp"

#include <algorithm>
#include <cmath>

#include "qsa/util/expects.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::net {
namespace {

// kCoords latency quantization: quantiles of the distance between two
// uniform points in the unit square (exact closed-form CDF, bisected at
// 0.2/0.4/0.6/0.8), so each of the five latency levels gets a ~20% pair
// marginal — the paper's level-set distribution, now with geometric
// structure. Distances below the first threshold are the closest fifth of
// all pairs and map to 1 ms, the farthest fifth to 200 ms.
constexpr double kDistQuantile[] = {0.2877359663, 0.4401475369, 0.5851348671,
                                    0.7496696790};
constexpr std::int64_t kCoordLatencyMs[] = {1, 20, 80, 150, 200};

// kCoords access-tier CDF: P(tier <= k) = sqrt((k+1)/4). A pair's capacity
// is the worse endpoint tier, so P(pair level <= k) = CDF^2 = (k+1)/4 —
// exactly uniform over the paper's four bandwidth levels.
constexpr double kTierCdf[] = {0.5, 0.70710678118654752, 0.86602540378443865};

// Ledger entries at or below this are "settled": genuine reservations are
// whole kbps, so anything this small is float residue the release snap
// already treats as zero (see release()); evicting it heals, not loses,
// up to 1e-6 kbps of phantom reservation.
constexpr double kEvictResidueKbps = 1e-6;

}  // namespace

std::string_view to_string(NetModelKind kind) noexcept {
  switch (kind) {
    case NetModelKind::kPaper:
      return "paper";
    case NetModelKind::kCoords:
      return "coords";
  }
  return "?";
}

NetworkModel::NetworkModel(std::uint64_t seed, ProbeClock clock,
                           NetModelKind kind)
    : seed_(seed), clock_(clock), kind_(kind) {}

std::uint64_t NetworkModel::pair_key(PeerId a, PeerId b) noexcept {
  // The packing is collision-free only while a PeerId fits in the low half
  // of the 64-bit key; a wider PeerId would silently alias distinct pairs
  // (lo's shifted bits colliding with hi's high bits) and corrupt the
  // reservation ledger. Fail the build instead.
  static_assert(sizeof(PeerId) * 8 <= 32,
                "pair_key packs two PeerIds into 64 bits; widen the key "
                "before widening PeerId");
  const PeerId lo = std::min(a, b);
  const PeerId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

std::uint64_t NetworkModel::pair_hash(PeerId a, PeerId b,
                                      std::uint64_t purpose) const noexcept {
  return util::mix64(util::hash_combine(seed_ ^ purpose, pair_key(a, b)));
}

std::uint64_t NetworkModel::peer_hash(PeerId p,
                                      std::uint64_t purpose) const noexcept {
  return util::mix64(util::hash_combine(seed_ ^ purpose, p));
}

std::pair<double, double> NetworkModel::coordinate(PeerId p) const noexcept {
  const std::uint64_t h = peer_hash(p, util::hash_str("coord"));
  // Two uniforms in [0, 1) from the hash halves. 0x1p-32 keeps the mapping
  // exact (no rounding ambiguity), hence bit-reproducible everywhere.
  const double x = static_cast<double>(h >> 32) * 0x1p-32;
  const double y = static_cast<double>(h & 0xffffffffu) * 0x1p-32;
  return {x, y};
}

int NetworkModel::access_tier(PeerId p) const noexcept {
  const std::uint64_t h = peer_hash(p, util::hash_str("tier"));
  const double u = static_cast<double>(h >> 11) * 0x1p-53;
  for (int k = 0; k < 3; ++k) {
    if (u < kTierCdf[k]) return k;
  }
  return 3;
}

double NetworkModel::capacity_kbps(PeerId a, PeerId b) const {
  if (a == b) return kLoopbackKbps;  // loopback: effectively unconstrained
  if (kind_ == NetModelKind::kCoords) {
    // The bottleneck is the worse of the two access links.
    return kBandwidthLevelsKbps[std::max(access_tier(a), access_tier(b))];
  }
  constexpr std::size_t n = std::size(kBandwidthLevelsKbps);
  return kBandwidthLevelsKbps[pair_hash(a, b, util::hash_str("bw")) % n];
}

sim::SimTime NetworkModel::latency(PeerId a, PeerId b) const {
  if (a == b) return sim::SimTime::zero();
  if (kind_ == NetModelKind::kCoords) {
    const auto [xa, ya] = coordinate(a);
    const auto [xb, yb] = coordinate(b);
    const double dx = xa - xb;
    const double dy = ya - yb;
    // sqrt, not hypot: correctly rounded per IEEE-754, so the quantized
    // level is identical on every libm.
    const double d = std::sqrt(dx * dx + dy * dy);
    std::size_t bucket = std::size(kDistQuantile);
    for (std::size_t k = 0; k < std::size(kDistQuantile); ++k) {
      if (d < kDistQuantile[k]) {
        bucket = k;
        break;
      }
    }
    return sim::SimTime::millis(kCoordLatencyMs[bucket]);
  }
  constexpr std::size_t n = std::size(kLatencyLevelsMs);
  return sim::SimTime::millis(
      kLatencyLevelsMs[pair_hash(a, b, util::hash_str("lat")) % n]);
}

double NetworkModel::available_kbps(PeerId a, PeerId b) const {
  if (a == b) return kLoopbackKbps;  // never constrained, never ledgered
  const auto it = links_.find(pair_key(a, b));
  const double reserved = it == links_.end() ? 0.0 : it->second.live();
  return capacity_kbps(a, b) - reserved;
}

double NetworkModel::probed_available_kbps(PeerId a, PeerId b,
                                           sim::SimTime now) const {
  if (a == b) return kLoopbackKbps;
  const auto it = links_.find(pair_key(a, b));
  const double reserved =
      it == links_.end() ? 0.0 : it->second.probed(clock_.epoch(now));
  return capacity_kbps(a, b) - reserved;
}

void NetworkModel::note_self_touch(PeerId p) {
  if (p >= self_touched_.size()) self_touched_.resize(p + 1, false);
  if (!self_touched_[p]) {
    self_touched_[p] = true;
    ++self_touched_count_;
  }
}

void NetworkModel::maybe_sweep(std::int64_t epoch) {
  if (epoch <= last_sweep_epoch_) return;
  last_sweep_epoch_ = epoch;
  if (links_.size() <= evict_floor_) return;
  for (auto it = links_.begin(); it != links_.end();) {
    // Settled: reservation back at (residue-of) zero and the snapshot older
    // than the current epoch, so probed() and live() both read as
    // unreserved — erasing the entry is invisible to every query.
    if (it->second.live() <= kEvictResidueKbps &&
        it->second.snapshot_epoch() < epoch) {
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

bool NetworkModel::try_reserve(PeerId a, PeerId b, double kbps,
                               sim::SimTime now) {
  QSA_EXPECTS(kbps >= 0);
  if (a == b) {
    // Loopback short-circuit: a peer streaming to itself never contends
    // for WAN bandwidth. Admitting without a ledger entry also keeps the
    // 1e9-kbps magnitudes out of the float cancel/snap path below (the
    // source of PR 7's drift bug). The touch is still counted so the
    // monotone touched_pairs() accounting matches the historical ledger.
    if (kbps > kLoopbackKbps) return false;
    note_self_touch(a);
    return true;
  }
  const std::int64_t epoch = clock_.epoch(now);
  maybe_sweep(epoch);
  if (kbps > available_kbps(a, b)) return false;
  const auto [it, inserted] = links_.try_emplace(pair_key(a, b));
  if (inserted) ++touched_pairs_;
  it->second.mutate(epoch, [&](double& r) { r += kbps; });
  return true;
}

void NetworkModel::release(PeerId a, PeerId b, double kbps, sim::SimTime now) {
  QSA_EXPECTS(kbps >= 0);
  if (a == b) return;  // loopback reservations are never ledgered
  const std::int64_t epoch = clock_.epoch(now);
  maybe_sweep(epoch);
  auto it = links_.find(pair_key(a, b));
  QSA_EXPECTS(it != links_.end());
  it->second.mutate(epoch, [&](double& r) {
    const double before = r;
    r -= kbps;
    // Snap float residue to exactly zero. The tolerance scales with the
    // magnitudes cancelled: relative to double's 1e-16 precision, 1e-12 per
    // unit magnitude is ~4 orders of headroom yet snaps only genuine
    // residue, never a real remaining reservation. Positive residue is left
    // untouched: it is indistinguishable from live concurrent reservations
    // here, and decays the same way on their release (or is healed by the
    // settled-entry sweep).
    const double tol = std::max(1e-9, 1e-12 * std::max(kbps, before));
    if (r < 0 && r >= -tol) r = 0;
  });
  QSA_ENSURES(it->second.live() > -1e-9);
  // The entry is kept for now even at zero reservation — its epoch snapshot
  // must stay visible until the next epoch. maybe_sweep() evicts it on the
  // first mutating call of a later epoch (once the ledger is above the
  // eviction floor), so the map tracks concurrent sessions, not distinct
  // pairs ever reserved.
}

}  // namespace qsa::net
