// Peers and the peer table.
//
// A peer is a voluntarily participating host with heterogeneous end-system
// capacity (the paper draws [cpu, mem] in [100,100]..[1000,1000] units), a
// join time (possibly negative: pre-aged at simulation start), an optional
// planned departure (churn), and a reservation ledger for admitted sessions.
// Probe-visible state (resource availability) carries epoch-snapshot
// semantics; uptime is computed against the probe-epoch boundary for the
// same reason.
//
// Storage is structure-of-arrays, paged: the fields every probe/selection
// touches (alive bit, capacity, the Snapshotted reservation) live in hot
// slabs, the lifecycle timestamps (join/planned-departure/departed-at) in
// cold slabs, page_size peers per slab. PeerIds are dense indices and are
// never reused, so under sustained churn the id space grows with total
// arrivals — but a page whose members have all departed, once the probe
// epoch has moved past the last departure, answers every query the same
// as its freed self (not alive, not probed-alive, reservations long gone)
// and is reclaimed. The resident footprint therefore tracks the alive
// population plus one epoch of recent departures, not arrivals-ever.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "qsa/net/reservations.hpp"
#include "qsa/qos/resources.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::net {

/// Dense peer identifier; ids are never reused within a simulation.
using PeerId = std::uint32_t;
inline constexpr PeerId kNoPeer = ~PeerId{0};

namespace detail {

/// Per-peer state on the probe/selection hot path.
struct PeerHot {
  qos::ResourceVector capacity;
  Snapshotted<qos::ResourceVector> reserved;
  std::uint32_t alive_slot = 0;  // index into PeerTable::alive_ids_
  bool alive = true;
};

/// Per-peer lifecycle timestamps, touched at join/departure and by the
/// uptime heuristic.
struct PeerCold {
  sim::SimTime join_time;
  sim::SimTime planned_departure;
  sim::SimTime departed_at = sim::SimTime::infinity();
};

}  // namespace detail

/// A read-only view of one peer, assembled from the table's hot and cold
/// slabs. Cheap to copy; like a reference into a vector, it is invalidated
/// by the next table mutation.
class Peer {
 public:
  [[nodiscard]] PeerId id() const noexcept { return id_; }
  [[nodiscard]] bool alive() const noexcept { return hot_->alive; }
  [[nodiscard]] const qos::ResourceVector& capacity() const noexcept {
    return hot_->capacity;
  }
  [[nodiscard]] sim::SimTime join_time() const noexcept {
    return cold_->join_time;
  }
  [[nodiscard]] sim::SimTime planned_departure() const noexcept {
    return cold_->planned_departure;
  }

  /// Time connected so far. Requires alive().
  [[nodiscard]] sim::SimTime uptime(sim::SimTime now) const noexcept {
    return now - cold_->join_time;
  }

  /// Ground-truth available resources (capacity - live reservations).
  [[nodiscard]] qos::ResourceVector available() const {
    return hot_->capacity - hot_->reserved.live();
  }

  /// Available resources as a prober sees them in `epoch`.
  [[nodiscard]] qos::ResourceVector probed_available(std::int64_t epoch) const {
    return hot_->capacity - hot_->reserved.probed(epoch);
  }

  /// When the peer departed; SimTime::infinity() while alive.
  [[nodiscard]] sim::SimTime departed_at() const noexcept {
    return cold_->departed_at;
  }

 private:
  friend class PeerTable;

  Peer(PeerId id, const detail::PeerHot* hot,
       const detail::PeerCold* cold) noexcept
      : id_(id), hot_(hot), cold_(cold) {}

  PeerId id_;
  const detail::PeerHot* hot_;
  const detail::PeerCold* cold_;
};

/// Owns all peers ever seen by a simulation and tracks the alive set with
/// O(1) insertion/removal and O(1) uniform sampling support.
class PeerTable {
 public:
  static constexpr std::size_t kDefaultPageSize = 4096;

  /// `page_size` is the slab granularity (and reclamation unit); tests use
  /// small pages to exercise reclamation cheaply.
  PeerTable(qos::ResourceSchema schema, ProbeClock clock,
            std::size_t page_size = kDefaultPageSize);

  [[nodiscard]] const qos::ResourceSchema& schema() const noexcept {
    return schema_;
  }
  [[nodiscard]] const ProbeClock& clock() const noexcept { return clock_; }

  /// Pre-sizes the page directory for `expected_peers` (bootstrap hint; the
  /// slabs themselves are allocated on demand).
  void reserve(std::size_t expected_peers);

  /// Adds a peer; `planned_departure` = SimTime::infinity() when churn never
  /// removes it. Returns its id.
  PeerId add_peer(qos::ResourceVector capacity, sim::SimTime join_time,
                  sim::SimTime planned_departure = sim::SimTime::infinity());

  /// Marks a peer departed at `now`. Its reservations evaporate with it
  /// (sessions it hosted are failed by the session manager). No-op if
  /// already gone.
  void remove_peer(PeerId id, sim::SimTime now);

  /// Liveness as a prober sees it at `now`: a peer that departed after the
  /// current probe-epoch boundary still looks alive (the prober has not
  /// probed since).
  [[nodiscard]] bool probed_alive(PeerId id, sim::SimTime now) const;

  /// View of a peer's state. Requires the peer's page to be resident —
  /// i.e. the peer is alive or departed recently enough that some query
  /// could still distinguish it (see the file comment); nothing in the
  /// grid reads the full record of a long-departed peer.
  [[nodiscard]] Peer peer(PeerId id) const;
  [[nodiscard]] bool alive(PeerId id) const;

  [[nodiscard]] std::size_t total_peers() const noexcept { return total_; }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    return alive_ids_.size();
  }
  /// Ids of currently alive peers, in unspecified order (stable between
  /// mutations); suitable for uniform random sampling.
  [[nodiscard]] const std::vector<PeerId>& alive_ids() const noexcept {
    return alive_ids_;
  }

  /// Attempts to reserve `r` on the peer at time `now`; false (and no
  /// change) if the peer is gone or short on any resource kind.
  [[nodiscard]] bool try_reserve(PeerId id, const qos::ResourceVector& r,
                                 sim::SimTime now);

  /// Releases a prior reservation. No-op on a departed peer (its ledger died
  /// with it).
  void release(PeerId id, const qos::ResourceVector& r, sim::SimTime now);

  /// Probe-visible availability of a peer at `now` (epoch-start state).
  [[nodiscard]] qos::ResourceVector probed_available(PeerId id,
                                                     sim::SimTime now) const;

  /// Probe-visible uptime: measured at the epoch boundary a prober last saw.
  [[nodiscard]] sim::SimTime probed_uptime(PeerId id, sim::SimTime now) const;

  // --- footprint accounting (the flat-memory witness) ---
  [[nodiscard]] std::size_t page_size() const noexcept { return page_size_; }
  /// Pages whose slabs are currently allocated. total_peers() keeps
  /// growing with arrivals; this plateaus once churned-out cohorts are
  /// reclaimed.
  [[nodiscard]] std::size_t resident_pages() const noexcept {
    return resident_pages_;
  }
  /// Upper bound on per-peer slab bytes currently resident.
  [[nodiscard]] std::size_t resident_slots() const noexcept {
    return resident_pages_ * page_size_;
  }

 private:
  struct Page {
    std::unique_ptr<detail::PeerHot[]> hot;
    std::unique_ptr<detail::PeerCold[]> cold;
    std::uint32_t alive_members = 0;
    std::int64_t last_depart_epoch = INT64_MIN;
  };

  [[nodiscard]] bool resident(PeerId id) const noexcept {
    return pages_[id / page_size_].hot != nullptr;
  }
  [[nodiscard]] detail::PeerHot& hot(PeerId id) noexcept {
    return pages_[id / page_size_].hot[id % page_size_];
  }
  [[nodiscard]] const detail::PeerHot& hot(PeerId id) const noexcept {
    return pages_[id / page_size_].hot[id % page_size_];
  }
  [[nodiscard]] const detail::PeerCold& cold(PeerId id) const noexcept {
    return pages_[id / page_size_].cold[id % page_size_];
  }

  /// Advances the epoch high-water mark and reclaims drained pages whose
  /// last departure the probe clock has moved past. Mutating paths only:
  /// const probes stay pure for concurrent serving readers.
  void note_epoch(std::int64_t epoch);

  qos::ResourceSchema schema_;
  ProbeClock clock_;
  std::size_t page_size_;
  std::vector<Page> pages_;
  std::vector<PeerId> alive_ids_;
  /// Fully-departed full pages awaiting epoch passage before reclamation.
  std::vector<std::uint32_t> drained_;
  std::size_t total_ = 0;
  std::size_t resident_pages_ = 0;
  std::int64_t epoch_high_water_ = INT64_MIN;
};

}  // namespace qsa::net
