// Peers and the peer table.
//
// A peer is a voluntarily participating host with heterogeneous end-system
// capacity (the paper draws [cpu, mem] in [100,100]..[1000,1000] units), a
// join time (possibly negative: pre-aged at simulation start), an optional
// planned departure (churn), and a reservation ledger for admitted sessions.
// Probe-visible state (resource availability) carries epoch-snapshot
// semantics; uptime is computed against the probe-epoch boundary for the
// same reason.
#pragma once

#include <cstdint>
#include <vector>

#include "qsa/net/reservations.hpp"
#include "qsa/qos/resources.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::net {

/// Dense peer identifier; ids are never reused within a simulation.
using PeerId = std::uint32_t;
inline constexpr PeerId kNoPeer = ~PeerId{0};

class Peer {
 public:
  Peer(PeerId id, qos::ResourceVector capacity, sim::SimTime join_time,
       sim::SimTime planned_departure);

  [[nodiscard]] PeerId id() const noexcept { return id_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  [[nodiscard]] const qos::ResourceVector& capacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] sim::SimTime join_time() const noexcept { return join_time_; }
  [[nodiscard]] sim::SimTime planned_departure() const noexcept {
    return planned_departure_;
  }

  /// Time connected so far. Requires alive().
  [[nodiscard]] sim::SimTime uptime(sim::SimTime now) const noexcept {
    return now - join_time_;
  }

  /// Ground-truth available resources (capacity - live reservations).
  [[nodiscard]] qos::ResourceVector available() const {
    return capacity_ - reserved_.live();
  }

  /// Available resources as a prober sees them in `epoch`.
  [[nodiscard]] qos::ResourceVector probed_available(std::int64_t epoch) const {
    return capacity_ - reserved_.probed(epoch);
  }

  /// When the peer departed; SimTime::infinity() while alive.
  [[nodiscard]] sim::SimTime departed_at() const noexcept {
    return departed_at_;
  }

 private:
  friend class PeerTable;

  PeerId id_;
  qos::ResourceVector capacity_;
  Snapshotted<qos::ResourceVector> reserved_;
  sim::SimTime join_time_;
  sim::SimTime planned_departure_;
  sim::SimTime departed_at_ = sim::SimTime::infinity();
  bool alive_ = true;
  std::uint32_t alive_slot_ = 0;  // index into PeerTable::alive_ids_
};

/// Owns all peers ever seen by a simulation and tracks the alive set with
/// O(1) insertion/removal and O(1) uniform sampling support.
class PeerTable {
 public:
  PeerTable(qos::ResourceSchema schema, ProbeClock clock);

  [[nodiscard]] const qos::ResourceSchema& schema() const noexcept {
    return schema_;
  }
  [[nodiscard]] const ProbeClock& clock() const noexcept { return clock_; }

  /// Adds a peer; `planned_departure` = SimTime::infinity() when churn never
  /// removes it. Returns its id.
  PeerId add_peer(qos::ResourceVector capacity, sim::SimTime join_time,
                  sim::SimTime planned_departure = sim::SimTime::infinity());

  /// Marks a peer departed at `now`. Its reservations evaporate with it
  /// (sessions it hosted are failed by the session manager). No-op if
  /// already gone.
  void remove_peer(PeerId id, sim::SimTime now);

  /// Liveness as a prober sees it at `now`: a peer that departed after the
  /// current probe-epoch boundary still looks alive (the prober has not
  /// probed since).
  [[nodiscard]] bool probed_alive(PeerId id, sim::SimTime now) const;

  [[nodiscard]] const Peer& peer(PeerId id) const;
  [[nodiscard]] bool alive(PeerId id) const;

  [[nodiscard]] std::size_t total_peers() const noexcept { return peers_.size(); }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    return alive_ids_.size();
  }
  /// Ids of currently alive peers, in unspecified order (stable between
  /// mutations); suitable for uniform random sampling.
  [[nodiscard]] const std::vector<PeerId>& alive_ids() const noexcept {
    return alive_ids_;
  }

  /// Attempts to reserve `r` on the peer at time `now`; false (and no
  /// change) if the peer is gone or short on any resource kind.
  [[nodiscard]] bool try_reserve(PeerId id, const qos::ResourceVector& r,
                                 sim::SimTime now);

  /// Releases a prior reservation. No-op on a departed peer (its ledger died
  /// with it).
  void release(PeerId id, const qos::ResourceVector& r, sim::SimTime now);

  /// Probe-visible availability of a peer at `now` (epoch-start state).
  [[nodiscard]] qos::ResourceVector probed_available(PeerId id,
                                                     sim::SimTime now) const;

  /// Probe-visible uptime: measured at the epoch boundary a prober last saw.
  [[nodiscard]] sim::SimTime probed_uptime(PeerId id, sim::SimTime now) const;

 private:
  qos::ResourceSchema schema_;
  ProbeClock clock_;
  std::vector<Peer> peers_;
  std::vector<PeerId> alive_ids_;
};

}  // namespace qsa::net
