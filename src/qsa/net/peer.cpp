#include "qsa/net/peer.hpp"

#include <utility>

#include "qsa/util/expects.hpp"

namespace qsa::net {

Peer::Peer(PeerId id, qos::ResourceVector capacity, sim::SimTime join_time,
           sim::SimTime planned_departure)
    : id_(id),
      capacity_(capacity),
      reserved_(qos::ResourceVector::zeros(capacity.size())),
      join_time_(join_time),
      planned_departure_(planned_departure) {
  QSA_EXPECTS(capacity.nonnegative());
}

PeerTable::PeerTable(qos::ResourceSchema schema, ProbeClock clock)
    : schema_(std::move(schema)), clock_(clock) {}

PeerId PeerTable::add_peer(qos::ResourceVector capacity, sim::SimTime join_time,
                           sim::SimTime planned_departure) {
  QSA_EXPECTS(capacity.size() == schema_.kinds());
  const PeerId id = static_cast<PeerId>(peers_.size());
  peers_.emplace_back(id, capacity, join_time, planned_departure);
  peers_.back().alive_slot_ = static_cast<std::uint32_t>(alive_ids_.size());
  alive_ids_.push_back(id);
  return id;
}

void PeerTable::remove_peer(PeerId id, sim::SimTime now) {
  QSA_EXPECTS(id < peers_.size());
  Peer& p = peers_[id];
  if (!p.alive_) return;
  p.alive_ = false;
  p.departed_at_ = now;
  // Swap-remove from the alive list, fixing the moved peer's slot.
  const std::uint32_t slot = p.alive_slot_;
  const PeerId moved = alive_ids_.back();
  alive_ids_[slot] = moved;
  peers_[moved].alive_slot_ = slot;
  alive_ids_.pop_back();
}

const Peer& PeerTable::peer(PeerId id) const {
  QSA_EXPECTS(id < peers_.size());
  return peers_[id];
}

bool PeerTable::alive(PeerId id) const {
  return id < peers_.size() && peers_[id].alive_;
}

bool PeerTable::try_reserve(PeerId id, const qos::ResourceVector& r,
                            sim::SimTime now) {
  QSA_EXPECTS(id < peers_.size());
  QSA_EXPECTS(r.nonnegative());
  Peer& p = peers_[id];
  if (!p.alive_) return false;
  if (!r.fits_within(p.available())) return false;
  p.reserved_.mutate(clock_.epoch(now),
                     [&](qos::ResourceVector& res) { res += r; });
  return true;
}

void PeerTable::release(PeerId id, const qos::ResourceVector& r,
                        sim::SimTime now) {
  QSA_EXPECTS(id < peers_.size());
  Peer& p = peers_[id];
  if (!p.alive_) return;  // reservations died with the peer
  p.reserved_.mutate(clock_.epoch(now), [&](qos::ResourceVector& res) {
    res -= r;
    res.clamp_negative_zero();
  });
  QSA_ENSURES(p.reserved_.live().nonnegative());
}

bool PeerTable::probed_alive(PeerId id, sim::SimTime now) const {
  QSA_EXPECTS(id < peers_.size());
  const Peer& p = peers_[id];
  if (p.alive_) return true;
  const std::int64_t epoch = clock_.epoch(now);
  const sim::SimTime boundary =
      sim::SimTime::millis(epoch * clock_.period().as_millis());
  return p.departed_at_ > boundary;
}

qos::ResourceVector PeerTable::probed_available(PeerId id,
                                                sim::SimTime now) const {
  QSA_EXPECTS(id < peers_.size());
  return peers_[id].probed_available(clock_.epoch(now));
}

sim::SimTime PeerTable::probed_uptime(PeerId id, sim::SimTime now) const {
  QSA_EXPECTS(id < peers_.size());
  // The prober saw the peer at the last epoch boundary; its uptime reading
  // is relative to that instant.
  const std::int64_t epoch = clock_.epoch(now);
  const sim::SimTime boundary =
      sim::SimTime::millis(epoch * clock_.period().as_millis());
  return boundary - peers_[id].join_time();
}

}  // namespace qsa::net
