#include "qsa/net/peer.hpp"

#include <utility>

#include "qsa/util/expects.hpp"

namespace qsa::net {

PeerTable::PeerTable(qos::ResourceSchema schema, ProbeClock clock,
                     std::size_t page_size)
    : schema_(std::move(schema)), clock_(clock), page_size_(page_size) {
  QSA_EXPECTS(page_size_ >= 1);
}

void PeerTable::reserve(std::size_t expected_peers) {
  pages_.reserve((expected_peers + page_size_ - 1) / page_size_);
  alive_ids_.reserve(expected_peers);
}

PeerId PeerTable::add_peer(qos::ResourceVector capacity, sim::SimTime join_time,
                           sim::SimTime planned_departure) {
  QSA_EXPECTS(capacity.size() == schema_.kinds());
  QSA_EXPECTS(capacity.nonnegative());
  const PeerId id = static_cast<PeerId>(total_);
  if (id / page_size_ == pages_.size()) {
    pages_.emplace_back();
    Page& page = pages_.back();
    page.hot = std::make_unique<detail::PeerHot[]>(page_size_);
    page.cold = std::make_unique<detail::PeerCold[]>(page_size_);
    ++resident_pages_;
  }
  ++total_;
  Page& page = pages_[id / page_size_];
  const std::size_t slot = id % page_size_;
  detail::PeerHot& h = page.hot[slot];
  h.capacity = capacity;
  h.reserved = Snapshotted<qos::ResourceVector>(
      qos::ResourceVector::zeros(capacity.size()));
  h.alive = true;
  h.alive_slot = static_cast<std::uint32_t>(alive_ids_.size());
  detail::PeerCold& c = page.cold[slot];
  c.join_time = join_time;
  c.planned_departure = planned_departure;
  c.departed_at = sim::SimTime::infinity();
  ++page.alive_members;
  alive_ids_.push_back(id);
  // Arrivals happen at the current sim time; keep the reclamation
  // high-water mark moving even on churn waves with no reservation
  // traffic (bootstrap's negative pre-ages are clamped by the max).
  note_epoch(clock_.epoch(join_time));
  return id;
}

void PeerTable::remove_peer(PeerId id, sim::SimTime now) {
  QSA_EXPECTS(id < total_);
  if (!resident(id)) return;  // long departed, page reclaimed
  detail::PeerHot& h = hot(id);
  if (!h.alive) return;
  h.alive = false;
  pages_[id / page_size_].cold[id % page_size_].departed_at = now;
  // Swap-remove from the alive list, fixing the moved peer's slot.
  const std::uint32_t slot = h.alive_slot;
  const PeerId moved = alive_ids_.back();
  alive_ids_[slot] = moved;
  hot(moved).alive_slot = slot;
  alive_ids_.pop_back();

  const std::int64_t epoch = clock_.epoch(now);
  Page& page = pages_[id / page_size_];
  page.last_depart_epoch = std::max(page.last_depart_epoch, epoch);
  QSA_ASSERT(page.alive_members > 0);
  --page.alive_members;
  // A *full* page with no survivors can never gain members again (ids are
  // never reused); queue it for reclamation once the probe epoch moves
  // past its last departure. The trailing, still-filling page is exempt.
  const std::size_t page_idx = id / page_size_;
  if (page.alive_members == 0 && (page_idx + 1) * page_size_ <= total_) {
    drained_.push_back(static_cast<std::uint32_t>(page_idx));
  }
  note_epoch(epoch);
}

void PeerTable::note_epoch(std::int64_t epoch) {
  if (epoch <= epoch_high_water_) return;
  epoch_high_water_ = epoch;
  for (std::size_t i = 0; i < drained_.size();) {
    Page& page = pages_[drained_[i]];
    if (page.last_depart_epoch < epoch_high_water_) {
      // Every member departed before the current epoch started: probed
      // liveness is false, reservations evaporated with the peers, and no
      // grid path reads the rest — free the slabs.
      page.hot.reset();
      page.cold.reset();
      QSA_ASSERT(resident_pages_ > 0);
      --resident_pages_;
      drained_[i] = drained_.back();
      drained_.pop_back();
    } else {
      ++i;
    }
  }
}

Peer PeerTable::peer(PeerId id) const {
  QSA_EXPECTS(id < total_);
  QSA_EXPECTS(resident(id));
  const Page& page = pages_[id / page_size_];
  const std::size_t slot = id % page_size_;
  return Peer(id, &page.hot[slot], &page.cold[slot]);
}

bool PeerTable::alive(PeerId id) const {
  return id < total_ && resident(id) && hot(id).alive;
}

bool PeerTable::try_reserve(PeerId id, const qos::ResourceVector& r,
                            sim::SimTime now) {
  QSA_EXPECTS(id < total_);
  QSA_EXPECTS(r.nonnegative());
  note_epoch(clock_.epoch(now));
  if (!resident(id)) return false;  // long departed
  detail::PeerHot& h = hot(id);
  if (!h.alive) return false;
  if (!r.fits_within(h.capacity - h.reserved.live())) return false;
  h.reserved.mutate(clock_.epoch(now),
                    [&](qos::ResourceVector& res) { res += r; });
  return true;
}

void PeerTable::release(PeerId id, const qos::ResourceVector& r,
                        sim::SimTime now) {
  QSA_EXPECTS(id < total_);
  note_epoch(clock_.epoch(now));
  if (!resident(id)) return;  // reservations died with the page
  detail::PeerHot& h = hot(id);
  if (!h.alive) return;  // reservations died with the peer
  h.reserved.mutate(clock_.epoch(now), [&](qos::ResourceVector& res) {
    res -= r;
    res.clamp_negative_zero();
  });
  QSA_ENSURES(h.reserved.live().nonnegative());
}

bool PeerTable::probed_alive(PeerId id, sim::SimTime now) const {
  QSA_EXPECTS(id < total_);
  if (!resident(id)) return false;  // departed before any visible epoch
  const detail::PeerHot& h = hot(id);
  if (h.alive) return true;
  const std::int64_t epoch = clock_.epoch(now);
  const sim::SimTime boundary =
      sim::SimTime::millis(epoch * clock_.period().as_millis());
  return cold(id).departed_at > boundary;
}

qos::ResourceVector PeerTable::probed_available(PeerId id,
                                                sim::SimTime now) const {
  QSA_EXPECTS(id < total_);
  QSA_EXPECTS(resident(id));
  const detail::PeerHot& h = hot(id);
  return h.capacity - h.reserved.probed(clock_.epoch(now));
}

sim::SimTime PeerTable::probed_uptime(PeerId id, sim::SimTime now) const {
  QSA_EXPECTS(id < total_);
  QSA_EXPECTS(resident(id));
  // The prober saw the peer at the last epoch boundary; its uptime reading
  // is relative to that instant.
  const std::int64_t epoch = clock_.epoch(now);
  const sim::SimTime boundary =
      sim::SimTime::millis(epoch * clock_.period().as_millis());
  return boundary - cold(id).join_time;
}

}  // namespace qsa::net
