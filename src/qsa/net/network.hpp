// Wide-area network model between peers (Section 4.1).
//
// The paper does not model a router topology; it assigns each peer pair an
// end-to-end bottleneck bandwidth drawn from {10 Mbps, 500 kbps, 100 kbps,
// 56 kbps} and a latency from {200, 150, 80, 20, 1} ms. A 10^4-peer grid has
// 5*10^7 pairs, so neither model stores per-pair values; both derive them
// O(1) from the endpoints and keep state only for pairs with active
// reservations:
//
//   * kPaper (default): each unordered pair hashes independently to one
//     bandwidth and one latency level — the paper's i.i.d. pair model,
//     byte-compatible with every golden digest;
//   * kCoords: each *peer* hashes to a point in the unit square (a 2-D
//     synthetic latency space) and an access-link tier. Pair latency is the
//     Euclidean distance quantized onto the paper's level set via the exact
//     distance-distribution quantiles; pair bandwidth is the min of the two
//     access tiers, with the per-peer tier CDF chosen as sqrt(k/4) so the
//     pair marginal is exactly uniform over the paper's four levels. Same
//     marginals, but latencies now satisfy geometric locality (near peers
//     are near everyone the same way), which is what network-aware
//     composition exploits and what a million-peer run needs: per-peer
//     derivation instead of per-pair state.
//
// Bandwidth reservations carry the same probe-epoch snapshot semantics as
// peer resources. The reservation ledger is a true footprint: entries whose
// reservation has returned to zero are evicted once their epoch snapshot
// can no longer be observed, so its size tracks concurrent sessions, not
// distinct pairs ever reserved.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qsa/net/peer.hpp"
#include "qsa/net/reservations.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::net {

/// How pair latency/bandwidth are derived from the seed (see file comment).
enum class NetModelKind : std::uint8_t { kPaper, kCoords };

[[nodiscard]] std::string_view to_string(NetModelKind kind) noexcept;

class NetworkModel {
 public:
  /// Paper value sets.
  static constexpr double kBandwidthLevelsKbps[] = {10'000, 500, 100, 56};
  static constexpr std::int64_t kLatencyLevelsMs[] = {200, 150, 80, 20, 1};

  /// Loopback (a == b) capacity: effectively unconstrained.
  static constexpr double kLoopbackKbps = 1e9;

  /// Smallest latency either derivation can assign to a distinct-peer pair —
  /// the conservative-lookahead bound for the sharded runtime: a message
  /// emitted at time t toward another peer arrives no earlier than
  /// t + min_latency(). Both models draw from kLatencyLevelsMs, so this is
  /// simply the smallest level.
  [[nodiscard]] static constexpr sim::SimTime min_latency() noexcept {
    std::int64_t lo = kLatencyLevelsMs[0];
    for (std::int64_t level : kLatencyLevelsMs) lo = level < lo ? level : lo;
    return sim::SimTime::millis(lo);
  }

  /// Ledger entries below the eviction floor are never swept; golden-scale
  /// runs (hundreds of peers) therefore keep every entry ever touched and
  /// stay byte-identical, while large grids plateau at the floor plus their
  /// concurrent-session footprint.
  static constexpr std::size_t kDefaultEvictFloor = 8192;

  NetworkModel(std::uint64_t seed, ProbeClock clock,
               NetModelKind kind = NetModelKind::kPaper);

  [[nodiscard]] NetModelKind model() const noexcept { return kind_; }

  /// Bottleneck capacity of the (a, b) pair in kbps; symmetric; huge for the
  /// degenerate a == b pair (a peer talking to itself).
  [[nodiscard]] double capacity_kbps(PeerId a, PeerId b) const;

  /// Application-level one-way latency of the pair; 0 for a == b.
  [[nodiscard]] sim::SimTime latency(PeerId a, PeerId b) const;

  /// Ground-truth available bandwidth (capacity - live reservations).
  [[nodiscard]] double available_kbps(PeerId a, PeerId b) const;

  /// Available bandwidth as a prober sees it at `now` (epoch-start state).
  [[nodiscard]] double probed_available_kbps(PeerId a, PeerId b,
                                             sim::SimTime now) const;

  /// Reserves `kbps` on the pair; false (no change) when short. Loopback
  /// pairs always admit and never enter the ledger.
  [[nodiscard]] bool try_reserve(PeerId a, PeerId b, double kbps,
                                 sim::SimTime now);

  /// Releases a prior reservation. No-op for loopback pairs.
  void release(PeerId a, PeerId b, double kbps, sim::SimTime now);

  /// Number of pairs currently resident in the reservation ledger — the
  /// model's memory footprint. Settled entries are evicted (see
  /// set_evict_floor), so under churn this plateaus instead of growing with
  /// every pair ever reserved.
  [[nodiscard]] std::size_t active_pairs() const noexcept {
    return links_.size();
  }

  /// Distinct pairs ever reserved (loopback pairs included) — the
  /// historical "net.active_pairs" accounting, kept monotone so exported
  /// counters are unaffected by ledger eviction. Counts ledger insertions:
  /// exact as long as no evicted pair is re-reserved (guaranteed below the
  /// eviction floor, i.e. at golden scale).
  [[nodiscard]] std::uint64_t touched_pairs() const noexcept {
    return touched_pairs_ + self_touched_count_;
  }

  /// Ledger size below which settled entries are never evicted (default
  /// kDefaultEvictFloor). Tests set 0 to sweep on every epoch advance.
  void set_evict_floor(std::size_t floor) noexcept { evict_floor_ = floor; }

  /// The peer's point in the synthetic latency space (kCoords derivation;
  /// defined — but unused by latency() — under kPaper).
  [[nodiscard]] std::pair<double, double> coordinate(PeerId p) const noexcept;

  /// The peer's access-link tier as an index into kBandwidthLevelsKbps
  /// (kCoords derivation; 0 = best). Pair capacity = the worse tier.
  [[nodiscard]] int access_tier(PeerId p) const noexcept;

  /// Canonical (order-independent) 64-bit key of a peer pair — the ledger's
  /// map key. Public so tests can pin its injectivity; a static_assert in
  /// the implementation refuses PeerId types wider than 32 bits, for which
  /// the packing would silently alias distinct pairs.
  [[nodiscard]] static std::uint64_t pair_key(PeerId a, PeerId b) noexcept;

 private:
  [[nodiscard]] std::uint64_t pair_hash(PeerId a, PeerId b,
                                        std::uint64_t purpose) const noexcept;
  [[nodiscard]] std::uint64_t peer_hash(PeerId p,
                                        std::uint64_t purpose) const noexcept;

  /// Once per epoch (mutating paths only — const probes stay pure for the
  /// concurrent serving readers), drops settled entries: reservation back
  /// at zero and the epoch snapshot no longer observable, so absence is
  /// indistinguishable from presence to every query.
  void maybe_sweep(std::int64_t epoch);

  void note_self_touch(PeerId p);

  std::uint64_t seed_;
  ProbeClock clock_;
  NetModelKind kind_;
  std::unordered_map<std::uint64_t, Snapshotted<double>> links_;
  std::size_t evict_floor_ = kDefaultEvictFloor;
  std::int64_t last_sweep_epoch_ = INT64_MIN;
  std::uint64_t touched_pairs_ = 0;  ///< distinct non-loopback insertions
  std::vector<bool> self_touched_;   ///< loopback pairs seen, by PeerId
  std::uint64_t self_touched_count_ = 0;
};

}  // namespace qsa::net
