// Wide-area network model between peers (Section 4.1).
//
// The paper does not model a router topology; it assigns each peer pair an
// end-to-end bottleneck bandwidth drawn from {10 Mbps, 500 kbps, 100 kbps,
// 56 kbps} and a latency from {200, 150, 80, 20, 1} ms. A 10^4-peer grid has
// 5*10^7 pairs, so we derive each pair's base values from a deterministic
// hash of (seed, unordered pair) — identical marginal distributions, zero
// storage — and keep state only for pairs with active reservations.
// Bandwidth reservations carry the same probe-epoch snapshot semantics as
// peer resources.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "qsa/net/peer.hpp"
#include "qsa/net/reservations.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::net {

class NetworkModel {
 public:
  /// Paper value sets.
  static constexpr double kBandwidthLevelsKbps[] = {10'000, 500, 100, 56};
  static constexpr std::int64_t kLatencyLevelsMs[] = {200, 150, 80, 20, 1};

  NetworkModel(std::uint64_t seed, ProbeClock clock);

  /// Bottleneck capacity of the (a, b) pair in kbps; symmetric; huge for the
  /// degenerate a == b pair (a peer talking to itself).
  [[nodiscard]] double capacity_kbps(PeerId a, PeerId b) const;

  /// Application-level one-way latency of the pair; 0 for a == b.
  [[nodiscard]] sim::SimTime latency(PeerId a, PeerId b) const;

  /// Ground-truth available bandwidth (capacity - live reservations).
  [[nodiscard]] double available_kbps(PeerId a, PeerId b) const;

  /// Available bandwidth as a prober sees it at `now` (epoch-start state).
  [[nodiscard]] double probed_available_kbps(PeerId a, PeerId b,
                                             sim::SimTime now) const;

  /// Reserves `kbps` on the pair; false (no change) when short.
  [[nodiscard]] bool try_reserve(PeerId a, PeerId b, double kbps,
                                 sim::SimTime now);

  /// Releases a prior reservation.
  void release(PeerId a, PeerId b, double kbps, sim::SimTime now);

  /// Number of pairs currently carrying reservations (memory footprint).
  [[nodiscard]] std::size_t active_pairs() const noexcept {
    return links_.size();
  }

  /// Canonical (order-independent) 64-bit key of a peer pair — the ledger's
  /// map key. Public so tests can pin its injectivity; a static_assert in
  /// the implementation refuses PeerId types wider than 32 bits, for which
  /// the packing would silently alias distinct pairs.
  [[nodiscard]] static std::uint64_t pair_key(PeerId a, PeerId b) noexcept;

 private:
  [[nodiscard]] std::uint64_t pair_hash(PeerId a, PeerId b,
                                        std::uint64_t purpose) const noexcept;

  std::uint64_t seed_;
  ProbeClock clock_;
  std::unordered_map<std::uint64_t, Snapshotted<double>> links_;
};

}  // namespace qsa::net
