// Intentionally empty: reservations.hpp is header-only templates; this
// translation unit exists so the target always has at least one object per
// header group and the header is compiled standalone at least once.
#include "qsa/net/reservations.hpp"
