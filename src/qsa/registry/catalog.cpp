#include "qsa/registry/catalog.hpp"

#include <algorithm>
#include <utility>

#include "qsa/util/expects.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::registry {

ServiceId ServiceCatalog::add_service(std::string name) {
  const ServiceId id = static_cast<ServiceId>(services_.size());
  by_name_.emplace(name, id);  // first registration wins on duplicates
  services_.push_back(AbstractService{id, std::move(name)});
  by_service_.emplace_back();
  return id;
}

std::optional<ServiceId> ServiceCatalog::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

InstanceId ServiceCatalog::add_instance(ServiceInstance instance) {
  QSA_EXPECTS(instance.service < services_.size());
  QSA_EXPECTS(instance.resources.nonnegative());
  QSA_EXPECTS(instance.bandwidth_kbps >= 0);
  const InstanceId id = static_cast<InstanceId>(instances_.size());
  instance.id = id;
  by_service_[instance.service].push_back(id);
  instances_.push_back(std::move(instance));
  return id;
}

const AbstractService& ServiceCatalog::service(ServiceId id) const {
  QSA_EXPECTS(id < services_.size());
  return services_[id];
}

const ServiceInstance& ServiceCatalog::instance(InstanceId id) const {
  QSA_EXPECTS(id < instances_.size());
  return instances_[id];
}

std::span<const InstanceId> ServiceCatalog::instances_of(ServiceId id) const {
  QSA_EXPECTS(id < services_.size());
  return by_service_[id];
}

QosUniverse QosUniverse::standard(util::Interner& interner) {
  return QosUniverse{interner.intern("format"), interner.intern("level")};
}

void generate_instances(ServiceCatalog& catalog, ServiceId service,
                        const CatalogParams& params, const QosUniverse& qos,
                        const qos::QosTranslator& translator, bool is_source) {
  QSA_EXPECTS(params.min_instances_per_service >= 1);
  QSA_EXPECTS(params.max_instances_per_service >=
              params.min_instances_per_service);
  QSA_EXPECTS(params.formats >= 1);

  util::Rng rng(util::derive_seed(params.seed, "catalog", service));
  const int count = static_cast<int>(rng.uniform_int(
      params.min_instances_per_service, params.max_instances_per_service));

  for (int i = 0; i < count; ++i) {
    ServiceInstance inst;
    inst.service = service;

    if (!is_source) {
      // Input acceptance: a wide quality window; format either pinned to one
      // symbol or omitted (accepts anything).
      const double in_width =
          rng.uniform(params.min_in_width, params.max_in_width);
      const double in_center = rng.uniform(20.0, 80.0);
      const double in_lo = std::max(0.0, in_center - in_width / 2);
      const double in_hi = std::min(100.0, in_center + in_width / 2);
      inst.qin.set(qos.level, qos::QosValue::range(in_lo, in_hi));
      if (!rng.bernoulli(params.any_format_prob)) {
        inst.qin.set(qos.format,
                     qos::QosValue::symbol(static_cast<qos::Symbol>(
                         rng.index(static_cast<std::size_t>(params.formats)))));
      }
    }

    // Output: a narrow quality window and a definite format.
    const double out_width =
        rng.uniform(params.min_out_width, params.max_out_width);
    const double out_center = rng.uniform(10.0, 90.0);
    const double out_lo = std::max(0.0, out_center - out_width / 2);
    const double out_hi = std::min(100.0, out_center + out_width / 2);
    inst.qout.set(qos.level, qos::QosValue::range(out_lo, out_hi));
    inst.qout.set(qos.format,
                  qos::QosValue::symbol(static_cast<qos::Symbol>(
                      rng.index(static_cast<std::size_t>(params.formats)))));

    inst.resources = translator.resources(inst.qin, inst.qout);
    inst.bandwidth_kbps = translator.bandwidth_kbps(inst.qout);
    catalog.add_instance(std::move(inst));
  }
}

}  // namespace qsa::registry
