// AbstractService / ServiceInstance are plain data aggregates; this TU
// compiles the header standalone.
#include "qsa/registry/service.hpp"
