#include "qsa/registry/directory.hpp"

#include "qsa/overlay/chord_id.hpp"

namespace qsa::registry {

ServiceDirectory::ServiceDirectory(std::uint64_t seed,
                                   overlay::LookupService& ring,
                                   const ServiceCatalog& catalog)
    : seed_(seed), ring_(ring), catalog_(catalog) {}

overlay::Key ServiceDirectory::key_of(ServiceId service) const {
  return overlay::data_key(seed_, static_cast<std::uint64_t>(service));
}

void ServiceDirectory::publish(InstanceId instance) {
  const ServiceId service = catalog_.instance(instance).service;
  ring_.insert(key_of(service), instance);
  // Scoped invalidation: only this service's candidate list changed, so
  // cached discoveries for every other service stay warm.
  cache_.invalidate(service);
}

void ServiceDirectory::publish_all() {
  for (InstanceId i = 0; i < catalog_.instance_count(); ++i) {
    ring_.insert(key_of(catalog_.instance(i).service), i);
  }
  // One invalidation for the whole republish, not one per instance.
  cache_.invalidate();
}

void ServiceDirectory::unpublish(InstanceId instance) {
  const ServiceId service = catalog_.instance(instance).service;
  ring_.erase(key_of(service), instance);
  cache_.invalidate(service);
}

void ServiceDirectory::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    lookups_ = nullptr;
    lookup_hops_ = nullptr;
    lookup_latency_ = nullptr;
    cache_.set_metrics(nullptr);
    return;
  }
  lookups_ = &metrics->counter("directory.lookups");
  lookup_hops_ = &metrics->histogram("directory.lookup_hops");
  lookup_latency_ = &metrics->histogram("directory.lookup_latency_ms");
  // Gate the cache counters on the feature so knobs-off exports stay
  // byte-identical to builds without the cache layer.
  cache_.set_metrics(cache_.enabled() ? metrics : nullptr);
}

Discovery ServiceDirectory::discover(ServiceId service, net::PeerId from,
                                     const net::NetworkModel* net,
                                     sim::SimTime now) const {
  Discovery d;
  const DiscoveryStats stats =
      discover_into(service, from, net, now, d.instances);
  d.hops = stats.hops;
  d.latency = stats.latency;
  return d;
}

DiscoveryStats ServiceDirectory::discover_into(ServiceId service,
                                               net::PeerId from,
                                               const net::NetworkModel* net,
                                               sim::SimTime now,
                                               std::vector<InstanceId>& out) const {
  if (const auto* cached = cache_.find(service, now)) {
    // Served from the requester's soft-state cache: no routing, no hops, no
    // latency, and no lookup recorded — the overlay was never consulted.
    out = *cached;
    return {};
  }
  out.clear();
  const overlay::ChordKey key = key_of(service);
  const overlay::LookupStats stats = ring_.route(key, from, net);
  DiscoveryStats cost{stats.hops, stats.latency};
  if (stats.ok()) {
    // Under fault injection a lookup whose hop messages were all lost never
    // reaches an owner: the discovery comes back empty (but still paid for).
    for (std::uint64_t v : ring_.get(key)) {
      out.push_back(static_cast<InstanceId>(v));
    }
    // Only completed lookups are worth remembering; a lost lookup's empty
    // answer is not the directory's state.
    cache_.store(service, out, now);
  }
  if (lookups_ != nullptr) {
    lookups_->add();
    lookup_hops_->observe(cost.hops);
    lookup_latency_->observe(static_cast<double>(cost.latency.as_millis()));
  }
  return cost;
}

}  // namespace qsa::registry
