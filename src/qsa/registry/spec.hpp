// Textual request specifications — the front end the paper's "acquire and
// translate the user request" step assumes (Section 3.2): the user either
// names a distributed application or "directly define[s] the abstract
// service path (e.g., video server -> Chinese2English translator -> image
// enhancement -> video player)", plus application-specific QoS
// requirements.
//
// Grammar (whitespace-insensitive):
//
//   path        := service ( "->" service )*          // source .. sink
//   service     := [A-Za-z0-9_.-]+                    // catalog name
//
//   requirement := clause ( (";" | ",") clause )*
//   clause      := name "=" value                     // exact match
//                | name "in" "[" number "," number "]" // range
//   value       := number | symbol-name
//
// Examples:
//   "video-server -> transcoder -> video-player"
//   "level in [70, 100]; format = MPEG"
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "qsa/qos/vector.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/util/interner.hpp"

namespace qsa::registry {

/// Parse outcome: `ok()` or an error message pointing at the offender.
template <typename T>
struct ParseResult {
  T value{};
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Parses "a -> b -> c" into catalog service ids (source first, sink last).
/// Unknown service names are reported, not guessed.
[[nodiscard]] ParseResult<std::vector<ServiceId>> parse_abstract_path(
    std::string_view text, const ServiceCatalog& catalog);

/// Parses a requirement list into a QoS vector. Parameter names are interned
/// in `params`; non-numeric values are interned as symbols in `symbols`
/// (both must be the interners the catalog's QoS universe uses).
[[nodiscard]] ParseResult<qos::QosVector> parse_requirement(
    std::string_view text, util::Interner& params, util::Interner& symbols);

/// Renders a path back to its textual form ("a -> b -> c").
[[nodiscard]] std::string format_abstract_path(
    std::span<const ServiceId> path, const ServiceCatalog& catalog);

}  // namespace qsa::registry
