#include "qsa/registry/placement.hpp"

#include <algorithm>

namespace qsa::registry {
namespace {

template <typename T>
bool swap_remove(std::vector<T>& v, const T& value) {
  auto it = std::find(v.begin(), v.end(), value);
  if (it == v.end()) return false;
  *it = v.back();
  v.pop_back();
  return true;
}

}  // namespace

void PlacementMap::add_provider(InstanceId instance, net::PeerId peer) {
  auto& providers = by_instance_[instance];
  if (std::find(providers.begin(), providers.end(), peer) != providers.end()) {
    return;
  }
  providers.push_back(peer);
  by_peer_[peer].push_back(instance);
}

void PlacementMap::remove_provider(InstanceId instance, net::PeerId peer) {
  auto it = by_instance_.find(instance);
  if (it == by_instance_.end() || !swap_remove(it->second, peer)) return;
  if (auto pit = by_peer_.find(peer); pit != by_peer_.end()) {
    swap_remove(pit->second, instance);
  }
}

std::vector<InstanceId> PlacementMap::remove_peer(net::PeerId peer) {
  auto pit = by_peer_.find(peer);
  if (pit == by_peer_.end()) return {};
  std::vector<InstanceId> provided = std::move(pit->second);
  by_peer_.erase(pit);
  for (InstanceId instance : provided) {
    if (auto it = by_instance_.find(instance); it != by_instance_.end()) {
      swap_remove(it->second, peer);
    }
  }
  return provided;
}

std::span<const net::PeerId> PlacementMap::providers(InstanceId instance) const {
  auto it = by_instance_.find(instance);
  if (it == by_instance_.end()) return {};
  return it->second;
}

std::span<const InstanceId> PlacementMap::provided_by(net::PeerId peer) const {
  auto it = by_peer_.find(peer);
  if (it == by_peer_.end()) return {};
  return it->second;
}

}  // namespace qsa::registry
