// The discovery seam: everything tier 1a (candidate discovery) needs from a
// registration/lookup subsystem, abstracted so the grid can swap backends.
//
// Two implementations exist:
//   * registry::ServiceDirectory — the flat per-service key lookup with a
//     TTL'd requester-side cache (the default; ignores the query's range
//     predicates, exactly the pre-seam behaviour);
//   * index::DhtDiscovery — the attribute-indexed range-query backend
//     (DESIGN.md §15), which resolves the query's QoS predicates against
//     per-attribute index arcs on the overlay itself.
//
// The seam carries the *whole* request context (requirement, session
// duration, path position), not just the service id: a backend that can
// push predicates into the overlay uses them; one that cannot ignores them
// and leaves the filtering to composition/selection downstream.
#pragma once

#include <cstdint>
#include <vector>

#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/qos/vector.hpp"
#include "qsa/registry/service.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::registry {

/// The routing cost of one discovery, without the candidate list (that is
/// written into the caller's buffer by discover_into()).
struct DiscoveryStats {
  int hops = 0;
  sim::SimTime latency;
};

/// One tier-1a candidate lookup: which abstract service, asked by whom, and
/// the request context a predicate-capable backend may push down.
struct DiscoveryQuery {
  ServiceId service = 0;
  net::PeerId from = net::kNoPeer;
  /// The request's end-to-end QoS requirement (non-owning; may be null).
  /// Only the sink instance's Qout is checked against it, so backends apply
  /// it only when `is_sink` is set.
  const qos::QosVector* requirement = nullptr;
  /// Intended session length — a backend may pre-filter providers whose
  /// registered uptime cannot cover it (the selector's uptime heuristic,
  /// pushed into discovery). Zero = no uptime predicate.
  sim::SimTime session_duration;
  /// True when `service` is the last hop of the abstract path (the one
  /// whose output the requirement constrains).
  bool is_sink = false;
};

/// A pluggable discovery backend: soft-state registration maintenance plus
/// the per-request candidate lookup.
class DiscoveryBackend {
 public:
  virtual ~DiscoveryBackend() = default;

  /// Registers one instance (bootstrap, replication clone, healing).
  virtual void publish(InstanceId instance) = 0;
  /// Re-registers every catalog instance (bootstrap and the periodic
  /// republish that heals soft state under churn).
  virtual void publish_all() = 0;
  /// Removes one instance's registration (replica retirement).
  virtual void unpublish(InstanceId instance) = 0;
  /// Churn removed `peer` — the one registration change the backend does
  /// not hear about through publish/unpublish.
  virtual void peer_departed(net::PeerId peer) = 0;
  /// Replica retirement narrowed `instance`'s provider pool by `host`. The
  /// instance itself stays registered (its other providers remain), so this
  /// is not an unpublish — but per-provider state keyed on (instance, host)
  /// must go.
  virtual void provider_retired(InstanceId instance, net::PeerId host) = 0;

  /// Writes the candidate instances for `query` into `out` (reusing its
  /// buffer) and returns the routing cost paid. An empty `out` with the
  /// cost still charged is a failed discovery (no candidates, or the
  /// lookup itself was lost under fault injection).
  virtual DiscoveryStats discover_into(const DiscoveryQuery& query,
                                       const net::NetworkModel* net,
                                       sim::SimTime now,
                                       std::vector<InstanceId>& out) const = 0;

  /// Attaches observability (optional; null detaches). Implementations gate
  /// their metric names on their features so knobs-off exports stay
  /// byte-identical.
  virtual void set_metrics(obs::MetricsRegistry* metrics) = 0;
};

}  // namespace qsa::registry
