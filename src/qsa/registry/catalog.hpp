// The service catalog: all abstract services and their instances, plus the
// generator reproducing the paper's experimental distributions (Section 4.1:
// 10-20 instances per service, random Qin/Qout/R).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "qsa/qos/translator.hpp"
#include "qsa/registry/service.hpp"
#include "qsa/util/interner.hpp"

namespace qsa::registry {

class ServiceCatalog {
 public:
  ServiceId add_service(std::string name);
  InstanceId add_instance(ServiceInstance instance);

  [[nodiscard]] const AbstractService& service(ServiceId id) const;
  [[nodiscard]] const ServiceInstance& instance(InstanceId id) const;
  [[nodiscard]] std::span<const InstanceId> instances_of(ServiceId id) const;

  /// Resolves a service by name (as the abstract-path parser needs).
  [[nodiscard]] std::optional<ServiceId> find(std::string_view name) const;

  [[nodiscard]] std::size_t service_count() const noexcept {
    return services_.size();
  }
  [[nodiscard]] std::size_t instance_count() const noexcept {
    return instances_.size();
  }

 private:
  std::vector<AbstractService> services_;
  std::vector<ServiceInstance> instances_;
  std::vector<std::vector<InstanceId>> by_service_;
  std::unordered_map<std::string, ServiceId> by_name_;
};

/// Well-known QoS parameter names used by the generated universe.
struct QosUniverse {
  qos::ParamId format;  ///< single-value (symbolic) dimension
  qos::ParamId level;   ///< range dimension in [0, 100]

  /// Interns the parameter names into `interner`.
  [[nodiscard]] static QosUniverse standard(util::Interner& interner);
};

/// Knobs for catalog generation, defaulted to the paper's setup.
struct CatalogParams {
  std::uint64_t seed = 1;
  int min_instances_per_service = 10;  ///< paper: 10
  int max_instances_per_service = 20;  ///< paper: 20
  int formats = 4;                     ///< symbolic format universe size
  /// Probability an instance accepts any input format (omits the format
  /// dimension from Qin). Keeps layered paths plentiful, mirroring services
  /// that handle several codecs.
  double any_format_prob = 0.4;
  double min_in_width = 40, max_in_width = 70;  ///< input acceptance widths
  double min_out_width = 5, max_out_width = 15; ///< output widths
};

/// Generates instances for `service`, using `translator` for R and b.
/// `is_source` instances have empty Qin (data sources accept no input).
void generate_instances(ServiceCatalog& catalog, ServiceId service,
                        const CatalogParams& params, const QosUniverse& qos,
                        const qos::QosTranslator& translator, bool is_source);

}  // namespace qsa::registry
