// Application services and service instances (Section 2.3).
//
// An *abstract service* names a function ("video transcoder"); a *service
// instance* is a concrete implementation with its own QoS specification
// (Qin, Qout), end-system resource requirement R = f(Qin, Qout), and output
// bandwidth requirement b. The same instance may be replicated on many peers
// (the placement map tracks that).
#pragma once

#include <cstdint>
#include <string>

#include "qsa/qos/resources.hpp"
#include "qsa/qos/vector.hpp"

namespace qsa::registry {

using ServiceId = std::uint32_t;
using InstanceId = std::uint32_t;
inline constexpr InstanceId kNoInstance = ~InstanceId{0};

struct AbstractService {
  ServiceId id = 0;
  std::string name;
};

struct ServiceInstance {
  InstanceId id = 0;
  ServiceId service = 0;
  qos::QosVector qin;   ///< acceptable input QoS
  qos::QosVector qout;  ///< produced output QoS
  qos::ResourceVector resources;  ///< end-system requirement R
  double bandwidth_kbps = 0;      ///< requirement b on the output edge
};

}  // namespace qsa::registry
