// Instance placement: which peers host a copy of which service instance
// (the paper's redundancy property: 40-80 peers per instance). Ground truth
// for "candidate peers"; bidirectionally indexed so churn can remove a
// departing peer's registrations in O(copies).
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "qsa/net/peer.hpp"
#include "qsa/registry/service.hpp"

namespace qsa::registry {

class PlacementMap {
 public:
  /// Registers `peer` as a provider of `instance`. No-op if already
  /// registered.
  void add_provider(InstanceId instance, net::PeerId peer);

  /// Unregisters one provider. No-op if absent.
  void remove_provider(InstanceId instance, net::PeerId peer);

  /// Unregisters a departing peer from everything it provided. Returns the
  /// instances it had been providing.
  std::vector<InstanceId> remove_peer(net::PeerId peer);

  /// Current providers of an instance (unspecified order, stable between
  /// mutations).
  [[nodiscard]] std::span<const net::PeerId> providers(InstanceId instance) const;

  /// Instances provided by a peer.
  [[nodiscard]] std::span<const InstanceId> provided_by(net::PeerId peer) const;

  [[nodiscard]] std::size_t provider_count(InstanceId instance) const {
    return providers(instance).size();
  }

 private:
  // instance -> providers and peer -> instances; each erase is a swap-remove
  // (order is not meaningful).
  std::unordered_map<InstanceId, std::vector<net::PeerId>> by_instance_;
  std::unordered_map<net::PeerId, std::vector<InstanceId>> by_peer_;
};

}  // namespace qsa::registry
