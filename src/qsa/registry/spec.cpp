#include "qsa/registry/spec.hpp"

#include <cctype>
#include <charconv>

namespace qsa::registry {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits on a separator string, trimming each piece.
std::vector<std::string_view> split(std::string_view text,
                                    std::string_view sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(trim(text.substr(start)));
      break;
    }
    out.push_back(trim(text.substr(start, pos - start)));
    start = pos + sep.size();
  }
  return out;
}

/// Splits a requirement list on ';' or ','— but not commas inside [...].
std::vector<std::string_view> split_clauses(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  int bracket_depth = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const bool at_end = i == text.size();
    const char c = at_end ? ';' : text[i];
    if (c == '[') ++bracket_depth;
    if (c == ']') --bracket_depth;
    if ((c == ';' || (c == ',' && bracket_depth == 0)) || at_end) {
      const auto piece = trim(text.substr(start, i - start));
      if (!piece.empty()) out.push_back(piece);
      start = i + 1;
    }
  }
  return out;
}

bool parse_number(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool valid_name(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

}  // namespace

ParseResult<std::vector<ServiceId>> parse_abstract_path(
    std::string_view text, const ServiceCatalog& catalog) {
  ParseResult<std::vector<ServiceId>> result;
  const auto names = split(text, "->");
  if (names.size() == 1 && names[0].empty()) {
    result.error = "empty abstract path";
    return result;
  }
  for (const auto name : names) {
    if (!valid_name(name)) {
      result.error = "malformed service name '" + std::string(name) + "'";
      return result;
    }
    const auto id = catalog.find(name);
    if (!id) {
      result.error = "unknown service '" + std::string(name) + "'";
      return result;
    }
    result.value.push_back(*id);
  }
  return result;
}

ParseResult<qos::QosVector> parse_requirement(std::string_view text,
                                              util::Interner& params,
                                              util::Interner& symbols) {
  ParseResult<qos::QosVector> result;
  for (const auto clause : split_clauses(text)) {
    // "name in [lo, hi]" — check before '=' so a '=' inside names can't
    // confuse it ('in' is not a valid name character sequence boundary
    // otherwise).
    const std::size_t in_pos = clause.find(" in ");
    const std::size_t eq_pos = clause.find('=');
    if (in_pos != std::string_view::npos &&
        (eq_pos == std::string_view::npos || in_pos < eq_pos)) {
      const auto name = trim(clause.substr(0, in_pos));
      auto rest = trim(clause.substr(in_pos + 4));
      if (!valid_name(name)) {
        result.error = "malformed parameter name '" + std::string(name) + "'";
        return result;
      }
      if (rest.size() < 2 || rest.front() != '[' || rest.back() != ']') {
        result.error = "expected range '[lo, hi]' in '" + std::string(clause) +
                       "'";
        return result;
      }
      rest = rest.substr(1, rest.size() - 2);
      const auto bounds = split(rest, ",");
      double lo = 0, hi = 0;
      if (bounds.size() != 2 || !parse_number(bounds[0], lo) ||
          !parse_number(bounds[1], hi) || lo > hi) {
        result.error = "malformed range in '" + std::string(clause) + "'";
        return result;
      }
      result.value.set(params.intern(name), qos::QosValue::range(lo, hi));
      continue;
    }
    if (eq_pos != std::string_view::npos) {
      const auto name = trim(clause.substr(0, eq_pos));
      const auto value = trim(clause.substr(eq_pos + 1));
      if (!valid_name(name)) {
        result.error = "malformed parameter name '" + std::string(name) + "'";
        return result;
      }
      double number = 0;
      if (parse_number(value, number)) {
        result.value.set(params.intern(name), qos::QosValue::single(number));
      } else if (valid_name(value)) {
        result.value.set(params.intern(name),
                         qos::QosValue::symbol(symbols.intern(value)));
      } else {
        result.error = "malformed value '" + std::string(value) + "'";
        return result;
      }
      continue;
    }
    result.error = "expected '=' or 'in' in clause '" + std::string(clause) +
                   "'";
    return result;
  }
  return result;
}

std::string format_abstract_path(std::span<const ServiceId> path,
                                 const ServiceCatalog& catalog) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += " -> ";
    out += catalog.service(path[i]).name;
  }
  return out;
}

}  // namespace qsa::registry
