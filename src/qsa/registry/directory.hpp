// The DHT-backed service directory: the "Discover service instances" step of
// Section 3.2. Service instances are published into the Chord ring under
// their abstract service's key; a requesting peer discovers the candidate
// instances for each service on its abstract path via Chord lookups (paying
// routing hops/latency), then reads each candidate's QoS specification from
// the catalog and its provider list from the placement map — in the real
// system both travel in the lookup response.
//
// Registrations are soft state: under churn, overlay nodes vanish with part
// of the key space and a periodic republish (re-inserting every instance)
// heals the directory, as P2P registries do. The directory programs against
// the LookupService interface, so it runs unchanged on Chord or CAN.
#pragma once

#include <vector>

#include "qsa/cache/discovery_cache.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/overlay/lookup.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/registry/placement.hpp"

namespace qsa::registry {

struct Discovery {
  std::vector<InstanceId> instances;  ///< candidates found for the service
  int hops = 0;                       ///< Chord routing hops paid
  sim::SimTime latency;               ///< summed lookup latency
};

/// The routing cost of one discovery, without the candidate list (that is
/// written into the caller's buffer by discover_into()).
struct DiscoveryStats {
  int hops = 0;
  sim::SimTime latency;
};

class ServiceDirectory {
 public:
  ServiceDirectory(std::uint64_t seed, overlay::LookupService& ring,
                   const ServiceCatalog& catalog);

  /// Publishes one instance under its service key.
  void publish(InstanceId instance);

  /// Publishes every catalog instance (bootstrap and periodic republish).
  void publish_all();

  /// Removes one instance's registration.
  void unpublish(InstanceId instance);

  /// Chord lookup of the candidate instances for `service`, routed from
  /// `from`. `net` (optional) prices per-hop latency. `now` feeds the TTL'd
  /// discovery cache: a fresh cached entry is served without routing (zero
  /// hops, zero latency); with the cache disabled (the default) `now` is
  /// unused and every call routes.
  [[nodiscard]] Discovery discover(ServiceId service, net::PeerId from,
                                   const net::NetworkModel* net = nullptr,
                                   sim::SimTime now = sim::SimTime::zero()) const;

  /// Allocation-aware variant of discover(): writes the candidates into
  /// `out` (reusing its buffer) and returns the routing cost. With the
  /// cache enabled, a hit copy-assigns into `out` — zero allocation once
  /// `out`'s capacity has plateaued. Results are identical to discover().
  DiscoveryStats discover_into(ServiceId service, net::PeerId from,
                               const net::NetworkModel* net, sim::SimTime now,
                               std::vector<InstanceId>& out) const;

  /// Enables the TTL'd discovery cache (zero, the default, disables it —
  /// accounting is then byte-identical to a cacheless directory).
  void set_cache_ttl(sim::SimTime ttl) { cache_.set_ttl(ttl); }

  /// Drops every cached discovery. The directory calls this itself on
  /// publish/unpublish; the harness calls it on peer departure (the one
  /// registration change the directory does not hear about directly).
  void invalidate_cache() const { cache_.invalidate(); }

  /// Attaches observability (optional; null detaches). Records per-lookup
  /// `directory.lookup_hops` and `directory.lookup_latency_ms` histograms
  /// plus a `directory.lookups` counter; when the discovery cache is
  /// enabled, also its `cache.discovery.*` counters.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  [[nodiscard]] overlay::Key key_of(ServiceId service) const;

  std::uint64_t seed_;
  overlay::LookupService& ring_;
  const ServiceCatalog& catalog_;
  // Logically the requesters' soft-state lookup cache, not directory state:
  // reads mutate only it (mutable), and const users (the algorithms hold a
  // const directory) still benefit.
  mutable cache::DiscoveryCache cache_;

  obs::Counter* lookups_ = nullptr;
  obs::Histogram* lookup_hops_ = nullptr;
  obs::Histogram* lookup_latency_ = nullptr;
};

}  // namespace qsa::registry
