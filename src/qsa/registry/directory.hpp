// The DHT-backed service directory: the "Discover service instances" step of
// Section 3.2. Service instances are published into the Chord ring under
// their abstract service's key; a requesting peer discovers the candidate
// instances for each service on its abstract path via Chord lookups (paying
// routing hops/latency), then reads each candidate's QoS specification from
// the catalog and its provider list from the placement map — in the real
// system both travel in the lookup response.
//
// Registrations are soft state: under churn, overlay nodes vanish with part
// of the key space and a periodic republish (re-inserting every instance)
// heals the directory, as P2P registries do. The directory programs against
// the LookupService interface, so it runs unchanged on Chord or CAN.
#pragma once

#include <vector>

#include "qsa/cache/discovery_cache.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/overlay/lookup.hpp"
#include "qsa/registry/backend.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/registry/placement.hpp"

namespace qsa::registry {

struct Discovery {
  std::vector<InstanceId> instances;  ///< candidates found for the service
  int hops = 0;                       ///< Chord routing hops paid
  sim::SimTime latency;               ///< summed lookup latency
};

class ServiceDirectory final : public DiscoveryBackend {
 public:
  ServiceDirectory(std::uint64_t seed, overlay::LookupService& ring,
                   const ServiceCatalog& catalog);

  /// Publishes one instance under its service key. Invalidates only that
  /// service's cached discovery — unrelated cached entries stay warm.
  void publish(InstanceId instance) override;

  /// Publishes every catalog instance (bootstrap and periodic republish).
  void publish_all() override;

  /// Removes one instance's registration (same per-service invalidation
  /// scope as publish()).
  void unpublish(InstanceId instance) override;

  /// DiscoveryBackend departure hook: a departed peer took part of the key
  /// space (and possibly providers of any service) with it, so the whole
  /// cache drops.
  void peer_departed(net::PeerId) override { invalidate_cache(); }

  /// Replica retirement: the instance stays published (other providers
  /// remain), but cached candidate lists were handed out against the wider
  /// pool — drop them all, like the departure path (the directory keys no
  /// state on (instance, host), so a narrower scope has nothing to target).
  void provider_retired(InstanceId, net::PeerId) override {
    invalidate_cache();
  }

  /// Chord lookup of the candidate instances for `service`, routed from
  /// `from`. `net` (optional) prices per-hop latency. `now` feeds the TTL'd
  /// discovery cache: a fresh cached entry is served without routing (zero
  /// hops, zero latency); with the cache disabled (the default) `now` is
  /// unused and every call routes.
  [[nodiscard]] Discovery discover(ServiceId service, net::PeerId from,
                                   const net::NetworkModel* net = nullptr,
                                   sim::SimTime now = sim::SimTime::zero()) const;

  /// Allocation-aware variant of discover(): writes the candidates into
  /// `out` (reusing its buffer) and returns the routing cost. With the
  /// cache enabled, a hit copy-assigns into `out` — zero allocation once
  /// `out`'s capacity has plateaued. Results are identical to discover().
  DiscoveryStats discover_into(ServiceId service, net::PeerId from,
                               const net::NetworkModel* net, sim::SimTime now,
                               std::vector<InstanceId>& out) const;

  /// DiscoveryBackend entry point: the directory answers by service key
  /// alone — the query's range predicates are ignored (composition and
  /// selection filter downstream), which is exactly the pre-seam behaviour.
  DiscoveryStats discover_into(const DiscoveryQuery& query,
                               const net::NetworkModel* net, sim::SimTime now,
                               std::vector<InstanceId>& out) const override {
    return discover_into(query.service, query.from, net, now, out);
  }

  /// Enables the TTL'd discovery cache (zero, the default, disables it —
  /// accounting is then byte-identical to a cacheless directory).
  void set_cache_ttl(sim::SimTime ttl) { cache_.set_ttl(ttl); }

  /// Drops every cached discovery — the peer-departure invalidation scope
  /// (a departure can affect any service's candidate list). publish and
  /// unpublish use the narrower per-service invalidate instead.
  void invalidate_cache() const { cache_.invalidate(); }

  /// Attaches observability (optional; null detaches). Records per-lookup
  /// `directory.lookup_hops` and `directory.lookup_latency_ms` histograms
  /// plus a `directory.lookups` counter; when the discovery cache is
  /// enabled, also its `cache.discovery.*` counters.
  void set_metrics(obs::MetricsRegistry* metrics) override;

 private:
  [[nodiscard]] overlay::Key key_of(ServiceId service) const;

  std::uint64_t seed_;
  overlay::LookupService& ring_;
  const ServiceCatalog& catalog_;
  // Logically the requesters' soft-state lookup cache, not directory state:
  // reads mutate only it (mutable), and const users (the algorithms hold a
  // const directory) still benefit.
  mutable cache::DiscoveryCache cache_;

  obs::Counter* lookups_ = nullptr;
  obs::Histogram* lookup_hops_ = nullptr;
  obs::Histogram* lookup_latency_ = nullptr;
};

}  // namespace qsa::registry
