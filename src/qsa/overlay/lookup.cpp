#include "qsa/overlay/lookup.hpp"

namespace qsa::overlay {

bool LookupService::deliver_hop(net::PeerId a, net::PeerId b,
                                LookupStats& stats,
                                const net::NetworkModel* net) const {
  if (!faults_active()) return true;
  const int budget = faults_->config().max_retries;
  for (int send = 0; send <= budget; ++send) {
    const fault::Delivery d = faults_->attempt(fault::Channel::kLookup, a, b);
    if (d.delivered) {
      stats.latency += d.extra_delay;
      return true;
    }
    // The message vanished: the hop was still paid for, and the sender sits
    // out a timeout (modeled as the pair latency) before resending.
    ++stats.hops;
    if (net != nullptr) stats.latency += net->latency(a, b);
    if (send < budget) {
      stats.latency += faults_->backoff(fault::Channel::kLookup, send + 1);
    }
  }
  return false;
}

}  // namespace qsa::overlay
