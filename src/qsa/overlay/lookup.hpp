// The P2P lookup substrate interface. Section 3.2 invokes "the P2P lookup
// protocol, such as Chord or CAN" for service discovery; the service
// directory programs against this interface and the grid can run on either
// implementation (ChordRing or CanOverlay).
//
// Keys are opaque 64-bit identifiers (see chord_id.hpp for the hash
// helpers); each implementation maps them into its own identifier space —
// Chord onto a ring, CAN onto a d-dimensional torus.
#pragma once

#include <cstdint>
#include <vector>

#include "qsa/fault/fault.hpp"
#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::util {
class ThreadPool;
}

namespace qsa::overlay {

using Key = std::uint64_t;

struct LookupStats {
  net::PeerId owner = net::kNoPeer;  ///< peer responsible for the key
  int hops = 0;                      ///< application-level routing hops
  sim::SimTime latency;              ///< summed per-hop network latency

  /// True when routing reached an owner. Under fault injection a lookup
  /// whose hop messages all got dropped (primary, alternate and every
  /// retry) fails instead of silently succeeding.
  [[nodiscard]] bool ok() const noexcept { return owner != net::kNoPeer; }
};

class LookupService {
 public:
  virtual ~LookupService() = default;

  /// Adds a peer to the overlay.
  virtual void join(net::PeerId peer) = 0;
  /// Bulk-bootstrap join: identical membership effect to join(), but an
  /// implementation may defer building the peer's routing state (finger
  /// tables) to the stabilize_all() a bulk bootstrap always ends with —
  /// computing it per join is O(N log N) work that stabilize_all() redoes
  /// wholesale anyway. Must not be used when lookups can run before that
  /// stabilize_all(). Default: a plain join.
  virtual void join_deferred(net::PeerId peer) { join(peer); }
  /// Graceful departure: stored keys are handed off.
  virtual void leave(net::PeerId peer) = 0;
  /// Abrupt failure: the node's store vanishes (replicas may survive).
  virtual void fail(net::PeerId peer) = 0;

  [[nodiscard]] virtual bool contains(net::PeerId peer) const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Routes from `from`'s node to the owner of `key`, counting hops and
  /// (with `net`) summing per-hop latency.
  [[nodiscard]] virtual LookupStats route(
      Key key, net::PeerId from, const net::NetworkModel* net = nullptr) const = 0;

  virtual void insert(Key key, std::uint64_t value) = 0;
  virtual void erase(Key key, std::uint64_t value) = 0;
  [[nodiscard]] virtual std::vector<std::uint64_t> get(Key key) const = 0;

  /// Periodic maintenance (finger refresh, neighbor-table repair, ...).
  virtual void stabilize_round(double fraction) = 0;
  virtual void stabilize_all() = 0;
  /// stabilize_all(), but an implementation whose per-node routing state is
  /// a pure function of the membership snapshot may fan the rebuild out over
  /// `pool` — the result must be byte-identical to the serial walk. Null
  /// pool (or no override) falls back to stabilize_all().
  virtual void stabilize_all_on(util::ThreadPool* pool) {
    (void)pool;
    stabilize_all();
  }

  /// Oracle owner of a key (for tests and safety fallbacks).
  [[nodiscard]] virtual net::PeerId owner_of(Key key) const = 0;

  /// Attaches the fault-injection plan (null = perfect messaging, the
  /// default). Routing then pays for dropped hop messages with retries,
  /// reroutes through alternates, and may fail a lookup outright.
  void set_faults(const fault::FaultPlan* faults) noexcept {
    faults_ = faults;
  }

 protected:
  /// Delivers one routing-hop message from `a` to `b` under the fault plan:
  /// up to 1 + max_retries sends, each drop charging a wasted hop, the pair
  /// latency (the sender's timeout) and exponential backoff into `stats`.
  /// Returns false when every attempt was lost. Free when no plan is
  /// attached or the plan is disabled.
  bool deliver_hop(net::PeerId a, net::PeerId b, LookupStats& stats,
                   const net::NetworkModel* net) const;

  /// True when hop messages can actually fail.
  [[nodiscard]] bool faults_active() const noexcept {
    return faults_ != nullptr && faults_->enabled();
  }

  /// Accounts a reroute through an alternate neighbor (no-op untracked).
  void note_reroute() const noexcept {
    if (faults_ != nullptr) faults_->note_reroute();
  }

 private:
  const fault::FaultPlan* faults_ = nullptr;
};

}  // namespace qsa::overlay
