// The P2P lookup substrate interface. Section 3.2 invokes "the P2P lookup
// protocol, such as Chord or CAN" for service discovery; the service
// directory programs against this interface and the grid can run on either
// implementation (ChordRing or CanOverlay).
//
// Keys are opaque 64-bit identifiers (see chord_id.hpp for the hash
// helpers); each implementation maps them into its own identifier space —
// Chord onto a ring, CAN onto a d-dimensional torus.
#pragma once

#include <cstdint>
#include <vector>

#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::overlay {

using Key = std::uint64_t;

struct LookupStats {
  net::PeerId owner = net::kNoPeer;  ///< peer responsible for the key
  int hops = 0;                      ///< application-level routing hops
  sim::SimTime latency;              ///< summed per-hop network latency
};

class LookupService {
 public:
  virtual ~LookupService() = default;

  /// Adds a peer to the overlay.
  virtual void join(net::PeerId peer) = 0;
  /// Graceful departure: stored keys are handed off.
  virtual void leave(net::PeerId peer) = 0;
  /// Abrupt failure: the node's store vanishes (replicas may survive).
  virtual void fail(net::PeerId peer) = 0;

  [[nodiscard]] virtual bool contains(net::PeerId peer) const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Routes from `from`'s node to the owner of `key`, counting hops and
  /// (with `net`) summing per-hop latency.
  [[nodiscard]] virtual LookupStats route(
      Key key, net::PeerId from, const net::NetworkModel* net = nullptr) const = 0;

  virtual void insert(Key key, std::uint64_t value) = 0;
  virtual void erase(Key key, std::uint64_t value) = 0;
  [[nodiscard]] virtual std::vector<std::uint64_t> get(Key key) const = 0;

  /// Periodic maintenance (finger refresh, neighbor-table repair, ...).
  virtual void stabilize_round(double fraction) = 0;
  virtual void stabilize_all() = 0;

  /// Oracle owner of a key (for tests and safety fallbacks).
  [[nodiscard]] virtual net::PeerId owner_of(Key key) const = 0;
};

}  // namespace qsa::overlay
