// CAN (Content-Addressable Network) overlay — the second lookup substrate
// the paper names (Ratnasamy et al., SIGCOMM 2001).
//
// The identifier space is the d-dimensional unit torus [0,1)^d. Every node
// owns a hyper-rectangular zone; the zones form the leaves of a binary
// split tree (each join splits a leaf in half along the next dimension in
// round-robin order, as CAN does). A 64-bit key hashes to a point; the node
// whose zone contains the point owns the key.
//
//   * join:  hash the newcomer to a random point, split the containing
//     zone, move the keys that fall in the new half;
//   * leave: the classic CAN takeover — if the sibling zone is a leaf the
//     two halves merge, otherwise the deepest leaf pair in the sibling
//     subtree donates one node to adopt the vacated zone;
//   * fail:  same zone takeover, but the store vanishes (replication on
//     `replicas` zone successors in tree order keeps copies reachable);
//   * routing: greedy geographic forwarding — each hop crosses the zone
//     boundary nearest the target, giving the protocol's O(d * n^(1/d))
//     hop growth.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "qsa/overlay/lookup.hpp"

namespace qsa::overlay {

/// Number of torus dimensions (CAN's `d`). The paper's CAN citation uses
/// small d; 2 gives the characteristic sqrt(n) routing.
inline constexpr std::size_t kCanDims = 2;

using CanPoint = std::array<double, kCanDims>;

/// Maps a key to its torus point (independent coordinate hashes).
[[nodiscard]] CanPoint can_point(std::uint64_t seed, Key key);

/// Per-dimension torus distance in [0, 0.5].
[[nodiscard]] double torus_dist(double a, double b);

class CanOverlay final : public LookupService {
 public:
  explicit CanOverlay(std::uint64_t seed, int replicas = 2);

  void join(net::PeerId peer) override;
  void leave(net::PeerId peer) override;
  void fail(net::PeerId peer) override;

  [[nodiscard]] bool contains(net::PeerId peer) const override;
  [[nodiscard]] std::size_t size() const override { return leaf_of_peer_.size(); }

  [[nodiscard]] LookupStats route(
      Key key, net::PeerId from,
      const net::NetworkModel* net = nullptr) const override;

  void insert(Key key, std::uint64_t value) override;
  void erase(Key key, std::uint64_t value) override;
  [[nodiscard]] std::vector<std::uint64_t> get(Key key) const override;

  /// CAN repairs its neighbor state eagerly during takeover; the periodic
  /// stabilization rounds are no-ops kept for interface parity.
  void stabilize_round(double fraction) override;
  void stabilize_all() override;

  [[nodiscard]] net::PeerId owner_of(Key key) const override;

  /// The zone (lo/hi per dimension) currently owned by a joined peer.
  struct Zone {
    CanPoint lo{};
    CanPoint hi{};
    [[nodiscard]] bool contains(const CanPoint& p) const;
    [[nodiscard]] double volume() const;
  };
  [[nodiscard]] Zone zone_of(net::PeerId peer) const;

  /// Internal consistency: leaves tile the torus exactly (test hook).
  [[nodiscard]] double total_leaf_volume() const;

 private:
  static constexpr int kNoNode = -1;

  struct TreeNode {
    Zone zone;
    int parent = kNoNode;
    int child[2] = {kNoNode, kNoNode};
    int split_dim = -1;                 ///< valid for interior nodes
    net::PeerId peer = net::kNoPeer;    ///< valid for leaves
    std::map<Key, std::set<std::uint64_t>> store;
    [[nodiscard]] bool is_leaf() const noexcept { return child[0] == kNoNode; }
  };

  [[nodiscard]] int leaf_containing(const CanPoint& p) const;
  [[nodiscard]] int deepest_leaf_pair(int subtree) const;
  void move_store_into_zone(TreeNode& from, TreeNode& to);
  void takeover(net::PeerId peer, bool graceful);
  /// The `replicas` leaves after `leaf` in an in-order walk (wrap-around).
  [[nodiscard]] std::vector<int> replica_leaves(int leaf) const;
  [[nodiscard]] int next_leaf(int leaf) const;

  std::uint64_t seed_;
  int replicas_;
  std::vector<TreeNode> tree_;  // slot 0 = root once first node joins
  std::vector<int> free_slots_;
  int root_ = kNoNode;
  std::unordered_map<net::PeerId, int> leaf_of_peer_;
};

}  // namespace qsa::overlay
