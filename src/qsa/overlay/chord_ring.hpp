// Chord ring: the P2P lookup service the aggregation model builds on.
//
// Every peer owns a node on a 64-bit identifier ring. A key is owned by its
// successor node. Nodes keep finger tables (finger[i] = first node at or
// after key + 2^i); lookups route greedily through the closest preceding
// live finger, falling back to the (always-correct) successor walk — the
// same progress guarantee real Chord gets from aggressive successor
// stabilization. Finger tables go stale under churn and are refreshed in
// periodic stabilization rounds, so lookup hop counts react to churn the way
// the protocol's do.
//
// The ring also implements the DHT storage layer the service directory
// needs: multi-valued keys with configurable replication on successors,
// key handoff on graceful leave and ownership shift on abrupt failure.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/overlay/chord_id.hpp"
#include "qsa/overlay/lookup.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::overlay {

class ChordRing final : public LookupService {
 public:
  /// `replicas` >= 1: each stored value lives on the owner plus
  /// (replicas - 1) immediate successors so abrupt failures rarely lose it.
  explicit ChordRing(std::uint64_t seed, int replicas = 2);

  /// Adds `peer` to the ring and pulls the key range it now owns from its
  /// successor. Computes the new node's fingers immediately (Chord's join
  /// does the same via lookups).
  void join(net::PeerId peer) override;

  /// Bulk-bootstrap join: same membership/store effect as join(), but the
  /// finger table is left unset (self-pointing, which routing treats as "no
  /// useful finger") until the stabilize_all() that ends the bootstrap
  /// recomputes every table anyway. Joining N peers this way is O(N log N)
  /// map inserts instead of O(N * 64 log N) finger lookups.
  void join_deferred(net::PeerId peer) override;

  /// Graceful departure: hands stored keys to the successor, then leaves.
  void leave(net::PeerId peer) override;

  /// Abrupt failure: the node vanishes with its store; replicas on
  /// successors keep surviving copies reachable.
  void fail(net::PeerId peer) override;

  [[nodiscard]] bool contains(net::PeerId peer) const override;
  [[nodiscard]] std::size_t size() const override { return ring_.size(); }

  /// Routes from `from`'s node to the owner of `key`, counting hops and, if
  /// `net` is given, summing per-hop latency. Requires a non-empty ring and
  /// `from` to be joined.
  [[nodiscard]] LookupStats route(
      ChordKey key, net::PeerId from,
      const net::NetworkModel* net = nullptr) const override;

  /// Stores `value` under `key` (owner + replicas).
  void insert(ChordKey key, std::uint64_t value) override;

  /// Removes `value` from `key` everywhere it is replicated.
  void erase(ChordKey key, std::uint64_t value) override;

  /// Values stored under `key` at its current owner (what a lookup returns).
  [[nodiscard]] std::vector<std::uint64_t> get(ChordKey key) const override;

  /// Refreshes the finger tables of roughly `fraction` of the nodes,
  /// cycling through the ring across calls (periodic stabilization).
  void stabilize_round(double fraction = 0.1) override;

  /// Refreshes every finger table (used after bulk bootstrap joins).
  void stabilize_all() override;

  /// Parallel full refresh: every node's fingers are a pure function of the
  /// shared sorted key snapshot, so the per-node rebuilds fan out over the
  /// pool and land byte-identical to the serial walk.
  void stabilize_all_on(util::ThreadPool* pool) override;

  /// The node key owning `key` resolved against the live ring (oracle view,
  /// for tests).
  [[nodiscard]] net::PeerId owner_of(ChordKey key) const override;

 private:
  struct Node {
    net::PeerId peer = net::kNoPeer;
    // finger[i] targets key + 2^i. Inline array (not a heap vector): one
    // allocation per node instead of two, which matters at 10^6 joins. A
    // finger equal to the node's own key means "unset/useless" — routing
    // skips it (deferred joins fill the whole table with the own key).
    std::array<ChordKey, kKeyBits> fingers{};
    std::map<ChordKey, std::set<std::uint64_t>> store;
  };

  using Ring = std::map<ChordKey, Node>;

  /// First live node at or after `key` (wrapping). Requires non-empty ring.
  [[nodiscard]] Ring::const_iterator successor(ChordKey key) const;
  [[nodiscard]] Ring::iterator successor(ChordKey key);

  void compute_fingers(ChordKey at, Node& node) const;
  /// Finger recomputation against a sorted snapshot of the ring's keys —
  /// contiguous binary searches instead of 64 pointer-chasing map walks per
  /// node; bit-identical results. The stabilize paths refresh many nodes
  /// per call, which amortizes the snapshot copy.
  static void compute_fingers_sorted(const std::vector<ChordKey>& keys,
                                     ChordKey at, Node& node);
  void snapshot_keys(std::vector<ChordKey>& out) const;
  /// Shared join body; `deferred` skips the finger computation.
  void join_impl(net::PeerId peer, bool deferred);
  void replicate_insert(Ring::iterator owner_it, ChordKey key,
                        std::uint64_t value);

  std::uint64_t seed_;
  int replicas_;
  Ring ring_;
  std::unordered_map<net::PeerId, ChordKey> key_of_peer_;
  ChordKey stabilize_cursor_ = 0;
  std::vector<ChordKey> stabilize_scratch_;  // grow-only snapshot buffer
};

}  // namespace qsa::overlay
