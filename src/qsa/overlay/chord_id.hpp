// Chord identifier space: 64-bit keys on a ring (the paper's P2P lookup
// substrate, Section 3.2 "Discover service instances", citing Chord).
#pragma once

#include <cstdint>
#include <string_view>

namespace qsa::overlay {

using ChordKey = std::uint64_t;

/// Number of bits in the identifier space (finger-table size).
inline constexpr int kKeyBits = 64;

/// Hashes a peer id into the ring.
[[nodiscard]] ChordKey node_key(std::uint64_t seed, std::uint32_t peer);

/// Hashes an application key (e.g. a service name) into the ring.
[[nodiscard]] ChordKey data_key(std::uint64_t seed, std::string_view name);
[[nodiscard]] ChordKey data_key(std::uint64_t seed, std::uint64_t id);

/// True iff x lies in the half-open ring interval (a, b] (wrapping).
[[nodiscard]] constexpr bool in_interval_oc(ChordKey a, ChordKey b,
                                            ChordKey x) noexcept {
  if (a == b) return true;  // the whole ring
  if (a < b) return a < x && x <= b;
  return x > a || x <= b;  // wrapped
}

/// True iff x lies in the open ring interval (a, b) (wrapping).
[[nodiscard]] constexpr bool in_interval_oo(ChordKey a, ChordKey b,
                                            ChordKey x) noexcept {
  if (a == b) return x != a;  // everything except the endpoint
  if (a < b) return a < x && x < b;
  return x > a || x < b;
}

}  // namespace qsa::overlay
