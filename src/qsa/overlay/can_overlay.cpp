#include "qsa/overlay/can_overlay.hpp"

#include <algorithm>
#include <cmath>

#include "qsa/util/expects.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::overlay {
namespace {

/// Wraps a coordinate into [0, 1).
double wrap01(double x) {
  x -= std::floor(x);
  return x >= 1.0 ? 0.0 : x;
}

/// The largest representable coordinate below `x` on the unit torus.
double just_below(double x) {
  return x <= 0.0 ? std::nextafter(1.0, 0.0) : std::nextafter(x, 0.0);
}

}  // namespace

CanPoint can_point(std::uint64_t seed, Key key) {
  CanPoint p;
  for (std::size_t d = 0; d < kCanDims; ++d) {
    const std::uint64_t h =
        util::mix64(util::hash_combine(seed ^ util::hash_str("can-coord"),
                                       util::hash_combine(key, d)));
    p[d] = static_cast<double>(h >> 11) * 0x1.0p-53;
  }
  return p;
}

double torus_dist(double a, double b) {
  const double d = std::abs(a - b);
  return std::min(d, 1.0 - d);
}

bool CanOverlay::Zone::contains(const CanPoint& p) const {
  for (std::size_t d = 0; d < kCanDims; ++d) {
    if (p[d] < lo[d] || p[d] >= hi[d]) return false;
  }
  return true;
}

double CanOverlay::Zone::volume() const {
  double v = 1;
  for (std::size_t d = 0; d < kCanDims; ++d) v *= hi[d] - lo[d];
  return v;
}

CanOverlay::CanOverlay(std::uint64_t seed, int replicas)
    : seed_(seed), replicas_(replicas) {
  QSA_EXPECTS(replicas >= 1);
}

bool CanOverlay::contains(net::PeerId peer) const {
  return leaf_of_peer_.contains(peer);
}

int CanOverlay::leaf_containing(const CanPoint& p) const {
  QSA_EXPECTS(root_ != kNoNode);
  int at = root_;
  while (!tree_[static_cast<std::size_t>(at)].is_leaf()) {
    const TreeNode& node = tree_[static_cast<std::size_t>(at)];
    const int dim = node.split_dim;
    const double mid =
        tree_[static_cast<std::size_t>(node.child[1])].zone.lo[static_cast<std::size_t>(dim)];
    at = p[static_cast<std::size_t>(dim)] < mid ? node.child[0] : node.child[1];
  }
  return at;
}

void CanOverlay::join(net::PeerId peer) {
  QSA_EXPECTS(!contains(peer));
  auto alloc = [this]() -> int {
    if (!free_slots_.empty()) {
      const int slot = free_slots_.back();
      free_slots_.pop_back();
      tree_[static_cast<std::size_t>(slot)] = TreeNode{};
      return slot;
    }
    tree_.emplace_back();
    return static_cast<int>(tree_.size() - 1);
  };

  if (root_ == kNoNode) {
    root_ = alloc();
    TreeNode& root = tree_[static_cast<std::size_t>(root_)];
    root.zone.lo.fill(0.0);
    root.zone.hi.fill(1.0);
    root.peer = peer;
    leaf_of_peer_.emplace(peer, root_);
    return;
  }

  // Split the zone containing the newcomer's hash point, along its longest
  // side (keeps zones square-ish, as CAN's round-robin splitting intends).
  const CanPoint p =
      can_point(seed_ ^ util::hash_str("can-node"), peer);
  const int leaf = leaf_containing(p);
  const int lower = alloc();
  const int upper = alloc();
  TreeNode& parent = tree_[static_cast<std::size_t>(leaf)];

  std::size_t dim = 0;
  for (std::size_t d = 1; d < kCanDims; ++d) {
    if (parent.zone.hi[d] - parent.zone.lo[d] >
        parent.zone.hi[dim] - parent.zone.lo[dim]) {
      dim = d;
    }
  }
  const double mid = (parent.zone.lo[dim] + parent.zone.hi[dim]) / 2;

  TreeNode& lo_node = tree_[static_cast<std::size_t>(lower)];
  TreeNode& hi_node = tree_[static_cast<std::size_t>(upper)];
  lo_node.zone = parent.zone;
  lo_node.zone.hi[dim] = mid;
  hi_node.zone = parent.zone;
  hi_node.zone.lo[dim] = mid;
  lo_node.parent = hi_node.parent = leaf;

  // The occupant keeps the lower half; the newcomer takes the upper half
  // and the keys that now fall into it.
  lo_node.peer = parent.peer;
  hi_node.peer = peer;
  for (auto it = parent.store.begin(); it != parent.store.end();) {
    const CanPoint kp = can_point(seed_, it->first);
    if (hi_node.zone.contains(kp)) {
      hi_node.store.emplace(it->first, std::move(it->second));
      it = parent.store.erase(it);
    } else {
      lo_node.store.emplace(it->first, std::move(it->second));
      it = parent.store.erase(it);
    }
  }

  parent.peer = net::kNoPeer;
  parent.split_dim = static_cast<int>(dim);
  parent.child[0] = lower;
  parent.child[1] = upper;
  leaf_of_peer_[lo_node.peer] = lower;
  leaf_of_peer_.emplace(peer, upper);
}

int CanOverlay::deepest_leaf_pair(int subtree) const {
  // Returns the interior node, deepest first, whose both children are
  // leaves. `subtree` must not be a leaf.
  int best = kNoNode;
  int best_depth = -1;
  struct Frame {
    int node;
    int depth;
  };
  std::vector<Frame> stack{{subtree, 0}};
  while (!stack.empty()) {
    const auto [at, depth] = stack.back();
    stack.pop_back();
    const TreeNode& node = tree_[static_cast<std::size_t>(at)];
    if (node.is_leaf()) continue;
    const bool both_leaves =
        tree_[static_cast<std::size_t>(node.child[0])].is_leaf() &&
        tree_[static_cast<std::size_t>(node.child[1])].is_leaf();
    if (both_leaves) {
      if (depth > best_depth) {
        best_depth = depth;
        best = at;
      }
      continue;
    }
    stack.push_back({node.child[0], depth + 1});
    stack.push_back({node.child[1], depth + 1});
  }
  QSA_ASSERT(best != kNoNode);
  return best;
}

void CanOverlay::move_store_into_zone(TreeNode& from, TreeNode& to) {
  for (auto& [key, values] : from.store) {
    to.store[key].insert(values.begin(), values.end());
  }
  from.store.clear();
}

void CanOverlay::takeover(net::PeerId peer, bool graceful) {
  auto pit = leaf_of_peer_.find(peer);
  if (pit == leaf_of_peer_.end()) return;
  const int leaf = pit->second;
  leaf_of_peer_.erase(pit);

  TreeNode& vacated = tree_[static_cast<std::size_t>(leaf)];
  if (!graceful) vacated.store.clear();

  if (leaf == root_) {  // last node leaves: the overlay empties
    root_ = kNoNode;
    tree_.clear();
    free_slots_.clear();
    return;
  }

  const int parent = vacated.parent;
  TreeNode& p = tree_[static_cast<std::size_t>(parent)];
  const int sibling = p.child[0] == leaf ? p.child[1] : p.child[0];
  TreeNode& sib = tree_[static_cast<std::size_t>(sibling)];

  if (sib.is_leaf()) {
    // The two halves merge back: the sibling's owner takes the parent zone.
    p.peer = sib.peer;
    p.split_dim = -1;
    p.child[0] = p.child[1] = kNoNode;
    move_store_into_zone(sib, p);
    move_store_into_zone(vacated, p);
    leaf_of_peer_[p.peer] = parent;
    free_slots_.push_back(leaf);
    free_slots_.push_back(sibling);
    return;
  }

  // Classic CAN takeover: the deepest leaf pair in the sibling subtree
  // donates one node; its pair-mate absorbs the donated zone, the donor
  // adopts the vacated zone.
  const int pair = deepest_leaf_pair(sibling);
  TreeNode& q = tree_[static_cast<std::size_t>(pair)];
  const int donor_leaf = q.child[0];
  const int mate_leaf = q.child[1];
  TreeNode& donor = tree_[static_cast<std::size_t>(donor_leaf)];
  TreeNode& mate = tree_[static_cast<std::size_t>(mate_leaf)];

  // The pair collapses into one zone owned by the mate.
  q.peer = mate.peer;
  q.split_dim = -1;
  q.child[0] = q.child[1] = kNoNode;
  const net::PeerId donor_peer = donor.peer;
  move_store_into_zone(mate, q);
  move_store_into_zone(donor, q);
  leaf_of_peer_[q.peer] = pair;
  free_slots_.push_back(donor_leaf);
  free_slots_.push_back(mate_leaf);

  // The donor adopts the vacated zone (with its surviving store).
  vacated.peer = donor_peer;
  leaf_of_peer_[donor_peer] = leaf;
}

void CanOverlay::leave(net::PeerId peer) { takeover(peer, /*graceful=*/true); }

void CanOverlay::fail(net::PeerId peer) { takeover(peer, /*graceful=*/false); }

int CanOverlay::next_leaf(int leaf) const {
  // In-order successor among leaves, wrapping at the end.
  int at = leaf;
  for (;;) {
    const int parent = tree_[static_cast<std::size_t>(at)].parent;
    if (parent == kNoNode) {  // climbed off the root: wrap to leftmost
      at = root_;
      break;
    }
    if (tree_[static_cast<std::size_t>(parent)].child[0] == at) {
      at = tree_[static_cast<std::size_t>(parent)].child[1];
      break;
    }
    at = parent;
  }
  while (!tree_[static_cast<std::size_t>(at)].is_leaf()) {
    at = tree_[static_cast<std::size_t>(at)].child[0];
  }
  return at;
}

std::vector<int> CanOverlay::replica_leaves(int leaf) const {
  std::vector<int> out;
  const int copies =
      std::min<int>(replicas_, static_cast<int>(leaf_of_peer_.size()));
  int at = leaf;
  for (int i = 0; i < copies; ++i) {
    out.push_back(at);
    at = next_leaf(at);
  }
  return out;
}

void CanOverlay::insert(Key key, std::uint64_t value) {
  QSA_EXPECTS(root_ != kNoNode);
  const int owner = leaf_containing(can_point(seed_, key));
  for (int leaf : replica_leaves(owner)) {
    tree_[static_cast<std::size_t>(leaf)].store[key].insert(value);
  }
}

void CanOverlay::erase(Key key, std::uint64_t value) {
  if (root_ == kNoNode) return;
  const int owner = leaf_containing(can_point(seed_, key));
  // A slightly wider window than insert uses: replica placement drifts
  // under churn, exactly as in the Chord implementation.
  int at = owner;
  const int window =
      std::min<int>(replicas_ + 2, static_cast<int>(leaf_of_peer_.size()));
  for (int i = 0; i < window; ++i) {
    TreeNode& node = tree_[static_cast<std::size_t>(at)];
    if (auto sit = node.store.find(key); sit != node.store.end()) {
      sit->second.erase(value);
      if (sit->second.empty()) node.store.erase(sit);
    }
    at = next_leaf(at);
  }
}

std::vector<std::uint64_t> CanOverlay::get(Key key) const {
  if (root_ == kNoNode) return {};
  const TreeNode& owner =
      tree_[static_cast<std::size_t>(leaf_containing(can_point(seed_, key)))];
  const auto sit = owner.store.find(key);
  if (sit == owner.store.end()) return {};
  return {sit->second.begin(), sit->second.end()};
}

LookupStats CanOverlay::route(Key key, net::PeerId from,
                              const net::NetworkModel* net) const {
  QSA_EXPECTS(root_ != kNoNode);
  const auto fit = leaf_of_peer_.find(from);
  QSA_EXPECTS(fit != leaf_of_peer_.end());

  const CanPoint target = can_point(seed_, key);
  LookupStats stats;
  int cur = fit->second;

  // Greedy forwarding needs at most O(d * n^(1/d)) hops; the cap guards a
  // corrupted tree.
  const int max_hops =
      8 + 4 * static_cast<int>(kCanDims *
                               std::pow(static_cast<double>(size()),
                                        1.0 / static_cast<double>(kCanDims)));
  while (stats.hops <= max_hops) {
    const TreeNode& node = tree_[static_cast<std::size_t>(cur)];
    if (node.zone.contains(target)) {
      stats.owner = node.peer;
      return stats;
    }
    // Cross the face nearest the target: clamp the point into the zone,
    // then step just over the boundary of the worst dimension.
    CanPoint step{};
    std::size_t worst_dim = 0;
    double worst_dist = -1;
    bool worst_is_upper = false;
    for (std::size_t d = 0; d < kCanDims; ++d) {
      const double t = target[d];
      if (t >= node.zone.lo[d] && t < node.zone.hi[d]) {
        step[d] = t;
        continue;
      }
      const double dist_lo = torus_dist(t, node.zone.lo[d]);
      const double dist_hi = torus_dist(t, node.zone.hi[d]);
      const bool upper = dist_hi < dist_lo;
      // Clamp inside the zone for now.
      step[d] = upper ? just_below(node.zone.hi[d]) : node.zone.lo[d];
      const double dist = std::min(dist_lo, dist_hi);
      if (dist > worst_dist) {
        worst_dist = dist;
        worst_dim = d;
        worst_is_upper = upper;
      }
    }
    QSA_ASSERT(worst_dist >= 0);
    // Step across the chosen face (half-open zones make the boundary point
    // itself belong to the neighbor).
    step[worst_dim] = worst_is_upper
                          ? wrap01(node.zone.hi[worst_dim])
                          : just_below(node.zone.lo[worst_dim]);
    int next = leaf_containing(step);
    QSA_ASSERT(next != cur);
    if (!deliver_hop(node.peer, tree_[static_cast<std::size_t>(next)].peer,
                     stats, net)) {
      // Greedy neighbor unreachable: reroute straight to the owner zone
      // (the wider search a node falls back to after a timeout).
      const int owner = leaf_containing(target);
      if (owner == next) return stats;  // owner itself unreachable: failed
      note_reroute();
      if (!deliver_hop(node.peer, tree_[static_cast<std::size_t>(owner)].peer,
                       stats, net)) {
        return stats;  // lookup failed; owner stays kNoPeer
      }
      next = owner;
    }
    if (net != nullptr) {
      stats.latency += net->latency(node.peer,
                                    tree_[static_cast<std::size_t>(next)].peer);
    }
    ++stats.hops;
    cur = next;
  }
  // Greedy routing can dither around a wrap seam; fall back to the direct
  // owner with one accounted hop, as a real node would after a timeout.
  const int owner = leaf_containing(target);
  if (!deliver_hop(tree_[static_cast<std::size_t>(cur)].peer,
                   tree_[static_cast<std::size_t>(owner)].peer, stats, net)) {
    return stats;  // lookup failed; owner stays kNoPeer
  }
  if (net != nullptr) {
    stats.latency += net->latency(tree_[static_cast<std::size_t>(cur)].peer,
                                  tree_[static_cast<std::size_t>(owner)].peer);
  }
  ++stats.hops;
  stats.owner = tree_[static_cast<std::size_t>(owner)].peer;
  return stats;
}

void CanOverlay::stabilize_round(double) {}
void CanOverlay::stabilize_all() {}

net::PeerId CanOverlay::owner_of(Key key) const {
  QSA_EXPECTS(root_ != kNoNode);
  return tree_[static_cast<std::size_t>(leaf_containing(can_point(seed_, key)))]
      .peer;
}

CanOverlay::Zone CanOverlay::zone_of(net::PeerId peer) const {
  const auto it = leaf_of_peer_.find(peer);
  QSA_EXPECTS(it != leaf_of_peer_.end());
  return tree_[static_cast<std::size_t>(it->second)].zone;
}

double CanOverlay::total_leaf_volume() const {
  double total = 0;
  for (const auto& [peer, leaf] : leaf_of_peer_) {
    total += tree_[static_cast<std::size_t>(leaf)].zone.volume();
  }
  return total;
}

}  // namespace qsa::overlay
