// Pastry overlay (Rowstron & Druschel, Middleware 2001): the third
// structured lookup substrate, alongside Chord and CAN.
//
// Node ids live on a 64-bit circular space read as sixteen base-16 digits,
// most significant first. A key is owned by the node whose id is
// numerically closest on the circle (ties to the lower id). Each node keeps
//   * a leaf set: the L/2 nearest node ids on each side, always correct
//     (Pastry repairs leaf sets eagerly); and
//   * a routing table: row l holds, for each digit d, some node sharing
//     exactly l leading digits with this node and having digit d next —
//     refreshed in stabilization rounds, so entries go stale under churn
//     exactly as Chord fingers do.
// Routing: if the key falls inside the leaf-set range, hop directly to the
// numerically closest leaf; otherwise forward along the routing-table entry
// matching one more digit; in the rare case both fail, forward to any known
// node strictly closer to the key. Expected hops: O(log_16 N).
//
// Storage follows PAST: values replicate on the owner's leaf set.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "qsa/overlay/lookup.hpp"

namespace qsa::overlay {

class PastryOverlay final : public LookupService {
 public:
  /// Digits are 4 bits (base 16); ids have 16 digits.
  static constexpr int kDigitBits = 4;
  static constexpr int kDigits = 64 / kDigitBits;
  static constexpr int kBase = 1 << kDigitBits;
  /// Leaf-set half width (L/2 nodes on each side; L = 16, the standard
  /// Pastry configuration).
  static constexpr int kLeafHalf = 8;

  explicit PastryOverlay(std::uint64_t seed, int replicas = 2);

  void join(net::PeerId peer) override;
  void leave(net::PeerId peer) override;
  void fail(net::PeerId peer) override;

  [[nodiscard]] bool contains(net::PeerId peer) const override;
  [[nodiscard]] std::size_t size() const override { return ring_.size(); }

  [[nodiscard]] LookupStats route(
      Key key, net::PeerId from,
      const net::NetworkModel* net = nullptr) const override;

  void insert(Key key, std::uint64_t value) override;
  void erase(Key key, std::uint64_t value) override;
  [[nodiscard]] std::vector<std::uint64_t> get(Key key) const override;

  void stabilize_round(double fraction) override;
  void stabilize_all() override;

  [[nodiscard]] net::PeerId owner_of(Key key) const override;

  /// Digit `i` (0 = most significant) of an id.
  [[nodiscard]] static int digit(std::uint64_t id, int i) noexcept {
    return static_cast<int>((id >> (64 - kDigitBits * (i + 1))) &
                            (kBase - 1));
  }
  /// Number of leading base-16 digits two ids share.
  [[nodiscard]] static int shared_digits(std::uint64_t a,
                                         std::uint64_t b) noexcept;
  /// Circular distance on the 64-bit id space.
  [[nodiscard]] static std::uint64_t circular_dist(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
    const std::uint64_t d = a - b;
    const std::uint64_t e = b - a;
    return d < e ? d : e;
  }

 private:
  struct Node {
    net::PeerId peer = net::kNoPeer;
    /// routing[l][d]: a node id sharing l digits with ours, digit l == d;
    /// kNoEntry when empty.
    std::array<std::array<std::uint64_t, kBase>, kDigits> routing{};
    bool routing_valid = false;
    std::map<Key, std::set<std::uint64_t>> store;
  };
  static constexpr std::uint64_t kNoEntry = 0;  // own slot is never used

  using Ring = std::map<std::uint64_t, Node>;

  [[nodiscard]] Ring::const_iterator node_nearest(std::uint64_t id) const;
  [[nodiscard]] Ring::iterator node_nearest(std::uint64_t id);

  /// The kLeafHalf neighbors on each side of a node (excluding it), plus
  /// the clockwise arc the whole set spans.
  struct Leaves {
    std::vector<std::uint64_t> ids;
    std::uint64_t leftmost = 0;   ///< counter-clockwise extreme
    std::uint64_t rightmost = 0;  ///< clockwise extreme
    bool whole_ring = false;      ///< the set covers every other node
  };
  [[nodiscard]] Leaves leaf_set(Ring::const_iterator it) const;
  void compute_routing(std::uint64_t id, Node& node) const;
  void replicate_insert(Ring::iterator owner_it, Key key, std::uint64_t value);

  std::uint64_t seed_;
  int replicas_;
  Ring ring_;
  std::unordered_map<net::PeerId, std::uint64_t> id_of_peer_;
  std::uint64_t stabilize_cursor_ = 0;
};

}  // namespace qsa::overlay
