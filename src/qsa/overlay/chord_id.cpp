#include "qsa/overlay/chord_id.hpp"

#include "qsa/util/rng.hpp"

namespace qsa::overlay {

ChordKey node_key(std::uint64_t seed, std::uint32_t peer) {
  return util::mix64(util::hash_combine(seed ^ util::hash_str("chord-node"),
                                        peer));
}

ChordKey data_key(std::uint64_t seed, std::string_view name) {
  return util::mix64(util::hash_combine(seed ^ util::hash_str("chord-data"),
                                        util::hash_str(name)));
}

ChordKey data_key(std::uint64_t seed, std::uint64_t id) {
  return util::mix64(
      util::hash_combine(seed ^ util::hash_str("chord-data"), id));
}

}  // namespace qsa::overlay
