#include "qsa/overlay/pastry_overlay.hpp"

#include <algorithm>
#include <cmath>

#include "qsa/overlay/chord_id.hpp"
#include "qsa/util/expects.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::overlay {

int PastryOverlay::shared_digits(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == b) return kDigits;
  const int lz = __builtin_clzll(a ^ b);
  return lz / kDigitBits;
}

PastryOverlay::PastryOverlay(std::uint64_t seed, int replicas)
    : seed_(seed), replicas_(replicas) {
  QSA_EXPECTS(replicas >= 1);
}

bool PastryOverlay::contains(net::PeerId peer) const {
  return id_of_peer_.contains(peer);
}

PastryOverlay::Ring::const_iterator PastryOverlay::node_nearest(
    std::uint64_t id) const {
  QSA_EXPECTS(!ring_.empty());
  auto hi = ring_.lower_bound(id);
  auto lo = hi;
  if (hi == ring_.end()) hi = ring_.begin();
  lo = lo == ring_.begin() ? std::prev(ring_.end()) : std::prev(lo);
  const std::uint64_t dh = circular_dist(hi->first, id);
  const std::uint64_t dl = circular_dist(lo->first, id);
  if (dh < dl) return hi;
  if (dl < dh) return lo;
  return lo->first < hi->first ? lo : hi;  // tie: lower id
}

PastryOverlay::Ring::iterator PastryOverlay::node_nearest(std::uint64_t id) {
  const auto cit = static_cast<const PastryOverlay*>(this)->node_nearest(id);
  return ring_.find(cit->first);
}

PastryOverlay::Leaves PastryOverlay::leaf_set(Ring::const_iterator it) const {
  Leaves out;
  out.leftmost = out.rightmost = it->first;
  out.whole_ring = ring_.size() <= 2 * kLeafHalf + 1;
  auto fwd = it;
  auto bwd = it;
  for (int i = 0; i < kLeafHalf; ++i) {
    fwd = std::next(fwd) == ring_.end() ? ring_.begin() : std::next(fwd);
    if (fwd == it) break;
    out.ids.push_back(fwd->first);
    out.rightmost = fwd->first;
  }
  for (int i = 0; i < kLeafHalf; ++i) {
    bwd = bwd == ring_.begin() ? std::prev(ring_.end()) : std::prev(bwd);
    if (bwd == it) break;
    if (std::find(out.ids.begin(), out.ids.end(), bwd->first) ==
        out.ids.end()) {
      out.ids.push_back(bwd->first);
      out.leftmost = bwd->first;
    }
  }
  return out;
}

void PastryOverlay::compute_routing(std::uint64_t id, Node& node) const {
  for (int l = 0; l < kDigits; ++l) {
    const int own_digit = digit(id, l);
    const int shift = 64 - kDigitBits * (l + 1);
    // Mask keeping the l leading digits.
    const std::uint64_t prefix_mask =
        l == 0 ? 0ull : ~0ull << (64 - kDigitBits * l);
    for (int d = 0; d < kBase; ++d) {
      auto& slot = node.routing[static_cast<std::size_t>(l)]
                               [static_cast<std::size_t>(d)];
      slot = kNoEntry;
      if (d == own_digit) continue;
      const std::uint64_t base = (id & prefix_mask) |
                                 (static_cast<std::uint64_t>(d) << shift);
      const std::uint64_t span = shift == 0 ? 1ull : (1ull << shift);
      auto it = ring_.lower_bound(base);
      if (it != ring_.end() && it->first - base < span) slot = it->first;
    }
  }
  node.routing_valid = true;
}

void PastryOverlay::join(net::PeerId peer) {
  QSA_EXPECTS(!contains(peer));
  const std::uint64_t id =
      node_key(seed_ ^ util::hash_str("pastry-node"), peer);
  QSA_EXPECTS(!ring_.contains(id));
  Node node;
  node.peer = peer;
  const bool first = ring_.empty();
  auto [it, inserted] = ring_.emplace(id, std::move(node));
  QSA_ASSERT(inserted);
  id_of_peer_.emplace(peer, id);
  if (!first) {
    // Pull over the keys the newcomer is now nearest to, from both ring
    // neighbors (the only nodes whose ownership ranges shrank).
    for (auto* neighbor : {&*(std::next(it) == ring_.end() ? ring_.begin()
                                                           : std::next(it)),
                           &*(it == ring_.begin() ? std::prev(ring_.end())
                                                  : std::prev(it))}) {
      if (neighbor->first == id) continue;
      auto& store = neighbor->second.store;
      for (auto sit = store.begin(); sit != store.end();) {
        if (node_nearest(sit->first)->first == id) {
          it->second.store[sit->first].insert(sit->second.begin(),
                                              sit->second.end());
          sit = store.erase(sit);
        } else {
          ++sit;
        }
      }
    }
  }
  compute_routing(id, it->second);
}

void PastryOverlay::leave(net::PeerId peer) {
  auto pit = id_of_peer_.find(peer);
  if (pit == id_of_peer_.end()) return;
  auto it = ring_.find(pit->second);
  QSA_ASSERT(it != ring_.end());
  // Ownership is numerically-closest, so the departed node's keys split
  // between both ring neighbors: hand each key to its new nearest node.
  auto store = std::move(it->second.store);
  ring_.erase(it);
  id_of_peer_.erase(pit);
  if (!ring_.empty()) {
    for (auto& [key, values] : store) {
      auto owner = node_nearest(key);
      owner->second.store[key].insert(values.begin(), values.end());
    }
  }
}

void PastryOverlay::fail(net::PeerId peer) {
  auto pit = id_of_peer_.find(peer);
  if (pit == id_of_peer_.end()) return;
  ring_.erase(pit->second);  // store lost; leaf replicas keep copies alive
  id_of_peer_.erase(pit);
}

LookupStats PastryOverlay::route(Key key, net::PeerId from,
                                 const net::NetworkModel* net) const {
  QSA_EXPECTS(!ring_.empty());
  const auto fit = id_of_peer_.find(from);
  QSA_EXPECTS(fit != id_of_peer_.end());

  LookupStats stats;
  auto cur = ring_.find(fit->second);
  QSA_ASSERT(cur != ring_.end());
  auto hop_to = [&](Ring::const_iterator next) {
    if (net != nullptr) {
      stats.latency += net->latency(cur->second.peer, next->second.peer);
    }
    ++stats.hops;
    cur = next;
  };
  // Fault-aware hop: deliver the routing message (paying for drops and
  // retries), falling back to the numerically-closest node as the alternate
  // route when the primary stays unreachable. Returns false when the hop —
  // and with it the whole lookup — failed.
  auto try_hop = [&](Ring::const_iterator next) {
    if (deliver_hop(cur->second.peer, next->second.peer, stats, net)) {
      hop_to(next);
      return true;
    }
    const auto alternate = node_nearest(key);
    if (alternate == next || alternate == cur) return false;
    note_reroute();
    if (!deliver_hop(cur->second.peer, alternate->second.peer, stats, net)) {
      return false;
    }
    hop_to(alternate);
    return true;
  };

  const int max_hops = kDigits + 8;
  while (stats.hops <= max_hops) {
    // Are we ourselves responsible? True iff we beat both ring neighbors
    // (the owner's key always lies between the midpoints to its neighbors).
    if (ring_.size() == 1) {
      stats.owner = cur->second.peer;
      return stats;
    }
    {
      auto nxt = std::next(cur) == ring_.end() ? ring_.begin() : std::next(cur);
      auto prv = cur == ring_.begin() ? std::prev(ring_.end()) : std::prev(cur);
      const std::uint64_t dc = circular_dist(cur->first, key);
      const std::uint64_t dn = circular_dist(nxt->first, key);
      const std::uint64_t dp = circular_dist(prv->first, key);
      const bool beats_next = dc < dn || (dc == dn && cur->first < nxt->first);
      const bool beats_prev = dc < dp || (dc == dp && cur->first < prv->first);
      if (beats_next && beats_prev) {
        stats.owner = cur->second.peer;
        return stats;
      }
    }
    // Leaf-set check: when the key lies within the leaf arc (and the arc
    // spans less than half the circle, so circular distances cannot sneak
    // around the far side), the closest of {us, leaves} is the global owner.
    const auto leaves = leaf_set(cur);
    std::uint64_t best_id = cur->first;
    std::uint64_t best_dist = circular_dist(cur->first, key);
    for (const std::uint64_t leaf : leaves.ids) {
      const std::uint64_t d = circular_dist(leaf, key);
      if (d < best_dist || (d == best_dist && leaf < best_id)) {
        best_dist = d;
        best_id = leaf;
      }
    }
    bool in_leaf_range = leaves.whole_ring;
    if (!in_leaf_range) {
      const std::uint64_t span = leaves.rightmost - leaves.leftmost;
      in_leaf_range =
          span < (1ull << 63) && (key - leaves.leftmost) <= span;
    }
    if (in_leaf_range) {
      if (best_id == cur->first) {
        stats.owner = cur->second.peer;
        return stats;
      }
      const auto next = ring_.find(best_id);
      QSA_ASSERT(next != ring_.end());
      // Final hop to the arc-wide owner: it is the only correct
      // destination, so try_hop's alternate (the same node) cannot help
      // and the retry budget is all there is.
      if (!try_hop(next)) return stats;  // owner stays kNoPeer
      stats.owner = cur->second.peer;
      return stats;
    }

    // Prefix routing.
    const int l = shared_digits(cur->first, key);
    Ring::const_iterator next = ring_.end();
    if (cur->second.routing_valid && l < kDigits) {
      const std::uint64_t entry =
          cur->second.routing[static_cast<std::size_t>(l)]
                             [static_cast<std::size_t>(digit(key, l))];
      if (entry != kNoEntry) {
        const auto eit = ring_.find(entry);
        if (eit != ring_.end()) next = eit;  // stale entries are skipped
      }
    }
    if (next == ring_.end()) {
      // Rare case (Pastry's union rule): the best node anywhere in our
      // state — leaf set or any routing-table entry — with an
      // equal-or-longer shared prefix that is strictly closer to the key.
      const std::uint64_t cur_dist = circular_dist(cur->first, key);
      std::uint64_t best_id = 0;
      std::uint64_t best_dist = cur_dist;
      auto consider = [&](std::uint64_t candidate) {
        if (candidate == kNoEntry) return;
        if (shared_digits(candidate, key) < l) return;
        const std::uint64_t d = circular_dist(candidate, key);
        if (d < best_dist && ring_.contains(candidate)) {
          best_dist = d;
          best_id = candidate;
        }
      };
      for (const std::uint64_t leaf : leaves.ids) consider(leaf);
      if (cur->second.routing_valid) {
        for (const auto& row : cur->second.routing) {
          for (const std::uint64_t entry : row) consider(entry);
        }
      }
      if (best_dist < cur_dist) next = ring_.find(best_id);
    }
    if (next == ring_.end()) {
      // Routing state too stale: a real node would fall back to expanding
      // its leaf set; we charge one hop and deliver to the oracle owner.
      const auto owner = node_nearest(key);
      if (!try_hop(owner)) return stats;  // owner stays kNoPeer
      stats.owner = cur->second.peer;
      return stats;
    }
    if (!try_hop(next)) return stats;  // owner stays kNoPeer
  }
  const auto owner = node_nearest(key);
  stats.owner = owner->second.peer;
  return stats;
}

void PastryOverlay::replicate_insert(Ring::iterator owner_it, Key key,
                                     std::uint64_t value) {
  // PAST-style placement: the owner plus the id-closest neighbors on
  // alternating sides, so ownership shifts in either direction after a
  // failure still land on a replica.
  const int copies = std::min<int>(replicas_, static_cast<int>(ring_.size()));
  auto fwd = owner_it;
  auto bwd = owner_it;
  owner_it->second.store[key].insert(value);
  for (int i = 1; i < copies; ++i) {
    if (i % 2 == 1) {
      fwd = std::next(fwd) == ring_.end() ? ring_.begin() : std::next(fwd);
      fwd->second.store[key].insert(value);
    } else {
      bwd = bwd == ring_.begin() ? std::prev(ring_.end()) : std::prev(bwd);
      bwd->second.store[key].insert(value);
    }
  }
}

void PastryOverlay::insert(Key key, std::uint64_t value) {
  QSA_EXPECTS(!ring_.empty());
  replicate_insert(node_nearest(key), key, value);
}

void PastryOverlay::erase(Key key, std::uint64_t value) {
  if (ring_.empty()) return;
  // Symmetric wider-than-insert window, as in the other substrates: replica
  // placement drifts under churn; leftovers beyond it are unreadable anyway.
  const int half =
      std::min<int>(replicas_ / 2 + 2, static_cast<int>(ring_.size()) / 2);
  auto it = node_nearest(key);
  for (int i = 0; i < half; ++i) {
    it = it == ring_.begin() ? std::prev(ring_.end()) : std::prev(it);
  }
  const int window = std::min<int>(2 * half + 1, static_cast<int>(ring_.size()));
  for (int i = 0; i < window; ++i) {
    if (auto sit = it->second.store.find(key); sit != it->second.store.end()) {
      sit->second.erase(value);
      if (sit->second.empty()) it->second.store.erase(sit);
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
}

std::vector<std::uint64_t> PastryOverlay::get(Key key) const {
  if (ring_.empty()) return {};
  const auto it = node_nearest(key);
  const auto sit = it->second.store.find(key);
  if (sit == it->second.store.end()) return {};
  return {sit->second.begin(), sit->second.end()};
}

void PastryOverlay::stabilize_round(double fraction) {
  if (ring_.empty()) return;
  QSA_EXPECTS(fraction > 0);
  const auto count = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(ring_.size()))));
  auto it = ring_.lower_bound(stabilize_cursor_);
  if (it == ring_.end()) it = ring_.begin();
  for (std::size_t i = 0; i < count && i < ring_.size(); ++i) {
    compute_routing(it->first, it->second);
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  stabilize_cursor_ = it == ring_.end() ? 0 : it->first;
}

void PastryOverlay::stabilize_all() {
  for (auto& [id, node] : ring_) compute_routing(id, node);
}

net::PeerId PastryOverlay::owner_of(Key key) const {
  QSA_EXPECTS(!ring_.empty());
  return node_nearest(key)->second.peer;
}

}  // namespace qsa::overlay
