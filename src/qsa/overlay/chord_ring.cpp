#include "qsa/overlay/chord_ring.hpp"

#include <algorithm>
#include <cmath>

#include "qsa/util/expects.hpp"
#include "qsa/util/thread_pool.hpp"

namespace qsa::overlay {

ChordRing::ChordRing(std::uint64_t seed, int replicas)
    : seed_(seed), replicas_(replicas) {
  QSA_EXPECTS(replicas >= 1);
}

ChordRing::Ring::const_iterator ChordRing::successor(ChordKey key) const {
  QSA_EXPECTS(!ring_.empty());
  auto it = ring_.lower_bound(key);
  return it == ring_.end() ? ring_.begin() : it;
}

ChordRing::Ring::iterator ChordRing::successor(ChordKey key) {
  QSA_EXPECTS(!ring_.empty());
  auto it = ring_.lower_bound(key);
  return it == ring_.end() ? ring_.begin() : it;
}

bool ChordRing::contains(net::PeerId peer) const {
  return key_of_peer_.contains(peer);
}

void ChordRing::compute_fingers(ChordKey at, Node& node) const {
  for (int i = 0; i < kKeyBits; ++i) {
    const ChordKey target = at + (ChordKey{1} << i);  // wraps mod 2^64
    node.fingers[static_cast<std::size_t>(i)] = successor(target)->first;
  }
}

void ChordRing::compute_fingers_sorted(const std::vector<ChordKey>& keys,
                                       ChordKey at, Node& node) {
  QSA_EXPECTS(!keys.empty());
  for (int i = 0; i < kKeyBits; ++i) {
    const ChordKey target = at + (ChordKey{1} << i);  // wraps mod 2^64
    const auto it = std::lower_bound(keys.begin(), keys.end(), target);
    // Same wrap rule as successor(): past the end means the first node.
    node.fingers[static_cast<std::size_t>(i)] =
        it == keys.end() ? keys.front() : *it;
  }
}

void ChordRing::snapshot_keys(std::vector<ChordKey>& out) const {
  out.clear();
  out.reserve(ring_.size());
  for (const auto& [key, node] : ring_) out.push_back(key);  // sorted
}

void ChordRing::join_impl(net::PeerId peer, bool deferred) {
  QSA_EXPECTS(!contains(peer));
  const ChordKey key = node_key(seed_, peer);
  QSA_EXPECTS(!ring_.contains(key));  // 64-bit collisions: astronomically rare
  Node node;
  node.peer = peer;
  // Self-pointing fingers mean "unset": routing skips them and falls back
  // to the successor walk. join() overwrites them below; join_deferred()
  // leaves them for stabilize_all().
  node.fingers.fill(key);
  if (!ring_.empty()) {
    // The new node takes over the key range (predecessor, key] from its
    // successor.
    auto succ = successor(key);
    auto pred = succ == ring_.begin() ? std::prev(ring_.end()) : std::prev(succ);
    const ChordKey pred_key = pred->first;
    for (auto it = succ->second.store.begin();
         it != succ->second.store.end();) {
      if (in_interval_oc(pred_key, key, it->first)) {
        node.store.emplace(it->first, std::move(it->second));
        it = succ->second.store.erase(it);
      } else {
        ++it;
      }
    }
  }
  auto [it, inserted] = ring_.emplace(key, std::move(node));
  QSA_ASSERT(inserted);
  if (!deferred) compute_fingers(key, it->second);
  key_of_peer_.emplace(peer, key);
}

void ChordRing::join(net::PeerId peer) { join_impl(peer, /*deferred=*/false); }

void ChordRing::join_deferred(net::PeerId peer) {
  join_impl(peer, /*deferred=*/true);
}

void ChordRing::leave(net::PeerId peer) {
  auto pit = key_of_peer_.find(peer);
  if (pit == key_of_peer_.end()) return;
  const ChordKey key = pit->second;
  auto it = ring_.find(key);
  QSA_ASSERT(it != ring_.end());
  if (ring_.size() > 1) {
    // Graceful handoff of the store to the successor.
    auto next = std::next(it) == ring_.end() ? ring_.begin() : std::next(it);
    for (auto& [k, values] : it->second.store) {
      next->second.store[k].insert(values.begin(), values.end());
    }
  }
  ring_.erase(it);
  key_of_peer_.erase(pit);
}

void ChordRing::fail(net::PeerId peer) {
  auto pit = key_of_peer_.find(peer);
  if (pit == key_of_peer_.end()) return;
  ring_.erase(pit->second);  // store vanishes; replicas keep the data alive
  key_of_peer_.erase(pit);
}

LookupStats ChordRing::route(ChordKey key, net::PeerId from,
                             const net::NetworkModel* net) const {
  QSA_EXPECTS(!ring_.empty());
  const auto fit = key_of_peer_.find(from);
  QSA_EXPECTS(fit != key_of_peer_.end());

  LookupStats stats;
  auto cur = ring_.find(fit->second);
  QSA_ASSERT(cur != ring_.end());

  // Safety bound: greedy finger routing plus successor-walk fallback always
  // terminates, but a bound keeps a corrupted ring from hanging a run.
  const int max_hops = kKeyBits + static_cast<int>(ring_.size()) + 2;
  while (stats.hops <= max_hops) {
    auto next_on_ring =
        std::next(cur) == ring_.end() ? ring_.begin() : std::next(cur);
    if (cur->first == key || ring_.size() == 1) {
      stats.owner = cur->second.peer;
      return stats;
    }
    // Are we ourselves responsible? (key in (predecessor, us])
    auto pred = cur == ring_.begin() ? std::prev(ring_.end()) : std::prev(cur);
    if (in_interval_oc(pred->first, cur->first, key)) {
      stats.owner = cur->second.peer;
      return stats;
    }
    if (in_interval_oc(cur->first, next_on_ring->first, key)) {
      // The key lives on our immediate successor: final hop. The successor
      // is the only correct destination, so a dropped message here has no
      // alternate route — the retries inside deliver_hop are the budget.
      if (!deliver_hop(cur->second.peer, next_on_ring->second.peer, stats,
                       net)) {
        return stats;  // owner stays kNoPeer: the lookup failed
      }
      if (net != nullptr) {
        stats.latency +=
            net->latency(cur->second.peer, next_on_ring->second.peer);
      }
      ++stats.hops;
      stats.owner = next_on_ring->second.peer;
      return stats;
    }
    // Closest preceding live finger; the runner-up (next qualifying finger,
    // else the successor walk) is kept as the alternate route for when the
    // hop message to the primary is lost.
    Ring::const_iterator next = ring_.end();
    Ring::const_iterator alternate = ring_.end();
    for (int i = kKeyBits - 1; i >= 0; --i) {
      const ChordKey f = cur->second.fingers[static_cast<std::size_t>(i)];
      if (f == cur->first) continue;  // unset (deferred/fresh) finger
      if (!in_interval_oo(cur->first, key, f)) continue;
      auto fnode = ring_.find(f);
      if (fnode == ring_.end()) continue;  // stale finger: node departed
      if (next == ring_.end()) {
        next = fnode;
        if (!faults_active()) break;  // no alternate needed
        continue;
      }
      if (fnode != next) {
        alternate = fnode;
        break;
      }
    }
    if (next == ring_.end()) {
      next = next_on_ring;  // successor-walk fallback
    } else if (alternate == ring_.end() && next != next_on_ring) {
      alternate = next_on_ring;
    }
    if (!deliver_hop(cur->second.peer, next->second.peer, stats, net)) {
      if (alternate == ring_.end()) return stats;  // lookup failed
      note_reroute();
      if (!deliver_hop(cur->second.peer, alternate->second.peer, stats, net)) {
        return stats;  // alternate unreachable too: lookup failed
      }
      next = alternate;
    }
    if (net != nullptr) {
      stats.latency += net->latency(cur->second.peer, next->second.peer);
    }
    ++stats.hops;
    cur = next;
  }
  // Unreachable with a consistent ring; report the oracle owner so callers
  // still make progress.
  stats.owner = successor(key)->second.peer;
  return stats;
}

void ChordRing::replicate_insert(Ring::iterator owner_it, ChordKey key,
                                 std::uint64_t value) {
  auto it = owner_it;
  const int copies = std::min<int>(replicas_, static_cast<int>(ring_.size()));
  for (int i = 0; i < copies; ++i) {
    it->second.store[key].insert(value);
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
}

void ChordRing::insert(ChordKey key, std::uint64_t value) {
  QSA_EXPECTS(!ring_.empty());
  replicate_insert(successor(key), key, value);
}

void ChordRing::erase(ChordKey key, std::uint64_t value) {
  if (ring_.empty()) return;
  // Erase from the owner and a few extra successors: replica placement may
  // have drifted under churn. Leftover copies beyond this window are
  // harmless (get() reads only the owner).
  auto it = successor(key);
  const int window =
      std::min<int>(replicas_ + 2, static_cast<int>(ring_.size()));
  for (int i = 0; i < window; ++i) {
    auto sit = it->second.store.find(key);
    if (sit != it->second.store.end()) {
      sit->second.erase(value);
      if (sit->second.empty()) it->second.store.erase(sit);
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
}

std::vector<std::uint64_t> ChordRing::get(ChordKey key) const {
  if (ring_.empty()) return {};
  const auto it = successor(key);
  const auto sit = it->second.store.find(key);
  if (sit == it->second.store.end()) return {};
  return {sit->second.begin(), sit->second.end()};
}

void ChordRing::stabilize_round(double fraction) {
  if (ring_.empty()) return;
  QSA_EXPECTS(fraction > 0);
  const auto count = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(ring_.size()))));
  snapshot_keys(stabilize_scratch_);
  auto it = ring_.lower_bound(stabilize_cursor_);
  if (it == ring_.end()) it = ring_.begin();
  for (std::size_t i = 0; i < count && i < ring_.size(); ++i) {
    compute_fingers_sorted(stabilize_scratch_, it->first, it->second);
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  stabilize_cursor_ = it == ring_.end() ? 0 : it->first;
}

void ChordRing::stabilize_all() {
  if (ring_.empty()) return;
  snapshot_keys(stabilize_scratch_);
  for (auto& [key, node] : ring_) {
    compute_fingers_sorted(stabilize_scratch_, key, node);
  }
}

void ChordRing::stabilize_all_on(util::ThreadPool* pool) {
  if (pool == nullptr || ring_.size() < 2048) {
    // Below ~2k nodes the chunk bookkeeping costs more than it saves.
    stabilize_all();
    return;
  }
  snapshot_keys(stabilize_scratch_);
  std::vector<Node*> nodes;
  nodes.reserve(ring_.size());
  for (auto& [key, node] : ring_) nodes.push_back(&node);
  // Disjoint contiguous chunks: each worker writes only its own nodes'
  // finger arrays from the shared read-only snapshot, so the result is the
  // serial walk's, bit for bit, regardless of scheduling.
  const std::size_t chunk = 512;
  const std::size_t chunks = (nodes.size() + chunk - 1) / chunk;
  pool->parallel_for(chunks, [this, &nodes, chunk](std::size_t c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, nodes.size());
    for (std::size_t i = lo; i < hi; ++i) {
      compute_fingers_sorted(stabilize_scratch_,
                             stabilize_scratch_[i], *nodes[i]);
    }
  });
}

net::PeerId ChordRing::owner_of(ChordKey key) const {
  QSA_EXPECTS(!ring_.empty());
  return successor(key)->second.peer;
}

}  // namespace qsa::overlay
