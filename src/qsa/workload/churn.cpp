#include "qsa/workload/churn.hpp"

#include <utility>

#include "qsa/util/expects.hpp"

namespace qsa::workload {

ChurnProcess::ChurnProcess(sim::Simulator& simulator,
                           const net::PeerTable& peers, ChurnParams params,
                           DepartFn on_depart, ArriveFn on_arrive)
    : simulator_(simulator),
      peers_(peers),
      params_(params),
      on_depart_(std::move(on_depart)),
      on_arrive_(std::move(on_arrive)),
      rng_(util::derive_seed(params.seed, "churn", 0)) {
  QSA_EXPECTS(params_.events_per_min >= 0);
  QSA_EXPECTS(params_.victim_sample >= 1);
  QSA_EXPECTS(on_depart_ != nullptr);
  QSA_EXPECTS(on_arrive_ != nullptr);
}

void ChurnProcess::start(sim::SimTime until) {
  if (params_.events_per_min <= 0) return;
  schedule_next(until);
}

void ChurnProcess::schedule_next(sim::SimTime until) {
  const double gap_min = rng_.exponential(1.0 / params_.events_per_min);
  const sim::SimTime at = simulator_.now() + sim::SimTime::minutes(gap_min);
  if (at > until) return;
  simulator_.schedule_at(at, [this, until] {
    fire();
    schedule_next(until);
  });
}

net::PeerId ChurnProcess::pick_victim() {
  const auto& alive = peers_.alive_ids();
  if (alive.empty()) return net::kNoPeer;
  net::PeerId victim = alive[rng_.index(alive.size())];
  for (int i = 1; i < params_.victim_sample; ++i) {
    const net::PeerId other = alive[rng_.index(alive.size())];
    // Youngest-of-k: the later the join, the shorter the uptime.
    if (peers_.peer(other).join_time() > peers_.peer(victim).join_time()) {
      victim = other;
    }
  }
  return victim;
}

void ChurnProcess::fire() {
  if (next_is_departure_) {
    if (const net::PeerId victim = pick_victim(); victim != net::kNoPeer) {
      ++departures_;
      on_depart_(victim);
    }
  } else {
    ++arrivals_;
    on_arrive_();
  }
  next_is_departure_ = !next_is_departure_;
}

}  // namespace qsa::workload
