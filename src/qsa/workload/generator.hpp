// Poisson request generation (Section 4.1): during each minute a configured
// number of user requests arrives on randomly chosen peers; each request is
// one of the 10 applications with a uniform QoS level and a session duration
// uniform in [1, 60] minutes.
#pragma once

#include <functional>

#include "qsa/core/aggregate.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/sim/simulator.hpp"
#include "qsa/util/rng.hpp"
#include "qsa/workload/apps.hpp"

namespace qsa::workload {

struct RequestParams {
  std::uint64_t seed = 1;
  double rate_per_min = 100;      ///< mean request arrival rate
  double min_session_min = 1;     ///< paper: 1
  double max_session_min = 60;    ///< paper: 60
};

class RequestGenerator {
 public:
  /// `sink` receives each materialized request at its arrival time.
  using Sink = std::function<void(const core::ServiceRequest&,
                                  const Application&, QosLevel)>;

  RequestGenerator(sim::Simulator& simulator, const ApplicationCatalog& apps,
                   const registry::QosUniverse& universe,
                   const net::PeerTable& peers, RequestParams params,
                   Sink sink);

  /// Schedules Poisson arrivals from now until `until` (self-perpetuating;
  /// arrivals beyond `until` are not scheduled).
  void start(sim::SimTime until);

  [[nodiscard]] std::uint64_t generated() const noexcept { return count_; }

 private:
  void schedule_next(sim::SimTime until);
  void fire();

  sim::Simulator& simulator_;
  const ApplicationCatalog& apps_;
  const registry::QosUniverse& universe_;
  const net::PeerTable& peers_;
  RequestParams params_;
  Sink sink_;
  util::Rng rng_;
  std::uint64_t count_ = 0;
};

}  // namespace qsa::workload
