// Topological variation (Section 4): a Poisson process of peer departures
// and arrivals at a configured total rate (peers/min), alternating so the
// population stays near its initial size.
//
// Departure victims are chosen youngest-of-k: sample k alive peers uniformly
// and evict the one with the shortest uptime. This reproduces the
// heavy-tailed session-length behaviour of measured P2P systems (Saroiu et
// al., the study the paper cites): a peer that has already stayed long is
// less likely to leave soon, which is precisely the property the QSA uptime
// heuristic banks on — while keeping the churn *rate* an exact, independent
// knob as in the paper's Figure 7 sweep.
#pragma once

#include <functional>

#include "qsa/net/peer.hpp"
#include "qsa/sim/simulator.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::workload {

struct ChurnParams {
  std::uint64_t seed = 1;
  double events_per_min = 0;  ///< the paper's "topological variation rate"
  int victim_sample = 8;      ///< k for youngest-of-k departure selection
};

class ChurnProcess {
 public:
  /// `on_depart` must remove the peer from every subsystem (table, ring,
  /// placements, sessions); `on_arrive` must create and wire a fresh peer.
  using DepartFn = std::function<void(net::PeerId)>;
  using ArriveFn = std::function<void()>;

  ChurnProcess(sim::Simulator& simulator, const net::PeerTable& peers,
               ChurnParams params, DepartFn on_depart, ArriveFn on_arrive);

  void start(sim::SimTime until);

  [[nodiscard]] std::uint64_t departures() const noexcept {
    return departures_;
  }
  [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }

 private:
  void schedule_next(sim::SimTime until);
  void fire();
  [[nodiscard]] net::PeerId pick_victim();

  sim::Simulator& simulator_;
  const net::PeerTable& peers_;
  ChurnParams params_;
  DepartFn on_depart_;
  ArriveFn on_arrive_;
  util::Rng rng_;
  bool next_is_departure_ = true;
  std::uint64_t departures_ = 0;
  std::uint64_t arrivals_ = 0;
};

}  // namespace qsa::workload
