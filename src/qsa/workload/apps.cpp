#include "qsa/workload/apps.hpp"

#include <string>

#include "qsa/util/expects.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::workload {

std::string_view to_string(QosLevel level) {
  switch (level) {
    case QosLevel::kLow:
      return "low";
    case QosLevel::kAverage:
      return "average";
    case QosLevel::kHigh:
      return "high";
  }
  return "?";
}

qos::QosVector requirement_for(QosLevel level,
                               const registry::QosUniverse& u) {
  double floor = 10;
  switch (level) {
    case QosLevel::kLow:
      floor = 10;
      break;
    case QosLevel::kAverage:
      floor = 40;
      break;
    case QosLevel::kHigh:
      floor = 70;
      break;
  }
  qos::QosVector req;
  req.set(u.level, qos::QosValue::range(floor, 100.0));
  return req;
}

ApplicationCatalog::ApplicationCatalog(registry::ServiceCatalog& services,
                                       const registry::QosUniverse& universe,
                                       const qos::QosTranslator& translator,
                                       const AppCatalogParams& params) {
  QSA_EXPECTS(params.applications >= 1);
  QSA_EXPECTS(params.min_path_len >= 1);
  QSA_EXPECTS(params.max_path_len >= params.min_path_len);

  util::Rng rng(util::derive_seed(params.seed, "apps", 0));
  apps_.reserve(static_cast<std::size_t>(params.applications));
  for (int a = 0; a < params.applications; ++a) {
    Application app;
    app.id = static_cast<std::uint32_t>(a);
    const int len = static_cast<int>(
        rng.uniform_int(params.min_path_len, params.max_path_len));
    for (int p = 0; p < len; ++p) {
      const registry::ServiceId sid = services.add_service(
          "app" + std::to_string(a) + ".svc" + std::to_string(p));
      registry::CatalogParams cp = params.catalog;
      cp.seed = util::derive_seed(params.seed, "instances", sid);
      generate_instances(services, sid, cp, universe, translator,
                         /*is_source=*/p == 0);
      app.path.push_back(sid);
    }
    apps_.push_back(std::move(app));
  }
}

const Application& ApplicationCatalog::app(std::uint32_t id) const {
  QSA_EXPECTS(id < apps_.size());
  return apps_[id];
}

}  // namespace qsa::workload
