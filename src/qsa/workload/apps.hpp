// The application universe of Section 4.1: 10 distributed applications,
// each an abstract service path of 2-5 services (source .. sink), exercised
// with session durations of 1-60 minutes and a 3-level end-to-end QoS
// requirement (high / average / low).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qsa/qos/translator.hpp"
#include "qsa/registry/catalog.hpp"

namespace qsa::workload {

struct Application {
  std::uint32_t id = 0;
  /// Abstract service path, source first, sink last.
  std::vector<registry::ServiceId> path;
};

/// The paper's three user QoS levels.
enum class QosLevel : std::uint8_t { kLow, kAverage, kHigh };

[[nodiscard]] std::string_view to_string(QosLevel level);

/// The end-to-end requirement vector for a level: the sink's output quality
/// must land inside [floor(level), 100].
[[nodiscard]] qos::QosVector requirement_for(QosLevel level,
                                             const registry::QosUniverse& u);

struct AppCatalogParams {
  std::uint64_t seed = 1;
  int applications = 10;   ///< paper: 10
  int min_path_len = 2;    ///< paper: 2
  int max_path_len = 5;    ///< paper: 5
  registry::CatalogParams catalog;  ///< instance-generation knobs
};

/// Builds the abstract applications together with their services and
/// service instances (source services get empty Qin).
class ApplicationCatalog {
 public:
  ApplicationCatalog(registry::ServiceCatalog& services,
                     const registry::QosUniverse& universe,
                     const qos::QosTranslator& translator,
                     const AppCatalogParams& params);

  [[nodiscard]] std::span<const Application> apps() const noexcept {
    return apps_;
  }
  [[nodiscard]] const Application& app(std::uint32_t id) const;

 private:
  std::vector<Application> apps_;
};

}  // namespace qsa::workload
