#include "qsa/workload/generator.hpp"

#include <utility>

#include "qsa/util/expects.hpp"

namespace qsa::workload {

RequestGenerator::RequestGenerator(sim::Simulator& simulator,
                                   const ApplicationCatalog& apps,
                                   const registry::QosUniverse& universe,
                                   const net::PeerTable& peers,
                                   RequestParams params, Sink sink)
    : simulator_(simulator),
      apps_(apps),
      universe_(universe),
      peers_(peers),
      params_(params),
      sink_(std::move(sink)),
      rng_(util::derive_seed(params.seed, "requests", 0)) {
  QSA_EXPECTS(params_.rate_per_min >= 0);
  QSA_EXPECTS(params_.min_session_min > 0);
  QSA_EXPECTS(params_.max_session_min >= params_.min_session_min);
  QSA_EXPECTS(sink_ != nullptr);
}

void RequestGenerator::start(sim::SimTime until) {
  if (params_.rate_per_min <= 0) return;
  schedule_next(until);
}

void RequestGenerator::schedule_next(sim::SimTime until) {
  const double gap_min = rng_.exponential(1.0 / params_.rate_per_min);
  const sim::SimTime at = simulator_.now() + sim::SimTime::minutes(gap_min);
  if (at > until) return;
  simulator_.schedule_at(at, [this, until] {
    fire();
    schedule_next(until);
  });
}

void RequestGenerator::fire() {
  if (peers_.alive_count() == 0) return;

  const auto& alive = peers_.alive_ids();
  const Application& app =
      apps_.apps()[rng_.index(apps_.apps().size())];
  const auto level = static_cast<QosLevel>(rng_.index(3));

  core::ServiceRequest req;
  req.requester = alive[rng_.index(alive.size())];
  req.abstract_path = app.path;
  req.requirement = requirement_for(level, universe_);
  req.session_duration = sim::SimTime::minutes(
      rng_.uniform(params_.min_session_min, params_.max_session_min));

  ++count_;
  sink_(req, app, level);
}

}  // namespace qsa::workload
