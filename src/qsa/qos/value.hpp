// Application-level QoS parameter values, per the paper's service model
// (Section 2.1). A parameter value is either
//   * a single value — a symbolic constant such as a data format ("MPEG"),
//     or an exact number; consistency requires equality; or
//   * a range value — e.g. a frame-rate interval [10, 30] fps; consistency
//     requires containment of the producer's output in the consumer's
//     acceptable input range (eq. 1).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace qsa::qos {

/// Interned id of a symbolic constant (data format, codec name, ...).
using Symbol = std::uint32_t;

class QosValue {
 public:
  enum class Kind : std::uint8_t { kSingle, kSymbol, kRange };

  /// Exact numeric value (e.g. resolution = 480).
  [[nodiscard]] static QosValue single(double v) noexcept {
    return QosValue(Kind::kSingle, v, v, 0);
  }
  /// Symbolic constant (e.g. format = MPEG).
  [[nodiscard]] static QosValue symbol(Symbol s) noexcept {
    return QosValue(Kind::kSymbol, 0, 0, s);
  }
  /// Closed interval [lo, hi]; requires lo <= hi.
  [[nodiscard]] static QosValue range(double lo, double hi) noexcept;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_range() const noexcept { return kind_ == Kind::kRange; }

  /// Numeric value; valid for kSingle and kRange (lo()/hi() of the interval;
  /// for kSingle both equal the value).
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  /// Symbol id; valid only for kSymbol.
  [[nodiscard]] Symbol sym() const noexcept { return sym_; }

  /// Midpoint of a range, or the single value. Used by translators to price
  /// a quality level.
  [[nodiscard]] double representative() const noexcept {
    return (lo_ + hi_) / 2.0;
  }

  /// The paper's per-dimension consistency test: does producer output value
  /// `out` satisfy consumer input requirement `in`?
  ///   in single/symbol: out must be an equal single/symbol;
  ///   in range:         out (single or range) must be contained in it.
  [[nodiscard]] static bool satisfies(const QosValue& out, const QosValue& in) noexcept;

  friend bool operator==(const QosValue& a, const QosValue& b) noexcept {
    if (a.kind_ != b.kind_) return false;
    if (a.kind_ == Kind::kSymbol) return a.sym_ == b.sym_;
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  /// Debug rendering, e.g. "42", "sym:3", "[10,30]".
  [[nodiscard]] std::string to_string() const;

 private:
  QosValue(Kind k, double lo, double hi, Symbol s) noexcept
      : kind_(k), sym_(s), lo_(lo), hi_(hi) {}

  Kind kind_ = Kind::kSingle;
  Symbol sym_ = 0;
  double lo_ = 0;
  double hi_ = 0;
};

std::ostream& operator<<(std::ostream& os, const QosValue& v);

}  // namespace qsa::qos
