// QoS vectors: Qin = [q1,...,qn] / Qout = [q1,...,qn] from Section 2.1.
// Dimensions are identified by interned parameter names ("format",
// "frame_rate", ...), kept sorted by id for O(dim) merges in the satisfy
// check.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "qsa/qos/value.hpp"
#include "qsa/util/small_vec.hpp"

namespace qsa::qos {

/// Interned QoS parameter name id (see qsa::util::Interner).
using ParamId = std::uint32_t;

/// Maximum number of QoS dimensions a vector can carry.
inline constexpr std::size_t kMaxQosDims = 8;

class QosVector {
 public:
  struct Dim {
    ParamId param = 0;
    QosValue value = QosValue::single(0);
  };

  QosVector() = default;

  /// Sets (or replaces) a dimension.
  void set(ParamId param, const QosValue& value);

  /// Value of a dimension, if present.
  [[nodiscard]] std::optional<QosValue> get(ParamId param) const;

  [[nodiscard]] std::size_t dim() const noexcept { return dims_.size(); }
  [[nodiscard]] bool empty() const noexcept { return dims_.empty(); }

  [[nodiscard]] const Dim* begin() const noexcept { return dims_.begin(); }
  [[nodiscard]] const Dim* end() const noexcept { return dims_.end(); }

  friend bool operator==(const QosVector& a, const QosVector& b);

  [[nodiscard]] std::string to_string() const;

 private:
  // Sorted by param id.
  util::SmallVec<Dim, kMaxQosDims> dims_;
};

std::ostream& operator<<(std::ostream& os, const QosVector& v);

}  // namespace qsa::qos
