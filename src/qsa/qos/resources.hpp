// End-system resource vectors R = [r1,...,rm] (Section 2.1): the resources a
// service instance consumes on its hosting peer (the paper's experiments use
// m = 2: CPU and memory units). The same type carries a peer's availability
// vector RA.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "qsa/util/small_vec.hpp"

namespace qsa::qos {

/// Maximum number of end-system resource kinds (m).
inline constexpr std::size_t kMaxResources = 4;

/// Index of a resource kind; the grid fixes the meaning (0 = CPU, 1 = memory
/// in the paper's setup) via ResourceSchema.
using ResourceKind = std::size_t;

class ResourceVector {
 public:
  ResourceVector() = default;
  ResourceVector(std::initializer_list<double> init) : v_(init) {}

  /// A zero vector with `m` kinds.
  [[nodiscard]] static ResourceVector zeros(std::size_t m) {
    return ResourceVector(util::SmallVec<double, kMaxResources>(m, 0.0));
  }

  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }

  [[nodiscard]] double operator[](std::size_t i) const { return v_[i]; }
  [[nodiscard]] double& operator[](std::size_t i) { return v_[i]; }

  /// Elementwise sum / difference; both operands must have equal size.
  ResourceVector& operator+=(const ResourceVector& o);
  ResourceVector& operator-=(const ResourceVector& o);
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    a += b;
    return a;
  }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
    a -= b;
    return a;
  }
  ResourceVector& operator*=(double k);
  friend ResourceVector operator*(ResourceVector a, double k) {
    a *= k;
    return a;
  }

  /// True iff every component of *this is <= the matching component of `o`
  /// (i.e. a requirement fits inside an availability).
  [[nodiscard]] bool fits_within(const ResourceVector& o) const;

  /// True iff every component is >= -eps (reservation-ledger invariant;
  /// the tolerance absorbs floating-point residue from interleaved
  /// reserve/release cycles).
  [[nodiscard]] bool nonnegative(double eps = 1e-9) const;

  /// Snaps components in [-eps, 0) to exactly 0 (used after releases so
  /// floating-point residue cannot accumulate into drift).
  void clamp_negative_zero(double eps = 1e-9);

  friend bool operator==(const ResourceVector& a, const ResourceVector& b) {
    return a.v_ == b.v_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit ResourceVector(util::SmallVec<double, kMaxResources> v) : v_(v) {}
  util::SmallVec<double, kMaxResources> v_;
};

std::ostream& operator<<(std::ostream& os, const ResourceVector& v);

/// Names and normalization maxima of the resource kinds in play, shared by
/// Definition 3.1 scalarization and the peer-selection metric.
struct ResourceSchema {
  util::SmallVec<std::string, kMaxResources> names;  ///< e.g. {"cpu", "mem"}
  ResourceVector maxima;                             ///< r_i^max per kind
  double max_bandwidth_kbps = 10'000;                ///< b^max

  [[nodiscard]] std::size_t kinds() const noexcept { return names.size(); }

  /// The paper's experimental schema: CPU + memory, 1000 units max each,
  /// 10 Mbps max bandwidth.
  [[nodiscard]] static ResourceSchema paper();
};

/// A resource tuple (R_B, b_{B,A}) — the cost attached to a composition
/// graph edge (Section 3.2).
struct ResourceTuple {
  ResourceVector r;
  double bandwidth_kbps = 0;
};

}  // namespace qsa::qos
