#include "qsa/qos/satisfy.hpp"

namespace qsa::qos {

std::optional<ParamId> first_violation(const QosVector& out,
                                       const QosVector& in) noexcept {
  // Both vectors are sorted by param id: a single merge pass suffices.
  const auto* o = out.begin();
  const auto* oe = out.end();
  for (const auto& req : in) {
    while (o != oe && o->param < req.param) ++o;
    if (o == oe || o->param != req.param ||
        !QosValue::satisfies(o->value, req.value)) {
      return req.param;
    }
  }
  return std::nullopt;
}

bool satisfies(const QosVector& out, const QosVector& in) noexcept {
  return !first_violation(out, in).has_value();
}

}  // namespace qsa::qos
