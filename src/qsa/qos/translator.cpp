#include "qsa/qos/translator.hpp"

#include "qsa/util/expects.hpp"

namespace qsa::qos {

AnalyticTranslator::AnalyticTranslator(ParamId level_param, Coefficients coeff)
    : level_param_(level_param), coeff_(coeff) {
  QSA_EXPECTS(coeff_.base.size() == coeff_.in_slope.size());
  QSA_EXPECTS(coeff_.base.size() == coeff_.out_slope.size());
  QSA_EXPECTS(coeff_.base.nonnegative());
  QSA_EXPECTS(coeff_.base_bw_kbps >= 0);
}

double AnalyticTranslator::level_of(const QosVector& q) const {
  if (auto v = q.get(level_param_)) return v->representative();
  return 0;
}

ResourceVector AnalyticTranslator::resources(const QosVector& qin,
                                             const QosVector& qout) const {
  const double lin = level_of(qin);
  const double lout = level_of(qout);
  ResourceVector r = coeff_.base;
  r += coeff_.in_slope * lin;
  r += coeff_.out_slope * lout;
  return r;
}

double AnalyticTranslator::bandwidth_kbps(const QosVector& qout) const {
  return coeff_.base_bw_kbps + coeff_.bw_slope_kbps * level_of(qout);
}

AnalyticTranslator::Coefficients AnalyticTranslator::paper_coefficients(
    double scale) {
  // Calibrated against the paper's Section 4.1 universe (peer capacity
  // 100..1000 units, link bottlenecks 56..10000 kbps, 10^4 peers, request
  // rates up to 1000/min):
  //   * a level-50 ("average") instance needs ~`scale` CPU/memory units, so
  //     end-system saturation — the effect Figure 5 sweeps — sets in at a
  //     few hundred requests/minute;
  //   * edge bandwidth stays in the 22..55 kbps range, below the smallest
  //     (56 kbps) bottleneck level: any uncontended link can carry any
  //     single flow, and bandwidth only fails under contention. This keeps
  //     the cost-blind baselines viable at low load, as in the paper.
  Coefficients c;
  c.base = ResourceVector{scale * 0.4, scale * 0.4};
  c.in_slope = ResourceVector{scale * 0.004, scale * 0.002};
  c.out_slope = ResourceVector{scale * 0.008, scale * 0.010};
  c.base_bw_kbps = 20.0;
  c.bw_slope_kbps = 0.35;
  return c;
}

}  // namespace qsa::qos
