// The paper's inter-component "satisfy" relation ⊑ (equation 1):
//
//   Qout_A ⊑ Qin_B  iff  for every dimension i of Qin_B there exists a
//   dimension j of Qout_A with
//     q^out_Aj = q^in_Bi          if q^in_Bi is a single value, and
//     q^out_Aj ⊆ q^in_Bi          if q^in_Bi is a range value.
//
// Dimensions are matched by parameter id. An input requirement with no
// matching output dimension is unsatisfied.
#pragma once

#include "qsa/qos/vector.hpp"

namespace qsa::qos {

/// True iff `out` (a producer's Qout) satisfies `in` (a consumer's Qin).
[[nodiscard]] bool satisfies(const QosVector& out, const QosVector& in) noexcept;

/// Diagnostic variant: returns the id of the first unsatisfied input
/// parameter, or std::nullopt when `out` satisfies `in`. Useful in error
/// messages and tests.
[[nodiscard]] std::optional<ParamId> first_violation(const QosVector& out,
                                                     const QosVector& in) noexcept;

}  // namespace qsa::qos
