#include "qsa/qos/tuple_compare.hpp"

#include <cmath>

#include "qsa/util/expects.hpp"

namespace qsa::qos {

TupleWeights::TupleWeights(util::SmallVec<double, kMaxResources> resource_weights,
                           double bandwidth_weight)
    : rw_(resource_weights), bw_(bandwidth_weight) {
  double sum = bw_;
  QSA_EXPECTS(bw_ >= 0);
  for (double w : rw_) {
    QSA_EXPECTS(w >= 0);
    sum += w;
  }
  QSA_EXPECTS(std::abs(sum - 1.0) < 1e-9);
}

TupleWeights TupleWeights::uniform(std::size_t m) {
  QSA_EXPECTS(m >= 1 && m <= kMaxResources);
  const double w = 1.0 / static_cast<double>(m + 1);
  util::SmallVec<double, kMaxResources> rw(m, w);
  // Assign the remainder to bandwidth so the sum is exactly 1.
  double sum = 0;
  for (double x : rw) sum += x;
  return TupleWeights(rw, 1.0 - sum);
}

double scalarize(const ResourceTuple& t, const TupleWeights& weights,
                 const ResourceSchema& schema) {
  QSA_EXPECTS(t.r.size() == schema.kinds());
  QSA_EXPECTS(weights.resource().size() == schema.kinds());
  double sigma = 0;
  for (std::size_t i = 0; i < schema.kinds(); ++i) {
    QSA_EXPECTS(schema.maxima[i] > 0);
    sigma += weights.resource()[i] * t.r[i] / schema.maxima[i];
  }
  QSA_EXPECTS(schema.max_bandwidth_kbps > 0);
  sigma += weights.bandwidth() * t.bandwidth_kbps / schema.max_bandwidth_kbps;
  return sigma;
}

double compare(const ResourceTuple& a, const ResourceTuple& b,
               const TupleWeights& weights, const ResourceSchema& schema) {
  return scalarize(a, weights, schema) - scalarize(b, weights, schema);
}

}  // namespace qsa::qos
