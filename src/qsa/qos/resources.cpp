#include "qsa/qos/resources.hpp"

#include <ostream>
#include <sstream>

#include "qsa/util/expects.hpp"

namespace qsa::qos {

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  QSA_EXPECTS(size() == o.size());
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] += o.v_[i];
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  QSA_EXPECTS(size() == o.size());
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] -= o.v_[i];
  return *this;
}

ResourceVector& ResourceVector::operator*=(double k) {
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] *= k;
  return *this;
}

bool ResourceVector::fits_within(const ResourceVector& o) const {
  QSA_EXPECTS(size() == o.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] > o.v_[i]) return false;
  }
  return true;
}

bool ResourceVector::nonnegative(double eps) const {
  for (double x : v_) {
    if (x < -eps) return false;
  }
  return true;
}

void ResourceVector::clamp_negative_zero(double eps) {
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] < 0 && v_[i] >= -eps) v_[i] = 0;
  }
}

std::string ResourceVector::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ResourceVector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  return os << ']';
}

ResourceSchema ResourceSchema::paper() {
  ResourceSchema s;
  s.names = {"cpu", "mem"};
  s.maxima = ResourceVector{1000.0, 1000.0};
  s.max_bandwidth_kbps = 10'000;  // 10 Mbps
  return s;
}

}  // namespace qsa::qos
