// QoS-to-resource translation (Section 3.1, assumption 2): maps a service
// instance's application-level QoS specification (Qin, Qout) to its
// end-system resource requirements R = f(Qin, Qout) and the network
// bandwidth its output edge needs. The paper cites analytical translation
// and offline profiling; we provide the analytical form with configurable
// coefficients (a profiling-based implementation would subclass
// QosTranslator the same way).
#pragma once

#include "qsa/qos/resources.hpp"
#include "qsa/qos/vector.hpp"

namespace qsa::qos {

class QosTranslator {
 public:
  virtual ~QosTranslator() = default;

  /// End-system resources needed to consume `qin` and produce `qout`.
  [[nodiscard]] virtual ResourceVector resources(const QosVector& qin,
                                                 const QosVector& qout) const = 0;

  /// Bandwidth (kbps) required on the edge carrying `qout` downstream.
  [[nodiscard]] virtual double bandwidth_kbps(const QosVector& qout) const = 0;
};

/// Linear analytic translator: each resource kind costs
///   base_i + in_slope_i * level(Qin) + out_slope_i * level(Qout)
/// and bandwidth costs base_bw + bw_slope * level(Qout), where level(Q) is
/// the representative value of the designated quality-level parameter
/// (0 when the vector lacks it). Higher quality => more resources, which is
/// what makes the QCS "shortest" objective meaningful.
class AnalyticTranslator final : public QosTranslator {
 public:
  struct Coefficients {
    ResourceVector base;       ///< per-kind constant cost
    ResourceVector in_slope;   ///< per-kind cost per input level unit
    ResourceVector out_slope;  ///< per-kind cost per output level unit
    double base_bw_kbps = 0;
    double bw_slope_kbps = 0;  ///< bandwidth per output level unit
  };

  AnalyticTranslator(ParamId level_param, Coefficients coeff);

  [[nodiscard]] ResourceVector resources(const QosVector& qin,
                                         const QosVector& qout) const override;
  [[nodiscard]] double bandwidth_kbps(const QosVector& qout) const override;

  /// Coefficients sized for the paper's 2-kind schema (CPU, memory) that put
  /// a median-quality instance around `scale` CPU units.
  [[nodiscard]] static Coefficients paper_coefficients(double scale = 45.0);

 private:
  [[nodiscard]] double level_of(const QosVector& q) const;

  ParamId level_param_;
  Coefficients coeff_;
};

}  // namespace qsa::qos
