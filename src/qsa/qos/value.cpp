#include "qsa/qos/value.hpp"

#include <ostream>
#include <sstream>

#include "qsa/util/expects.hpp"

namespace qsa::qos {

QosValue QosValue::range(double lo, double hi) noexcept {
  QSA_EXPECTS(lo <= hi);
  return QosValue(Kind::kRange, lo, hi, 0);
}

bool QosValue::satisfies(const QosValue& out, const QosValue& in) noexcept {
  switch (in.kind()) {
    case Kind::kSymbol:
      return out.kind() == Kind::kSymbol && out.sym() == in.sym();
    case Kind::kSingle:
      // Exact match; a range output cannot guarantee a single value.
      return out.kind() == Kind::kSingle && out.lo() == in.lo();
    case Kind::kRange:
      // Containment: the produced value(s) must fall inside the acceptance
      // window. Symbol outputs are incomparable with numeric ranges.
      if (out.kind() == Kind::kSymbol) return false;
      return in.lo() <= out.lo() && out.hi() <= in.hi();
  }
  return false;
}

std::string QosValue::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const QosValue& v) {
  switch (v.kind()) {
    case QosValue::Kind::kSingle:
      return os << v.lo();
    case QosValue::Kind::kSymbol:
      return os << "sym:" << v.sym();
    case QosValue::Kind::kRange:
      return os << '[' << v.lo() << ',' << v.hi() << ']';
  }
  return os;
}

}  // namespace qsa::qos
