#include "qsa/qos/vector.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace qsa::qos {

void QosVector::set(ParamId param, const QosValue& value) {
  auto it = std::find_if(dims_.begin(), dims_.end(),
                         [&](const Dim& d) { return d.param >= param; });
  if (it != dims_.end() && it->param == param) {
    it->value = value;
    return;
  }
  // Insert keeping sort order: push_back then rotate into position.
  const std::size_t pos = static_cast<std::size_t>(it - dims_.begin());
  dims_.push_back(Dim{param, value});
  std::rotate(dims_.begin() + pos, dims_.end() - 1, dims_.end());
}

std::optional<QosValue> QosVector::get(ParamId param) const {
  for (const Dim& d : dims_) {
    if (d.param == param) return d.value;
    if (d.param > param) break;
  }
  return std::nullopt;
}

bool operator==(const QosVector& a, const QosVector& b) {
  if (a.dim() != b.dim()) return false;
  return std::equal(a.begin(), a.end(), b.begin(),
                    [](const QosVector::Dim& x, const QosVector::Dim& y) {
                      return x.param == y.param && x.value == y.value;
                    });
}

std::string QosVector::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const QosVector& v) {
  os << '{';
  bool first = true;
  for (const auto& d : v) {
    if (!first) os << ", ";
    first = false;
    os << 'p' << d.param << '=' << d.value;
  }
  return os << '}';
}

}  // namespace qsa::qos
