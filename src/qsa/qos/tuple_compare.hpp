// Definition 3.1: comparison of resource tuples (R_B, b_{B,A}) used as edge
// costs by the QCS composition algorithm. Two tuples compare through the
// weighted, normalized scalar
//
//   sigma(R, b) = sum_i w_i * r_i / r_i^max  +  w_{m+1} * b / b^max
//
// with nonnegative weights summing to 1; (R,b) > (R',b') iff
// sigma(R,b) - sigma(R',b') > 0. Because Dijkstra needs an additive cost,
// path cost accumulates sigma per edge; minimizing the aggregate sigma is
// the paper's "minimum aggregated resource requirements".
#pragma once

#include "qsa/qos/resources.hpp"
#include "qsa/util/small_vec.hpp"

namespace qsa::qos {

/// Weights w_1..w_m for end-system resources plus w_{m+1} for bandwidth.
class TupleWeights {
 public:
  /// Validates: `resource_weights.size()` == schema kinds intended by the
  /// caller, all weights >= 0 and summing to 1 (within 1e-9).
  TupleWeights(util::SmallVec<double, kMaxResources> resource_weights,
               double bandwidth_weight);

  /// Uniform weights across m resources + bandwidth (the paper's experiments
  /// distribute importance weights uniformly).
  [[nodiscard]] static TupleWeights uniform(std::size_t m);

  [[nodiscard]] const util::SmallVec<double, kMaxResources>& resource() const noexcept {
    return rw_;
  }
  [[nodiscard]] double bandwidth() const noexcept { return bw_; }

 private:
  util::SmallVec<double, kMaxResources> rw_;
  double bw_;
};

/// sigma(R, b) under `weights` and `schema` normalization. Range [0, 1] for
/// in-schema tuples.
[[nodiscard]] double scalarize(const ResourceTuple& t, const TupleWeights& weights,
                               const ResourceSchema& schema);

/// Three-way comparison per Definition 3.1: negative if a < b, zero if
/// equivalent, positive if a > b.
[[nodiscard]] double compare(const ResourceTuple& a, const ResourceTuple& b,
                             const TupleWeights& weights,
                             const ResourceSchema& schema);

}  // namespace qsa::qos
