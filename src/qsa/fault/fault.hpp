// Deterministic fault injection for the messaging substrate.
//
// The paper's robustness argument (Section 4.2) needs a messaging layer that
// can actually fail: without it, "degradation under churn" measures only
// departures, never lost probes, notifications or lookup messages. FaultPlan
// supplies per-message loss and extra-delay verdicts derived purely from
// (seed, channel, unordered peer pair, sequence) — the same zero-storage
// hashing trick NetworkModel uses for pairwise bandwidth/latency — so a
// faulty run is bit-reproducible and costs nothing to store.
//
// Consumers (probe resolution, overlay routing, session recovery) call
// `attempt` per message send and react to a drop with retry + exponential
// backoff up to `max_retries`; the plan centralizes the retry/reroute
// accounting so the grid can export `fault.*` metrics and reconcile the
// observed drop rate against the configured one.
//
// A default-constructed FaultConfig is fully off; every consumer treats a
// null or disabled plan as the perfect-messaging fast path, so runs without
// fault knobs are byte-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <string_view>

#include "qsa/net/peer.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::obs {
class MetricsRegistry;
class Histogram;
}  // namespace qsa::obs

namespace qsa::fault {

/// The message-bearing channels that can lose traffic, each with its own
/// loss rate: selector probes, soft-state notifications, overlay routing
/// hops, and reservation round-trips (recovery).
enum class Channel : std::uint8_t { kProbe, kNotify, kLookup, kReservation };

inline constexpr std::size_t kChannels = 4;

[[nodiscard]] std::string_view to_string(Channel ch);

struct FaultConfig {
  double probe_loss = 0;        ///< selector probe / soft-state refresh loss
  double notify_loss = 0;       ///< resolution-protocol notification loss
  double lookup_loss = 0;       ///< per overlay routing hop
  double reservation_loss = 0;  ///< per reservation round-trip (recovery)

  /// Maximum extra one-way delay injected into a *delivered* message; the
  /// actual delay is hash-derived uniform in [0, max_extra_delay].
  sim::SimTime max_extra_delay = sim::SimTime::zero();

  /// Retry budget per message: a consumer resends a lost message up to this
  /// many times (with exponential backoff) before giving up.
  int max_retries = 2;

  /// First-retry backoff; doubles per further retry.
  sim::SimTime backoff_base = sim::SimTime::millis(50);

  [[nodiscard]] double loss(Channel ch) const noexcept;

  /// Sets every channel's loss rate at once (the `--fault-loss` knob).
  void set_all_loss(double p) noexcept;

  /// True when any loss or delay is configured; a disabled config keeps
  /// every consumer on its perfect-messaging fast path.
  [[nodiscard]] bool enabled() const noexcept {
    return probe_loss > 0 || notify_loss > 0 || lookup_loss > 0 ||
           reservation_loss > 0 || max_extra_delay > sim::SimTime::zero();
  }
};

/// Aggregate decision accounting, per channel; the grid exports these as
/// `fault.*` counters at the end of a run.
struct FaultStats {
  std::uint64_t attempts[kChannels] = {};  ///< messages put on the wire
  std::uint64_t dropped[kChannels] = {};   ///< messages that vanished
  std::uint64_t retries[kChannels] = {};   ///< resends after a drop
  std::uint64_t rerouted = 0;              ///< lookup hops re-sent elsewhere

  [[nodiscard]] std::uint64_t total_attempts() const noexcept;
  [[nodiscard]] std::uint64_t total_dropped() const noexcept;
};

/// One message's verdict.
struct Delivery {
  bool delivered = true;
  sim::SimTime extra_delay;  ///< additional latency when delivered
};

class FaultPlan {
 public:
  FaultPlan(std::uint64_t seed, FaultConfig config);

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }

  /// Attaches the backoff histogram (`fault.backoff_ms`); optional, null
  /// detaches. Only retry waits are observed, so an attached registry stays
  /// untouched while the plan is disabled.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Verdict for the next message on channel `ch` between `a` and `b`.
  /// Deterministic: the verdict depends only on (seed, channel, unordered
  /// pair, per-channel sequence number), never on wall clock or storage.
  /// Const because read-side consumers (overlay routing) are const; the
  /// sequence/stat state is mutable and single-threaded like the simulator.
  [[nodiscard]] Delivery attempt(Channel ch, net::PeerId a,
                                 net::PeerId b) const;

  /// Accounts retry number `retry` (1-based) on `ch` and returns its
  /// exponential backoff wait (base * 2^(retry-1)).
  [[nodiscard]] sim::SimTime backoff(Channel ch, int retry) const;

  /// Accounts one lookup-hop reroute through an alternate neighbor.
  void note_reroute() const noexcept { ++stats_.rerouted; }

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

 private:
  FaultConfig config_;
  std::uint64_t seed_;
  mutable std::uint64_t sequence_[kChannels] = {};
  mutable FaultStats stats_;
  obs::Histogram* backoff_hist_ = nullptr;
};

}  // namespace qsa::fault
