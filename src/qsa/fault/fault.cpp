#include "qsa/fault/fault.hpp"

#include "qsa/obs/registry.hpp"
#include "qsa/util/expects.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::fault {
namespace {

/// Unordered pair key, identical to NetworkModel's: the verdict for a
/// message must not depend on which endpoint is named first.
std::uint64_t pair_key(net::PeerId a, net::PeerId b) noexcept {
  const net::PeerId lo = a < b ? a : b;
  const net::PeerId hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// Uniform double in [0, 1) from a hash value (the Rng::uniform mapping).
double uniform01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view to_string(Channel ch) {
  switch (ch) {
    case Channel::kProbe:
      return "probe";
    case Channel::kNotify:
      return "notify";
    case Channel::kLookup:
      return "lookup";
    case Channel::kReservation:
      return "reservation";
  }
  return "?";
}

double FaultConfig::loss(Channel ch) const noexcept {
  switch (ch) {
    case Channel::kProbe:
      return probe_loss;
    case Channel::kNotify:
      return notify_loss;
    case Channel::kLookup:
      return lookup_loss;
    case Channel::kReservation:
      return reservation_loss;
  }
  return 0;
}

void FaultConfig::set_all_loss(double p) noexcept {
  probe_loss = notify_loss = lookup_loss = reservation_loss = p;
}

std::uint64_t FaultStats::total_attempts() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t a : attempts) total += a;
  return total;
}

std::uint64_t FaultStats::total_dropped() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t d : dropped) total += d;
  return total;
}

FaultPlan::FaultPlan(std::uint64_t seed, FaultConfig config)
    : config_(config), seed_(seed) {
  QSA_EXPECTS(config.probe_loss >= 0 && config.probe_loss <= 1);
  QSA_EXPECTS(config.notify_loss >= 0 && config.notify_loss <= 1);
  QSA_EXPECTS(config.lookup_loss >= 0 && config.lookup_loss <= 1);
  QSA_EXPECTS(config.reservation_loss >= 0 && config.reservation_loss <= 1);
  QSA_EXPECTS(config.max_extra_delay >= sim::SimTime::zero());
  QSA_EXPECTS(config.max_retries >= 0);
  QSA_EXPECTS(config.backoff_base >= sim::SimTime::zero());
}

void FaultPlan::set_metrics(obs::MetricsRegistry* metrics) {
  backoff_hist_ =
      metrics == nullptr ? nullptr : &metrics->histogram("fault.backoff_ms");
}

Delivery FaultPlan::attempt(Channel ch, net::PeerId a, net::PeerId b) const {
  const auto c = static_cast<std::size_t>(ch);
  const std::uint64_t seq = sequence_[c]++;
  ++stats_.attempts[c];

  // One hash per message; loss and delay read independent bit mixes of it.
  const std::uint64_t h = util::derive_seed(
      seed_, "fault", pair_key(a, b),
      util::hash_combine(static_cast<std::uint64_t>(ch) + 1, seq));

  Delivery d;
  d.delivered = uniform01(h) >= config_.loss(ch);
  if (!d.delivered) {
    ++stats_.dropped[c];
    return d;
  }
  if (config_.max_extra_delay > sim::SimTime::zero()) {
    d.extra_delay = sim::SimTime::millis(static_cast<std::int64_t>(
        uniform01(util::mix64(h ^ util::hash_str("fault-delay"))) *
        static_cast<double>(config_.max_extra_delay.as_millis() + 1)));
  }
  return d;
}

sim::SimTime FaultPlan::backoff(Channel ch, int retry) const {
  QSA_EXPECTS(retry >= 1);
  ++stats_.retries[static_cast<std::size_t>(ch)];
  // Cap the doubling so a pathological retry budget cannot overflow.
  const int shift = retry - 1 > 20 ? 20 : retry - 1;
  const auto wait =
      sim::SimTime::millis(config_.backoff_base.as_millis() << shift);
  if (backoff_hist_ != nullptr) {
    backoff_hist_->observe(static_cast<double>(wait.as_millis()));
  }
  return wait;
}

}  // namespace qsa::fault
