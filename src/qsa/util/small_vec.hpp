// A fixed-capacity inline vector for small hot-path value types (resource
// vectors, QoS dimensions). Elements live inside the object, so a
// ResourceVector copy is a couple of cache lines and never allocates —
// the composition/selection inner loops copy these heavily.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>

#include "qsa/util/expects.hpp"

namespace qsa::util {

template <typename T, std::size_t N>
class SmallVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr SmallVec() = default;

  constexpr SmallVec(std::initializer_list<T> init) {
    QSA_EXPECTS(init.size() <= N);
    for (const T& v : init) items_[size_++] = v;
  }

  constexpr SmallVec(std::size_t count, const T& value) {
    QSA_EXPECTS(count <= N);
    for (std::size_t i = 0; i < count; ++i) items_[i] = value;
    size_ = count;
  }

  static constexpr std::size_t capacity() noexcept { return N; }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr void push_back(const T& v) {
    QSA_EXPECTS(size_ < N);
    items_[size_++] = v;
  }

  constexpr void pop_back() {
    QSA_EXPECTS(size_ > 0);
    --size_;
  }

  constexpr void clear() noexcept { size_ = 0; }

  constexpr void resize(std::size_t n, const T& fill = T{}) {
    QSA_EXPECTS(n <= N);
    for (std::size_t i = size_; i < n; ++i) items_[i] = fill;
    size_ = n;
  }

  constexpr T& operator[](std::size_t i) {
    QSA_EXPECTS(i < size_);
    return items_[i];
  }
  constexpr const T& operator[](std::size_t i) const {
    QSA_EXPECTS(i < size_);
    return items_[i];
  }

  constexpr T& back() { return (*this)[size_ - 1]; }
  constexpr const T& back() const { return (*this)[size_ - 1]; }
  constexpr T& front() { return (*this)[0]; }
  constexpr const T& front() const { return (*this)[0]; }

  constexpr iterator begin() noexcept { return items_.data(); }
  constexpr iterator end() noexcept { return items_.data() + size_; }
  constexpr const_iterator begin() const noexcept { return items_.data(); }
  constexpr const_iterator end() const noexcept { return items_.data() + size_; }

  friend constexpr bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::array<T, N> items_{};
  std::size_t size_ = 0;
};

}  // namespace qsa::util
