// Bounded single-producer/single-consumer ring buffer — the cross-shard
// mailbox primitive for the sharded simulation runtime.
//
// Wait-free on both ends: the producer owns `tail_`, the consumer owns
// `head_`, and each side reads the other's index with acquire ordering so a
// popped element is fully visible to the consumer. "Single producer" means
// one producer *at a time*: ownership of an endpoint may migrate between
// threads (the shard runtime hands shards to whichever pool worker picks
// them up each epoch) as long as the handoff itself synchronizes, which the
// thread pool's task dispatch already does. Concurrent use of the same
// endpoint from two threads is a contract violation and aborts via the
// reentry guards below rather than corrupting the ring.
//
// A full ring makes try_push return false — callers must divert to an
// overflow path (the shard runtime keeps a producer-local spill vector)
// instead of blocking, because blocking a producer inside a barrier epoch
// would deadlock the rendezvous.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "qsa/util/expects.hpp"

namespace qsa::util {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (index masking beats modulo on
  /// the hot path). Requires capacity >= 1.
  explicit SpscRing(std::size_t capacity) {
    QSA_EXPECTS(capacity >= 1);
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Producer side. False when full (no change); the caller spills.
  [[nodiscard]] bool try_push(T value) {
    ReentryGuard guard(push_busy_);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == buf_.size()) {
      return false;
    }
    buf_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when empty.
  [[nodiscard]] bool try_pop(T& out) {
    ReentryGuard guard(pop_busy_);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    out = std::move(buf_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Element count as seen from the consumer side (exact when quiescent,
  /// a momentary lower/upper bound while the producer is mid-push).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Test hook: marks the producer endpoint as busy so the next try_push
  /// trips the single-producer contract check (deterministically, without
  /// having to stage a real race).
  void claim_producer_for_test() {
    QSA_EXPECTS(!push_busy_.exchange(true, std::memory_order_relaxed));
  }

 private:
  /// Aborts when two threads drive the same endpoint concurrently.
  class ReentryGuard {
   public:
    explicit ReentryGuard(std::atomic<bool>& flag) : flag_(flag) {
      QSA_EXPECTS(!flag_.exchange(true, std::memory_order_acquire));
    }
    ~ReentryGuard() { flag_.store(false, std::memory_order_release); }
    ReentryGuard(const ReentryGuard&) = delete;
    ReentryGuard& operator=(const ReentryGuard&) = delete;

   private:
    std::atomic<bool>& flag_;
  };

  std::vector<T> buf_;
  std::size_t mask_ = 0;
  // Producer and consumer indices on separate cache lines so the two ends
  // do not false-share.
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer-owned
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer-owned
  std::atomic<bool> push_busy_{false};
  std::atomic<bool> pop_busy_{false};
};

}  // namespace qsa::util
