// An open-addressing hash map for integral keys on simulation hot paths
// (per-event load ledgers, neighbor tables). Compared with unordered_map it
// stores entries in one flat array — a lookup is a mix, a mask and a short
// linear probe over contiguous memory, with no per-node allocation.
//
// Determinism: iteration visits the backing array in index order, which is a
// pure function of the insertion/erase history and the fixed multiplicative
// hash below (never std::hash) — identical across runs, platforms and
// standard libraries. Erase uses backward-shift deletion, so there are no
// tombstones and the load factor only counts live entries.
//
// Values must be default-constructible and move-assignable (slots hold
// always-constructed pairs; an erased slot is reset to V{} so owned
// resources release immediately).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "qsa/util/expects.hpp"

namespace qsa::util {

template <typename K, typename V>
class DenseMap {
  static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                "DenseMap keys must be integral ids");
  static_assert(std::is_default_constructible_v<V>,
                "DenseMap values must be default-constructible");

 public:
  using value_type = std::pair<K, V>;

  template <bool Const>
  class Iter {
   public:
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;
    using Map = std::conditional_t<Const, const DenseMap, DenseMap>;

    Iter() = default;
    reference operator*() const { return map_->slots_[idx_]; }
    pointer operator->() const { return &map_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      skip();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.idx_ != b.idx_;
    }

   private:
    friend class DenseMap;
    Iter(Map* map, std::size_t idx) : map_(map), idx_(idx) { skip(); }
    void skip() {
      while (idx_ < map_->used_.size() && map_->used_[idx_] == 0) ++idx_;
    }
    Map* map_ = nullptr;
    std::size_t idx_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  DenseMap() = default;
  DenseMap(DenseMap&&) noexcept = default;
  DenseMap& operator=(DenseMap&&) noexcept = default;
  DenseMap(const DenseMap&) = default;
  DenseMap& operator=(const DenseMap&) = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, used_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, used_.size()); }

  void clear() noexcept {
    for (std::size_t i = 0; i < used_.size(); ++i) {
      if (used_[i] != 0) slots_[i] = value_type{};
      used_[i] = 0;
    }
    size_ = 0;
  }

  /// Ensures capacity for `n` live entries without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 7 < n * 10) cap *= 2;  // keep load factor under 0.7
    if (cap > used_.size()) rehash(cap);
  }

  iterator find(K key) { return iterator(this, find_index(key)); }
  const_iterator find(K key) const {
    return const_iterator(this, find_index(key));
  }

  [[nodiscard]] std::size_t count(K key) const {
    return find_index(key) < used_.size() ? 1 : 0;
  }

  V& at(K key) {
    const std::size_t i = find_index(key);
    QSA_EXPECTS(i < used_.size());
    return slots_[i].second;
  }
  const V& at(K key) const {
    const std::size_t i = find_index(key);
    QSA_EXPECTS(i < used_.size());
    return slots_[i].second;
  }

  V& operator[](K key) { return slots_[emplace_index(key)].second; }

  /// Inserts (key, value) if absent; returns {iterator, inserted}.
  template <typename VV>
  std::pair<iterator, bool> emplace(K key, VV&& value) {
    const std::size_t before = size_;
    const std::size_t i = emplace_index(key);
    const bool inserted = size_ != before;
    if (inserted) slots_[i].second = std::forward<VV>(value);
    return {iterator(this, i), inserted};
  }

  /// Erases `key`; returns 1 when an entry was removed, 0 otherwise.
  std::size_t erase(K key) {
    std::size_t i = find_index(key);
    if (i >= used_.size()) return 0;
    const std::size_t mask = used_.size() - 1;
    slots_[i] = value_type{};
    used_[i] = 0;
    --size_;
    // Backward-shift deletion: walk the probe chain after the hole and pull
    // back every entry whose home position precedes (cyclically) the hole.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (used_[j] == 0) break;
      const std::size_t home = index_for(slots_[j].first, mask);
      if (((j - home) & mask) >= ((j - i) & mask)) {
        slots_[i] = std::move(slots_[j]);
        used_[i] = 1;
        slots_[j] = value_type{};
        used_[j] = 0;
        i = j;
      }
    }
    return 1;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  /// Fixed 64-bit mix (splitmix64 finalizer) — never std::hash, so slot
  /// layout (and with it iteration order) is identical everywhere.
  static std::uint64_t mix(K key) noexcept {
    auto x = static_cast<std::uint64_t>(key);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
  static std::size_t index_for(K key, std::size_t mask) noexcept {
    return static_cast<std::size_t>(mix(key)) & mask;
  }

  /// Index of `key`'s slot, or used_.size() when absent (== end()).
  std::size_t find_index(K key) const {
    if (used_.empty()) return 0;  // end() of an empty map
    const std::size_t mask = used_.size() - 1;
    std::size_t i = index_for(key, mask);
    while (used_[i] != 0) {
      if (slots_[i].first == key) return i;
      i = (i + 1) & mask;
    }
    return used_.size();
  }

  /// Slot of `key`, inserting a default-constructed value when absent.
  std::size_t emplace_index(K key) {
    if (used_.empty() || (size_ + 1) * 10 > used_.size() * 7) {
      rehash(used_.empty() ? kMinCapacity : used_.size() * 2);
    }
    const std::size_t mask = used_.size() - 1;
    std::size_t i = index_for(key, mask);
    while (used_[i] != 0) {
      if (slots_[i].first == key) return i;
      i = (i + 1) & mask;
    }
    slots_[i].first = key;
    slots_[i].second = V{};
    used_[i] = 1;
    ++size_;
    return i;
  }

  void rehash(std::size_t new_cap) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.clear();
    slots_.resize(new_cap);
    used_.assign(new_cap, 0);
    size_ = 0;
    for (std::size_t i = 0; i < old_used.size(); ++i) {
      if (old_used[i] == 0) continue;
      const std::size_t j = emplace_index(old_slots[i].first);
      slots_[j].second = std::move(old_slots[i].second);
    }
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
};

}  // namespace qsa::util
