#include "qsa/util/interner.hpp"

#include "qsa/util/expects.hpp"

namespace qsa::util {

Interner::Id Interner::intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const Id id = static_cast<Id>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Interner::Id Interner::find(std::string_view name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalid : it->second;
}

std::string_view Interner::name(Id id) const {
  QSA_EXPECTS(id < names_.size());
  return names_[id];
}

void Interner::clear() {
  ids_.clear();
  names_.clear();
}

}  // namespace qsa::util
