#include "qsa/util/rng.hpp"

#include <cmath>

#include "qsa/util/expects.hpp"

namespace qsa::util {

void Rng::reseed(std::uint64_t seed) noexcept {
  // SplitMix64 expansion, as recommended by the xoshiro authors.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9E3779B97F4A7C15ull;
    s = mix64(x);
  }
  // xoshiro must not start from the all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  QSA_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(index(span));
}

std::size_t Rng::index(std::size_t n) noexcept {
  QSA_EXPECTS(n > 0);
  // Lemire's nearly-divisionless bounded draw with rejection, keeping the
  // result exactly uniform (important for reproducible statistics).
  const std::uint64_t bound = n;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::size_t>(m >> 64);
}

double Rng::exponential(double mean) noexcept {
  QSA_EXPECTS(mean > 0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

double Rng::pareto(double xm, double alpha) noexcept {
  QSA_EXPECTS(xm > 0 && alpha > 0);
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

}  // namespace qsa::util
