// Deterministic random number generation for the simulator.
//
// Requirements that std::mt19937 + std::uniform_*_distribution do not meet:
//  * cross-platform bit-for-bit reproducibility (libstdc++ distributions are
//    implementation-defined);
//  * cheap hierarchical seeding: every entity (peer, service instance,
//    request) derives its own independent stream from
//    (global seed, kind, id, purpose), so simulation results do not depend on
//    the order in which entities happen to draw.
//
// The generator is xoshiro256**, seeded via SplitMix64 as its authors
// recommend; `mix64` is the SplitMix64 finalizer used as a hash.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace qsa::util {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Combines hash values (order-sensitive).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

/// FNV-1a over a string, for turning purpose tags into seed material.
[[nodiscard]] constexpr std::uint64_t hash_str(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept;

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean (> 0). Used for Poisson inter-arrivals.
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed lifetimes).
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Picks one element of a non-empty span uniformly.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) noexcept {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Builds a seed for an entity-scoped stream: the same
/// (root, kind, id, purpose) always yields the same stream, independent of
/// draw order elsewhere in the simulation.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t root,
                                                  std::string_view kind,
                                                  std::uint64_t id,
                                                  std::uint64_t purpose = 0) noexcept {
  return mix64(hash_combine(hash_combine(root, hash_str(kind)),
                            hash_combine(id, purpose)));
}

}  // namespace qsa::util
