// Minimal command-line / environment flag parsing for the bench and example
// binaries: `--name=value` or `--name value` arguments, falling back to a
// `QSA_NAME` environment variable, falling back to a default.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qsa::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// Raw string lookup: CLI first, then env var QSA_<NAME-upper>, else none.
  [[nodiscard]] std::optional<std::string> raw(std::string_view name) const;

  [[nodiscard]] std::string get(std::string_view name,
                                std::string_view def) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(std::string_view name, double def) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool def) const;

  /// Positional (non --flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// True if --help was passed.
  [[nodiscard]] bool help() const { return help_; }

  /// Command-line `--flags` that no raw()/get*() lookup has consulted so
  /// far — typos that would otherwise silently run the wrong experiment.
  /// First-occurrence order, deduplicated. Call after the last lookup.
  [[nodiscard]] std::vector<std::string> unknown() const;

  /// Every flag name the program has consulted (its vocabulary), sorted.
  [[nodiscard]] std::vector<std::string> known() const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<std::string> positional_;
  // Names consulted via raw(); mutable because lookups are logically const.
  mutable std::vector<std::string> queried_;
  bool help_ = false;
};

/// Standard unknown-flag policy for the CLI binaries: if `flags` holds a
/// `--flag` the program never consulted, print the offenders and the
/// recognized vocabulary to stderr and exit with status 2. Call after the
/// last get*() lookup.
void reject_unknown_flags(const Flags& flags, std::string_view program);

/// One admissible value of an enum-valued flag.
template <typename T>
struct Choice {
  std::string_view name;
  T value;
};

/// Shared teeth behind get_choice(): report `value` as inadmissible for
/// `--name`, list the choices, and exit with status 2 (the unknown-flag
/// status — a value typo is as fatal as a flag typo).
[[noreturn]] void reject_unknown_choice(std::string_view program,
                                        std::string_view name,
                                        std::string_view value,
                                        const std::string_view* choices,
                                        std::size_t count);

/// Enum-valued flag lookup: `--name=<choice>` (or QSA_<NAME>) matched
/// against `choices` by exact name; absent uses `def`. An inadmissible
/// value prints the choice list to stderr and exits 2 — it never falls
/// back to the default, so a typo cannot silently run the wrong
/// experiment.
template <typename T, std::size_t N>
[[nodiscard]] T get_choice(const Flags& flags, std::string_view name,
                           const Choice<T> (&choices)[N], T def,
                           std::string_view program) {
  const auto v = flags.raw(name);
  if (!v) return def;
  for (const Choice<T>& c : choices) {
    if (*v == c.name) return c.value;
  }
  std::string_view names[N];
  for (std::size_t i = 0; i < N; ++i) names[i] = choices[i].name;
  reject_unknown_choice(program, name, *v, names, N);
}

/// Parses a comma-separated list of doubles, e.g. "50,100,200".
[[nodiscard]] std::vector<double> parse_double_list(std::string_view text);

}  // namespace qsa::util
