#include "qsa/util/flags.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace qsa::util {
namespace {

std::string env_name(std::string_view flag) {
  std::string out = "QSA_";
  for (char c : flag) {
    out.push_back(c == '-' ? '_'
                           : static_cast<char>(std::toupper(
                                 static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.starts_with("--")) {
      arg.remove_prefix(2);
      if (auto eq = arg.find('='); eq != std::string_view::npos) {
        kv_.emplace_back(std::string(arg.substr(0, eq)),
                         std::string(arg.substr(eq + 1)));
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        kv_.emplace_back(std::string(arg), std::string(argv[++i]));
      } else {
        kv_.emplace_back(std::string(arg), "true");
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

std::optional<std::string> Flags::raw(std::string_view name) const {
  if (std::find(queried_.begin(), queried_.end(), name) == queried_.end()) {
    queried_.emplace_back(name);
  }
  for (const auto& [k, v] : kv_) {
    if (k == name) return v;
  }
  if (const char* env = std::getenv(env_name(name).c_str())) {
    return std::string(env);
  }
  return std::nullopt;
}

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (std::find(queried_.begin(), queried_.end(), k) != queried_.end()) {
      continue;
    }
    if (std::find(out.begin(), out.end(), k) == out.end()) out.push_back(k);
  }
  return out;
}

std::vector<std::string> Flags::known() const {
  std::vector<std::string> out = queried_;
  std::sort(out.begin(), out.end());
  return out;
}

void reject_unknown_flags(const Flags& flags, std::string_view program) {
  const std::vector<std::string> bad = flags.unknown();
  if (bad.empty()) return;
  std::fprintf(stderr, "%.*s: unknown flag", static_cast<int>(program.size()),
               program.data());
  for (const auto& f : bad) std::fprintf(stderr, " --%s", f.c_str());
  std::fprintf(stderr, "\nusage: %.*s [--flag=value ...]\nrecognized flags:",
               static_cast<int>(program.size()), program.data());
  for (const auto& f : flags.known()) std::fprintf(stderr, " --%s", f.c_str());
  std::fprintf(stderr,
               "\n(each also settable via the QSA_<NAME> environment "
               "variable; see --help)\n");
  std::exit(2);
}

void reject_unknown_choice(std::string_view program, std::string_view name,
                           std::string_view value,
                           const std::string_view* choices,
                           std::size_t count) {
  std::fprintf(stderr, "%.*s: unknown value '%.*s' for --%.*s\nusage: --%.*s=",
               static_cast<int>(program.size()), program.data(),
               static_cast<int>(value.size()), value.data(),
               static_cast<int>(name.size()), name.data(),
               static_cast<int>(name.size()), name.data());
  for (std::size_t i = 0; i < count; ++i) {
    std::fprintf(stderr, "%s%.*s", i == 0 ? "" : "|",
                 static_cast<int>(choices[i].size()), choices[i].data());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

std::string Flags::get(std::string_view name, std::string_view def) const {
  auto v = raw(name);
  return v ? *v : std::string(def);
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t def) const {
  auto v = raw(name);
  if (!v) return def;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Flags::get_double(std::string_view name, double def) const {
  auto v = raw(name);
  if (!v) return def;
  return std::strtod(v->c_str(), nullptr);
}

bool Flags::get_bool(std::string_view name, bool def) const {
  auto v = raw(name);
  if (!v) return def;
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

std::vector<double> parse_double_list(std::string_view text) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string_view::npos) comma = text.size();
    std::string item(text.substr(start, comma - start));
    if (!item.empty()) out.push_back(std::strtod(item.c_str(), nullptr));
    start = comma + 1;
  }
  return out;
}

}  // namespace qsa::util
