// Lightweight contract checks in the spirit of the C++ Core Guidelines GSL
// `Expects`/`Ensures`. Violations are programming errors, so they abort with a
// message instead of throwing: a simulation that continues past a broken
// invariant produces silently wrong science.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace qsa::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "qsa: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace qsa::util

#define QSA_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                          \
          : ::qsa::util::contract_failure("precondition", #cond, __FILE__, \
                                          __LINE__))

#define QSA_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::qsa::util::contract_failure("postcondition", #cond, __FILE__, \
                                          __LINE__))

#define QSA_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                        \
          : ::qsa::util::contract_failure("invariant", #cond, __FILE__, \
                                          __LINE__))
