// A move-only callable with inline storage: the capture lives inside the
// object (no heap), so scheduling work through one is allocation-free. The
// simulator's event queue stores millions of these per run — with
// std::function each schedule() paid a heap round-trip; with InplaceFunction
// the capture is placement-constructed straight into the event slot.
//
// Capacity is a hard compile-time bound: a capture larger than `Capacity`
// (or over-aligned beyond max_align_t) fails to compile with a static_assert
// rather than silently falling back to the heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace qsa::util {

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= Capacity,
                  "capture too large for InplaceFunction's inline buffer — "
                  "grow Capacity or capture less");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "captures must be nothrow-movable (slots relocate on "
                  "slab growth)");
    ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
    ops_ = &kOps<D>;
  }

  InplaceFunction(InplaceFunction&& other) noexcept { steal(other); }
  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;
  ~InplaceFunction() { reset(); }

  /// Destroys the held callable (if any); the function becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  R operator()(Args... args) {
    return ops_->invoke(buffer_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }
  friend bool operator==(const InplaceFunction& f, std::nullptr_t) noexcept {
    return !static_cast<bool>(f);
  }
  friend bool operator!=(const InplaceFunction& f, std::nullptr_t) noexcept {
    return static_cast<bool>(f);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static R invoke_impl(void* b, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(b)))(
        std::forward<Args>(args)...);
  }
  template <typename D>
  static void relocate_impl(void* from, void* to) noexcept {
    D* f = std::launder(reinterpret_cast<D*>(from));
    ::new (to) D(std::move(*f));
    f->~D();
  }
  template <typename D>
  static void destroy_impl(void* b) noexcept {
    std::launder(reinterpret_cast<D*>(b))->~D();
  }

  template <typename D>
  static constexpr Ops kOps{&invoke_impl<D>, &relocate_impl<D>,
                            &destroy_impl<D>};

  void steal(InplaceFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.buffer_, buffer_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buffer_[Capacity];
};

}  // namespace qsa::util
