// Fixed-size thread pool used by the experiment harness to run independent
// simulation cells (sweep point x algorithm x replication) concurrently.
//
// Individual simulations are single-threaded and deterministic; parallelism
// lives only at this embarrassingly-parallel outer level, so results are
// bit-identical for any thread count (results are stored by cell index, never
// by completion order).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qsa::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Must not be called after wait() has begun draining on
  /// another thread unless externally synchronized.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions escaping fn terminate (simulation tasks must not throw).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace qsa::util
