// The process's one worker pool. Three subsystems share it — the experiment
// harness (independent simulation cells), the serving loop's per-shard
// request threads, and the sharded simulation runtime's barrier epochs — so
// there is exactly one place that owns threads (see shared_pool()).
//
// Individual simulations stay deterministic under any worker count because
// parallelism is only ever applied to index-pure work: results are stored by
// index, never by completion order.
//
// parallel_for() is nested-safe and caller-participating: the calling thread
// drives iterations itself while workers help, so a parallel_for issued from
// *inside* a pool task (e.g. a simulation cell parallelizing its bootstrap
// on the same pool) always makes progress even when every worker is busy —
// there is no "wait for a free worker" deadlock by construction. Iterations
// are handed out by an atomic counter, not queued per-index, so an n-element
// loop costs O(workers) queue traffic, not O(n).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qsa::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Must not be called after wait() has begun draining on
  /// another thread unless externally synchronized.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Do not call from inside
  /// a pool task (it would wait on itself); nested code uses parallel_for.
  void wait();

  /// Runs fn(i) for i in [0, n) across the pool *and* the calling thread,
  /// returning when every iteration has finished. Safe to call from inside a
  /// pool task. Exceptions escaping fn terminate (simulation tasks must not
  /// throw).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  /// A queue entry. `tag` identifies the parallel_for batch a driver task
  /// belongs to (null for plain submits) so an impatient caller can cancel
  /// drivers that never got picked up; a cancelled entry has a null fn and
  /// is skipped by workers.
  struct Task {
    std::function<void()> fn;
    const void* tag = nullptr;
  };

  /// Pops-from-the-front vector FIFO: once drained it rewinds to index 0,
  /// so steady-state submit/run cycles reuse capacity instead of allocating
  /// (the serving benchmark gates zero allocations on this path).
  void compact_locked();
  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<Task> fifo_;
  std::size_t fifo_head_ = 0;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// The process-wide shared pool (one worker per hardware thread), created on
/// first use. ExperimentRunner, engine::serve_parallel, and sim::ShardRuntime
/// all draw from this single pool rather than spawning their own threads.
[[nodiscard]] ThreadPool& shared_pool();

}  // namespace qsa::util
