// String interner: maps names (QoS parameter names, service names, format
// symbols) to dense 32-bit ids so hot-path comparisons are integer equality.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qsa::util {

class Interner {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalid = ~Id{0};

  /// Returns the id for `name`, creating one if new.
  Id intern(std::string_view name);

  /// Returns the id for `name` or kInvalid if never interned.
  [[nodiscard]] Id find(std::string_view name) const;

  /// Returns the name for a valid id.
  [[nodiscard]] std::string_view name(Id id) const;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  std::unordered_map<std::string, Id> ids_;
  std::vector<std::string> names_;
};

}  // namespace qsa::util
