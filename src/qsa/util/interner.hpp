// String interner: maps names (QoS parameter names, service names, format
// symbols) to dense 32-bit ids so hot-path comparisons are integer equality.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qsa::util {

class Interner {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalid = ~Id{0};

  /// Returns the id for `name`, creating one if new.
  Id intern(std::string_view name);

  /// Returns the id for `name` or kInvalid if never interned.
  [[nodiscard]] Id find(std::string_view name) const;

  /// Returns the name for a valid id.
  [[nodiscard]] std::string_view name(Id id) const;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

  void clear();

 private:
  // Transparent hash: lookups take a string_view directly, no temporary
  // std::string per probe.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, Id, Hash, std::equal_to<>> ids_;
  std::vector<std::string> names_;
};

}  // namespace qsa::util
