#include "qsa/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "qsa/util/expects.hpp"

namespace qsa::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  QSA_EXPECTS(task != nullptr);
  {
    std::lock_guard lock(mu_);
    compact_locked();
    fifo_.push_back(Task{std::move(task), nullptr});
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {

/// Shared state of one parallel_for call, on the caller's stack. Driver
/// tasks capture only a pointer to it, which keeps them inside
/// std::function's small-buffer storage — parallel_for on a warm pool never
/// touches the allocator (the serving benchmark gates this).
struct ForLoop {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t drivers_left = 0;  ///< guarded by the pool mutex
};

void drive(ForLoop& loop) {
  for (std::size_t i;
       (i = loop.next.fetch_add(1, std::memory_order_relaxed)) < loop.n;) {
    (*loop.fn)(i);
  }
}

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Iterations are claimed from an atomic counter by up to min(n, workers)
  // queued "driver" tasks plus the calling thread itself. The caller always
  // participates, so the loop completes even when every worker is pinned by
  // an outer task — the property that makes nested parallel_for safe.
  ForLoop loop;
  loop.n = n;
  loop.fn = &fn;
  const std::size_t drivers =
      workers_.empty() ? 0 : std::min(n, workers_.size());
  const void* tag = &loop;
  if (drivers > 0) {
    {
      std::lock_guard lock(mu_);
      compact_locked();
      for (std::size_t d = 0; d < drivers; ++d) {
        fifo_.push_back(Task{[this, &loop] {
                               drive(loop);
                               std::lock_guard inner(mu_);
                               --loop.drivers_left;
                             },
                             tag});
      }
      loop.drivers_left = drivers;
      in_flight_ += drivers;
    }
    task_ready_.notify_all();
  }
  drive(loop);
  // Every iteration is claimed; cancel drivers still sitting in the queue
  // (they would only discover next >= n anyway, and behind a long-running
  // outer task that discovery could be arbitrarily late), then wait out the
  // ones a worker is actually executing.
  std::unique_lock lock(mu_);
  for (std::size_t i = fifo_head_; i < fifo_.size(); ++i) {
    if (fifo_[i].tag == tag) {
      fifo_[i] = Task{};
      --loop.drivers_left;
      --in_flight_;
    }
  }
  if (in_flight_ == 0) all_done_.notify_all();
  all_done_.wait(lock, [&loop] { return loop.drivers_left == 0; });
}

void ThreadPool::compact_locked() {
  if (fifo_head_ == fifo_.size()) {
    // Drained: rewind in place. Capacity is retained, so steady-state
    // submit/run cycles never touch the allocator.
    fifo_.clear();
    fifo_head_ = 0;
  } else if (fifo_head_ >= 1024 && fifo_head_ * 2 >= fifo_.size()) {
    fifo_.erase(fifo_.begin(),
                fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
    fifo_head_ = 0;
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      for (;;) {
        task_ready_.wait(
            lock, [this] { return stop_ || fifo_head_ < fifo_.size(); });
        if (fifo_head_ == fifo_.size()) return;  // stop_ and drained
        task = std::move(fifo_[fifo_head_]);
        ++fifo_head_;
        compact_locked();
        if (task.fn != nullptr) break;  // null = cancelled driver, skip
      }
    }
    task.fn();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
    }
    // Both kinds of waiter park on all_done_: wait() callers watch
    // in_flight_, parallel_for callers watch their drivers_left (already
    // decremented inside the task), so every completion broadcasts.
    all_done_.notify_all();
  }
}

ThreadPool& shared_pool() {
  // Constructed on first use, joined at static destruction. A function-local
  // static (not a global) so the mutexes it needs are alive by construction.
  static ThreadPool pool(0);
  return pool;
}

}  // namespace qsa::util
