#include "qsa/util/thread_pool.hpp"

#include <utility>

#include "qsa/util/expects.hpp"

namespace qsa::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  QSA_EXPECTS(task != nullptr);
  {
    std::lock_guard lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace qsa::util
