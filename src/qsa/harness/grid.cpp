#include "qsa/harness/grid.hpp"

#include <chrono>
#include <unordered_set>
#include <utility>

#include "qsa/obs/sink.hpp"
#include "qsa/overlay/can_overlay.hpp"
#include "qsa/overlay/chord_ring.hpp"
#include "qsa/overlay/pastry_overlay.hpp"
#include "qsa/qos/translator.hpp"
#include "qsa/util/expects.hpp"
#include "qsa/util/thread_pool.hpp"
#include "qsa/workload/generator.hpp"

namespace qsa::harness {

GridSimulation::GridSimulation(GridConfig config)
    : config_(std::move(config)),
      universe_(registry::QosUniverse::standard(interner_)),
      grid_rng_(util::derive_seed(config_.seed, "grid", 0)),
      recovery_rng_(util::derive_seed(config_.seed, "recovery", 0)) {
  // The QoS->resource translator shared by catalog generation.
  translator_ = std::make_unique<qos::AnalyticTranslator>(
      universe_.level, qos::AnalyticTranslator::paper_coefficients());

  // Applications + abstract services + service instances.
  workload::AppCatalogParams app_params = config_.apps;
  app_params.seed = util::derive_seed(config_.seed, "apps-root", 0);
  apps_ = std::make_unique<workload::ApplicationCatalog>(
      catalog_, universe_, *translator_, app_params);

  const net::ProbeClock clock(config_.probe_period);
  peers_ = std::make_unique<net::PeerTable>(qos::ResourceSchema::paper(), clock);
  network_ = std::make_unique<net::NetworkModel>(
      util::derive_seed(config_.seed, "network", 0), clock,
      config_.net_model);
  switch (config_.overlay) {
    case OverlayKind::kChord:
      ring_ = std::make_unique<overlay::ChordRing>(
          util::derive_seed(config_.seed, "chord", 0), config_.chord_replicas);
      break;
    case OverlayKind::kCan:
      ring_ = std::make_unique<overlay::CanOverlay>(
          util::derive_seed(config_.seed, "can", 0), config_.chord_replicas);
      break;
    case OverlayKind::kPastry:
      ring_ = std::make_unique<overlay::PastryOverlay>(
          util::derive_seed(config_.seed, "pastry", 0),
          config_.chord_replicas);
      break;
  }
  directory_ = std::make_unique<registry::ServiceDirectory>(
      util::derive_seed(config_.seed, "directory", 0), *ring_, catalog_);
  if (config_.discovery == DiscoveryKind::kDht) {
    index::IndexConfig ic;
    ic.expiry_epochs = config_.index_expiry_epochs;
    index_ = std::make_unique<index::AttributeIndex>(
        util::derive_seed(config_.seed, "index", 0), *ring_, catalog_,
        placement_, *peers_, *network_, universe_.level, ic);
    dht_ = std::make_unique<index::DhtDiscovery>(*index_, universe_.level,
                                                 sim_clock_);
  }
  neighbors_ = std::make_unique<probe::NeighborResolution>(
      config_.probe_budget, config_.neighbor_ttl);
  manager_ = std::make_unique<session::SessionManager>(simulator_, *peers_,
                                                       *network_, catalog_);

  if (config_.faults.enabled()) {
    fault_plan_ = std::make_unique<fault::FaultPlan>(
        util::derive_seed(config_.seed, "fault", 0), config_.faults);
    ring_->set_faults(fault_plan_.get());
    neighbors_->set_faults(fault_plan_.get());
    manager_->set_faults(fault_plan_.get());
  }

  // The composition+selection hot path lives in the sim-free serving
  // facade; the simulation is one of its drivers (the serving loop is the
  // other). Constructed before the observe block: the engine sets the
  // directory's cache TTL, which must precede directory_->set_metrics (the
  // cache counters are gated on the TTL cache being enabled).
  {
    engine::EngineConfig ec;
    ec.seed = config_.seed;
    ec.algorithm = config_.algorithm;
    ec.qsa_options = config_.qsa_options;
    ec.bandwidth_weight = config_.bandwidth_weight;
    ec.compose_caches = config_.compose_caches;
    ec.discovery_cache_ttl = config_.discovery_cache_ttl;
    engine::EngineDeps deps;
    deps.catalog = &catalog_;
    deps.placement = &placement_;
    deps.directory = directory_.get();
    deps.discovery = dht_.get();  // null = the directory answers lookups
    deps.peers = peers_.get();
    deps.net = network_.get();
    deps.neighbors = neighbors_.get();
    deps.clock = &sim_clock_;
    engine_ = std::make_unique<engine::ServingEngine>(ec, deps);
  }

  if (config_.observe) {
    obs::TraceConfig tc;
    tc.seed = config_.seed;
    tc.sample_every = config_.trace_sample;
    tc.flight_capacity = config_.flight_recorder;
    tracer_ = std::make_unique<obs::Tracer>(tc);
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    // The live recorder exists only when a window is configured: without
    // one, no sampling event is scheduled and no series name is recorded,
    // keeping knobs-off runs byte-identical.
    if (config_.obs_window.as_millis() > 0) {
      series_ = std::make_unique<obs::LiveSeries>();
    }
    // Exactly one backend's lookup metrics register: directory.* names in
    // directory mode, index.* in dht mode — never both.
    if (dht_ != nullptr) {
      dht_->set_metrics(metrics_.get());
    } else {
      directory_->set_metrics(metrics_.get());
    }
    neighbors_->set_metrics(metrics_.get(), network_.get());
    manager_->set_observability(tracer_.get(), metrics_.get());
    lookup_hops_hist_ = &metrics_->histogram("aggregate.lookup_hops");
    setup_latency_hist_ = &metrics_->histogram("aggregate.setup_latency_ms");
    composition_cost_hist_ =
        &metrics_->histogram("aggregate.composition_cost");
    path_length_hist_ = &metrics_->histogram("aggregate.path_length");
    // Gated on the plan so that with faults off no fault.* metric name is
    // ever registered and exported output stays identical.
    if (fault_plan_ != nullptr) fault_plan_->set_metrics(metrics_.get());
    // Same gating for cache.compat.*: the engine only forwards to the memo
    // when it exists.
    engine_->set_metrics(metrics_.get());
  }

  const qos::TupleWeights& weights = engine_->weights();

  // The replication tier listens to the session manager's demand signals
  // and widens hot provider pools through placement + directory publish.
  // Constructed only when enabled: a disabled config schedules nothing and
  // registers no metric names, keeping output byte-identical.
  if (config_.replication.enabled) {
    replica_ = std::make_unique<replica::ReplicaManager>(
        util::derive_seed(config_.seed, "replica", 0), config_.replication,
        catalog_, placement_, discovery(), *peers_, *network_, weights,
        peers_->schema());
    if (metrics_ != nullptr) replica_->set_metrics(metrics_.get());
    manager_->set_demand_callback([this](const session::DemandSignal& sig) {
      const sim::SimTime now = simulator_.now();
      switch (sig.kind) {
        case session::DemandSignal::Kind::kAdmitted:
          replica_->on_admitted(sig.instances, now);
          break;
        case session::DemandSignal::Kind::kRejected:
          replica_->on_rejected(sig.instances, sig.hosts, sig.blamed, now);
          break;
        case session::DemandSignal::Kind::kTeardown:
          replica_->on_session_ended(sig.instances);
          break;
      }
    });
    // The load-balancing half of the tier: selection subtracts each
    // candidate's same-epoch reservations from its probed availability, so
    // sessions admitted within one probe epoch see near-live headroom and
    // spread across the widened pool instead of piling onto the stale
    // snapshot's single Phi maximizer (and then failing at reservation).
    engine_->algorithm().set_load_signal(
        [this](net::PeerId p) { return manager_->epoch_reservations(p); });
  }
  // Concentration accounting rides along with replication (its evaluation
  // metric) and can be requested on its own.
  manager_->set_load_tracking(config_.track_load ||
                              config_.replication.enabled);

  if (config_.enable_recovery) {
    recovery_selector_ = std::make_unique<core::PeerSelector>(
        weights, peers_->schema(), config_.qsa_options.selector);
    manager_->set_recovery([this](const session::Session& s,
                                  std::size_t position, net::PeerId failed) {
      return select_replacement(s, position, failed);
    });
  }

  manager_->set_outcome_callback(
      [this](const session::Session& s, core::FailureCause cause) {
        auto it = pending_window_.find(s.id);
        // Sessions injected directly via sessions().start_session (examples,
        // tests) bypass request accounting and have no arrival window.
        if (it == pending_window_.end()) return;
        const std::size_t window = it->second.window;
        const std::uint64_t trace = it->second.trace;
        pending_window_.erase(it);
        const bool success = cause == core::FailureCause::kNone;
        if (success) {
          record_outcome(window, true);
        } else {
          QSA_ASSERT(cause == core::FailureCause::kDeparture);
          ++result_.failures_departure;
          record_outcome(window, false);
        }
        if (series_ != nullptr) {
          ++obs_window_attempts_;
          if (success) ++obs_window_successes_;
        }
        // The request is over: its running/teardown spans are closed (the
        // manager emits them before this callback), so route the chain and
        // recycle its nodes.
        if (tracer_ != nullptr && trace != 0) tracer_->finish(trace);
      });

  if (config_.profile) {
    const auto t0 = std::chrono::steady_clock::now();
    bootstrap();
    profile_.bootstrap_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  } else {
    bootstrap();
  }
}

GridSimulation::~GridSimulation() = default;

void GridSimulation::bootstrap() {
  using WallClock = std::chrono::steady_clock;
  const auto phase_ms = [](WallClock::time_point t0) {
    return std::chrono::duration<double, std::milli>(WallClock::now() - t0)
        .count();
  };

  // Peers, pre-aged so uptimes are meaningful at t = 0. Deferred joins:
  // nothing routes until the stabilize below, which (re)builds every
  // finger table wholesale — per-join finger computation would be thrown
  // away, and skipping it roughly halves million-peer bootstrap. The RNG
  // draws are a strict sequence, so this loop stays serial at any shard
  // count.
  auto t = WallClock::now();
  peers_->reserve(config_.peers);
  for (std::size_t i = 0; i < config_.peers; ++i) {
    const double tier =
        grid_rng_.uniform(config_.min_capacity, config_.max_capacity);
    const double age_min = grid_rng_.uniform(0.0, config_.max_initial_age_min);
    const net::PeerId id =
        peers_->add_peer(qos::ResourceVector{tier, tier},
                         sim::SimTime::minutes(-age_min));
    ring_->join_deferred(id);
  }
  profile_.bootstrap_peers_ms = phase_ms(t);

  // Finger-table rebuild: per-node state is a pure function of the
  // membership snapshot, so shards>1 fans it out over the shared pool with
  // byte-identical results (the overlay decides whether to bother).
  t = WallClock::now();
  ring_->stabilize_all_on(config_.shards > 1 ? &util::shared_pool() : nullptr);
  profile_.bootstrap_overlay_ms = phase_ms(t);

  // Placement: each instance gets 40-80 distinct random providers.
  t = WallClock::now();
  for (registry::InstanceId inst = 0; inst < catalog_.instance_count();
       ++inst) {
    const int copies = static_cast<int>(grid_rng_.uniform_int(
        config_.min_providers, config_.max_providers));
    const auto& alive = peers_->alive_ids();
    std::unordered_set<net::PeerId> chosen;
    while (static_cast<int>(chosen.size()) <
           std::min<int>(copies, static_cast<int>(alive.size()))) {
      chosen.insert(alive[grid_rng_.index(alive.size())]);
    }
    for (net::PeerId p : chosen) placement_.add_provider(inst, p);
  }
  profile_.bootstrap_placement_ms = phase_ms(t);

  t = WallClock::now();
  discovery().publish_all();
  profile_.bootstrap_publish_ms = phase_ms(t);
}

core::AggregationPlan GridSimulation::submit_request(
    const core::ServiceRequest& request) {
  // Through the clock seam on purpose: the engine reads the adapted
  // simulator clock, so this exercises exactly the serving-loop entry.
  return engine_->serve(request);
}

void GridSimulation::record_outcome(std::size_t window, bool success) {
  if (window >= windows_.size()) windows_.resize(window + 1);
  // attempts were counted at arrival; only successes land here.
  if (success) {
    ++windows_[window].successes;
    ++result_.successes;
  }
}

void GridSimulation::trace_setup(std::uint64_t request_id, sim::SimTime now,
                                 const core::AggregationPlan& plan,
                                 core::FailureCause cause, bool will_retry,
                                 int attempt) {
  using obs::Phase;
  using obs::SpanStatus;
  obs::Tracer& t = *tracer_;
  const auto verdict = [&](core::FailureCause at) {
    return cause == at ? SpanStatus::kFail : SpanStatus::kOk;
  };

  // Setup phases run within one simulator event, so spans are instantaneous
  // in sim time; the modeled latency travels as an annotation.
  const auto discovery = t.instant(
      request_id, Phase::kDiscovery, now, verdict(core::FailureCause::kDiscovery),
      cause == core::FailureCause::kDiscovery ? core::to_string(cause)
                                              : std::string_view{});
  t.annotate(discovery, "hops", static_cast<double>(plan.lookup_hops));
  t.annotate(discovery, "latency_ms",
             static_cast<double>(plan.setup_latency.as_millis()));
  if (cause == core::FailureCause::kDiscovery) return;

  const auto composition = t.instant(
      request_id, Phase::kComposition, now,
      verdict(core::FailureCause::kComposition),
      cause == core::FailureCause::kComposition ? core::to_string(cause)
                                                : std::string_view{});
  if (cause == core::FailureCause::kComposition) return;
  t.annotate(composition, "cost", plan.composition_cost);
  t.annotate(composition, "path_length",
             static_cast<double>(plan.instances.size()));

  const auto selection = t.instant(
      request_id, Phase::kSelection, now, verdict(core::FailureCause::kSelection),
      cause == core::FailureCause::kSelection ? core::to_string(cause)
                                              : std::string_view{});
  if (cause == core::FailureCause::kSelection) return;
  t.annotate(selection, "random_fallback_hops",
             static_cast<double>(plan.random_fallback_hops));

  const SpanStatus admission_status =
      cause == core::FailureCause::kNone
          ? SpanStatus::kOk
          : (will_retry ? SpanStatus::kRetry : SpanStatus::kFail);
  const auto admission = t.instant(
      request_id, Phase::kAdmission, now, admission_status,
      cause == core::FailureCause::kAdmission ? core::to_string(cause)
                                              : std::string_view{});
  t.annotate(admission, "attempt", static_cast<double>(attempt));
}

void GridSimulation::handle_request(const core::ServiceRequest& request) {
  const sim::SimTime now = simulator_.now();
  const auto window = static_cast<std::size_t>(
      now.as_millis() / config_.sample_period.as_millis());
  if (window >= windows_.size()) windows_.resize(window + 1);
  ++windows_[window].attempts;
  ++result_.requests;
  const std::uint64_t rid = result_.requests;  // 1-based trace id

  core::ServiceRequest attempt = request;
  if (tracer_ != nullptr) attempt.trace_id = rid;
  core::FailureCause cause = core::FailureCause::kNone;
  for (int tries = 0; tries <= config_.admission_retries; ++tries) {
    core::AggregationPlan plan;
    if (config_.profile) {
      const auto t0 = std::chrono::steady_clock::now();
      plan = engine_->aggregate(attempt, now);
      profile_.aggregate_ms += std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
    } else {
      plan = engine_->aggregate(attempt, now);
    }
    result_.lookup_hops += static_cast<std::uint64_t>(plan.lookup_hops);
    result_.setup_latency_ms +=
        static_cast<std::uint64_t>(plan.setup_latency.as_millis());
    result_.random_fallback_hops +=
        static_cast<std::uint64_t>(plan.random_fallback_hops);
    cause = plan.failure;
    if (metrics_ != nullptr) {
      lookup_hops_hist_->observe(static_cast<double>(plan.lookup_hops));
      setup_latency_hist_->observe(
          static_cast<double>(plan.setup_latency.as_millis()));
      if (plan.ok()) {
        composition_cost_hist_->observe(plan.composition_cost);
        path_length_hist_->observe(static_cast<double>(plan.instances.size()));
      }
    }
    // Counted once per request, as soon as composition succeeded (whatever
    // selection and admission do afterwards): admission retries recompose
    // the identical (host-independent) plan, and conditioning on the later
    // stages would measure the retry/selection mix rather than the
    // composition objective.
    if (tries == 0 && cause != core::FailureCause::kDiscovery &&
        cause != core::FailureCause::kComposition) {
      composition_cost_sum_ += plan.composition_cost;
      ++composed_;
    }
    if (!plan.ok()) {
      // A selection failure means no provider of some hop had probed
      // headroom — the strongest replication signal there is.
      if (replica_ != nullptr && cause == core::FailureCause::kSelection) {
        replica_->on_selection_failure(plan.instances, now);
      }
      if (tracer_ != nullptr) {
        trace_setup(rid, now, plan, cause, /*will_retry=*/false, tries);
      }
      break;
    }

    net::PeerId blamed = net::kNoPeer;
    if (config_.profile) {
      const auto t0 = std::chrono::steady_clock::now();
      cause = manager_->start_session(attempt, plan, &blamed);
      profile_.admission_ms += std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
    } else {
      cause = manager_->start_session(attempt, plan, &blamed);
    }
    const bool will_retry = cause == core::FailureCause::kAdmission &&
                            blamed != net::kNoPeer &&
                            tries < config_.admission_retries;
    if (tracer_ != nullptr) {
      trace_setup(rid, now, plan, cause, will_retry, tries);
    }
    if (cause != core::FailureCause::kAdmission || blamed == net::kNoPeer) {
      break;
    }
    // Second chance: exclude the peer whose reservation fell short and
    // re-select. Only worthwhile while retries remain.
    if (tries < config_.admission_retries) {
      attempt.excluded_hosts.push_back(blamed);
      result_.counters.add("admission.retries");
    }
  }
  switch (cause) {
    case core::FailureCause::kNone: {
      // Outcome decided later (completion or departure abort). Session ids
      // are handed out sequentially; the one just admitted is the newest.
      const session::SessionId id = manager_->last_session_id();
      pending_window_.emplace(id, Pending{window, rid});
      break;
    }
    case core::FailureCause::kDiscovery:
      ++result_.failures_discovery;
      break;
    case core::FailureCause::kComposition:
      ++result_.failures_composition;
      break;
    case core::FailureCause::kSelection:
      ++result_.failures_selection;
      break;
    case core::FailureCause::kAdmission:
      ++result_.failures_admission;
      break;
    case core::FailureCause::kDeparture:
      ++result_.failures_departure;
      break;
  }
  if (metrics_ != nullptr) {
    if (cause == core::FailureCause::kNone) {
      metrics_->add("request.admitted");
    } else {
      // One terminal failure counter per cause, e.g. request.fail.admission.
      std::string name = "request.fail.";
      name += core::to_string(cause);
      metrics_->add(name);
    }
  }
  // Setup failures are terminal here and now: route the chain out of the
  // tracer and recycle its nodes. Admitted requests finish at their
  // session's outcome callback (or the horizon sweep).
  if (cause != core::FailureCause::kNone) {
    if (series_ != nullptr) ++obs_window_attempts_;
    if (tracer_ != nullptr) tracer_->finish(rid);
  }
}

net::PeerId GridSimulation::select_replacement(const session::Session& s,
                                               std::size_t position,
                                               net::PeerId failed) {
  const auto providers = placement_.providers(s.instances[position]);
  std::vector<net::PeerId> candidates;
  for (net::PeerId p : providers) {
    if (p != failed && peers_->alive(p)) candidates.push_back(p);
  }
  if (candidates.empty()) return net::kNoPeer;

  // The downstream consumer (who notices the stream stopping) selects.
  const net::PeerId detector = position + 1 < s.hosts.size()
                                   ? s.hosts[position + 1]
                                   : s.requester;
  if (!peers_->alive(detector)) return net::kNoPeer;
  const sim::SimTime now = simulator_.now();
  neighbors_->prepare_selection(detector, candidates, 1, /*direct=*/false,
                                now);
  const auto& inst = catalog_.instance(s.instances[position]);
  const auto sel = recovery_selector_->select_hop(
      *peers_, *network_, neighbors_->table(detector), detector, inst,
      candidates, s.end - now, now, recovery_rng_);
  return sel.peer;
}

void GridSimulation::depart_peer(net::PeerId peer) {
  if (!peers_->alive(peer)) return;
  manager_->peer_departed(peer);
  placement_.remove_peer(peer);
  // Replicas hosted on the departed peer die with it (their placement
  // entries just vanished wholesale above).
  if (replica_ != nullptr) replica_->peer_departed(peer);
  ring_->fail(peer);
  neighbors_->drop_peer(peer);
  peers_->remove_peer(peer, simulator_.now());
  // A departure changes what discovery should return (the departed peer's
  // share of the key space is gone): the directory drops cached lookups;
  // the attribute index lets the lost postings age out via the epoch sweep.
  discovery().peer_departed(peer);
}

net::PeerId GridSimulation::arrive_peer() {
  const double tier =
      grid_rng_.uniform(config_.min_capacity, config_.max_capacity);
  const net::PeerId id = peers_->add_peer(qos::ResourceVector{tier, tier},
                                          simulator_.now());
  ring_->join(id);
  // A newcomer contributes a few instance copies.
  const int hosted = static_cast<int>(grid_rng_.uniform_int(
      config_.arrival_hosted_min, config_.arrival_hosted_max));
  for (int i = 0; i < hosted && catalog_.instance_count() > 0; ++i) {
    placement_.add_provider(
        static_cast<registry::InstanceId>(
            grid_rng_.index(catalog_.instance_count())),
        id);
  }
  return id;
}

GridResult GridSimulation::run() {
  const sim::SimTime horizon = config_.horizon;

  // Periodic maintenance: overlay stabilization and directory republish.
  simulator_.every(config_.stabilize_period, config_.stabilize_period,
                   [this] { ring_->stabilize_round(config_.stabilize_fraction); });
  simulator_.every(config_.republish_period, config_.republish_period,
                   [this] { discovery().publish_all(); });
  // Replica retirement sweep, only when the tier exists (an extra periodic
  // event would otherwise perturb the event count of knobs-off runs).
  if (replica_ != nullptr) {
    const sim::SimTime cooldown = config_.replication.cooldown;
    simulator_.every(cooldown, cooldown,
                     [this] { replica_->sweep(simulator_.now()); });
  }

  // Live time-series: register probes (polled in this order every window)
  // and the sampling event. Gated on the recorder so that without
  // --obs-window-ms no event is scheduled and no series name exists.
  if (series_ != nullptr) {
    series_->track("sim.queue_depth", [this] {
      return static_cast<double>(simulator_.pending_events());
    });
    series_->track("session.active", [this] {
      return static_cast<double>(manager_->active_sessions());
    });
    if (config_.discovery_cache_ttl.as_millis() > 0) {
      series_->track("cache.discovery.hit_rate", [this] {
        const double h =
            static_cast<double>(metrics_->counter("cache.discovery.hits").value);
        const double m = static_cast<double>(
            metrics_->counter("cache.discovery.misses").value);
        return h + m > 0 ? h / (h + m) : 0.0;
      });
    }
    if (engine_->compose_cache() != nullptr) {
      series_->track("cache.compat.hit_rate", [this] {
        const double h =
            static_cast<double>(metrics_->counter("cache.compat.hits").value);
        const double m =
            static_cast<double>(metrics_->counter("cache.compat.misses").value);
        return h + m > 0 ? h / (h + m) : 0.0;
      });
    }
    if (replica_ != nullptr) {
      series_->track("replica.active", [this] {
        return static_cast<double>(replica_->active());
      });
    }
    series_->track("obs.live_spans", [this] {
      return static_cast<double>(tracer_->live_spans());
    });
    if (config_.profile) {
      // Cumulative host wall-clock per phase — non-deterministic values,
      // gated behind --profile like the perf.* gauges.
      series_->track("perf.aggregate_ms",
                     [this] { return profile_.aggregate_ms; });
      series_->track("perf.admission_ms",
                     [this] { return profile_.admission_ms; });
    }
    simulator_.every(config_.obs_window, config_.obs_window, [this] {
      const sim::SimTime now = simulator_.now();
      // Windowed psi first (requests resolved since the last window), then
      // the instantaneous probes in registration order.
      if (obs_window_attempts_ > 0) {
        series_->push("psi.window", now,
                      static_cast<double>(obs_window_successes_) /
                          static_cast<double>(obs_window_attempts_));
        obs_window_attempts_ = obs_window_successes_ = 0;
      }
      series_->sample(now);
    });
  }

  // Workload.
  workload::RequestParams rp = config_.requests;
  rp.seed = util::derive_seed(config_.seed, "requests-root", 0);
  workload::RequestGenerator generator(
      simulator_, *apps_, universe_, *peers_, rp,
      [this](const core::ServiceRequest& req, const workload::Application&,
             workload::QosLevel) { handle_request(req); });
  generator.start(horizon);

  // Churn.
  workload::ChurnParams cp = config_.churn;
  cp.seed = util::derive_seed(config_.seed, "churn-root", 0);
  workload::ChurnProcess churn(
      simulator_, *peers_, cp, [this](net::PeerId p) { depart_peer(p); },
      [this] { arrive_peer(); });
  churn.start(horizon);

  if (config_.profile) {
    // Wall-clock the event loop alone: periodic registration above and the
    // accounting below are one-shot, the loop is where the engine lives.
    const auto t0 = std::chrono::steady_clock::now();
    simulator_.run_until(horizon);
    profile_.run_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  } else {
    simulator_.run_until(horizon);
  }

  // Sessions still healthy at the horizon count as successes. end_open is
  // per-request state, so the unordered sweep is safe; the emission order
  // is fixed afterwards by finish_all()'s ascending request-id drain.
  for (const auto& [id, pending] : pending_window_) {
    record_outcome(pending.window, true);
    if (tracer_ != nullptr && pending.trace != 0) {
      // The running span is still open; the horizon ends it healthy.
      tracer_->end_open(pending.trace, simulator_.now(), obs::SpanStatus::kOk,
                        "horizon");
    }
  }
  pending_window_.clear();
  if (tracer_ != nullptr) {
    tracer_->finish_all();
    if (tracer_->sink() != nullptr) tracer_->sink()->flush();
  }

  // Emit the arrival-bucketed psi series.
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    if (windows_[w].attempts == 0) continue;
    const auto t = sim::SimTime::millis(
        static_cast<std::int64_t>(w + 1) * config_.sample_period.as_millis());
    result_.series.record(t, static_cast<double>(windows_[w].successes) /
                                 static_cast<double>(windows_[w].attempts));
  }

  result_.notification_messages = neighbors_->messages();
  result_.churn_departures = churn.departures();
  result_.churn_arrivals = churn.arrivals();
  result_.avg_composition_cost =
      composed_ == 0 ? 0 : composition_cost_sum_ / static_cast<double>(composed_);
  result_.counters.add("sessions.admitted", manager_->stats().admitted);
  result_.counters.add("sessions.completed", manager_->stats().completed);
  result_.counters.add("sessions.aborted", manager_->stats().aborted);
  result_.counters.add("sessions.recovered", manager_->stats().recovered);
  result_.counters.add("sessions.rejected", manager_->stats().rejected);
  result_.counters.add("events.executed", simulator_.executed_events());
  // Historical name, monotone semantics: distinct pairs ever reserved.
  // Reported via touched_pairs() so ledger eviction (a memory-footprint
  // mechanism) cannot change exported output; the resident ledger size is
  // NetworkModel::active_pairs(), which benches read directly.
  result_.counters.add("net.active_pairs", network_->touched_pairs());

  // Replication / concentration accounting, gated like the fault counters:
  // untracked runs add no counter names.
  if (replica_ != nullptr) {
    const replica::ReplicaStats& rs = replica_->stats();
    result_.counters.add("replica.created", rs.created);
    result_.counters.add("replica.retired", rs.retired);
    result_.counters.add("replica.rejected_no_host", rs.rejected_no_host);
    result_.counters.add("replica.host_departures", rs.host_departures);
    result_.counters.add("replica.active", replica_->active());
  }
  if (config_.track_load || config_.replication.enabled) {
    result_.counters.add("load.provider_peak", manager_->peak_provider_load());
    result_.counters.add("load.concentration_peak",
                         manager_->peak_service_concentration());
    result_.avg_service_concentration =
        manager_->mean_service_concentration();
  }

  // Fault accounting, only when injection is on: with the plan disabled the
  // counter set (and hence any exported output) is unchanged.
  if (fault_plan_ != nullptr) {
    const fault::FaultStats& fs = fault_plan_->stats();
    const auto probe = static_cast<std::size_t>(fault::Channel::kProbe);
    const auto notify = static_cast<std::size_t>(fault::Channel::kNotify);
    const auto lookup = static_cast<std::size_t>(fault::Channel::kLookup);
    const auto resv = static_cast<std::size_t>(fault::Channel::kReservation);
    result_.counters.add("fault.messages", fs.total_attempts());
    result_.counters.add("fault.dropped", fs.total_dropped());
    result_.counters.add("probe.retries", fs.retries[probe] + fs.retries[notify]);
    result_.counters.add("lookup.retries", fs.retries[lookup]);
    result_.counters.add("lookup.rerouted", fs.rerouted);
    result_.counters.add("session.recovery_retries", fs.retries[resv]);
    if (metrics_ != nullptr) {
      metrics_->add("fault.messages", fs.total_attempts());
      metrics_->add("fault.dropped", fs.total_dropped());
      metrics_->add("probe.retries", fs.retries[probe] + fs.retries[notify]);
      metrics_->add("lookup.retries", fs.retries[lookup]);
      metrics_->add("lookup.rerouted", fs.rerouted);
      metrics_->add("session.recovery_retries", fs.retries[resv]);
    }
  }

  // Attribute-index accounting, gated exactly like the fault counters: in
  // directory mode (the default) no index.* counter name ever appears.
  if (index_ != nullptr) {
    const index::IndexStats& is = index_->stats();
    result_.counters.add("index.publishes", is.publishes);
    result_.counters.add("index.updates", is.updates);
    result_.counters.add("index.expiries", is.expiries);
    result_.counters.add("index.scans", is.scans);
    result_.counters.add("index.scan_segments", is.scan_segments);
    result_.counters.add("index.scan_hops", is.scan_hops);
    result_.counters.add("index.scan_reroutes", is.scan_reroutes);
    result_.counters.add("index.failed_scans", is.failed_scans);
    result_.counters.add("index.scanned_postings", is.scanned_postings);
    result_.counters.add("index.false_positives", is.false_positives);
    result_.counters.add("index.stale_postings", is.stale_postings);
    result_.counters.add("index.postings", index_->postings());
    if (metrics_ != nullptr) {
      metrics_->add("index.publishes", is.publishes);
      metrics_->add("index.updates", is.updates);
      metrics_->add("index.expiries", is.expiries);
      metrics_->add("index.scans", is.scans);
      metrics_->add("index.scan_segments", is.scan_segments);
      metrics_->add("index.scan_hops", is.scan_hops);
      metrics_->add("index.scan_reroutes", is.scan_reroutes);
      metrics_->add("index.failed_scans", is.failed_scans);
      metrics_->add("index.scanned_postings", is.scanned_postings);
      metrics_->add("index.false_positives", is.false_positives);
      metrics_->add("index.stale_postings", is.stale_postings);
      metrics_->set("index.postings", static_cast<double>(index_->postings()));
    }
  }

  if (metrics_ != nullptr) {
    metrics_->add("request.total", result_.requests);
    metrics_->add("sim.events_executed", simulator_.executed_events());
    metrics_->set("sim.event_queue_high_water",
                  static_cast<double>(simulator_.max_pending_events()));
    metrics_->set("net.active_pairs",
                  static_cast<double>(network_->touched_pairs()));
    metrics_->add("churn.departures", result_.churn_departures);
    metrics_->add("churn.arrivals", result_.churn_arrivals);
    metrics_->add("session.admitted", manager_->stats().admitted);
    metrics_->add("session.completed", manager_->stats().completed);
    metrics_->add("session.aborted", manager_->stats().aborted);
    metrics_->add("session.recovered", manager_->stats().recovered);
    metrics_->add("session.rejected", manager_->stats().rejected);
    // The bounded-memory witness: resident span count never exceeds the
    // number of in-flight requests, whatever the total request volume.
    metrics_->set("obs.spans_live_high_water",
                  static_cast<double>(tracer_->peak_live_spans()));
    metrics_->add("obs.spans_emitted", tracer_->emitted_spans());
    metrics_->add("obs.requests_finished", tracer_->finished_requests());
    metrics_->add("obs.requests_sampled", tracer_->sampled_requests());
  }

  // Profiling export, gated on its own flag: the values are host wall-clock,
  // so keeping them out of the default metric set preserves byte-identical
  // knobs-off output.
  if (config_.profile) {
    profile_.events = simulator_.executed_events();
    profile_.events_per_sec =
        profile_.run_ms > 0
            ? static_cast<double>(profile_.events) * 1000.0 / profile_.run_ms
            : 0;
    profile_.queue_peak = simulator_.max_pending_events();
    if (metrics_ != nullptr) {
      metrics_->set("perf.wall_ms.bootstrap", profile_.bootstrap_ms);
      metrics_->set("perf.wall_ms.bootstrap_peers",
                    profile_.bootstrap_peers_ms);
      metrics_->set("perf.wall_ms.bootstrap_overlay",
                    profile_.bootstrap_overlay_ms);
      metrics_->set("perf.wall_ms.bootstrap_placement",
                    profile_.bootstrap_placement_ms);
      metrics_->set("perf.wall_ms.bootstrap_publish",
                    profile_.bootstrap_publish_ms);
      metrics_->set("perf.wall_ms.run", profile_.run_ms);
      metrics_->set("perf.wall_ms.aggregate", profile_.aggregate_ms);
      metrics_->set("perf.wall_ms.admission", profile_.admission_ms);
      metrics_->set("perf.events_per_sec", profile_.events_per_sec);
      metrics_->set("sim.queue_peak",
                    static_cast<double>(profile_.queue_peak));
    }
  }
  return result_;
}

}  // namespace qsa::harness
