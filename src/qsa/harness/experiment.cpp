#include "qsa/harness/experiment.hpp"

#include <memory>

#include "qsa/obs/export.hpp"
#include "qsa/util/thread_pool.hpp"

namespace qsa::harness {

std::vector<ExperimentResult> ExperimentRunner::run(
    std::span<const ExperimentCell> cells) const {
  std::vector<ExperimentResult> results(cells.size());
  util::ThreadPool pool(threads_);
  pool.parallel_for(cells.size(), [&](std::size_t i) {
    // Each cell owns an independent simulation; results land at the cell's
    // index so output order never depends on scheduling.
    GridSimulation grid(cells[i].config);
    results[i].label = cells[i].label;
    results[i].result = grid.run();
    if (cells[i].config.observe) {
      results[i].metrics_json = obs::metrics_json(*grid.metrics());
      results[i].trace_jsonl = obs::trace_jsonl(*grid.tracer());
    }
  });
  return results;
}

std::vector<ExperimentCell> algorithm_comparison(const GridConfig& base,
                                                 std::string_view label_prefix) {
  std::vector<ExperimentCell> cells;
  for (AlgorithmKind kind :
       {AlgorithmKind::kQsa, AlgorithmKind::kRandom, AlgorithmKind::kFixed}) {
    GridConfig config = base;
    config.algorithm = kind;
    cells.push_back(ExperimentCell{
        std::string(label_prefix) + std::string(to_string(kind)), config});
  }
  return cells;
}

}  // namespace qsa::harness
