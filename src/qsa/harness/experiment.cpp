#include "qsa/harness/experiment.hpp"

#include <memory>

#include "qsa/obs/export.hpp"
#include "qsa/obs/sink.hpp"
#include "qsa/util/thread_pool.hpp"

namespace qsa::harness {

std::vector<ExperimentResult> ExperimentRunner::run(
    std::span<const ExperimentCell> cells) const {
  std::vector<ExperimentResult> results(cells.size());
  // Default thread count draws from the process-wide pool (one thread owner
  // per process); an explicit count still gets a dedicated pool of that
  // exact size, since shared_pool() is always hardware-sized.
  std::unique_ptr<util::ThreadPool> own =
      threads_ == 0 ? nullptr : std::make_unique<util::ThreadPool>(threads_);
  util::ThreadPool& pool = own ? *own : util::shared_pool();
  pool.parallel_for(cells.size(), [&](std::size_t i) {
    // Each cell owns an independent simulation; results land at the cell's
    // index so output order never depends on scheduling.
    GridSimulation grid(cells[i].config);
    results[i].label = cells[i].label;
    // Sinks attach before run(): completed requests stream out as they
    // finish, so the grid never re-buffers a whole run's spans.
    obs::StringSpanSink trace_sink;
    grid.set_span_sink(&trace_sink);
    results[i].result = grid.run();
    if (cells[i].config.observe) {
      results[i].metrics_json = obs::metrics_json(*grid.metrics());
      results[i].trace_jsonl = trace_sink.str();
      if (grid.live_series() != nullptr) {
        results[i].series_csv = grid.live_series()->csv();
      }
      if (grid.flight() != nullptr) {
        results[i].flight_jsonl = grid.flight()->jsonl();
      }
    }
  });
  return results;
}

std::vector<ExperimentCell> algorithm_comparison(const GridConfig& base,
                                                 std::string_view label_prefix) {
  std::vector<ExperimentCell> cells;
  for (AlgorithmKind kind :
       {AlgorithmKind::kQsa, AlgorithmKind::kRandom, AlgorithmKind::kFixed}) {
    GridConfig config = base;
    config.algorithm = kind;
    cells.push_back(ExperimentCell{
        std::string(label_prefix) + std::string(to_string(kind)), config});
  }
  return cells;
}

}  // namespace qsa::harness
