// GridSimulation: one complete simulated P2P computing grid — peers, WAN
// model, Chord ring, service catalog and placement, probing subsystem,
// workload and churn processes, the aggregation algorithm under test, and
// session accounting. Construct it from a GridConfig, call run(), read the
// GridResult.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "qsa/cache/compose_cache.hpp"
#include "qsa/core/aggregate.hpp"
#include "qsa/core/baselines.hpp"
#include "qsa/engine/engine.hpp"
#include "qsa/fault/fault.hpp"
#include "qsa/harness/config.hpp"
#include "qsa/index/attribute_index.hpp"
#include "qsa/index/dht_discovery.hpp"
#include "qsa/metrics/counters.hpp"
#include "qsa/metrics/timeseries.hpp"
#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/obs/series.hpp"
#include "qsa/obs/trace.hpp"
#include "qsa/overlay/lookup.hpp"
#include "qsa/probe/resolution.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/registry/directory.hpp"
#include "qsa/registry/placement.hpp"
#include "qsa/replica/manager.hpp"
#include "qsa/session/manager.hpp"
#include "qsa/sim/simulator.hpp"
#include "qsa/util/interner.hpp"
#include "qsa/util/rng.hpp"
#include "qsa/workload/apps.hpp"

namespace qsa::harness {

/// Aggregated outcome of one simulation run.
struct GridResult {
  std::uint64_t requests = 0;
  std::uint64_t successes = 0;  ///< completed (or still healthy at horizon)
  std::uint64_t failures_discovery = 0;
  std::uint64_t failures_composition = 0;
  std::uint64_t failures_selection = 0;
  std::uint64_t failures_admission = 0;
  std::uint64_t failures_departure = 0;

  /// The paper's metric psi = successes / requests (1.0 when no requests).
  [[nodiscard]] double success_ratio() const noexcept {
    return requests == 0
               ? 1.0
               : static_cast<double>(successes) / static_cast<double>(requests);
  }

  /// psi per sample window, bucketed by request *arrival* time (how the
  /// fluctuation figures attribute outcomes).
  metrics::TimeSeries series;

  /// Protocol/overhead observations.
  std::uint64_t notification_messages = 0;
  std::uint64_t lookup_hops = 0;
  std::uint64_t setup_latency_ms = 0;  ///< summed discovery latency
  std::uint64_t random_fallback_hops = 0;
  std::uint64_t churn_departures = 0;
  std::uint64_t churn_arrivals = 0;
  double avg_composition_cost = 0;  ///< mean over composed requests
  /// Mean co-location share at admission — the fraction of a service's
  /// active sessions funneled onto the chosen host (see
  /// SessionManager::mean_service_concentration); 0 when load tracking and
  /// replication are both off.
  double avg_service_concentration = 0;
  metrics::Counters counters;  ///< everything else, by name
};

/// Wall-clock phase timings of one run (GridConfig::profile). Host-clock
/// measurements: useful for perf work, never fed back into the simulation.
struct ProfileReport {
  double bootstrap_ms = 0;    ///< construction + population bootstrap
  // Bootstrap sub-phases (sum to ~bootstrap_ms; the residual is catalog
  // and subsystem construction outside the four loops):
  double bootstrap_peers_ms = 0;      ///< peer creation + overlay joins
  double bootstrap_overlay_ms = 0;    ///< stabilize_all (pool at shards>1)
  double bootstrap_placement_ms = 0;  ///< provider placement draws
  double bootstrap_publish_ms = 0;    ///< directory publish_all
  double run_ms = 0;          ///< the discrete-event loop
  double aggregate_ms = 0;    ///< summed wall time inside aggregate()
  double admission_ms = 0;    ///< summed wall time inside start_session()
  std::uint64_t events = 0;   ///< events executed by the loop
  double events_per_sec = 0;  ///< events / run wall-clock
  std::size_t queue_peak = 0; ///< live-event high-water mark
};

class GridSimulation {
 public:
  explicit GridSimulation(GridConfig config);
  ~GridSimulation();

  GridSimulation(const GridSimulation&) = delete;
  GridSimulation& operator=(const GridSimulation&) = delete;

  /// Runs the configured horizon and returns the accounting.
  GridResult run();

  /// Injects one request immediately (examples/tests drive the grid
  /// manually with this instead of the Poisson generator).
  core::AggregationPlan submit_request(const core::ServiceRequest& request);

  // --- component access for examples, tests and ablations ---
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] net::PeerTable& peers() noexcept { return *peers_; }
  [[nodiscard]] net::NetworkModel& network() noexcept { return *network_; }
  [[nodiscard]] overlay::LookupService& ring() noexcept { return *ring_; }
  [[nodiscard]] registry::ServiceCatalog& catalog() noexcept {
    return catalog_;
  }
  [[nodiscard]] registry::PlacementMap& placement() noexcept {
    return placement_;
  }
  [[nodiscard]] const registry::QosUniverse& universe() const noexcept {
    return universe_;
  }
  [[nodiscard]] const workload::ApplicationCatalog& apps() const noexcept {
    return *apps_;
  }
  [[nodiscard]] core::AggregationAlgorithm& algorithm() noexcept {
    return engine_->algorithm();
  }
  [[nodiscard]] registry::ServiceDirectory& directory() noexcept {
    return *directory_;
  }
  /// The discovery backend candidate lookups actually route through: the
  /// attribute index under --discovery=dht, the directory otherwise.
  [[nodiscard]] registry::DiscoveryBackend& discovery() noexcept {
    return dht_ != nullptr
               ? static_cast<registry::DiscoveryBackend&>(*dht_)
               : static_cast<registry::DiscoveryBackend&>(*directory_);
  }
  /// The attribute index; non-null iff `config.discovery == kDht`.
  [[nodiscard]] const index::AttributeIndex* attribute_index() const noexcept {
    return index_.get();
  }
  /// The sim-free serving facade the simulation routes every aggregation
  /// through (the same engine a serving loop runs; DESIGN.md §13).
  [[nodiscard]] engine::ServingEngine& engine() noexcept { return *engine_; }
  /// The compatibility/cost memo tables; non-null iff
  /// `config.compose_caches` is set.
  [[nodiscard]] const cache::ComposeCache* compose_cache() const noexcept {
    return engine_->compose_cache();
  }
  [[nodiscard]] session::SessionManager& sessions() noexcept {
    return *manager_;
  }
  [[nodiscard]] const GridConfig& config() const noexcept { return config_; }

  /// The fault-injection plan; non-null iff `config.faults` enables any
  /// loss or delay.
  [[nodiscard]] const fault::FaultPlan* faults() const noexcept {
    return fault_plan_.get();
  }

  /// The replication tier; non-null iff `config.replication.enabled`.
  [[nodiscard]] const replica::ReplicaManager* replicas() const noexcept {
    return replica_.get();
  }

  /// Wall-clock phase timings; populated by run() iff `config.profile`.
  [[nodiscard]] const ProfileReport& profile_report() const noexcept {
    return profile_;
  }

  /// The trace/metrics instruments; non-null iff `config.observe` is set.
  [[nodiscard]] obs::Tracer* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] obs::MetricsRegistry* metrics() noexcept {
    return metrics_.get();
  }

  /// The failure flight recorder; non-null iff `config.flight_recorder > 0`
  /// (and observing).
  [[nodiscard]] obs::FlightRecorder* flight() noexcept {
    return tracer_ != nullptr ? tracer_->flight() : nullptr;
  }

  /// The live time-series recorder; non-null iff `config.obs_window` is
  /// non-zero (and observing).
  [[nodiscard]] obs::LiveSeries* live_series() noexcept {
    return series_.get();
  }

  /// Attaches the streaming span destination (not owned). Must be wired
  /// before run() — completed requests flush incrementally, so spans routed
  /// while no sink is attached are gone. No-op when not observing.
  void set_span_sink(obs::SpanSink* sink) noexcept {
    if (tracer_ != nullptr) tracer_->set_sink(sink);
  }

  /// Attaches the streaming time-series destination (not owned); same
  /// wiring rule as set_span_sink(). No-op without a live recorder.
  void set_series_sink(obs::MetricSink* sink) noexcept {
    if (series_ != nullptr) series_->set_sink(sink);
  }

  /// Departs a peer through the full churn path (sessions, placement, ring,
  /// neighbor state, table).
  void depart_peer(net::PeerId peer);

  /// Adds a fresh peer (random capacity, hosts a few random instances).
  net::PeerId arrive_peer();

 private:
  void bootstrap();
  void handle_request(const core::ServiceRequest& request);
  void record_outcome(std::size_t window, bool success);
  /// Emits the setup-phase spans (discovery -> composition -> selection ->
  /// admission) of one aggregation attempt. `cause` is the attempt's
  /// outcome; `will_retry` marks a non-terminal admission failure.
  void trace_setup(std::uint64_t request_id, sim::SimTime now,
                   const core::AggregationPlan& plan,
                   core::FailureCause cause, bool will_retry, int attempt);
  /// Recovery policy: the downstream neighbor of the failed hop re-runs one
  /// dynamic-peer-selection step over the surviving providers.
  net::PeerId select_replacement(const session::Session& s,
                                 std::size_t position, net::PeerId failed);

  /// Adapts the discrete-event simulator's clock to the engine's time seam.
  struct SimClock final : engine::Clock {
    explicit SimClock(const sim::Simulator& s) noexcept : sim(&s) {}
    [[nodiscard]] sim::SimTime now() const override { return sim->now(); }
    const sim::Simulator* sim;
  };

  GridConfig config_;
  util::Interner interner_;
  registry::QosUniverse universe_;
  std::unique_ptr<qos::QosTranslator> translator_;
  registry::ServiceCatalog catalog_;
  std::unique_ptr<workload::ApplicationCatalog> apps_;

  sim::Simulator simulator_;
  SimClock sim_clock_{simulator_};
  std::unique_ptr<net::PeerTable> peers_;
  std::unique_ptr<net::NetworkModel> network_;
  std::unique_ptr<overlay::LookupService> ring_;
  registry::PlacementMap placement_;
  std::unique_ptr<registry::ServiceDirectory> directory_;
  // The --discovery=dht backend pair; null in directory mode (knobs-off
  // construction is unchanged).
  std::unique_ptr<index::AttributeIndex> index_;
  std::unique_ptr<index::DhtDiscovery> dht_;
  std::unique_ptr<probe::NeighborResolution> neighbors_;
  std::unique_ptr<engine::ServingEngine> engine_;
  std::unique_ptr<session::SessionManager> manager_;
  std::unique_ptr<core::PeerSelector> recovery_selector_;
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  std::unique_ptr<replica::ReplicaManager> replica_;

  util::Rng grid_rng_;
  util::Rng recovery_rng_;

  // Outcome accounting bucketed by arrival window.
  struct Window {
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
  };
  /// An admitted request whose outcome is still undecided.
  struct Pending {
    std::size_t window = 0;
    std::uint64_t trace = 0;  ///< request trace id (0 = untraced)
  };
  std::vector<Window> windows_;
  std::unordered_map<session::SessionId, Pending> pending_window_;
  GridResult result_;
  ProfileReport profile_;
  double composition_cost_sum_ = 0;
  std::uint64_t composed_ = 0;

  // Observability (only allocated when config.observe is set); the
  // histogram handles are resolved once at construction.
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::LiveSeries> series_;
  obs::Histogram* lookup_hops_hist_ = nullptr;
  obs::Histogram* setup_latency_hist_ = nullptr;
  obs::Histogram* composition_cost_hist_ = nullptr;
  obs::Histogram* path_length_hist_ = nullptr;
  // Windowed psi accounting for the live series (reset every obs window).
  std::uint64_t obs_window_attempts_ = 0;
  std::uint64_t obs_window_successes_ = 0;
};

}  // namespace qsa::harness
