// Configuration of one grid simulation, defaulted to the paper's Section 4.1
// setup (10^4 peers, 10 applications, 10-20 instances/service, 40-80
// providers/instance, M = 100, ...).
#pragma once

#include <cstdint>
#include <string>

#include "qsa/core/aggregate.hpp"
#include "qsa/engine/engine.hpp"
#include "qsa/fault/fault.hpp"
#include "qsa/net/network.hpp"
#include "qsa/replica/config.hpp"
#include "qsa/sim/time.hpp"
#include "qsa/workload/apps.hpp"
#include "qsa/workload/churn.hpp"
#include "qsa/workload/generator.hpp"

namespace qsa::harness {

/// The algorithm under test is an engine-level concept (the serving facade
/// constructs it with or without a simulation); the harness re-exports it
/// so existing configs keep reading naturally.
using AlgorithmKind = engine::AlgorithmKind;
using engine::to_string;

/// Which P2P lookup substrate the grid runs on. Section 3.2 names "Chord or
/// CAN"; Pastry is provided as a third structured option.
enum class OverlayKind : std::uint8_t { kChord, kCan, kPastry };

[[nodiscard]] std::string_view to_string(OverlayKind kind);

/// Which discovery backend answers tier-1a candidate lookups. kDirectory is
/// the flat per-service key lookup (the default; golden digests are pinned
/// to it); kDht swaps in the attribute index (qsa::index, DESIGN.md §15) —
/// range predicates pushed into the overlay, soft-state epoch expiry, no
/// requester-side cache.
enum class DiscoveryKind : std::uint8_t { kDirectory, kDht };

[[nodiscard]] std::string_view to_string(DiscoveryKind kind);

struct GridConfig {
  std::uint64_t seed = 42;

  // --- population ---
  std::size_t peers = 10'000;          ///< paper: 10^4
  double min_capacity = 100;           ///< per-kind units, paper: [100,100]
  double max_capacity = 1000;          ///< paper: [1000,1000]
  double max_initial_age_min = 180;    ///< pre-aged uptime at t=0

  // --- network model ---
  /// How pair latency/bandwidth derive from the seed: kPaper is the paper's
  /// i.i.d. per-pair hash (the default; golden digests are pinned to it),
  /// kCoords the synthetic-coordinate model (same marginals, geometric
  /// latency locality, per-peer derivation — the million-peer mode). See
  /// qsa/net/network.hpp and DESIGN.md §14.
  net::NetModelKind net_model = net::NetModelKind::kPaper;

  // --- placement ---
  int min_providers = 40;              ///< paper: 40 peers per instance
  int max_providers = 80;              ///< paper: 80
  int arrival_hosted_min = 2;          ///< instances a churn arrival hosts
  int arrival_hosted_max = 5;

  // --- probing & neighbor maintenance ---
  sim::SimTime probe_period = sim::SimTime::seconds(30);
  std::size_t probe_budget = 100;      ///< M; paper: 100 (1% of peers)
  sim::SimTime neighbor_ttl = sim::SimTime::minutes(90);

  // --- overlay ---
  OverlayKind overlay = OverlayKind::kChord;
  int chord_replicas = 4;
  sim::SimTime stabilize_period = sim::SimTime::seconds(30);
  double stabilize_fraction = 0.1;
  sim::SimTime republish_period = sim::SimTime::minutes(2);

  // --- applications & workload ---
  workload::AppCatalogParams apps;     ///< seeds are overridden from `seed`
  workload::RequestParams requests;
  workload::ChurnParams churn;

  // --- algorithm under test ---
  AlgorithmKind algorithm = AlgorithmKind::kQsa;
  core::QsaOptions qsa_options;
  /// Mid-session departure recovery (the paper's future-work extension):
  /// when a provisioning peer leaves, re-select a replacement host and
  /// migrate the reservations instead of aborting. Off by default — the
  /// paper's evaluation runs without it.
  bool enable_recovery = false;
  /// Admission retries: when a reservation fails (stale probe data made
  /// selection pick a peer that is actually full), re-run aggregation up to
  /// this many times excluding the blamed hosts. 0 = the paper's behaviour
  /// (one shot).
  int admission_retries = 0;
  /// Weight on the bandwidth term of Definition 3.1 and the Phi metric
  /// (w_{m+1} = omega_{m+1}); the remaining mass is split evenly across the
  /// end-system resource kinds. Negative = uniform over all m+1 terms (the
  /// paper's experiments distribute importance weights uniformly).
  double bandwidth_weight = -1;

  // --- caches (the aggregation fast path) ---
  /// Attach the compatibility/cost memo tables (qsa/cache) to the algorithm
  /// under test. Both memoize pure functions of immutable catalog state, so
  /// results are bit-identical on or off — on by default.
  bool compose_caches = true;
  /// TTL of the requester-side discovery cache: a fresh entry serves the
  /// last lookup's instance list with zero hops/latency. Zero (the default)
  /// disables it and keeps discovery accounting byte-identical to a build
  /// without the cache. Stale entries within the TTL are caught downstream
  /// (selection/admission), matching the paper's soft-state model.
  sim::SimTime discovery_cache_ttl = sim::SimTime::zero();

  // --- discovery backend (qsa::index; DESIGN.md §15) ---
  /// kDirectory (the default) keeps every knobs-off run byte-identical;
  /// kDht constructs the attribute index and routes candidate lookups
  /// through per-attribute range scans.
  DiscoveryKind discovery = DiscoveryKind::kDirectory;
  /// Republish epochs an index posting survives without a refresh before
  /// the expiry sweep reclaims it (kDht only). 2 tolerates one lost
  /// republish cycle.
  int index_expiry_epochs = 2;

  // --- replication (the third tier; DESIGN.md §10) ---
  /// Demand-driven replica management (see qsa/replica/config.hpp).
  /// Disabled by default: no manager is constructed, no events scheduled,
  /// and output stays byte-identical to a build without the subsystem.
  replica::ReplicaConfig replication;
  /// Provider-load concentration accounting in the session manager (peak
  /// concurrent sessions per host, provider.load* metrics). Implied by
  /// `replication.enabled`; settable on its own to measure the DESIGN §4
  /// hotspot without treating it. Off by default — tracked runs add
  /// load.provider_peak to the result counters and, when observing,
  /// provider.load* metric names.
  bool track_load = false;

  // --- fault injection ---
  /// Message loss/delay/retry knobs (see qsa/fault/fault.hpp). Defaults are
  /// fully off; a disabled config keeps every layer on the perfect-messaging
  /// fast path and the run byte-identical to one without the subsystem.
  fault::FaultConfig faults;

  // --- run control ---
  sim::SimTime horizon = sim::SimTime::minutes(400);
  sim::SimTime sample_period = sim::SimTime::minutes(2);

  /// Worker parallelism for the phases that are provably order-free: >1
  /// fans the bootstrap's overlay stabilization out over the shared pool
  /// (byte-identical output; see ChordRing::stabilize_all_on) and is the
  /// shard count the message-plane engine (ShardWorld/ShardRuntime) runs
  /// with. 1 (the default) never touches the pool.
  std::size_t shards = 1;

  // --- observability ---
  /// Attach the qsa::obs layer: per-request trace spans (Tracer) and the
  /// metrics registry (labeled counters/gauges/histograms). Off by default;
  /// when off, instrumentation compiles down to null-pointer tests and the
  /// run allocates nothing for observability.
  bool observe = false;

  /// Head-based trace sampling: keep 1-in-K finished request traces on the
  /// span sink, decided per request via derive_seed(seed,"obs",request_id)
  /// so the kept set is bit-identical across runs and ExperimentRunner
  /// thread counts. 0 or 1 (the default) keeps every trace. Aggregate
  /// accounting (GridResult failure counters, tracer phase/status counts)
  /// stays exact at any rate.
  std::uint32_t trace_sample = 1;

  /// Failure flight recorder: retain the complete span chains of the last K
  /// failed/recovered requests per failure cause, regardless of sampling.
  /// 0 (the default) disables the recorder.
  std::uint32_t flight_recorder = 0;

  /// Live time-series window: when `observe` is set and this is non-zero,
  /// sample windowed psi, event-queue depth, cache hit rates, replica and
  /// session counts (plus perf timers under `profile`) every window through
  /// obs::LiveSeries. Zero (the default) schedules no sampling event and
  /// keeps the run byte-identical to a build without the recorder.
  sim::SimTime obs_window = sim::SimTime::zero();

  /// Wall-clock phase profiling: times bootstrap and the event loop with the
  /// host's monotonic clock and — when `observe` provides a registry —
  /// exports `perf.wall_ms.{bootstrap,run}`, `perf.events_per_sec` and the
  /// `sim.queue_peak` capacity watermark as gauges. Off by default; the
  /// values are wall-clock (non-deterministic), so the gate keeps knobs-off
  /// output byte-identical.
  bool profile = false;

  /// Scales population-bound knobs (peer count, request rate, churn rate) by
  /// `factor`, preserving per-peer load and churned population fraction so
  /// the figures keep their shape at laptop scale.
  void scale(double factor);

  /// Reads QSA_SCALE (default `def`) and applies it.
  static double env_scale(double def = 1.0);
};

}  // namespace qsa::harness
