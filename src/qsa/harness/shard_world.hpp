// The sharded message-plane workload: every interaction the grid's peers
// have — QoS probes, neighbor notifies, overlay lookups, bandwidth
// reservations — expressed as explicit peer-to-peer messages over the real
// NetworkModel and the real overlay router, executed on sim::ShardRuntime.
//
// This is the model that carries the parallel-simulation guarantees:
//
//  * K-invariance. All mutable state is per-peer; a handler writes only the
//    destination peer of the message it is executing (pair-scoped
//    reservation state lives on the lower-id endpoint, which owns the
//    pair). Every send carries a key derived from (sender peer, per-peer
//    send counter), so the (time, key) total order — and therefore the
//    merged result digest — is byte-identical for every shard count.
//    Shared read-only structures (the network model's pure latency/capacity
//    hashes, the overlay's const route()) are safe to touch from any shard.
//
//  * Conservative lookahead. Every message delay is
//    max(min_delay, net latency) >= NetworkModel::min_latency(), which is
//    exactly the lookahead handed to the runtime; raising `min_delay` (and
//    overriding the lookahead) widens the epoch window — the lookahead
//    correctness test exercises both directions.
//
// Message loss is derived sender-side from a pure hash of
// (seed, pair, channel, per-peer attempt counter) — the same
// bit-reproducible idiom as qsa::fault, restated here because FaultPlan's
// per-channel attempt sequence is process-global mutable state and handlers
// may only touch per-peer state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "qsa/harness/config.hpp"
#include "qsa/net/network.hpp"
#include "qsa/overlay/lookup.hpp"
#include "qsa/sim/shard_runtime.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::obs {
class MetricsRegistry;
}

namespace qsa::harness {

struct ShardWorldConfig {
  std::uint64_t seed = 42;
  std::size_t peers = 512;
  std::size_t shards = 1;
  OverlayKind overlay = OverlayKind::kChord;
  net::NetModelKind net_model = net::NetModelKind::kPaper;
  sim::SimTime horizon = sim::SimTime::seconds(60);

  // --- workload shape ---
  sim::SimTime tick_period = sim::SimTime::millis(500);
  int probe_fanout = 3;     ///< probe targets per tick
  int lookup_every = 4;     ///< ticks between overlay lookups
  int reserve_every = 8;    ///< ticks between reservation attempts
  sim::SimTime reserve_hold = sim::SimTime::seconds(5);
  double reserve_kbps = 64.0;

  // --- faults (message-plane loss; pure-hash, bit-reproducible) ---
  bool faults = false;
  double loss = 0.05;

  // --- lookahead controls ---
  /// Floor on every message delay (>= 1 ms). The conservative window is
  /// max(min_delay, NetworkModel::min_latency()) unless overridden.
  sim::SimTime min_delay = sim::SimTime::millis(1);
  /// Non-zero: run the epochs with this lookahead instead of the derived
  /// one. Must not exceed the true delay floor (asserted) — a *smaller*
  /// value stays correct and just forces narrower windows, which is what
  /// the lookahead-correctness test measures.
  sim::SimTime lookahead_override = sim::SimTime::zero();
  std::size_t mailbox_capacity = 1024;
};

struct ShardWorldResult {
  std::uint64_t digest = 0;  ///< order-sensitive merge of per-peer state
  std::uint64_t events = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_acked = 0;
  std::uint64_t drops = 0;
  std::uint64_t notifies = 0;
  std::uint64_t lookups = 0;
  std::uint64_t hops = 0;
  std::uint64_t grants = 0;
  std::uint64_t denials = 0;
  double score_sum = 0.0;
  sim::ShardRuntime::Stats runtime;
};

class ShardWorld final : public sim::ShardHandler {
 public:
  explicit ShardWorld(const ShardWorldConfig& cfg);
  ~ShardWorld() override;

  /// Runs to the configured horizon and merges per-peer state in peer-id
  /// order. `metrics` (optional) receives the per-shard runtime counters:
  /// sim.barrier_epochs, sim.shard_idle_ms, sim.mailbox_high_water,
  /// sim.shard_events.<s>.
  ShardWorldResult run(obs::MetricsRegistry* metrics = nullptr);

  /// The effective conservative window (derived or overridden).
  [[nodiscard]] sim::SimTime lookahead() const noexcept { return lookahead_; }
  /// The owning shard of each peer (hash of id, or coordinate stripes under
  /// kCoords). Exposed for tests.
  [[nodiscard]] const std::vector<std::uint16_t>& shard_map() const noexcept {
    return shard_map_;
  }

  void on_message(sim::ShardContext& ctx, const sim::ShardMessage& m) override;

 private:
  struct PeerState;

  [[nodiscard]] std::uint64_t next_key(PeerState& ps,
                                       std::uint32_t peer) noexcept;
  [[nodiscard]] sim::SimTime delay(net::PeerId a, net::PeerId b) const;
  /// Sender-side loss verdict; advances the sender's attempt counter.
  [[nodiscard]] bool dropped(PeerState& sender, net::PeerId a, net::PeerId b,
                             std::uint32_t kind);

  void on_tick(sim::ShardContext& ctx, const sim::ShardMessage& m);
  void on_probe_req(sim::ShardContext& ctx, const sim::ShardMessage& m);
  void on_probe_rsp(const sim::ShardMessage& m);
  void on_reserve_req(sim::ShardContext& ctx, const sim::ShardMessage& m);

  ShardWorldConfig cfg_;
  sim::SimTime lookahead_;
  net::NetworkModel net_;
  std::unique_ptr<overlay::LookupService> overlay_;
  std::vector<std::uint16_t> shard_map_;
  std::vector<PeerState> peers_;
  std::unique_ptr<sim::ShardRuntime> runtime_;
};

}  // namespace qsa::harness
