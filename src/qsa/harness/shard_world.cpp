#include "qsa/harness/shard_world.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "qsa/obs/registry.hpp"
#include "qsa/overlay/can_overlay.hpp"
#include "qsa/overlay/chord_ring.hpp"
#include "qsa/overlay/pastry_overlay.hpp"
#include "qsa/util/expects.hpp"
#include "qsa/util/thread_pool.hpp"

namespace qsa::harness {

namespace {

/// Message discriminators. Values are digest-stable: they feed the fault
/// hash, so renumbering would change fault verdicts.
enum MsgKind : std::uint32_t {
  kTick = 1,        ///< per-peer heartbeat (self-message)
  kProbeReq = 2,    ///< QoS probe toward a random target
  kProbeRsp = 3,    ///< probe reply carrying the target's load
  kNotify = 4,      ///< freshness notify to the id-successor
  kLookupReq = 5,   ///< message to the overlay-resolved owner of a key
  kLookupRsp = 6,   ///< owner's reply
  kReserveReq = 7,  ///< bandwidth reservation ask, sent to the pair owner
  kReserveRsp = 8,  ///< grant / denial
  kRelease = 9      ///< owner-side hold expiry (self-message)
};

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= 0x100000001B3ull;
  }
  return h;
}

[[nodiscard]] std::uint64_t fnv1a_f64(std::uint64_t h, double v) noexcept {
  return fnv1a(h, std::bit_cast<std::uint64_t>(v));
}

[[nodiscard]] double uniform01(std::uint64_t h) noexcept {
  return static_cast<double>(util::mix64(h) >> 11) * 0x1.0p-53;
}

}  // namespace

/// All mutable simulation state, owned by exactly one peer. Handlers write
/// only the state of the message's destination peer — the contract that
/// makes equal-time events on different shards commute.
struct ShardWorld::PeerState {
  util::Rng rng;
  std::uint32_t send_seq = 0;   ///< key material: per-peer send counter
  std::uint32_t fault_seq = 0;  ///< per-peer loss-verdict attempt counter
  std::uint32_t ticks = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_rx = 0;
  std::uint64_t probes_acked = 0;
  std::uint64_t drops = 0;
  std::uint64_t notifies_rx = 0;
  std::uint64_t notify_digest = 0;
  std::uint64_t lookups_done = 0;
  std::uint64_t lookups_served = 0;
  std::uint64_t hops = 0;
  std::uint64_t grants = 0;
  std::uint64_t denials = 0;
  std::uint64_t releases = 0;
  double score_sum = 0.0;
  /// Owner-side reservation ledger for pairs whose lower id is this peer.
  struct Held {
    std::uint64_t pair = 0;
    double kbps = 0.0;
  };
  std::vector<Held> held;
  double reserved_kbps = 0.0;
};

ShardWorld::ShardWorld(const ShardWorldConfig& cfg)
    : cfg_(cfg), net_(cfg.seed, net::ProbeClock(), cfg.net_model) {
  QSA_EXPECTS(cfg_.peers >= 2);
  QSA_EXPECTS(cfg_.peers < (1u << 21));  // peer id must fit under the key seq
  QSA_EXPECTS(cfg_.shards >= 1 && cfg_.shards <= cfg_.peers);
  QSA_EXPECTS(cfg_.shards < 65536);
  QSA_EXPECTS(cfg_.min_delay >= sim::SimTime::millis(1));
  QSA_EXPECTS(cfg_.tick_period >= sim::SimTime::millis(1));

  switch (cfg_.overlay) {
    case OverlayKind::kChord:
      overlay_ = std::make_unique<overlay::ChordRing>(cfg_.seed);
      break;
    case OverlayKind::kCan:
      overlay_ = std::make_unique<overlay::CanOverlay>(cfg_.seed);
      break;
    case OverlayKind::kPastry:
      overlay_ = std::make_unique<overlay::PastryOverlay>(cfg_.seed);
      break;
  }
  for (std::size_t p = 0; p < cfg_.peers; ++p) {
    overlay_->join_deferred(static_cast<net::PeerId>(p));
  }
  overlay_->stabilize_all();

  // Partition: coordinate stripes under kCoords (peers near in latency
  // space land on the same shard, minimizing mailbox traffic), stable hash
  // of the id otherwise.
  shard_map_.resize(cfg_.peers);
  for (std::size_t p = 0; p < cfg_.peers; ++p) {
    if (cfg_.net_model == net::NetModelKind::kCoords) {
      const double x = net_.coordinate(static_cast<net::PeerId>(p)).first;
      auto stripe = static_cast<std::size_t>(x * static_cast<double>(cfg_.shards));
      shard_map_[p] =
          static_cast<std::uint16_t>(std::min(stripe, cfg_.shards - 1));
    } else {
      shard_map_[p] = static_cast<std::uint16_t>(
          util::derive_seed(cfg_.seed, "shard-of", p) % cfg_.shards);
    }
  }

  peers_.resize(cfg_.peers);
  for (std::size_t p = 0; p < cfg_.peers; ++p) {
    peers_[p].rng.reseed(util::derive_seed(cfg_.seed, "shard-peer", p));
  }

  const sim::SimTime derived =
      std::max(cfg_.min_delay, net::NetworkModel::min_latency());
  if (cfg_.lookahead_override > sim::SimTime::zero()) {
    // A smaller-than-necessary lookahead stays correct (narrower windows,
    // more epochs); a larger one would break conservativeness.
    QSA_EXPECTS(cfg_.lookahead_override <= derived);
    lookahead_ = cfg_.lookahead_override;
  } else {
    lookahead_ = derived;
  }

  sim::ShardRuntime::Config rc;
  rc.shards = cfg_.shards;
  rc.lookahead = lookahead_;
  rc.mailbox_capacity = cfg_.mailbox_capacity;
  std::vector<sim::ShardHandler*> handlers(cfg_.shards, this);
  runtime_ = std::make_unique<sim::ShardRuntime>(
      rc, shard_map_, std::move(handlers),
      cfg_.shards > 1 ? &util::shared_pool() : nullptr);

  // Stagger the heartbeats across one period so load is flat from t=0.
  const std::int64_t tick_ms = cfg_.tick_period.as_millis();
  for (std::size_t p = 0; p < cfg_.peers; ++p) {
    sim::ShardMessage m;
    m.at = sim::SimTime::millis(1 + static_cast<std::int64_t>(p) % tick_ms);
    m.kind = kTick;
    m.dst_peer = static_cast<std::uint32_t>(p);
    m.src_peer = m.dst_peer;
    m.key = next_key(peers_[p], m.dst_peer);
    runtime_->inject(m);
  }
}

ShardWorld::~ShardWorld() = default;

std::uint64_t ShardWorld::next_key(PeerState& ps,
                                   std::uint32_t peer) noexcept {
  // Globally unique: peer in the low 21 bits, the peer's own send counter
  // above. Derived from simulation state only — never from enqueue order —
  // so the (time, key) total order is the same for every K.
  return (static_cast<std::uint64_t>(ps.send_seq++) << 21) | peer;
}

sim::SimTime ShardWorld::delay(net::PeerId a, net::PeerId b) const {
  return std::max(cfg_.min_delay, net_.latency(a, b));
}

bool ShardWorld::dropped(PeerState& sender, net::PeerId a, net::PeerId b,
                         std::uint32_t kind) {
  if (!cfg_.faults) return false;
  const std::uint64_t h =
      util::derive_seed(cfg_.seed, "shard-fault", net::NetworkModel::pair_key(a, b),
                        util::hash_combine(kind, sender.fault_seq++));
  if (uniform01(h) >= cfg_.loss) return false;
  ++sender.drops;
  return true;
}

void ShardWorld::on_message(sim::ShardContext& ctx,
                            const sim::ShardMessage& m) {
  PeerState& ps = peers_[m.dst_peer];
  switch (m.kind) {
    case kTick:
      on_tick(ctx, m);
      break;
    case kProbeReq:
      on_probe_req(ctx, m);
      break;
    case kProbeRsp:
      on_probe_rsp(m);
      break;
    case kNotify:
      ++ps.notifies_rx;
      ps.notify_digest = util::hash_combine(
          ps.notify_digest, util::hash_combine(m.src_peer, m.a));
      break;
    case kLookupReq: {
      ++ps.lookups_served;
      if (!dropped(ps, m.dst_peer, m.src_peer, kLookupRsp)) {
        sim::ShardMessage rsp;
        rsp.at = ctx.now() + delay(m.dst_peer, m.src_peer);
        rsp.kind = kLookupRsp;
        rsp.dst_peer = m.src_peer;
        rsp.src_peer = m.dst_peer;
        rsp.key = next_key(ps, m.dst_peer);
        ctx.send(rsp);
      }
      break;
    }
    case kLookupRsp:
      ++ps.lookups_done;
      break;
    case kReserveReq:
      on_reserve_req(ctx, m);
      break;
    case kReserveRsp:
      if (m.a != 0) {
        ++ps.grants;
      } else {
        ++ps.denials;
      }
      break;
    case kRelease: {
      for (std::size_t i = 0; i < ps.held.size(); ++i) {
        if (ps.held[i].pair == m.a) {
          ps.reserved_kbps -= ps.held[i].kbps;
          ps.held.erase(ps.held.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      ++ps.releases;
      break;
    }
    default:
      QSA_ASSERT(false);
  }
}

void ShardWorld::on_tick(sim::ShardContext& ctx, const sim::ShardMessage& m) {
  const auto p = m.dst_peer;
  PeerState& ps = peers_[p];
  const auto n = static_cast<std::uint32_t>(cfg_.peers);
  ++ps.ticks;

  // QoS probes toward random targets.
  for (int f = 0; f < cfg_.probe_fanout; ++f) {
    auto q = static_cast<std::uint32_t>(ps.rng.index(n - 1));
    if (q >= p) ++q;
    ++ps.probes_sent;
    if (dropped(ps, p, q, kProbeReq)) continue;
    sim::ShardMessage probe;
    probe.at = ctx.now() + delay(p, q);
    probe.kind = kProbeReq;
    probe.dst_peer = q;
    probe.src_peer = p;
    probe.key = next_key(ps, p);
    ctx.send(probe);
  }

  // Freshness notify to the id-successor (a ring of long-lived edges — the
  // traffic pattern coordinate striping keeps mostly intra-shard).
  {
    const std::uint32_t succ = (p + 1) % n;
    if (!dropped(ps, p, succ, kNotify)) {
      sim::ShardMessage notify;
      notify.at = ctx.now() + delay(p, succ);
      notify.kind = kNotify;
      notify.dst_peer = succ;
      notify.src_peer = p;
      notify.a = static_cast<std::uint64_t>(ctx.now().as_millis());
      notify.key = next_key(ps, p);
      ctx.send(notify);
    }
  }

  // Overlay lookup: route on the real (read-only) overlay, then message the
  // owner with the routed latency.
  if (cfg_.lookup_every > 0 &&
      ps.ticks % static_cast<std::uint32_t>(cfg_.lookup_every) == 0) {
    const overlay::Key key = ps.rng();
    const overlay::LookupStats st = overlay_->route(key, p, &net_);
    if (st.ok()) {
      ps.hops += static_cast<std::uint64_t>(st.hops);
      if (!dropped(ps, p, st.owner, kLookupReq)) {
        sim::ShardMessage req;
        req.at = ctx.now() + std::max(delay(p, st.owner), st.latency);
        req.kind = kLookupReq;
        req.dst_peer = st.owner;
        req.src_peer = p;
        req.key = next_key(ps, p);
        ctx.send(req);
      }
    }
  }

  // Bandwidth reservation on a random pair, asked of the pair's owner (the
  // lower-id endpoint, which holds the pair's ledger slice).
  if (cfg_.reserve_every > 0 &&
      ps.ticks % static_cast<std::uint32_t>(cfg_.reserve_every) == 0) {
    auto q = static_cast<std::uint32_t>(ps.rng.index(n - 1));
    if (q >= p) ++q;
    const std::uint32_t owner = std::min(p, q);
    if (!dropped(ps, p, owner, kReserveReq)) {
      sim::ShardMessage req;
      req.at = ctx.now() + delay(p, owner);
      req.kind = kReserveReq;
      req.dst_peer = owner;
      req.src_peer = p;
      req.a = std::max(p, q);  // the pair's other endpoint
      req.x = cfg_.reserve_kbps;
      req.key = next_key(ps, p);
      ctx.send(req);
    }
  }

  // Re-arm while another tick still lands inside the horizon.
  if (ctx.now() + cfg_.tick_period <= cfg_.horizon) {
    sim::ShardMessage tick;
    tick.at = ctx.now() + cfg_.tick_period;
    tick.kind = kTick;
    tick.dst_peer = p;
    tick.src_peer = p;
    tick.key = next_key(ps, p);
    ctx.send(tick);
  }
}

void ShardWorld::on_probe_req(sim::ShardContext& ctx,
                              const sim::ShardMessage& m) {
  PeerState& ps = peers_[m.dst_peer];
  ++ps.probes_rx;
  if (dropped(ps, m.dst_peer, m.src_peer, kProbeRsp)) return;
  sim::ShardMessage rsp;
  rsp.at = ctx.now() + delay(m.dst_peer, m.src_peer);
  rsp.kind = kProbeRsp;
  rsp.dst_peer = m.src_peer;
  rsp.src_peer = m.dst_peer;
  // The probed load snapshot: grants weigh more than probe chatter.
  rsp.x = static_cast<double>(ps.probes_rx) * 0.125 +
          static_cast<double>(ps.grants + ps.lookups_served) + ps.reserved_kbps / 64.0;
  rsp.key = next_key(ps, m.dst_peer);
  ctx.send(rsp);
}

void ShardWorld::on_probe_rsp(const sim::ShardMessage& m) {
  // Φ-style scoring (Definition 3.1's shape): normalized headroom over the
  // resource kinds plus a bandwidth term, weighted evenly. Pure arithmetic
  // on IEEE doubles — bit-stable across shard counts because each peer
  // accumulates its responses in (time, key) order.
  PeerState& ps = peers_[m.dst_peer];
  ++ps.probes_acked;
  const double avail = 1.0 / (1.0 + m.x);
  double kinds = 0.0;
  for (int k = 0; k < 4; ++k) {
    const double r = avail * (1.0 + 0.25 * static_cast<double>(k));
    kinds += 0.25 * (r / (1.0 + r));
  }
  const double cap = net_.capacity_kbps(m.dst_peer, m.src_peer);
  const double bw = cap / (cap + 500.0);
  ps.score_sum += 0.5 * kinds + 0.5 * bw * avail;
}

void ShardWorld::on_reserve_req(sim::ShardContext& ctx,
                                const sim::ShardMessage& m) {
  PeerState& ps = peers_[m.dst_peer];
  const std::uint32_t requester = m.src_peer;
  const auto partner = static_cast<std::uint32_t>(m.a);
  const std::uint64_t pair = net::NetworkModel::pair_key(requester, partner);
  double in_use = 0.0;
  for (const PeerState::Held& h : ps.held) {
    if (h.pair == pair) in_use += h.kbps;
  }
  const bool grant =
      in_use + m.x <= net_.capacity_kbps(requester, partner);
  if (grant) {
    ps.held.push_back(PeerState::Held{pair, m.x});
    ps.reserved_kbps += m.x;
    sim::ShardMessage release;
    release.at = ctx.now() + cfg_.reserve_hold;
    release.kind = kRelease;
    release.dst_peer = m.dst_peer;
    release.src_peer = m.dst_peer;
    release.a = pair;
    release.key = next_key(ps, m.dst_peer);
    ctx.send(release);
  }
  if (!dropped(ps, m.dst_peer, requester, kReserveRsp)) {
    sim::ShardMessage rsp;
    rsp.at = ctx.now() + delay(m.dst_peer, requester);
    rsp.kind = kReserveRsp;
    rsp.dst_peer = requester;
    rsp.src_peer = m.dst_peer;
    rsp.a = grant ? 1 : 0;
    rsp.key = next_key(ps, m.dst_peer);
    ctx.send(rsp);
  }
}

ShardWorldResult ShardWorld::run(obs::MetricsRegistry* metrics) {
  runtime_->run(cfg_.horizon);
  const sim::ShardRuntime::Stats& rs = runtime_->stats();

  ShardWorldResult r;
  r.runtime = rs;
  r.events = rs.events;
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    const PeerState& ps = peers_[p];
    h = fnv1a(h, p);
    h = fnv1a(h, ps.ticks);
    h = fnv1a(h, ps.send_seq);
    h = fnv1a(h, ps.fault_seq);
    h = fnv1a(h, ps.probes_sent);
    h = fnv1a(h, ps.probes_rx);
    h = fnv1a(h, ps.probes_acked);
    h = fnv1a(h, ps.drops);
    h = fnv1a(h, ps.notifies_rx);
    h = fnv1a(h, ps.notify_digest);
    h = fnv1a(h, ps.lookups_done);
    h = fnv1a(h, ps.lookups_served);
    h = fnv1a(h, ps.hops);
    h = fnv1a(h, ps.grants);
    h = fnv1a(h, ps.denials);
    h = fnv1a(h, ps.releases);
    h = fnv1a_f64(h, ps.score_sum);
    h = fnv1a_f64(h, ps.reserved_kbps);
    r.probes_sent += ps.probes_sent;
    r.probes_acked += ps.probes_acked;
    r.drops += ps.drops;
    r.notifies += ps.notifies_rx;
    r.lookups += ps.lookups_done;
    r.hops += ps.hops;
    r.grants += ps.grants;
    r.denials += ps.denials;
    r.score_sum += ps.score_sum;
  }
  r.digest = h;

  if (metrics != nullptr) {
    metrics->counter("sim.barrier_epochs").add(rs.epochs);
    metrics->counter("sim.cross_shard_msgs").add(rs.cross_shard);
    metrics->counter("sim.mailbox_spills").add(rs.spilled);
    metrics->set("sim.shard_idle_ms", rs.idle_ms);
    metrics->set("sim.mailbox_high_water",
                 static_cast<double>(rs.mailbox_high_water));
    for (std::size_t s = 0; s < rs.shard_events.size(); ++s) {
      metrics->counter("sim.shard_events." + std::to_string(s))
          .add(rs.shard_events[s]);
    }
  }
  return r;
}

}  // namespace qsa::harness
