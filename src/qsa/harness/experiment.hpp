// Experiment runner: executes a list of independent GridConfigs (sweep
// points x algorithms x replications) across a thread pool and returns
// results in input order — bit-identical regardless of thread count, since
// every simulation is self-seeded and single-threaded.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "qsa/harness/config.hpp"
#include "qsa/harness/grid.hpp"

namespace qsa::harness {

struct ExperimentCell {
  std::string label;
  GridConfig config;
};

struct ExperimentResult {
  std::string label;
  GridResult result;
  /// Deterministic observability sidecars, filled iff the cell's config set
  /// `observe`: the metrics registry as sorted-key JSON, the (sampled)
  /// request trace as JSON lines streamed through a StringSpanSink, the
  /// live time-series as CSV (when `obs_window` is set) and the flight
  /// recorder's retained chains as JSON lines (when `flight_recorder` is
  /// set). Byte-identical across runner thread counts (every simulation is
  /// self-seeded, single-threaded, and sim-time-stamped; sampling is a pure
  /// function of seed and request id).
  std::string metrics_json;
  std::string trace_jsonl;
  std::string series_csv;
  std::string flight_jsonl;
};

class ExperimentRunner {
 public:
  /// `threads` = 0: the process-wide shared pool (one worker per hardware
  /// thread); an explicit count gets a dedicated pool of that size.
  explicit ExperimentRunner(std::size_t threads = 0) : threads_(threads) {}

  [[nodiscard]] std::vector<ExperimentResult> run(
      std::span<const ExperimentCell> cells) const;

 private:
  std::size_t threads_;
};

/// Builds the three algorithm variants of one configuration (the standard
/// QSA / random / fixed comparison every figure plots).
[[nodiscard]] std::vector<ExperimentCell> algorithm_comparison(
    const GridConfig& base, std::string_view label_prefix = "");

}  // namespace qsa::harness
