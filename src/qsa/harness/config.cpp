#include "qsa/harness/config.hpp"

#include <algorithm>
#include <cstdlib>

#include "qsa/util/expects.hpp"

namespace qsa::harness {

std::string_view to_string(OverlayKind kind) {
  switch (kind) {
    case OverlayKind::kChord:
      return "chord";
    case OverlayKind::kCan:
      return "can";
    case OverlayKind::kPastry:
      return "pastry";
  }
  return "?";
}

std::string_view to_string(DiscoveryKind kind) {
  switch (kind) {
    case DiscoveryKind::kDirectory:
      return "directory";
    case DiscoveryKind::kDht:
      return "dht";
  }
  return "?";
}

void GridConfig::scale(double factor) {
  QSA_EXPECTS(factor > 0);
  peers = std::max<std::size_t>(
      200, static_cast<std::size_t>(static_cast<double>(peers) * factor));
  requests.rate_per_min *= factor;
  churn.events_per_min *= factor;
}

double GridConfig::env_scale(double def) {
  if (const char* env = std::getenv("QSA_SCALE")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0) return v;
  }
  return def;
}

}  // namespace qsa::harness
