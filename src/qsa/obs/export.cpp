#include "qsa/obs/export.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstring>
#include <ostream>
#include <sstream>

namespace qsa::obs {
namespace {

// Shortest round-trip decimal form — deterministic, locale-independent.
void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_histogram_json(std::string& out, const Histogram& h) {
  out += "{\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (h.buckets()[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[';
    append_u64(out, i);
    out += ',';
    append_u64(out, h.buckets()[i]);
    out += ']';
  }
  out += "],\"count\":";
  append_u64(out, h.count());
  out += ",\"max\":";
  append_double(out, h.max());
  out += ",\"mean\":";
  append_double(out, h.mean());
  out += ",\"min\":";
  append_double(out, h.min());
  out += ",\"p50\":";
  append_double(out, h.p50());
  out += ",\"p90\":";
  append_double(out, h.p90());
  out += ",\"p99\":";
  append_double(out, h.p99());
  out += ",\"sum\":";
  append_double(out, h.sum());
  out += '}';
}

}  // namespace

// Metric/cause names are identifier-like; escape everything JSON requires
// anyway — quotes, backslashes and all control characters — so the emitter
// is safe for any input and the output always parses.
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_span_json(std::string& out, const Span& span) {
  out += '{';
  if (!span.attrs.empty()) {
    // Keys in sorted order, like every other object in the export.
    std::array<SpanAttr, 6> attrs{};
    const std::size_t n = span.attrs.size();
    std::copy(span.attrs.begin(), span.attrs.end(), attrs.begin());
    // Insertion sort: at most six keys, and std::sort on this tiny range
    // trips GCC 12's -Warray-bounds.
    for (std::size_t i = 1; i < n; ++i) {
      SpanAttr key = attrs[i];
      std::size_t j = i;
      while (j > 0 && std::strcmp(attrs[j - 1].key, key.key) > 0) {
        attrs[j] = attrs[j - 1];
        --j;
      }
      attrs[j] = key;
    }
    out += "\"attrs\":{";
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) out += ',';
      append_json_string(out, attrs[i].key);
      out += ':';
      append_double(out, attrs[i].value);
    }
    out += "},";
  }
  out += "\"begin_ms\":";
  append_i64(out, span.begin.as_millis());
  if (!span.cause.empty()) {
    out += ",\"cause\":";
    append_json_string(out, span.cause);
  }
  out += ",\"end_ms\":";
  append_i64(out, span.end.as_millis());
  out += ",\"phase\":";
  append_json_string(out, to_string(span.phase));
  out += ",\"request\":";
  append_u64(out, span.request);
  out += ",\"status\":";
  append_json_string(out, to_string(span.status));
  out += '}';
}

std::string to_json(const Span& span) {
  std::string out;
  append_span_json(out, span);
  return out;
}

std::string metrics_json(const MetricsRegistry& registry) {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : registry.counters()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_u64(out, c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : registry.gauges()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"high_water\":";
    append_double(out, g.high_water);
    out += ",\"value\":";
    append_double(out, g.value);
    out += '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : registry.histograms()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_histogram_json(out, h);
  }
  out += "}}\n";
  return out;
}

void write_metrics_json(const MetricsRegistry& registry, std::ostream& os) {
  os << metrics_json(registry);
}

std::string metrics_csv(const MetricsRegistry& registry) {
  std::string out = "kind,name,field,value\n";
  auto row = [&out](std::string_view kind, std::string_view name,
                    std::string_view field, double v) {
    out += kind;
    out += ',';
    out += name;
    out += ',';
    out += field;
    out += ',';
    append_double(out, v);
    out += '\n';
  };
  for (const auto& [name, c] : registry.counters()) {
    out += "counter,";
    out += name;
    out += ",value,";
    append_u64(out, c.value);
    out += '\n';
  }
  for (const auto& [name, g] : registry.gauges()) {
    row("gauge", name, "value", g.value);
    row("gauge", name, "high_water", g.high_water);
  }
  for (const auto& [name, h] : registry.histograms()) {
    row("histogram", name, "count", static_cast<double>(h.count()));
    row("histogram", name, "sum", h.sum());
    row("histogram", name, "min", h.min());
    row("histogram", name, "max", h.max());
    row("histogram", name, "mean", h.mean());
    row("histogram", name, "p50", h.p50());
    row("histogram", name, "p90", h.p90());
    row("histogram", name, "p99", h.p99());
  }
  return out;
}

void write_metrics_csv(const MetricsRegistry& registry, std::ostream& os) {
  os << metrics_csv(registry);
}

}  // namespace qsa::obs
