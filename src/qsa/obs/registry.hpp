// The metrics registry: named counters, gauges and histograms for one
// simulation run. Names follow the `subsystem.metric` convention
// (e.g. "probe.rtt_ms", "session.duration_ms").
//
// Hot-path design: instrumented subsystems resolve a handle (Counter*,
// Gauge*, Histogram*) once at wiring time and keep a null pointer when no
// registry is attached — the disabled path is a single pointer test, no
// lookup, no allocation. Handles stay valid for the registry's lifetime
// (node-based storage). Iteration is name-ordered, so every exporter is
// deterministic by construction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "qsa/obs/histogram.hpp"

namespace qsa::obs {

struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t delta = 1) noexcept { value += delta; }
};

/// A sampled level; tracks its high-water mark across the run.
struct Gauge {
  double value = 0;
  double high_water = 0;
  void set(double v) noexcept {
    value = v;
    if (v > high_water) high_water = v;
  }
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. The returned reference is
  /// stable for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // One-shot conveniences (lookup per call; fine off the hot path).
  void add(std::string_view name, std::uint64_t delta = 1) {
    counter(name).add(delta);
  }
  void set(std::string_view name, double v) { gauge(name).set(v); }
  void observe(std::string_view name, double v) { histogram(name).observe(v); }

  using CounterMap = std::map<std::string, Counter, std::less<>>;
  using GaugeMap = std::map<std::string, Gauge, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram, std::less<>>;

  [[nodiscard]] const CounterMap& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const GaugeMap& gauges() const noexcept { return gauges_; }
  [[nodiscard]] const HistogramMap& histograms() const noexcept {
    return histograms_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  void clear();

 private:
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

}  // namespace qsa::obs
