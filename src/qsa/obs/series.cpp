#include "qsa/obs/series.hpp"

#include "qsa/obs/sink.hpp"

namespace qsa::obs {

LiveSeries::Entry& LiveSeries::entry_for(std::string_view name) {
  for (Entry& e : entries_) {
    if (e.name == name) return e;
  }
  entries_.push_back(Entry{name, {}, {}});
  return entries_.back();
}

void LiveSeries::track(std::string_view name, Probe probe) {
  entry_for(name).probe = std::move(probe);
}

void LiveSeries::push(std::string_view name, sim::SimTime now, double value) {
  // Resolve the index before taking the reference: entry_for may grow the
  // vector, and rows_ stores indices precisely so growth is safe.
  Entry& e = entry_for(name);
  const std::size_t index = static_cast<std::size_t>(&e - entries_.data());
  e.data.record(now, value);
  rows_.emplace_back(index, metrics::Sample{now, value});
  ++samples_;
  if (sink_ != nullptr) sink_->on_sample(name, now, value);
}

void LiveSeries::sample(sim::SimTime now) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (!e.probe) continue;
    const double value = e.probe();
    e.data.record(now, value);
    rows_.emplace_back(i, metrics::Sample{now, value});
    ++samples_;
    if (sink_ != nullptr) sink_->on_sample(e.name, now, value);
  }
}

const metrics::TimeSeries* LiveSeries::series(
    std::string_view name) const noexcept {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e.data;
  }
  return nullptr;
}

std::string LiveSeries::csv() const {
  StringMetricSink sink;
  for (const auto& [index, sample] : rows_) {
    sink.on_sample(entries_[index].name, sample.time, sample.value);
  }
  return sink.str();
}

}  // namespace qsa::obs
