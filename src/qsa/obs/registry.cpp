#include "qsa/obs/registry.hpp"

namespace qsa::obs {

namespace {

// Heterogeneous find-or-emplace: only allocates the key string on first use
// of a name.
template <typename Map>
auto& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), typename Map::mapped_type{}).first;
  }
  return it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return find_or_create(histograms_, name);
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace qsa::obs
