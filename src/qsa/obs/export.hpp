// Deterministic exporters for the observability layer.
//
// All output is byte-reproducible for a given run: object keys are emitted
// in sorted order, instruments iterate name-ordered, timestamps are sim-time
// milliseconds only (never wall clock), and doubles are rendered with
// std::to_chars shortest round-trip form. Two runs with the same seed — or
// the same cells executed under any ExperimentRunner thread count — produce
// identical bytes.
//
// Formats:
//   - trace:   JSON lines, one span per line, in span-creation order.
//   - metrics: one JSON object {"counters":{},"gauges":{},"histograms":{}},
//              or flat CSV rows `kind,name,field,value`.
#pragma once

#include <iosfwd>
#include <string>

#include "qsa/obs/registry.hpp"
#include "qsa/obs/trace.hpp"

namespace qsa::obs {

/// One span as a single JSON line (no trailing newline).
[[nodiscard]] std::string to_json(const Span& span);

/// All spans, one JSON object per line (JSONL).
void write_trace_jsonl(const Tracer& tracer, std::ostream& os);
[[nodiscard]] std::string trace_jsonl(const Tracer& tracer);

/// The registry as one sorted-key JSON document (trailing newline).
void write_metrics_json(const MetricsRegistry& registry, std::ostream& os);
[[nodiscard]] std::string metrics_json(const MetricsRegistry& registry);

/// The registry as CSV rows `kind,name,field,value` (header included).
void write_metrics_csv(const MetricsRegistry& registry, std::ostream& os);
[[nodiscard]] std::string metrics_csv(const MetricsRegistry& registry);

}  // namespace qsa::obs
