// Deterministic exporters for the observability layer.
//
// All output is byte-reproducible for a given run: object keys are emitted
// in sorted order, instruments iterate name-ordered, timestamps are sim-time
// milliseconds only (never wall clock), and doubles are rendered with
// std::to_chars shortest round-trip form. Two runs with the same seed — or
// the same cells executed under any ExperimentRunner thread count — produce
// identical bytes.
//
// Formats:
//   - trace:   JSON lines, one span per line, produced by the streaming
//              span sinks (see sink.hpp); span rendering lives here.
//   - metrics: one JSON object {"counters":{},"gauges":{},"histograms":{}},
//              or flat CSV rows `kind,name,field,value`.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "qsa/obs/registry.hpp"
#include "qsa/obs/trace_span.hpp"

namespace qsa::obs {

/// Appends `s` as a JSON string literal, escaping quotes, backslashes and
/// every control character below 0x20 (named escapes where JSON has them,
/// \u00XX otherwise).
void append_json_string(std::string& out, std::string_view s);

/// Appends one span as a single JSON object (no newline).
void append_span_json(std::string& out, const Span& span);

/// One span as a single JSON line (no trailing newline).
[[nodiscard]] std::string to_json(const Span& span);

/// The registry as one sorted-key JSON document (trailing newline).
void write_metrics_json(const MetricsRegistry& registry, std::ostream& os);
[[nodiscard]] std::string metrics_json(const MetricsRegistry& registry);

/// The registry as CSV rows `kind,name,field,value` (header included).
void write_metrics_csv(const MetricsRegistry& registry, std::ostream& os);
[[nodiscard]] std::string metrics_csv(const MetricsRegistry& registry);

}  // namespace qsa::obs
