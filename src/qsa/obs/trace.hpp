// Per-request trace spans: every request a grid simulation handles is
// decomposed into the paper's setup phases (discovery -> composition ->
// selection -> admission) followed by the session lifetime (running, with
// optional recovery spans, then teardown). Each span records begin/end in
// *sim time* plus an outcome and optional numeric annotations, so a churn
// run can be replayed as a timeline and every GridResult failure counter is
// reconstructible from the span stream.
//
// Cost model: the Tracer is only ever reached through a nullable pointer;
// with no tracer attached instrumentation is one pointer test and performs
// no allocation. Attribute keys and cause strings are string_views into
// static storage — the tracer never copies or owns name strings.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "qsa/sim/time.hpp"
#include "qsa/util/small_vec.hpp"

namespace qsa::obs {

/// Request lifecycle phases, in causal order.
enum class Phase : std::uint8_t {
  kDiscovery,    ///< P2P lookup of candidate instances
  kComposition,  ///< QoS-consistent service path construction
  kSelection,    ///< hop-by-hop dynamic peer selection
  kAdmission,    ///< all-or-nothing resource reservation
  kRunning,      ///< admitted session lifetime
  kRecovery,     ///< mid-session departure repair attempt
  kTeardown,     ///< reservation release at normal completion
};
inline constexpr std::size_t kPhaseCount = 7;

[[nodiscard]] std::string_view to_string(Phase phase);

enum class SpanStatus : std::uint8_t {
  kOpen,   ///< begun, not yet ended
  kOk,     ///< phase succeeded
  kFail,   ///< phase failed — the request's terminal failure
  kRetry,  ///< phase failed but the request retried (not terminal)
  kAbort,  ///< closed without a verdict (e.g. horizon reached mid-phase)
};

[[nodiscard]] std::string_view to_string(SpanStatus status);

/// A numeric annotation. Keys must point at static storage.
struct SpanAttr {
  const char* key = nullptr;
  double value = 0;
};

struct Span {
  std::uint64_t request = 0;  ///< 1-based request id within the run
  Phase phase = Phase::kDiscovery;
  SpanStatus status = SpanStatus::kOpen;
  std::string_view cause;  ///< failure cause name; empty when none
  sim::SimTime begin;
  sim::SimTime end;
  util::SmallVec<SpanAttr, 6> attrs;
};

class Tracer {
 public:
  using SpanId = std::uint32_t;
  static constexpr SpanId kNoSpan = ~SpanId{0};

  /// Opens a span for `request` at sim time `now`.
  SpanId begin(std::uint64_t request, Phase phase, sim::SimTime now);

  /// Attaches a numeric annotation to an open span. `key` must outlive the
  /// tracer (string literal).
  void annotate(SpanId span, const char* key, double value);

  /// Closes a span with an outcome. `cause` must point at static storage
  /// (e.g. core::to_string(FailureCause)).
  void end(SpanId span, sim::SimTime now, SpanStatus status,
           std::string_view cause = {});

  /// Convenience: opens and immediately closes a span (setup phases execute
  /// within one simulator event, so begin == end in sim time).
  SpanId instant(std::uint64_t request, Phase phase, sim::SimTime now,
                 SpanStatus status, std::string_view cause = {});

  /// Closes every still-open span of `request`, newest first (nested spans
  /// unwind inside-out). Used at the simulation horizon and for mid-phase
  /// aborts.
  void end_open(std::uint64_t request, sim::SimTime now, SpanStatus status,
                std::string_view cause = {});

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }

  /// Number of closed spans with this phase and status.
  [[nodiscard]] std::uint64_t count(Phase phase, SpanStatus status) const;

  /// Number of terminal request failures attributed to `cause` (status
  /// kFail). Recovery spans are excluded: a failed repair attempt is not a
  /// request outcome — the enclosing running span carries the verdict.
  [[nodiscard]] std::uint64_t failures(std::string_view cause) const;

  /// Number of open spans (diagnostic; 0 after a completed run).
  [[nodiscard]] std::size_t open_spans() const noexcept;

  void clear();

 private:
  std::vector<Span> spans_;
  /// Open-span stack per request id.
  std::unordered_map<std::uint64_t, util::SmallVec<SpanId, 4>> open_;
};

}  // namespace qsa::obs
