// Streaming, bounded-memory tracer.
//
// The previous tracer buffered every span of every request for the whole
// run, so observability memory grew O(total requests) and large runs OOMed
// in the measurement layer before the simulator broke a sweat. This one
// keeps only the spans of *in-flight* requests: span nodes live in a slab
// with a free list (the EventQueue idiom), chained per request, and when the
// harness declares a request finished the whole chain is routed and its
// nodes recycled. Resident memory is O(active requests); a peak-live
// counter (`peak_live_spans`) makes the bound observable.
//
// Routing on finish:
//   * failed or recovered requests -> the FlightRecorder (complete chains,
//     fixed-capacity ring per cause) when one is configured;
//   * head-sampled requests -> the SpanSink (JSONL stream), using
//     derive_seed(seed, "obs", request_id) so the keep/drop decision is a
//     pure function of (seed, request id) — bit-identical across runs and
//     ExperimentRunner thread counts;
//   * phase/status counts and per-cause failure tallies are incremented at
//     end() for every span, so aggregate accounting stays exact under any
//     sampling rate.
//
// Cost model: the Tracer is only ever reached through a nullable pointer;
// with no tracer attached instrumentation is one pointer test. Attribute
// keys and cause strings are string_views into static storage — the tracer
// never copies or owns name strings. Steady state allocates nothing: nodes,
// chains and the flight scratch buffer are all recycled.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "qsa/obs/flight_recorder.hpp"
#include "qsa/obs/trace_span.hpp"
#include "qsa/sim/time.hpp"
#include "qsa/util/dense_map.hpp"
#include "qsa/util/rng.hpp"
#include "qsa/util/small_vec.hpp"

namespace qsa::obs {

class SpanSink;

namespace detail {

inline constexpr std::uint32_t kNilSlot = ~std::uint32_t{0};

/// A slab node holding one live span (namespace-level so DenseMap can see a
/// complete type while Tracer is still being defined).
struct TraceNode {
  Span span;
  std::uint32_t next = kNilSlot;  ///< next span of the same request
  std::uint32_t gen = 0;          ///< bumped on recycle; half of the SpanId
};

/// Per-request chain of live spans plus the request's running verdict.
struct TraceChain {
  std::uint32_t head = kNilSlot;
  std::uint32_t tail = kNilSlot;
  util::SmallVec<std::uint32_t, 4> open;  ///< open-span stack (slots)
  std::string_view fail_cause;  ///< terminal failure cause, if any
  bool recovered = false;       ///< a recovery span succeeded
};

}  // namespace detail

struct TraceConfig {
  std::uint64_t seed = 0;
  /// Keep 1-in-K finished request traces on the sink; 0 or 1 = keep all.
  std::uint32_t sample_every = 1;
  /// Failed/recovered chains retained per cause; 0 = no flight recorder.
  std::uint32_t flight_capacity = 0;
};

class Tracer {
 public:
  /// Generation-tagged handle: (generation << 32) | slab slot. A handle to
  /// a recycled node fails its generation check, so end()/annotate() after
  /// the owning request finished are safe no-ops.
  using SpanId = std::uint64_t;
  static constexpr SpanId kNoSpan = ~SpanId{0};

  Tracer() : Tracer(TraceConfig{}) {}
  explicit Tracer(const TraceConfig& config);

  /// Attaches the streaming span destination (not owned). Pass nullptr to
  /// trace for accounting only.
  void set_sink(SpanSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] SpanSink* sink() const noexcept { return sink_; }

  /// The flight recorder, or nullptr when flight_capacity was 0.
  [[nodiscard]] FlightRecorder* flight() noexcept { return flight_.get(); }
  [[nodiscard]] const FlightRecorder* flight() const noexcept {
    return flight_.get();
  }

  /// Head-based sampling decision for `request` — a pure function of
  /// (seed, request), never of execution order.
  [[nodiscard]] bool sampled(std::uint64_t request) const noexcept {
    return config_.sample_every <= 1 ||
           util::derive_seed(config_.seed, "obs", request) %
                   config_.sample_every ==
               0;
  }

  /// Opens a span for `request` at sim time `now`.
  SpanId begin(std::uint64_t request, Phase phase, sim::SimTime now);

  /// Attaches a numeric annotation to an open span. `key` must outlive the
  /// tracer (string literal).
  void annotate(SpanId span, const char* key, double value);

  /// Closes a span with an outcome. `cause` must point at static storage
  /// (e.g. core::to_string(FailureCause)).
  void end(SpanId span, sim::SimTime now, SpanStatus status,
           std::string_view cause = {});

  /// Convenience: opens and immediately closes a span (setup phases execute
  /// within one simulator event, so begin == end in sim time).
  SpanId instant(std::uint64_t request, Phase phase, sim::SimTime now,
                 SpanStatus status, std::string_view cause = {});

  /// Closes every still-open span of `request`, newest first (nested spans
  /// unwind inside-out). Used at the simulation horizon and for mid-phase
  /// aborts.
  void end_open(std::uint64_t request, sim::SimTime now, SpanStatus status,
                std::string_view cause = {});

  /// Declares `request` complete: routes its chain (flight recorder for
  /// failed/recovered requests, sink when head-sampled) and recycles its
  /// span nodes. Spans still open are emitted as-is; close them first via
  /// end_open(). Safe to call for requests that never traced anything.
  void finish(std::uint64_t request);

  /// Finishes every request with live spans, in ascending request-id order
  /// (deterministic drain at end of run).
  void finish_all();

  /// Number of closed spans with this phase and status. Exact under any
  /// sampling rate (tallied at end(), not from retained spans).
  [[nodiscard]] std::uint64_t count(Phase phase, SpanStatus status) const;

  /// Number of terminal request failures attributed to `cause` (status
  /// kFail). Recovery spans are excluded: a failed repair attempt is not a
  /// request outcome — the enclosing running span carries the verdict.
  [[nodiscard]] std::uint64_t failures(std::string_view cause) const;

  /// Number of open spans (diagnostic; 0 after a completed run).
  [[nodiscard]] std::size_t open_spans() const noexcept;

  /// Spans currently resident (all chains not yet finished).
  [[nodiscard]] std::size_t live_spans() const noexcept { return live_; }
  /// High-water mark of live_spans() — the bounded-memory witness.
  [[nodiscard]] std::size_t peak_live_spans() const noexcept { return peak_; }
  /// Spans handed to the sink so far.
  [[nodiscard]] std::uint64_t emitted_spans() const noexcept {
    return emitted_;
  }
  /// Finished requests that passed the sampling predicate.
  [[nodiscard]] std::uint64_t sampled_requests() const noexcept {
    return sampled_requests_;
  }
  /// Requests finished (with at least one span) so far.
  [[nodiscard]] std::uint64_t finished_requests() const noexcept {
    return finished_requests_;
  }

  /// Resets all state (retains the configuration and sink).
  void clear();

 private:
  static constexpr std::uint32_t kNil = detail::kNilSlot;
  using Node = detail::TraceNode;
  using Chain = detail::TraceChain;

  [[nodiscard]] Span* resolve(SpanId span) noexcept;

  std::uint32_t alloc_node();
  void release_chain(Chain& chain);

  TraceConfig config_;
  SpanSink* sink_ = nullptr;
  std::unique_ptr<FlightRecorder> flight_;

  std::vector<Node> slab_;
  std::vector<std::uint32_t> free_;
  util::DenseMap<std::uint64_t, Chain> chains_;
  std::vector<Span> flight_scratch_;  ///< reused chain copy for the recorder

  std::uint64_t counts_[kPhaseCount][kStatusCount] = {};
  /// Per-cause terminal failure tallies; causes are few static names.
  std::vector<std::pair<std::string_view, std::uint64_t>> failures_;

  std::size_t live_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t sampled_requests_ = 0;
  std::uint64_t finished_requests_ = 0;
};

}  // namespace qsa::obs
