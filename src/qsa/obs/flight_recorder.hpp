// Failure flight recorder: a fixed-capacity ring buffer of complete span
// chains, kept per failure cause, for the last K failed (or recovered)
// requests. Sampling may drop most success traces from the stream, but the
// forensic record of what went wrong — every span of the request that
// failed, in order — is always retained, bounded at
// O(causes * capacity * chain length).
//
// Chains are handed over by the Tracer when a request finishes; the recorder
// copy-assigns them into ring slots so steady-state recording reuses slot
// capacity instead of allocating.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qsa/obs/trace_span.hpp"

namespace qsa::obs {

class FlightRecorder {
 public:
  /// A retained request: its routing cause and full span chain in
  /// span-creation order. `cause` points at static storage (failure cause
  /// names / "recovered").
  struct Chain {
    std::uint64_t request = 0;
    std::string_view cause;
    std::vector<Span> spans;
  };

  /// `capacity` = chains retained per distinct cause (>= 1).
  explicit FlightRecorder(std::uint32_t capacity);

  /// Retains `spans` as the newest chain for `cause`, evicting the oldest
  /// chain of that cause once the ring is full.
  void record(std::uint64_t request, std::string_view cause,
              const std::vector<Span>& spans);

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  /// Total chains ever recorded (including evicted ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Chains currently retained across all causes.
  [[nodiscard]] std::size_t size() const noexcept;
  /// Chains currently retained for `cause`, oldest first.
  [[nodiscard]] std::vector<const Chain*> chains(std::string_view cause) const;
  /// Distinct causes seen so far, lexicographically sorted.
  [[nodiscard]] std::vector<std::string_view> causes() const;

  /// JSONL export: one `{"cause":...,"request":N,"spans":[...]}` object per
  /// retained chain — causes lexicographically, chains oldest first within a
  /// cause. Deterministic for a given run.
  void write_jsonl(std::string& out) const;
  [[nodiscard]] std::string jsonl() const;

  void clear();

 private:
  struct Ring {
    std::string_view cause;
    std::vector<Chain> slots;  ///< grows to `capacity_`, then recycles
    std::size_t next = 0;      ///< slot the next record lands in
    std::uint64_t total = 0;   ///< chains ever recorded for this cause
  };

  Ring& ring_for(std::string_view cause);

  std::uint32_t capacity_;
  std::uint64_t recorded_ = 0;
  /// Few distinct causes (static names); linear scan beats hashing here.
  std::vector<Ring> rings_;
};

}  // namespace qsa::obs
