// Live time-series recorder: named sim-time series sampled on a fixed
// window while the simulation runs, built on qsa::metrics::TimeSeries and
// streamed row-by-row through a MetricSink.
//
// Two feeding styles:
//   * track(name, probe): the probe is polled once per sample() tick (the
//     harness's --obs-window-ms event), in registration order — used for
//     instantaneous state like event-queue depth, replica counts or cache
//     hit ratios.
//   * push(name, now, value): the producer computes a windowed value itself
//     (e.g. the ψ RatioSampler) and records it directly.
//
// Determinism: registration order, poll order and value computation are all
// functions of the (seeded, single-threaded) simulation, so the recorded
// series — and the CSV row stream a sink sees — are byte-identical across
// runs and ExperimentRunner thread counts. Names must point at static
// storage; the recorder never copies name strings.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "qsa/metrics/timeseries.hpp"
#include "qsa/sim/time.hpp"
#include "qsa/util/inplace_function.hpp"

namespace qsa::obs {

class MetricSink;

class LiveSeries {
 public:
  using Probe = util::InplaceFunction<double(), 32>;

  /// Attaches the streaming row destination (not owned); rows already
  /// recorded are not replayed.
  void set_sink(MetricSink* sink) noexcept { sink_ = sink; }

  /// Registers a polled series. `name` must outlive the recorder.
  void track(std::string_view name, Probe probe);

  /// Records one sample directly (windowed values the producer computes).
  void push(std::string_view name, sim::SimTime now, double value);

  /// Polls every tracked probe once, in registration order.
  void sample(sim::SimTime now);

  /// The recorded series for `name`, or nullptr when nothing was recorded.
  [[nodiscard]] const metrics::TimeSeries* series(
      std::string_view name) const noexcept;

  [[nodiscard]] std::size_t series_count() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] std::uint64_t samples_recorded() const noexcept {
    return samples_;
  }

  /// All recorded rows as `series,time_ms,value` CSV (header included), in
  /// record order — identical to what a StringMetricSink attached from the
  /// start would hold.
  [[nodiscard]] std::string csv() const;

 private:
  struct Entry {
    std::string_view name;
    Probe probe;  ///< empty for push-only series
    metrics::TimeSeries data;
  };

  Entry& entry_for(std::string_view name);

  MetricSink* sink_ = nullptr;
  /// A handful of named series; linear scan, registration-ordered.
  std::vector<Entry> entries_;
  /// Chronological (series, sample) log so csv() replays record order.
  std::vector<std::pair<std::size_t, metrics::Sample>> rows_;
  std::uint64_t samples_ = 0;
};

}  // namespace qsa::obs
