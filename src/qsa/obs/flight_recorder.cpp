#include "qsa/obs/flight_recorder.hpp"

#include <algorithm>
#include <charconv>

#include "qsa/obs/export.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::obs {

FlightRecorder::FlightRecorder(std::uint32_t capacity) : capacity_(capacity) {
  QSA_EXPECTS(capacity >= 1);
}

FlightRecorder::Ring& FlightRecorder::ring_for(std::string_view cause) {
  for (Ring& r : rings_) {
    if (r.cause == cause) return r;
  }
  rings_.push_back(Ring{cause, {}, 0, 0});
  return rings_.back();
}

void FlightRecorder::record(std::uint64_t request, std::string_view cause,
                            const std::vector<Span>& spans) {
  Ring& ring = ring_for(cause);
  if (ring.slots.size() < capacity_) {
    ring.slots.emplace_back();
    Chain& c = ring.slots.back();
    c.request = request;
    c.cause = cause;
    c.spans = spans;
  } else {
    // Recycle the oldest slot; copy-assign reuses its span capacity.
    Chain& c = ring.slots[ring.next];
    c.request = request;
    c.cause = cause;
    c.spans = spans;
    ring.next = (ring.next + 1) % capacity_;
  }
  ++ring.total;
  ++recorded_;
}

std::size_t FlightRecorder::size() const noexcept {
  std::size_t n = 0;
  for (const Ring& r : rings_) n += r.slots.size();
  return n;
}

std::vector<const FlightRecorder::Chain*> FlightRecorder::chains(
    std::string_view cause) const {
  std::vector<const Chain*> out;
  for (const Ring& r : rings_) {
    if (r.cause != cause) continue;
    // Oldest chain sits at `next` once the ring has wrapped, at 0 before.
    const std::size_t n = r.slots.size();
    const std::size_t start = n < capacity_ ? 0 : r.next;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(&r.slots[(start + i) % n]);
    }
    break;
  }
  return out;
}

std::vector<std::string_view> FlightRecorder::causes() const {
  std::vector<std::string_view> out;
  out.reserve(rings_.size());
  for (const Ring& r : rings_) out.push_back(r.cause);
  std::sort(out.begin(), out.end());
  return out;
}

void FlightRecorder::write_jsonl(std::string& out) const {
  for (std::string_view cause : causes()) {
    for (const Chain* chain : chains(cause)) {
      out += "{\"cause\":";
      append_json_string(out, chain->cause);
      out += ",\"request\":";
      char buf[24];
      const auto res =
          std::to_chars(buf, buf + sizeof buf, chain->request);
      out.append(buf, res.ptr);
      out += ",\"spans\":[";
      for (std::size_t i = 0; i < chain->spans.size(); ++i) {
        if (i > 0) out += ',';
        out += to_json(chain->spans[i]);
      }
      out += "]}\n";
    }
  }
}

std::string FlightRecorder::jsonl() const {
  std::string out;
  write_jsonl(out);
  return out;
}

void FlightRecorder::clear() {
  rings_.clear();
  recorded_ = 0;
}

}  // namespace qsa::obs
