#include "qsa/obs/trace.hpp"

#include "qsa/util/expects.hpp"

namespace qsa::obs {

std::string_view to_string(Phase phase) {
  switch (phase) {
    case Phase::kDiscovery:
      return "discovery";
    case Phase::kComposition:
      return "composition";
    case Phase::kSelection:
      return "selection";
    case Phase::kAdmission:
      return "admission";
    case Phase::kRunning:
      return "running";
    case Phase::kRecovery:
      return "recovery";
    case Phase::kTeardown:
      return "teardown";
  }
  return "?";
}

std::string_view to_string(SpanStatus status) {
  switch (status) {
    case SpanStatus::kOpen:
      return "open";
    case SpanStatus::kOk:
      return "ok";
    case SpanStatus::kFail:
      return "fail";
    case SpanStatus::kRetry:
      return "retry";
    case SpanStatus::kAbort:
      return "abort";
  }
  return "?";
}

Tracer::SpanId Tracer::begin(std::uint64_t request, Phase phase,
                             sim::SimTime now) {
  const auto id = static_cast<SpanId>(spans_.size());
  Span s;
  s.request = request;
  s.phase = phase;
  s.begin = s.end = now;
  spans_.push_back(s);
  open_[request].push_back(id);
  return id;
}

void Tracer::annotate(SpanId span, const char* key, double value) {
  QSA_EXPECTS(span < spans_.size());
  Span& s = spans_[span];
  if (s.attrs.size() < s.attrs.capacity()) {
    s.attrs.push_back(SpanAttr{key, value});
  }
}

void Tracer::end(SpanId span, sim::SimTime now, SpanStatus status,
                 std::string_view cause) {
  QSA_EXPECTS(span < spans_.size());
  QSA_EXPECTS(status != SpanStatus::kOpen);
  Span& s = spans_[span];
  if (s.status != SpanStatus::kOpen) return;  // already closed
  s.end = now;
  s.status = status;
  s.cause = cause;
  if (auto it = open_.find(s.request); it != open_.end()) {
    auto& stack = it->second;
    for (std::size_t i = stack.size(); i-- > 0;) {
      if (stack[i] == span) {
        // Preserve stack order below the removed entry.
        for (std::size_t j = i + 1; j < stack.size(); ++j) {
          stack[j - 1] = stack[j];
        }
        stack.pop_back();
        break;
      }
    }
    if (stack.empty()) open_.erase(it);
  }
}

Tracer::SpanId Tracer::instant(std::uint64_t request, Phase phase,
                               sim::SimTime now, SpanStatus status,
                               std::string_view cause) {
  const SpanId id = begin(request, phase, now);
  end(id, now, status, cause);
  return id;
}

void Tracer::end_open(std::uint64_t request, sim::SimTime now,
                      SpanStatus status, std::string_view cause) {
  auto it = open_.find(request);
  if (it == open_.end()) return;
  // end() mutates the stack; drain from a copy, newest first.
  const auto stack = it->second;
  for (std::size_t i = stack.size(); i-- > 0;) {
    end(stack[i], now, status, cause);
  }
}

std::uint64_t Tracer::count(Phase phase, SpanStatus status) const {
  std::uint64_t n = 0;
  for (const Span& s : spans_) {
    if (s.phase == phase && s.status == status) ++n;
  }
  return n;
}

std::uint64_t Tracer::failures(std::string_view cause) const {
  std::uint64_t n = 0;
  for (const Span& s : spans_) {
    if (s.status == SpanStatus::kFail && s.phase != Phase::kRecovery &&
        s.cause == cause) {
      ++n;
    }
  }
  return n;
}

std::size_t Tracer::open_spans() const noexcept {
  std::size_t n = 0;
  for (const auto& [request, stack] : open_) n += stack.size();
  return n;
}

void Tracer::clear() {
  spans_.clear();
  open_.clear();
}

}  // namespace qsa::obs
