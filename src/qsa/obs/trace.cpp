#include "qsa/obs/trace.hpp"

#include <algorithm>

#include "qsa/obs/sink.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::obs {

std::string_view to_string(Phase phase) {
  switch (phase) {
    case Phase::kDiscovery:
      return "discovery";
    case Phase::kComposition:
      return "composition";
    case Phase::kSelection:
      return "selection";
    case Phase::kAdmission:
      return "admission";
    case Phase::kRunning:
      return "running";
    case Phase::kRecovery:
      return "recovery";
    case Phase::kTeardown:
      return "teardown";
  }
  return "?";
}

std::string_view to_string(SpanStatus status) {
  switch (status) {
    case SpanStatus::kOpen:
      return "open";
    case SpanStatus::kOk:
      return "ok";
    case SpanStatus::kFail:
      return "fail";
    case SpanStatus::kRetry:
      return "retry";
    case SpanStatus::kAbort:
      return "abort";
  }
  return "?";
}

Tracer::Tracer(const TraceConfig& config) : config_(config) {
  if (config.flight_capacity > 0) {
    flight_ = std::make_unique<FlightRecorder>(config.flight_capacity);
  }
}

Span* Tracer::resolve(SpanId span) noexcept {
  const auto slot = static_cast<std::uint32_t>(span & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(span >> 32);
  if (slot >= slab_.size() || slab_[slot].gen != gen) return nullptr;
  return &slab_[slot].span;
}

std::uint32_t Tracer::alloc_node() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slab_.size());
  slab_.emplace_back();
  return slot;
}

Tracer::SpanId Tracer::begin(std::uint64_t request, Phase phase,
                             sim::SimTime now) {
  const std::uint32_t slot = alloc_node();
  Node& node = slab_[slot];
  node.span = Span{};
  node.span.request = request;
  node.span.phase = phase;
  node.span.begin = node.span.end = now;
  node.next = kNil;

  Chain& chain = chains_[request];
  if (chain.tail == kNil) {
    chain.head = chain.tail = slot;
  } else {
    slab_[chain.tail].next = slot;
    chain.tail = slot;
  }
  chain.open.push_back(slot);

  ++live_;
  peak_ = std::max(peak_, live_);
  return (static_cast<SpanId>(node.gen) << 32) | slot;
}

void Tracer::annotate(SpanId span, const char* key, double value) {
  Span* s = resolve(span);
  if (s == nullptr) return;  // owning request already finished
  if (s->attrs.size() < s->attrs.capacity()) {
    s->attrs.push_back(SpanAttr{key, value});
  }
}

void Tracer::end(SpanId span, sim::SimTime now, SpanStatus status,
                 std::string_view cause) {
  QSA_EXPECTS(status != SpanStatus::kOpen);
  Span* s = resolve(span);
  if (s == nullptr) return;              // owning request already finished
  if (s->status != SpanStatus::kOpen) return;  // already closed
  s->end = now;
  s->status = status;
  s->cause = cause;

  ++counts_[static_cast<std::size_t>(s->phase)]
           [static_cast<std::size_t>(status)];

  auto it = chains_.find(s->request);
  QSA_EXPECTS(it != chains_.end());
  Chain& chain = it->second;
  const auto slot = static_cast<std::uint32_t>(span & 0xffffffffu);
  auto& stack = chain.open;
  for (std::size_t i = stack.size(); i-- > 0;) {
    if (stack[i] == slot) {
      // Preserve stack order below the removed entry.
      for (std::size_t j = i + 1; j < stack.size(); ++j) {
        stack[j - 1] = stack[j];
      }
      stack.pop_back();
      break;
    }
  }

  if (s->phase == Phase::kRecovery) {
    if (status == SpanStatus::kOk) chain.recovered = true;
    return;  // a failed repair attempt is not a request outcome
  }
  if (status == SpanStatus::kFail) {
    chain.fail_cause = cause;
    for (auto& [name, n] : failures_) {
      if (name == cause) {
        ++n;
        return;
      }
    }
    failures_.emplace_back(cause, 1);
  }
}

Tracer::SpanId Tracer::instant(std::uint64_t request, Phase phase,
                               sim::SimTime now, SpanStatus status,
                               std::string_view cause) {
  const SpanId id = begin(request, phase, now);
  end(id, now, status, cause);
  return id;
}

void Tracer::end_open(std::uint64_t request, sim::SimTime now,
                      SpanStatus status, std::string_view cause) {
  auto it = chains_.find(request);
  if (it == chains_.end()) return;
  // end() mutates the stack; drain from a copy, newest first.
  const auto stack = it->second.open;
  for (std::size_t i = stack.size(); i-- > 0;) {
    const std::uint32_t slot = stack[i];
    end((static_cast<SpanId>(slab_[slot].gen) << 32) | slot, now, status,
        cause);
  }
}

void Tracer::release_chain(Chain& chain) {
  for (std::uint32_t slot = chain.head; slot != kNil;) {
    Node& node = slab_[slot];
    const std::uint32_t next = node.next;
    ++node.gen;  // invalidate outstanding handles
    node.span = Span{};
    node.next = kNil;
    free_.push_back(slot);
    --live_;
    slot = next;
  }
}

void Tracer::finish(std::uint64_t request) {
  auto it = chains_.find(request);
  if (it == chains_.end()) return;
  Chain& chain = it->second;
  ++finished_requests_;

  if (flight_ && (!chain.fail_cause.empty() || chain.recovered)) {
    flight_scratch_.clear();
    for (std::uint32_t slot = chain.head; slot != kNil;
         slot = slab_[slot].next) {
      flight_scratch_.push_back(slab_[slot].span);
    }
    flight_->record(request,
                    chain.fail_cause.empty() ? std::string_view{"recovered"}
                                             : chain.fail_cause,
                    flight_scratch_);
  }

  if (sampled(request)) {
    ++sampled_requests_;
    if (sink_ != nullptr) {
      for (std::uint32_t slot = chain.head; slot != kNil;
           slot = slab_[slot].next) {
        sink_->on_span(slab_[slot].span);
        ++emitted_;
      }
    }
  }

  release_chain(chain);
  chains_.erase(request);
}

void Tracer::finish_all() {
  std::vector<std::uint64_t> requests;
  requests.reserve(chains_.size());
  for (const auto& [request, chain] : chains_) requests.push_back(request);
  std::sort(requests.begin(), requests.end());
  for (std::uint64_t request : requests) finish(request);
}

std::uint64_t Tracer::count(Phase phase, SpanStatus status) const {
  return counts_[static_cast<std::size_t>(phase)]
                [static_cast<std::size_t>(status)];
}

std::uint64_t Tracer::failures(std::string_view cause) const {
  for (const auto& [name, n] : failures_) {
    if (name == cause) return n;
  }
  return 0;
}

std::size_t Tracer::open_spans() const noexcept {
  std::size_t n = 0;
  for (const auto& [request, chain] : chains_) n += chain.open.size();
  return n;
}

void Tracer::clear() {
  slab_.clear();
  free_.clear();
  chains_.clear();
  flight_scratch_.clear();
  for (auto& by_status : counts_) {
    for (auto& n : by_status) n = 0;
  }
  failures_.clear();
  live_ = peak_ = 0;
  emitted_ = sampled_requests_ = finished_requests_ = 0;
  if (flight_) flight_->clear();
}

}  // namespace qsa::obs
