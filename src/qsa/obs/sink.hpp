// Streaming output interfaces for the observability layer.
//
// The tracer and the live time-series recorder never buffer a whole run any
// more: completed artifacts are pushed through these sinks as they are
// produced, so resident observability memory stays O(active requests) while
// the files on disk grow with the run. Writers are chunked — bytes are
// staged in a reused string and handed to the stream in kChunk-sized writes,
// so the hot path never does per-span stream I/O or per-span allocation
// beyond the occasional buffer growth.
//
// Determinism: a sink only ever sees what the (single-threaded, seeded)
// simulation feeds it, in feed order, rendered with the same std::to_chars
// formatting as every other exporter — so the emitted byte stream is
// reproducible across runs, platforms and ExperimentRunner thread counts.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "qsa/obs/trace_span.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::obs {

/// Receives every completed span of every *emitted* request (sampling and
/// request routing happen in the Tracer; a sink just renders/stores).
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const Span& span) = 0;
  /// Hands any staged bytes to the backing store. Called at end of run and
  /// whenever a consumer needs the output complete.
  virtual void flush() {}
};

/// Receives live time-series samples (one named series point per call).
class MetricSink {
 public:
  virtual ~MetricSink() = default;
  virtual void on_sample(std::string_view series, sim::SimTime time,
                         double value) = 0;
  virtual void flush() {}
};

/// JSON-lines span writer over an ostream, one span object per line.
class JsonlSpanSink : public SpanSink {
 public:
  static constexpr std::size_t kChunk = 64 * 1024;

  explicit JsonlSpanSink(std::ostream& os) : os_(os) {}
  ~JsonlSpanSink() override;

  void on_span(const Span& span) override;
  void flush() override;

  [[nodiscard]] std::uint64_t spans_written() const noexcept {
    return spans_written_;
  }

 private:
  std::ostream& os_;
  std::string buffer_;
  std::uint64_t spans_written_ = 0;
};

/// Span sink accumulating the JSONL stream in memory (tests, the
/// ExperimentRunner's per-cell sidecars).
class StringSpanSink : public SpanSink {
 public:
  void on_span(const Span& span) override;

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::uint64_t spans() const noexcept { return spans_; }
  void clear() noexcept {
    out_.clear();
    spans_ = 0;
  }

 private:
  std::string out_;
  std::uint64_t spans_ = 0;
};

/// CSV time-series writer: header `series,time_ms,value`, one row per
/// sample, in feed order (chronological, series in per-window record order).
class CsvMetricSink : public MetricSink {
 public:
  static constexpr std::size_t kChunk = 64 * 1024;

  explicit CsvMetricSink(std::ostream& os);
  ~CsvMetricSink() override;

  void on_sample(std::string_view series, sim::SimTime time,
                 double value) override;
  void flush() override;

 private:
  std::ostream& os_;
  std::string buffer_;
};

/// Time-series sink accumulating the CSV stream in memory.
class StringMetricSink : public MetricSink {
 public:
  StringMetricSink();

  void on_sample(std::string_view series, sim::SimTime time,
                 double value) override;

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  std::string out_;
};

/// Appends one `series,time_ms,value` CSV row (shared by the two CSV sinks).
void append_series_row(std::string& out, std::string_view series,
                       sim::SimTime time, double value);

}  // namespace qsa::obs
