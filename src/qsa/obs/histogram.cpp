#include "qsa/obs/histogram.hpp"

#include <cmath>
#include <limits>

namespace qsa::obs {

std::size_t Histogram::bucket_index(double v) noexcept {
  if (!(v >= 1.0)) return 0;  // negatives, sub-unit values and NaN
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1), so exp >= 1
  const auto i = static_cast<std::size_t>(exp);
  return i < kBuckets ? i : kBuckets - 1;
}

double Histogram::bucket_lower(std::size_t i) noexcept {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

double Histogram::bucket_upper(std::size_t i) noexcept {
  return i + 1 >= kBuckets ? std::numeric_limits<double>::infinity()
                           : std::ldexp(1.0, static_cast<int>(i));
}

void Histogram::observe(double v) noexcept {
  ++buckets_[bucket_index(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // 1-based rank of the target sample.
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;

  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= target) {
      const double frac = static_cast<double>(target - cumulative) /
                          static_cast<double>(buckets_[i]);
      const double lower = bucket_lower(i);
      // The overflow bucket has no finite upper edge; its samples are all
      // <= max_ by construction.
      const double upper = i + 1 >= kBuckets ? max_ : bucket_upper(i);
      double v = lower + frac * (upper - lower);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
    cumulative += buckets_[i];
  }
  return max_;  // unreachable for consistent counts
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::clear() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

}  // namespace qsa::obs
