// Log-bucketed histogram for simulation metrics (lookup hops, probe RTT,
// recovery latency, ...). Samples land in power-of-two buckets, so the
// memory footprint is a fixed 64-counter array regardless of range, and
// quantiles are answered by bucket interpolation — deterministic across
// runs and platforms (integer bucket math, no sampling).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace qsa::obs {

class Histogram {
 public:
  /// Bucket 0 holds v < 1 (including any negative sample); bucket i in
  /// [1, 62] holds [2^(i-1), 2^i); bucket 63 is the overflow bucket
  /// [2^62, inf).
  static constexpr std::size_t kBuckets = 64;

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }

  /// Quantile estimate for q in [0, 1] by linear interpolation inside the
  /// bucket holding the ceil(q*n)-th sample, clamped to [min, max] so
  /// single-sample and exact-bucket cases return observed values. 0 when
  /// empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return buckets_;
  }

  /// Bucket index a value lands in.
  [[nodiscard]] static std::size_t bucket_index(double v) noexcept;
  /// Inclusive lower bound of a bucket (0 for bucket 0).
  [[nodiscard]] static double bucket_lower(std::size_t i) noexcept;
  /// Exclusive upper bound of a bucket (inf for the overflow bucket).
  [[nodiscard]] static double bucket_upper(std::size_t i) noexcept;

  void merge(const Histogram& other) noexcept;
  void clear() noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace qsa::obs
