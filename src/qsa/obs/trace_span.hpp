// Span data model shared by the tracer, the sinks, the flight recorder and
// the exporters. Every request a grid simulation handles is decomposed into
// the paper's setup phases (discovery -> composition -> selection ->
// admission) followed by the session lifetime (running, with optional
// recovery spans, then teardown). Each span records begin/end in *sim time*
// plus an outcome and optional numeric annotations, so a churn run can be
// replayed as a timeline and every GridResult failure counter is
// reconstructible from the span stream.
#pragma once

#include <cstdint>
#include <string_view>

#include "qsa/sim/time.hpp"
#include "qsa/util/small_vec.hpp"

namespace qsa::obs {

/// Request lifecycle phases, in causal order.
enum class Phase : std::uint8_t {
  kDiscovery,    ///< P2P lookup of candidate instances
  kComposition,  ///< QoS-consistent service path construction
  kSelection,    ///< hop-by-hop dynamic peer selection
  kAdmission,    ///< all-or-nothing resource reservation
  kRunning,      ///< admitted session lifetime
  kRecovery,     ///< mid-session departure repair attempt
  kTeardown,     ///< reservation release at normal completion
};
inline constexpr std::size_t kPhaseCount = 7;

[[nodiscard]] std::string_view to_string(Phase phase);

enum class SpanStatus : std::uint8_t {
  kOpen,   ///< begun, not yet ended
  kOk,     ///< phase succeeded
  kFail,   ///< phase failed — the request's terminal failure
  kRetry,  ///< phase failed but the request retried (not terminal)
  kAbort,  ///< closed without a verdict (e.g. horizon reached mid-phase)
};
inline constexpr std::size_t kStatusCount = 5;

[[nodiscard]] std::string_view to_string(SpanStatus status);

/// A numeric annotation. Keys must point at static storage.
struct SpanAttr {
  const char* key = nullptr;
  double value = 0;
};

struct Span {
  std::uint64_t request = 0;  ///< 1-based request id within the run
  Phase phase = Phase::kDiscovery;
  SpanStatus status = SpanStatus::kOpen;
  std::string_view cause;  ///< failure cause name; empty when none
  sim::SimTime begin;
  sim::SimTime end;
  util::SmallVec<SpanAttr, 6> attrs;
};

}  // namespace qsa::obs
