#include "qsa/obs/sink.hpp"

#include <charconv>
#include <ostream>

#include "qsa/obs/export.hpp"

namespace qsa::obs {
namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

constexpr std::string_view kSeriesHeader = "series,time_ms,value\n";

}  // namespace

void append_series_row(std::string& out, std::string_view series,
                       sim::SimTime time, double value) {
  out += series;
  out += ',';
  append_i64(out, time.as_millis());
  out += ',';
  append_double(out, value);
  out += '\n';
}

JsonlSpanSink::~JsonlSpanSink() { JsonlSpanSink::flush(); }

void JsonlSpanSink::on_span(const Span& span) {
  append_span_json(buffer_, span);
  buffer_ += '\n';
  ++spans_written_;
  if (buffer_.size() >= kChunk) flush();
}

void JsonlSpanSink::flush() {
  if (buffer_.empty()) return;
  os_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  buffer_.clear();
}

void StringSpanSink::on_span(const Span& span) {
  append_span_json(out_, span);
  out_ += '\n';
  ++spans_;
}

CsvMetricSink::CsvMetricSink(std::ostream& os) : os_(os) {
  buffer_ = kSeriesHeader;
}

CsvMetricSink::~CsvMetricSink() { CsvMetricSink::flush(); }

void CsvMetricSink::on_sample(std::string_view series, sim::SimTime time,
                              double value) {
  append_series_row(buffer_, series, time, value);
  if (buffer_.size() >= kChunk) flush();
}

void CsvMetricSink::flush() {
  if (buffer_.empty()) return;
  os_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  buffer_.clear();
}

StringMetricSink::StringMetricSink() : out_(kSeriesHeader) {}

void StringMetricSink::on_sample(std::string_view series, sim::SimTime time,
                                 double value) {
  append_series_row(out_, series, time, value);
}

}  // namespace qsa::obs
