#include "qsa/index/keys.hpp"

namespace qsa::index {

std::string_view to_string(Attribute a) {
  switch (a) {
    case Attribute::kCpu:
      return "cpu";
    case Attribute::kBandwidth:
      return "bandwidth";
    case Attribute::kUptime:
      return "uptime";
    case Attribute::kLevel:
      return "level";
  }
  return "?";
}

}  // namespace qsa::index
