// The attribute index (DESIGN.md §15): per-attribute, per-service posting
// lists stored *in the overlay itself* under the order-preserving key
// encoding of index/keys.hpp, so multi-attribute range discovery routes as
// ordinary overlay lookups — subject to the same churn, replication and
// fault-injection machinery as every other message.
//
// Maintenance is soft state. Each (instance, provider) registration is a
// posting inserted under one bucket key per attribute; a shadow ledger on
// the publishing side remembers each posting's buckets, publish-time
// attribute values and last-refresh epoch. The periodic republish advances
// the epoch, re-buckets values that moved (uptime grows, clones appear),
// and expires postings unrefreshed for `expiry_epochs` epochs — exactly how
// churned providers age out: their placement rows vanish at departure, so
// the next republish skips them and the sweep reclaims their postings.
//
// A query scans the contiguous bucket span of each active predicate (first
// bucket routed from the requester at O(log N) hops, subsequent buckets
// routed from the previous owner — on-arc, so usually zero or one hop),
// intersects the per-attribute posting sets client-side, and re-checks the
// survivors exactly against the ledger's stored values (the record a real
// lookup response would carry). Quantization makes the scan a conservative
// superset: the re-check drops the false positives and counts them; it
// never misses a qualifying posting. Under fault injection a lost mid-scan
// segment is retried from the original requester; if that reroute also
// fails the whole query fails — partial results are never passed off as
// complete.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "qsa/index/keys.hpp"
#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/overlay/lookup.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/registry/placement.hpp"

namespace qsa::index {

struct IndexConfig {
  /// Epochs (republish periods) a posting survives without a refresh before
  /// the sweep reclaims it. 1 = reclaim at the first republish that skips
  /// it; the default tolerates one lost republish cycle.
  int expiry_epochs = 2;
};

/// Cumulative maintenance/query accounting (the fault-stats pattern: plain
/// counters, exported by the harness only when the backend is enabled).
struct IndexStats {
  std::uint64_t publishes = 0;        ///< new postings inserted
  std::uint64_t updates = 0;          ///< postings re-bucketed on refresh
  std::uint64_t expiries = 0;         ///< postings aged out by the sweep
  std::uint64_t scans = 0;            ///< range queries answered
  std::uint64_t scan_segments = 0;    ///< bucket lookups routed
  std::uint64_t scan_hops = 0;        ///< routing hops over all scans
  std::uint64_t scan_reroutes = 0;    ///< mid-scan segments retried
  std::uint64_t failed_scans = 0;     ///< queries lost even after reroute
  std::uint64_t scanned_postings = 0; ///< postings returned by bucket scans
  std::uint64_t false_positives = 0;  ///< dropped by the exact re-check
  std::uint64_t stale_postings = 0;   ///< provider already departed at use
};

/// A multi-attribute range query over one service's registrations. Every
/// predicate is optional and of "at least" polarity (bandwidth counts tier
/// quality, so `max_tier` — a numerically smaller tier is a faster link).
struct RangeQuery {
  registry::ServiceId service = 0;
  std::optional<double> min_cpu;        ///< provider capacity, resource units
  std::optional<int> max_tier;          ///< worst acceptable access tier
  std::optional<double> min_uptime_min; ///< provider uptime, minutes
  std::optional<double> min_level;      ///< instance Qout quality floor
};

/// The routing cost and filtering outcome of one query.
struct QueryStats {
  int hops = 0;
  sim::SimTime latency;
  int segments = 0;        ///< bucket lookups routed
  int rerouted = 0;        ///< segments retried from the requester
  bool failed = false;     ///< lost under faults even after reroute
  int scanned = 0;         ///< postings the bucket scan returned
  int false_positives = 0; ///< scanned but failing the exact predicate
  int stale = 0;           ///< surviving postings with a departed provider
};

class AttributeIndex {
 public:
  AttributeIndex(std::uint64_t seed, overlay::LookupService& ring,
                 const registry::ServiceCatalog& catalog,
                 const registry::PlacementMap& placement,
                 const net::PeerTable& peers, const net::NetworkModel& net,
                 qos::ParamId level_param, IndexConfig config = {});

  /// Registers (or refreshes) `instance`'s postings — one per current
  /// provider — at the publish-time attribute values.
  void publish(registry::InstanceId instance, sim::SimTime now);

  /// Eagerly removes every posting of `instance` (retirement; departures
  /// instead age out through the epoch sweep).
  void unpublish(registry::InstanceId instance);

  /// Eagerly removes the single (instance, provider) posting — replica
  /// retirement narrowed the pool by one host without unregistering the
  /// instance. No-op if the posting is unknown.
  void remove(registry::InstanceId instance, net::PeerId provider);

  /// Bootstrap / periodic republish: advances the epoch, refreshes every
  /// catalog instance's postings, then expires anything unrefreshed for
  /// `expiry_epochs` epochs.
  void publish_all(sim::SimTime now);

  /// Answers `query` by routed bucket scans from `from`, writing the
  /// qualifying candidate instances (ascending, unique) into `out`. On a
  /// scan lost under fault injection, `out` is empty and stats.failed is
  /// set — never a silently truncated candidate set. A query with no
  /// predicate scans the full level arc (service membership).
  QueryStats query_into(const RangeQuery& query, net::PeerId from,
                        const net::NetworkModel* net,
                        std::vector<registry::InstanceId>& out) const;

  [[nodiscard]] const IndexStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t postings() const noexcept {
    return ledger_.size();
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  /// Shadow record of one posting: last-refresh epoch, the bucket each
  /// attribute key used, and the exact publish-time values the client-side
  /// re-check verifies against (in the real system the record travels in
  /// the lookup response, like the directory's catalog/placement reads).
  struct Entry {
    std::uint64_t epoch = 0;
    std::array<std::uint8_t, kAttributeCount> bucket{};
    float cpu = 0;
    float uptime_min = 0;
    float level = 0;
    std::int8_t tier = 0;
  };

  void upsert(registry::InstanceId instance, net::PeerId provider,
              sim::SimTime now);
  void erase_posting(Posting posting, const Entry& entry);
  void expire_stale();

  /// Routes the bucket span [lo, hi] of one arc, appending raw postings.
  /// False when the scan was lost even after the requester-side reroute.
  bool scan_arc(Attribute a, registry::ServiceId service, int lo, int hi,
                net::PeerId from, const net::NetworkModel* net,
                QueryStats& qs, std::vector<Posting>& postings) const;

  std::uint64_t seed_;
  overlay::LookupService& ring_;
  const registry::ServiceCatalog& catalog_;
  const registry::PlacementMap& placement_;
  const net::PeerTable& peers_;
  const net::NetworkModel& net_;
  IndexConfig config_;
  qos::ParamId level_param_;

  std::uint64_t epoch_ = 0;
  std::unordered_map<Posting, Entry> ledger_;
  mutable IndexStats stats_;

  // Query scratch, grow-only (one AttributeIndex serves one thread).
  mutable std::vector<Posting> scan_[kAttributeCount];
  mutable std::vector<Posting> merge_a_, merge_b_;
};

}  // namespace qsa::index
