// Order-preserving key encoding for the attribute index (DESIGN.md §15).
//
// Each (attribute, service) pair owns one *arc* of the 64-bit overlay key
// space: a contiguous 2^54-key span whose base is seed-derived (so arcs
// spread uniformly over the ring and never collide in practice), divided
// into kBuckets equal strides. A registered value is quantized into a
// bucket by a monotone bucket function, so
//
//     value_a <= value_b  =>  bucket(value_a) <= bucket(value_b)
//
// and a range predicate "attribute >= x" becomes the contiguous bucket
// span [bucket(x), kBuckets-1] — adjacent buckets are adjacent keys, so a
// range scan routes once to the span's first owner (O(log N) hops) and
// then walks on-arc (an arc covers ~N/2^10 of the ring, so only a handful
// of owner transitions — the "span" term). Quantization makes the scan a
// conservative superset: everything in bucket(x) with value < x is a false
// positive the client filters exactly; nothing with value >= x is missed.
//
// Postings are (instance, provider) pairs packed into the overlay's 64-bit
// value type.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string_view>

#include "qsa/net/peer.hpp"
#include "qsa/overlay/lookup.hpp"
#include "qsa/registry/service.hpp"
#include "qsa/sim/time.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::index {

/// The indexed QoS attributes. kCpu/kBandwidth/kUptime describe the
/// *provider* (host capacity, access tier, connected time at publish);
/// kLevel describes the *instance* (the guaranteed floor of its Qout
/// quality level) — the predicate the request's end-to-end requirement puts
/// on the sink hop.
enum class Attribute : std::uint8_t { kCpu = 0, kBandwidth, kUptime, kLevel };

inline constexpr int kAttributeCount = 4;
inline constexpr int kBuckets = 64;

/// Arc width as a power of two: 2^54 keys per (attribute, service) arc,
/// i.e. 1/1024 of the key space — wide enough that bucket keys of one arc
/// land on a short contiguous run of nodes, narrow enough that thousands of
/// arcs spread without overlap mattering (keys only need distinctness, and
/// bucket keys of overlapping arcs still differ with overwhelming
/// probability).
inline constexpr int kArcBits = 54;
inline constexpr overlay::Key kBucketStride = overlay::Key{1}
                                              << (kArcBits - 6);  // 64 buckets

[[nodiscard]] std::string_view to_string(Attribute a);

/// Base key of the (attribute, service) arc.
[[nodiscard]] constexpr overlay::Key arc_base(std::uint64_t seed, Attribute a,
                                              registry::ServiceId service) noexcept {
  return util::derive_seed(
      seed, "index-arc",
      (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(service));
}

/// The overlay key of one bucket: base + bucket * stride (mod 2^64). Within
/// an arc, consecutive buckets are consecutive keys.
[[nodiscard]] constexpr overlay::Key index_key(std::uint64_t seed, Attribute a,
                                               registry::ServiceId service,
                                               int bucket) noexcept {
  return arc_base(seed, a, service) +
         static_cast<overlay::Key>(bucket) * kBucketStride;
}

// --- monotone bucket functions, one per attribute ---

/// CPU capacity in resource units (the paper draws [100, 1000]): linear
/// buckets of 25 units, headroom to 1600.
[[nodiscard]] inline int cpu_bucket(double cpu) noexcept {
  return std::clamp(static_cast<int>(cpu / 25.0), 0, kBuckets - 1);
}

/// Access-link tier (NetworkModel::access_tier: 0 = fastest). Flipped so
/// the bucket is monotone in link *quality* and "bandwidth >= y" scans
/// upward like every other predicate.
[[nodiscard]] inline int bandwidth_bucket(int access_tier) noexcept {
  return std::clamp(3 - access_tier, 0, 3);
}

/// Uptime, log2-scale minute classes (class 6 ~ 1 hour, 13 ~ 1 week):
/// coarse at the long tail, fine where session durations live.
[[nodiscard]] inline int uptime_bucket(sim::SimTime uptime) noexcept {
  const double minutes = std::max(0.0, uptime.as_minutes());
  return std::clamp(static_cast<int>(std::log2(1.0 + minutes)), 0,
                    kBuckets - 1);
}

/// Quality-level floor in [0, 100]: linear buckets, 100/64 wide.
[[nodiscard]] inline int level_bucket(double level) noexcept {
  return std::clamp(static_cast<int>(level * (kBuckets / 100.0)), 0,
                    kBuckets - 1);
}

// --- postings ---

/// A posting indexes one (instance, provider) registration.
using Posting = std::uint64_t;

[[nodiscard]] constexpr Posting pack_posting(registry::InstanceId instance,
                                             net::PeerId provider) noexcept {
  return (static_cast<Posting>(instance) << 32) |
         static_cast<Posting>(provider);
}

[[nodiscard]] constexpr registry::InstanceId posting_instance(Posting p) noexcept {
  return static_cast<registry::InstanceId>(p >> 32);
}

[[nodiscard]] constexpr net::PeerId posting_provider(Posting p) noexcept {
  return static_cast<net::PeerId>(p & 0xffff'ffffULL);
}

}  // namespace qsa::index
