#include "qsa/index/attribute_index.hpp"

#include <algorithm>
#include <iterator>

namespace qsa::index {

AttributeIndex::AttributeIndex(std::uint64_t seed,
                               overlay::LookupService& ring,
                               const registry::ServiceCatalog& catalog,
                               const registry::PlacementMap& placement,
                               const net::PeerTable& peers,
                               const net::NetworkModel& net,
                               qos::ParamId level_param, IndexConfig config)
    : seed_(seed),
      ring_(ring),
      catalog_(catalog),
      placement_(placement),
      peers_(peers),
      net_(net),
      config_(config),
      level_param_(level_param) {}

void AttributeIndex::publish(registry::InstanceId instance, sim::SimTime now) {
  for (const net::PeerId provider : placement_.providers(instance)) {
    // A departed provider's row may linger in the placement map until the
    // grid prunes it; never mint fresh postings for it — its existing ones
    // age out through the epoch sweep.
    if (!peers_.alive(provider)) continue;
    upsert(instance, provider, now);
  }
}

void AttributeIndex::upsert(registry::InstanceId instance,
                            net::PeerId provider, sim::SimTime now) {
  const net::Peer peer = peers_.peer(provider);
  const registry::ServiceInstance& inst = catalog_.instance(instance);
  const auto level_value = inst.qout.get(level_param_);

  const float cpu = static_cast<float>(peer.capacity()[0]);
  const float uptime_min =
      static_cast<float>(std::max(0.0, peer.uptime(now).as_minutes()));
  const float level =
      static_cast<float>(level_value ? level_value->lo() : 0.0);
  const auto tier = static_cast<std::int8_t>(net_.access_tier(provider));

  std::array<std::uint8_t, kAttributeCount> bucket{};
  bucket[static_cast<int>(Attribute::kCpu)] =
      static_cast<std::uint8_t>(cpu_bucket(cpu));
  bucket[static_cast<int>(Attribute::kBandwidth)] =
      static_cast<std::uint8_t>(bandwidth_bucket(tier));
  bucket[static_cast<int>(Attribute::kUptime)] =
      static_cast<std::uint8_t>(uptime_bucket(peer.uptime(now)));
  bucket[static_cast<int>(Attribute::kLevel)] =
      static_cast<std::uint8_t>(level_bucket(level));

  const Posting posting = pack_posting(instance, provider);
  const auto [it, inserted] = ledger_.try_emplace(posting);
  Entry& entry = it->second;
  if (inserted) {
    for (int a = 0; a < kAttributeCount; ++a) {
      ring_.insert(
          index_key(seed_, static_cast<Attribute>(a), inst.service, bucket[a]),
          posting);
    }
    ++stats_.publishes;
  } else {
    bool moved = false;
    for (int a = 0; a < kAttributeCount; ++a) {
      if (entry.bucket[a] == bucket[a]) continue;
      const auto attr = static_cast<Attribute>(a);
      ring_.erase(index_key(seed_, attr, inst.service, entry.bucket[a]),
                  posting);
      ring_.insert(index_key(seed_, attr, inst.service, bucket[a]), posting);
      moved = true;
    }
    if (moved) ++stats_.updates;
  }
  entry.epoch = epoch_;
  entry.bucket = bucket;
  entry.cpu = cpu;
  entry.uptime_min = uptime_min;
  entry.level = level;
  entry.tier = tier;
}

void AttributeIndex::erase_posting(Posting posting, const Entry& entry) {
  const registry::ServiceId service =
      catalog_.instance(posting_instance(posting)).service;
  for (int a = 0; a < kAttributeCount; ++a) {
    ring_.erase(
        index_key(seed_, static_cast<Attribute>(a), service, entry.bucket[a]),
        posting);
  }
}

void AttributeIndex::unpublish(registry::InstanceId instance) {
  for (auto it = ledger_.begin(); it != ledger_.end();) {
    if (posting_instance(it->first) == instance) {
      erase_posting(it->first, it->second);
      it = ledger_.erase(it);
    } else {
      ++it;
    }
  }
}

void AttributeIndex::remove(registry::InstanceId instance,
                            net::PeerId provider) {
  const auto it = ledger_.find(pack_posting(instance, provider));
  if (it == ledger_.end()) return;
  erase_posting(it->first, it->second);
  ledger_.erase(it);
}

void AttributeIndex::publish_all(sim::SimTime now) {
  ++epoch_;
  for (registry::InstanceId i = 0;
       i < static_cast<registry::InstanceId>(catalog_.instance_count()); ++i) {
    publish(i, now);
  }
  expire_stale();
}

void AttributeIndex::expire_stale() {
  for (auto it = ledger_.begin(); it != ledger_.end();) {
    if (epoch_ - it->second.epoch >=
        static_cast<std::uint64_t>(config_.expiry_epochs)) {
      erase_posting(it->first, it->second);
      it = ledger_.erase(it);
      ++stats_.expiries;
    } else {
      ++it;
    }
  }
}

bool AttributeIndex::scan_arc(Attribute a, registry::ServiceId service,
                              int lo, int hi, net::PeerId from,
                              const net::NetworkModel* net, QueryStats& qs,
                              std::vector<Posting>& postings) const {
  // Route to the first bucket's owner from the requester (the O(log N)
  // leg); each further bucket routes from the previous owner — adjacent
  // keys, so mostly zero hops with a handful of owner transitions (the
  // span leg).
  net::PeerId origin = from;
  for (int b = lo; b <= hi; ++b) {
    const overlay::Key key = index_key(seed_, a, service, b);
    overlay::LookupStats stats = ring_.route(key, origin, net);
    qs.hops += stats.hops;
    qs.latency = qs.latency + stats.latency;
    ++qs.segments;
    if (!stats.ok()) {
      // Mid-scan segment lost even after the overlay's own retries and
      // alternate-neighbor reroutes: retry once more from the original
      // requester (a fresh path, not the failed on-arc one).
      ++qs.rerouted;
      stats = ring_.route(key, from, net);
      qs.hops += stats.hops;
      qs.latency = qs.latency + stats.latency;
      if (!stats.ok()) return false;
    }
    for (const std::uint64_t v : ring_.get(key)) postings.push_back(v);
    origin = stats.owner;
  }
  return true;
}

QueryStats AttributeIndex::query_into(
    const RangeQuery& query, net::PeerId from, const net::NetworkModel* net,
    std::vector<registry::InstanceId>& out) const {
  out.clear();
  QueryStats qs;

  // Active per-attribute scans: each "at least" predicate is a contiguous
  // bucket span ending at the top of its arc (bandwidth's arc only uses 4
  // tiers' worth of buckets).
  struct Scan {
    Attribute attr;
    int lo, hi;
  };
  Scan scans[kAttributeCount];
  int n_scans = 0;
  if (query.min_cpu) {
    scans[n_scans++] = {Attribute::kCpu, cpu_bucket(*query.min_cpu),
                        kBuckets - 1};
  }
  if (query.max_tier) {
    scans[n_scans++] = {Attribute::kBandwidth, bandwidth_bucket(*query.max_tier),
                        bandwidth_bucket(0)};
  }
  if (query.min_uptime_min) {
    scans[n_scans++] = {
        Attribute::kUptime,
        uptime_bucket(sim::SimTime::minutes(*query.min_uptime_min)),
        kBuckets - 1};
  }
  if (query.min_level) {
    scans[n_scans++] = {Attribute::kLevel, level_bucket(*query.min_level),
                        kBuckets - 1};
  }
  if (n_scans == 0) {
    // Pure membership: the whole level arc holds every posting exactly once.
    scans[n_scans++] = {Attribute::kLevel, 0, kBuckets - 1};
  }

  for (int s = 0; s < n_scans; ++s) {
    scan_[s].clear();
    if (!scan_arc(scans[s].attr, query.service, scans[s].lo, scans[s].hi,
                  from, net, qs, scan_[s])) {
      // Reroute failed too: the query fails whole. Never hand back the
      // partial postings already scanned as if they were the answer.
      qs.failed = true;
      out.clear();
      ++stats_.failed_scans;
      ++stats_.scans;
      stats_.scan_segments += static_cast<std::uint64_t>(qs.segments);
      stats_.scan_hops += static_cast<std::uint64_t>(qs.hops);
      stats_.scan_reroutes += static_cast<std::uint64_t>(qs.rerouted);
      return qs;
    }
    qs.scanned += static_cast<int>(scan_[s].size());
    std::sort(scan_[s].begin(), scan_[s].end());
  }

  // Client-side intersection of the per-attribute posting sets.
  merge_a_ = scan_[0];
  for (int s = 1; s < n_scans; ++s) {
    merge_b_.clear();
    std::set_intersection(merge_a_.begin(), merge_a_.end(), scan_[s].begin(),
                          scan_[s].end(), std::back_inserter(merge_b_));
    merge_a_.swap(merge_b_);
  }

  // Exact re-check against the publish-time record (carried by the lookup
  // response in a real deployment): quantization false positives drop here.
  for (const Posting p : merge_a_) {
    const auto it = ledger_.find(p);
    if (it == ledger_.end()) {
      ++qs.false_positives;
      continue;
    }
    const Entry& e = it->second;
    const bool pass =
        (!query.min_cpu || e.cpu >= *query.min_cpu) &&
        (!query.max_tier || e.tier <= *query.max_tier) &&
        (!query.min_uptime_min || e.uptime_min >= *query.min_uptime_min) &&
        (!query.min_level || e.level >= *query.min_level);
    if (!pass) {
      ++qs.false_positives;
      continue;
    }
    // Departed-provider postings linger until the sweep reclaims them; we
    // count the staleness (the peer table is the oracle) but keep the
    // candidate — the directory's candidate lists go stale the same way,
    // and downstream probing/admission is what rejects the dead.
    if (!peers_.alive(posting_provider(p))) ++qs.stale;
    out.push_back(posting_instance(p));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());

  ++stats_.scans;
  stats_.scan_segments += static_cast<std::uint64_t>(qs.segments);
  stats_.scan_hops += static_cast<std::uint64_t>(qs.hops);
  stats_.scan_reroutes += static_cast<std::uint64_t>(qs.rerouted);
  stats_.scanned_postings += static_cast<std::uint64_t>(qs.scanned);
  stats_.false_positives += static_cast<std::uint64_t>(qs.false_positives);
  stats_.stale_postings += static_cast<std::uint64_t>(qs.stale);
  return qs;
}

}  // namespace qsa::index
