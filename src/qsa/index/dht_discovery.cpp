#include "qsa/index/dht_discovery.hpp"

namespace qsa::index {

registry::DiscoveryStats DhtDiscovery::discover_into(
    const registry::DiscoveryQuery& query, const net::NetworkModel* net,
    sim::SimTime /*now*/, std::vector<registry::InstanceId>& out) const {
  RangeQuery rq;
  rq.service = query.service;
  if (query.session_duration > sim::SimTime::zero()) {
    rq.min_uptime_min = query.session_duration.as_minutes();
  }
  if (query.is_sink && query.requirement != nullptr) {
    if (const auto level = query.requirement->get(level_param_)) {
      rq.min_level = level->lo();
    }
  }
  const QueryStats qs = index_.query_into(rq, query.from, net, out);
  if (lookups_ != nullptr) {
    lookups_->add();
    lookup_hops_->observe(qs.hops);
    lookup_latency_->observe(static_cast<double>(qs.latency.as_millis()));
  }
  return {qs.hops, qs.latency};
}

void DhtDiscovery::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    lookups_ = nullptr;
    lookup_hops_ = nullptr;
    lookup_latency_ = nullptr;
    return;
  }
  // Same shape as the directory's lookup metrics, under the index.*
  // namespace; the harness only attaches us when the backend is enabled, so
  // knobs-off exports never see these names.
  lookups_ = &metrics->counter("index.lookups");
  lookup_hops_ = &metrics->histogram("index.lookup_hops");
  lookup_latency_ = &metrics->histogram("index.lookup_latency_ms");
}

}  // namespace qsa::index
