// DiscoveryBackend over the attribute index: tier-1a candidate lookup as a
// multi-attribute range query routed through the overlay (DESIGN.md §15).
//
// Registration maintenance delegates to the AttributeIndex (seeded by the
// injected clock, since the backend interface's publish calls carry no
// timestamp). Discovery pushes the two predicates the request context
// actually supports down into the index scan:
//   * uptime >= session_duration — the selector's uptime heuristic applied
//     at discovery time, so providers that cannot cover the session never
//     enter the candidate set;
//   * quality level >= requirement floor — only on the sink hop, whose Qout
//     the end-to-end requirement constrains.
// CPU/bandwidth predicates exist in the index (RangeQuery) but the serving
// path does not use them: capacity is a *availability* question answered by
// probing live state, not by publish-time registrations.
#pragma once

#include "qsa/engine/clock.hpp"
#include "qsa/index/attribute_index.hpp"
#include "qsa/registry/backend.hpp"

namespace qsa::index {

class DhtDiscovery final : public registry::DiscoveryBackend {
 public:
  DhtDiscovery(AttributeIndex& index, qos::ParamId level_param,
               const engine::Clock& clock)
      : index_(index), level_param_(level_param), clock_(clock) {}

  void publish(registry::InstanceId instance) override {
    index_.publish(instance, clock_.now());
  }
  void publish_all() override { index_.publish_all(clock_.now()); }
  void unpublish(registry::InstanceId instance) override {
    index_.unpublish(instance);
  }
  /// Departure needs no eager action: the departed peer's postings age out
  /// through the index's epoch sweep (soft state), and there is no
  /// requester-side cache to drop.
  void peer_departed(net::PeerId /*peer*/) override {}
  void provider_retired(registry::InstanceId instance,
                        net::PeerId host) override {
    index_.remove(instance, host);
  }

  registry::DiscoveryStats discover_into(
      const registry::DiscoveryQuery& query, const net::NetworkModel* net,
      sim::SimTime now, std::vector<registry::InstanceId>& out) const override;

  void set_metrics(obs::MetricsRegistry* metrics) override;

 private:
  AttributeIndex& index_;
  qos::ParamId level_param_;
  const engine::Clock& clock_;

  obs::Counter* lookups_ = nullptr;
  obs::Histogram* lookup_hops_ = nullptr;
  obs::Histogram* lookup_latency_ = nullptr;
};

}  // namespace qsa::index
