// Injected time source for the serving engine (DESIGN.md §13).
//
// The composition/selection pipeline consumes time for exactly three
// things: probe-epoch snapshots, neighbor soft-state TTLs, and the
// discovery cache TTL. Behind this seam the identical pipeline runs under
// the discrete-event simulator (the harness adapts sim::Simulator::now)
// and under a real request loop (a ManualClock advanced by the batcher, or
// frozen for steady-state throughput measurement).
#pragma once

#include "qsa/sim/time.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::engine {

/// Abstract monotonic time source, read once per serve() call.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual sim::SimTime now() const = 0;
};

/// A clock the caller advances explicitly. The serving request loop ticks
/// it once per batch; tests drive TTL expiry with it deterministically.
class ManualClock final : public Clock {
 public:
  ManualClock() = default;
  explicit ManualClock(sim::SimTime start) : now_(start) {}

  [[nodiscard]] sim::SimTime now() const override { return now_; }

  /// Jumps to `t`; monotonic (the pipeline's soft-state bookkeeping assumes
  /// time never runs backwards).
  void set(sim::SimTime t) {
    QSA_EXPECTS(t >= now_);
    now_ = t;
  }

  void advance(sim::SimTime delta) {
    QSA_EXPECTS(delta >= sim::SimTime::zero());
    now_ = now_ + delta;
  }

 private:
  sim::SimTime now_;
};

}  // namespace qsa::engine
