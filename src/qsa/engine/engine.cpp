#include "qsa/engine/engine.hpp"

#include "qsa/core/baselines.hpp"
#include "qsa/util/expects.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::engine {
namespace {

// Identical to the harness's historical weight computation: uniform over
// all m+1 terms, or the given bandwidth mass with the remainder split
// evenly across the end-system resource kinds.
qos::TupleWeights make_weights(double bandwidth_weight, std::size_t kinds) {
  if (bandwidth_weight < 0) return qos::TupleWeights::uniform(kinds);
  return qos::TupleWeights(
      util::SmallVec<double, qos::kMaxResources>(
          kinds, (1.0 - bandwidth_weight) / static_cast<double>(kinds)),
      bandwidth_weight);
}

}  // namespace

std::string_view to_string(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kQsa:
      return "qsa";
    case AlgorithmKind::kRandom:
      return "random";
    case AlgorithmKind::kFixed:
      return "fixed";
  }
  return "?";
}

ServingEngine::ServingEngine(const EngineConfig& config,
                             const EngineDeps& deps)
    : config_(config),
      clock_(deps.clock),
      weights_(make_weights(config.bandwidth_weight,
                            deps.peers != nullptr ? deps.peers->schema().kinds()
                                                  : 0)) {
  QSA_EXPECTS(deps.catalog && deps.placement && deps.directory && deps.peers &&
              deps.net && deps.neighbors);
  // Cache wiring precedes any metrics attachment: the directory gates its
  // cache counters on whether the TTL cache is enabled.
  deps.directory->set_cache_ttl(config_.discovery_cache_ttl);
  if (config_.compose_caches) {
    compose_cache_ = std::make_unique<cache::ComposeCache>();
  }

  const core::GridServices services{
      deps.catalog, deps.placement,
      deps.discovery != nullptr
          ? deps.discovery
          : static_cast<const registry::DiscoveryBackend*>(deps.directory),
      deps.peers, deps.net, deps.neighbors};
  // Seed-derivation labels are load-bearing: they match the pre-engine
  // harness exactly, so simulations routed through the facade replay the
  // same RNG streams bit for bit.
  switch (config_.algorithm) {
    case AlgorithmKind::kQsa:
      algorithm_ = std::make_unique<core::QsaAlgorithm>(
          services, weights_, deps.peers->schema(),
          util::derive_seed(config_.seed, "algo", 0), config_.qsa_options,
          compose_cache_.get());
      break;
    case AlgorithmKind::kRandom:
      algorithm_ = std::make_unique<core::RandomAlgorithm>(
          services, weights_, deps.peers->schema(),
          util::derive_seed(config_.seed, "algo", 0), compose_cache_.get());
      break;
    case AlgorithmKind::kFixed:
      algorithm_ = std::make_unique<core::FixedAlgorithm>(
          services, weights_, deps.peers->schema(), compose_cache_.get());
      break;
  }
}

ServingEngine::~ServingEngine() = default;

}  // namespace qsa::engine
