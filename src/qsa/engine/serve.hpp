// The batched thread-per-shard request loop (DESIGN.md §13): each shard
// owns one ServingEngine (plus its directory view, neighbor tables, and
// ManualClock) and drains a pregenerated request pool in batches, ticking
// the clock once per batch. Shards share only immutable world state, so
// the loop runs lock-free; stats and latency histograms are per-shard and
// merged by the caller.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "qsa/core/aggregate.hpp"
#include "qsa/engine/clock.hpp"
#include "qsa/engine/engine.hpp"
#include "qsa/obs/histogram.hpp"

namespace qsa::engine {

/// Outcome accounting of one serving loop. Mergeable across shards.
struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t fail_discovery = 0;
  std::uint64_t fail_composition = 0;
  std::uint64_t fail_selection = 0;
  std::uint64_t lookup_hops = 0;
  std::uint64_t random_fallback_hops = 0;

  void count(const core::AggregationPlan& plan) noexcept;
  void merge(const ServeStats& other) noexcept;

  [[nodiscard]] double success_ratio() const noexcept {
    return requests == 0
               ? 1.0
               : static_cast<double>(ok) / static_cast<double>(requests);
  }
};

/// One shard's loop parameters. The engine/clock/pool are borrowed; the
/// pool is cycled round-robin until `requests` have been served.
struct ShardLoop {
  ServingEngine* engine = nullptr;
  ManualClock* clock = nullptr;
  std::span<const core::ServiceRequest> pool;
  std::uint64_t warmup = 0;    ///< uncounted requests served first
  std::uint64_t requests = 0;  ///< counted requests after warmup
  std::size_t batch = 64;      ///< requests per clock tick
  /// Clock advance per batch. Zero freezes the clock: the world snapshot
  /// (probe epochs, uptimes, TTLs) is pinned, which makes the measured
  /// phase a strict replay of the warmed-up state — the configuration the
  /// zero-allocation gate runs under.
  sim::SimTime tick = sim::SimTime::zero();
  /// Optional host-wall-clock latency per serve() call, in microseconds.
  obs::Histogram* latency_us = nullptr;
};

/// Runs one shard's loop on the calling thread: warmup first, then the
/// counted phase. The warmup fills every cache/table/scratch buffer the
/// steady state touches, so the counted phase of a frozen-clock loop
/// performs no heap allocation.
[[nodiscard]] ServeStats serve_shard(const ShardLoop& loop);

/// Runs every shard on the shared worker pool (util::shared_pool) as two
/// parallel_for phases with per-shard cursors carried across them. All
/// shards finish warmup before any enters its counted phase; `on_steady`,
/// when given, runs exactly once — on the calling thread, between the
/// phases, before any counted request — so callers can snapshot allocation
/// counters or start a wall clock at the steady-state boundary. Everything
/// after on_steady is allocation-free: the pool's task slab and the phase
/// closures are built during warmup. Returns the merged stats.
[[nodiscard]] ServeStats serve_parallel(std::span<const ShardLoop> shards,
                                        const std::function<void()>& on_steady = {});

}  // namespace qsa::engine
