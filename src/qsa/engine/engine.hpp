// The sim-free serving facade (DESIGN.md §13): everything the per-request
// composition+selection hot path needs — the aggregation algorithm under
// test (QCS composer + dynamic peer selector, or a baseline), the
// compose/discovery memo caches, and the selector's live load signal —
// assembled behind injected seams:
//
//   * time comes from an engine::Clock (the harness adapts the simulator's
//     clock; the serving loop drives a ManualClock);
//   * randomness is the algorithm's own deterministic RNG, derived from
//     EngineConfig::seed with the same labels the harness always used, so a
//     simulation routed through the engine is byte-identical to the
//     pre-engine harness;
//   * world state (peer table, WAN model, overlay, catalog, placement)
//     arrives as non-owning pointers, probed through the same snapshot
//     interfaces the simulator uses.
//
// One ServingEngine serves one logical requester stream on one thread; a
// multi-threaded server runs one engine per shard over a shared immutable
// world (see engine/serve.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "qsa/cache/compose_cache.hpp"
#include "qsa/core/aggregate.hpp"
#include "qsa/engine/clock.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/registry/directory.hpp"

namespace qsa::engine {

/// The aggregation algorithm a grid (simulated or serving) runs.
enum class AlgorithmKind : std::uint8_t { kQsa, kRandom, kFixed };

[[nodiscard]] std::string_view to_string(AlgorithmKind kind);

/// Engine construction knobs — the algorithm-facing subset of the harness's
/// GridConfig, with identical defaults and seed-derivation labels.
struct EngineConfig {
  std::uint64_t seed = 42;
  AlgorithmKind algorithm = AlgorithmKind::kQsa;
  core::QsaOptions qsa_options;
  /// Weight on the bandwidth term of Definition 3.1 / Phi; negative =
  /// uniform over all m+1 terms (the paper's setup).
  double bandwidth_weight = -1;
  /// Attach the compatibility/cost memo tables (bit-identical on or off).
  bool compose_caches = true;
  /// TTL of the requester-side discovery cache; zero disables it.
  sim::SimTime discovery_cache_ttl = sim::SimTime::zero();
};

/// The world the engine serves against. Non-owning; everything but the
/// directory and neighbor tables is read-only shared state (safe to share
/// across shard engines), while `directory` and `neighbors` carry
/// per-requester soft state and must be exclusive to one engine's thread.
struct EngineDeps {
  const registry::ServiceCatalog* catalog = nullptr;
  const registry::PlacementMap* placement = nullptr;
  /// Non-const: the engine owns the discovery-cache policy (TTL) of its
  /// directory view.
  registry::ServiceDirectory* directory = nullptr;
  /// Candidate-lookup backend the algorithms actually query. Null = the
  /// directory above (the default); the harness points it at an
  /// index::DhtDiscovery when --discovery=dht swaps the backend.
  const registry::DiscoveryBackend* discovery = nullptr;
  const net::PeerTable* peers = nullptr;
  const net::NetworkModel* net = nullptr;
  probe::NeighborResolution* neighbors = nullptr;
  /// Optional; required only by the clock-driven serve() entry points.
  const Clock* clock = nullptr;
};

class ServingEngine {
 public:
  ServingEngine(const EngineConfig& config, const EngineDeps& deps);

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;
  ~ServingEngine();

  /// One compose+select pass at an explicit time (the simulator-driven
  /// entry point).
  [[nodiscard]] core::AggregationPlan aggregate(
      const core::ServiceRequest& request, sim::SimTime now) {
    return algorithm_->aggregate(request, now);
  }

  /// Allocation-free variant: reuses `out`'s buffers (see
  /// AggregationAlgorithm::aggregate_into).
  void aggregate_into(const core::ServiceRequest& request, sim::SimTime now,
                      core::AggregationPlan& out) {
    algorithm_->aggregate_into(request, now, out);
  }

  /// Clock-driven entry points (the serving loop's): time is read from the
  /// injected Clock. Requires EngineDeps::clock.
  [[nodiscard]] core::AggregationPlan serve(
      const core::ServiceRequest& request) {
    QSA_EXPECTS(clock_ != nullptr);
    return aggregate(request, clock_->now());
  }
  void serve_into(const core::ServiceRequest& request,
                  core::AggregationPlan& out) {
    QSA_EXPECTS(clock_ != nullptr);
    aggregate_into(request, clock_->now(), out);
  }

  [[nodiscard]] core::AggregationAlgorithm& algorithm() noexcept {
    return *algorithm_;
  }
  /// The compatibility/cost memo; non-null iff config.compose_caches.
  [[nodiscard]] const cache::ComposeCache* compose_cache() const noexcept {
    return compose_cache_.get();
  }
  [[nodiscard]] const qos::TupleWeights& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Clock* clock() const noexcept { return clock_; }

  /// Attaches observability to the engine-owned pieces (the compose cache's
  /// hit/miss counters). Gated on the cache existing, so knobs-off metric
  /// exports stay byte-identical.
  void set_metrics(obs::MetricsRegistry* metrics) {
    if (compose_cache_ != nullptr) compose_cache_->set_metrics(metrics);
  }

 private:
  EngineConfig config_;
  const Clock* clock_ = nullptr;
  qos::TupleWeights weights_;
  std::unique_ptr<cache::ComposeCache> compose_cache_;
  std::unique_ptr<core::AggregationAlgorithm> algorithm_;
};

}  // namespace qsa::engine
