#include "qsa/engine/serve.hpp"

#include <chrono>
#include <vector>

#include "qsa/util/expects.hpp"
#include "qsa/util/thread_pool.hpp"

namespace qsa::engine {

void ServeStats::count(const core::AggregationPlan& plan) noexcept {
  ++requests;
  switch (plan.failure) {
    case core::FailureCause::kNone:
      ++ok;
      break;
    case core::FailureCause::kDiscovery:
      ++fail_discovery;
      break;
    case core::FailureCause::kComposition:
      ++fail_composition;
      break;
    default:
      // The engine runs setup only; admission/departure never occur here.
      ++fail_selection;
      break;
  }
  lookup_hops += static_cast<std::uint64_t>(plan.lookup_hops);
  random_fallback_hops +=
      static_cast<std::uint64_t>(plan.random_fallback_hops);
}

void ServeStats::merge(const ServeStats& other) noexcept {
  requests += other.requests;
  ok += other.ok;
  fail_discovery += other.fail_discovery;
  fail_composition += other.fail_composition;
  fail_selection += other.fail_selection;
  lookup_hops += other.lookup_hops;
  random_fallback_hops += other.random_fallback_hops;
}

namespace {

/// Serves `count` requests from the pool (cycled), batching clock ticks.
/// `pool_at` carries the round-robin cursor across phases. Stats and
/// latency are recorded only when `counted`.
void run_phase(const ShardLoop& loop, std::uint64_t count, bool counted,
               std::size_t& pool_at, core::AggregationPlan& plan,
               ServeStats& stats) {
  const std::size_t batch = loop.batch > 0 ? loop.batch : 1;
  std::uint64_t served = 0;
  while (served < count) {
    if (loop.tick > sim::SimTime::zero()) loop.clock->advance(loop.tick);
    const std::uint64_t burst =
        std::min<std::uint64_t>(batch, count - served);
    for (std::uint64_t b = 0; b < burst; ++b) {
      const core::ServiceRequest& request = loop.pool[pool_at];
      pool_at = pool_at + 1 == loop.pool.size() ? 0 : pool_at + 1;
      if (counted && loop.latency_us != nullptr) {
        const auto t0 = std::chrono::steady_clock::now();
        loop.engine->serve_into(request, plan);
        const auto t1 = std::chrono::steady_clock::now();
        loop.latency_us->observe(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      } else {
        loop.engine->serve_into(request, plan);
      }
      if (counted) stats.count(plan);
    }
    served += burst;
  }
}

void check_loop(const ShardLoop& loop) {
  QSA_EXPECTS(loop.engine != nullptr);
  QSA_EXPECTS(loop.clock != nullptr);
  QSA_EXPECTS(!loop.pool.empty());
}

}  // namespace

ServeStats serve_shard(const ShardLoop& loop) {
  check_loop(loop);
  ServeStats stats;
  core::AggregationPlan plan;
  std::size_t pool_at = 0;
  run_phase(loop, loop.warmup, /*counted=*/false, pool_at, plan, stats);
  run_phase(loop, loop.requests, /*counted=*/true, pool_at, plan, stats);
  return stats;
}

ServeStats serve_parallel(std::span<const ShardLoop> shards,
                          const std::function<void()>& on_steady) {
  QSA_EXPECTS(!shards.empty());
  for (const ShardLoop& loop : shards) check_loop(loop);

  util::ThreadPool& pool = util::shared_pool();

  // Per-shard loop state, built before the steady boundary so the counted
  // region performs no allocation: the cursors and scratch plans persist
  // across the two parallel_for phases, and both phase closures are
  // materialized up front (the measured one must not be constructed after
  // on_steady — a >16-byte capture would heap-allocate its target).
  std::vector<ServeStats> stats(shards.size());
  std::vector<core::AggregationPlan> plans(shards.size());
  std::vector<std::size_t> cursors(shards.size(), 0);
  const std::function<void(std::size_t)> warm_fn = [&](std::size_t i) {
    run_phase(shards[i], shards[i].warmup, /*counted=*/false, cursors[i],
              plans[i], stats[i]);
  };
  const std::function<void(std::size_t)> counted_fn = [&](std::size_t i) {
    run_phase(shards[i], shards[i].requests, /*counted=*/true, cursors[i],
              plans[i], stats[i]);
  };

  // Two pool phases with a natural barrier between them: parallel_for
  // returns only when every shard's warmup is done. The warmup phase also
  // primes the pool's task slab, so the counted phase reuses its capacity.
  pool.parallel_for(shards.size(), warm_fn);
  if (on_steady) on_steady();
  pool.parallel_for(shards.size(), counted_fn);

  ServeStats merged;
  for (const ServeStats& s : stats) merged.merge(s);
  return merged;
}

}  // namespace qsa::engine
