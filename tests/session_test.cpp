// Session manager: all-or-nothing admission, precise release, departure
// aborts.
#include <gtest/gtest.h>

#include <vector>

#include "qsa/session/manager.hpp"

namespace qsa::session {
namespace {

using core::FailureCause;
using net::PeerId;
using net::ProbeClock;
using qos::ResourceVector;
using sim::SimTime;

struct SessionFixture : ::testing::Test {
  SessionFixture()
      : peers(qos::ResourceSchema::paper(), ProbeClock(SimTime::seconds(30))),
        net(1, ProbeClock(SimTime::seconds(30))),
        manager(simulator, peers, net, catalog) {
    requester = peers.add_peer(ResourceVector{500, 500}, SimTime::zero());
    const auto svc = catalog.add_service("svc");
    registry::ServiceInstance inst;
    inst.service = svc;
    inst.resources = ResourceVector{100, 100};
    inst.bandwidth_kbps = 10;  // below the 56 kbps minimum link level
    instance = catalog.add_instance(inst);

    manager.set_outcome_callback(
        [this](const Session& s, FailureCause cause) {
          outcomes.emplace_back(s.id, cause);
        });
  }

  PeerId add_host(double capacity = 500) {
    return peers.add_peer(ResourceVector{capacity, capacity}, SimTime::zero());
  }

  core::ServiceRequest make_request(SimTime duration = SimTime::minutes(10)) {
    core::ServiceRequest req;
    req.requester = requester;
    req.abstract_path = {0};
    req.session_duration = duration;
    return req;
  }

  core::AggregationPlan make_plan(std::vector<PeerId> hosts) {
    core::AggregationPlan plan;
    plan.instances.assign(hosts.size(), instance);
    plan.hosts = std::move(hosts);
    return plan;
  }

  sim::Simulator simulator;
  net::PeerTable peers;
  net::NetworkModel net;
  registry::ServiceCatalog catalog;
  SessionManager manager;
  PeerId requester = 0;
  registry::InstanceId instance = 0;
  std::vector<std::pair<SessionId, FailureCause>> outcomes;
};

TEST_F(SessionFixture, AdmissionReservesResources) {
  const auto h = add_host();
  ASSERT_EQ(manager.start_session(make_request(), make_plan({h})),
            FailureCause::kNone);
  EXPECT_EQ(peers.peer(h).available(), (ResourceVector{400, 400}));
  EXPECT_EQ(manager.active_sessions(), 1u);
  EXPECT_EQ(manager.stats().admitted, 1u);
  EXPECT_LT(net.available_kbps(h, requester), net.capacity_kbps(h, requester));
}

TEST_F(SessionFixture, CompletionReleasesEverything) {
  const auto h = add_host();
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(5)),
                                  make_plan({h})),
            FailureCause::kNone);
  simulator.run_until(SimTime::minutes(6));
  EXPECT_EQ(peers.peer(h).available(), (ResourceVector{500, 500}));
  EXPECT_DOUBLE_EQ(net.available_kbps(h, requester),
                   net.capacity_kbps(h, requester));
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.stats().completed, 1u);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].second, FailureCause::kNone);
}

TEST_F(SessionFixture, InsufficientResourcesRejectedWithRollback) {
  const auto big = add_host(500);
  const auto small = add_host(150);
  // Two instances on `small` exceed its capacity; `big`'s partial
  // reservation must be rolled back.
  const auto cause = manager.start_session(
      make_request(), make_plan({big, small, small}));
  EXPECT_EQ(cause, FailureCause::kAdmission);
  EXPECT_EQ(peers.peer(big).available(), (ResourceVector{500, 500}));
  EXPECT_EQ(peers.peer(small).available(), (ResourceVector{150, 150}));
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.stats().rejected, 1u);
  EXPECT_TRUE(outcomes.empty());  // setup failures never reach the callback
}

TEST_F(SessionFixture, BandwidthShortageRejects) {
  // Find a 56 kbps pair and demand more than it has.
  registry::ServiceInstance fat;
  fat.service = 0;
  fat.resources = ResourceVector{1, 1};
  fat.bandwidth_kbps = 400;
  const auto fat_id = catalog.add_instance(fat);

  PeerId h = add_host();
  while (net.capacity_kbps(h, requester) > 100) h = add_host();
  core::AggregationPlan plan;
  plan.instances = {fat_id};
  plan.hosts = {h};
  EXPECT_EQ(manager.start_session(make_request(), plan),
            FailureCause::kAdmission);
  EXPECT_EQ(peers.peer(h).available(), (ResourceVector{500, 500}));
}

TEST_F(SessionFixture, MultiHopReservesEveryEdge) {
  const auto h1 = add_host();
  const auto h2 = add_host();
  ASSERT_EQ(manager.start_session(make_request(), make_plan({h1, h2})),
            FailureCause::kNone);
  // Edges: h1 -> h2 and h2 -> requester.
  EXPECT_LT(net.available_kbps(h1, h2), net.capacity_kbps(h1, h2));
  EXPECT_LT(net.available_kbps(h2, requester),
            net.capacity_kbps(h2, requester));
}

TEST_F(SessionFixture, SamePeerTwiceStacksReservations) {
  const auto h = add_host(500);
  ASSERT_EQ(manager.start_session(make_request(), make_plan({h, h})),
            FailureCause::kNone);
  EXPECT_EQ(peers.peer(h).available(), (ResourceVector{300, 300}));
}

TEST_F(SessionFixture, HostDepartureAbortsSession) {
  const auto h1 = add_host();
  const auto h2 = add_host();
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h1, h2})),
            FailureCause::kNone);
  simulator.run_until(SimTime::minutes(1));
  manager.peer_departed(h1);
  peers.remove_peer(h1, simulator.now());
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.stats().aborted, 1u);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].second, FailureCause::kDeparture);
  // The surviving host's resources come back.
  EXPECT_EQ(peers.peer(h2).available(), (ResourceVector{500, 500}));
  // The scheduled end event must not fire later.
  simulator.run_until(SimTime::minutes(40));
  EXPECT_EQ(manager.stats().completed, 0u);
  EXPECT_EQ(outcomes.size(), 1u);
}

TEST_F(SessionFixture, RequesterDepartureAbortsSession) {
  const auto h = add_host();
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h})),
            FailureCause::kNone);
  manager.peer_departed(requester);
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.stats().aborted, 1u);
}

TEST_F(SessionFixture, UnrelatedDepartureLeavesSessionAlone) {
  const auto h = add_host();
  const auto stranger = add_host();
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h})),
            FailureCause::kNone);
  manager.peer_departed(stranger);
  EXPECT_EQ(manager.active_sessions(), 1u);
  EXPECT_EQ(manager.stats().aborted, 0u);
}

TEST_F(SessionFixture, DepartureAbortsAllResidentSessions) {
  const auto shared = add_host(500);
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({shared})),
            FailureCause::kNone);
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({shared})),
            FailureCause::kNone);
  EXPECT_EQ(manager.active_sessions(), 2u);
  manager.peer_departed(shared);
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.stats().aborted, 2u);
}

TEST_F(SessionFixture, ConcurrentSessionsSaturateThenFreeCapacity) {
  const auto h = add_host(500);  // fits 5 instances of 100 units
  int admitted = 0;
  for (int i = 0; i < 8; ++i) {
    if (manager.start_session(make_request(SimTime::minutes(5)),
                              make_plan({h})) == FailureCause::kNone) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(manager.stats().rejected, 3u);
  simulator.run_until(SimTime::minutes(6));
  // Everything released; capacity is reusable.
  EXPECT_EQ(manager.start_session(make_request(), make_plan({h})),
            FailureCause::kNone);
}

// ----------------------------------------------------- departure recovery

TEST_F(SessionFixture, ConsecutiveInstancesOnOneHostUseTheSelfLoop) {
  // Two consecutive path hops on the same host: the edge between them is the
  // a==b loopback link. The loopback is process-local memory, not a network
  // link — reserving on it is a no-op that never touches the ledger, and its
  // available bandwidth stays pinned at the loopback capacity throughout.
  const auto h = add_host();
  const std::size_t pairs_before = net.active_pairs();
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(5)),
                                  make_plan({h, h})),
            FailureCause::kNone);
  EXPECT_EQ(peers.peer(h).available(), (ResourceVector{300, 300}));
  EXPECT_DOUBLE_EQ(net.available_kbps(h, h), net::NetworkModel::kLoopbackKbps);
  // The session's only real link is host->requester; the self-edge must not
  // have grown the reservation ledger.
  EXPECT_EQ(net.active_pairs(), pairs_before + 1);
  simulator.run_until(SimTime::minutes(6));
  EXPECT_EQ(manager.stats().completed, 1u);
  EXPECT_EQ(peers.peer(h).available(), (ResourceVector{500, 500}));
  EXPECT_DOUBLE_EQ(net.available_kbps(h, h), net.capacity_kbps(h, h));
  EXPECT_DOUBLE_EQ(net.available_kbps(h, requester),
                   net.capacity_kbps(h, requester));
}

TEST_F(SessionFixture, SinkOnRequesterUsesTheSelfLoop) {
  // The requester hosts the sink instance itself: the final delivery edge
  // sink->requester degenerates to requester==requester.
  const std::size_t pairs_before = net.active_pairs();
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(5)),
                                  make_plan({requester})),
            FailureCause::kNone);
  EXPECT_EQ(peers.peer(requester).available(), (ResourceVector{400, 400}));
  // The delivery edge degenerated to a self-pair: short-circuited, so the
  // ledger gained nothing and loopback bandwidth reads as unlimited.
  EXPECT_DOUBLE_EQ(net.available_kbps(requester, requester),
                   net::NetworkModel::kLoopbackKbps);
  EXPECT_EQ(net.active_pairs(), pairs_before);
  simulator.run_until(SimTime::minutes(6));
  EXPECT_EQ(manager.stats().completed, 1u);
  EXPECT_EQ(peers.peer(requester).available(), (ResourceVector{500, 500}));
  EXPECT_DOUBLE_EQ(net.available_kbps(requester, requester),
                   net.capacity_kbps(requester, requester));
}

TEST_F(SessionFixture, RecoveryCollapsesPathOntoOneHost) {
  // Both positions migrate to the same spare: the rebuilt path contains a
  // self-loop edge. Recovery must admit it and account both reservations.
  const auto h = add_host();
  const auto spare = add_host();
  manager.set_recovery([&](const Session&, std::size_t, PeerId) {
    return spare;
  });
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h, h})),
            FailureCause::kNone);
  manager.peer_departed(h);
  peers.remove_peer(h, simulator.now());
  ASSERT_EQ(manager.stats().recovered, 1u);
  EXPECT_EQ(peers.peer(spare).available(), (ResourceVector{300, 300}));
  // The collapsed path's internal edge is a self-pair: no ledger entry, full
  // loopback bandwidth.
  EXPECT_DOUBLE_EQ(net.available_kbps(spare, spare),
                   net::NetworkModel::kLoopbackKbps);
  simulator.run_until(SimTime::minutes(31));
  EXPECT_EQ(manager.stats().completed, 1u);
  EXPECT_EQ(peers.peer(spare).available(), (ResourceVector{500, 500}));
  EXPECT_DOUBLE_EQ(net.available_kbps(spare, spare),
                   net.capacity_kbps(spare, spare));
}

TEST_F(SessionFixture, RecoveryFailsWhenReservationMessagesAreLost) {
  // A reservation round-trip that is lost on every attempt reads as a
  // refusal: recovery gives up and the session aborts even though the spare
  // had room.
  const auto h = add_host();
  const auto spare = add_host();
  fault::FaultConfig cfg;
  cfg.reservation_loss = 1.0;
  const fault::FaultPlan plan(3, cfg);
  manager.set_faults(&plan);
  manager.set_recovery([&](const Session&, std::size_t, PeerId) {
    return spare;
  });
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h})),
            FailureCause::kNone);
  manager.peer_departed(h);
  peers.remove_peer(h, simulator.now());
  EXPECT_EQ(manager.stats().recovered, 0u);
  EXPECT_EQ(manager.stats().aborted, 1u);
  EXPECT_EQ(peers.peer(spare).available(), (ResourceVector{500, 500}));
  EXPECT_GT(plan.stats().retries[static_cast<std::size_t>(
                fault::Channel::kReservation)],
            0u);
}

TEST_F(SessionFixture, LosslessFaultPlanLeavesRecoveryIntact) {
  const auto h = add_host();
  const auto spare = add_host();
  fault::FaultConfig cfg;
  cfg.max_extra_delay = sim::SimTime::millis(5);  // enabled, zero loss
  const fault::FaultPlan plan(3, cfg);
  manager.set_faults(&plan);
  manager.set_recovery([&](const Session&, std::size_t, PeerId) {
    return spare;
  });
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h})),
            FailureCause::kNone);
  manager.peer_departed(h);
  peers.remove_peer(h, simulator.now());
  EXPECT_EQ(manager.stats().recovered, 1u);
}

TEST_F(SessionFixture, RecoveryMigratesSessionToReplacement) {
  const auto h = add_host();
  const auto spare = add_host();
  manager.set_recovery([&](const Session&, std::size_t, PeerId) {
    return spare;
  });
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h})),
            FailureCause::kNone);
  manager.peer_departed(h);
  peers.remove_peer(h, simulator.now());
  // The session survives on the spare host, with the reservation migrated.
  EXPECT_EQ(manager.active_sessions(), 1u);
  EXPECT_EQ(manager.stats().recovered, 1u);
  EXPECT_EQ(manager.stats().aborted, 0u);
  EXPECT_EQ(peers.peer(spare).available(), (ResourceVector{400, 400}));
  // And still completes at its scheduled end.
  simulator.run_until(SimTime::minutes(31));
  EXPECT_EQ(manager.stats().completed, 1u);
  EXPECT_EQ(peers.peer(spare).available(), (ResourceVector{500, 500}));
}

TEST_F(SessionFixture, RecoveryRewiresLinks) {
  const auto h1 = add_host();
  const auto h2 = add_host();
  const auto spare = add_host();
  manager.set_recovery([&](const Session&, std::size_t, PeerId) {
    return spare;
  });
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h1, h2})),
            FailureCause::kNone);
  manager.peer_departed(h1);
  peers.remove_peer(h1, simulator.now());
  ASSERT_EQ(manager.stats().recovered, 1u);
  // New edge spare -> h2 carries the reservation; old edge h1 -> h2 is free.
  EXPECT_LT(net.available_kbps(spare, h2), net.capacity_kbps(spare, h2));
  EXPECT_DOUBLE_EQ(net.available_kbps(h1, h2), net.capacity_kbps(h1, h2));
}

TEST_F(SessionFixture, RecoveryDeclinedAbortsSession) {
  const auto h = add_host();
  manager.set_recovery(
      [](const Session&, std::size_t, PeerId) { return net::kNoPeer; });
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h})),
            FailureCause::kNone);
  manager.peer_departed(h);
  EXPECT_EQ(manager.stats().recovered, 0u);
  EXPECT_EQ(manager.stats().aborted, 1u);
  EXPECT_EQ(manager.active_sessions(), 0u);
}

TEST_F(SessionFixture, RecoveryFailsWhenReplacementIsFull) {
  const auto h = add_host();
  const auto tiny = add_host(50);  // cannot fit the 100-unit instance
  manager.set_recovery([&](const Session&, std::size_t, PeerId) {
    return tiny;
  });
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h})),
            FailureCause::kNone);
  manager.peer_departed(h);
  EXPECT_EQ(manager.stats().aborted, 1u);
  EXPECT_EQ(peers.peer(tiny).available(), (ResourceVector{50, 50}));
}

TEST_F(SessionFixture, RequesterDepartureNotRecoverable) {
  const auto h = add_host();
  const auto spare = add_host();
  manager.set_recovery([&](const Session&, std::size_t, PeerId) {
    return spare;
  });
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h})),
            FailureCause::kNone);
  manager.peer_departed(requester);
  EXPECT_EQ(manager.stats().aborted, 1u);
  EXPECT_EQ(manager.stats().recovered, 0u);
}

TEST_F(SessionFixture, RecoveredSessionSurvivesSecondDeparture) {
  const auto h = add_host();
  const auto spare1 = add_host();
  const auto spare2 = add_host();
  int calls = 0;
  manager.set_recovery([&](const Session&, std::size_t, PeerId) {
    return ++calls == 1 ? spare1 : spare2;
  });
  ASSERT_EQ(manager.start_session(make_request(SimTime::minutes(30)),
                                  make_plan({h})),
            FailureCause::kNone);
  manager.peer_departed(h);
  peers.remove_peer(h, simulator.now());
  manager.peer_departed(spare1);
  peers.remove_peer(spare1, simulator.now());
  EXPECT_EQ(manager.stats().recovered, 2u);
  EXPECT_EQ(manager.active_sessions(), 1u);
  EXPECT_EQ(peers.peer(spare2).available(), (ResourceVector{400, 400}));
}

TEST_F(SessionFixture, LastSessionIdTracksAdmissions) {
  const auto h = add_host();
  ASSERT_EQ(manager.start_session(make_request(), make_plan({h})),
            FailureCause::kNone);
  const auto first = manager.last_session_id();
  ASSERT_EQ(manager.start_session(make_request(), make_plan({h})),
            FailureCause::kNone);
  EXPECT_EQ(manager.last_session_id(), first + 1);
}

}  // namespace
}  // namespace qsa::session
