// Experiment runner, config scaling, and harness-level helpers.
#include <gtest/gtest.h>

#include <cstdlib>

#include "qsa/harness/experiment.hpp"

namespace qsa::harness {
namespace {

GridConfig tiny_config() {
  GridConfig c;
  c.seed = 5;
  c.peers = 200;
  c.min_providers = 10;
  c.max_providers = 20;
  c.apps.applications = 4;
  c.requests.rate_per_min = 10;
  c.horizon = sim::SimTime::minutes(6);
  return c;
}

TEST(AlgorithmKindNames, RoundTrip) {
  EXPECT_EQ(to_string(AlgorithmKind::kQsa), "qsa");
  EXPECT_EQ(to_string(AlgorithmKind::kRandom), "random");
  EXPECT_EQ(to_string(AlgorithmKind::kFixed), "fixed");
}

TEST(GridConfigScale, ScalesPopulationBoundKnobs) {
  GridConfig c;
  c.peers = 10'000;
  c.requests.rate_per_min = 200;
  c.churn.events_per_min = 50;
  c.scale(0.1);
  EXPECT_EQ(c.peers, 1000u);
  EXPECT_DOUBLE_EQ(c.requests.rate_per_min, 20);
  EXPECT_DOUBLE_EQ(c.churn.events_per_min, 5);
}

TEST(GridConfigScale, EnforcesMinimumPopulation) {
  GridConfig c;
  c.peers = 1000;
  c.scale(0.01);
  EXPECT_EQ(c.peers, 200u);
}

TEST(GridConfigScale, EnvScaleParsesVariable) {
  ::setenv("QSA_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(GridConfig::env_scale(), 0.25);
  ::unsetenv("QSA_SCALE");
  EXPECT_DOUBLE_EQ(GridConfig::env_scale(0.5), 0.5);
  ::setenv("QSA_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(GridConfig::env_scale(0.5), 0.5);
  ::unsetenv("QSA_SCALE");
}

TEST(AlgorithmComparison, BuildsThreeCells) {
  const auto cells = algorithm_comparison(tiny_config(), "r100/");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].label, "r100/qsa");
  EXPECT_EQ(cells[0].config.algorithm, AlgorithmKind::kQsa);
  EXPECT_EQ(cells[1].label, "r100/random");
  EXPECT_EQ(cells[2].label, "r100/fixed");
  // Everything else is inherited from the base config.
  EXPECT_EQ(cells[1].config.peers, tiny_config().peers);
}

TEST(ExperimentRunner, RunsCellsAndPreservesOrder) {
  std::vector<ExperimentCell> cells;
  for (int i = 0; i < 3; ++i) {
    auto c = tiny_config();
    c.seed = static_cast<std::uint64_t>(100 + i);
    cells.push_back(ExperimentCell{"cell" + std::to_string(i), c});
  }
  ExperimentRunner runner(2);
  const auto results = runner.run(cells);
  ASSERT_EQ(results.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].label,
              "cell" + std::to_string(i));
    EXPECT_GT(results[static_cast<std::size_t>(i)].result.requests, 0u);
  }
}

TEST(ExperimentRunner, ThreadCountDoesNotChangeResults) {
  std::vector<ExperimentCell> cells;
  for (int i = 0; i < 4; ++i) {
    auto c = tiny_config();
    c.seed = static_cast<std::uint64_t>(7 + i);
    cells.push_back(ExperimentCell{std::to_string(i), c});
  }
  const auto serial = ExperimentRunner(1).run(cells);
  const auto parallel = ExperimentRunner(4).run(cells);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.requests, parallel[i].result.requests);
    EXPECT_EQ(serial[i].result.successes, parallel[i].result.successes);
    EXPECT_EQ(serial[i].result.lookup_hops, parallel[i].result.lookup_hops);
  }
}

TEST(QsaOptionsAblation, TiersCanBeDisabled) {
  // Full QSA vs selection-ablated QSA on the same saturated grid: smart
  // selection must not lose.
  auto base = tiny_config();
  base.requests.rate_per_min = 80;
  base.horizon = sim::SimTime::minutes(10);

  auto run_with = [&](core::QsaOptions options) {
    auto c = base;
    c.qsa_options = options;
    GridSimulation grid(c);
    return grid.run().success_ratio();
  };
  const double full = run_with(core::QsaOptions{});
  const double no_selection =
      run_with(core::QsaOptions{.smart_selection = false});
  EXPECT_GE(full, no_selection);
}

}  // namespace
}  // namespace qsa::harness
