// Byte-identity harness for the event-engine/perf refactor: whole-grid runs
// digested against golden values captured from the pre-refactor engine
// (binary-heap EventQueue, std::function actions, unordered_map session
// ledgers). The slab/indexed-heap engine, InplaceFunction actions and
// DenseMap ledgers are pure mechanics — every scalar, counter, series
// sample, trace line and metrics row must survive bit-for-bit.
//
// The digest covers the full observable surface: GridResult scalars
// (doubles bit_cast so NaN/sign/ULP changes are caught), the name-sorted
// counter table, the psi time series, and FNV-1a hashes of the exported
// trace JSONL and metrics CSV. Cells mirror cache_test's transparency
// matrix: every algorithm x two seeds on the base workload, plus one
// stressed cell with recovery + retries + faults + replication + the
// discovery cache all on.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "qsa/harness/grid.hpp"
#include "qsa/obs/export.hpp"

namespace qsa::harness {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

GridConfig base_config(std::uint64_t seed, AlgorithmKind kind) {
  GridConfig c;
  c.seed = seed;
  c.peers = 200;
  c.min_providers = 10;
  c.max_providers = 20;
  c.apps.applications = 5;
  c.requests.rate_per_min = 30;
  c.churn.events_per_min = 6;
  c.admission_retries = 1;
  c.horizon = sim::SimTime::minutes(10);
  c.sample_period = sim::SimTime::minutes(2);
  c.algorithm = kind;
  c.observe = true;
  return c;
}

GridConfig stress_config(std::uint64_t seed) {
  auto c = base_config(seed, AlgorithmKind::kQsa);
  c.enable_recovery = true;
  c.admission_retries = 2;
  c.faults.set_all_loss(0.05);
  c.replication.enabled = true;
  c.track_load = true;
  c.discovery_cache_ttl = sim::SimTime::minutes(2);
  return c;
}

std::string digest_string(const GridConfig& cfg) {
  GridSimulation grid(cfg);
  const GridResult r = grid.run();
  std::ostringstream os;
  os << "req=" << r.requests << ";ok=" << r.successes
     << ";fd=" << r.failures_discovery << ";fc=" << r.failures_composition
     << ";fs=" << r.failures_selection << ";fa=" << r.failures_admission
     << ";fdep=" << r.failures_departure << ";hops=" << r.lookup_hops
     << ";setup=" << r.setup_latency_ms << ";notif=" << r.notification_messages
     << ";rand=" << r.random_fallback_hops << ";dep=" << r.churn_departures
     << ";arr=" << r.churn_arrivals
     << ";cost=" << std::bit_cast<std::uint64_t>(r.avg_composition_cost)
     << ";conc=" << std::bit_cast<std::uint64_t>(r.avg_service_concentration)
     << "\n";
  for (const auto& [name, value] : r.counters.all()) {
    os << name << '=' << value << '\n';
  }
  for (const auto& s : r.series.samples()) {
    os << "s:" << s.time.as_millis() << '='
       << std::bit_cast<std::uint64_t>(s.value) << '\n';
  }
  os << "trace:" << fnv1a(obs::trace_jsonl(*grid.tracer())) << '\n';
  os << "metrics:" << fnv1a(obs::metrics_csv(*grid.metrics())) << '\n';
  return os.str();
}

// Golden digests captured from the pre-refactor engine (tools kept outside
// the tree; regenerate by printing fnv1a(digest_string(cell)) per cell). A
// mismatch means the engine changed observable behaviour — that is a bug in
// the refactor, not a "rebaseline and move on" situation.
struct GoldenCell {
  const char* label;
  std::uint64_t digest;
};

constexpr GoldenCell kGolden[] = {
    {"qsa/11", 0xe078e6cdf281f8b2ULL},
    {"qsa/23", 0x08fe39c1a3f00ea6ULL},
    {"random/11", 0x1cfaebf95ccde59bULL},
    {"random/23", 0x5abf810c039deea8ULL},
    {"fixed/11", 0x4864550e295b0df3ULL},
    {"fixed/23", 0x4d607d92c3f2e141ULL},
    {"stress/7", 0x1ff9f9939bbbbd07ULL},
};

std::uint64_t golden(const std::string& label) {
  for (const auto& cell : kGolden) {
    if (label == cell.label) return cell.digest;
  }
  ADD_FAILURE() << "no golden digest for cell " << label;
  return 0;
}

class PerfRefactorIdentity : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(PerfRefactorIdentity, MatchesPreRefactorGolden) {
  for (std::uint64_t seed : {11u, 23u}) {
    const std::string label =
        std::string(to_string(GetParam())) + "/" + std::to_string(seed);
    const std::string d = digest_string(base_config(seed, GetParam()));
    EXPECT_EQ(fnv1a(d), golden(label)) << "digest drift at cell " << label;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, PerfRefactorIdentity,
                         ::testing::Values(AlgorithmKind::kQsa,
                                           AlgorithmKind::kRandom,
                                           AlgorithmKind::kFixed),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// Every optional subsystem at once: recovery, retries, lossy messaging,
// replication + load tracking, discovery cache. The widest event mix the
// engine serves — periodic timers, session ends, fault backoff retries,
// replica sweeps — all cancelling and rescheduling against the slab.
TEST(PerfRefactorIdentity, StressedCellMatchesGolden) {
  const std::string d = digest_string(stress_config(7));
  EXPECT_EQ(fnv1a(d), golden("stress/7")) << "digest drift at cell stress/7";
}

// Same cell, same seed, two fresh grids in one process: the engine (slot
// recycling, shrink policy, DenseMap state) leaks nothing between runs.
TEST(PerfRefactorIdentity, RerunIsDeterministic) {
  const auto cfg = base_config(11, AlgorithmKind::kQsa);
  EXPECT_EQ(digest_string(cfg), digest_string(cfg));
}

}  // namespace
}  // namespace qsa::harness
