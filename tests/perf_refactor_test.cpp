// Byte-identity harness for whole-grid runs, digested against golden values
// so that pure-mechanics refactors (event engine, observability pipeline)
// cannot silently change observable behaviour.
//
// The digest is split in two since the streaming-observability rework:
//
//  * The SIM digest covers the simulation's own surface — GridResult
//    scalars (doubles bit_cast so NaN/sign/ULP changes are caught), the
//    name-sorted counter table and the psi time series. Its goldens were
//    captured from the pre-streaming tracer and are pinned hard: the obs
//    rework must not perturb the simulation by a single bit, sampled or
//    not, observing or not.
//
//  * The OBS digest covers the exported observability artifacts — FNV-1a
//    of the streamed trace JSONL and the metrics CSV. PR 6 intentionally
//    rebaselined this surface (spans now stream per finished request
//    instead of in global begin order, and obs.* meta-instruments were
//    added), so these goldens date from the streaming pipeline; they pin
//    its determinism going forward.
//
// Cells mirror cache_test's transparency matrix: every algorithm x two
// seeds on the base workload, plus one stressed cell with recovery +
// retries + faults + replication + the discovery cache all on, plus a
// sampled variant of the stressed cell (1-in-4 sampling + flight recorder;
// no obs window, since the window timer schedules real simulator events)
// whose SIM digest must stay equal to the unsampled one.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "qsa/harness/grid.hpp"
#include "qsa/harness/shard_world.hpp"
#include "qsa/obs/export.hpp"
#include "qsa/obs/sink.hpp"

namespace qsa::harness {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

GridConfig base_config(std::uint64_t seed, AlgorithmKind kind) {
  GridConfig c;
  c.seed = seed;
  c.peers = 200;
  c.min_providers = 10;
  c.max_providers = 20;
  c.apps.applications = 5;
  c.requests.rate_per_min = 30;
  c.churn.events_per_min = 6;
  c.admission_retries = 1;
  c.horizon = sim::SimTime::minutes(10);
  c.sample_period = sim::SimTime::minutes(2);
  c.algorithm = kind;
  c.observe = true;
  return c;
}

GridConfig stress_config(std::uint64_t seed) {
  auto c = base_config(seed, AlgorithmKind::kQsa);
  c.enable_recovery = true;
  c.admission_retries = 2;
  c.faults.set_all_loss(0.05);
  c.replication.enabled = true;
  c.track_load = true;
  c.discovery_cache_ttl = sim::SimTime::minutes(2);
  return c;
}

GridConfig sampled_stress_config(std::uint64_t seed) {
  auto c = stress_config(seed);
  c.trace_sample = 4;
  c.flight_recorder = 4;
  return c;
}

void append_sim_digest(std::ostringstream& os, const GridResult& r) {
  os << "req=" << r.requests << ";ok=" << r.successes
     << ";fd=" << r.failures_discovery << ";fc=" << r.failures_composition
     << ";fs=" << r.failures_selection << ";fa=" << r.failures_admission
     << ";fdep=" << r.failures_departure << ";hops=" << r.lookup_hops
     << ";setup=" << r.setup_latency_ms << ";notif=" << r.notification_messages
     << ";rand=" << r.random_fallback_hops << ";dep=" << r.churn_departures
     << ";arr=" << r.churn_arrivals
     << ";cost=" << std::bit_cast<std::uint64_t>(r.avg_composition_cost)
     << ";conc=" << std::bit_cast<std::uint64_t>(r.avg_service_concentration)
     << "\n";
  for (const auto& [name, value] : r.counters.all()) {
    os << name << '=' << value << '\n';
  }
  for (const auto& s : r.series.samples()) {
    os << "s:" << s.time.as_millis() << '='
       << std::bit_cast<std::uint64_t>(s.value) << '\n';
  }
}

struct RunDigests {
  std::uint64_t sim = 0;
  std::uint64_t obs = 0;
};

RunDigests run_digests(const GridConfig& cfg) {
  GridSimulation grid(cfg);
  obs::StringSpanSink trace;
  grid.set_span_sink(&trace);
  const GridResult r = grid.run();

  std::ostringstream sim;
  append_sim_digest(sim, r);

  RunDigests out;
  out.sim = fnv1a(sim.str());
  if (cfg.observe) {
    std::ostringstream obs_os;
    obs_os << "trace:" << fnv1a(trace.str()) << '\n';
    obs_os << "metrics:" << fnv1a(obs::metrics_csv(*grid.metrics())) << '\n';
    if (grid.flight() != nullptr) {
      obs_os << "flight:" << fnv1a(grid.flight()->jsonl()) << '\n';
    }
    if (grid.live_series() != nullptr) {
      obs_os << "series:" << fnv1a(grid.live_series()->csv()) << '\n';
    }
    out.obs = fnv1a(obs_os.str());
  }
  return out;
}

struct GoldenCell {
  const char* label;
  std::uint64_t digest;
};

// SIM goldens: captured from the pre-streaming-observability tracer (PR 5's
// engine). A mismatch means the simulation's own behaviour changed — that
// is a bug, not a "rebaseline and move on" situation. The obs-off cells pin
// the other half of the invariant: observing never perturbs the run.
constexpr GoldenCell kGoldenSim[] = {
    {"qsa/11", 0xb1cfc881cd6dbb8cULL},
    {"qsa/23", 0x040b85f9ae775313ULL},
    {"random/11", 0x0e75f2ceeeb72ca9ULL},
    {"random/23", 0xec18e30c8a0b05f4ULL},
    {"fixed/11", 0x8dbc0a30cab470b3ULL},
    {"fixed/23", 0x7ea417e558683be1ULL},
    {"stress/7", 0x2dc07af8d10a2bb7ULL},
    {"qsa/11/obs-off", 0xb1cfc881cd6dbb8cULL},
    {"qsa/23/obs-off", 0x040b85f9ae775313ULL},
    {"stress/7/obs-off", 0x2dc07af8d10a2bb7ULL},
    // Sampling and the flight recorder schedule no events and draw no RNG,
    // so the sampled cell's sim digest equals the unsampled one.
    {"stress-sampled/7", 0x2dc07af8d10a2bb7ULL},
};

// ShardWorld goldens: the sharded message-plane workload (96 peers, 8 s,
// 250 ms ticks, seed 42), captured at K=1 on the keyed event queue. Every
// shard count must land on these exact digests — the cells below run K=1
// AND K=4 against the same value, so both the serial path and the full
// barrier/mailbox machinery are pinned across builds.
constexpr GoldenCell kGoldenShard[] = {
    {"shard/chord", 0xe00600b10d8d6fafULL},
    {"shard/can", 0xd943dd6aa4a78042ULL},
    {"shard/pastry", 0x814e3f1f589dfebcULL},
    {"shard/chord/faults", 0x960e9d98629897b7ULL},
};

// OBS goldens: captured from the streaming pipeline this test ships with
// (see header comment for why they were rebaselined in PR 6). From here on
// they are as hard as the sim goldens.
constexpr GoldenCell kGoldenObs[] = {
    {"qsa/11", 0x4ea5ec02be758814ULL},
    {"qsa/23", 0xe2c099f0ec1e46e6ULL},
    {"random/11", 0x615b9387e9fa661eULL},
    {"random/23", 0xf3708106722503a6ULL},
    {"fixed/11", 0x27b4c0be2bf2089dULL},
    {"fixed/23", 0x18b90d2e878092cbULL},
    {"stress/7", 0x6f0b53c6459828f5ULL},
    {"stress-sampled/7", 0x54a8a8132f8af8edULL},
};

template <std::size_t N>
std::uint64_t golden(const GoldenCell (&table)[N], const std::string& label) {
  for (const auto& cell : table) {
    if (label == cell.label) return cell.digest;
  }
  ADD_FAILURE() << "no golden digest for cell " << label;
  return 0;
}

std::uint64_t golden_obs(const std::string& label) {
  for (const auto& cell : kGoldenObs) {
    if (label == cell.label) return cell.digest;
  }
  ADD_FAILURE() << "no golden obs digest for cell " << label;
  return 0;
}

void expect_cell(const std::string& label, const GridConfig& cfg) {
  const RunDigests d = run_digests(cfg);
  EXPECT_EQ(d.sim, golden(kGoldenSim, label))
      << "sim digest drift at cell " << label;
  if (cfg.observe) {
    EXPECT_EQ(d.obs, golden_obs(label))
        << "obs digest drift at cell " << label;
  }
}

class PerfRefactorIdentity : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(PerfRefactorIdentity, MatchesPreRefactorGolden) {
  for (std::uint64_t seed : {11u, 23u}) {
    const std::string label =
        std::string(to_string(GetParam())) + "/" + std::to_string(seed);
    expect_cell(label, base_config(seed, GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, PerfRefactorIdentity,
                         ::testing::Values(AlgorithmKind::kQsa,
                                           AlgorithmKind::kRandom,
                                           AlgorithmKind::kFixed),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// Every optional subsystem at once: recovery, retries, lossy messaging,
// replication + load tracking, discovery cache. The widest event mix the
// engine serves — periodic timers, session ends, fault backoff retries,
// replica sweeps — all cancelling and rescheduling against the slab.
TEST(PerfRefactorIdentity, StressedCellMatchesGolden) {
  expect_cell("stress/7", stress_config(7));
}

// The same stressed cell with 1-in-4 head sampling and the flight recorder
// on: the simulation half of the digest must not move by a bit.
TEST(PerfRefactorIdentity, SampledStressedCellMatchesGolden) {
  expect_cell("stress-sampled/7", sampled_stress_config(7));
}

// Observability fully off: the sim digest equals the observed runs' — the
// whole obs layer (streaming tracer included) never perturbs the grid.
TEST(PerfRefactorIdentity, ObsOffCellsMatchObsOnSimDigests) {
  for (std::uint64_t seed : {11u, 23u}) {
    auto cfg = base_config(seed, AlgorithmKind::kQsa);
    cfg.observe = false;
    expect_cell("qsa/" + std::to_string(seed) + "/obs-off", cfg);
  }
  auto cfg = stress_config(7);
  cfg.observe = false;
  expect_cell("stress/7/obs-off", cfg);
}

// The sharded message-plane engine against its goldens at K=1 and K=4:
// cross-build drift in the keyed queue, the conservative epochs, or the
// mailbox path all land here as a digest mismatch.
TEST(PerfRefactorIdentity, ShardWorldMatchesGoldenAtEveryK) {
  const struct {
    const char* label;
    OverlayKind overlay;
    bool faults;
  } cells[] = {
      {"shard/chord", OverlayKind::kChord, false},
      {"shard/can", OverlayKind::kCan, false},
      {"shard/pastry", OverlayKind::kPastry, false},
      {"shard/chord/faults", OverlayKind::kChord, true},
  };
  for (const auto& cell : cells) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{4}}) {
      ShardWorldConfig cfg;
      cfg.peers = 96;
      cfg.horizon = sim::SimTime::seconds(8);
      cfg.tick_period = sim::SimTime::millis(250);
      cfg.overlay = cell.overlay;
      cfg.faults = cell.faults;
      cfg.shards = k;
      ShardWorld world(cfg);
      EXPECT_EQ(world.run().digest, golden(kGoldenShard, cell.label))
          << "cell " << cell.label << " K=" << k;
    }
  }
}

// The grid with shards=4: only provably order-free phases (the bootstrap's
// finger rebuild) use the pool, so the whole-run digests — sim AND obs —
// must equal the serial cell's goldens bit for bit.
TEST(PerfRefactorIdentity, ShardedGridBootstrapMatchesSerialGolden) {
  auto cfg = base_config(11, AlgorithmKind::kQsa);
  cfg.shards = 4;
  expect_cell("qsa/11", cfg);
}

// Same cell, same seed, two fresh grids in one process: the engine (slot
// recycling, shrink policy, DenseMap state) and the tracer slab leak
// nothing between runs.
TEST(PerfRefactorIdentity, RerunIsDeterministic) {
  const auto cfg = sampled_stress_config(7);
  const RunDigests a = run_digests(cfg);
  const RunDigests b = run_digests(cfg);
  EXPECT_EQ(a.sim, b.sim);
  EXPECT_EQ(a.obs, b.obs);
}

}  // namespace
}  // namespace qsa::harness
