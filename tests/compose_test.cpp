// QCS composition: correctness on hand-built catalogs plus brute-force
// optimality property sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "qsa/core/compose.hpp"
#include "qsa/qos/satisfy.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::core {
namespace {

using registry::InstanceId;
using registry::ServiceCatalog;
using registry::ServiceId;

constexpr qos::ParamId kLevel = 0;
constexpr qos::ParamId kFormat = 1;

/// Builds an instance producing level range [olo, ohi] and accepting
/// [ilo, ihi] (empty acceptance for sources), with given CPU cost.
InstanceId add_inst(ServiceCatalog& cat, ServiceId svc, double ilo, double ihi,
                    double olo, double ohi, double cpu, double bw = 100) {
  registry::ServiceInstance inst;
  inst.service = svc;
  if (ihi >= ilo) {  // negative span marks "source: no input"
    inst.qin.set(kLevel, qos::QosValue::range(ilo, ihi));
  }
  inst.qout.set(kLevel, qos::QosValue::range(olo, ohi));
  inst.resources = qos::ResourceVector{cpu, cpu};
  inst.bandwidth_kbps = bw;
  return cat.add_instance(inst);
}

QcsComposer make_composer(const ServiceCatalog& cat) {
  return QcsComposer(cat, qos::TupleWeights::uniform(2),
                     qos::ResourceSchema::paper());
}

qos::QosVector requirement(double lo, double hi) {
  qos::QosVector req;
  req.set(kLevel, qos::QosValue::range(lo, hi));
  return req;
}

TEST(QcsComposer, SingleServicePathPicksCheapestSatisfying) {
  ServiceCatalog cat;
  const auto svc = cat.add_service("s");
  const auto expensive = add_inst(cat, svc, 1, 0, 50, 60, 400);
  const auto cheap = add_inst(cat, svc, 1, 0, 50, 60, 100);
  const auto unsatisfying = add_inst(cat, svc, 1, 0, 10, 20, 10);
  auto composer = make_composer(cat);
  const auto result = composer.compose(
      CompositionRequest{{{expensive, cheap, unsatisfying}}, requirement(40, 100)});
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.instances.size(), 1u);
  EXPECT_EQ(result.instances[0], cheap);
}

TEST(QcsComposer, FailsWhenNoInstanceSatisfiesUser) {
  ServiceCatalog cat;
  const auto svc = cat.add_service("s");
  const auto a = add_inst(cat, svc, 1, 0, 10, 20, 10);
  auto composer = make_composer(cat);
  const auto result =
      composer.compose(CompositionRequest{{{a}}, requirement(40, 100)});
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.instances.empty());
}

TEST(QcsComposer, TwoLayerConsistencyEnforced) {
  ServiceCatalog cat;
  const auto src = cat.add_service("src");
  const auto sink = cat.add_service("sink");
  // Source outputs level [50,55]; only sink B accepts it.
  const auto s0 = add_inst(cat, src, 1, 0, 50, 55, 10);
  const auto sinkA = add_inst(cat, sink, 60, 90, 70, 80, 10);  // rejects
  const auto sinkB = add_inst(cat, sink, 40, 70, 70, 80, 200);  // accepts
  auto composer = make_composer(cat);
  const auto result = composer.compose(
      CompositionRequest{{{s0}, {sinkA, sinkB}}, requirement(60, 100)});
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.instances, (std::vector<InstanceId>{s0, sinkB}));
}

TEST(QcsComposer, PrefersCheaperAggregateAcrossLayers) {
  ServiceCatalog cat;
  const auto src = cat.add_service("src");
  const auto sink = cat.add_service("sink");
  // Two fully compatible chains; the globally cheaper pair must win even
  // though the cheapest sink pairs with the expensive source.
  const auto srcCheap = add_inst(cat, src, 1, 0, 50, 52, 20);
  const auto srcDear = add_inst(cat, src, 1, 0, 60, 62, 300);
  // sinkX only accepts the expensive source's output; cheap instance.
  const auto sinkX = add_inst(cat, sink, 58, 64, 70, 80, 10);
  // sinkY accepts the cheap source's output; moderate cost.
  const auto sinkY = add_inst(cat, sink, 48, 56, 70, 80, 60);
  auto composer = make_composer(cat);
  const auto result = composer.compose(CompositionRequest{
      {{srcCheap, srcDear}, {sinkX, sinkY}}, requirement(60, 100)});
  ASSERT_TRUE(result.success);
  // 20 + 60 = 80 beats 300 + 10 = 310.
  EXPECT_EQ(result.instances, (std::vector<InstanceId>{srcCheap, sinkY}));
}

TEST(QcsComposer, NoConsistentChainFails) {
  ServiceCatalog cat;
  const auto src = cat.add_service("src");
  const auto sink = cat.add_service("sink");
  const auto s0 = add_inst(cat, src, 1, 0, 10, 20, 10);
  const auto k0 = add_inst(cat, sink, 50, 90, 70, 80, 10);
  auto composer = make_composer(cat);
  const auto result = composer.compose(
      CompositionRequest{{{s0}, {k0}}, requirement(60, 100)});
  EXPECT_FALSE(result.success);
}

TEST(QcsComposer, EmptyLayerFails) {
  ServiceCatalog cat;
  const auto src = cat.add_service("src");
  const auto s0 = add_inst(cat, src, 1, 0, 50, 55, 10);
  auto composer = make_composer(cat);
  EXPECT_FALSE(
      composer.compose(CompositionRequest{{{s0}, {}}, requirement(0, 100)})
          .success);
  EXPECT_FALSE(
      composer.compose(CompositionRequest{{}, requirement(0, 100)}).success);
}

TEST(QcsComposer, FormatDimensionParticipates) {
  ServiceCatalog cat;
  const auto src = cat.add_service("src");
  const auto sink = cat.add_service("sink");
  registry::ServiceInstance s;
  s.service = src;
  s.qout.set(kLevel, qos::QosValue::range(50, 55));
  s.qout.set(kFormat, qos::QosValue::symbol(2));
  s.resources = qos::ResourceVector{10, 10};
  s.bandwidth_kbps = 100;
  const auto s0 = cat.add_instance(s);

  auto make_sink = [&](qos::Symbol accepted) {
    registry::ServiceInstance k;
    k.service = sink;
    k.qin.set(kLevel, qos::QosValue::range(40, 60));
    k.qin.set(kFormat, qos::QosValue::symbol(accepted));
    k.qout.set(kLevel, qos::QosValue::range(70, 80));
    k.resources = qos::ResourceVector{10, 10};
    k.bandwidth_kbps = 100;
    return cat.add_instance(k);
  };
  const auto wrong_format = make_sink(1);
  const auto right_format = make_sink(2);

  auto composer = make_composer(cat);
  const auto result = composer.compose(CompositionRequest{
      {{s0}, {wrong_format, right_format}}, requirement(60, 100)});
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.instances[1], right_format);
}

TEST(QcsComposer, CostMatchesInstanceCostSum) {
  ServiceCatalog cat;
  const auto src = cat.add_service("src");
  const auto sink = cat.add_service("sink");
  const auto s0 = add_inst(cat, src, 1, 0, 50, 55, 30, 200);
  const auto k0 = add_inst(cat, sink, 40, 60, 70, 80, 70, 400);
  auto composer = make_composer(cat);
  const auto result = composer.compose(
      CompositionRequest{{{s0}, {k0}}, requirement(60, 100)});
  ASSERT_TRUE(result.success);
  EXPECT_NEAR(result.cost,
              composer.instance_cost(s0) + composer.instance_cost(k0), 1e-12);
}

TEST(QcsComposer, WorkCountersPopulated) {
  ServiceCatalog cat;
  const auto src = cat.add_service("src");
  const auto sink = cat.add_service("sink");
  std::vector<InstanceId> srcs, sinks;
  for (int i = 0; i < 5; ++i) srcs.push_back(add_inst(cat, src, 1, 0, 50, 55, 10));
  for (int i = 0; i < 7; ++i) sinks.push_back(add_inst(cat, sink, 40, 60, 70, 80, 10));
  auto composer = make_composer(cat);
  const auto result =
      composer.compose(CompositionRequest{{srcs, sinks}, requirement(0, 100)});
  EXPECT_EQ(result.nodes, 12u);
  // 5*7 producer/consumer pair examinations; the 7 sink-vs-user checks are
  // node checks, counted separately.
  EXPECT_EQ(result.edges_examined, 35u);
  EXPECT_EQ(result.nodes_checked, 7u);
}

// ---------------------------------------------------------------------
// Property sweep: on random layered catalogs QCS (a) returns a path iff
// brute-force enumeration finds one, (b) the path is QoS-consistent, and
// (c) its cost equals the brute-force minimum.

struct BruteForce {
  const ServiceCatalog& cat;
  const QcsComposer& composer;
  const CompositionRequest& req;
  double best = std::numeric_limits<double>::infinity();

  void search(std::size_t layer_from_sink, const qos::QosVector* downstream,
              double cost_so_far) {
    const std::size_t layers = req.candidates.size();
    const std::size_t layer = layers - 1 - layer_from_sink;
    for (InstanceId id : req.candidates[layer]) {
      const auto& inst = cat.instance(id);
      const bool ok = layer_from_sink == 0
                          ? qos::satisfies(inst.qout, req.requirement)
                          : qos::satisfies(inst.qout, *downstream);
      if (!ok) continue;
      const double cost = cost_so_far + composer.instance_cost(id);
      if (layer == 0) {
        best = std::min(best, cost);
      } else {
        search(layer_from_sink + 1, &inst.qin, cost);
      }
    }
  }
};

class QcsOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QcsOptimality, MatchesBruteForceMinimum) {
  util::Rng rng(util::derive_seed(GetParam(), "qcs-prop", 0));
  for (int iter = 0; iter < 30; ++iter) {
    ServiceCatalog cat;
    const std::size_t layers = 2 + rng.index(3);  // 2..4
    CompositionRequest req;
    for (std::size_t l = 0; l < layers; ++l) {
      const auto svc = cat.add_service("svc");
      std::vector<InstanceId> layer;
      const std::size_t count = 2 + rng.index(5);  // 2..6 instances
      for (std::size_t i = 0; i < count; ++i) {
        const double olo = rng.uniform(0, 90);
        const double ohi = olo + rng.uniform(0, 10);
        if (l == 0) {
          layer.push_back(add_inst(cat, svc, 1, 0, olo, ohi,
                                   rng.uniform(5, 300), rng.uniform(50, 500)));
        } else {
          const double ilo = rng.uniform(0, 70);
          const double ihi = ilo + rng.uniform(5, 40);
          layer.push_back(add_inst(cat, svc, ilo, ihi, olo, ohi,
                                   rng.uniform(5, 300), rng.uniform(50, 500)));
        }
      }
      req.candidates.push_back(std::move(layer));
    }
    const double floor = rng.uniform(0, 60);
    req.requirement = requirement(floor, 100);

    auto composer = make_composer(cat);
    const auto result = composer.compose(req);

    BruteForce bf{cat, composer, req};
    bf.search(0, nullptr, 0);
    const bool feasible = std::isfinite(bf.best);

    ASSERT_EQ(result.success, feasible) << "iter " << iter;
    if (!feasible) continue;
    EXPECT_NEAR(result.cost, bf.best, 1e-9) << "iter " << iter;

    // The returned path is QoS-consistent end to end.
    ASSERT_EQ(result.instances.size(), layers);
    EXPECT_TRUE(qos::satisfies(cat.instance(result.instances.back()).qout,
                               req.requirement));
    for (std::size_t l = 0; l + 1 < layers; ++l) {
      EXPECT_TRUE(qos::satisfies(cat.instance(result.instances[l]).qout,
                                 cat.instance(result.instances[l + 1]).qin));
    }
    // And its cost is the sum of its instance costs.
    double sum = 0;
    for (InstanceId id : result.instances) sum += composer.instance_cost(id);
    EXPECT_NEAR(result.cost, sum, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QcsOptimality,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace qsa::core
