// The deterministic fault-injection substrate: plan verdicts, retry
// accounting, and its effect on resolution, overlay routing and full grid
// runs.
#include <gtest/gtest.h>

#include <vector>

#include "qsa/fault/fault.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/overlay/chord_ring.hpp"
#include "qsa/probe/resolution.hpp"

namespace qsa::fault {
namespace {

TEST(FaultConfig, DisabledByDefault) {
  const FaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  FaultConfig lossy;
  lossy.set_all_loss(0.1);
  EXPECT_TRUE(lossy.enabled());
  EXPECT_DOUBLE_EQ(lossy.loss(Channel::kProbe), 0.1);
  EXPECT_DOUBLE_EQ(lossy.loss(Channel::kNotify), 0.1);
  EXPECT_DOUBLE_EQ(lossy.loss(Channel::kLookup), 0.1);
  EXPECT_DOUBLE_EQ(lossy.loss(Channel::kReservation), 0.1);
  FaultConfig delayed;
  delayed.max_extra_delay = sim::SimTime::millis(5);
  EXPECT_TRUE(delayed.enabled());
}

TEST(FaultPlan, DisabledPlanDeliversEverything) {
  const FaultPlan plan(7, FaultConfig{});
  for (int i = 0; i < 100; ++i) {
    const Delivery d = plan.attempt(Channel::kLookup, 1, 2);
    EXPECT_TRUE(d.delivered);
    EXPECT_EQ(d.extra_delay, sim::SimTime::zero());
  }
  EXPECT_EQ(plan.stats().total_dropped(), 0u);
}

TEST(FaultPlan, LossExtremes) {
  FaultConfig all;
  all.set_all_loss(1.0);
  const FaultPlan drop_all(7, all);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(drop_all.attempt(Channel::kProbe, 1, 2).delivered);
  }
  EXPECT_EQ(drop_all.stats().total_dropped(), 50u);

  FaultConfig none;
  none.max_extra_delay = sim::SimTime::millis(1);  // enabled, but lossless
  const FaultPlan keep_all(7, none);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(keep_all.attempt(Channel::kProbe, 1, 2).delivered);
  }
  EXPECT_EQ(keep_all.stats().total_dropped(), 0u);
}

TEST(FaultPlan, EmpiricalRateMatchesConfigured) {
  FaultConfig cfg;
  cfg.set_all_loss(0.3);
  const FaultPlan plan(42, cfg);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    (void)plan.attempt(Channel::kLookup, static_cast<net::PeerId>(i % 97),
                       static_cast<net::PeerId>(i % 89 + 100));
  }
  const double observed =
      static_cast<double>(plan.stats().total_dropped()) / n;
  EXPECT_NEAR(observed, 0.3, 0.02);
}

TEST(FaultPlan, DeterministicAndPairSymmetric) {
  FaultConfig cfg;
  cfg.set_all_loss(0.5);
  cfg.max_extra_delay = sim::SimTime::millis(40);
  const FaultPlan a(9, cfg);
  const FaultPlan b(9, cfg);
  const FaultPlan c(10, cfg);
  int differs_from_c = 0;
  for (int i = 0; i < 200; ++i) {
    // Same seed, endpoints named in either order: identical verdicts.
    const Delivery da = a.attempt(Channel::kNotify, 3, 8);
    const Delivery db = b.attempt(Channel::kNotify, 8, 3);
    EXPECT_EQ(da.delivered, db.delivered);
    EXPECT_EQ(da.extra_delay, db.extra_delay);
    const Delivery dc = c.attempt(Channel::kNotify, 3, 8);
    if (da.delivered != dc.delivered) ++differs_from_c;
  }
  EXPECT_GT(differs_from_c, 0);  // a different seed is a different plan
}

TEST(FaultPlan, ChannelsHaveIndependentRates) {
  FaultConfig cfg;
  cfg.probe_loss = 1.0;
  const FaultPlan plan(5, cfg);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(plan.attempt(Channel::kProbe, 1, 2).delivered);
    EXPECT_TRUE(plan.attempt(Channel::kLookup, 1, 2).delivered);
  }
  const auto& s = plan.stats();
  EXPECT_EQ(s.dropped[static_cast<std::size_t>(Channel::kProbe)], 20u);
  EXPECT_EQ(s.dropped[static_cast<std::size_t>(Channel::kLookup)], 0u);
  EXPECT_EQ(s.attempts[static_cast<std::size_t>(Channel::kLookup)], 20u);
}

TEST(FaultPlan, ExtraDelayBoundedAndSometimesNonzero) {
  FaultConfig cfg;
  cfg.max_extra_delay = sim::SimTime::millis(100);
  const FaultPlan plan(3, cfg);
  int nonzero = 0;
  for (int i = 0; i < 200; ++i) {
    const Delivery d = plan.attempt(
        Channel::kLookup, static_cast<net::PeerId>(i), 1000);
    ASSERT_TRUE(d.delivered);
    EXPECT_GE(d.extra_delay, sim::SimTime::zero());
    EXPECT_LE(d.extra_delay, sim::SimTime::millis(100));
    if (d.extra_delay > sim::SimTime::zero()) ++nonzero;
  }
  EXPECT_GT(nonzero, 50);
}

TEST(FaultPlan, BackoffDoublesAndIsAccounted) {
  FaultConfig cfg;
  cfg.set_all_loss(0.5);
  cfg.backoff_base = sim::SimTime::millis(50);
  const FaultPlan plan(1, cfg);
  EXPECT_EQ(plan.backoff(Channel::kLookup, 1), sim::SimTime::millis(50));
  EXPECT_EQ(plan.backoff(Channel::kLookup, 2), sim::SimTime::millis(100));
  EXPECT_EQ(plan.backoff(Channel::kLookup, 3), sim::SimTime::millis(200));
  EXPECT_EQ(plan.stats().retries[static_cast<std::size_t>(Channel::kLookup)],
            3u);
}

TEST(NeighborResolutionFaults, TotalNotifyLossLeavesTableEmpty) {
  probe::NeighborResolution res(8, sim::SimTime::minutes(10));
  FaultConfig cfg;
  cfg.notify_loss = 1.0;
  cfg.max_retries = 2;
  const FaultPlan plan(4, cfg);
  res.set_faults(&plan);
  const std::vector<std::vector<net::PeerId>> hops = {{10, 11}, {12}};
  res.register_path(1, hops, sim::SimTime::zero());
  EXPECT_FALSE(res.table(1).knows(10, sim::SimTime::millis(1)));
  EXPECT_FALSE(res.table(1).knows(11, sim::SimTime::millis(1)));
  // Every direct notification was sent 1 + max_retries times; the indirect
  // fan-out (2 * 1) is accounted once as before.
  EXPECT_EQ(res.messages(), 3u * 3u + 2u);
  EXPECT_EQ(plan.stats().retries[static_cast<std::size_t>(Channel::kNotify)],
            3u * 2u);
}

TEST(NeighborResolutionFaults, LostRefreshSkipsTheEntry) {
  probe::NeighborResolution res(8, sim::SimTime::minutes(10));
  FaultConfig cfg;
  cfg.probe_loss = 1.0;
  cfg.max_retries = 1;
  const FaultPlan plan(4, cfg);
  res.set_faults(&plan);
  const std::vector<net::PeerId> candidates = {10, 11};
  res.prepare_selection(2, candidates, 1, false, sim::SimTime::zero());
  EXPECT_EQ(res.table(2).size(), 0u);
  // Only the resends count as extra messages (first sends were accounted by
  // register_path's fan-out in the real protocol).
  EXPECT_EQ(res.messages(), 2u);
}

TEST(NeighborResolutionFaults, LosslessPlanMatchesPerfectMessaging) {
  probe::NeighborResolution faulty(8, sim::SimTime::minutes(10));
  probe::NeighborResolution perfect(8, sim::SimTime::minutes(10));
  FaultConfig cfg;
  cfg.max_extra_delay = sim::SimTime::millis(3);  // enabled, zero loss
  const FaultPlan plan(4, cfg);
  faulty.set_faults(&plan);
  const std::vector<std::vector<net::PeerId>> hops = {{10, 11}, {12, 13}};
  faulty.register_path(1, hops, sim::SimTime::zero());
  perfect.register_path(1, hops, sim::SimTime::zero());
  EXPECT_EQ(faulty.messages(), perfect.messages());
  EXPECT_EQ(faulty.table(1).size(), perfect.table(1).size());
}

class ChordFaultTest : public ::testing::Test {
 protected:
  ChordFaultTest() : ring_(77, 2) {
    for (net::PeerId p = 0; p < 16; ++p) ring_.join(p);
    ring_.stabilize_all();
  }
  overlay::ChordRing ring_;
};

TEST_F(ChordFaultTest, TotalLookupLossFailsTheRoute) {
  FaultConfig cfg;
  cfg.lookup_loss = 1.0;
  const FaultPlan plan(1, cfg);
  ring_.set_faults(&plan);
  int failed = 0;
  for (std::uint64_t k = 0; k < 50; ++k) {
    const auto stats = ring_.route(k * 0x9e3779b97f4a7c15ull, k % 16);
    if (!stats.ok()) ++failed;
  }
  // Lookups resolved locally (requester owns the key) cannot fail; every
  // lookup that needed at least one hop must.
  EXPECT_GT(failed, 30);
  EXPECT_GT(plan.stats().total_dropped(), 0u);
}

TEST_F(ChordFaultTest, PartialLossMostlySucceedsViaRetryAndReroute) {
  FaultConfig cfg;
  cfg.lookup_loss = 0.3;
  cfg.max_retries = 2;
  const FaultPlan plan(1, cfg);
  ring_.set_faults(&plan);
  int ok = 0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    const auto stats = ring_.route(k * 0x9e3779b97f4a7c15ull, k % 16);
    if (stats.ok()) ++ok;
  }
  EXPECT_GT(ok, 150);  // retry budget + alternates absorb most 30% loss
  EXPECT_GT(plan.stats().retries[static_cast<std::size_t>(Channel::kLookup)],
            0u);
  EXPECT_GT(plan.stats().rerouted, 0u);
}

TEST_F(ChordFaultTest, LossyRoutesAreDeterministic) {
  FaultConfig cfg;
  cfg.lookup_loss = 0.25;
  const FaultPlan p1(6, cfg);
  const FaultPlan p2(6, cfg);
  overlay::ChordRing other(77, 2);
  for (net::PeerId p = 0; p < 16; ++p) other.join(p);
  other.stabilize_all();
  ring_.set_faults(&p1);
  other.set_faults(&p2);
  for (std::uint64_t k = 0; k < 100; ++k) {
    const auto a = ring_.route(k * 0x9e3779b97f4a7c15ull, k % 16);
    const auto b = other.route(k * 0x9e3779b97f4a7c15ull, k % 16);
    EXPECT_EQ(a.owner, b.owner);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.latency, b.latency);
  }
}

harness::GridConfig faulty_grid_config(double loss) {
  harness::GridConfig c;
  c.seed = 21;
  c.peers = 200;
  c.min_providers = 10;
  c.max_providers = 20;
  c.apps.applications = 5;
  c.requests.rate_per_min = 20;
  c.horizon = sim::SimTime::minutes(10);
  c.churn.events_per_min = 2;
  c.enable_recovery = true;
  c.faults.set_all_loss(loss);
  return c;
}

TEST(GridFaults, RunIsDeterministicUnderFaults) {
  auto run_once = [] {
    harness::GridSimulation grid(faulty_grid_config(0.1));
    return grid.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.counters.get("fault.messages"),
            b.counters.get("fault.messages"));
  EXPECT_EQ(a.counters.get("fault.dropped"), b.counters.get("fault.dropped"));
  EXPECT_EQ(a.counters.get("lookup.rerouted"),
            b.counters.get("lookup.rerouted"));
}

TEST(GridFaults, FaultsOffExportsNoFaultCounters) {
  harness::GridSimulation grid(faulty_grid_config(0.0));
  EXPECT_EQ(grid.faults(), nullptr);
  const auto r = grid.run();
  for (const auto& [name, value] : r.counters.all()) {
    EXPECT_EQ(name.find("fault."), std::string_view::npos) << name;
  }
}

TEST(GridFaults, SuccessDegradesWithLossAndRatesReconcile) {
  harness::GridSimulation clean(faulty_grid_config(0.0));
  harness::GridSimulation lossy(faulty_grid_config(0.35));
  const auto rc = clean.run();
  const auto rl = lossy.run();
  EXPECT_LE(rl.success_ratio(), rc.success_ratio());
  const auto messages = rl.counters.get("fault.messages");
  const auto dropped = rl.counters.get("fault.dropped");
  ASSERT_GT(messages, 1000u);
  EXPECT_NEAR(static_cast<double>(dropped) / static_cast<double>(messages),
              0.35, 0.03);
  EXPECT_GT(rl.counters.get("probe.retries"), 0u);
}

}  // namespace
}  // namespace qsa::fault
