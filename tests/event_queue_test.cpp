// Engine-level tests for the slab/indexed-heap EventQueue: the
// zero-allocation steady-state contract, bounded slab growth under
// sustained schedule/cancel/fire traffic, equal-time ordering across slot
// reuse, the shrink policy, and handle inertness. Ordering tests run under
// the sanitizer jobs too, so slot recycling bugs surface as ASan/TSan
// reports, not just wrong orders.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "qsa/sim/event_queue.hpp"
#include "qsa/sim/time.hpp"

// --- global allocation counter ------------------------------------------
// Replacing operator new/delete for the whole test binary: every heap
// allocation anywhere bumps the counter, so the steady-state test measures
// a window with no EXPECTs (gtest allocates on failure) and asserts after.
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_news;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
// GCC 12 at -O3 sometimes inlines a std::vector's whole round trip —
// allocation through this replaced malloc-backed operator new, release
// through the sized delete below — and then reports the intentional
// malloc/free pairing as -Wmismatched-new-delete. Replaced global
// new/delete are matched by definition; silence the false positive at
// the definitions it is attributed to.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace qsa::sim {
namespace {

TEST(EventQueueEngine, SteadyStateAllocatesNothing) {
  EventQueue q;
  std::uint64_t fired = 0;
  // Warm the slab and the heap array to their high-water mark.
  constexpr int kLive = 512;
  for (int i = 0; i < kLive; ++i) {
    q.schedule(SimTime::millis(i), [&fired] { ++fired; });
  }
  const std::size_t warm_capacity = q.slot_capacity();

  // The measured window: schedule/pop/cancel churn at exactly the warmed
  // live count — cancels always target a known-pending event so the
  // population never drifts. No EXPECTs inside (gtest may allocate);
  // collect, then assert.
  const std::uint64_t before = g_news.load();
  for (int round = 0; round < 10'000; ++round) {
    auto f = q.pop();
    f.action();
    if (round % 3 == 0) {
      // Cancel a freshly scheduled (guaranteed-pending) event: the cancel
      // path must be allocation-free too. Scheduled in the pop's gap so the
      // live count never exceeds the warmed capacity.
      auto doomed =
          q.schedule(f.time + SimTime::millis(2), [&fired] { ++fired; });
      q.cancel(doomed);
    }
    q.schedule(f.time + SimTime::millis(1 + round % 7), [&fired] { ++fired; });
  }
  const std::uint64_t during = g_news.load() - before;

  EXPECT_EQ(during, 0u) << "steady-state schedule/pop/cancel hit the heap";
  EXPECT_EQ(q.slot_capacity(), warm_capacity);
  EXPECT_GT(fired, 0u);
}

TEST(EventQueueEngine, MillionEventChurnKeepsSlabBounded) {
  EventQueue q;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  constexpr std::size_t kMaxLive = 1024;
  std::vector<EventHandle> handles;
  std::int64_t t = 0;
  for (std::uint64_t i = 0; i < 1'000'000; ++i) {
    handles.push_back(q.schedule(
        SimTime::millis(t + static_cast<std::int64_t>(i * 31 % 997)),
        [&fired] { ++fired; }));
    if (i % 4 == 1) {
      // Cancel an older event (often already fired — then a no-op).
      q.cancel(handles[static_cast<std::size_t>(i * 7) % handles.size()]);
      ++cancelled;
    }
    while (q.size() > kMaxLive) {
      auto f = q.pop();
      t = f.time.as_millis();
      f.action();
    }
    if (handles.size() > 4096) handles.erase(handles.begin(),
                                             handles.begin() + 2048);
  }
  // The regression this guards: per-event bookkeeping (the old engine's
  // cancelled_/live_seqs_ sets, or a slab that never recycles) growing with
  // events *processed* instead of events *pending*.
  EXPECT_LE(q.peak_live(), kMaxLive + 1);
  EXPECT_LE(q.slot_capacity(), 2 * (kMaxLive + 1));
  EXPECT_GT(fired, 0u);
  EXPECT_GT(cancelled, 0u);
  while (!q.empty()) q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueEngine, EqualTimeEventsFireInScheduleOrder) {
  EventQueue q;
  const SimTime t = SimTime::seconds(1);
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.schedule(t, [&order, i] { order.push_back(i); }));
  }
  // Cancel a scattered subset; the survivors must still fire in schedule
  // order with no gaps filled by reordering.
  for (int i = 0; i < 100; i += 7) q.cancel(handles[static_cast<std::size_t>(i)]);
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_EQ(f.time, t);
    f.action();
  }
  std::vector<int> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 7 != 0) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(EventQueueEngine, EqualTimeOrderSurvivesSlotReuse) {
  EventQueue q;
  std::uint64_t warm = 0;
  // Fill and drain so the free list holds recycled slots in scrambled
  // order: the next wave lands on reused slots with non-monotone indices.
  std::vector<EventHandle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(q.schedule(SimTime::millis(i), [&warm] { ++warm; }));
  }
  for (int i = 0; i < 64; i += 2) q.cancel(handles[static_cast<std::size_t>(i)]);
  while (!q.empty()) {
    auto f = q.pop();
    f.action();
  }
  // Equal-time wave over the recycled slab.
  const SimTime t = SimTime::seconds(9);
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  std::vector<int> expected(64);
  for (int i = 0; i < 64; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(order, expected);
}

// The keyed tests record into fixed std::arrays: GCC 12's
// -Wmismatched-new-delete false-positives when it can fully inline a
// std::vector round trip through this file's replaced operator new
// (malloc) and the sized delete (free), and the CI build is -Werror.

TEST(EventQueueEngine, KeyedEventsFireInKeyOrderNotScheduleOrder) {
  // (time, key, seq): at equal times the state-derived key decides, however
  // the events were enqueued — the property the sharded runtime's
  // K-invariance rests on.
  EventQueue q;
  const SimTime t = SimTime::seconds(2);
  std::array<std::uint64_t, 10> order{};
  std::size_t fired = 0;
  // Schedule keys in descending order; they must fire ascending.
  for (std::uint64_t key = 10; key > 0; --key) {
    q.schedule_keyed(t, key, [&order, &fired, key] { order[fired++] = key; });
  }
  while (!q.empty()) q.pop().action();
  ASSERT_EQ(fired, order.size());
  for (std::uint64_t key = 1; key <= 10; ++key) {
    EXPECT_EQ(order[static_cast<std::size_t>(key - 1)], key);
  }
}

TEST(EventQueueEngine, KeyBreaksTiesBeforeSeqAndTimeBeforeKey) {
  EventQueue q;
  std::array<int, 4> order{};
  std::size_t fired = 0;
  // Later time, smallest key: must still fire last.
  q.schedule_keyed(SimTime::millis(20), 0, [&] { order[fired++] = 3; });
  // Equal time, equal key: schedule order (seq) decides.
  q.schedule_keyed(SimTime::millis(10), 5, [&] { order[fired++] = 1; });
  q.schedule_keyed(SimTime::millis(10), 5, [&] { order[fired++] = 2; });
  // Equal time, smaller key: beats both seq-older entries above.
  q.schedule_keyed(SimTime::millis(10), 1, [&] { order[fired++] = 0; });
  while (!q.empty()) q.pop().action();
  ASSERT_EQ(fired, order.size());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueEngine, DefaultScheduleIsKeyZero) {
  // schedule() == schedule_keyed(key=0): plain scheduling stays a pure
  // (time, seq) order, so pre-shard golden digests cannot move.
  EventQueue q;
  const SimTime t = SimTime::seconds(3);
  std::array<int, 3> order{};
  std::size_t fired = 0;
  q.schedule(t, [&] { order[fired++] = 0; });
  q.schedule_keyed(t, 0, [&] { order[fired++] = 1; });
  q.schedule(t, [&] { order[fired++] = 2; });
  while (!q.empty()) q.pop().action();
  ASSERT_EQ(fired, order.size());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueEngine, ShrinksAfterSpike) {
  EventQueue q;
  std::uint64_t fired = 0;
  // Spike far past the shrink floor, then drain to a trickle. Times
  // decrease with the slot index, so draining in time order frees the
  // *trailing* slots — the only ones truncation may drop (live slots are
  // never moved; outstanding handles index them).
  constexpr int kSpike = 8192;
  for (int i = 0; i < kSpike; ++i) {
    q.schedule(SimTime::millis(kSpike - i), [&fired] { ++fired; });
  }
  const std::size_t spike_capacity = q.slot_capacity();
  EXPECT_GE(spike_capacity, static_cast<std::size_t>(kSpike));
  while (q.size() > 16) q.pop().action();

  EXPECT_GE(q.shrink_count(), 1u);
  EXPECT_LT(q.slot_capacity(), spike_capacity / 4);
  // The survivors are untouched by the truncation.
  std::int64_t last = -1;
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_GT(f.time.as_millis(), last);
    last = f.time.as_millis();
    f.action();
  }
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kSpike));
}

TEST(EventQueueEngine, StaleHandlesAreInertAfterShrink) {
  EventQueue q;
  std::uint64_t fired = 0;
  std::vector<EventHandle> stale;
  // Decreasing times again: the four survivors sit in the leading slots,
  // everything behind them is free and gets truncated.
  for (int i = 0; i < 8192; ++i) {
    stale.push_back(
        q.schedule(SimTime::millis(8192 - i), [&fired] { ++fired; }));
  }
  while (q.size() > 4) q.pop().action();
  ASSERT_GE(q.shrink_count(), 1u);
  // stale[0..3] are the still-pending survivors; every later handle refers
  // to a fired event and most index slots beyond the truncated slab.
  // Cancelling any of those must be a harmless no-op.
  for (std::size_t i = 4; i < stale.size(); ++i) q.cancel(stale[i]);
  EXPECT_EQ(q.size(), 4u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 8192u);
}

TEST(EventQueueEngine, CancelIsIdempotentAndFiredHandlesInert) {
  EventQueue q;
  int fired = 0;
  auto h1 = q.schedule(SimTime::seconds(1), [&fired] { ++fired; });
  auto h2 = q.schedule(SimTime::seconds(2), [&fired] { ++fired; });
  q.cancel(h1);
  q.cancel(h1);  // second cancel: no-op, must not free someone else's slot
  // h1's slot is recycled by the next schedule; the stale handle stays dead.
  auto h3 = q.schedule(SimTime::seconds(3), [&fired] { ++fired; });
  q.cancel(h1);
  EXPECT_EQ(q.size(), 2u);
  auto f = q.pop();
  f.action();
  q.cancel(h2);  // fired -> inert
  EXPECT_EQ(q.size(), 1u);
  q.cancel(EventHandle{});  // default handle: inert
  auto g = q.pop();
  g.action();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
  (void)h3;
}

TEST(EventQueueEngine, PeakLiveTracksHighWater) {
  EventQueue q;
  EXPECT_EQ(q.peak_live(), 0u);
  std::vector<EventHandle> hs;
  for (int i = 0; i < 100; ++i) {
    hs.push_back(q.schedule(SimTime::millis(i), [] {}));
  }
  EXPECT_EQ(q.peak_live(), 100u);
  for (int i = 0; i < 50; ++i) q.pop();
  EXPECT_EQ(q.peak_live(), 100u);  // peak, not current
  q.schedule(SimTime::seconds(5), [] {});
  EXPECT_EQ(q.peak_live(), 100u);
  EXPECT_EQ(q.size(), 51u);
}

}  // namespace
}  // namespace qsa::sim
