// Randomized failure-injection sweeps: long random operation sequences with
// global invariants checked at every step.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "qsa/harness/grid.hpp"
#include "qsa/session/manager.hpp"
#include "qsa/util/rng.hpp"
#include "qsa/workload/apps.hpp"

namespace qsa {
namespace {

using net::PeerId;
using net::ProbeClock;
using qos::ResourceVector;
using sim::SimTime;

// --------------------------------------------------------------------
// Peer-table fuzz: interleaved reserve/release/remove keeps 0 <= reserved
// <= capacity on every peer.

class PeerTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeerTableFuzz, ReservationLedgerInvariants) {
  util::Rng rng(util::derive_seed(GetParam(), "peer-fuzz", 0));
  net::PeerTable peers(qos::ResourceSchema::paper(),
                       ProbeClock(SimTime::seconds(30)));
  struct Reservation {
    PeerId peer;
    ResourceVector r;
  };
  std::vector<Reservation> held;
  std::vector<PeerId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(peers.add_peer(
        ResourceVector{rng.uniform(100, 1000), rng.uniform(100, 1000)},
        SimTime::zero()));
  }
  SimTime now = SimTime::zero();
  for (int step = 0; step < 2000; ++step) {
    now += SimTime::seconds(rng.uniform(0, 20));
    switch (rng.index(4)) {
      case 0: {  // reserve
        const PeerId p = ids[rng.index(ids.size())];
        const ResourceVector r{rng.uniform(1, 300), rng.uniform(1, 300)};
        if (peers.try_reserve(p, r, now)) held.push_back({p, r});
        break;
      }
      case 1: {  // release one
        if (held.empty()) break;
        const std::size_t i = rng.index(held.size());
        peers.release(held[i].peer, held[i].r, now);
        held[i] = held.back();
        held.pop_back();
        break;
      }
      case 2: {  // remove a peer; its outstanding reservations evaporate
        const PeerId p = ids[rng.index(ids.size())];
        peers.remove_peer(p, now);
        std::erase_if(held, [&](const Reservation& r) { return r.peer == p; });
        break;
      }
      default: {  // add a fresh peer
        if (ids.size() > 60) break;
        ids.push_back(peers.add_peer(
            ResourceVector{rng.uniform(100, 1000), rng.uniform(100, 1000)},
            now));
        break;
      }
    }
    // Invariants: availability within [0, capacity]; probed view too.
    for (const PeerId p : ids) {
      if (!peers.alive(p)) continue;
      const auto avail = peers.peer(p).available();
      EXPECT_TRUE(avail.nonnegative()) << "step " << step;
      EXPECT_TRUE(avail.fits_within(peers.peer(p).capacity()));
      EXPECT_TRUE(peers.probed_available(p, now).fits_within(
          peers.peer(p).capacity()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeerTableFuzz, ::testing::Values(1, 2, 3, 4));

// --------------------------------------------------------------------
// Network fuzz: reservations never exceed pair capacity; release restores.

class NetworkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFuzz, LinkLedgerInvariants) {
  util::Rng rng(util::derive_seed(GetParam(), "net-fuzz", 0));
  net::NetworkModel net(GetParam(), ProbeClock(SimTime::seconds(30)));
  struct Link {
    PeerId a, b;
    double kbps;
  };
  std::vector<Link> held;
  std::map<std::pair<PeerId, PeerId>, double> expected;
  auto key = [](PeerId a, PeerId b) {
    return std::make_pair(std::min(a, b), std::max(a, b));
  };
  SimTime now = SimTime::zero();
  for (int step = 0; step < 3000; ++step) {
    now += SimTime::seconds(rng.uniform(0, 10));
    if (held.empty() || rng.bernoulli(0.6)) {
      const auto a = static_cast<PeerId>(rng.index(12));
      const auto b = static_cast<PeerId>(rng.index(12));
      if (a == b) continue;
      const double kbps = rng.uniform(1, 400);
      if (net.try_reserve(a, b, kbps, now)) {
        held.push_back({a, b, kbps});
        expected[key(a, b)] += kbps;
      }
    } else {
      const std::size_t i = rng.index(held.size());
      net.release(held[i].a, held[i].b, held[i].kbps, now);
      expected[key(held[i].a, held[i].b)] -= held[i].kbps;
      held[i] = held.back();
      held.pop_back();
    }
    // Shadow-ledger equivalence and capacity bounds.
    for (const auto& [pair, kbps] : expected) {
      const double avail = net.available_kbps(pair.first, pair.second);
      const double cap = net.capacity_kbps(pair.first, pair.second);
      EXPECT_NEAR(avail, cap - kbps, 1e-6) << "step " << step;
      EXPECT_GE(avail, -1e-6);
      EXPECT_LE(avail, cap + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz, ::testing::Values(1, 2, 3, 4));

// --------------------------------------------------------------------
// Session-manager fuzz: random admissions, completions (via time), and
// departures; the accounting identity admitted = completed + aborted +
// active holds throughout, and resources return to baseline once everything
// drains.

class SessionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionFuzz, AccountingIdentityAndDrain) {
  util::Rng rng(util::derive_seed(GetParam(), "session-fuzz", 0));
  sim::Simulator simulator;
  net::PeerTable peers(qos::ResourceSchema::paper(),
                       ProbeClock(SimTime::seconds(30)));
  net::NetworkModel net(GetParam(), ProbeClock(SimTime::seconds(30)));
  registry::ServiceCatalog catalog;
  catalog.add_service("svc");
  registry::ServiceInstance inst;
  inst.service = 0;
  inst.resources = ResourceVector{60, 60};
  inst.bandwidth_kbps = 15;
  const auto inst_id = catalog.add_instance(inst);
  session::SessionManager manager(simulator, peers, net, catalog);

  std::vector<PeerId> ids;
  for (int i = 0; i < 30; ++i) {
    ids.push_back(
        peers.add_peer(ResourceVector{400, 400}, SimTime::minutes(-10)));
  }
  const PeerId requester = ids[0];

  for (int step = 0; step < 400; ++step) {
    simulator.run_until(simulator.now() + SimTime::seconds(rng.uniform(1, 90)));
    const auto action = rng.index(3);
    if (action == 0 || action == 1) {  // try to admit
      core::ServiceRequest req;
      req.requester = requester;
      req.abstract_path = {0};
      req.session_duration = SimTime::minutes(rng.uniform(1, 20));
      core::AggregationPlan plan;
      const std::size_t hops = 1 + rng.index(3);
      for (std::size_t h = 0; h < hops; ++h) {
        plan.instances.push_back(inst_id);
        plan.hosts.push_back(ids[1 + rng.index(ids.size() - 1)]);
      }
      (void)manager.start_session(req, plan);
    } else {  // depart and re-add a peer
      const std::size_t i = 1 + rng.index(ids.size() - 1);
      manager.peer_departed(ids[i]);
      peers.remove_peer(ids[i], simulator.now());
      ids[i] =
          peers.add_peer(ResourceVector{400, 400}, simulator.now());
    }
    const auto& st = manager.stats();
    EXPECT_EQ(st.admitted,
              st.completed + st.aborted + manager.active_sessions())
        << "step " << step;
  }

  // Drain: every remaining session ends; all live peers return to full
  // availability.
  simulator.run_until(simulator.now() + SimTime::minutes(30));
  EXPECT_EQ(manager.active_sessions(), 0u);
  for (const PeerId p : ids) {
    if (!peers.alive(p)) continue;
    EXPECT_EQ(peers.peer(p).available(), peers.peer(p).capacity());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionFuzz, ::testing::Values(1, 2, 3, 4, 5));

// --------------------------------------------------------------------
// Whole-grid smoke fuzz: random configurations must run to completion with
// coherent accounting (no crashes, psi in [0,1], failures sum up).

class GridFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridFuzz, RandomConfigsRunCoherently) {
  util::Rng rng(util::derive_seed(GetParam(), "grid-fuzz", 0));
  harness::GridConfig cfg;
  cfg.seed = GetParam() * 101;
  cfg.peers = 200 + rng.index(200);
  cfg.min_providers = 8;
  cfg.max_providers = 16 + static_cast<int>(rng.index(16));
  cfg.apps.applications = 3 + static_cast<int>(rng.index(5));
  cfg.requests.rate_per_min = rng.uniform(5, 120);
  cfg.churn.events_per_min = rng.bernoulli(0.5) ? rng.uniform(0, 15) : 0;
  cfg.enable_recovery = rng.bernoulli(0.3);
  const auto overlay_draw = rng.index(3);
  cfg.overlay = overlay_draw == 0   ? harness::OverlayKind::kChord
                : overlay_draw == 1 ? harness::OverlayKind::kCan
                                    : harness::OverlayKind::kPastry;
  cfg.probe_budget = 10 + rng.index(150);
  cfg.horizon = sim::SimTime::minutes(8);

  harness::GridSimulation grid(cfg);
  const auto r = grid.run();
  EXPECT_GE(r.success_ratio(), 0.0);
  EXPECT_LE(r.success_ratio(), 1.0);
  const auto failures = r.failures_discovery + r.failures_composition +
                        r.failures_selection + r.failures_admission +
                        r.failures_departure;
  EXPECT_EQ(r.successes + failures, r.requests);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace qsa
