#include <gtest/gtest.h>

#include "qsa/qos/resources.hpp"
#include "qsa/qos/translator.hpp"
#include "qsa/qos/tuple_compare.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::qos {
namespace {

// ------------------------------------------------------- ResourceVector

TEST(ResourceVector, ZerosFactory) {
  const auto v = ResourceVector::zeros(3);
  EXPECT_EQ(v.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(v[i], 0);
  EXPECT_TRUE(v.nonnegative());
}

TEST(ResourceVector, Arithmetic) {
  const ResourceVector a{10, 20};
  const ResourceVector b{1, 2};
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 11);
  EXPECT_DOUBLE_EQ(sum[1], 22);
  const auto diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], 9);
  EXPECT_DOUBLE_EQ(diff[1], 18);
  const auto scaled = a * 0.5;
  EXPECT_DOUBLE_EQ(scaled[0], 5);
  EXPECT_DOUBLE_EQ(scaled[1], 10);
}

TEST(ResourceVector, CompoundAssignment) {
  ResourceVector a{1, 1};
  a += ResourceVector{2, 3};
  EXPECT_EQ(a, (ResourceVector{3, 4}));
  a -= ResourceVector{1, 1};
  EXPECT_EQ(a, (ResourceVector{2, 3}));
  a *= 2;
  EXPECT_EQ(a, (ResourceVector{4, 6}));
}

TEST(ResourceVector, FitsWithin) {
  const ResourceVector req{10, 20};
  EXPECT_TRUE(req.fits_within(ResourceVector{10, 20}));
  EXPECT_TRUE(req.fits_within(ResourceVector{100, 100}));
  EXPECT_FALSE(req.fits_within(ResourceVector{9, 100}));
  EXPECT_FALSE(req.fits_within(ResourceVector{100, 19}));
}

TEST(ResourceVector, Nonnegative) {
  EXPECT_TRUE((ResourceVector{0, 0}).nonnegative());
  EXPECT_TRUE((ResourceVector{1, 2}).nonnegative());
  EXPECT_FALSE((ResourceVector{1, -0.001}).nonnegative());
}

TEST(ResourceVector, ToString) {
  EXPECT_EQ((ResourceVector{1, 2}).to_string(), "[1, 2]");
}

TEST(ResourceSchema, PaperSchema) {
  const auto s = ResourceSchema::paper();
  EXPECT_EQ(s.kinds(), 2u);
  EXPECT_EQ(s.names[0], "cpu");
  EXPECT_EQ(s.names[1], "mem");
  EXPECT_DOUBLE_EQ(s.maxima[0], 1000);
  EXPECT_DOUBLE_EQ(s.max_bandwidth_kbps, 10'000);
}

// --------------------------------------------------------- TupleWeights

TEST(TupleWeights, UniformSumsToOne) {
  const auto w = TupleWeights::uniform(2);
  double sum = w.bandwidth();
  for (double x : w.resource()) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(w.resource().size(), 2u);
  EXPECT_NEAR(w.resource()[0], 1.0 / 3, 1e-12);
  EXPECT_NEAR(w.bandwidth(), 1.0 / 3, 1e-12);
}

TEST(TupleWeights, CustomWeightsAccepted) {
  const TupleWeights w({0.5, 0.3}, 0.2);
  EXPECT_DOUBLE_EQ(w.resource()[0], 0.5);
  EXPECT_DOUBLE_EQ(w.resource()[1], 0.3);
  EXPECT_DOUBLE_EQ(w.bandwidth(), 0.2);
}

TEST(TupleWeightsDeath, RejectsBadSum) {
  EXPECT_DEATH((TupleWeights({0.5, 0.5}, 0.5)), "precondition");
}

TEST(TupleWeightsDeath, RejectsNegative) {
  EXPECT_DEATH((TupleWeights({1.2, -0.4}, 0.2)), "precondition");
}

// --------------------------------------------------- Definition 3.1

TEST(Scalarize, NormalizedRange) {
  const auto schema = ResourceSchema::paper();
  const auto w = TupleWeights::uniform(2);
  // Zero tuple scalarizes to 0; maximal tuple to 1.
  EXPECT_DOUBLE_EQ(
      scalarize(ResourceTuple{ResourceVector{0, 0}, 0}, w, schema), 0);
  EXPECT_NEAR(scalarize(ResourceTuple{ResourceVector{1000, 1000}, 10'000}, w,
                        schema),
              1.0, 1e-12);
}

TEST(Scalarize, WeightsScaleContributions) {
  const auto schema = ResourceSchema::paper();
  // All weight on CPU: memory and bandwidth become irrelevant.
  const TupleWeights cpu_only({1.0, 0.0}, 0.0);
  const double a =
      scalarize(ResourceTuple{ResourceVector{500, 0}, 0}, cpu_only, schema);
  const double b =
      scalarize(ResourceTuple{ResourceVector{500, 999}, 9999}, cpu_only, schema);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(a, 0.5);
}

TEST(Compare, SignMatchesDefinition) {
  const auto schema = ResourceSchema::paper();
  const auto w = TupleWeights::uniform(2);
  const ResourceTuple small{ResourceVector{10, 10}, 100};
  const ResourceTuple big{ResourceVector{500, 500}, 5000};
  EXPECT_LT(compare(small, big, w, schema), 0);
  EXPECT_GT(compare(big, small, w, schema), 0);
  EXPECT_DOUBLE_EQ(compare(small, small, w, schema), 0);
}

TEST(Compare, TradeoffAcrossKinds) {
  const auto schema = ResourceSchema::paper();
  const auto w = TupleWeights::uniform(2);
  // 300 extra CPU units outweigh 100 extra bandwidth kbps under uniform
  // weights and paper maxima (300/1000 > 100/10000).
  const ResourceTuple cpu_heavy{ResourceVector{400, 100}, 100};
  const ResourceTuple bw_heavy{ResourceVector{100, 100}, 200};
  EXPECT_GT(compare(cpu_heavy, bw_heavy, w, schema), 0);
}

TEST(CompareProperty, AntisymmetricAndTransitive) {
  const auto schema = ResourceSchema::paper();
  const auto w = TupleWeights::uniform(2);
  util::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    auto draw = [&] {
      return ResourceTuple{
          ResourceVector{rng.uniform(0, 1000), rng.uniform(0, 1000)},
          rng.uniform(0, 10'000)};
    };
    const auto a = draw(), b = draw(), c = draw();
    EXPECT_NEAR(compare(a, b, w, schema), -compare(b, a, w, schema), 1e-9);
    if (compare(a, b, w, schema) > 0 && compare(b, c, w, schema) > 0) {
      EXPECT_GT(compare(a, c, w, schema), 0);
    }
  }
}

// ----------------------------------------------------------- Translator

TEST(AnalyticTranslator, ResourcesGrowWithOutputLevel) {
  const ParamId level = 1;
  AnalyticTranslator t(level, AnalyticTranslator::paper_coefficients());
  QosVector lo_out, hi_out;
  lo_out.set(level, QosValue::range(10, 20));
  hi_out.set(level, QosValue::range(80, 90));
  const auto r_lo = t.resources(QosVector{}, lo_out);
  const auto r_hi = t.resources(QosVector{}, hi_out);
  for (std::size_t i = 0; i < r_lo.size(); ++i) EXPECT_LT(r_lo[i], r_hi[i]);
}

TEST(AnalyticTranslator, BandwidthGrowsWithOutputLevel) {
  const ParamId level = 1;
  AnalyticTranslator t(level, AnalyticTranslator::paper_coefficients());
  QosVector lo_out, hi_out;
  lo_out.set(level, QosValue::range(10, 20));
  hi_out.set(level, QosValue::range(80, 90));
  EXPECT_LT(t.bandwidth_kbps(lo_out), t.bandwidth_kbps(hi_out));
}

TEST(AnalyticTranslator, MissingLevelTreatedAsZero) {
  const ParamId level = 1;
  auto coeff = AnalyticTranslator::paper_coefficients();
  AnalyticTranslator t(level, coeff);
  const auto r = t.resources(QosVector{}, QosVector{});
  EXPECT_EQ(r, coeff.base);
  EXPECT_DOUBLE_EQ(t.bandwidth_kbps(QosVector{}), coeff.base_bw_kbps);
}

TEST(AnalyticTranslator, InputLevelContributes) {
  const ParamId level = 1;
  AnalyticTranslator t(level, AnalyticTranslator::paper_coefficients());
  QosVector in;
  in.set(level, QosValue::range(50, 60));
  const auto with_in = t.resources(in, QosVector{});
  const auto without = t.resources(QosVector{}, QosVector{});
  EXPECT_GT(with_in[0], without[0]);
}

TEST(AnalyticTranslator, RequirementsAlwaysPositive) {
  const ParamId level = 1;
  AnalyticTranslator t(level, AnalyticTranslator::paper_coefficients());
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    QosVector in, out;
    in.set(level, QosValue::range(rng.uniform(0, 50), rng.uniform(50, 100)));
    out.set(level, QosValue::range(rng.uniform(0, 50), rng.uniform(50, 100)));
    const auto r = t.resources(in, out);
    for (std::size_t k = 0; k < r.size(); ++k) EXPECT_GT(r[k], 0);
    EXPECT_GT(t.bandwidth_kbps(out), 0);
  }
}

}  // namespace
}  // namespace qsa::qos
