#include <gtest/gtest.h>

#include <vector>

#include "qsa/sim/event_queue.hpp"
#include "qsa/sim/simulator.hpp"
#include "qsa/sim/time.hpp"

namespace qsa::sim {
namespace {

// -------------------------------------------------------------- SimTime

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(SimTime::seconds(2).as_millis(), 2000);
  EXPECT_EQ(SimTime::minutes(1).as_millis(), 60'000);
  EXPECT_DOUBLE_EQ(SimTime::millis(1500).as_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::minutes(2.5).as_minutes(), 2.5);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::zero(), SimTime::millis(1));
  EXPECT_LT(SimTime::millis(1), SimTime::infinity());
  EXPECT_EQ(SimTime::seconds(60), SimTime::minutes(1));
}

TEST(SimTime, Arithmetic) {
  const auto t = SimTime::seconds(10) + SimTime::seconds(5);
  EXPECT_EQ(t, SimTime::seconds(15));
  EXPECT_EQ(t - SimTime::seconds(5), SimTime::seconds(10));
  SimTime u = SimTime::zero();
  u += SimTime::millis(7);
  EXPECT_EQ(u.as_millis(), 7);
}

TEST(SimTime, NegativeTimesSupported) {
  const auto t = SimTime::minutes(-30);
  EXPECT_LT(t, SimTime::zero());
  EXPECT_EQ(SimTime::zero() - t, SimTime::minutes(30));
}

// ----------------------------------------------------------- EventQueue

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::millis(30), [&] { fired.push_back(3); });
  q.schedule(SimTime::millis(10), [&] { fired.push_back(1); });
  q.schedule(SimTime::millis(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::millis(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ReportsNextTime) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::infinity());
  q.schedule(SimTime::millis(42), [] {});
  EXPECT_EQ(q.next_time(), SimTime::millis(42));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(SimTime::millis(1), [&] { ran = true; });
  q.cancel(h);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAdjustsSizeAndNextTime) {
  EventQueue q;
  auto h1 = q.schedule(SimTime::millis(1), [] {});
  q.schedule(SimTime::millis(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), SimTime::millis(2));
}

TEST(EventQueue, CancelInertHandleIsNoop) {
  EventQueue q;
  q.schedule(SimTime::millis(1), [] {});
  EventHandle inert;
  EXPECT_FALSE(inert.valid());
  q.cancel(inert);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelFiredHandleIsNoop) {
  EventQueue q;
  auto h = q.schedule(SimTime::millis(1), [] {});
  q.schedule(SimTime::millis(2), [] {});
  q.pop();       // fires h
  q.cancel(h);   // must not disturb the remaining event
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), SimTime::millis(2));
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  auto h = q.schedule(SimTime::millis(1), [] {});
  q.schedule(SimTime::millis(2), [] {});
  q.cancel(h);
  q.cancel(h);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(
        q.schedule(SimTime::millis(i % 17), [&fired] { ++fired; }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) q.cancel(handles[i]);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 200 - 67);  // ceil(200/3) = 67 cancelled
}

// ------------------------------------------------------------ Simulator

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  std::vector<std::int64_t> stamps;
  s.schedule_in(SimTime::millis(5), [&] { stamps.push_back(s.now().as_millis()); });
  s.schedule_in(SimTime::millis(10), [&] { stamps.push_back(s.now().as_millis()); });
  s.run();
  EXPECT_EQ(stamps, (std::vector<std::int64_t>{5, 10}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator s;
  bool late = false;
  s.schedule_in(SimTime::millis(5), [] {});
  s.schedule_in(SimTime::millis(50), [&] { late = true; });
  const std::size_t n = s.run_until(SimTime::millis(10));
  EXPECT_EQ(n, 1u);
  EXPECT_FALSE(late);
  EXPECT_EQ(s.now(), SimTime::millis(10));  // clock lands on the horizon
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.schedule_in(SimTime::millis(1), chain);
  };
  s.schedule_in(SimTime::millis(1), chain);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), SimTime::millis(5));
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator s;
  s.schedule_in(SimTime::millis(10), [&] {
    // From t=10, scheduling at t=3 must fire immediately (not travel back).
    s.schedule_at(SimTime::millis(3), [&] { EXPECT_EQ(s.now(), SimTime::millis(10)); });
  });
  s.run();
  EXPECT_EQ(s.executed_events(), 2u);
}

TEST(Simulator, EveryFiresPeriodically) {
  Simulator s;
  int ticks = 0;
  s.every(SimTime::millis(10), SimTime::millis(10), [&] { ++ticks; });
  s.run_until(SimTime::millis(100));
  EXPECT_EQ(ticks, 10);  // t = 10, 20, ..., 100
}

TEST(Simulator, EveryRespectsStartOffset) {
  Simulator s;
  std::vector<std::int64_t> stamps;
  s.every(SimTime::millis(25), SimTime::millis(50),
          [&] { stamps.push_back(s.now().as_millis()); });
  s.run_until(SimTime::millis(200));
  EXPECT_EQ(stamps, (std::vector<std::int64_t>{25, 75, 125, 175}));
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator s;
  bool ran = false;
  auto h = s.schedule_in(SimTime::millis(5), [&] { ran = true; });
  s.cancel(h);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, ExecutedEventsAccumulates) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_in(SimTime::millis(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(Simulator, HorizonWithEmptyQueueAdvancesClock) {
  Simulator s;
  s.run_until(SimTime::minutes(3));
  EXPECT_EQ(s.now(), SimTime::minutes(3));
}

}  // namespace
}  // namespace qsa::sim
