#include <gtest/gtest.h>

#include <set>

#include "qsa/overlay/chord_ring.hpp"
#include "qsa/qos/satisfy.hpp"
#include "qsa/qos/translator.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/registry/directory.hpp"
#include "qsa/registry/placement.hpp"
#include "qsa/replica/manager.hpp"
#include "qsa/util/interner.hpp"

namespace qsa::registry {
namespace {

// --------------------------------------------------------- ServiceCatalog

ServiceInstance make_instance(ServiceId service, double cpu = 10) {
  ServiceInstance inst;
  inst.service = service;
  inst.resources = qos::ResourceVector{cpu, cpu};
  inst.bandwidth_kbps = 100;
  return inst;
}

TEST(ServiceCatalog, AddServiceAssignsIds) {
  ServiceCatalog cat;
  EXPECT_EQ(cat.add_service("a"), 0u);
  EXPECT_EQ(cat.add_service("b"), 1u);
  EXPECT_EQ(cat.service(1).name, "b");
  EXPECT_EQ(cat.service_count(), 2u);
}

TEST(ServiceCatalog, AddInstanceIndexesByService) {
  ServiceCatalog cat;
  const auto s0 = cat.add_service("a");
  const auto s1 = cat.add_service("b");
  const auto i0 = cat.add_instance(make_instance(s0));
  const auto i1 = cat.add_instance(make_instance(s1));
  const auto i2 = cat.add_instance(make_instance(s0));
  EXPECT_EQ(cat.instance_count(), 3u);
  const auto of0 = cat.instances_of(s0);
  EXPECT_EQ(std::vector<InstanceId>(of0.begin(), of0.end()),
            (std::vector<InstanceId>{i0, i2}));
  const auto of1 = cat.instances_of(s1);
  EXPECT_EQ(std::vector<InstanceId>(of1.begin(), of1.end()),
            (std::vector<InstanceId>{i1}));
}

TEST(ServiceCatalog, InstanceIdsAreSelfReferential) {
  ServiceCatalog cat;
  const auto s = cat.add_service("a");
  const auto id = cat.add_instance(make_instance(s));
  EXPECT_EQ(cat.instance(id).id, id);
  EXPECT_EQ(cat.instance(id).service, s);
}

// --------------------------------------------------- generate_instances

struct GeneratedCatalog {
  util::Interner interner;
  QosUniverse universe = QosUniverse::standard(interner);
  ServiceCatalog catalog;
  qos::AnalyticTranslator translator{
      universe.level, qos::AnalyticTranslator::paper_coefficients()};
};

TEST(GenerateInstances, CountWithinPaperBounds) {
  GeneratedCatalog g;
  CatalogParams params;
  for (int s = 0; s < 20; ++s) {
    const auto sid = g.catalog.add_service("svc");
    params.seed = static_cast<std::uint64_t>(s + 1);
    generate_instances(g.catalog, sid, params, g.universe, g.translator,
                       false);
    const auto n = g.catalog.instances_of(sid).size();
    EXPECT_GE(n, 10u);
    EXPECT_LE(n, 20u);
  }
}

TEST(GenerateInstances, SourceInstancesHaveEmptyQin) {
  GeneratedCatalog g;
  const auto sid = g.catalog.add_service("src");
  generate_instances(g.catalog, sid, CatalogParams{}, g.universe,
                     g.translator, /*is_source=*/true);
  for (const auto id : g.catalog.instances_of(sid)) {
    EXPECT_TRUE(g.catalog.instance(id).qin.empty());
    EXPECT_FALSE(g.catalog.instance(id).qout.empty());
  }
}

TEST(GenerateInstances, NonSourceInstancesHaveLevelAcceptance) {
  GeneratedCatalog g;
  const auto sid = g.catalog.add_service("mid");
  generate_instances(g.catalog, sid, CatalogParams{}, g.universe,
                     g.translator, false);
  for (const auto id : g.catalog.instances_of(sid)) {
    const auto& inst = g.catalog.instance(id);
    ASSERT_TRUE(inst.qin.get(g.universe.level).has_value());
    EXPECT_TRUE(inst.qin.get(g.universe.level)->is_range());
    ASSERT_TRUE(inst.qout.get(g.universe.level).has_value());
    ASSERT_TRUE(inst.qout.get(g.universe.format).has_value());
  }
}

TEST(GenerateInstances, ResourcesAndBandwidthPositive) {
  GeneratedCatalog g;
  const auto sid = g.catalog.add_service("svc");
  generate_instances(g.catalog, sid, CatalogParams{}, g.universe,
                     g.translator, false);
  for (const auto id : g.catalog.instances_of(sid)) {
    const auto& inst = g.catalog.instance(id);
    for (std::size_t k = 0; k < inst.resources.size(); ++k) {
      EXPECT_GT(inst.resources[k], 0);
    }
    EXPECT_GT(inst.bandwidth_kbps, 0);
  }
}

TEST(GenerateInstances, DeterministicPerSeed) {
  GeneratedCatalog g1, g2;
  const auto s1 = g1.catalog.add_service("svc");
  const auto s2 = g2.catalog.add_service("svc");
  CatalogParams params;
  params.seed = 77;
  generate_instances(g1.catalog, s1, params, g1.universe, g1.translator, false);
  generate_instances(g2.catalog, s2, params, g2.universe, g2.translator, false);
  ASSERT_EQ(g1.catalog.instance_count(), g2.catalog.instance_count());
  for (InstanceId i = 0; i < g1.catalog.instance_count(); ++i) {
    EXPECT_EQ(g1.catalog.instance(i).qout, g2.catalog.instance(i).qout);
    EXPECT_EQ(g1.catalog.instance(i).qin, g2.catalog.instance(i).qin);
  }
}

TEST(GenerateInstances, ConsecutiveLayersOftenComposable) {
  // The generated universe must keep QoS-consistent paths plentiful, or
  // composition failures would dominate the paper's success metric.
  GeneratedCatalog g;
  const auto a = g.catalog.add_service("a");
  const auto b = g.catalog.add_service("b");
  CatalogParams params;
  generate_instances(g.catalog, a, params, g.universe, g.translator, false);
  generate_instances(g.catalog, b, params, g.universe, g.translator, false);
  int consistent_pairs = 0;
  for (const auto pa : g.catalog.instances_of(a)) {
    for (const auto pb : g.catalog.instances_of(b)) {
      consistent_pairs += qos::satisfies(g.catalog.instance(pa).qout,
                                         g.catalog.instance(pb).qin);
    }
  }
  EXPECT_GT(consistent_pairs, 10);
}

// ------------------------------------------------------------ PlacementMap

TEST(PlacementMap, AddAndQueryProviders) {
  PlacementMap pm;
  pm.add_provider(1, 10);
  pm.add_provider(1, 11);
  pm.add_provider(2, 10);
  EXPECT_EQ(pm.provider_count(1), 2u);
  EXPECT_EQ(pm.provider_count(2), 1u);
  EXPECT_EQ(pm.provider_count(3), 0u);
  const auto by10 = pm.provided_by(10);
  EXPECT_EQ(std::set<InstanceId>(by10.begin(), by10.end()),
            (std::set<InstanceId>{1, 2}));
}

TEST(PlacementMap, AddIsIdempotent) {
  PlacementMap pm;
  pm.add_provider(1, 10);
  pm.add_provider(1, 10);
  EXPECT_EQ(pm.provider_count(1), 1u);
  EXPECT_EQ(pm.provided_by(10).size(), 1u);
}

TEST(PlacementMap, RemoveProvider) {
  PlacementMap pm;
  pm.add_provider(1, 10);
  pm.add_provider(1, 11);
  pm.remove_provider(1, 10);
  EXPECT_EQ(pm.provider_count(1), 1u);
  EXPECT_EQ(pm.providers(1)[0], 11u);
  EXPECT_TRUE(pm.provided_by(10).empty());
  pm.remove_provider(1, 99);  // absent: no-op
  EXPECT_EQ(pm.provider_count(1), 1u);
}

TEST(PlacementMap, RemovePeerClearsBothIndexes) {
  PlacementMap pm;
  pm.add_provider(1, 10);
  pm.add_provider(2, 10);
  pm.add_provider(1, 11);
  const auto provided = pm.remove_peer(10);
  EXPECT_EQ(std::set<InstanceId>(provided.begin(), provided.end()),
            (std::set<InstanceId>{1, 2}));
  EXPECT_EQ(pm.provider_count(1), 1u);
  EXPECT_EQ(pm.provider_count(2), 0u);
  EXPECT_TRUE(pm.provided_by(10).empty());
}

TEST(PlacementMap, RemoveUnknownPeerReturnsEmpty) {
  PlacementMap pm;
  EXPECT_TRUE(pm.remove_peer(42).empty());
}

TEST(PlacementMap, ReplicaHostDepartureUnpublishesItsCopies) {
  // The churn path for replicated instances: the harness removes the
  // departed peer from the placement map wholesale and then notifies the
  // ReplicaManager, which drops the host's replica records so the clones
  // stop counting against max_replicas.
  overlay::ChordRing ring(1, 3);
  ServiceCatalog catalog;
  PlacementMap pm;
  net::PeerTable peers(qos::ResourceSchema::paper(), net::ProbeClock());
  net::NetworkModel net(1, net::ProbeClock());
  std::vector<net::PeerId> ids;
  for (int p = 0; p < 24; ++p) {
    ids.push_back(peers.add_peer(qos::ResourceVector{500, 500},
                                 sim::SimTime::minutes(-100)));
    ring.join(ids.back());
  }
  ring.stabilize_all();
  const auto s0 = catalog.add_service("a");
  const auto i0 = catalog.add_instance(make_instance(s0));
  pm.add_provider(i0, ids[0]);
  ServiceDirectory dir(1, ring, catalog);
  dir.publish_all();

  replica::ReplicaConfig cfg;
  cfg.enabled = true;
  cfg.threshold = 2;
  cfg.cooldown = sim::SimTime::minutes(1);
  cfg.min_pool_pressure = 0;
  cfg.max_replicas = 1;
  replica::ReplicaManager mgr(7, cfg, catalog, pm, dir, peers, net,
                              qos::TupleWeights::uniform(2),
                              qos::ResourceSchema::paper());
  const InstanceId insts[] = {i0};
  mgr.on_selection_failure(insts, sim::SimTime::minutes(1));
  ASSERT_EQ(mgr.active(), 1u);
  const net::PeerId host = mgr.replicas()[0].host;
  ASSERT_EQ(pm.provider_count(i0), 2u);

  const auto orphaned = pm.remove_peer(host);
  mgr.peer_departed(host);
  EXPECT_EQ(orphaned, (std::vector<InstanceId>{i0}));
  EXPECT_EQ(pm.provider_count(i0), 1u);
  EXPECT_EQ(pm.providers(i0)[0], ids[0]);
  EXPECT_TRUE(pm.provided_by(host).empty());
  EXPECT_EQ(mgr.active(), 0u);
  EXPECT_EQ(mgr.stats().host_departures, 1u);
}

// --------------------------------------------------------- ServiceDirectory

struct DirectoryFixture : ::testing::Test {
  void SetUp() override {
    for (net::PeerId p = 0; p < 32; ++p) ring.join(p);
    ring.stabilize_all();
    s0 = catalog.add_service("a");
    s1 = catalog.add_service("b");
    i0 = catalog.add_instance(make_instance(s0));
    i1 = catalog.add_instance(make_instance(s0));
    i2 = catalog.add_instance(make_instance(s1));
  }

  overlay::ChordRing ring{1, 3};
  ServiceCatalog catalog;
  ServiceId s0 = 0, s1 = 0;
  InstanceId i0 = 0, i1 = 0, i2 = 0;
};

TEST_F(DirectoryFixture, PublishAndDiscover) {
  ServiceDirectory dir(1, ring, catalog);
  dir.publish_all();
  const auto d0 = dir.discover(s0, 5);
  EXPECT_EQ(std::set<InstanceId>(d0.instances.begin(), d0.instances.end()),
            (std::set<InstanceId>{i0, i1}));
  const auto d1 = dir.discover(s1, 5);
  EXPECT_EQ(d1.instances, (std::vector<InstanceId>{i2}));
}

TEST_F(DirectoryFixture, DiscoverUnpublishedIsEmpty) {
  ServiceDirectory dir(1, ring, catalog);
  EXPECT_TRUE(dir.discover(s0, 3).instances.empty());
}

TEST_F(DirectoryFixture, UnpublishRemovesInstance) {
  ServiceDirectory dir(1, ring, catalog);
  dir.publish_all();
  dir.unpublish(i0);
  const auto d = dir.discover(s0, 2);
  EXPECT_EQ(d.instances, (std::vector<InstanceId>{i1}));
}

TEST_F(DirectoryFixture, DiscoveryPaysChordHops) {
  ServiceDirectory dir(1, ring, catalog);
  dir.publish_all();
  net::NetworkModel net(1, net::ProbeClock(sim::SimTime::seconds(30)));
  // Over many vantage points, at least some lookups need routing hops.
  int total_hops = 0;
  for (net::PeerId p = 0; p < 32; ++p) {
    total_hops += dir.discover(s0, p, &net).hops;
  }
  EXPECT_GT(total_hops, 0);
}

TEST_F(DirectoryFixture, RepublishHealsAfterFailures) {
  ServiceDirectory dir(1, ring, catalog);
  dir.publish_all();
  // Fail a third of the ring without stabilizing: some registrations may
  // shift or be lost.
  for (net::PeerId p = 0; p < 10; ++p) ring.fail(p);
  ring.stabilize_all();
  dir.publish_all();  // the periodic republish
  const auto d = dir.discover(s0, 20);
  EXPECT_EQ(std::set<InstanceId>(d.instances.begin(), d.instances.end()),
            (std::set<InstanceId>{i0, i1}));
}

}  // namespace
}  // namespace qsa::registry
