#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qsa/util/dense_map.hpp"
#include "qsa/util/flags.hpp"
#include "qsa/util/inplace_function.hpp"
#include "qsa/util/interner.hpp"
#include "qsa/util/rng.hpp"
#include "qsa/util/small_vec.hpp"
#include "qsa/util/thread_pool.hpp"

namespace qsa::util {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(99);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(1);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 1000 draws
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, IndexIsUnbiasedAcrossSmallRange) {
  Rng rng(2024);
  constexpr std::size_t kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.index(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(7);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / kN, 2.5, 0.1);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.001), 0.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng(10);
  // With shape 1.1, the max of many draws dwarfs the median.
  std::vector<double> xs;
  for (int i = 0; i < 10'000; ++i) xs.push_back(rng.pareto(1.0, 1.1));
  std::sort(xs.begin(), xs.end());
  EXPECT_GT(xs.back(), 20 * xs[xs.size() / 2]);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(12);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  rng.shuffle(std::span<int>(v));
  int moved = 0;
  for (int i = 0; i < 50; ++i) moved += (v[static_cast<std::size_t>(i)] != i);
  EXPECT_GT(moved, 30);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(13);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(std::span<const int>(v));
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

// ------------------------------------------------------------ seeding

TEST(DeriveSeed, StableAndDistinct) {
  const auto a = derive_seed(1, "peer", 5);
  EXPECT_EQ(a, derive_seed(1, "peer", 5));
  EXPECT_NE(a, derive_seed(1, "peer", 6));
  EXPECT_NE(a, derive_seed(2, "peer", 5));
  EXPECT_NE(a, derive_seed(1, "link", 5));
  EXPECT_NE(a, derive_seed(1, "peer", 5, 1));
}

TEST(DeriveSeed, StreamsAreIndependent) {
  Rng a(derive_seed(1, "x", 0));
  Rng b(derive_seed(1, "x", 1));
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Mix64, AvalanchesSingleBit) {
  // Flipping one input bit should flip roughly half the output bits.
  const auto base = mix64(0x1234'5678'9abc'def0ull);
  const auto flipped = mix64(0x1234'5678'9abc'def1ull);
  EXPECT_GT(__builtin_popcountll(base ^ flipped), 16);
}

TEST(HashStr, DistinguishesStrings) {
  EXPECT_NE(hash_str("cpu"), hash_str("mem"));
  EXPECT_EQ(hash_str("cpu"), hash_str("cpu"));
  EXPECT_NE(hash_str(""), hash_str("a"));
}

// ----------------------------------------------------------- SmallVec

TEST(SmallVec, StartsEmpty) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ((SmallVec<int, 4>::capacity()), 4u);
}

TEST(SmallVec, PushAndIndex) {
  SmallVec<int, 4> v;
  v.push_back(10);
  v.push_back(20);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v.front(), 10);
  EXPECT_EQ(v.back(), 20);
}

TEST(SmallVec, InitializerList) {
  SmallVec<int, 4> v{1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3);
}

TEST(SmallVec, FillConstructor) {
  SmallVec<double, 4> v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  for (double x : v) EXPECT_EQ(x, 1.5);
}

TEST(SmallVec, PopAndClear) {
  SmallVec<int, 4> v{1, 2};
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVec, ResizeGrowsWithFill) {
  SmallVec<int, 4> v{1};
  v.resize(3, 9);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 9);
  EXPECT_EQ(v[2], 9);
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1);
}

TEST(SmallVec, Equality) {
  SmallVec<int, 4> a{1, 2}, b{1, 2}, c{1, 3}, d{1};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(SmallVec, IterationOrder) {
  SmallVec<int, 8> v{5, 6, 7};
  int expected = 5;
  for (int x : v) EXPECT_EQ(x, expected++);
}

// ----------------------------------------------------------- Interner

TEST(Interner, AssignsDenseIds) {
  Interner in;
  EXPECT_EQ(in.intern("format"), 0u);
  EXPECT_EQ(in.intern("level"), 1u);
  EXPECT_EQ(in.intern("format"), 0u);  // idempotent
  EXPECT_EQ(in.size(), 2u);
}

TEST(Interner, FindWithoutInsert) {
  Interner in;
  in.intern("a");
  EXPECT_EQ(in.find("a"), 0u);
  EXPECT_EQ(in.find("missing"), Interner::kInvalid);
}

TEST(Interner, RoundTripsNames) {
  Interner in;
  const auto id = in.intern("frame_rate");
  EXPECT_EQ(in.name(id), "frame_rate");
}

// -------------------------------------------------------------- Flags

TEST(Flags, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--rate=250"};
  Flags f(2, argv);
  EXPECT_EQ(f.get_int("rate", 0), 250);
}

TEST(Flags, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--rate", "300"};
  Flags f(3, argv);
  EXPECT_EQ(f.get_int("rate", 0), 300);
}

TEST(Flags, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  Flags f(2, argv);
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, DefaultWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  EXPECT_EQ(f.get_int("missing", 17), 17);
  EXPECT_EQ(f.get("name", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(f.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(f.get_bool("b", false));
}

TEST(Flags, EnvironmentFallback) {
  ::setenv("QSA_FROM_ENV", "123", 1);
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  EXPECT_EQ(f.get_int("from-env", 0), 123);
  ::unsetenv("QSA_FROM_ENV");
}

TEST(Flags, CliBeatsEnvironment) {
  ::setenv("QSA_RATE", "1", 1);
  const char* argv[] = {"prog", "--rate=2"};
  Flags f(2, argv);
  EXPECT_EQ(f.get_int("rate", 0), 2);
  ::unsetenv("QSA_RATE");
}

TEST(Flags, PositionalArguments) {
  const char* argv[] = {"prog", "alpha", "--k=1", "beta"};
  Flags f(4, argv);
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "alpha");
  EXPECT_EQ(f.positional()[1], "beta");
}

TEST(Flags, HelpDetected) {
  const char* argv[] = {"prog", "--help"};
  Flags f(2, argv);
  EXPECT_TRUE(f.help());
}

TEST(Flags, BoolSpellings) {
  const char* argv[] = {"prog", "--a=1", "--b=true", "--c=yes", "--d=off"};
  Flags f(5, argv);
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_TRUE(f.get_bool("b", false));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, UnknownListsUnqueriedFlags) {
  // "--fault-los" is the classic typo for "--fault-loss": the program never
  // reads it, so it must surface instead of silently running loss=0.
  const char* argv[] = {"prog", "--fault-los=0.2", "--rate=5"};
  Flags f(3, argv);
  EXPECT_EQ(f.get_double("rate", 0), 5);
  const auto bad = f.unknown();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "fault-los");
}

TEST(Flags, UnknownShrinksAsFlagsAreQueried) {
  const char* argv[] = {"prog", "--alpha=1", "--beta", "2", "--gamma"};
  Flags f(5, argv);
  EXPECT_EQ(f.unknown().size(), 3u);
  EXPECT_EQ(f.get_int("alpha", 0), 1);
  EXPECT_EQ(f.unknown(), (std::vector<std::string>{"beta", "gamma"}));
  EXPECT_EQ(f.get("beta", ""), "2");
  EXPECT_TRUE(f.get_bool("gamma", false));
  EXPECT_TRUE(f.unknown().empty());
}

TEST(Flags, UnknownIgnoresHelpPositionalsAndEnvironment) {
  // --help never reaches kv_, positionals are not flags, and environment
  // variables cannot be typos on this command line.
  ::setenv("QSA_NOT_ON_CLI", "1", 1);
  const char* argv[] = {"prog", "--help", "positional"};
  Flags f(3, argv);
  EXPECT_TRUE(f.help());
  EXPECT_TRUE(f.unknown().empty());
  ::unsetenv("QSA_NOT_ON_CLI");
}

TEST(Flags, UnknownDeduplicatesRepeatedFlags) {
  const char* argv[] = {"prog", "--x=1", "--x=2"};
  Flags f(3, argv);
  EXPECT_EQ(f.unknown(), std::vector<std::string>{"x"});
}

TEST(Flags, KnownIsTheSortedQueryVocabulary) {
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  (void)f.get_int("zeta", 0);
  (void)f.get_bool("alpha", false);
  (void)f.get_double("alpha", 0);  // repeated lookups count once
  EXPECT_EQ(f.known(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(FlagsDeathTest, RejectUnknownFlagsExitsWithStatusTwo) {
  const char* argv[] = {"prog", "--replica-treshold=3"};
  Flags f(2, argv);
  (void)f.get_double("replica-threshold", 8);
  EXPECT_EXIT(reject_unknown_flags(f, "prog"),
              ::testing::ExitedWithCode(2), "unknown flag --replica-treshold");
}

TEST(Flags, RejectUnknownFlagsReturnsWhenAllQueried) {
  const char* argv[] = {"prog", "--rate=5"};
  Flags f(2, argv);
  EXPECT_EQ(f.get_int("rate", 0), 5);
  reject_unknown_flags(f, "prog");  // must not exit
}

namespace {
enum class Fruit { kApple, kBanana };
constexpr Choice<Fruit> kFruits[] = {
    {"apple", Fruit::kApple},
    {"banana", Fruit::kBanana},
};
}  // namespace

TEST(Flags, GetChoiceReturnsMatchedValue) {
  const char* argv[] = {"prog", "--fruit=banana"};
  Flags f(2, argv);
  EXPECT_EQ(get_choice(f, "fruit", kFruits, Fruit::kApple, "prog"),
            Fruit::kBanana);
  EXPECT_TRUE(f.unknown().empty());  // get_choice consults the flag
}

TEST(Flags, GetChoiceDefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  EXPECT_EQ(get_choice(f, "fruit", kFruits, Fruit::kBanana, "prog"),
            Fruit::kBanana);
}

TEST(Flags, GetChoiceReadsEnvironmentFallback) {
  ::setenv("QSA_FRUIT", "apple", 1);
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  EXPECT_EQ(get_choice(f, "fruit", kFruits, Fruit::kBanana, "prog"),
            Fruit::kApple);
  ::unsetenv("QSA_FRUIT");
}

TEST(FlagsDeathTest, GetChoiceExitsTwoOnUnknownValue) {
  const char* argv[] = {"prog", "--fruit=pear"};
  Flags f(2, argv);
  EXPECT_EXIT((void)get_choice(f, "fruit", kFruits, Fruit::kApple, "prog"),
              ::testing::ExitedWithCode(2),
              "unknown value 'pear' for --fruit");
}

TEST(FlagsDeathTest, GetChoiceUsageListsChoices) {
  const char* argv[] = {"prog", "--fruit=pear"};
  Flags f(2, argv);
  EXPECT_EXIT((void)get_choice(f, "fruit", kFruits, Fruit::kApple, "prog"),
              ::testing::ExitedWithCode(2), "--fruit=apple\\|banana");
}

TEST(ParseDoubleList, Basic) {
  const auto v = parse_double_list("50,100,200.5");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 50);
  EXPECT_DOUBLE_EQ(v[1], 100);
  EXPECT_DOUBLE_EQ(v[2], 200.5);
}

TEST(ParseDoubleList, EmptyAndSingleton) {
  EXPECT_TRUE(parse_double_list("").empty());
  const auto v = parse_double_list("7");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 7);
}

// --------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, NestedParallelForMakesProgress) {
  // The caller drives iterations itself, so a parallel_for issued from
  // inside a pool task completes even when every worker is busy running
  // the outer loop — the no-deadlock-by-construction contract.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, NestedParallelForOnSingleWorkerPool) {
  ThreadPool pool(1);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 16);
}

TEST(ThreadPool, SubmitsInterleaveWithParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> submitted{0};
  std::atomic<int> looped{0};
  for (int i = 0; i < 32; ++i) pool.submit([&submitted] { ++submitted; });
  pool.parallel_for(64, [&](std::size_t) { ++looped; });
  pool.wait();
  EXPECT_EQ(submitted.load(), 32);
  EXPECT_EQ(looped.load(), 64);
}

TEST(ThreadPool, ParallelForResultsAreIndexPure) {
  // Results stored by index are identical for any worker count — the
  // property every deterministic use of the pool rests on.
  const auto fill = [](ThreadPool& pool, std::vector<std::uint64_t>& out) {
    pool.parallel_for(out.size(), [&out](std::size_t i) {
      out[i] = i * 2654435761ULL % 97;
    });
  };
  std::vector<std::uint64_t> one(256), four(256);
  ThreadPool p1(1), p4(4);
  fill(p1, one);
  fill(p4, four);
  EXPECT_EQ(one, four);
}

TEST(ThreadPool, SharedPoolIsASingleton) {
  ThreadPool& a = shared_pool();
  ThreadPool& b = shared_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  std::atomic<int> hits{0};
  a.parallel_for(32, [&hits](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 32);
}

// ---------------------------------------------------- InplaceFunction

TEST(InplaceFunction, InvokesAndReturnsValues) {
  InplaceFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
  int hits = 0;
  InplaceFunction<void()> bump = [&hits] { ++hits; };
  bump();
  bump();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, EmptyAndNullptrComparisons) {
  InplaceFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f == nullptr);
  EXPECT_FALSE(f != nullptr);
  f = [] {};
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f != nullptr);
  f.reset();
  EXPECT_TRUE(f == nullptr);
  InplaceFunction<void()> g = nullptr;
  EXPECT_TRUE(g == nullptr);
}

TEST(InplaceFunction, MoveStealsAndEmptiesSource) {
  int hits = 0;
  InplaceFunction<void()> a = [&hits] { ++hits; };
  InplaceFunction<void()> b = std::move(a);
  EXPECT_TRUE(a == nullptr);  // NOLINT(bugprone-use-after-move): specified
  b();
  EXPECT_EQ(hits, 1);
  InplaceFunction<void()> c;
  c = std::move(b);
  EXPECT_TRUE(b == nullptr);  // NOLINT(bugprone-use-after-move): specified
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, DestroysCaptureExactlyOnce) {
  struct Probe {
    int* destructions;
    explicit Probe(int* d) noexcept : destructions(d) {}
    Probe(Probe&& o) noexcept : destructions(o.destructions) {
      o.destructions = nullptr;  // moved-from probes don't count
    }
    ~Probe() {
      if (destructions != nullptr) ++*destructions;
    }
    void operator()() const {}
  };
  int destructions = 0;
  {
    InplaceFunction<void()> f = Probe(&destructions);
    EXPECT_EQ(destructions, 0);
    InplaceFunction<void()> g = std::move(f);  // relocation, no live destroy
    EXPECT_EQ(destructions, 0);
    g();
  }
  EXPECT_EQ(destructions, 1);
  {
    InplaceFunction<void()> f = Probe(&destructions);
    f.reset();
    EXPECT_EQ(destructions, 2);
    f.reset();  // idempotent on empty
    EXPECT_EQ(destructions, 2);
  }
  EXPECT_EQ(destructions, 2);
}

TEST(InplaceFunction, MoveAssignDestroysPreviousTarget) {
  int first = 0, second = 0;
  InplaceFunction<void()> f = [&first] { ++first; };
  InplaceFunction<void()> g = [&second] { ++second; };
  f = std::move(g);
  f();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

// ----------------------------------------------------------- DenseMap

TEST(DenseMap, BasicInsertFindErase) {
  DenseMap<std::uint32_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.count(7), 0u);
  m[7] = 70;
  m[9] = 90;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(7), 70);
  EXPECT_EQ(m.at(9), 90);
  EXPECT_EQ(m.find(8), m.end());
  ASSERT_NE(m.find(7), m.end());
  EXPECT_EQ(m.find(7)->second, 70);
  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.count(7), 0u);
  EXPECT_EQ(m.at(9), 90);  // survivor untouched by the backward shift
  EXPECT_EQ(m.size(), 1u);
}

TEST(DenseMap, EmplaceReportsInsertion) {
  DenseMap<std::uint32_t, int> m;
  auto [it1, inserted1] = m.emplace(5, 50);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(it1->second, 50);
  auto [it2, inserted2] = m.emplace(5, 999);
  EXPECT_FALSE(inserted2);  // existing value wins
  EXPECT_EQ(it2->second, 50);
  EXPECT_EQ(m.size(), 1u);
}

TEST(DenseMap, MatchesReferenceMapUnderRandomChurn) {
  // Dense key range forces long probe chains and exercises backward-shift
  // deletion through them; the reference map is ground truth.
  DenseMap<std::uint32_t, std::uint64_t> m;
  std::unordered_map<std::uint32_t, std::uint64_t> ref;
  Rng rng(2026);
  for (int op = 0; op < 200'000; ++op) {
    const auto key = static_cast<std::uint32_t>(rng.index(512));
    switch (rng.index(4)) {
      case 0:
      case 1: {
        const std::uint64_t value = rng();
        m[key] = value;
        ref[key] = value;
        break;
      }
      case 2:
        EXPECT_EQ(m.erase(key), ref.erase(key));
        break;
      default:
        EXPECT_EQ(m.count(key), ref.count(key));
        if (ref.count(key) != 0) {
          EXPECT_EQ(m.at(key), ref.at(key));
        }
        break;
    }
  }
  EXPECT_EQ(m.size(), ref.size());
  std::size_t visited = 0;
  for (const auto& [k, v] : m) {
    ++visited;
    ASSERT_NE(ref.find(k), ref.end());
    EXPECT_EQ(ref.at(k), v);
  }
  EXPECT_EQ(visited, ref.size());
}

TEST(DenseMap, IterationOrderIsAFunctionOfHistory) {
  // Two maps fed the identical op sequence iterate identically — the
  // property the simulator's determinism leans on (no std::hash, no
  // platform-dependent layout).
  DenseMap<std::uint64_t, int> a, b;
  Rng ra(99), rb(99);
  const auto drive = [](DenseMap<std::uint64_t, int>& m, Rng& rng) {
    for (int op = 0; op < 5000; ++op) {
      const std::uint64_t key = rng.index(300);
      if (rng.index(3) == 0) {
        m.erase(key);
      } else {
        m[key] = op;
      }
    }
  };
  drive(a, ra);
  drive(b, rb);
  std::vector<std::pair<std::uint64_t, int>> va, vb;
  for (const auto& e : a) va.push_back(e);
  for (const auto& e : b) vb.push_back(e);
  EXPECT_EQ(va, vb);
  EXPECT_FALSE(va.empty());
}

TEST(DenseMap, ClearReleasesEntriesAndIsReusable) {
  DenseMap<std::uint32_t, std::string> m;
  for (std::uint32_t i = 0; i < 100; ++i) {
    std::string value = "v";
    value += std::to_string(i);
    m[i] = std::move(value);
  }
  EXPECT_EQ(m.size(), 100u);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.begin(), m.end());
  EXPECT_EQ(m.count(5), 0u);
  m[5] = "again";
  EXPECT_EQ(m.at(5), "again");
  EXPECT_EQ(m.size(), 1u);
}

TEST(DenseMap, ReservePreventsRehashAndKeepsEntries) {
  DenseMap<std::uint32_t, int> m;
  m.reserve(1000);
  for (std::uint32_t i = 0; i < 1000; ++i) m[i] = static_cast<int>(i);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(m.at(i), static_cast<int>(i));
  EXPECT_EQ(m.size(), 1000u);
}

TEST(DenseMap, ErasedValueIsResetImmediately) {
  // The contract that lets values own resources: erase resets the slot to
  // V{} rather than leaving a moved-from husk in the backing array.
  DenseMap<std::uint32_t, std::string> m;
  m[1] = std::string(1000, 'x');
  m.erase(1);
  for (const auto& slot : m) {
    FAIL() << "erased entry still visible: " << slot.first;
  }
  EXPECT_TRUE(m.empty());
}

}  // namespace
}  // namespace qsa::util
