#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "qsa/harness/experiment.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/obs/export.hpp"
#include "qsa/obs/flight_recorder.hpp"
#include "qsa/obs/histogram.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/obs/series.hpp"
#include "qsa/obs/sink.hpp"
#include "qsa/obs/trace.hpp"

namespace qsa::obs {
namespace {

// ------------------------------------------------------------ Histogram

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleSampleQuantilesAreTheSample) {
  Histogram h;
  h.observe(7.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 7.0);
  EXPECT_EQ(h.max(), 7.0);
  EXPECT_EQ(h.mean(), 7.0);
  // Clamped to [min, max], so any quantile of one sample is that sample.
  EXPECT_EQ(h.p50(), 7.0);
  EXPECT_EQ(h.p90(), 7.0);
  EXPECT_EQ(h.p99(), 7.0);
}

TEST(Histogram, BucketIndexEdges) {
  // Bucket 0: everything below 1, including negatives and NaN-safe input.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.5), 0u);
  EXPECT_EQ(Histogram::bucket_index(-100.0), 0u);
  // Bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(1.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(1.999), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(3.999), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 3u);
  // Overflow clamps to the last bucket.
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_lower(0), 0.0);
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kBuckets - 1)));
}

TEST(Histogram, BucketBoundsRoundTrip) {
  for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i)), i) << i;
  }
}

TEST(Histogram, QuantilesOrderedAndClamped) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p99(), h.max());
  // p50 of 1..100 should land around the middle power-of-two bucket.
  EXPECT_GT(h.p50(), 20.0);
  EXPECT_LT(h.p50(), 80.0);
}

TEST(Histogram, OverflowSampleLandsInLastBucket) {
  Histogram h;
  h.observe(1e300);
  EXPECT_EQ(h.buckets()[Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.max(), 1e300);
  EXPECT_EQ(h.p99(), 1e300);  // clamped to max, not the bucket bound
}

TEST(Histogram, MergeAddsCountsAndExtremes) {
  Histogram a, b;
  a.observe(2.0);
  b.observe(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 100.0);
  EXPECT_EQ(a.sum(), 102.0);
}

TEST(Histogram, MergeWithEmptyIsIdentityBothWays) {
  Histogram a, empty;
  a.observe(3.0);
  a.observe(9.0);
  // Merging an empty histogram changes nothing — in particular it must not
  // drag min down to the empty histogram's zero-initialised extremes.
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 3.0);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_EQ(a.sum(), 12.0);
  // Merging into an empty histogram adopts the other's extremes wholesale.
  Histogram b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 3.0);
  EXPECT_EQ(b.max(), 9.0);
  EXPECT_EQ(b.p50(), a.p50());
}

TEST(Histogram, MergePreservesOverflowBucket) {
  Histogram a, b;
  a.observe(1.0);
  b.observe(1e300);
  a.merge(b);
  EXPECT_EQ(a.buckets()[Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(a.max(), 1e300);
  EXPECT_EQ(a.count(), 2u);
}

// --------------------------------------------------------------- Tracer

TEST(Tracer, SpanLifecycleStreamsOnFinish) {
  Tracer t;
  StringSpanSink sink;
  t.set_sink(&sink);
  const auto id = t.begin(1, Phase::kRunning, sim::SimTime::millis(10));
  t.annotate(id, "hosts", 3);
  EXPECT_EQ(t.open_spans(), 1u);
  EXPECT_EQ(t.live_spans(), 1u);
  t.end(id, sim::SimTime::millis(500), SpanStatus::kOk);
  EXPECT_EQ(t.open_spans(), 0u);
  // Closed but not yet emitted: spans stream when their request finishes.
  EXPECT_EQ(sink.spans(), 0u);
  t.finish(1);
  EXPECT_EQ(sink.spans(), 1u);
  EXPECT_EQ(t.live_spans(), 0u);  // nodes recycled
  EXPECT_EQ(t.finished_requests(), 1u);
  EXPECT_EQ(sink.str(),
            "{\"attrs\":{\"hosts\":3},\"begin_ms\":10,\"end_ms\":500,"
            "\"phase\":\"running\",\"request\":1,\"status\":\"ok\"}\n");
}

TEST(Tracer, EndIsIdempotent) {
  Tracer t;
  StringSpanSink sink;
  t.set_sink(&sink);
  const auto id = t.begin(1, Phase::kAdmission, sim::SimTime::millis(0));
  t.end(id, sim::SimTime::millis(1), SpanStatus::kFail, "admission");
  t.end(id, sim::SimTime::millis(9), SpanStatus::kOk);  // ignored
  EXPECT_EQ(t.count(Phase::kAdmission, SpanStatus::kFail), 1u);
  EXPECT_EQ(t.count(Phase::kAdmission, SpanStatus::kOk), 0u);
  t.finish(1);
  EXPECT_NE(sink.str().find("\"end_ms\":1,"), std::string::npos);
  EXPECT_NE(sink.str().find("\"status\":\"fail\""), std::string::npos);
}

TEST(Tracer, StaleHandleAfterFinishIsANoOp) {
  Tracer t;
  const auto id = t.begin(1, Phase::kRunning, sim::SimTime::millis(0));
  t.end(id, sim::SimTime::millis(5), SpanStatus::kOk);
  t.finish(1);
  // The slot is recycled and its generation bumped: a retained handle must
  // not corrupt whatever lives there next.
  const auto id2 = t.begin(2, Phase::kRunning, sim::SimTime::millis(10));
  t.end(id, sim::SimTime::millis(99), SpanStatus::kFail, "stale");
  t.annotate(id, "stale", 1.0);
  EXPECT_EQ(t.failures("stale"), 0u);
  EXPECT_EQ(t.open_spans(), 1u);  // request 2's span untouched
  t.end(id2, sim::SimTime::millis(11), SpanStatus::kOk);
  t.finish(2);
  EXPECT_EQ(t.count(Phase::kRunning, SpanStatus::kOk), 2u);
  EXPECT_EQ(t.count(Phase::kRunning, SpanStatus::kFail), 0u);
}

TEST(Tracer, EndOpenUnwindsAndEmitsInBeginOrder) {
  Tracer t;
  StringSpanSink sink;
  t.set_sink(&sink);
  t.begin(7, Phase::kRunning, sim::SimTime::millis(0));
  t.begin(7, Phase::kRecovery, sim::SimTime::millis(5));
  t.end_open(7, sim::SimTime::millis(9), SpanStatus::kAbort, "horizon");
  EXPECT_EQ(t.open_spans(), 0u);
  EXPECT_EQ(t.count(Phase::kRunning, SpanStatus::kAbort), 1u);
  EXPECT_EQ(t.count(Phase::kRecovery, SpanStatus::kAbort), 1u);
  t.finish(7);
  // Emission preserves begin order even though unwinding closed the
  // recovery span first.
  const std::string& out = sink.str();
  const auto run_pos = out.find("\"phase\":\"running\"");
  const auto rec_pos = out.find("\"phase\":\"recovery\"");
  ASSERT_NE(run_pos, std::string::npos);
  ASSERT_NE(rec_pos, std::string::npos);
  EXPECT_LT(run_pos, rec_pos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Tracer, FailuresExcludeRecoverySpans) {
  Tracer t;
  // A failed repair attempt inside a session that then fails: one recovery
  // kFail span plus the terminal running kFail span, same cause.
  t.instant(3, Phase::kRecovery, sim::SimTime::millis(50), SpanStatus::kFail,
            "departure");
  const auto run = t.begin(3, Phase::kRunning, sim::SimTime::millis(0));
  t.end(run, sim::SimTime::millis(60), SpanStatus::kFail, "departure");
  EXPECT_EQ(t.failures("departure"), 1u);  // the request failed once
  EXPECT_EQ(t.count(Phase::kRecovery, SpanStatus::kFail), 1u);
}

TEST(Tracer, RetryIsNotAFailure) {
  Tracer t;
  t.instant(4, Phase::kAdmission, sim::SimTime::millis(1), SpanStatus::kRetry,
            "admission");
  t.instant(4, Phase::kAdmission, sim::SimTime::millis(2), SpanStatus::kFail,
            "admission");
  EXPECT_EQ(t.failures("admission"), 1u);
  EXPECT_EQ(t.count(Phase::kAdmission, SpanStatus::kRetry), 1u);
}

TEST(Tracer, MemoryIsBoundedByInFlightRequests) {
  Tracer t;
  StringSpanSink sink;
  t.set_sink(&sink);
  // 500 requests, two spans each, never more than two requests in flight:
  // the slab must recycle instead of growing with the total span count.
  for (std::uint64_t r = 0; r < 500; ++r) {
    const auto setup =
        t.instant(r, Phase::kAdmission, sim::SimTime::millis(r), SpanStatus::kOk);
    (void)setup;
    const auto run = t.begin(r, Phase::kRunning, sim::SimTime::millis(r));
    t.end(run, sim::SimTime::millis(r + 10), SpanStatus::kOk);
    t.finish(r);
  }
  EXPECT_EQ(t.live_spans(), 0u);
  EXPECT_LE(t.peak_live_spans(), 2u);
  EXPECT_EQ(t.finished_requests(), 500u);
  EXPECT_EQ(t.emitted_spans(), 1000u);
  EXPECT_EQ(sink.spans(), 1000u);
}

// ------------------------------------------------------------- Sampling

TEST(Tracer, SamplingIsAPureFunctionOfSeedAndRequest) {
  TraceConfig cfg;
  cfg.seed = 42;
  cfg.sample_every = 4;
  const Tracer a(cfg), b(cfg);
  std::uint64_t kept = 0;
  for (std::uint64_t r = 0; r < 400; ++r) {
    EXPECT_EQ(a.sampled(r), b.sampled(r)) << r;
    kept += a.sampled(r) ? 1 : 0;
  }
  // Roughly 1-in-4; the hash makes the exact set seed-dependent.
  EXPECT_GT(kept, 400u / 8);
  EXPECT_LT(kept, 400u / 2);
  TraceConfig other = cfg;
  other.seed = 43;
  const Tracer c(other);
  bool differs = false;
  for (std::uint64_t r = 0; r < 400 && !differs; ++r) {
    differs = c.sampled(r) != a.sampled(r);
  }
  EXPECT_TRUE(differs);  // the kept set depends on the seed
}

TEST(Tracer, RateOneAndRateZeroKeepEverything) {
  for (std::uint32_t rate : {0u, 1u}) {
    TraceConfig cfg;
    cfg.seed = 7;
    cfg.sample_every = rate;
    Tracer t(cfg);
    for (std::uint64_t r = 0; r < 100; ++r) EXPECT_TRUE(t.sampled(r));
  }
}

TEST(Tracer, SampledStreamIsSubsetAndCountsStayExact) {
  const auto feed = [](Tracer& t) {
    for (std::uint64_t r = 0; r < 200; ++r) {
      const auto id = t.begin(r, Phase::kRunning, sim::SimTime::millis(r));
      if (r % 3 == 0) {
        t.end(id, sim::SimTime::millis(r + 5), SpanStatus::kFail, "departure");
      } else {
        t.end(id, sim::SimTime::millis(r + 5), SpanStatus::kOk);
      }
      t.finish(r);
    }
  };
  TraceConfig full_cfg;
  full_cfg.seed = 11;
  Tracer full(full_cfg);
  StringSpanSink full_sink;
  full.set_sink(&full_sink);
  feed(full);

  TraceConfig sampled_cfg = full_cfg;
  sampled_cfg.sample_every = 4;
  Tracer sampled(sampled_cfg);
  StringSpanSink sampled_sink;
  sampled.set_sink(&sampled_sink);
  feed(sampled);

  // Aggregate accounting is exact under any rate...
  EXPECT_EQ(sampled.failures("departure"), full.failures("departure"));
  EXPECT_EQ(sampled.count(Phase::kRunning, SpanStatus::kOk),
            full.count(Phase::kRunning, SpanStatus::kOk));
  EXPECT_EQ(sampled.finished_requests(), full.finished_requests());
  // ...while the stream itself thins to the sampled subset.
  EXPECT_LT(sampled.emitted_spans(), full.emitted_spans());
  EXPECT_GT(sampled.emitted_spans(), 0u);
  EXPECT_EQ(sampled.sampled_requests(), sampled.emitted_spans());
  std::string_view rest = sampled_sink.str();
  while (!rest.empty()) {
    const auto nl = rest.find('\n');
    ASSERT_NE(nl, std::string_view::npos);
    const std::string line(rest.substr(0, nl + 1));
    EXPECT_NE(full_sink.str().find(line), std::string::npos) << line;
    rest.remove_prefix(nl + 1);
  }
}

// ------------------------------------------------------ Flight recorder

TEST(FlightRecorder, RetainsLastKPerCauseOldestFirst) {
  FlightRecorder fr(2);
  std::vector<Span> chain(1);
  for (std::uint64_t r = 0; r < 5; ++r) {
    chain[0].request = r;
    fr.record(r, "departure", chain);
  }
  chain[0].request = 9;
  fr.record(9, "admission", chain);

  EXPECT_EQ(fr.capacity(), 2u);
  EXPECT_EQ(fr.recorded(), 6u);
  EXPECT_EQ(fr.size(), 3u);  // two departure chains + one admission chain
  const auto departures = fr.chains("departure");
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_EQ(departures[0]->request, 3u);  // oldest retained
  EXPECT_EQ(departures[1]->request, 4u);  // newest
  const auto causes = fr.causes();
  ASSERT_EQ(causes.size(), 2u);
  EXPECT_EQ(causes[0], "admission");  // lexicographic
  EXPECT_EQ(causes[1], "departure");
  EXPECT_TRUE(fr.chains("unknown").empty());
}

TEST(FlightRecorder, JsonlOneLinePerChainSortedByCause) {
  FlightRecorder fr(4);
  std::vector<Span> chain(2);
  chain[0].request = chain[1].request = 5;
  fr.record(5, "departure", chain);
  chain[0].request = chain[1].request = 6;
  fr.record(6, "admission", chain);
  const std::string out = fr.jsonl();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  const auto adm = out.find("\"cause\":\"admission\"");
  const auto dep = out.find("\"cause\":\"departure\"");
  ASSERT_NE(adm, std::string::npos);
  ASSERT_NE(dep, std::string::npos);
  EXPECT_LT(adm, dep);
  EXPECT_NE(out.find("\"request\":6"), std::string::npos);
}

TEST(Tracer, FlightRecorderKeepsFailuresEvenWhenUnsampled) {
  TraceConfig cfg;
  cfg.seed = 3;
  cfg.sample_every = 1000000;  // effectively drop everything from the stream
  cfg.flight_capacity = 2;
  Tracer t(cfg);
  StringSpanSink sink;
  t.set_sink(&sink);

  // Five failing requests, chosen unsampled so the stream stays silent.
  std::uint64_t fed = 0;
  for (std::uint64_t r = 0; fed < 5; ++r) {
    if (t.sampled(r)) continue;
    t.instant(r, Phase::kAdmission, sim::SimTime::millis(r), SpanStatus::kFail,
              "admission");
    t.finish(r);
    ++fed;
  }
  EXPECT_EQ(sink.spans(), 0u);
  ASSERT_NE(t.flight(), nullptr);
  EXPECT_EQ(t.flight()->recorded(), 5u);
  EXPECT_EQ(t.flight()->chains("admission").size(), 2u);  // last K retained

  // A recovered request routes under the "recovered" pseudo-cause.
  const auto run = t.begin(7000, Phase::kRunning, sim::SimTime::millis(0));
  t.instant(7000, Phase::kRecovery, sim::SimTime::millis(3), SpanStatus::kOk);
  t.end(run, sim::SimTime::millis(9), SpanStatus::kOk);
  t.finish(7000);
  ASSERT_EQ(t.flight()->chains("recovered").size(), 1u);
  EXPECT_EQ(t.flight()->chains("recovered")[0]->spans.size(), 2u);

  // A clean success leaves no forensic record.
  t.instant(7001, Phase::kRunning, sim::SimTime::millis(10), SpanStatus::kOk);
  t.finish(7001);
  EXPECT_EQ(t.flight()->recorded(), 6u);
}

// ------------------------------------------------------------ LiveSeries

TEST(LiveSeries, ProbesPollInRegistrationOrderAndStreamRows) {
  LiveSeries ls;
  StringMetricSink sink;
  ls.set_sink(&sink);
  double x = 1.0;
  ls.track("a", [&x] { return x; });
  ls.track("b", [&x] { return x * 2; });
  ls.sample(sim::SimTime::millis(100));
  x = 5.0;
  ls.push("manual", sim::SimTime::millis(150), 42.0);
  ls.sample(sim::SimTime::millis(200));

  EXPECT_EQ(ls.series_count(), 3u);
  EXPECT_EQ(ls.samples_recorded(), 5u);
  ASSERT_NE(ls.series("a"), nullptr);
  EXPECT_EQ(ls.series("a")->samples().size(), 2u);
  EXPECT_EQ(ls.series("a")->samples()[1].value, 5.0);
  ASSERT_NE(ls.series("manual"), nullptr);
  EXPECT_EQ(ls.series("manual")->samples()[0].value, 42.0);
  EXPECT_EQ(ls.series("missing"), nullptr);

  const std::string expected =
      "series,time_ms,value\n"
      "a,100,1\n"
      "b,100,2\n"
      "manual,150,42\n"
      "a,200,5\n"
      "b,200,10\n";
  // The streamed rows and the replayed csv() are the same bytes.
  EXPECT_EQ(sink.str(), expected);
  EXPECT_EQ(ls.csv(), expected);
}

// ------------------------------------------------------------ Exporters

TEST(Export, SpanJsonGolden) {
  Tracer t;
  StringSpanSink sink;
  t.set_sink(&sink);
  const auto id = t.begin(12, Phase::kDiscovery, sim::SimTime::millis(100));
  // Annotated out of order: keys must come out sorted.
  t.annotate(id, "latency_ms", 42.5);
  t.annotate(id, "hops", 6);
  t.end(id, sim::SimTime::millis(100), SpanStatus::kFail, "discovery");
  t.finish(12);
  EXPECT_EQ(sink.str(),
            "{\"attrs\":{\"hops\":6,\"latency_ms\":42.5},"
            "\"begin_ms\":100,\"cause\":\"discovery\",\"end_ms\":100,"
            "\"phase\":\"discovery\",\"request\":12,\"status\":\"fail\"}\n");
}

TEST(Export, TraceJsonlOneLinePerSpan) {
  Tracer t;
  StringSpanSink sink;
  t.set_sink(&sink);
  t.instant(1, Phase::kTeardown, sim::SimTime::millis(5), SpanStatus::kOk);
  t.instant(2, Phase::kTeardown, sim::SimTime::millis(6), SpanStatus::kOk);
  t.finish_all();
  EXPECT_EQ(std::count(sink.str().begin(), sink.str().end(), '\n'), 2);
}

// Minimal JSON string-literal decoder for the round-trip check below.
std::string unescape_json(std::string_view s) {
  EXPECT_GE(s.size(), 2u);
  EXPECT_EQ(s.front(), '"');
  EXPECT_EQ(s.back(), '"');
  std::string out;
  for (std::size_t i = 1; i + 1 < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        const int v = std::stoi(std::string(s.substr(i + 1, 4)), nullptr, 16);
        out += static_cast<char>(v);
        i += 4;
        break;
      }
      default: ADD_FAILURE() << "bad escape in " << s;
    }
  }
  return out;
}

TEST(Export, JsonStringEscapingGolden) {
  std::string out;
  append_json_string(out, "plain");
  EXPECT_EQ(out, "\"plain\"");
  out.clear();
  append_json_string(out, "a\"b\\c\nd\te\rf\bg\fh");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh\"");
  out.clear();
  append_json_string(out, std::string_view("x\x01\x1fy", 4));
  EXPECT_EQ(out, "\"x\\u0001\\u001fy\"");
}

TEST(Export, JsonStringEscapingRoundTrip) {
  // Every byte below 0x80 that matters, plus the named-escape set, must
  // survive encode -> decode unchanged.
  std::string original = "quote:\" backslash:\\ newline:\n tab:\t";
  for (char c = 1; c < 0x20; ++c) original += c;
  original += "tail";
  std::string encoded;
  append_json_string(encoded, original);
  // The encoded form itself must contain no raw control characters.
  for (char c : encoded) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_EQ(unescape_json(encoded), original);
}

TEST(Export, SpanJsonEscapesHostileCause) {
  Tracer t;
  StringSpanSink sink;
  t.set_sink(&sink);
  t.instant(1, Phase::kAdmission, sim::SimTime::millis(0), SpanStatus::kFail,
            "bad\"cause\nwith\tcontrol");
  t.finish(1);
  EXPECT_NE(sink.str().find("\"cause\":\"bad\\\"cause\\nwith\\tcontrol\""),
            std::string::npos);
  // Still exactly one line: the newline inside the cause was escaped.
  EXPECT_EQ(std::count(sink.str().begin(), sink.str().end(), '\n'), 1);
}

TEST(Export, MetricsJsonGolden) {
  MetricsRegistry r;
  r.add("b.count", 2);
  r.add("a.count", 1);
  r.set("queue.depth", 3);
  r.observe("rtt_ms", 2.0);
  EXPECT_EQ(metrics_json(r),
            "{\"counters\":{\"a.count\":1,\"b.count\":2},"
            "\"gauges\":{\"queue.depth\":{\"high_water\":3,\"value\":3}},"
            "\"histograms\":{\"rtt_ms\":{\"buckets\":[[2,1]],\"count\":1,"
            "\"max\":2,\"mean\":2,\"min\":2,\"p50\":2,\"p90\":2,\"p99\":2,"
            "\"sum\":2}}}\n");
}

TEST(Export, MetricsCsvShape) {
  MetricsRegistry r;
  r.add("x", 5);
  r.observe("h", 1.5);
  const std::string out = metrics_csv(r);
  EXPECT_EQ(out.rfind("kind,name,field,value\n", 0), 0u);
  EXPECT_NE(out.find("counter,x,value,5\n"), std::string::npos);
  EXPECT_NE(out.find("histogram,h,count,1\n"), std::string::npos);
  EXPECT_NE(out.find("histogram,h,p99,1.5\n"), std::string::npos);
}

// ----------------------------------------------- End-to-end grid tracing

harness::GridConfig churn_config() {
  harness::GridConfig c;
  c.seed = 11;
  c.peers = 300;
  c.min_providers = 15;
  c.max_providers = 30;
  c.apps.applications = 6;
  c.requests.rate_per_min = 30;
  c.horizon = sim::SimTime::minutes(20);
  c.sample_period = sim::SimTime::minutes(2);
  c.churn.events_per_min = 6;
  c.enable_recovery = true;
  c.admission_retries = 1;
  c.observe = true;
  return c;
}

struct GridRun {
  harness::GridResult result;
  std::string trace;
  std::uint64_t emitted = 0;
  std::uint64_t sampled = 0;
  std::size_t peak_live = 0;
};

GridRun run_churn(const harness::GridConfig& cfg) {
  harness::GridSimulation grid(cfg);
  StringSpanSink sink;
  grid.set_span_sink(&sink);
  GridRun out;
  out.result = grid.run();
  out.trace = sink.str();
  if (grid.tracer() != nullptr) {
    out.emitted = grid.tracer()->emitted_spans();
    out.sampled = grid.tracer()->sampled_requests();
    out.peak_live = grid.tracer()->peak_live_spans();
  }
  return out;
}

// The acceptance identity: every GridResult failure counter must be
// reconstructible from the span stream — per cause, terminal kFail span
// count == the counter.
TEST(GridTracing, SpanFailuresMatchResultCounters) {
  harness::GridSimulation grid(churn_config());
  const auto r = grid.run();
  ASSERT_NE(grid.tracer(), nullptr);
  const Tracer& t = *grid.tracer();

  EXPECT_GT(r.requests, 0u);
  EXPECT_EQ(t.open_spans(), 0u);  // every span closed by run()
  EXPECT_EQ(t.live_spans(), 0u);  // every chain drained by run()
  EXPECT_EQ(t.failures("discovery"), r.failures_discovery);
  EXPECT_EQ(t.failures("composition"), r.failures_composition);
  EXPECT_EQ(t.failures("selection"), r.failures_selection);
  EXPECT_EQ(t.failures("admission"), r.failures_admission);
  EXPECT_EQ(t.failures("departure"), r.failures_departure);
  // Successful requests close their running span kOk (completion or
  // horizon).
  EXPECT_EQ(t.count(Phase::kRunning, SpanStatus::kOk), r.successes);
  // Exercise enough of the space for the identity to mean something.
  EXPECT_GT(r.failures_departure, 0u);
}

// The same identity under aggressive sampling: failure counters and span
// tallies are exact whatever the stream keeps.
TEST(GridTracing, FailureCountersExactUnderSampling) {
  const GridRun full = run_churn(churn_config());
  auto cfg = churn_config();
  cfg.trace_sample = 7;
  const GridRun sampled = run_churn(cfg);

  EXPECT_EQ(sampled.result.requests, full.result.requests);
  EXPECT_EQ(sampled.result.successes, full.result.successes);
  EXPECT_EQ(sampled.result.failures_discovery, full.result.failures_discovery);
  EXPECT_EQ(sampled.result.failures_admission, full.result.failures_admission);
  EXPECT_EQ(sampled.result.failures_departure, full.result.failures_departure);
  // The stream thinned but stayed a subset of the unsampled stream.
  EXPECT_GT(sampled.emitted, 0u);
  EXPECT_LT(sampled.emitted, full.emitted);
  std::string_view rest = sampled.trace;
  while (!rest.empty()) {
    const auto nl = rest.find('\n');
    ASSERT_NE(nl, std::string_view::npos);
    const std::string line(rest.substr(0, nl + 1));
    EXPECT_NE(full.trace.find(line), std::string::npos) << line;
    rest.remove_prefix(nl + 1);
  }
}

TEST(GridTracing, RateOneTraceIsByteIdenticalToUnsampled) {
  auto zero = churn_config();
  zero.trace_sample = 0;
  auto one = churn_config();
  one.trace_sample = 1;
  EXPECT_EQ(run_churn(zero).trace, run_churn(one).trace);
}

TEST(GridTracing, ResidentSpansBoundedByActiveRequestsNotRunLength) {
  // The bounded-memory claim, observable: total spans (== emitted at rate 1)
  // grow with the horizon, but the high-water mark of *resident* spans is
  // O(active requests) and plateaus once the session population reaches
  // steady state. 4x the horizon must not come close to 2x the peak.
  const GridRun short_run = run_churn(churn_config());
  auto long_cfg = churn_config();
  long_cfg.horizon = sim::SimTime::minutes(80);
  const GridRun long_run = run_churn(long_cfg);
  EXPECT_GT(short_run.emitted, 0u);
  EXPECT_GT(long_run.emitted, 3 * short_run.emitted);
  EXPECT_LT(long_run.peak_live, 2 * short_run.peak_live);
}

TEST(GridTracing, FlightRecorderRetainsBoundedFailureChains) {
  auto cfg = churn_config();
  cfg.trace_sample = 100000;  // stream almost nothing
  cfg.flight_recorder = 4;
  harness::GridSimulation grid(cfg);
  StringSpanSink sink;
  grid.set_span_sink(&sink);
  const auto r = grid.run();
  ASSERT_NE(grid.flight(), nullptr);
  const FlightRecorder& fr = *grid.flight();
  // Plenty of failures happened; the recorder saw them all but holds at
  // most capacity chains per cause.
  EXPECT_GT(r.failures_departure + r.failures_admission, 4u);
  EXPECT_GT(fr.recorded(), 0u);
  for (const auto cause : fr.causes()) {
    EXPECT_LE(fr.chains(cause).size(), 4u) << cause;
    for (const auto* chain : fr.chains(cause)) {
      EXPECT_FALSE(chain->spans.empty());
    }
  }
  EXPECT_NE(fr.jsonl().find("\"cause\":\"departure\""), std::string::npos);
}

TEST(GridTracing, LiveSeriesRecordsWindowedRuntimeState) {
  auto cfg = churn_config();
  cfg.obs_window = sim::SimTime::minutes(2);
  harness::GridSimulation grid(cfg);
  StringMetricSink rows;
  grid.set_series_sink(&rows);
  grid.run();
  ASSERT_NE(grid.live_series(), nullptr);
  const LiveSeries& ls = *grid.live_series();
  for (const char* name : {"psi.window", "sim.queue_depth", "session.active",
                           "obs.live_spans"}) {
    ASSERT_NE(ls.series(name), nullptr) << name;
    EXPECT_GT(ls.series(name)->samples().size(), 3u) << name;
  }
  // 20-minute horizon, 2-minute window: polled series tick ~10 times.
  EXPECT_LE(ls.series("sim.queue_depth")->samples().size(), 11u);
  // The streamed rows match the replayed export.
  EXPECT_EQ(rows.str(), ls.csv());
  // Without the flag there is no recorder and no window event at all.
  harness::GridSimulation off(churn_config());
  EXPECT_EQ(off.live_series(), nullptr);
}

TEST(GridTracing, MetricsRegistryMatchesResult) {
  harness::GridSimulation grid(churn_config());
  StringSpanSink sink;  // spans_emitted only counts spans a sink received
  grid.set_span_sink(&sink);
  const auto r = grid.run();
  ASSERT_NE(grid.metrics(), nullptr);
  MetricsRegistry& m = *grid.metrics();
  EXPECT_EQ(m.counter("request.total").value, r.requests);
  EXPECT_EQ(m.counter("churn.departures").value, r.churn_departures);
  EXPECT_EQ(m.counter("churn.arrivals").value, r.churn_arrivals);
  EXPECT_EQ(m.counter("session.recovered").value,
            r.counters.get("sessions.recovered"));
  EXPECT_GT(m.histogram("aggregate.lookup_hops").count(), 0u);
  EXPECT_GT(m.histogram("probe.rtt_ms").count(), 0u);
  EXPECT_GT(m.gauge("sim.event_queue_high_water").value, 0.0);
  // The obs meta-instruments report the pipeline's own footprint.
  EXPECT_GT(m.gauge("obs.spans_live_high_water").value, 0.0);
  EXPECT_GT(m.counter("obs.spans_emitted").value, 0u);
  EXPECT_EQ(m.counter("obs.requests_sampled").value,
            m.counter("obs.requests_finished").value);  // rate 1: all kept
}

TEST(GridTracing, DisabledByDefaultAndResultUnchanged) {
  auto cfg = churn_config();
  cfg.observe = false;
  harness::GridSimulation off(cfg);
  EXPECT_EQ(off.tracer(), nullptr);
  EXPECT_EQ(off.metrics(), nullptr);
  const auto r_off = off.run();

  harness::GridSimulation on(churn_config());
  const auto r_on = on.run();
  // Observation must not perturb the simulation.
  EXPECT_EQ(r_off.requests, r_on.requests);
  EXPECT_EQ(r_off.successes, r_on.successes);
  EXPECT_EQ(r_off.failures_departure, r_on.failures_departure);
}

// Exported artifacts must be byte-identical regardless of how many
// ExperimentRunner threads computed them — with the whole pipeline on:
// sampling, flight recorder and live series.
TEST(GridTracing, ExportsDeterministicAcrossThreadCounts) {
  auto base = churn_config();
  base.horizon = sim::SimTime::minutes(10);
  base.trace_sample = 3;
  base.flight_recorder = 4;
  base.obs_window = sim::SimTime::minutes(2);
  std::vector<harness::ExperimentCell> cells;
  for (auto& cell : harness::algorithm_comparison(base)) {
    cells.push_back(std::move(cell));
  }
  const auto one = harness::ExperimentRunner(1).run(cells);
  const auto many = harness::ExperimentRunner(8).run(cells);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_FALSE(one[i].metrics_json.empty());
    EXPECT_FALSE(one[i].trace_jsonl.empty());
    EXPECT_FALSE(one[i].series_csv.empty());
    EXPECT_FALSE(one[i].flight_jsonl.empty());
    EXPECT_EQ(one[i].metrics_json, many[i].metrics_json) << one[i].label;
    EXPECT_EQ(one[i].trace_jsonl, many[i].trace_jsonl) << one[i].label;
    EXPECT_EQ(one[i].series_csv, many[i].series_csv) << one[i].label;
    EXPECT_EQ(one[i].flight_jsonl, many[i].flight_jsonl) << one[i].label;
  }
}

}  // namespace
}  // namespace qsa::obs
