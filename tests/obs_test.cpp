#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "qsa/harness/experiment.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/obs/export.hpp"
#include "qsa/obs/histogram.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/obs/trace.hpp"

namespace qsa::obs {
namespace {

// ------------------------------------------------------------ Histogram

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleSampleQuantilesAreTheSample) {
  Histogram h;
  h.observe(7.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 7.0);
  EXPECT_EQ(h.max(), 7.0);
  EXPECT_EQ(h.mean(), 7.0);
  // Clamped to [min, max], so any quantile of one sample is that sample.
  EXPECT_EQ(h.p50(), 7.0);
  EXPECT_EQ(h.p90(), 7.0);
  EXPECT_EQ(h.p99(), 7.0);
}

TEST(Histogram, BucketIndexEdges) {
  // Bucket 0: everything below 1, including negatives and NaN-safe input.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.5), 0u);
  EXPECT_EQ(Histogram::bucket_index(-100.0), 0u);
  // Bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(1.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(1.999), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(3.999), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 3u);
  // Overflow clamps to the last bucket.
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_lower(0), 0.0);
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kBuckets - 1)));
}

TEST(Histogram, BucketBoundsRoundTrip) {
  for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i)), i) << i;
  }
}

TEST(Histogram, QuantilesOrderedAndClamped) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p99(), h.max());
  // p50 of 1..100 should land around the middle power-of-two bucket.
  EXPECT_GT(h.p50(), 20.0);
  EXPECT_LT(h.p50(), 80.0);
}

TEST(Histogram, OverflowSampleLandsInLastBucket) {
  Histogram h;
  h.observe(1e300);
  EXPECT_EQ(h.buckets()[Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.max(), 1e300);
  EXPECT_EQ(h.p99(), 1e300);  // clamped to max, not the bucket bound
}

TEST(Histogram, MergeAddsCountsAndExtremes) {
  Histogram a, b;
  a.observe(2.0);
  b.observe(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 100.0);
  EXPECT_EQ(a.sum(), 102.0);
}

// --------------------------------------------------------------- Tracer

TEST(Tracer, SpanLifecycle) {
  Tracer t;
  const auto id = t.begin(1, Phase::kRunning, sim::SimTime::millis(10));
  t.annotate(id, "hosts", 3);
  EXPECT_EQ(t.open_spans(), 1u);
  t.end(id, sim::SimTime::millis(500), SpanStatus::kOk);
  EXPECT_EQ(t.open_spans(), 0u);
  ASSERT_EQ(t.spans().size(), 1u);
  const Span& s = t.spans()[0];
  EXPECT_EQ(s.request, 1u);
  EXPECT_EQ(s.phase, Phase::kRunning);
  EXPECT_EQ(s.status, SpanStatus::kOk);
  EXPECT_EQ(s.begin.as_millis(), 10);
  EXPECT_EQ(s.end.as_millis(), 500);
  ASSERT_EQ(s.attrs.size(), 1u);
  EXPECT_STREQ(s.attrs[0].key, "hosts");
  EXPECT_EQ(s.attrs[0].value, 3.0);
}

TEST(Tracer, EndIsIdempotent) {
  Tracer t;
  const auto id = t.begin(1, Phase::kAdmission, sim::SimTime::millis(0));
  t.end(id, sim::SimTime::millis(1), SpanStatus::kFail, "admission");
  t.end(id, sim::SimTime::millis(9), SpanStatus::kOk);  // ignored
  EXPECT_EQ(t.spans()[0].status, SpanStatus::kFail);
  EXPECT_EQ(t.spans()[0].end.as_millis(), 1);
  EXPECT_EQ(t.count(Phase::kAdmission, SpanStatus::kFail), 1u);
}

TEST(Tracer, EndOpenUnwindsNewestFirst) {
  Tracer t;
  const auto outer = t.begin(7, Phase::kRunning, sim::SimTime::millis(0));
  const auto inner = t.begin(7, Phase::kRecovery, sim::SimTime::millis(5));
  t.end_open(7, sim::SimTime::millis(9), SpanStatus::kAbort, "horizon");
  EXPECT_EQ(t.open_spans(), 0u);
  // Spans are stored in begin order; both closed with the given verdict.
  EXPECT_EQ(t.spans()[outer].phase, Phase::kRunning);
  EXPECT_EQ(t.spans()[inner].phase, Phase::kRecovery);
  EXPECT_EQ(t.spans()[outer].status, SpanStatus::kAbort);
  EXPECT_EQ(t.spans()[inner].status, SpanStatus::kAbort);
}

TEST(Tracer, FailuresExcludeRecoverySpans) {
  Tracer t;
  // A failed repair attempt inside a session that then fails: one recovery
  // kFail span plus the terminal running kFail span, same cause.
  t.instant(3, Phase::kRecovery, sim::SimTime::millis(50), SpanStatus::kFail,
            "departure");
  const auto run = t.begin(3, Phase::kRunning, sim::SimTime::millis(0));
  t.end(run, sim::SimTime::millis(60), SpanStatus::kFail, "departure");
  EXPECT_EQ(t.failures("departure"), 1u);  // the request failed once
  EXPECT_EQ(t.count(Phase::kRecovery, SpanStatus::kFail), 1u);
}

TEST(Tracer, RetryIsNotAFailure) {
  Tracer t;
  t.instant(4, Phase::kAdmission, sim::SimTime::millis(1), SpanStatus::kRetry,
            "admission");
  t.instant(4, Phase::kAdmission, sim::SimTime::millis(2), SpanStatus::kFail,
            "admission");
  EXPECT_EQ(t.failures("admission"), 1u);
  EXPECT_EQ(t.count(Phase::kAdmission, SpanStatus::kRetry), 1u);
}

// ------------------------------------------------------------ Exporters

TEST(Export, SpanJsonGolden) {
  Tracer t;
  const auto id = t.begin(12, Phase::kDiscovery, sim::SimTime::millis(100));
  // Annotated out of order: keys must come out sorted.
  t.annotate(id, "latency_ms", 42.5);
  t.annotate(id, "hops", 6);
  t.end(id, sim::SimTime::millis(100), SpanStatus::kFail, "discovery");
  EXPECT_EQ(to_json(t.spans()[0]),
            "{\"attrs\":{\"hops\":6,\"latency_ms\":42.5},"
            "\"begin_ms\":100,\"cause\":\"discovery\",\"end_ms\":100,"
            "\"phase\":\"discovery\",\"request\":12,\"status\":\"fail\"}");
}

TEST(Export, TraceJsonlOneLinePerSpan) {
  Tracer t;
  t.instant(1, Phase::kTeardown, sim::SimTime::millis(5), SpanStatus::kOk);
  t.instant(2, Phase::kTeardown, sim::SimTime::millis(6), SpanStatus::kOk);
  const std::string out = trace_jsonl(t);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Export, MetricsJsonGolden) {
  MetricsRegistry r;
  r.add("b.count", 2);
  r.add("a.count", 1);
  r.set("queue.depth", 3);
  r.observe("rtt_ms", 2.0);
  EXPECT_EQ(metrics_json(r),
            "{\"counters\":{\"a.count\":1,\"b.count\":2},"
            "\"gauges\":{\"queue.depth\":{\"high_water\":3,\"value\":3}},"
            "\"histograms\":{\"rtt_ms\":{\"buckets\":[[2,1]],\"count\":1,"
            "\"max\":2,\"mean\":2,\"min\":2,\"p50\":2,\"p90\":2,\"p99\":2,"
            "\"sum\":2}}}\n");
}

TEST(Export, MetricsCsvShape) {
  MetricsRegistry r;
  r.add("x", 5);
  r.observe("h", 1.5);
  const std::string out = metrics_csv(r);
  EXPECT_EQ(out.rfind("kind,name,field,value\n", 0), 0u);
  EXPECT_NE(out.find("counter,x,value,5\n"), std::string::npos);
  EXPECT_NE(out.find("histogram,h,count,1\n"), std::string::npos);
  EXPECT_NE(out.find("histogram,h,p99,1.5\n"), std::string::npos);
}

// ----------------------------------------------- End-to-end grid tracing

harness::GridConfig churn_config() {
  harness::GridConfig c;
  c.seed = 11;
  c.peers = 300;
  c.min_providers = 15;
  c.max_providers = 30;
  c.apps.applications = 6;
  c.requests.rate_per_min = 30;
  c.horizon = sim::SimTime::minutes(20);
  c.sample_period = sim::SimTime::minutes(2);
  c.churn.events_per_min = 6;
  c.enable_recovery = true;
  c.admission_retries = 1;
  c.observe = true;
  return c;
}

// The acceptance identity: every GridResult failure counter must be
// reconstructible from the span stream — per cause, terminal kFail span
// count == the counter.
TEST(GridTracing, SpanFailuresMatchResultCounters) {
  harness::GridSimulation grid(churn_config());
  const auto r = grid.run();
  ASSERT_NE(grid.tracer(), nullptr);
  const Tracer& t = *grid.tracer();

  EXPECT_GT(r.requests, 0u);
  EXPECT_EQ(t.open_spans(), 0u);  // every span closed by run()
  EXPECT_EQ(t.failures("discovery"), r.failures_discovery);
  EXPECT_EQ(t.failures("composition"), r.failures_composition);
  EXPECT_EQ(t.failures("selection"), r.failures_selection);
  EXPECT_EQ(t.failures("admission"), r.failures_admission);
  EXPECT_EQ(t.failures("departure"), r.failures_departure);
  // Successful requests close their running span kOk (completion or
  // horizon).
  EXPECT_EQ(t.count(Phase::kRunning, SpanStatus::kOk), r.successes);
  // Exercise enough of the space for the identity to mean something.
  EXPECT_GT(r.failures_departure, 0u);
}

TEST(GridTracing, MetricsRegistryMatchesResult) {
  harness::GridSimulation grid(churn_config());
  const auto r = grid.run();
  ASSERT_NE(grid.metrics(), nullptr);
  MetricsRegistry& m = *grid.metrics();
  EXPECT_EQ(m.counter("request.total").value, r.requests);
  EXPECT_EQ(m.counter("churn.departures").value, r.churn_departures);
  EXPECT_EQ(m.counter("churn.arrivals").value, r.churn_arrivals);
  EXPECT_EQ(m.counter("session.recovered").value,
            r.counters.get("sessions.recovered"));
  EXPECT_GT(m.histogram("aggregate.lookup_hops").count(), 0u);
  EXPECT_GT(m.histogram("probe.rtt_ms").count(), 0u);
  EXPECT_GT(m.gauge("sim.event_queue_high_water").value, 0.0);
}

TEST(GridTracing, DisabledByDefaultAndResultUnchanged) {
  auto cfg = churn_config();
  cfg.observe = false;
  harness::GridSimulation off(cfg);
  EXPECT_EQ(off.tracer(), nullptr);
  EXPECT_EQ(off.metrics(), nullptr);
  const auto r_off = off.run();

  harness::GridSimulation on(churn_config());
  const auto r_on = on.run();
  // Observation must not perturb the simulation.
  EXPECT_EQ(r_off.requests, r_on.requests);
  EXPECT_EQ(r_off.successes, r_on.successes);
  EXPECT_EQ(r_off.failures_departure, r_on.failures_departure);
}

// Exported artifacts must be byte-identical regardless of how many
// ExperimentRunner threads computed them.
TEST(GridTracing, ExportsDeterministicAcrossThreadCounts) {
  auto base = churn_config();
  base.horizon = sim::SimTime::minutes(10);
  std::vector<harness::ExperimentCell> cells;
  for (auto& cell : harness::algorithm_comparison(base)) {
    cells.push_back(std::move(cell));
  }
  const auto one = harness::ExperimentRunner(1).run(cells);
  const auto many = harness::ExperimentRunner(8).run(cells);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_FALSE(one[i].metrics_json.empty());
    EXPECT_FALSE(one[i].trace_jsonl.empty());
    EXPECT_EQ(one[i].metrics_json, many[i].metrics_json) << one[i].label;
    EXPECT_EQ(one[i].trace_jsonl, many[i].trace_jsonl) << one[i].label;
  }
}

}  // namespace
}  // namespace qsa::obs
