#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "qsa/qos/value.hpp"
#include "qsa/qos/vector.hpp"

namespace qsa::qos {
namespace {

// ------------------------------------------------------------- QosValue

TEST(QosValue, SingleAccessors) {
  const auto v = QosValue::single(42.5);
  EXPECT_EQ(v.kind(), QosValue::Kind::kSingle);
  EXPECT_FALSE(v.is_range());
  EXPECT_DOUBLE_EQ(v.lo(), 42.5);
  EXPECT_DOUBLE_EQ(v.hi(), 42.5);
  EXPECT_DOUBLE_EQ(v.representative(), 42.5);
}

TEST(QosValue, SymbolAccessors) {
  const auto v = QosValue::symbol(3);
  EXPECT_EQ(v.kind(), QosValue::Kind::kSymbol);
  EXPECT_EQ(v.sym(), 3u);
}

TEST(QosValue, RangeAccessors) {
  const auto v = QosValue::range(10, 30);
  EXPECT_TRUE(v.is_range());
  EXPECT_DOUBLE_EQ(v.lo(), 10);
  EXPECT_DOUBLE_EQ(v.hi(), 30);
  EXPECT_DOUBLE_EQ(v.representative(), 20);
}

TEST(QosValue, DegenerateRangeAllowed) {
  const auto v = QosValue::range(5, 5);
  EXPECT_DOUBLE_EQ(v.lo(), 5);
  EXPECT_DOUBLE_EQ(v.hi(), 5);
}

TEST(QosValue, Equality) {
  EXPECT_EQ(QosValue::single(1), QosValue::single(1));
  EXPECT_FALSE(QosValue::single(1) == QosValue::single(2));
  EXPECT_EQ(QosValue::symbol(2), QosValue::symbol(2));
  EXPECT_FALSE(QosValue::symbol(2) == QosValue::symbol(3));
  EXPECT_EQ(QosValue::range(1, 2), QosValue::range(1, 2));
  EXPECT_FALSE(QosValue::range(1, 2) == QosValue::range(1, 3));
  // Different kinds never compare equal, even with identical numerics.
  EXPECT_FALSE(QosValue::single(1) == QosValue::range(1, 1));
  EXPECT_FALSE(QosValue::single(0) == QosValue::symbol(0));
}

// Per-dimension satisfy (eq. 1 arms).

TEST(QosValueSatisfies, SymbolRequiresExactMatch) {
  EXPECT_TRUE(QosValue::satisfies(QosValue::symbol(1), QosValue::symbol(1)));
  EXPECT_FALSE(QosValue::satisfies(QosValue::symbol(2), QosValue::symbol(1)));
  EXPECT_FALSE(QosValue::satisfies(QosValue::single(1), QosValue::symbol(1)));
  EXPECT_FALSE(QosValue::satisfies(QosValue::range(0, 9), QosValue::symbol(1)));
}

TEST(QosValueSatisfies, SingleRequiresEquality) {
  EXPECT_TRUE(QosValue::satisfies(QosValue::single(5), QosValue::single(5)));
  EXPECT_FALSE(QosValue::satisfies(QosValue::single(6), QosValue::single(5)));
  // A range output cannot guarantee one exact value.
  EXPECT_FALSE(QosValue::satisfies(QosValue::range(5, 5), QosValue::single(5)));
  EXPECT_FALSE(QosValue::satisfies(QosValue::symbol(5), QosValue::single(5)));
}

TEST(QosValueSatisfies, RangeRequiresContainment) {
  const auto in = QosValue::range(10, 30);
  EXPECT_TRUE(QosValue::satisfies(QosValue::range(15, 25), in));
  EXPECT_TRUE(QosValue::satisfies(QosValue::range(10, 30), in));  // equal ok
  EXPECT_FALSE(QosValue::satisfies(QosValue::range(5, 25), in));
  EXPECT_FALSE(QosValue::satisfies(QosValue::range(15, 35), in));
  EXPECT_FALSE(QosValue::satisfies(QosValue::range(0, 40), in));
}

TEST(QosValueSatisfies, SingleOutputInsideRangeInput) {
  const auto in = QosValue::range(10, 30);
  EXPECT_TRUE(QosValue::satisfies(QosValue::single(20), in));
  EXPECT_TRUE(QosValue::satisfies(QosValue::single(10), in));
  EXPECT_TRUE(QosValue::satisfies(QosValue::single(30), in));
  EXPECT_FALSE(QosValue::satisfies(QosValue::single(31), in));
  EXPECT_FALSE(QosValue::satisfies(QosValue::symbol(2), in));
}

TEST(QosValue, StreamFormatting) {
  std::ostringstream os;
  os << QosValue::single(3) << ' ' << QosValue::symbol(2) << ' '
     << QosValue::range(1, 4);
  EXPECT_EQ(os.str(), "3 sym:2 [1,4]");
}

// ------------------------------------------------------------ QosVector

TEST(QosVector, EmptyByDefault) {
  QosVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.dim(), 0u);
  EXPECT_FALSE(v.get(0).has_value());
}

TEST(QosVector, SetAndGet) {
  QosVector v;
  v.set(3, QosValue::single(7));
  v.set(1, QosValue::symbol(2));
  EXPECT_EQ(v.dim(), 2u);
  ASSERT_TRUE(v.get(3).has_value());
  EXPECT_EQ(*v.get(3), QosValue::single(7));
  ASSERT_TRUE(v.get(1).has_value());
  EXPECT_EQ(*v.get(1), QosValue::symbol(2));
  EXPECT_FALSE(v.get(2).has_value());
}

TEST(QosVector, SetReplacesExisting) {
  QosVector v;
  v.set(1, QosValue::single(1));
  v.set(1, QosValue::single(2));
  EXPECT_EQ(v.dim(), 1u);
  EXPECT_EQ(*v.get(1), QosValue::single(2));
}

TEST(QosVector, KeepsDimsSortedByParam) {
  QosVector v;
  v.set(5, QosValue::single(1));
  v.set(2, QosValue::single(1));
  v.set(9, QosValue::single(1));
  v.set(1, QosValue::single(1));
  std::vector<ParamId> order;
  for (const auto& d : v) order.push_back(d.param);
  EXPECT_EQ(order, (std::vector<ParamId>{1, 2, 5, 9}));
}

TEST(QosVector, EqualityIsOrderInsensitive) {
  QosVector a, b;
  a.set(1, QosValue::single(1));
  a.set(2, QosValue::range(0, 5));
  b.set(2, QosValue::range(0, 5));
  b.set(1, QosValue::single(1));
  EXPECT_EQ(a, b);
  b.set(2, QosValue::range(0, 6));
  EXPECT_FALSE(a == b);
}

TEST(QosVector, InequalityOnDifferentDims) {
  QosVector a, b;
  a.set(1, QosValue::single(1));
  EXPECT_FALSE(a == b);
  b.set(2, QosValue::single(1));
  EXPECT_FALSE(a == b);
}

TEST(QosVector, ToStringContainsDims) {
  QosVector v;
  v.set(1, QosValue::range(2, 3));
  const auto s = v.to_string();
  EXPECT_NE(s.find("p1"), std::string::npos);
  EXPECT_NE(s.find("[2,3]"), std::string::npos);
}

TEST(QosVector, HoldsMaxDims) {
  QosVector v;
  for (ParamId p = 0; p < kMaxQosDims; ++p) {
    v.set(p, QosValue::single(static_cast<double>(p)));
  }
  EXPECT_EQ(v.dim(), kMaxQosDims);
  for (ParamId p = 0; p < kMaxQosDims; ++p) {
    EXPECT_EQ(*v.get(p), QosValue::single(static_cast<double>(p)));
  }
}

}  // namespace
}  // namespace qsa::qos
