// Reference-model fuzzing: long random operation sequences where every qsa
// data structure is shadowed by a trivially-correct STL model and compared
// step by step.
#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <vector>

#include "qsa/probe/neighbor_table.hpp"
#include "qsa/qos/vector.hpp"
#include "qsa/sim/event_queue.hpp"
#include "qsa/util/rng.hpp"
#include "qsa/util/small_vec.hpp"

namespace qsa {
namespace {

// ---------------------------------------------------------- EventQueue

class EventQueueModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModel, MatchesSortedReference) {
  util::Rng rng(util::derive_seed(GetParam(), "eq-model", 0));
  sim::EventQueue queue;
  // Reference: ordered multimap (time, seq) -> payload; mimic cancellation.
  struct Ref {
    std::int64_t time;
    std::uint64_t seq;
    int payload;
    bool cancelled = false;
  };
  std::vector<Ref> ref;
  std::vector<std::pair<sim::EventHandle, std::size_t>> handles;
  std::uint64_t seq = 0;
  std::int64_t now = 0;
  int fired_payload = -1;

  for (int step = 0; step < 3000; ++step) {
    const auto action = rng.index(5);
    if (action <= 2) {  // schedule (most common)
      const std::int64_t at = now + static_cast<std::int64_t>(rng.index(50));
      const int payload = static_cast<int>(seq);
      auto h = queue.schedule(sim::SimTime::millis(at),
                              [&fired_payload, payload] {
                                fired_payload = payload;
                              });
      ref.push_back(Ref{at, seq, payload});
      handles.emplace_back(h, ref.size() - 1);
      ++seq;
    } else if (action == 3 && !handles.empty()) {  // cancel a random handle
      const std::size_t i = rng.index(handles.size());
      queue.cancel(handles[i].first);
      ref[handles[i].second].cancelled = true;  // may already be fired: ok
    } else if (!queue.empty()) {  // pop
      auto fired = queue.pop();
      fired_payload = -1;
      fired.action();
      now = fired.time.as_millis();
      // The reference pick: earliest (time, seq) among live entries.
      std::size_t best = ref.size();
      for (std::size_t i = 0; i < ref.size(); ++i) {
        if (ref[i].cancelled) continue;
        if (best == ref.size() || ref[i].time < ref[best].time ||
            (ref[i].time == ref[best].time && ref[i].seq < ref[best].seq)) {
          best = i;
        }
      }
      ASSERT_LT(best, ref.size());
      EXPECT_EQ(fired.time.as_millis(), ref[best].time) << "step " << step;
      EXPECT_EQ(fired_payload, ref[best].payload) << "step " << step;
      ref[best].cancelled = true;  // consumed
    }
    // Size agreement.
    std::size_t live = 0;
    for (const auto& r : ref) live += !r.cancelled;
    ASSERT_EQ(queue.size(), live) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModel, ::testing::Values(1, 2, 3));

// ----------------------------------------------------------- QosVector

class QosVectorModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QosVectorModel, MatchesMapReference) {
  util::Rng rng(util::derive_seed(GetParam(), "qv-model", 0));
  qos::QosVector vec;
  std::map<qos::ParamId, qos::QosValue> ref;
  for (int step = 0; step < 500; ++step) {
    const auto param = static_cast<qos::ParamId>(rng.index(qos::kMaxQosDims));
    const auto value = rng.bernoulli(0.5)
                           ? qos::QosValue::single(rng.uniform(0, 10))
                           : qos::QosValue::range(rng.uniform(0, 5),
                                                  rng.uniform(5, 10));
    vec.set(param, value);
    ref.insert_or_assign(param, value);

    ASSERT_EQ(vec.dim(), ref.size());
    // Same content, same (sorted) order.
    auto it = ref.begin();
    for (const auto& d : vec) {
      ASSERT_NE(it, ref.end());
      EXPECT_EQ(d.param, it->first);
      EXPECT_EQ(d.value, it->second);
      ++it;
    }
    // Point lookups agree.
    const auto probe_param =
        static_cast<qos::ParamId>(rng.index(qos::kMaxQosDims));
    const auto got = vec.get(probe_param);
    const auto rit = ref.find(probe_param);
    ASSERT_EQ(got.has_value(), rit != ref.end());
    if (got) {
      EXPECT_EQ(*got, rit->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QosVectorModel, ::testing::Values(1, 2, 3));

// ------------------------------------------------------------ SmallVec

class SmallVecModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmallVecModel, MatchesVectorReference) {
  util::Rng rng(util::derive_seed(GetParam(), "sv-model", 0));
  util::SmallVec<int, 8> sv;
  std::vector<int> ref;
  for (int step = 0; step < 2000; ++step) {
    switch (rng.index(4)) {
      case 0:
        if (sv.size() < decltype(sv)::capacity()) {
          const int v = static_cast<int>(rng.uniform_int(-100, 100));
          sv.push_back(v);
          ref.push_back(v);
        }
        break;
      case 1:
        if (!sv.empty()) {
          sv.pop_back();
          ref.pop_back();
        }
        break;
      case 2: {
        const auto n = rng.index(decltype(sv)::capacity() + 1);
        const int fill = static_cast<int>(rng.uniform_int(0, 9));
        sv.resize(n, fill);
        ref.resize(n, fill);
        break;
      }
      default:
        if (!sv.empty()) {
          const std::size_t i = rng.index(sv.size());
          const int v = static_cast<int>(rng.uniform_int(-100, 100));
          sv[i] = v;
          ref[i] = v;
        }
        break;
    }
    ASSERT_EQ(sv.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(sv[i], ref[i]) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallVecModel, ::testing::Values(1, 2, 3));

// -------------------------------------------------------- NeighborTable

class NeighborTableModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NeighborTableModel, InvariantsUnderRandomOps) {
  util::Rng rng(util::derive_seed(GetParam(), "nt-model", 0));
  constexpr std::size_t kBudget = 12;
  probe::NeighborTable table(kBudget);
  sim::SimTime now = sim::SimTime::zero();
  for (int step = 0; step < 2000; ++step) {
    now += sim::SimTime::seconds(rng.uniform(0, 30));
    const auto peer = static_cast<net::PeerId>(rng.index(40));
    switch (rng.index(4)) {
      case 0:
      case 1: {
        const auto hop = static_cast<std::uint8_t>(1 + rng.index(4));
        const auto kind = rng.bernoulli(0.5) ? probe::NeighborKind::kDirect
                                             : probe::NeighborKind::kIndirect;
        const bool added =
            table.add(peer, hop, kind, now, sim::SimTime::minutes(30));
        if (added) {
          EXPECT_TRUE(table.knows(peer, now));
        }
        break;
      }
      case 2:
        table.erase(peer);
        EXPECT_FALSE(table.knows(peer, now));
        break;
      default:
        table.purge(now);
        break;
    }
    // Invariants: never over budget; knows() == unexpired entry.
    ASSERT_LE(table.size(), kBudget) << "step " << step;
    for (const auto& [p, entry] : table.entries()) {
      EXPECT_EQ(table.knows(p, now), entry.expires > now);
      EXPECT_GE(entry.hop, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NeighborTableModel,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace qsa
