// The parallel-simulation guarantees, pinned: (1) K-invariance — the
// sharded message-plane workload produces byte-identical digests for every
// shard count, across overlays, seeds, fault injection and the coordinate
// partitioner; (2) lookahead correctness — shrinking the conservative
// window below the true delay floor changes the epoch count but never the
// result, and overshooting the floor is a precondition violation;
// (3) mailbox integrity — overflow spills preserve per-edge FIFO and the
// digest; (4) the SpscRing primitive itself. The K>1 cells run real pool
// workers, so this whole file doubles as the TSan target for the runtime.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "qsa/harness/grid.hpp"
#include "qsa/harness/shard_world.hpp"
#include "qsa/obs/registry.hpp"
#include "qsa/sim/shard_runtime.hpp"
#include "qsa/sim/time.hpp"
#include "qsa/util/spsc_ring.hpp"

namespace {

using namespace qsa;
using harness::ShardWorld;
using harness::ShardWorldConfig;
using harness::ShardWorldResult;

ShardWorldConfig small_cell() {
  ShardWorldConfig cfg;
  cfg.peers = 96;
  cfg.horizon = sim::SimTime::seconds(8);
  cfg.tick_period = sim::SimTime::millis(250);
  return cfg;
}

ShardWorldResult run_cell(ShardWorldConfig cfg, std::size_t shards,
                          obs::MetricsRegistry* metrics = nullptr) {
  cfg.shards = shards;
  ShardWorld world(cfg);
  return world.run(metrics);
}

// --- K-invariance ---------------------------------------------------------

TEST(ShardWorldIdentity, DigestIdenticalForEveryShardCount) {
  for (const auto overlay : {harness::OverlayKind::kChord,
                             harness::OverlayKind::kCan,
                             harness::OverlayKind::kPastry}) {
    for (const bool faults : {false, true}) {
      ShardWorldConfig cfg = small_cell();
      cfg.overlay = overlay;
      cfg.faults = faults;
      const ShardWorldResult base = run_cell(cfg, 1);
      EXPECT_GT(base.events, 0u);
      for (const std::size_t k : {std::size_t{2}, std::size_t{4},
                                  std::size_t{7}}) {
        const ShardWorldResult r = run_cell(cfg, k);
        EXPECT_EQ(r.digest, base.digest)
            << "overlay=" << static_cast<int>(overlay)
            << " faults=" << faults << " K=" << k;
        EXPECT_EQ(r.events, base.events);
        EXPECT_EQ(r.probes_sent, base.probes_sent);
        EXPECT_EQ(r.probes_acked, base.probes_acked);
        EXPECT_EQ(r.drops, base.drops);
        EXPECT_EQ(r.lookups, base.lookups);
        EXPECT_EQ(r.hops, base.hops);
        EXPECT_EQ(r.grants, base.grants);
        EXPECT_EQ(r.denials, base.denials);
        EXPECT_DOUBLE_EQ(r.score_sum, base.score_sum);
      }
    }
  }
}

TEST(ShardWorldIdentity, DigestIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {7ull, 1234ull}) {
    ShardWorldConfig cfg = small_cell();
    cfg.seed = seed;
    const ShardWorldResult base = run_cell(cfg, 1);
    const ShardWorldResult par = run_cell(cfg, 4);
    EXPECT_EQ(par.digest, base.digest) << "seed=" << seed;
  }
}

TEST(ShardWorldIdentity, DifferentSeedsDiffer) {
  ShardWorldConfig cfg = small_cell();
  const ShardWorldResult a = run_cell(cfg, 2);
  cfg.seed ^= 0x9E3779B97F4A7C15ull;
  const ShardWorldResult b = run_cell(cfg, 2);
  EXPECT_NE(a.digest, b.digest);
}

TEST(ShardWorldIdentity, CoordsPartitionerIsKInvariantToo) {
  ShardWorldConfig cfg = small_cell();
  cfg.net_model = net::NetModelKind::kCoords;
  const ShardWorldResult base = run_cell(cfg, 1);
  const ShardWorldResult par = run_cell(cfg, 4);
  EXPECT_EQ(par.digest, base.digest);

  // Coordinate stripes: shard indices are monotone in the peers' x
  // coordinate, so every shard owns a contiguous stripe — verify the map
  // uses all shards on a population this size.
  cfg.shards = 4;
  ShardWorld world(cfg);
  std::vector<std::uint32_t> per_shard(4, 0);
  for (const std::uint16_t s : world.shard_map()) {
    ASSERT_LT(s, 4u);
    ++per_shard[s];
  }
  for (const std::uint32_t n : per_shard) EXPECT_GT(n, 0u);
}

// --- runtime stats --------------------------------------------------------

TEST(ShardRuntimeStats, EpochsAndPerShardEventsAreConsistent) {
  ShardWorldConfig cfg = small_cell();
  const ShardWorldResult r = run_cell(cfg, 4);
  EXPECT_GT(r.runtime.epochs, 0u);
  EXPECT_GT(r.runtime.cross_shard, 0u);
  EXPECT_EQ(r.runtime.spilled, 0u);  // default mailboxes never overflow here
  ASSERT_EQ(r.runtime.shard_events.size(), 4u);
  const std::uint64_t sum =
      std::accumulate(r.runtime.shard_events.begin(),
                      r.runtime.shard_events.end(), std::uint64_t{0});
  EXPECT_EQ(sum, r.runtime.events);
  EXPECT_EQ(r.events, r.runtime.events);

  // K=1 runs inline: no barriers, no mailboxes.
  const ShardWorldResult solo = run_cell(cfg, 1);
  EXPECT_EQ(solo.runtime.epochs, 0u);
  EXPECT_EQ(solo.runtime.cross_shard, 0u);
}

TEST(ShardRuntimeStats, MetricsExportRegistersTheShardInstruments) {
  obs::MetricsRegistry metrics;
  ShardWorldConfig cfg = small_cell();
  const ShardWorldResult r = run_cell(cfg, 2, &metrics);
  ASSERT_TRUE(metrics.counters().contains("sim.barrier_epochs"));
  EXPECT_EQ(metrics.counter("sim.barrier_epochs").value, r.runtime.epochs);
  ASSERT_TRUE(metrics.counters().contains("sim.cross_shard_msgs"));
  EXPECT_EQ(metrics.counter("sim.cross_shard_msgs").value,
            r.runtime.cross_shard);
  EXPECT_TRUE(metrics.counters().contains("sim.mailbox_spills"));
  EXPECT_TRUE(metrics.gauges().contains("sim.shard_idle_ms"));
  EXPECT_TRUE(metrics.gauges().contains("sim.mailbox_high_water"));
  for (const std::size_t s : {std::size_t{0}, std::size_t{1}}) {
    const std::string name = "sim.shard_events." + std::to_string(s);
    ASSERT_TRUE(metrics.counters().contains(name)) << name;
    EXPECT_EQ(metrics.counter(name).value, r.runtime.shard_events[s]);
  }
}

// --- lookahead correctness ------------------------------------------------

TEST(ShardLookahead, DerivedFromDelayFloorAndNetworkMinimum) {
  ShardWorldConfig cfg = small_cell();
  {
    ShardWorld world(cfg);
    EXPECT_EQ(world.lookahead(), net::NetworkModel::min_latency());
  }
  cfg.min_delay = sim::SimTime::millis(20);
  {
    ShardWorld world(cfg);
    EXPECT_EQ(world.lookahead(), sim::SimTime::millis(20));
  }
}

TEST(ShardLookahead, ShrinkingTheWindowChangesEpochsNotTheResult) {
  // With a 20 ms true delay floor, the derived 20 ms lookahead and a
  // deliberately narrowed 1 ms window must agree bit-for-bit — a smaller-
  // than-necessary lookahead is merely conservative. The narrow window
  // pays for it in barrier count.
  ShardWorldConfig cfg = small_cell();
  cfg.min_delay = sim::SimTime::millis(20);
  const ShardWorldResult wide = run_cell(cfg, 4);
  cfg.lookahead_override = sim::SimTime::millis(1);
  const ShardWorldResult narrow = run_cell(cfg, 4);
  EXPECT_EQ(narrow.digest, wide.digest);
  EXPECT_EQ(narrow.events, wide.events);
  EXPECT_GT(narrow.runtime.epochs, wide.runtime.epochs);
}

TEST(ShardLookaheadDeathTest, OverridingBeyondTheDelayFloorAborts) {
  // Pool workers may be alive from earlier tests; re-exec the binary for
  // the death assertion instead of forking a threaded process.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ShardWorldConfig cfg = small_cell();
  cfg.shards = 2;
  cfg.lookahead_override = sim::SimTime::millis(50);  // floor is 1 ms
  EXPECT_DEATH({ ShardWorld world(cfg); }, "precondition");
}

// --- mailbox overflow -----------------------------------------------------

TEST(ShardMailbox, OverflowSpillsPreserveFifoAndDigest) {
  ShardWorldConfig cfg = small_cell();
  const ShardWorldResult roomy = run_cell(cfg, 4);
  cfg.mailbox_capacity = 1;  // every burst overflows into the spill path
  const ShardWorldResult tiny = run_cell(cfg, 4);
  EXPECT_GT(tiny.runtime.spilled, 0u);
  // The spill path re-injects in edge_seq order (asserted inside the
  // runtime), so the merged order — and the digest — cannot move.
  EXPECT_EQ(tiny.digest, roomy.digest);
  EXPECT_EQ(tiny.events, roomy.events);
}

// --- grid bootstrap on the pool -------------------------------------------

TEST(GridShardedBootstrap, ParallelStabilizeIsByteIdentical) {
  // Above ~2k ring nodes the chord overlay actually fans the finger rebuild
  // out over the pool (below that it falls back to the serial walk), so this
  // population exercises the parallel path for real and must change nothing.
  const auto run = [](std::size_t shards) {
    harness::GridConfig cfg;
    cfg.peers = 2500;
    cfg.min_providers = 10;
    cfg.max_providers = 20;
    cfg.apps.applications = 5;
    cfg.requests.rate_per_min = 30;
    cfg.churn.events_per_min = 6;
    cfg.horizon = sim::SimTime::minutes(2);
    cfg.shards = shards;
    harness::GridSimulation grid(cfg);
    return grid.run();
  };
  const harness::GridResult serial = run(1);
  const harness::GridResult pooled = run(4);
  EXPECT_EQ(pooled.requests, serial.requests);
  EXPECT_EQ(pooled.successes, serial.successes);
  EXPECT_EQ(pooled.failures_discovery, serial.failures_discovery);
  EXPECT_EQ(pooled.failures_admission, serial.failures_admission);
  EXPECT_EQ(pooled.lookup_hops, serial.lookup_hops);
  EXPECT_EQ(pooled.setup_latency_ms, serial.setup_latency_ms);
  EXPECT_EQ(pooled.notification_messages, serial.notification_messages);
  EXPECT_DOUBLE_EQ(pooled.avg_composition_cost, serial.avg_composition_cost);
  const auto a = serial.counters.all();
  const auto b = pooled.counters.all();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second) << "counter " << a[i].first;
  }
}

// --- SpscRing -------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  util::SpscRing<int> r3(3);
  EXPECT_EQ(r3.capacity(), 4u);
  util::SpscRing<int> r4(4);
  EXPECT_EQ(r4.capacity(), 4u);
  util::SpscRing<int> r1(1);
  EXPECT_EQ(r1.capacity(), 1u);
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  util::SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));  // full: rejected, not overwritten
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // slot freed by the pop
  for (const int want : {1, 2, 3, 4}) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FifoAcrossManyWraps) {
  util::SpscRing<std::uint32_t> ring(8);
  std::uint32_t pushed = 0;
  std::uint32_t popped = 0;
  // Interleave pushes and pops so the indices wrap the 8-slot buffer many
  // times; order must hold across every wrap.
  while (popped < 10'000) {
    while (pushed < popped + 5 && ring.try_push(pushed)) ++pushed;
    std::uint32_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, popped);
    ++popped;
  }
}

TEST(SpscRingDeathTest, ConcurrentProducersTripTheContractCheck) {
  // Pool workers may be alive from earlier tests; re-exec the binary for
  // the death assertion instead of forking a threaded process.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  util::SpscRing<int> ring(4);
  ring.claim_producer_for_test();
  EXPECT_DEATH((void)ring.try_push(1), "precondition");
}

}  // namespace
