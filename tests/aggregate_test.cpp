// Algorithm-level properties: every plan an aggregation algorithm accepts
// must actually be valid — QoS-consistent instances in abstract-path order,
// hosted on registered providers. Swept across QSA, random, and fixed on a
// live grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "qsa/harness/grid.hpp"
#include "qsa/qos/satisfy.hpp"
#include "qsa/util/rng.hpp"
#include "qsa/workload/apps.hpp"

namespace qsa::harness {
namespace {

GridConfig algo_config(AlgorithmKind kind) {
  GridConfig c;
  c.seed = 77;
  c.peers = 250;
  c.min_providers = 12;
  c.max_providers = 24;
  c.apps.applications = 6;
  c.algorithm = kind;
  return c;
}

class PlanValidity : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(PlanValidity, AcceptedPlansAreWellFormed) {
  GridSimulation grid(algo_config(GetParam()));
  util::Rng rng(3);
  int accepted = 0;
  for (int i = 0; i < 120; ++i) {
    const auto& app = grid.apps().apps()[rng.index(grid.apps().apps().size())];
    core::ServiceRequest req;
    req.requester = grid.peers().alive_ids()[rng.index(grid.peers().alive_count())];
    req.abstract_path = app.path;
    req.requirement = workload::requirement_for(
        static_cast<workload::QosLevel>(rng.index(3)), grid.universe());
    req.session_duration = sim::SimTime::minutes(rng.uniform(1, 60));

    const auto plan = grid.submit_request(req);
    if (!plan.ok()) {
      EXPECT_TRUE(plan.instances.empty() || plan.hosts.empty());
      continue;
    }
    ++accepted;
    ASSERT_EQ(plan.instances.size(), app.path.size());
    ASSERT_EQ(plan.hosts.size(), app.path.size());
    for (std::size_t l = 0; l < plan.instances.size(); ++l) {
      const auto& inst = grid.catalog().instance(plan.instances[l]);
      // Instance implements the l-th abstract service.
      EXPECT_EQ(inst.service, app.path[l]);
      // Host is a registered provider of the instance.
      const auto providers = grid.placement().providers(plan.instances[l]);
      EXPECT_TRUE(std::find(providers.begin(), providers.end(),
                            plan.hosts[l]) != providers.end());
      // QoS consistency along the chain (eq. 1).
      if (l + 1 < plan.instances.size()) {
        EXPECT_TRUE(qos::satisfies(
            inst.qout, grid.catalog().instance(plan.instances[l + 1]).qin));
      } else {
        EXPECT_TRUE(qos::satisfies(inst.qout, req.requirement));
      }
    }
    EXPECT_GT(plan.composition_cost, 0.0);
  }
  EXPECT_GT(accepted, 60);  // the grid is healthy, most requests plan fine
}

INSTANTIATE_TEST_SUITE_P(Algorithms, PlanValidity,
                         ::testing::Values(AlgorithmKind::kQsa,
                                           AlgorithmKind::kRandom,
                                           AlgorithmKind::kFixed),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(FixedAlgorithm, IdenticalRequestsGetIdenticalPlans) {
  GridSimulation grid(algo_config(AlgorithmKind::kFixed));
  const auto& app = grid.apps().apps()[0];
  core::ServiceRequest req;
  req.requester = grid.peers().alive_ids()[0];
  req.abstract_path = app.path;
  req.requirement =
      workload::requirement_for(workload::QosLevel::kLow, grid.universe());
  req.session_duration = sim::SimTime::minutes(5);
  const auto a = grid.submit_request(req);
  const auto b = grid.submit_request(req);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.instances, b.instances);
  EXPECT_EQ(a.hosts, b.hosts);  // dedicated servers
}

TEST(RandomAlgorithm, SpreadsHostsAcrossProviders) {
  GridSimulation grid(algo_config(AlgorithmKind::kRandom));
  const auto& app = grid.apps().apps()[0];
  core::ServiceRequest req;
  req.requester = grid.peers().alive_ids()[0];
  req.abstract_path = app.path;
  req.requirement =
      workload::requirement_for(workload::QosLevel::kLow, grid.universe());
  req.session_duration = sim::SimTime::minutes(5);
  std::map<net::PeerId, int> sink_hosts;
  for (int i = 0; i < 60; ++i) {
    const auto plan = grid.submit_request(req);
    ASSERT_TRUE(plan.ok());
    ++sink_hosts[plan.hosts.back()];
  }
  EXPECT_GT(sink_hosts.size(), 4u);
}

TEST(QsaAlgorithm, ComposesCheaperPathsThanRandom) {
  GridSimulation qsa_grid(algo_config(AlgorithmKind::kQsa));
  GridSimulation rnd_grid(algo_config(AlgorithmKind::kRandom));
  util::Rng rng(5);
  double qsa_cost = 0, rnd_cost = 0;
  int n = 0;
  for (int i = 0; i < 60; ++i) {
    const auto& app =
        qsa_grid.apps().apps()[rng.index(qsa_grid.apps().apps().size())];
    core::ServiceRequest req;
    req.requester = qsa_grid.peers().alive_ids()[0];
    req.abstract_path = app.path;
    req.requirement =
        workload::requirement_for(workload::QosLevel::kLow, qsa_grid.universe());
    req.session_duration = sim::SimTime::minutes(5);
    const auto a = qsa_grid.submit_request(req);
    const auto b = rnd_grid.submit_request(req);
    if (a.ok() && b.ok()) {
      qsa_cost += a.composition_cost;
      rnd_cost += b.composition_cost;
      // Per request, QCS can never be more expensive.
      EXPECT_LE(a.composition_cost, b.composition_cost + 1e-9);
      ++n;
    }
  }
  ASSERT_GT(n, 30);
  EXPECT_LT(qsa_cost, rnd_cost);
}

// Admission-retry support: every algorithm must honor the request's
// excluded-hosts list (the blamed peers of failed reservations) — QSA's
// selection, random's uniform pick, and fixed's dedicated host alike.
class ExclusionHonored : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(ExclusionHonored, ReplansAvoidExcludedHosts) {
  GridSimulation grid(algo_config(GetParam()));
  const auto& app = grid.apps().apps()[0];
  core::ServiceRequest req;
  req.requester = grid.peers().alive_ids()[0];
  req.abstract_path = app.path;
  req.requirement =
      workload::requirement_for(workload::QosLevel::kLow, grid.universe());
  req.session_duration = sim::SimTime::minutes(5);
  const auto first = grid.submit_request(req);
  ASSERT_TRUE(first.ok());
  // Exclude every host the first plan chose; the second plan must avoid
  // them all (this is exactly what an admission retry does with the blamed
  // hosts).
  req.excluded_hosts = first.hosts;
  const auto second = grid.submit_request(req);
  ASSERT_TRUE(second.ok());
  for (const auto h : second.hosts) {
    EXPECT_TRUE(std::find(first.hosts.begin(), first.hosts.end(), h) ==
                first.hosts.end());
  }
}

TEST_P(ExclusionHonored, SelectionFailsWhenEverythingExcluded) {
  GridSimulation grid(algo_config(GetParam()));
  const auto& app = grid.apps().apps()[0];
  core::ServiceRequest req;
  req.requester = grid.peers().alive_ids()[0];
  req.abstract_path = app.path;
  req.requirement =
      workload::requirement_for(workload::QosLevel::kLow, grid.universe());
  req.session_duration = sim::SimTime::minutes(5);
  // Exclude every provider of every instance of the first service.
  for (const auto inst : grid.catalog().instances_of(app.path[0])) {
    const auto providers = grid.placement().providers(inst);
    req.excluded_hosts.insert(req.excluded_hosts.end(), providers.begin(),
                              providers.end());
  }
  const auto plan = grid.submit_request(req);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.failure, core::FailureCause::kSelection);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ExclusionHonored,
                         ::testing::Values(AlgorithmKind::kQsa,
                                           AlgorithmKind::kRandom,
                                           AlgorithmKind::kFixed),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(FixedAlgorithm, ExcludedDedicatedHostFailsOverToNextLowestId) {
  GridSimulation grid(algo_config(AlgorithmKind::kFixed));
  const auto& app = grid.apps().apps()[0];
  core::ServiceRequest req;
  req.requester = grid.peers().alive_ids()[0];
  req.abstract_path = app.path;
  req.requirement =
      workload::requirement_for(workload::QosLevel::kLow, grid.universe());
  req.session_duration = sim::SimTime::minutes(5);
  const auto first = grid.submit_request(req);
  ASSERT_TRUE(first.ok());
  req.excluded_hosts = {first.hosts[0]};
  const auto second = grid.submit_request(req);
  ASSERT_TRUE(second.ok());
  // Same dedicated path, but hop 0 fails over to the next-lowest id among
  // the surviving providers.
  EXPECT_EQ(second.instances, first.instances);
  EXPECT_NE(second.hosts[0], first.hosts[0]);
  const auto providers = grid.placement().providers(first.instances[0]);
  net::PeerId expect = net::kNoPeer;
  for (const auto p : providers) {
    if (p != first.hosts[0] && (expect == net::kNoPeer || p < expect)) {
      expect = p;
    }
  }
  EXPECT_EQ(second.hosts[0], expect);
}

TEST(QsaAlgorithm, SelectionFailsGracefullyWithNoProviders) {
  GridSimulation grid(algo_config(AlgorithmKind::kQsa));
  const auto& app = grid.apps().apps()[0];
  // Strip every provider of one service's instances.
  for (const auto inst : grid.catalog().instances_of(app.path[0])) {
    const auto providers = grid.placement().providers(inst);
    const std::vector<net::PeerId> copy(providers.begin(), providers.end());
    for (const auto p : copy) grid.placement().remove_provider(inst, p);
  }
  core::ServiceRequest req;
  req.requester = grid.peers().alive_ids()[0];
  req.abstract_path = app.path;
  req.requirement =
      workload::requirement_for(workload::QosLevel::kLow, grid.universe());
  req.session_duration = sim::SimTime::minutes(5);
  const auto plan = grid.submit_request(req);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.failure, core::FailureCause::kSelection);
}

TEST(QsaAlgorithm, DiscoveryFailureWhenDirectoryEmpty) {
  auto cfg = algo_config(AlgorithmKind::kQsa);
  GridSimulation grid(cfg);
  core::ServiceRequest req;
  req.requester = grid.peers().alive_ids()[0];
  // A service id that exists but was never published cannot be discovered —
  // simulate by asking for a fresh service with no instances.
  const auto ghost = grid.catalog().add_service("ghost");
  req.abstract_path = {ghost};
  req.requirement =
      workload::requirement_for(workload::QosLevel::kLow, grid.universe());
  req.session_duration = sim::SimTime::minutes(5);
  const auto plan = grid.submit_request(req);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.failure, core::FailureCause::kDiscovery);
}

}  // namespace
}  // namespace qsa::harness
