// Workload generation: application catalog, Poisson request process, churn.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "qsa/qos/translator.hpp"
#include "qsa/workload/apps.hpp"
#include "qsa/workload/churn.hpp"
#include "qsa/workload/generator.hpp"

namespace qsa::workload {
namespace {

using net::PeerId;
using sim::SimTime;

struct WorkloadFixture : ::testing::Test {
  WorkloadFixture()
      : universe(registry::QosUniverse::standard(interner)),
        translator(universe.level,
                   qos::AnalyticTranslator::paper_coefficients()),
        peers(qos::ResourceSchema::paper(),
              net::ProbeClock(SimTime::seconds(30))) {
    for (int i = 0; i < 50; ++i) {
      peers.add_peer(qos::ResourceVector{500, 500}, SimTime::minutes(-10));
    }
  }

  ApplicationCatalog make_apps(AppCatalogParams params = {}) {
    return ApplicationCatalog(services, universe, translator, params);
  }

  util::Interner interner;
  registry::QosUniverse universe;
  qos::AnalyticTranslator translator;
  registry::ServiceCatalog services;
  net::PeerTable peers;
  sim::Simulator simulator;
};

// -------------------------------------------------------------- app catalog

TEST_F(WorkloadFixture, BuildsConfiguredApplicationCount) {
  const auto apps = make_apps();
  EXPECT_EQ(apps.apps().size(), 10u);  // paper: 10 applications
}

TEST_F(WorkloadFixture, PathLengthsWithinPaperBounds) {
  const auto apps = make_apps();
  for (const auto& app : apps.apps()) {
    EXPECT_GE(app.path.size(), 2u);
    EXPECT_LE(app.path.size(), 5u);
  }
}

TEST_F(WorkloadFixture, EveryServiceHasInstances) {
  const auto apps = make_apps();
  for (const auto& app : apps.apps()) {
    for (const auto svc : app.path) {
      const auto n = services.instances_of(svc).size();
      EXPECT_GE(n, 10u);
      EXPECT_LE(n, 20u);
    }
  }
}

TEST_F(WorkloadFixture, OnlySourcesLackInput) {
  const auto apps = make_apps();
  for (const auto& app : apps.apps()) {
    for (std::size_t i = 0; i < app.path.size(); ++i) {
      for (const auto inst : services.instances_of(app.path[i])) {
        EXPECT_EQ(services.instance(inst).qin.empty(), i == 0);
      }
    }
  }
}

TEST_F(WorkloadFixture, AppsAreSeedDeterministic) {
  registry::ServiceCatalog cat2;
  ApplicationCatalog a1 = make_apps();
  ApplicationCatalog a2(cat2, universe, translator, AppCatalogParams{});
  ASSERT_EQ(a1.apps().size(), a2.apps().size());
  for (std::size_t i = 0; i < a1.apps().size(); ++i) {
    EXPECT_EQ(a1.apps()[i].path.size(), a2.apps()[i].path.size());
  }
}

TEST(QosLevels, RequirementFloorsOrdered) {
  util::Interner interner;
  const auto u = registry::QosUniverse::standard(interner);
  const auto low = requirement_for(QosLevel::kLow, u);
  const auto avg = requirement_for(QosLevel::kAverage, u);
  const auto high = requirement_for(QosLevel::kHigh, u);
  EXPECT_LT(low.get(u.level)->lo(), avg.get(u.level)->lo());
  EXPECT_LT(avg.get(u.level)->lo(), high.get(u.level)->lo());
  EXPECT_DOUBLE_EQ(high.get(u.level)->hi(), 100.0);
}

TEST(QosLevels, Names) {
  EXPECT_EQ(to_string(QosLevel::kLow), "low");
  EXPECT_EQ(to_string(QosLevel::kAverage), "average");
  EXPECT_EQ(to_string(QosLevel::kHigh), "high");
}

// --------------------------------------------------------- request process

TEST_F(WorkloadFixture, GeneratesRoughlyRateTimesMinutes) {
  const auto apps = make_apps();
  RequestParams params;
  params.rate_per_min = 50;
  int count = 0;
  RequestGenerator gen(simulator, apps, universe, peers, params,
                       [&](const core::ServiceRequest&, const Application&,
                           QosLevel) { ++count; });
  gen.start(SimTime::minutes(100));
  simulator.run_until(SimTime::minutes(100));
  EXPECT_NEAR(count, 5000, 400);  // Poisson: ~3 sigma is ~212
  EXPECT_EQ(gen.generated(), static_cast<std::uint64_t>(count));
}

TEST_F(WorkloadFixture, InterArrivalsAreExponentialish) {
  const auto apps = make_apps();
  RequestParams params;
  params.rate_per_min = 60;
  std::vector<double> stamps;
  RequestGenerator gen(simulator, apps, universe, peers, params,
                       [&](const core::ServiceRequest&, const Application&,
                           QosLevel) {
                         stamps.push_back(simulator.now().as_minutes());
                       });
  gen.start(SimTime::minutes(200));
  simulator.run_until(SimTime::minutes(200));
  ASSERT_GT(stamps.size(), 1000u);
  // Coefficient of variation of exponential gaps is 1.
  double mean = 0;
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    mean += stamps[i] - stamps[i - 1];
  }
  mean /= static_cast<double>(stamps.size() - 1);
  double var = 0;
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    const double d = stamps[i] - stamps[i - 1] - mean;
    var += d * d;
  }
  var /= static_cast<double>(stamps.size() - 2);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.15);
}

TEST_F(WorkloadFixture, RequestFieldsWithinBounds) {
  const auto apps = make_apps();
  RequestParams params;
  params.rate_per_min = 100;
  RequestGenerator gen(
      simulator, apps, universe, peers, params,
      [&](const core::ServiceRequest& req, const Application& app,
          QosLevel) {
        EXPECT_TRUE(peers.alive(req.requester));
        EXPECT_EQ(req.abstract_path, app.path);
        EXPECT_GE(req.session_duration, SimTime::minutes(1));
        EXPECT_LE(req.session_duration, SimTime::minutes(60));
        EXPECT_FALSE(req.requirement.empty());
      });
  gen.start(SimTime::minutes(10));
  simulator.run_until(SimTime::minutes(10));
}

TEST_F(WorkloadFixture, AllLevelsAndAppsExercised) {
  const auto apps = make_apps();
  RequestParams params;
  params.rate_per_min = 200;
  std::map<std::uint32_t, int> app_counts;
  std::map<QosLevel, int> level_counts;
  RequestGenerator gen(simulator, apps, universe, peers, params,
                       [&](const core::ServiceRequest&, const Application& a,
                           QosLevel l) {
                         ++app_counts[a.id];
                         ++level_counts[l];
                       });
  gen.start(SimTime::minutes(30));
  simulator.run_until(SimTime::minutes(30));
  EXPECT_EQ(app_counts.size(), 10u);
  EXPECT_EQ(level_counts.size(), 3u);
}

TEST_F(WorkloadFixture, ZeroRateGeneratesNothing) {
  const auto apps = make_apps();
  RequestParams params;
  params.rate_per_min = 0;
  RequestGenerator gen(simulator, apps, universe, peers, params,
                       [&](const core::ServiceRequest&, const Application&,
                           QosLevel) { FAIL() << "no requests expected"; });
  gen.start(SimTime::minutes(100));
  simulator.run_until(SimTime::minutes(100));
}

TEST_F(WorkloadFixture, StopsAtHorizon) {
  const auto apps = make_apps();
  RequestParams params;
  params.rate_per_min = 30;
  SimTime last = SimTime::zero();
  RequestGenerator gen(simulator, apps, universe, peers, params,
                       [&](const core::ServiceRequest&, const Application&,
                           QosLevel) { last = simulator.now(); });
  gen.start(SimTime::minutes(10));
  simulator.run_until(SimTime::minutes(50));
  EXPECT_LE(last, SimTime::minutes(10));
}

// ----------------------------------------------------------------- churn

TEST_F(WorkloadFixture, ChurnAlternatesDeparturesAndArrivals) {
  ChurnParams params;
  params.events_per_min = 10;
  int departures = 0, arrivals = 0;
  ChurnProcess churn(
      simulator, peers, params,
      [&](PeerId p) {
        ++departures;
        peers.remove_peer(p, simulator.now());
      },
      [&] {
        ++arrivals;
        peers.add_peer(qos::ResourceVector{500, 500}, simulator.now());
      });
  churn.start(SimTime::minutes(60));
  simulator.run_until(SimTime::minutes(60));
  EXPECT_NEAR(departures + arrivals, 600, 100);
  EXPECT_NEAR(departures, arrivals, 1);
  EXPECT_EQ(churn.departures(), static_cast<std::uint64_t>(departures));
  EXPECT_EQ(churn.arrivals(), static_cast<std::uint64_t>(arrivals));
}

TEST_F(WorkloadFixture, ChurnTargetsYoungPeers) {
  // Half the peers are old, half fresh; youngest-of-8 sampling must evict
  // mostly fresh ones.
  net::PeerTable mixed(qos::ResourceSchema::paper(),
                       net::ProbeClock(SimTime::seconds(30)));
  for (int i = 0; i < 100; ++i) {
    mixed.add_peer(qos::ResourceVector{500, 500}, SimTime::minutes(-1000));
  }
  for (int i = 0; i < 100; ++i) {
    mixed.add_peer(qos::ResourceVector{500, 500}, SimTime::minutes(-1));
  }
  ChurnParams params;
  params.events_per_min = 4;  // ~2 departures/min over 30 min = ~60
  int young_evicted = 0, old_evicted = 0;
  ChurnProcess churn(
      simulator, mixed, params,
      [&](PeerId p) {
        (mixed.peer(p).join_time() < SimTime::minutes(-500) ? old_evicted
                                                            : young_evicted)++;
        mixed.remove_peer(p, simulator.now());
      },
      [&] {
        mixed.add_peer(qos::ResourceVector{500, 500}, simulator.now());
      });
  churn.start(SimTime::minutes(30));
  simulator.run_until(SimTime::minutes(30));
  EXPECT_GT(young_evicted, 3 * std::max(1, old_evicted));
}

TEST_F(WorkloadFixture, ZeroChurnIsInert) {
  ChurnParams params;
  params.events_per_min = 0;
  ChurnProcess churn(
      simulator, peers, params, [&](PeerId) { FAIL(); }, [&] { FAIL(); });
  churn.start(SimTime::minutes(100));
  simulator.run_until(SimTime::minutes(100));
  EXPECT_EQ(churn.departures(), 0u);
}

}  // namespace
}  // namespace qsa::workload
