// The "satisfy" relation of equation 1, including a property sweep against a
// brute-force re-statement of the definition.
#include <gtest/gtest.h>

#include <optional>

#include "qsa/qos/satisfy.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::qos {
namespace {

QosVector vec(std::initializer_list<std::pair<ParamId, QosValue>> dims) {
  QosVector v;
  for (const auto& [p, val] : dims) v.set(p, val);
  return v;
}

TEST(Satisfies, EmptyRequirementAlwaysSatisfied) {
  EXPECT_TRUE(satisfies(QosVector{}, QosVector{}));
  EXPECT_TRUE(satisfies(vec({{1, QosValue::single(5)}}), QosVector{}));
}

TEST(Satisfies, MissingOutputDimensionFails) {
  const auto in = vec({{1, QosValue::range(0, 10)}});
  EXPECT_FALSE(satisfies(QosVector{}, in));
  EXPECT_FALSE(satisfies(vec({{2, QosValue::range(1, 2)}}), in));
}

TEST(Satisfies, SingleDimensionMatch) {
  const auto out = vec({{1, QosValue::range(3, 4)}});
  const auto in = vec({{1, QosValue::range(0, 10)}});
  EXPECT_TRUE(satisfies(out, in));
}

TEST(Satisfies, ExtraOutputDimensionsIgnored) {
  const auto out = vec({{1, QosValue::range(3, 4)},
                        {2, QosValue::symbol(9)},
                        {5, QosValue::single(1)}});
  const auto in = vec({{1, QosValue::range(0, 10)}});
  EXPECT_TRUE(satisfies(out, in));
}

TEST(Satisfies, AllInputDimensionsMustMatch) {
  const auto out = vec({{1, QosValue::range(3, 4)}, {2, QosValue::symbol(0)}});
  EXPECT_TRUE(satisfies(
      out, vec({{1, QosValue::range(0, 10)}, {2, QosValue::symbol(0)}})));
  EXPECT_FALSE(satisfies(
      out, vec({{1, QosValue::range(0, 10)}, {2, QosValue::symbol(1)}})));
  EXPECT_FALSE(satisfies(
      out, vec({{1, QosValue::range(4, 10)}, {2, QosValue::symbol(0)}})));
}

TEST(Satisfies, MixedSingleAndRangeDimensions) {
  const auto out =
      vec({{1, QosValue::single(30)}, {2, QosValue::range(10, 12)}});
  const auto in =
      vec({{1, QosValue::single(30)}, {2, QosValue::range(0, 20)}});
  EXPECT_TRUE(satisfies(out, in));
  const auto in2 =
      vec({{1, QosValue::single(31)}, {2, QosValue::range(0, 20)}});
  EXPECT_FALSE(satisfies(out, in2));
}

TEST(FirstViolation, ReportsOffendingParam) {
  const auto out = vec({{1, QosValue::range(3, 4)}, {2, QosValue::symbol(0)}});
  const auto in =
      vec({{1, QosValue::range(0, 10)}, {2, QosValue::symbol(7)}});
  const auto v = first_violation(out, in);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2u);
}

TEST(FirstViolation, NulloptWhenSatisfied) {
  const auto out = vec({{1, QosValue::range(3, 4)}});
  const auto in = vec({{1, QosValue::range(0, 10)}});
  EXPECT_FALSE(first_violation(out, in).has_value());
}

TEST(FirstViolation, ReportsFirstInParamOrder) {
  const auto out = QosVector{};
  const auto in =
      vec({{4, QosValue::single(1)}, {2, QosValue::single(1)}});
  const auto v = first_violation(out, in);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2u);  // dims are sorted; param 2 is checked first
}

// ---------------------------------------------------------------------
// Property sweep: `satisfies` agrees with a brute-force restatement of
// equation 1 over randomly generated vector pairs.

bool brute_force_satisfies(const QosVector& out, const QosVector& in) {
  for (const auto& req : in) {
    bool matched = false;
    for (const auto& prod : out) {
      if (prod.param == req.param &&
          QosValue::satisfies(prod.value, req.value)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

QosValue random_value(util::Rng& rng) {
  switch (rng.index(3)) {
    case 0:
      return QosValue::single(static_cast<double>(rng.uniform_int(0, 5)));
    case 1:
      return QosValue::symbol(static_cast<Symbol>(rng.index(3)));
    default: {
      const double lo = static_cast<double>(rng.uniform_int(0, 8));
      const double hi = lo + static_cast<double>(rng.uniform_int(0, 4));
      return QosValue::range(lo, hi);
    }
  }
}

QosVector random_vector(util::Rng& rng) {
  QosVector v;
  const std::size_t dims = rng.index(4);  // 0..3 dims
  for (std::size_t i = 0; i < dims; ++i) {
    v.set(static_cast<ParamId>(rng.index(4)), random_value(rng));
  }
  return v;
}

class SatisfyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatisfyProperty, AgreesWithBruteForce) {
  util::Rng rng(util::derive_seed(GetParam(), "satisfy-prop", 0));
  for (int i = 0; i < 500; ++i) {
    const QosVector out = random_vector(rng);
    const QosVector in = random_vector(rng);
    EXPECT_EQ(satisfies(out, in), brute_force_satisfies(out, in))
        << "out=" << out.to_string() << " in=" << in.to_string();
    // Consistency with the diagnostic variant.
    EXPECT_EQ(satisfies(out, in), !first_violation(out, in).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatisfyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Reflexivity on range vectors: any vector satisfies itself when every
// dimension is a range or symbol (single values are reflexive too).
class SatisfyReflexivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatisfyReflexivity, VectorsSatisfyThemselves) {
  util::Rng rng(util::derive_seed(GetParam(), "satisfy-refl", 0));
  for (int i = 0; i < 200; ++i) {
    QosVector v;
    const std::size_t dims = 1 + rng.index(3);
    for (std::size_t d = 0; d < dims; ++d) {
      // Exclude the single-vs-single arm? No: equality is reflexive there
      // as well, so all kinds participate.
      v.set(static_cast<ParamId>(d), random_value(rng));
    }
    // kSingle inputs demand kSingle outputs with equal value: reflexive.
    // kRange inputs demand containment: a range contains itself.
    EXPECT_TRUE(satisfies(v, v)) << v.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatisfyReflexivity,
                         ::testing::Values(11, 12, 13, 14));

// Transitivity of the range arm: if A ⊆ B and B ⊆ C then A ⊆ C.
TEST(SatisfyProperty, RangeContainmentIsTransitive) {
  util::Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const double a_lo = rng.uniform(0, 50), a_hi = a_lo + rng.uniform(0, 10);
    const double b_lo = rng.uniform(0, 50), b_hi = b_lo + rng.uniform(0, 20);
    const double c_lo = rng.uniform(0, 50), c_hi = c_lo + rng.uniform(0, 40);
    const auto A = QosValue::range(a_lo, a_hi);
    const auto B = QosValue::range(b_lo, b_hi);
    const auto C = QosValue::range(c_lo, c_hi);
    if (QosValue::satisfies(A, B) && QosValue::satisfies(B, C)) {
      EXPECT_TRUE(QosValue::satisfies(A, C));
    }
  }
}

}  // namespace
}  // namespace qsa::qos
