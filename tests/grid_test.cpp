// End-to-end integration of the full grid simulation.
#include <gtest/gtest.h>

#include "qsa/harness/grid.hpp"

namespace qsa::harness {
namespace {

GridConfig small_config() {
  GridConfig c;
  c.seed = 11;
  c.peers = 300;
  c.min_providers = 15;
  c.max_providers = 30;
  c.apps.applications = 6;
  c.requests.rate_per_min = 20;
  c.horizon = sim::SimTime::minutes(15);
  c.sample_period = sim::SimTime::minutes(2);
  return c;
}

TEST(GridSimulation, BootstrapsConsistently) {
  GridSimulation grid(small_config());
  EXPECT_EQ(grid.peers().alive_count(), 300u);
  EXPECT_EQ(grid.ring().size(), 300u);
  EXPECT_GT(grid.catalog().instance_count(), 50u);
  EXPECT_EQ(grid.apps().apps().size(), 6u);
  // Every instance has providers within the configured bounds.
  for (registry::InstanceId i = 0; i < grid.catalog().instance_count(); ++i) {
    const auto n = grid.placement().provider_count(i);
    EXPECT_GE(n, 15u);
    EXPECT_LE(n, 30u);
  }
}

TEST(GridSimulation, SubmitRequestComposesAndSelects) {
  GridSimulation grid(small_config());
  const auto& app = grid.apps().apps()[0];
  core::ServiceRequest req;
  req.requester = grid.peers().alive_ids()[0];
  req.abstract_path = app.path;
  req.requirement =
      workload::requirement_for(workload::QosLevel::kLow, grid.universe());
  req.session_duration = sim::SimTime::minutes(5);
  const auto plan = grid.submit_request(req);
  ASSERT_TRUE(plan.ok()) << to_string(plan.failure);
  EXPECT_EQ(plan.instances.size(), app.path.size());
  EXPECT_EQ(plan.hosts.size(), app.path.size());
  for (std::size_t i = 0; i < plan.instances.size(); ++i) {
    EXPECT_EQ(grid.catalog().instance(plan.instances[i]).service, app.path[i]);
    EXPECT_TRUE(grid.peers().alive(plan.hosts[i]));
  }
}

TEST(GridSimulation, RunAccountsEveryRequest) {
  GridSimulation grid(small_config());
  const auto r = grid.run();
  EXPECT_GT(r.requests, 100u);  // ~ 20/min * 15 min
  const auto failures = r.failures_discovery + r.failures_composition +
                        r.failures_selection + r.failures_admission +
                        r.failures_departure;
  EXPECT_EQ(r.successes + failures, r.requests);
  EXPECT_GT(r.success_ratio(), 0.5);  // light load: mostly successful
  EXPECT_FALSE(r.series.empty());
  for (const auto& s : r.series.samples()) {
    EXPECT_GE(s.value, 0.0);
    EXPECT_LE(s.value, 1.0);
  }
}

TEST(GridSimulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    GridSimulation grid(small_config());
    return grid.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.failures_admission, b.failures_admission);
  EXPECT_EQ(a.lookup_hops, b.lookup_hops);
  EXPECT_EQ(a.notification_messages, b.notification_messages);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series.samples()[i].value, b.series.samples()[i].value);
  }
}

TEST(GridSimulation, DifferentSeedsDiffer) {
  auto cfg = small_config();
  GridSimulation g1(cfg);
  cfg.seed = 12;
  GridSimulation g2(cfg);
  const auto a = g1.run();
  const auto b = g2.run();
  // Request counts are Poisson draws from different streams.
  EXPECT_NE(a.requests, b.requests);
}

TEST(GridSimulation, LookupHopsScaleLogarithmically) {
  GridSimulation grid(small_config());
  const auto r = grid.run();
  ASSERT_GT(r.requests, 0u);
  // Path lengths are 2-5 services -> 2-5 lookups per request; each lookup
  // should average well under log2(300) ~ 8 hops.
  const double hops_per_request =
      static_cast<double>(r.lookup_hops) / static_cast<double>(r.requests);
  EXPECT_GT(hops_per_request, 1.0);
  EXPECT_LT(hops_per_request, 40.0);
}

TEST(GridSimulation, DepartPeerPurgesEverything) {
  GridSimulation grid(small_config());
  const net::PeerId victim = grid.peers().alive_ids()[5];
  grid.depart_peer(victim);
  EXPECT_FALSE(grid.peers().alive(victim));
  EXPECT_FALSE(grid.ring().contains(victim));
  EXPECT_TRUE(grid.placement().provided_by(victim).empty());
  EXPECT_EQ(grid.peers().alive_count(), 299u);
  grid.depart_peer(victim);  // idempotent
  EXPECT_EQ(grid.peers().alive_count(), 299u);
}

TEST(GridSimulation, ArrivePeerJoinsEverything) {
  GridSimulation grid(small_config());
  const auto id = grid.arrive_peer();
  EXPECT_TRUE(grid.peers().alive(id));
  EXPECT_TRUE(grid.ring().contains(id));
  EXPECT_EQ(grid.peers().alive_count(), 301u);
  EXPECT_GE(grid.placement().provided_by(id).size(), 1u);
}

TEST(GridSimulation, ChurnRunProducesDepartureFailures) {
  auto cfg = small_config();
  cfg.churn.events_per_min = 12;  // 4% of 300 per minute: aggressive
  cfg.requests.rate_per_min = 30;
  GridSimulation grid(cfg);
  const auto r = grid.run();
  EXPECT_GT(r.churn_departures, 50u);
  EXPECT_GT(r.churn_arrivals, 50u);
  EXPECT_GT(r.failures_departure, 0u);
  // Population stays near its initial size.
  EXPECT_NEAR(static_cast<double>(grid.peers().alive_count()), 300.0, 30.0);
}

TEST(GridSimulation, SaturationDegradesSuccessRatio) {
  auto low = small_config();
  low.requests.rate_per_min = 5;
  auto high = small_config();
  high.requests.rate_per_min = 300;
  GridSimulation g_low(low), g_high(high);
  const auto r_low = g_low.run();
  const auto r_high = g_high.run();
  EXPECT_GT(r_low.success_ratio(), r_high.success_ratio());
  EXPECT_GT(r_high.failures_admission + r_high.failures_selection, 0u);
}

// The headline comparison: under load, QSA > random > fixed.
TEST(GridSimulation, AlgorithmOrderingUnderLoad) {
  auto cfg = small_config();
  cfg.requests.rate_per_min = 60;
  cfg.horizon = sim::SimTime::minutes(20);

  double psi[3];
  const AlgorithmKind kinds[] = {AlgorithmKind::kQsa, AlgorithmKind::kRandom,
                                 AlgorithmKind::kFixed};
  for (int i = 0; i < 3; ++i) {
    auto c = cfg;
    c.algorithm = kinds[i];
    GridSimulation grid(c);
    psi[i] = grid.run().success_ratio();
  }
  EXPECT_GT(psi[0], psi[1]) << "QSA must beat random";
  EXPECT_GT(psi[1], psi[2]) << "random must beat fixed (client-server)";
}

TEST(GridSimulation, RunsOnCanOverlay) {
  auto cfg = small_config();
  cfg.overlay = OverlayKind::kCan;
  GridSimulation grid(cfg);
  const auto r = grid.run();
  EXPECT_GT(r.requests, 100u);
  EXPECT_GT(r.success_ratio(), 0.5);
  // CAN pays more hops than Chord for the same discovery workload.
  auto chord_cfg = small_config();
  GridSimulation chord_grid(chord_cfg);
  const auto chord_r = chord_grid.run();
  EXPECT_GT(static_cast<double>(r.lookup_hops),
            static_cast<double>(chord_r.lookup_hops));
}

TEST(GridSimulation, RecoveryImprovesChurnSurvival) {
  auto cfg = small_config();
  cfg.churn.events_per_min = 12;
  cfg.requests.rate_per_min = 30;
  auto with = cfg;
  with.enable_recovery = true;
  GridSimulation g_plain(cfg), g_recover(with);
  const auto r_plain = g_plain.run();
  const auto r_recover = g_recover.run();
  EXPECT_GT(r_recover.counters.get("sessions.recovered"), 0u);
  EXPECT_GE(r_recover.success_ratio() + 1e-9, r_plain.success_ratio());
  EXPECT_LT(r_recover.failures_departure, r_plain.failures_departure);
}

TEST(GridSimulation, BandwidthWeightConfigApplies) {
  // An extreme bandwidth weight changes selection behaviour; the grid must
  // accept the knob and stay deterministic.
  auto cfg = small_config();
  cfg.bandwidth_weight = 0.9;
  GridSimulation g1(cfg), g2(cfg);
  const auto a = g1.run();
  const auto b = g2.run();
  EXPECT_EQ(a.successes, b.successes);
  cfg.bandwidth_weight = -1;  // uniform default
  GridSimulation g3(cfg);
  const auto c = g3.run();
  EXPECT_EQ(a.requests, c.requests);  // same arrival stream
}

// Admission retries exclude the blamed host on the re-plan. That is only
// useful if the algorithm honors the exclusion — the fixed baseline would
// otherwise re-pick the very host whose reservation just failed and burn
// every retry on a guaranteed repeat failure.
TEST(GridSimulation, RetryExclusionHelpsFixedBaseline) {
  auto cfg = small_config();
  cfg.algorithm = AlgorithmKind::kFixed;
  cfg.requests.rate_per_min = 150;  // saturate the dedicated hosts
  auto with = cfg;
  with.admission_retries = 2;
  GridSimulation g_plain(cfg), g_retry(with);
  const auto r_plain = g_plain.run();
  const auto r_retry = g_retry.run();
  EXPECT_GT(r_retry.counters.get("admission.retries"), 0u);
  EXPECT_GT(r_retry.success_ratio(), r_plain.success_ratio());
  EXPECT_LT(r_retry.failures_admission, r_plain.failures_admission);
}

TEST(GridSimulation, CountersExported) {
  GridSimulation grid(small_config());
  const auto r = grid.run();
  EXPECT_GT(r.counters.get("sessions.admitted"), 0u);
  EXPECT_GT(r.counters.get("events.executed"), 0u);
  EXPECT_GT(r.notification_messages, 0u);
}

}  // namespace
}  // namespace qsa::harness
