#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>

#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/net/reservations.hpp"

namespace qsa::net {
namespace {

using qos::ResourceVector;
using sim::SimTime;

ProbeClock clock30() { return ProbeClock(SimTime::seconds(30)); }

PeerTable make_table() {
  return PeerTable(qos::ResourceSchema::paper(), clock30());
}

// ------------------------------------------------------------ ProbeClock

TEST(ProbeClock, EpochIndexing) {
  ProbeClock c(SimTime::seconds(30));
  EXPECT_EQ(c.epoch(SimTime::zero()), 0);
  EXPECT_EQ(c.epoch(SimTime::seconds(29.9)), 0);
  EXPECT_EQ(c.epoch(SimTime::seconds(30)), 1);
  EXPECT_EQ(c.epoch(SimTime::seconds(61)), 2);
}

TEST(ProbeClock, NegativeTimesFloor) {
  ProbeClock c(SimTime::seconds(30));
  EXPECT_EQ(c.epoch(SimTime::seconds(-1)), -1);
  EXPECT_EQ(c.epoch(SimTime::seconds(-30)), -1);
  EXPECT_EQ(c.epoch(SimTime::seconds(-31)), -2);
}

// ----------------------------------------------------------- Snapshotted

TEST(Snapshotted, ReadsLiveWhenUntouchedThisEpoch) {
  Snapshotted<int> s(10);
  s.mutate(0, [](int& v) { v = 20; });
  // Epoch 1 has seen no mutation: the live value *is* the epoch-start value.
  EXPECT_EQ(s.probed(1), 20);
  EXPECT_EQ(s.live(), 20);
}

TEST(Snapshotted, HidesSameEpochMutations) {
  Snapshotted<int> s(10);
  s.mutate(5, [](int& v) { v = 99; });
  // A reader in epoch 5 sees the value at the epoch-5 boundary (10).
  EXPECT_EQ(s.probed(5), 10);
  EXPECT_EQ(s.live(), 99);
  // Next epoch the mutation becomes visible.
  EXPECT_EQ(s.probed(6), 99);
}

TEST(Snapshotted, MultipleMutationsSameEpoch) {
  Snapshotted<int> s(1);
  s.mutate(3, [](int& v) { v += 10; });
  s.mutate(3, [](int& v) { v += 100; });
  EXPECT_EQ(s.probed(3), 1);
  EXPECT_EQ(s.live(), 111);
  EXPECT_EQ(s.probed(4), 111);
}

TEST(Snapshotted, SnapshotRollsForwardAcrossEpochs) {
  Snapshotted<int> s(0);
  s.mutate(1, [](int& v) { v = 1; });
  s.mutate(2, [](int& v) { v = 2; });
  s.mutate(4, [](int& v) { v = 4; });
  EXPECT_EQ(s.probed(4), 2);  // value at the start of epoch 4
  EXPECT_EQ(s.probed(5), 4);
}

// -------------------------------------------------------------- PeerTable

TEST(PeerTable, AddPeersAssignsSequentialIds) {
  auto t = make_table();
  EXPECT_EQ(t.add_peer(ResourceVector{100, 100}, SimTime::zero()), 0u);
  EXPECT_EQ(t.add_peer(ResourceVector{200, 200}, SimTime::zero()), 1u);
  EXPECT_EQ(t.total_peers(), 2u);
  EXPECT_EQ(t.alive_count(), 2u);
}

TEST(PeerTable, RemovePeerUpdatesAliveSet) {
  auto t = make_table();
  const auto a = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  const auto b = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  const auto c = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  t.remove_peer(b, SimTime::seconds(10));
  EXPECT_FALSE(t.alive(b));
  EXPECT_TRUE(t.alive(a));
  EXPECT_TRUE(t.alive(c));
  EXPECT_EQ(t.alive_count(), 2u);
  // alive_ids stays consistent.
  for (PeerId id : t.alive_ids()) EXPECT_TRUE(t.alive(id));
}

TEST(PeerTable, RemoveTwiceIsNoop) {
  auto t = make_table();
  const auto a = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  t.remove_peer(a, SimTime::zero());
  t.remove_peer(a, SimTime::zero());
  EXPECT_EQ(t.alive_count(), 0u);
}

TEST(PeerTable, DepartureTimeRecorded) {
  auto t = make_table();
  const auto a = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  EXPECT_EQ(t.peer(a).departed_at(), SimTime::infinity());
  t.remove_peer(a, SimTime::seconds(42));
  EXPECT_EQ(t.peer(a).departed_at(), SimTime::seconds(42));
}

TEST(PeerTable, UptimeFromJoinTime) {
  auto t = make_table();
  const auto a =
      t.add_peer(ResourceVector{100, 100}, SimTime::minutes(-30));
  EXPECT_EQ(t.peer(a).uptime(SimTime::minutes(10)), SimTime::minutes(40));
}

TEST(PeerTable, ReserveAndRelease) {
  auto t = make_table();
  const auto a = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  EXPECT_TRUE(t.try_reserve(a, ResourceVector{60, 60}, SimTime::zero()));
  EXPECT_EQ(t.peer(a).available(), (ResourceVector{40, 40}));
  EXPECT_FALSE(t.try_reserve(a, ResourceVector{50, 10}, SimTime::zero()));
  EXPECT_TRUE(t.try_reserve(a, ResourceVector{40, 40}, SimTime::zero()));
  EXPECT_EQ(t.peer(a).available(), (ResourceVector{0, 0}));
  t.release(a, ResourceVector{60, 60}, SimTime::zero());
  EXPECT_EQ(t.peer(a).available(), (ResourceVector{60, 60}));
}

TEST(PeerTable, FailedReserveLeavesStateIntact) {
  auto t = make_table();
  const auto a = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  EXPECT_FALSE(t.try_reserve(a, ResourceVector{50, 150}, SimTime::zero()));
  EXPECT_EQ(t.peer(a).available(), (ResourceVector{100, 100}));
}

TEST(PeerTable, ReserveOnDeadPeerFails) {
  auto t = make_table();
  const auto a = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  t.remove_peer(a, SimTime::zero());
  EXPECT_FALSE(t.try_reserve(a, ResourceVector{1, 1}, SimTime::zero()));
}

TEST(PeerTable, ReleaseOnDeadPeerIsNoop) {
  auto t = make_table();
  const auto a = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  EXPECT_TRUE(t.try_reserve(a, ResourceVector{10, 10}, SimTime::zero()));
  t.remove_peer(a, SimTime::zero());
  t.release(a, ResourceVector{10, 10}, SimTime::zero());  // no crash, no-op
}

TEST(PeerTable, ProbedAvailabilityIsEpochStale) {
  auto t = make_table();
  const auto a = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  // Reserve inside epoch 0.
  EXPECT_TRUE(t.try_reserve(a, ResourceVector{70, 70}, SimTime::seconds(5)));
  // Probers in epoch 0 still see the full capacity.
  EXPECT_EQ(t.probed_available(a, SimTime::seconds(10)),
            (ResourceVector{100, 100}));
  // After the epoch boundary, the reservation becomes visible.
  EXPECT_EQ(t.probed_available(a, SimTime::seconds(31)),
            (ResourceVector{30, 30}));
  // Ground truth is immediate.
  EXPECT_EQ(t.peer(a).available(), (ResourceVector{30, 30}));
}

TEST(PeerTable, ProbedUptimeUsesEpochBoundary) {
  auto t = make_table();
  const auto a = t.add_peer(ResourceVector{100, 100}, SimTime::minutes(-10));
  // At t=45s, the last probe boundary is 30s; uptime = 30s + 10min.
  EXPECT_EQ(t.probed_uptime(a, SimTime::seconds(45)),
            SimTime::seconds(630));
}

TEST(PeerTable, ProbedAliveLagsDeparture) {
  auto t = make_table();
  const auto a = t.add_peer(ResourceVector{100, 100}, SimTime::zero());
  t.remove_peer(a, SimTime::seconds(35));  // dies inside epoch 1
  EXPECT_FALSE(t.alive(a));
  // Probers within epoch 1 still believe it alive...
  EXPECT_TRUE(t.probed_alive(a, SimTime::seconds(45)));
  // ...and learn the truth at the next boundary.
  EXPECT_FALSE(t.probed_alive(a, SimTime::seconds(61)));
}

// ------------------------------------------------------------ NetworkModel

TEST(NetworkModel, CapacityFromPaperLevels) {
  NetworkModel net(1, clock30());
  std::map<double, int> histogram;
  for (PeerId a = 0; a < 60; ++a) {
    for (PeerId b = a + 1; b < 60; ++b) {
      ++histogram[net.capacity_kbps(a, b)];
    }
  }
  // Exactly the paper's four levels appear, each a nontrivial share.
  ASSERT_EQ(histogram.size(), 4u);
  EXPECT_TRUE(histogram.contains(10'000));
  EXPECT_TRUE(histogram.contains(500));
  EXPECT_TRUE(histogram.contains(100));
  EXPECT_TRUE(histogram.contains(56));
  for (const auto& [level, count] : histogram) EXPECT_GT(count, 200);
}

TEST(NetworkModel, LatencyFromPaperLevels) {
  NetworkModel net(1, clock30());
  std::map<std::int64_t, int> histogram;
  for (PeerId a = 0; a < 60; ++a) {
    for (PeerId b = a + 1; b < 60; ++b) {
      ++histogram[net.latency(a, b).as_millis()];
    }
  }
  ASSERT_EQ(histogram.size(), 5u);
  for (std::int64_t ms : {200, 150, 80, 20, 1}) {
    EXPECT_TRUE(histogram.contains(ms)) << ms;
  }
}

TEST(NetworkModel, PairValuesAreSymmetricAndStable) {
  NetworkModel net(7, clock30());
  EXPECT_DOUBLE_EQ(net.capacity_kbps(3, 9), net.capacity_kbps(9, 3));
  EXPECT_EQ(net.latency(3, 9), net.latency(9, 3));
  EXPECT_DOUBLE_EQ(net.capacity_kbps(3, 9), net.capacity_kbps(3, 9));
}

TEST(NetworkModel, DifferentSeedsGiveDifferentDraws) {
  NetworkModel n1(1, clock30()), n2(2, clock30());
  int differing = 0;
  for (PeerId b = 1; b < 50; ++b) {
    differing += n1.capacity_kbps(0, b) != n2.capacity_kbps(0, b);
  }
  EXPECT_GT(differing, 10);
}

TEST(NetworkModel, LoopbackUnconstrained) {
  NetworkModel net(1, clock30());
  EXPECT_GE(net.capacity_kbps(5, 5), 1e9);
  EXPECT_EQ(net.latency(5, 5), SimTime::zero());
}

TEST(NetworkModel, SelfLoopReserveAlwaysAdmitsAndReleases) {
  // Consecutive path hops can land on one host (or the sink can be the
  // requester itself): the a==b link is loopback, effectively unconstrained,
  // and reserve/release must round-trip without touching real pairs.
  NetworkModel net(1, clock30());
  EXPECT_TRUE(net.try_reserve(5, 5, 500'000, SimTime::zero()));
  EXPECT_TRUE(net.try_reserve(5, 5, 500'000, SimTime::zero()));
  EXPECT_GE(net.available_kbps(5, 5), 1e9 - 1'000'000);
  net.release(5, 5, 500'000, SimTime::zero());
  net.release(5, 5, 500'000, SimTime::zero());
  EXPECT_GE(net.available_kbps(5, 5), 1e9);
  EXPECT_EQ(net.latency(5, 5), SimTime::zero());
}

TEST(NetworkModel, ReserveAndRelease) {
  NetworkModel net(1, clock30());
  // Find a 10 Mbps pair so there is room.
  PeerId b = 1;
  while (net.capacity_kbps(0, b) != 10'000) ++b;
  const double cap = net.capacity_kbps(0, b);
  EXPECT_TRUE(net.try_reserve(0, b, 4000, SimTime::zero()));
  EXPECT_DOUBLE_EQ(net.available_kbps(0, b), cap - 4000);
  EXPECT_FALSE(net.try_reserve(0, b, cap, SimTime::zero()));
  net.release(0, b, 4000, SimTime::zero());
  EXPECT_DOUBLE_EQ(net.available_kbps(0, b), cap);
}

TEST(NetworkModel, ReleaseRoundTripsWithoutDrift) {
  // Regression for the reservation-ledger float-drift bug: summing and
  // subtracting non-representable kbps values in different orders leaves a
  // +/- 1 ulp residue per cycle. At loopback magnitudes (1e9 kbps, ulp
  // ~1e-7) the residue routinely exceeded the old absolute [-1e-9, 0) snap
  // window, so negative residue accumulated across cycles — the ledger
  // went negative (phantom capacity) and tripped QSA_ENSURES. The fix
  // snaps any negative residue within a *relative* tolerance of zero.
  NetworkModel net(1, clock30());
  const PeerId p = 5;  // loopback: capacity >= 1e9, always admits
  const double cap = net.capacity_kbps(p, p);
  // These divisors make the add/subtract order below cancel imperfectly:
  // each cycle ends ~3e-8 below zero in pure double arithmetic (ulp of
  // 1e9 is ~1.2e-7), well outside the old snap window.
  const double a = cap / 3.0, b = cap / 17.0, c = cap / 19.0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(net.try_reserve(p, p, a, SimTime::zero()));
    ASSERT_TRUE(net.try_reserve(p, p, b, SimTime::zero()));
    net.release(p, p, a, SimTime::zero());
    ASSERT_TRUE(net.try_reserve(p, p, c, SimTime::zero()));
    net.release(p, p, c, SimTime::zero());
    net.release(p, p, b, SimTime::zero());
    const double reserved = cap - net.available_kbps(p, p);
    // Never negative (no phantom bandwidth) ...
    EXPECT_GE(reserved, 0.0) << "cycle " << i;
    // ... and any positive residue stays a few ulp, not an accumulation.
    EXPECT_LE(reserved, 1e-3) << "cycle " << i;
  }
}

TEST(NetworkModel, PairKeyIsSymmetricAndInjective) {
  // The undirected-pair ledger key must be order-free and collision-free,
  // including at the top of the 32-bit PeerId range (a widened PeerId
  // without a widened key would silently alias distinct links; a
  // static_assert in pair_key guards the width at compile time).
  const PeerId ids[] = {0, 1, 2, 100, 65'535, 65'536,
                        0xFFFF'FFFEu, 0xFFFF'FFFFu};
  std::map<std::uint64_t, std::pair<PeerId, PeerId>> seen;
  for (PeerId a : ids) {
    for (PeerId b : ids) {
      const std::uint64_t key = NetworkModel::pair_key(a, b);
      EXPECT_EQ(key, NetworkModel::pair_key(b, a));
      const std::pair<PeerId, PeerId> canonical{std::min(a, b),
                                                std::max(a, b)};
      const auto [it, inserted] = seen.emplace(key, canonical);
      if (!inserted) {
        EXPECT_EQ(it->second, canonical)
            << "pair_key collision: {" << a << "," << b << "} vs {"
            << it->second.first << "," << it->second.second << "}";
      }
    }
  }
}

TEST(NetworkModel, ReservationIsDirectionless) {
  NetworkModel net(1, clock30());
  PeerId b = 1;
  while (net.capacity_kbps(0, b) != 10'000) ++b;
  EXPECT_TRUE(net.try_reserve(0, b, 6000, SimTime::zero()));
  // The same bottleneck is shared by both directions.
  EXPECT_DOUBLE_EQ(net.available_kbps(b, 0), net.available_kbps(0, b));
  net.release(b, 0, 6000, SimTime::zero());
  EXPECT_DOUBLE_EQ(net.available_kbps(0, b), 10'000);
}

TEST(NetworkModel, ProbedBandwidthIsEpochStale) {
  NetworkModel net(1, clock30());
  PeerId b = 1;
  while (net.capacity_kbps(0, b) != 10'000) ++b;
  EXPECT_TRUE(net.try_reserve(0, b, 5000, SimTime::seconds(5)));
  EXPECT_DOUBLE_EQ(net.probed_available_kbps(0, b, SimTime::seconds(10)),
                   10'000);
  EXPECT_DOUBLE_EQ(net.probed_available_kbps(0, b, SimTime::seconds(31)),
                   5'000);
}

TEST(NetworkModel, ActivePairsTracksReservedLinks) {
  NetworkModel net(1, clock30());
  EXPECT_EQ(net.active_pairs(), 0u);
  ASSERT_TRUE(net.try_reserve(0, 1, 1, SimTime::zero()));
  ASSERT_TRUE(net.try_reserve(0, 2, 1, SimTime::zero()));
  EXPECT_EQ(net.active_pairs(), 2u);
}

TEST(NetworkModel, SelfPairsNeverTouchTheLedger) {
  // Regression for the loopback-ledger bug: a==b reservations used to
  // insert a real ledger entry and run the float cancel/snap path. The
  // loopback is process-local memory — reserving on it must be a pure
  // no-op that leaves the ledger untouched.
  NetworkModel net(1, clock30());
  EXPECT_DOUBLE_EQ(net.available_kbps(5, 5), NetworkModel::kLoopbackKbps);
  ASSERT_TRUE(net.try_reserve(5, 5, 500'000, SimTime::zero()));
  EXPECT_EQ(net.active_pairs(), 0u);
  EXPECT_EQ(net.touched_pairs(), 1u);  // distinct self pairs still counted
  ASSERT_TRUE(net.try_reserve(5, 5, 500'000, SimTime::zero()));
  EXPECT_EQ(net.touched_pairs(), 1u);
  // Available bandwidth never moves: the loopback has no bottleneck.
  EXPECT_DOUBLE_EQ(net.available_kbps(5, 5), NetworkModel::kLoopbackKbps);
  EXPECT_DOUBLE_EQ(net.probed_available_kbps(5, 5, SimTime::seconds(40)),
                   NetworkModel::kLoopbackKbps);
  net.release(5, 5, 500'000, SimTime::zero());
  EXPECT_EQ(net.active_pairs(), 0u);
  // A different peer's self pair is a new distinct pair.
  ASSERT_TRUE(net.try_reserve(7, 7, 1, SimTime::zero()));
  EXPECT_EQ(net.touched_pairs(), 2u);
  EXPECT_EQ(net.active_pairs(), 0u);
}

TEST(NetworkModel, EvictionDropsDrainedPairsAtTheNextEpoch) {
  // Regression for the ledger-leak bug: fully released entries were never
  // erased, so the map grew with every pair ever touched. Once the
  // probe-epoch snapshot of a drained entry is unobservable, the entry
  // must go.
  NetworkModel net(1, clock30());
  net.set_evict_floor(0);
  constexpr PeerId kPairs = 64;
  for (PeerId b = 1; b <= kPairs; ++b) {
    ASSERT_TRUE(
        net.try_reserve(0, b, net.capacity_kbps(0, b) / 2, SimTime::zero()));
  }
  EXPECT_EQ(net.active_pairs(), kPairs);
  for (PeerId b = 1; b <= kPairs; ++b) {
    net.release(0, b, net.capacity_kbps(0, b) / 2, SimTime::seconds(5));
  }
  // Drained in epoch 0: still held — a prober in epoch 0 may yet read the
  // epoch-0 snapshot.
  EXPECT_EQ(net.active_pairs(), kPairs);
  // The first mutating call after the boundary sweeps them all out.
  ASSERT_TRUE(net.try_reserve(0, kPairs + 1, 1, SimTime::seconds(31)));
  EXPECT_EQ(net.active_pairs(), 1u);
  // Evicted pairs answer exactly as never-touched links would.
  EXPECT_DOUBLE_EQ(net.available_kbps(0, 2), net.capacity_kbps(0, 2));
  EXPECT_DOUBLE_EQ(net.probed_available_kbps(0, 2, SimTime::seconds(40)),
                   net.capacity_kbps(0, 2));
  // The monotone distinct-pair counter is unaffected by eviction.
  EXPECT_EQ(net.touched_pairs(), kPairs + 1u);
}

TEST(NetworkModel, EvictionSparesSnapshotsStillObservable) {
  // An entry drained *this* epoch still owes probers its epoch-start
  // snapshot: it must survive the sweep until the next boundary.
  NetworkModel net(1, clock30());
  net.set_evict_floor(0);
  PeerId b = 1;
  while (net.capacity_kbps(0, b) != 10'000) ++b;
  const double cap = net.capacity_kbps(0, b);
  ASSERT_TRUE(net.try_reserve(0, b, 5000, SimTime::seconds(5)));  // epoch 0
  // Released in epoch 1: the entry drains, but its epoch-1 snapshot (5000
  // reserved) stays visible to epoch-1 probers.
  net.release(0, b, 5000, SimTime::seconds(35));
  EXPECT_EQ(net.active_pairs(), 1u);
  EXPECT_DOUBLE_EQ(net.probed_available_kbps(0, b, SimTime::seconds(40)),
                   cap - 5000);
  EXPECT_DOUBLE_EQ(net.available_kbps(0, b), cap);
  // Epoch 2: the snapshot is dead; the next mutating call may evict.
  ASSERT_TRUE(net.try_reserve(0, b + 1, 1, SimTime::seconds(61)));
  EXPECT_EQ(net.active_pairs(), 1u);  // only the fresh reservation remains
  EXPECT_DOUBLE_EQ(net.probed_available_kbps(0, b, SimTime::seconds(65)), cap);
}

TEST(NetworkModel, EvictionRespectsTheFloor) {
  // Below the floor the sweep never runs: small grids (and the golden-
  // digest cells) keep every entry, so re-touched pairs are never
  // double-counted.
  NetworkModel net(1, clock30());  // default floor
  ASSERT_TRUE(net.try_reserve(0, 1, 1, SimTime::zero()));
  net.release(0, 1, 1, SimTime::seconds(2));
  ASSERT_TRUE(net.try_reserve(0, 2, 1, SimTime::seconds(31)));
  EXPECT_EQ(net.active_pairs(), 2u);  // drained entry kept below the floor
  ASSERT_TRUE(net.try_reserve(0, 1, 1, SimTime::seconds(32)));
  EXPECT_EQ(net.touched_pairs(), 2u);  // re-insert not double-counted
}

// ------------------------------------------------- NetworkModel (coords)

TEST(NetworkModelCoords, MarginalsMatchPaperLevelSets) {
  // The synthetic-coordinate model must keep the paper's Section 4.1
  // marginals: latency levels {1,20,80,150,200} ms at ~20% each (distance
  // quantiles of the unit square) and bandwidth levels at ~25% each
  // (per-peer access tiers with sqrt-shaped CDF, pair = worse endpoint).
  NetworkModel net(3, clock30(), NetModelKind::kCoords);
  std::map<std::int64_t, int> lat;
  std::map<double, int> cap;
  constexpr PeerId kPeers = 250;
  int pairs = 0;
  for (PeerId a = 0; a < kPeers; ++a) {
    for (PeerId b = a + 1; b < kPeers; ++b) {
      ++lat[net.latency(a, b).as_millis()];
      ++cap[net.capacity_kbps(a, b)];
      ++pairs;
    }
  }
  ASSERT_EQ(lat.size(), 5u);
  for (std::int64_t ms : {200, 150, 80, 20, 1}) {
    ASSERT_TRUE(lat.contains(ms)) << ms;
    const double share = static_cast<double>(lat[ms]) / pairs;
    EXPECT_NEAR(share, 0.20, 0.06) << ms << " ms";
  }
  ASSERT_EQ(cap.size(), 4u);
  for (double kbps : {10'000.0, 500.0, 100.0, 56.0}) {
    ASSERT_TRUE(cap.contains(kbps)) << kbps;
    const double share = static_cast<double>(cap[kbps]) / pairs;
    EXPECT_NEAR(share, 0.25, 0.08) << kbps << " kbps";
  }
}

TEST(NetworkModelCoords, SymmetricDeterministicAndSeedSensitive) {
  NetworkModel n1(7, clock30(), NetModelKind::kCoords);
  NetworkModel n1b(7, clock30(), NetModelKind::kCoords);
  NetworkModel n2(8, clock30(), NetModelKind::kCoords);
  int differing = 0;
  for (PeerId b = 1; b < 64; ++b) {
    EXPECT_EQ(n1.latency(0, b), n1.latency(b, 0));
    EXPECT_DOUBLE_EQ(n1.capacity_kbps(0, b), n1.capacity_kbps(b, 0));
    EXPECT_EQ(n1.latency(0, b), n1b.latency(0, b));
    EXPECT_DOUBLE_EQ(n1.capacity_kbps(0, b), n1b.capacity_kbps(0, b));
    differing += n1.latency(0, b) != n2.latency(0, b);
  }
  EXPECT_GT(differing, 10);
}

TEST(NetworkModelCoords, LatencyIsMonotoneInCoordinateDistance) {
  // The whole point of the coordinate derivation: pair latency is a
  // quantized function of Euclidean distance, so closer peers never read
  // a higher latency level than farther ones.
  NetworkModel net(11, clock30(), NetModelKind::kCoords);
  const auto dist = [&](PeerId a, PeerId b) {
    const auto [ax, ay] = net.coordinate(a);
    const auto [bx, by] = net.coordinate(b);
    const double dx = ax - bx, dy = ay - by;
    return dx * dx + dy * dy;
  };
  for (PeerId a = 0; a < 20; ++a) {
    for (PeerId b = 0; b < 20; ++b) {
      for (PeerId c = 0; c < 20; ++c) {
        if (a == b || a == c || b == c) continue;
        if (dist(a, b) < dist(a, c)) {
          EXPECT_LE(net.latency(a, b), net.latency(a, c));
        }
      }
    }
  }
}

TEST(NetworkModelCoords, BandwidthIsTheWorseAccessTier) {
  NetworkModel net(5, clock30(), NetModelKind::kCoords);
  for (PeerId a = 0; a < 40; ++a) {
    EXPECT_GE(net.access_tier(a), 0);
    EXPECT_LT(net.access_tier(a), 4);
    for (PeerId b = a + 1; b < 40; ++b) {
      const int worse = std::max(net.access_tier(a), net.access_tier(b));
      EXPECT_DOUBLE_EQ(net.capacity_kbps(a, b),
                       NetworkModel::kBandwidthLevelsKbps[
                           static_cast<std::size_t>(worse)]);
    }
  }
}

TEST(NetworkModelCoords, LoopbackAndReservationsBehaveIdentically) {
  NetworkModel net(1, clock30(), NetModelKind::kCoords);
  EXPECT_EQ(net.latency(5, 5), SimTime::zero());
  EXPECT_DOUBLE_EQ(net.capacity_kbps(5, 5), NetworkModel::kLoopbackKbps);
  const double cap = net.capacity_kbps(0, 1);
  ASSERT_TRUE(net.try_reserve(0, 1, cap / 2, SimTime::zero()));
  EXPECT_DOUBLE_EQ(net.available_kbps(0, 1), cap - cap / 2);
  EXPECT_FALSE(net.try_reserve(0, 1, cap, SimTime::zero()));
  net.release(0, 1, cap / 2, SimTime::zero());
  EXPECT_DOUBLE_EQ(net.available_kbps(0, 1), cap);
}

// --------------------------------------------- PeerTable (paged storage)

TEST(PeerTablePaging, FullyDepartedPagesAreReclaimed) {
  PeerTable t(qos::ResourceSchema::paper(), clock30(), /*page_size=*/16);
  std::vector<PeerId> ids;
  for (int i = 0; i < 160; ++i) {
    ids.push_back(t.add_peer(ResourceVector{100, 100}, SimTime::zero()));
  }
  EXPECT_EQ(t.resident_slots(), 160u);
  // Drain the first 9 pages inside epoch 1.
  for (int i = 0; i < 144; ++i) t.remove_peer(ids[i], SimTime::seconds(40));
  // Same epoch: departed peers may still be probed alive, pages stay.
  EXPECT_EQ(t.resident_slots(), 160u);
  EXPECT_TRUE(t.probed_alive(ids[0], SimTime::seconds(45)));
  // Any table op after the epoch boundary reclaims the drained pages.
  t.add_peer(ResourceVector{100, 100}, SimTime::seconds(70));
  EXPECT_EQ(t.resident_pages(), 2u);  // the live tail + the fresh arrival
  EXPECT_EQ(t.resident_slots(), 32u);
  // Reclaimed peers answer exactly like long-departed ones.
  EXPECT_FALSE(t.alive(ids[0]));
  EXPECT_FALSE(t.probed_alive(ids[0], SimTime::seconds(70)));
  EXPECT_FALSE(t.try_reserve(ids[0], ResourceVector{1, 1},
                             SimTime::seconds(70)));
  t.release(ids[0], ResourceVector{1, 1}, SimTime::seconds(70));  // no-op
  // Ids are never reused and the live peers are untouched.
  EXPECT_EQ(t.total_peers(), 161u);
  EXPECT_TRUE(t.alive(ids[150]));
  EXPECT_EQ(t.peer(ids[150]).available(), (ResourceVector{100, 100}));
}

TEST(PeerTablePaging, ResidentFootprintPlateausUnderChurn) {
  // Long-horizon churn: arrivals replace departures wave after wave. Total
  // arrivals grow without bound; the resident footprint must plateau at
  // O(alive + one epoch of departures).
  PeerTable t(qos::ResourceSchema::paper(), clock30(), /*page_size=*/16);
  std::vector<PeerId> wave;
  for (int i = 0; i < 32; ++i) {
    wave.push_back(t.add_peer(ResourceVector{100, 100}, SimTime::zero()));
  }
  std::size_t peak_pages = 0;
  for (int round = 1; round <= 50; ++round) {
    const SimTime now = SimTime::seconds(30 * round);
    std::vector<PeerId> next;
    for (int i = 0; i < 32; ++i) {
      next.push_back(t.add_peer(ResourceVector{100, 100}, now));
    }
    for (PeerId id : wave) t.remove_peer(id, now);
    wave = std::move(next);
    peak_pages = std::max(peak_pages, t.resident_pages());
  }
  EXPECT_EQ(t.total_peers(), 32u * 51);
  EXPECT_EQ(t.alive_count(), 32u);
  // 32 alive + up to two epochs of not-yet-reclaimed departures: a handful
  // of 16-slot pages, nowhere near the 102 ever allocated.
  EXPECT_LE(peak_pages, 10u);
  EXPECT_LE(t.resident_pages(), 10u);
}

TEST(PeerTablePaging, ReservationsSurviveAcrossPageBoundaries) {
  PeerTable t(qos::ResourceSchema::paper(), clock30(), /*page_size=*/4);
  std::vector<PeerId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(t.add_peer(ResourceVector{100, 100}, SimTime::zero()));
  }
  for (PeerId id : ids) {
    ASSERT_TRUE(t.try_reserve(id, ResourceVector{30, 30}, SimTime::zero()));
  }
  for (PeerId id : ids) {
    EXPECT_EQ(t.peer(id).available(), (ResourceVector{70, 70}));
  }
  for (PeerId id : ids) {
    t.release(id, ResourceVector{30, 30}, SimTime::seconds(5));
    EXPECT_EQ(t.peer(id).available(), (ResourceVector{100, 100}));
  }
}

}  // namespace
}  // namespace qsa::net
