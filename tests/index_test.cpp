// qsa::index — the attribute-indexed discovery backend (DESIGN.md §15).
// Four properties are under test:
//
//  1. the key encoding is order-preserving: monotone bucket functions map a
//     range predicate onto one contiguous bucket span, and arcs of distinct
//     (attribute, service) pairs do not collide;
//  2. maintenance follows the soft-state contract: publish mints one posting
//     per attribute per live provider, republish re-buckets drifted values,
//     retirement erases eagerly, and departed providers age out after
//     `expiry_epochs` missed republishes — nothing else removes them;
//  3. a range query is *conservatively exact*: the routed bucket scans plus
//     the client-side re-check return precisely the brute-force answer over
//     the published records (false positives dropped and counted, nothing
//     qualifying ever missed), and under fault injection a lost mid-scan
//     segment is rerouted or the whole query fails — a non-failed result is
//     never a truncated candidate set;
//  4. the grid-level backend seam: --discovery=dht runs are deterministic
//     under churn and faults on all three overlays, and index.* counters
//     are exported only when the backend is enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <vector>

#include "qsa/fault/fault.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/index/attribute_index.hpp"
#include "qsa/index/keys.hpp"
#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/overlay/chord_ring.hpp"
#include "qsa/registry/catalog.hpp"
#include "qsa/registry/placement.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::index {
namespace {

using sim::SimTime;

// ------------------------------------------------------------ key encoding

TEST(IndexKeys, BucketFunctionsAreMonotone) {
  for (double lo = 0; lo < 1600; lo += 7) {
    EXPECT_LE(cpu_bucket(lo), cpu_bucket(lo + 7));
  }
  for (int tier = 0; tier < 3; ++tier) {
    // Flipped: a *smaller* tier (faster link) gets a *larger* bucket.
    EXPECT_GT(bandwidth_bucket(tier), bandwidth_bucket(tier + 1));
  }
  for (double m = 0; m < 20000; m += 37) {
    EXPECT_LE(uptime_bucket(SimTime::minutes(m)),
              uptime_bucket(SimTime::minutes(m + 37)));
  }
  for (double level = 0; level < 100; level += 0.5) {
    EXPECT_LE(level_bucket(level), level_bucket(level + 0.5));
  }
}

TEST(IndexKeys, BucketFunctionsClampToTheArc) {
  EXPECT_EQ(cpu_bucket(-5), 0);
  EXPECT_EQ(cpu_bucket(1e9), kBuckets - 1);
  EXPECT_EQ(bandwidth_bucket(99), 0);
  EXPECT_EQ(bandwidth_bucket(-1), 3);
  EXPECT_EQ(uptime_bucket(SimTime::zero()), 0);
  EXPECT_EQ(level_bucket(-1), 0);
  EXPECT_EQ(level_bucket(1000), kBuckets - 1);
}

TEST(IndexKeys, ConsecutiveBucketsAreConsecutiveKeys) {
  for (int b = 0; b + 1 < kBuckets; ++b) {
    EXPECT_EQ(index_key(42, Attribute::kCpu, 3, b + 1) -
                  index_key(42, Attribute::kCpu, 3, b),
              kBucketStride);
  }
}

TEST(IndexKeys, ArcsOfDistinctAttributeServicePairsDiffer) {
  std::set<overlay::Key> bases;
  for (int a = 0; a < kAttributeCount; ++a) {
    for (registry::ServiceId s = 0; s < 50; ++s) {
      bases.insert(arc_base(42, static_cast<Attribute>(a), s));
    }
  }
  EXPECT_EQ(bases.size(), 4u * 50u);
}

TEST(IndexKeys, PostingPackRoundTrips) {
  const Posting p = pack_posting(0x1234'5678u, 0x9abc'def0u);
  EXPECT_EQ(posting_instance(p), 0x1234'5678u);
  EXPECT_EQ(posting_provider(p), 0x9abc'def0u);
}

// ------------------------------------------------------------- maintenance

/// A hand-built world: 64 peers on a Chord ring, one service, instances and
/// placements added per test. Peer p gets capacity 100 + 14p (so cpu
/// buckets spread) and joins at t = -p minutes (pre-aged uptime).
struct IndexFixture : ::testing::Test {
  static constexpr qos::ParamId kLevel = 0;
  static constexpr std::uint64_t kSeed = 9;

  IndexFixture()
      : peers(qos::ResourceSchema::paper(),
              net::ProbeClock(SimTime::seconds(30))),
        net(kSeed, net::ProbeClock(SimTime::seconds(30))),
        ring(kSeed, 3) {}

  void SetUp() override {
    for (net::PeerId p = 0; p < 64; ++p) {
      const double cpu = 100 + 14.0 * p;
      peers.add_peer(qos::ResourceVector{cpu, cpu},
                     SimTime::minutes(-static_cast<double>(p)));
      ring.join(p);
    }
    ring.stabilize_all();
    s0 = catalog.add_service("svc");
  }

  registry::InstanceId add_instance(double level,
                                    std::vector<net::PeerId> providers) {
    registry::ServiceInstance inst;
    inst.service = s0;
    inst.qout.set(kLevel, qos::QosValue::range(level, level + 5));
    inst.resources = qos::ResourceVector{10, 10};
    inst.bandwidth_kbps = 100;
    const auto id = catalog.add_instance(inst);
    for (const auto p : providers) placement.add_provider(id, p);
    return id;
  }

  AttributeIndex make_index(IndexConfig config = {}) {
    return AttributeIndex(kSeed, ring, catalog, placement, peers, net,
                          kLevel, config);
  }

  /// Brute force over the published records — what the scan + exact
  /// re-check must reproduce. Mirrors the publish-time snapshot: capacity,
  /// uptime at `published_at`, access tier, Qout level floor.
  std::vector<registry::InstanceId> oracle(const RangeQuery& q,
                                           SimTime published_at) const {
    std::set<registry::InstanceId> hit;
    for (registry::InstanceId i = 0;
         i < static_cast<registry::InstanceId>(catalog.instance_count());
         ++i) {
      if (catalog.instance(i).service != q.service) continue;
      const double level = catalog.instance(i).qout.get(kLevel)->lo();
      for (const auto p : placement.providers(i)) {
        if (!peers.alive(p)) continue;
        const auto peer = peers.peer(p);
        if (q.min_cpu && peer.capacity()[0] < *q.min_cpu) continue;
        if (q.max_tier && net.access_tier(p) > *q.max_tier) continue;
        if (q.min_uptime_min &&
            peer.uptime(published_at).as_minutes() < *q.min_uptime_min) {
          continue;
        }
        if (q.min_level && level < *q.min_level) continue;
        hit.insert(i);
        break;
      }
    }
    return {hit.begin(), hit.end()};
  }

  net::PeerTable peers;
  net::NetworkModel net;
  overlay::ChordRing ring;
  registry::ServiceCatalog catalog;
  registry::PlacementMap placement;
  registry::ServiceId s0 = 0;
};

TEST_F(IndexFixture, PublishMintsOnePostingPerAttributePerProvider) {
  const auto i0 = add_instance(50, {3, 7, 11});
  auto index = make_index();
  index.publish(i0, SimTime::minutes(10));

  EXPECT_EQ(index.stats().publishes, 3u);
  EXPECT_EQ(index.postings(), 3u);
  for (const net::PeerId p : {3, 7, 11}) {
    const Posting posting = pack_posting(i0, static_cast<net::PeerId>(p));
    const auto peer = peers.peer(static_cast<net::PeerId>(p));
    const overlay::Key cpu_key =
        index_key(kSeed, Attribute::kCpu, s0, cpu_bucket(peer.capacity()[0]));
    const auto at_cpu = ring.get(cpu_key);
    EXPECT_TRUE(std::find(at_cpu.begin(), at_cpu.end(), posting) !=
                at_cpu.end());
    const overlay::Key level_key =
        index_key(kSeed, Attribute::kLevel, s0, level_bucket(50));
    const auto at_level = ring.get(level_key);
    EXPECT_TRUE(std::find(at_level.begin(), at_level.end(), posting) !=
                at_level.end());
  }
}

TEST_F(IndexFixture, RepublishReBucketsDriftedValuesOnce) {
  add_instance(50, {5});
  auto index = make_index();

  // At t=2min peer 5 has 7 minutes of uptime (bucket 3); at t=60min it has
  // 65 (bucket 6) — the posting must move arcs exactly once.
  index.publish_all(SimTime::minutes(2));
  EXPECT_EQ(index.stats().publishes, 1u);
  const overlay::Key old_key =
      index_key(kSeed, Attribute::kUptime, s0, uptime_bucket(SimTime::minutes(7)));
  EXPECT_EQ(ring.get(old_key).size(), 1u);

  index.publish_all(SimTime::minutes(60));
  EXPECT_EQ(index.stats().updates, 1u);
  EXPECT_EQ(index.postings(), 1u);  // moved, not duplicated
  EXPECT_TRUE(ring.get(old_key).empty());
  const overlay::Key new_key =
      index_key(kSeed, Attribute::kUptime, s0, uptime_bucket(SimTime::minutes(65)));
  EXPECT_EQ(ring.get(new_key).size(), 1u);
}

TEST_F(IndexFixture, UnpublishAndRemoveEraseEagerly) {
  const auto i0 = add_instance(50, {3, 7});
  const auto i1 = add_instance(60, {7});
  auto index = make_index();
  index.publish_all(SimTime::minutes(1));
  ASSERT_EQ(index.postings(), 3u);

  // Replica retirement: one (instance, provider) posting, nothing else.
  index.remove(i0, 7);
  EXPECT_EQ(index.postings(), 2u);
  std::vector<registry::InstanceId> out;
  RangeQuery q;
  q.service = s0;
  (void)index.query_into(q, 0, nullptr, out);
  EXPECT_EQ(out, (std::vector<registry::InstanceId>{i0, i1}));

  index.unpublish(i0);
  EXPECT_EQ(index.postings(), 1u);
  (void)index.query_into(q, 0, nullptr, out);
  EXPECT_EQ(out, (std::vector<registry::InstanceId>{i1}));
}

TEST_F(IndexFixture, DepartedProvidersAgeOutAfterExpiryEpochs) {
  const auto i0 = add_instance(50, {3, 7});
  auto index = make_index(IndexConfig{2});
  index.publish_all(SimTime::minutes(1));
  ASSERT_EQ(index.postings(), 2u);

  // Peer 7 departs. Its placement row would be pruned by the grid; here we
  // only kill liveness — publish must skip it either way.
  peers.remove_peer(7, SimTime::minutes(2));

  // One missed refresh: within expiry_epochs, the posting lingers (and a
  // query still returns it, counted stale — the soft-state window).
  index.publish_all(SimTime::minutes(3));
  EXPECT_EQ(index.postings(), 2u);
  std::vector<registry::InstanceId> out;
  RangeQuery q;
  q.service = s0;
  const auto qs = index.query_into(q, 0, nullptr, out);
  EXPECT_EQ(out, (std::vector<registry::InstanceId>{i0}));
  EXPECT_EQ(qs.stale, 1);

  // Second missed refresh reaches the expiry horizon: swept.
  index.publish_all(SimTime::minutes(5));
  EXPECT_EQ(index.postings(), 1u);
  EXPECT_EQ(index.stats().expiries, 1u);
  const auto qs2 = index.query_into(q, 0, nullptr, out);
  EXPECT_EQ(out, (std::vector<registry::InstanceId>{i0}));
  EXPECT_EQ(qs2.stale, 0);
}

// ------------------------------------------------- query vs. brute force

TEST_F(IndexFixture, RangeQueriesMatchTheBruteForceOracle) {
  // A populated world: 10 instances, each hosted by a pseudo-random subset
  // of the 64 peers, levels spread over [10, 95].
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    std::vector<net::PeerId> providers;
    for (net::PeerId p = 0; p < 64; ++p) {
      if (rng.uniform() < 0.25) providers.push_back(p);
    }
    if (providers.empty()) providers.push_back(static_cast<net::PeerId>(i));
    add_instance(10 + 85.0 * rng.uniform(), std::move(providers));
  }
  auto index = make_index();
  const auto published_at = SimTime::minutes(30);
  index.publish_all(published_at);

  // Sweep single- and multi-attribute predicate combinations, including
  // thresholds off bucket boundaries (false positives) and unsatisfiable
  // floors (empty answers).
  std::vector<RangeQuery> queries;
  for (const double cpu : {0.0, 137.0, 400.0, 811.0, 2000.0}) {
    for (const double level : {0.0, 33.3, 62.0, 99.0}) {
      RangeQuery q;
      q.service = s0;
      if (cpu > 0) q.min_cpu = cpu;
      if (level > 0) q.min_level = level;
      queries.push_back(q);
    }
  }
  for (const int tier : {0, 1, 2}) {
    RangeQuery q;
    q.service = s0;
    q.max_tier = tier;
    q.min_uptime_min = 17;
    queries.push_back(q);
    q.min_cpu = 300;
    q.min_level = 40;
    queries.push_back(q);
  }

  std::uint64_t total_false_positives = 0;
  for (const auto& q : queries) {
    std::vector<registry::InstanceId> out;
    const auto qs = index.query_into(q, 19, nullptr, out);
    EXPECT_FALSE(qs.failed);
    EXPECT_EQ(out, oracle(q, published_at));
    EXPECT_GE(qs.scanned, static_cast<int>(out.size()));
    total_false_positives += static_cast<std::uint64_t>(qs.false_positives);
  }
  // Off-boundary thresholds must have produced (and dropped) some
  // quantization false positives — otherwise the re-check is vacuous.
  EXPECT_GT(total_false_positives, 0u);
  EXPECT_EQ(index.stats().false_positives, total_false_positives);
}

TEST_F(IndexFixture, ScanCostIsLogNPlusSpanNotPerBucketLookups) {
  const auto i0 = add_instance(50, {3, 7, 11, 13});
  (void)i0;
  auto index = make_index();
  index.publish_all(SimTime::minutes(1));

  // A one-bucket scan pays the O(log N) routing leg once.
  RangeQuery narrow;
  narrow.service = s0;
  narrow.min_level = 50;  // level 50 -> bucket 32; span [32, 63]
  std::vector<registry::InstanceId> out;
  const auto qs_narrow = index.query_into(narrow, 40, nullptr, out);

  // The full-arc membership scan routes 64 segments but walks on-arc:
  // consecutive bucket keys land on the same or adjacent owners, so the
  // total stays a small constant per segment on top of the first leg —
  // nowhere near 64 independent O(log N) lookups.
  RangeQuery membership;
  membership.service = s0;
  const auto qs_full = index.query_into(membership, 40, nullptr, out);
  EXPECT_EQ(qs_full.segments, kBuckets);
  const double log_n = std::log2(64.0);
  EXPECT_LT(qs_full.hops, 2 * log_n + 2.0 * kBuckets);
  EXPECT_LT(qs_full.hops - qs_narrow.hops, 2.0 * kBuckets);
}

// ------------------------------------------- fault injection (satellite 3)

TEST_F(IndexFixture, MidScanLossReroutesOrFailsNeverTruncates) {
  util::Rng rng(13);
  for (int i = 0; i < 6; ++i) {
    std::vector<net::PeerId> providers;
    for (net::PeerId p = 0; p < 64; ++p) {
      if (rng.uniform() < 0.3) providers.push_back(p);
    }
    if (providers.empty()) providers.push_back(static_cast<net::PeerId>(i));
    add_instance(10 + 85.0 * rng.uniform(), std::move(providers));
  }
  auto index = make_index();
  const auto published_at = SimTime::minutes(30);
  index.publish_all(published_at);

  RangeQuery q;
  q.service = s0;
  q.min_level = 20;
  const auto expected = oracle(q, published_at);
  ASSERT_FALSE(expected.empty());

  // No per-send retries and heavy loss: each hop message survives with
  // probability 0.65 and the overlay's own alternate-neighbor reroute is
  // the only internal recovery, so segment losses actually reach the
  // index's requester-side reroute (and some exhaust it).
  fault::FaultConfig fc;
  fc.lookup_loss = 0.35;
  fc.max_retries = 0;
  const fault::FaultPlan plan(kSeed, fc);
  ring.set_faults(&plan);

  // Drive the same scan from every peer. The invariant: a non-failed query
  // returns the complete oracle answer (a lost segment was rerouted), a
  // failed query returns nothing — never a truncated posting set passed
  // off as complete.
  int failed = 0, rerouted_ok = 0;
  for (net::PeerId from = 0; from < 64; ++from) {
    std::vector<registry::InstanceId> out;
    const auto qs = index.query_into(q, from, nullptr, out);
    if (qs.failed) {
      ++failed;
      EXPECT_TRUE(out.empty());
    } else {
      EXPECT_EQ(out, expected);
      if (qs.rerouted > 0) ++rerouted_ok;
    }
  }
  ring.set_faults(nullptr);

  // At 35% hop loss over the scanned span, all three outcomes must occur:
  // clean scans, scans saved by the requester-side reroute, and scans lost
  // even after it.
  EXPECT_GT(failed, 0);
  EXPECT_GT(rerouted_ok, 0);
  EXPECT_LT(failed, 64);
  EXPECT_EQ(index.stats().failed_scans, static_cast<std::uint64_t>(failed));
  EXPECT_GT(index.stats().scan_reroutes, 0u);
}

// --------------------------------------------------- grid-level seam

harness::GridConfig dht_config(harness::OverlayKind overlay) {
  harness::GridConfig c;
  c.seed = 11;
  c.peers = 300;
  c.min_providers = 15;
  c.max_providers = 30;
  c.apps.applications = 6;
  c.requests.rate_per_min = 20;
  c.horizon = sim::SimTime::minutes(15);
  c.sample_period = sim::SimTime::minutes(2);
  c.overlay = overlay;
  c.discovery = harness::DiscoveryKind::kDht;
  c.churn.events_per_min = 4;
  c.faults.lookup_loss = 0.02;
  return c;
}

TEST(IndexGrid, DhtDiscoveryIsDeterministicUnderChurnOnAllOverlays) {
  for (const auto overlay :
       {harness::OverlayKind::kChord, harness::OverlayKind::kCan,
        harness::OverlayKind::kPastry}) {
    auto run_once = [overlay] {
      harness::GridSimulation grid(dht_config(overlay));
      return grid.run();
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_GT(a.requests, 100u);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.lookup_hops, b.lookup_hops);
    EXPECT_EQ(a.setup_latency_ms, b.setup_latency_ms);
    EXPECT_EQ(a.churn_departures, b.churn_departures);
    EXPECT_EQ(a.counters.all(), b.counters.all());
    // The index answered every tier-1a lookup and the run stayed healthy.
    EXPECT_GT(a.counters.get("index.scans"), 0u);
    EXPECT_GT(a.success_ratio(), 0.3)
        << "overlay " << harness::to_string(overlay);
  }
}

TEST(IndexGrid, IndexCountersAppearOnlyWhenBackendEnabled) {
  auto cfg = dht_config(harness::OverlayKind::kChord);
  cfg.discovery = harness::DiscoveryKind::kDirectory;
  harness::GridSimulation directory_grid(cfg);
  const auto directory_run = directory_grid.run();
  for (const auto& [name, value] : directory_run.counters.all()) {
    EXPECT_NE(name.substr(0, 6), "index.") << name;
  }

  cfg.discovery = harness::DiscoveryKind::kDht;
  harness::GridSimulation dht_grid(cfg);
  const auto dht_run = dht_grid.run();
  EXPECT_GT(dht_run.counters.get("index.publishes"), 0u);
  EXPECT_GT(dht_run.counters.get("index.scans"), 0u);
  EXPECT_GT(dht_run.counters.get("index.scan_hops"), 0u);
}

}  // namespace
}  // namespace qsa::index
