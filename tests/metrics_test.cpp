#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "qsa/metrics/counters.hpp"
#include "qsa/metrics/stats.hpp"
#include "qsa/metrics/table.hpp"
#include "qsa/metrics/timeseries.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::metrics {
namespace {

// ------------------------------------------------------------- Counters

TEST(Counters, AddAndGet) {
  Counters c;
  EXPECT_EQ(c.get("x"), 0u);
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
}

TEST(Counters, IterationIsNameOrdered) {
  Counters c;
  c.add("zebra");
  c.add("alpha");
  c.add("mid");
  std::vector<std::string> names;
  for (const auto& [name, value] : c.all()) names.emplace_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zebra"}));
}

TEST(Counters, Clear) {
  Counters c;
  c.add("x");
  c.clear();
  EXPECT_EQ(c.get("x"), 0u);
  EXPECT_TRUE(c.all().empty());
}

// -------------------------------------------------------------- Summary

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7, 1e-12);  // sample variance
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0);
  EXPECT_DOUBLE_EQ(s.variance(), 0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0);
}

TEST(Summary, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0);
}

TEST(Summary, MergeMatchesBatch) {
  util::Rng rng(3);
  Summary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, b;
  a.add(1);
  a.add(3);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// ------------------------------------------------------------ percentile

TEST(Percentile, ExactOrderStatistics) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 20);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, SingletonAndUnsorted) {
  EXPECT_DOUBLE_EQ(percentile({42}, 99), 42);
  EXPECT_DOUBLE_EQ(percentile({30, 10, 20}, 50), 20);
}

// ------------------------------------------------------------ TimeSeries

TEST(TimeSeries, RecordsInOrder) {
  TimeSeries ts;
  ts.record(sim::SimTime::minutes(2), 0.9);
  ts.record(sim::SimTime::minutes(4), 0.8);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.samples()[0].time, sim::SimTime::minutes(2));
  EXPECT_DOUBLE_EQ(ts.samples()[1].value, 0.8);
  EXPECT_NEAR(ts.mean(), 0.85, 1e-12);
}

TEST(TimeSeries, EmptyMeanIsZero) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.mean(), 0);
}

TEST(RatioSampler, WindowRatios) {
  RatioSampler rs;
  TimeSeries ts;
  rs.success();
  rs.success();
  rs.failure();
  rs.flush(ts, sim::SimTime::minutes(2));
  rs.success();
  rs.flush(ts, sim::SimTime::minutes(4));
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_NEAR(ts.samples()[0].value, 2.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(ts.samples()[1].value, 1.0);
}

TEST(RatioSampler, FlushResetsWindow) {
  RatioSampler rs;
  TimeSeries ts;
  rs.failure();
  rs.flush(ts, sim::SimTime::minutes(2));
  EXPECT_EQ(rs.window_attempts(), 0u);
}

TEST(RatioSampler, IdleWindowsSkippedByDefault) {
  RatioSampler rs;
  TimeSeries ts;
  rs.flush(ts, sim::SimTime::minutes(2));
  EXPECT_TRUE(ts.empty());
  rs.flush(ts, sim::SimTime::minutes(4), /*skip_idle=*/false, 0.5);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.samples()[0].value, 0.5);
}

// ----------------------------------------------------------------- Table

TEST(Table, AlignedOutput) {
  Table t({"rate", "psi"});
  t.add_row({"100", "0.95"});
  t.add_row({"1000", "0.41"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("rate"), std::string::npos);
  EXPECT_NE(s.find("0.41"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Columns align: every line has the same position for the second column.
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(0.5), "0.500");
}

TEST(TableDeath, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "precondition");
}

}  // namespace
}  // namespace qsa::metrics
