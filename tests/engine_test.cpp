// The sim-free serving facade (qsa::engine): parity between the
// simulator-driven adapter and a standalone engine over the same world,
// determinism of the batched shard loop, and the ManualClock / discovery-
// cache TTL seam.
#include <gtest/gtest.h>

#include <memory>
#include <type_traits>
#include <vector>

#include "qsa/engine/clock.hpp"
#include "qsa/engine/engine.hpp"
#include "qsa/engine/serve.hpp"
#include "qsa/harness/config.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/probe/resolution.hpp"
#include "qsa/registry/directory.hpp"
#include "qsa/util/rng.hpp"
#include "qsa/workload/apps.hpp"

namespace qsa::engine {
namespace {

using sim::SimTime;

harness::GridConfig small_config(std::uint64_t seed) {
  harness::GridConfig c;
  c.seed = seed;
  c.peers = 200;
  c.min_providers = 10;
  c.max_providers = 20;
  c.apps.applications = 5;
  return c;
}

/// The bench's request-pool recipe: the simulator workload's fire() shape
/// (app, QoS level, requester, duration) on an independent RNG stream.
std::vector<core::ServiceRequest> make_pool(harness::GridSimulation& grid,
                                            std::uint64_t seed,
                                            std::size_t shard,
                                            std::size_t count) {
  util::Rng rng(util::derive_seed(seed, "serve-requests", shard));
  const auto& alive = grid.peers().alive_ids();
  const auto apps = grid.apps().apps();
  std::vector<core::ServiceRequest> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const workload::Application& app = apps[rng.index(apps.size())];
    const auto level = static_cast<workload::QosLevel>(rng.index(3));
    core::ServiceRequest req;
    req.requester = alive[rng.index(alive.size())];
    req.abstract_path = app.path;
    req.requirement = workload::requirement_for(level, grid.universe());
    req.session_duration = SimTime::minutes(rng.uniform(1.0, 60.0));
    pool.push_back(std::move(req));
  }
  return pool;
}

/// A standalone serving shard over a grid's shared world: its own directory
/// view (keys seeded with the grid's "directory" label so they match what
/// bootstrap published into the ring), neighbor tables, ManualClock, and
/// engine.
struct Shard {
  Shard(harness::GridSimulation& grid, const EngineConfig& ec)
      : directory(util::derive_seed(grid.config().seed, "directory", 0),
                  grid.ring(), grid.catalog()),
        neighbors(grid.config().probe_budget, grid.config().neighbor_ttl) {
    EngineDeps deps;
    deps.catalog = &grid.catalog();
    deps.placement = &grid.placement();
    deps.directory = &directory;
    deps.peers = &grid.peers();
    deps.net = &grid.network();
    deps.neighbors = &neighbors;
    deps.clock = &clock;
    engine = std::make_unique<ServingEngine>(ec, deps);
  }

  registry::ServiceDirectory directory;
  probe::NeighborResolution neighbors;
  ManualClock clock;
  std::unique_ptr<ServingEngine> engine;
};

/// Mirrors the grid's EngineConfig so a standalone engine replays the
/// adapter's exact algorithm stream.
EngineConfig grid_engine_config(const harness::GridConfig& cfg) {
  EngineConfig ec;
  ec.seed = cfg.seed;
  ec.algorithm = cfg.algorithm;
  ec.qsa_options = cfg.qsa_options;
  ec.bandwidth_weight = cfg.bandwidth_weight;
  ec.compose_caches = cfg.compose_caches;
  ec.discovery_cache_ttl = cfg.discovery_cache_ttl;
  return ec;
}

void expect_plans_equal(const core::AggregationPlan& a,
                        const core::AggregationPlan& b) {
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.instances, b.instances);
  EXPECT_EQ(a.hosts, b.hosts);
  EXPECT_DOUBLE_EQ(a.composition_cost, b.composition_cost);
  EXPECT_EQ(a.lookup_hops, b.lookup_hops);
  EXPECT_EQ(a.setup_latency, b.setup_latency);
  EXPECT_EQ(a.random_fallback_hops, b.random_fallback_hops);
}

void expect_stats_equal(const ServeStats& a, const ServeStats& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.fail_discovery, b.fail_discovery);
  EXPECT_EQ(a.fail_composition, b.fail_composition);
  EXPECT_EQ(a.fail_selection, b.fail_selection);
  EXPECT_EQ(a.lookup_hops, b.lookup_hops);
  EXPECT_EQ(a.random_fallback_hops, b.random_fallback_hops);
}

// ------------------------------------------------------- sim/engine parity

TEST(ServingEngine, StandaloneServeMatchesSimAdapter) {
  // Two identically-seeded grids build byte-identical worlds. Routing one
  // request stream through grid A's simulator adapter (submit_request) and
  // the same stream through a standalone engine over grid B's world must
  // produce field-identical plans: the facade has no hidden dependence on
  // the simulator.
  const auto cfg = small_config(7);
  harness::GridSimulation grid_a(cfg);
  harness::GridSimulation grid_b(cfg);
  Shard shard(grid_b, grid_engine_config(cfg));

  const auto pool = make_pool(grid_a, cfg.seed, 0, 64);
  int succeeded = 0;
  for (const auto& req : pool) {
    const auto sim_plan = grid_a.submit_request(req);
    const auto eng_plan = shard.engine->serve(req);
    expect_plans_equal(sim_plan, eng_plan);
    succeeded += sim_plan.ok();
  }
  EXPECT_GT(succeeded, 0) << "parity over failures only is vacuous";
}

TEST(ServingEngine, ServeIntoMatchesServeAndReusesBuffers) {
  const auto cfg = small_config(11);
  harness::GridSimulation grid(cfg);
  Shard a(grid, grid_engine_config(cfg));
  Shard b(grid, grid_engine_config(cfg));

  core::AggregationPlan reused;
  for (const auto& req : make_pool(grid, cfg.seed, 0, 32)) {
    const auto fresh = a.engine->serve(req);
    b.engine->serve_into(req, reused);  // one plan object across all calls
    expect_plans_equal(fresh, reused);
  }
}

// --------------------------------------------------------- shard loop

TEST(ServeLoop, ShardLoopIsDeterministic) {
  const auto cfg = small_config(13);
  harness::GridSimulation grid(cfg);

  const auto run = [&]() {
    Shard shard(grid, grid_engine_config(cfg));
    const auto pool = make_pool(grid, cfg.seed, 0, 64);
    ShardLoop loop;
    loop.engine = shard.engine.get();
    loop.clock = &shard.clock;
    loop.pool = pool;
    loop.warmup = 32;
    loop.requests = 256;
    loop.batch = 16;
    loop.tick = SimTime::seconds(1);
    return serve_shard(loop);
  };

  const ServeStats first = run();
  const ServeStats second = run();
  EXPECT_EQ(first.requests, 256u);
  expect_stats_equal(first, second);
}

TEST(ServeLoop, SingleShardParallelMatchesSerial) {
  const auto cfg = small_config(17);
  harness::GridSimulation grid(cfg);
  Shard serial(grid, grid_engine_config(cfg));
  Shard threaded(grid, grid_engine_config(cfg));
  const auto pool = make_pool(grid, cfg.seed, 0, 64);

  const auto make_loop = [&](Shard& shard) {
    ShardLoop loop;
    loop.engine = shard.engine.get();
    loop.clock = &shard.clock;
    loop.pool = pool;
    loop.warmup = 16;
    loop.requests = 128;
    loop.batch = 8;
    return loop;
  };

  const ServeStats direct = serve_shard(make_loop(serial));
  const ShardLoop loops[] = {make_loop(threaded)};
  int steady_calls = 0;
  const ServeStats parallel =
      serve_parallel(loops, [&]() noexcept { ++steady_calls; });
  EXPECT_EQ(steady_calls, 1);
  expect_stats_equal(direct, parallel);
}

TEST(ServeStats, CountClassifiesAndMergeAdds) {
  core::AggregationPlan plan;
  plan.lookup_hops = 3;
  plan.random_fallback_hops = 1;
  ServeStats s;
  s.count(plan);  // kNone
  plan.failure = core::FailureCause::kDiscovery;
  s.count(plan);
  plan.failure = core::FailureCause::kComposition;
  s.count(plan);
  plan.failure = core::FailureCause::kSelection;
  s.count(plan);
  EXPECT_EQ(s.requests, 4u);
  EXPECT_EQ(s.ok, 1u);
  EXPECT_EQ(s.fail_discovery, 1u);
  EXPECT_EQ(s.fail_composition, 1u);
  EXPECT_EQ(s.fail_selection, 1u);
  EXPECT_EQ(s.lookup_hops, 12u);
  EXPECT_EQ(s.random_fallback_hops, 4u);
  EXPECT_DOUBLE_EQ(s.success_ratio(), 0.25);

  ServeStats merged = s;
  merged.merge(s);
  EXPECT_EQ(merged.requests, 8u);
  EXPECT_EQ(merged.ok, 2u);
  EXPECT_EQ(merged.lookup_hops, 24u);
}

// ------------------------------------------------- ManualClock / TTL seam

TEST(ManualClock, StartsAtZeroAndAdvances) {
  ManualClock clock;
  EXPECT_EQ(clock.now(), SimTime::zero());
  clock.advance(SimTime::seconds(5));
  EXPECT_EQ(clock.now(), SimTime::seconds(5));
  clock.set(SimTime::minutes(1));
  EXPECT_EQ(clock.now(), SimTime::minutes(1));
  clock.advance(SimTime::zero());  // zero advance is a no-op, not an error
  EXPECT_EQ(clock.now(), SimTime::minutes(1));
}

TEST(ServingEngine, ManualClockExpiresDiscoveryCache) {
  const auto cfg = small_config(19);
  harness::GridSimulation grid(cfg);
  auto ec = grid_engine_config(cfg);
  ec.discovery_cache_ttl = SimTime::minutes(5);
  Shard shard(grid, ec);

  // Find a request whose discovery actually routes the ring (and succeeds
  // end to end, so every layer of the path got cached).
  const auto pool = make_pool(grid, cfg.seed, 0, 64);
  const core::ServiceRequest* req = nullptr;
  core::AggregationPlan first;
  for (const auto& candidate : pool) {
    first = shard.engine->serve(candidate);
    if (first.ok() && first.lookup_hops > 0) {
      req = &candidate;
      break;
    }
  }
  ASSERT_NE(req, nullptr) << "no request exercised ring routing";

  // Within the TTL every lookup is a cache hit: zero ring hops.
  const auto cached = shard.engine->serve(*req);
  EXPECT_EQ(cached.lookup_hops, 0);
  EXPECT_EQ(cached.failure, first.failure);

  // Past the TTL the engine's clock drives expiry and the ring is routed
  // again.
  shard.clock.advance(SimTime::minutes(6));
  const auto expired = shard.engine->serve(*req);
  EXPECT_GT(expired.lookup_hops, 0);
}

// ------------------------------------------------------------- surface

TEST(EngineSurface, HarnessAliasesEngineAlgorithmKind) {
  static_assert(
      std::is_same_v<harness::AlgorithmKind, AlgorithmKind>,
      "the harness must reuse the engine's enum, not mirror it");
  EXPECT_EQ(to_string(AlgorithmKind::kQsa), "qsa");
  EXPECT_EQ(to_string(AlgorithmKind::kRandom), "random");
  EXPECT_EQ(to_string(AlgorithmKind::kFixed), "fixed");
}

TEST(EngineSurface, ComposeCacheFollowsConfig) {
  const auto cfg = small_config(23);
  harness::GridSimulation grid(cfg);

  auto ec = grid_engine_config(cfg);
  Shard with_cache(grid, ec);
  EXPECT_NE(with_cache.engine->compose_cache(), nullptr);

  ec.compose_caches = false;
  Shard without_cache(grid, ec);
  EXPECT_EQ(without_cache.engine->compose_cache(), nullptr);
}

}  // namespace
}  // namespace qsa::engine
