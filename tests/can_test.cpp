// CAN overlay: zone tiling, greedy routing, takeover, data survival, and
// parity with the LookupService contract the directory depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "qsa/overlay/can_overlay.hpp"
#include "qsa/overlay/chord_id.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::overlay {
namespace {

CanOverlay make_can(std::size_t nodes, std::uint64_t seed = 1,
                    int replicas = 2) {
  CanOverlay can(seed, replicas);
  for (net::PeerId p = 0; p < nodes; ++p) can.join(p);
  return can;
}

TEST(TorusDist, WrapsAroundSeam) {
  EXPECT_DOUBLE_EQ(torus_dist(0.1, 0.3), 0.2);
  EXPECT_NEAR(torus_dist(0.05, 0.95), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(torus_dist(0.0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(torus_dist(0.7, 0.7), 0.0);
}

TEST(CanPointHash, DeterministicAndSpread) {
  const auto a = can_point(1, 42);
  EXPECT_EQ(a, can_point(1, 42));
  const auto b = can_point(1, 43);
  EXPECT_NE(a, b);
  for (double x : a) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(CanOverlay, SingleNodeOwnsWholeTorus) {
  auto can = make_can(1);
  EXPECT_EQ(can.size(), 1u);
  const auto zone = can.zone_of(0);
  EXPECT_DOUBLE_EQ(zone.volume(), 1.0);
  EXPECT_EQ(can.owner_of(12345), 0u);
  const auto stats = can.route(999, 0);
  EXPECT_EQ(stats.owner, 0u);
  EXPECT_EQ(stats.hops, 0);
}

TEST(CanOverlay, ZonesAlwaysTileTheTorus) {
  CanOverlay can(7);
  for (net::PeerId p = 0; p < 64; ++p) {
    can.join(p);
    EXPECT_NEAR(can.total_leaf_volume(), 1.0, 1e-12) << "after join " << p;
  }
  for (net::PeerId p = 0; p < 32; ++p) {
    can.leave(p);
    EXPECT_NEAR(can.total_leaf_volume(), 1.0, 1e-12) << "after leave " << p;
  }
}

TEST(CanOverlay, ZonesAreDisjoint) {
  auto can = make_can(40);
  util::Rng rng(5);
  // Every random point lies in exactly one peer's zone.
  for (int i = 0; i < 300; ++i) {
    CanPoint p{rng.uniform(), rng.uniform()};
    int owners = 0;
    for (net::PeerId peer = 0; peer < 40; ++peer) {
      owners += can.zone_of(peer).contains(p);
    }
    EXPECT_EQ(owners, 1);
  }
}

TEST(CanOverlay, RouteFindsOwner) {
  auto can = make_can(64);
  util::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Key key = rng();
    const net::PeerId oracle = can.owner_of(key);
    for (net::PeerId from : {net::PeerId{0}, net::PeerId{17}, net::PeerId{63}}) {
      const auto stats = can.route(key, from);
      EXPECT_EQ(stats.owner, oracle) << "key=" << key << " from=" << from;
    }
  }
}

TEST(CanOverlay, RouteHopsGrowAsSqrtN) {
  util::Rng rng(10);
  double avg_small = 0, avg_large = 0;
  {
    auto can = make_can(64);
    for (int i = 0; i < 400; ++i) {
      avg_small += can.route(rng(), static_cast<net::PeerId>(rng.index(64))).hops;
    }
    avg_small /= 400;
  }
  {
    auto can = make_can(1024);
    for (int i = 0; i < 400; ++i) {
      avg_large +=
          can.route(rng(), static_cast<net::PeerId>(rng.index(1024))).hops;
    }
    avg_large /= 400;
  }
  // d=2: expected ~ sqrt(n)/2-ish; 16x more nodes ~ 4x more hops.
  EXPECT_GT(avg_large, 1.5 * avg_small);
  EXPECT_LT(avg_large, 10 * avg_small);
  EXPECT_LT(avg_large, 2.5 * std::sqrt(1024.0));
}

TEST(CanOverlay, RouteAccumulatesLatency) {
  auto can = make_can(64);
  net::NetworkModel net(5, net::ProbeClock(sim::SimTime::seconds(30)));
  util::Rng rng(11);
  bool some = false;
  for (int i = 0; i < 50; ++i) {
    const auto stats = can.route(rng(), 3, &net);
    if (stats.hops > 0 && stats.latency > sim::SimTime::zero()) some = true;
  }
  EXPECT_TRUE(some);
}

TEST(CanOverlay, InsertGetErase) {
  auto can = make_can(32);
  const Key key = data_key(1, "svc");
  can.insert(key, 7);
  can.insert(key, 8);
  EXPECT_EQ(can.get(key), (std::vector<std::uint64_t>{7, 8}));
  can.erase(key, 7);
  EXPECT_EQ(can.get(key), (std::vector<std::uint64_t>{8}));
  can.erase(key, 8);
  EXPECT_TRUE(can.get(key).empty());
  EXPECT_TRUE(can.get(data_key(1, "missing")).empty());
}

TEST(CanOverlay, JoinMovesKeysWithZone) {
  CanOverlay can(3, 1);  // replicas=1 so ownership movement is observable
  for (net::PeerId p = 0; p < 8; ++p) can.join(p);
  util::Rng rng(16);
  std::vector<std::pair<Key, std::uint64_t>> data;
  for (int i = 0; i < 40; ++i) {
    data.emplace_back(rng(), static_cast<std::uint64_t>(i));
    can.insert(data.back().first, data.back().second);
  }
  for (net::PeerId p = 8; p < 40; ++p) can.join(p);
  for (const auto& [key, value] : data) {
    const auto values = can.get(key);
    EXPECT_TRUE(std::find(values.begin(), values.end(), value) != values.end())
        << "value lost after joins split zones";
  }
}

TEST(CanOverlay, GracefulLeavePreservesData) {
  auto can = make_can(32);
  util::Rng rng(12);
  std::vector<Key> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(rng());
    can.insert(keys.back(), static_cast<std::uint64_t>(i));
  }
  for (net::PeerId p = 0; p < 16; ++p) can.leave(p);
  for (int i = 0; i < 64; ++i) {
    const auto values = can.get(keys[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(std::find(values.begin(), values.end(),
                          static_cast<std::uint64_t>(i)) != values.end())
        << "key " << i << " lost after graceful leaves";
  }
}

TEST(CanOverlay, SingleFailureSurvivedByReplicas) {
  auto can = make_can(32, /*seed=*/2, /*replicas=*/3);
  util::Rng rng(13);
  std::vector<Key> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(rng());
    can.insert(keys.back(), static_cast<std::uint64_t>(i));
  }
  can.fail(7);
  for (int i = 0; i < 64; ++i) {
    const auto values = can.get(keys[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(std::find(values.begin(), values.end(),
                          static_cast<std::uint64_t>(i)) != values.end())
        << "key " << i << " lost after one abrupt failure";
  }
}

TEST(CanOverlay, LeaveUnknownPeerIsNoop) {
  auto can = make_can(4);
  can.leave(99);
  can.fail(99);
  EXPECT_EQ(can.size(), 4u);
}

TEST(CanOverlay, LastNodeLeavingEmptiesOverlay) {
  auto can = make_can(1);
  can.leave(0);
  EXPECT_EQ(can.size(), 0u);
  EXPECT_TRUE(can.get(42).empty());
  // A fresh join bootstraps again.
  can.join(5);
  EXPECT_EQ(can.owner_of(42), 5u);
}

// Property sweep mirroring the Chord churn property: random join/leave/fail
// sequences keep routing consistent with the oracle owner.
class CanChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanChurnProperty, RoutingStaysCorrectUnderChurn) {
  util::Rng rng(util::derive_seed(GetParam(), "can-churn", 0));
  CanOverlay can(GetParam(), 3);
  std::set<net::PeerId> members;
  net::PeerId next = 0;
  for (int i = 0; i < 40; ++i) {
    can.join(next);
    members.insert(next++);
  }
  for (int step = 0; step < 150; ++step) {
    const auto action = rng.index(3);
    if (action == 0 || members.size() < 8) {
      can.join(next);
      members.insert(next++);
    } else {
      auto it = members.begin();
      std::advance(it, static_cast<long>(rng.index(members.size())));
      if (action == 1) {
        can.leave(*it);
      } else {
        can.fail(*it);
      }
      members.erase(it);
    }
    EXPECT_NEAR(can.total_leaf_volume(), 1.0, 1e-9) << "step " << step;
    const Key key = rng();
    auto it = members.begin();
    std::advance(it, static_cast<long>(rng.index(members.size())));
    const auto stats = can.route(key, *it);
    EXPECT_EQ(stats.owner, can.owner_of(key)) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanChurnProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace qsa::overlay
