// Million-peer scale invariants (DESIGN.md §14): the long-horizon memory
// behaviour of the grid's per-peer and per-pair state, and the determinism
// pins that keep scale optimizations from drifting the churn RNG stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "qsa/harness/grid.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/sim/simulator.hpp"
#include "qsa/workload/churn.hpp"

namespace qsa {
namespace {

using sim::SimTime;

// ------------------------------------------------ churn RNG determinism

/// Runs a self-contained churn process over a 60-peer table (join times
/// spread so youngest-of-k has real choices) and returns the victim ids in
/// departure order.
std::vector<net::PeerId> victim_sequence() {
  sim::Simulator simulator;
  net::PeerTable peers(qos::ResourceSchema::paper(),
                       net::ProbeClock(SimTime::seconds(30)));
  for (int i = 0; i < 60; ++i) {
    peers.add_peer(qos::ResourceVector{500, 500}, SimTime::minutes(-10 * i));
  }
  workload::ChurnParams params;
  params.seed = 23;
  params.events_per_min = 6;
  std::vector<net::PeerId> victims;
  workload::ChurnProcess churn(
      simulator, peers, params,
      [&](net::PeerId p) {
        victims.push_back(p);
        peers.remove_peer(p, simulator.now());
      },
      [&] {
        peers.add_peer(qos::ResourceVector{500, 500}, simulator.now());
      });
  churn.start(SimTime::minutes(10));
  simulator.run_until(SimTime::minutes(10));
  return victims;
}

TEST(ChurnDeterminism, VictimStreamIsReproducible) {
  const auto first = victim_sequence();
  const auto second = victim_sequence();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ChurnDeterminism, VictimStreamMatchesGolden) {
  // Pins ChurnProcess::pick_victim's youngest-of-k RNG consumption: exactly
  // one index draw per sampled candidate, in order, off the "churn"-derived
  // stream. Any change to the sampling loop, the Rng draw sequence, or the
  // alive-list ordering shifts this sequence. Regenerate by printing
  // victim_sequence() — but treat a change as a finding, not noise: every
  // golden-digest cell with churn shifts with it.
  const std::vector<net::PeerId> kGolden = {
      12, 0,  1,  7,  4,  6,  8,  66, 16, 61, 67, 68, 70, 5,  73, 72, 60,
      71, 74, 78, 14, 69, 81, 82, 83, 18, 75, 80, 79, 62, 3,  10, 76, 19};
  EXPECT_EQ(victim_sequence(), kGolden);
}

// ----------------------------------------- long-horizon memory plateaus

struct Footprints {
  std::uint64_t requests = 0;
  std::uint64_t total_peers = 0;
  std::size_t alive = 0;
  std::size_t resident_slots = 0;
  std::uint64_t touched_pairs = 0;
  std::size_t active_pairs = 0;
};

Footprints run_churny_grid(double minutes) {
  harness::GridConfig cfg;
  cfg.seed = 17;
  cfg.peers = 800;
  cfg.requests.rate_per_min = 60;
  cfg.churn.events_per_min = 80;
  cfg.horizon = SimTime::minutes(minutes);
  harness::GridSimulation grid(cfg);
  // Floor 0: sweep settled ledger entries on every epoch advance, the
  // large-grid configuration.
  grid.network().set_evict_floor(0);
  const auto result = grid.run();
  Footprints f;
  f.requests = result.requests;
  f.total_peers = grid.peers().total_peers();
  f.alive = grid.peers().alive_count();
  f.resident_slots = grid.peers().resident_slots();
  f.touched_pairs = grid.network().touched_pairs();
  f.active_pairs = grid.network().active_pairs();
  return f;
}

TEST(ScaleInvariants, LedgerAndTableFootprintsPlateauUnderChurn) {
  // Doubling the horizon doubles history (requests served, peers ever
  // arrived, pairs ever reserved) but must NOT double the resident state:
  // the live ledger tracks concurrent sessions and the peer table tracks
  // the alive population plus one epoch of departures.
  const Footprints half = run_churny_grid(30);
  const Footprints full = run_churny_grid(60);

  // History really grew.
  EXPECT_GT(full.requests, half.requests * 3 / 2);
  EXPECT_GT(full.total_peers, half.total_peers + 500);
  EXPECT_GT(full.touched_pairs, half.touched_pairs * 3 / 2);

  // The live ledger plateaus below the monotone touched count (without
  // eviction the two are equal — every pair ever reserved stays resident)...
  EXPECT_LT(full.active_pairs, full.touched_pairs * 2 / 3);
  // ...and does not scale with run length.
  EXPECT_LT(full.active_pairs, half.active_pairs * 2 + 200);

  // Population stays near its initial size; the paged table's resident
  // footprint tracks it, not total arrivals.
  EXPECT_NEAR(static_cast<double>(full.alive), 800.0, 200.0);
  EXPECT_LE(full.resident_slots, half.resident_slots * 2);
}

}  // namespace
}  // namespace qsa
