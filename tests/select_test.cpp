// Dynamic peer selection: the Phi metric and the filter/fallback ladder.
#include <gtest/gtest.h>

#include <vector>

#include "qsa/core/select.hpp"

namespace qsa::core {
namespace {

using net::PeerId;
using net::ProbeClock;
using qos::ResourceVector;
using sim::SimTime;

registry::ServiceInstance make_instance(double cpu, double mem, double bw) {
  registry::ServiceInstance inst;
  inst.resources = ResourceVector{cpu, mem};
  inst.bandwidth_kbps = bw;
  return inst;
}

struct SelectFixture : ::testing::Test {
  // The fixture's selector puts all weight on end-system resources so the
  // tests control the ranking; bandwidth-weighted behaviour is covered by
  // PhiFormula/PhiWeights below.
  SelectFixture()
      : peers(qos::ResourceSchema::paper(), ProbeClock(SimTime::seconds(30))),
        net(1, ProbeClock(SimTime::seconds(30))),
        table(100),
        selector(qos::TupleWeights({0.5, 0.5}, 0.0),
                 qos::ResourceSchema::paper()),
        rng(7) {
    me = peers.add_peer(ResourceVector{500, 500}, SimTime::minutes(-100));
  }

  /// Adds a candidate peer with given capacity and age, optionally known to
  /// the selector's neighbor table.
  PeerId add_candidate(double capacity, double age_min, bool known = true) {
    const PeerId p = peers.add_peer(ResourceVector{capacity, capacity},
                                    SimTime::minutes(-age_min));
    if (known) {
      table.add(p, 1, probe::NeighborKind::kDirect, SimTime::zero(),
                SimTime::minutes(120));
    }
    return p;
  }

  HopSelection select(const registry::ServiceInstance& inst,
                      const std::vector<PeerId>& candidates,
                      SimTime duration = SimTime::minutes(10),
                      SimTime now = SimTime::zero()) {
    return selector.select_hop(peers, net, table, me, inst, candidates,
                               duration, now, rng);
  }

  net::PeerTable peers;
  net::NetworkModel net;
  probe::NeighborTable table;
  PeerSelector selector;
  util::Rng rng;
  PeerId me = 0;
};

// ------------------------------------------------------------------ Phi

TEST_F(SelectFixture, PhiFormula) {
  PeerSelector uniform(qos::TupleWeights::uniform(2),
                       qos::ResourceSchema::paper());
  const auto inst = make_instance(100, 50, 200);
  probe::PerfSnapshot snap;
  snap.alive = true;
  snap.available = ResourceVector{400, 200};
  snap.bandwidth_kbps = 1000;
  // Uniform weights: (1/3)*(400/100) + (1/3)*(200/50) + (1/3)*(1000/200).
  EXPECT_NEAR(uniform.phi(snap, inst),
              (400.0 / 100 + 200.0 / 50 + 1000.0 / 200) / 3, 1e-12);
}

TEST_F(SelectFixture, PhiGrowsWithHeadroom) {
  PeerSelector uniform(qos::TupleWeights::uniform(2),
                       qos::ResourceSchema::paper());
  const auto inst = make_instance(100, 100, 100);
  probe::PerfSnapshot lean, rich;
  lean.available = ResourceVector{150, 150};
  lean.bandwidth_kbps = 150;
  rich.available = ResourceVector{900, 900};
  rich.bandwidth_kbps = 5000;
  EXPECT_GT(uniform.phi(rich, inst), uniform.phi(lean, inst));
}

TEST(PhiWeights, CustomWeightsShiftRanking) {
  PeerSelector bw_focused(qos::TupleWeights({0.05, 0.05}, 0.9),
                          qos::ResourceSchema::paper());
  PeerSelector cpu_focused(qos::TupleWeights({0.9, 0.05}, 0.05),
                           qos::ResourceSchema::paper());
  const auto inst = make_instance(100, 100, 100);
  probe::PerfSnapshot big_cpu, big_bw;
  big_cpu.available = qos::ResourceVector{1000, 100};
  big_cpu.bandwidth_kbps = 100;
  big_bw.available = qos::ResourceVector{100, 100};
  big_bw.bandwidth_kbps = 10'000;
  EXPECT_GT(bw_focused.phi(big_bw, inst), bw_focused.phi(big_cpu, inst));
  EXPECT_GT(cpu_focused.phi(big_cpu, inst), cpu_focused.phi(big_bw, inst));
}

// ------------------------------------------------------------ selection

TEST_F(SelectFixture, PicksHighestPhi) {
  const auto inst = make_instance(50, 50, 50);
  const auto small = add_candidate(200, 100);
  const auto big = add_candidate(900, 100);
  const auto mid = add_candidate(500, 100);
  const auto sel = select(inst, {small, big, mid});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, big);
  EXPECT_FALSE(sel.random_fallback);
}

TEST_F(SelectFixture, UptimeFilterExcludesYoungPeers) {
  const auto inst = make_instance(50, 50, 50);
  const auto young_big = add_candidate(900, /*age=*/2);
  const auto old_small = add_candidate(300, /*age=*/60);
  const auto sel = select(inst, {young_big, old_small},
                          /*duration=*/SimTime::minutes(30));
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, old_small);  // the young peer fails the uptime match
}

TEST_F(SelectFixture, UptimeFilterRelaxedWhenNobodyQualifies) {
  const auto inst = make_instance(50, 50, 50);
  const auto young_a = add_candidate(900, 2);
  const auto young_b = add_candidate(300, 2);
  const auto sel = select(inst, {young_a, young_b},
                          /*duration=*/SimTime::minutes(30));
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, young_a);  // best effort: highest Phi among survivors
}

TEST_F(SelectFixture, ResourceFilterExcludesOverloaded) {
  const auto inst = make_instance(50, 50, 50);
  const auto busy = add_candidate(900, 100);
  const auto idle = add_candidate(200, 100);
  // Saturate `busy` in a *previous* epoch so probes see it.
  ASSERT_TRUE(peers.try_reserve(busy, ResourceVector{880, 880},
                                SimTime::minutes(-5)));
  const auto sel = select(inst, {busy, idle});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, idle);
}

TEST_F(SelectFixture, StaleProbeHidesFreshLoad) {
  const auto inst = make_instance(50, 50, 50);
  const auto busy = add_candidate(900, 100);
  const auto idle = add_candidate(200, 100);
  // Saturate `busy` within the *current* epoch: probers cannot see it yet,
  // so selection still prefers it (and admission would later fail) —
  // exactly the distributed-staleness behaviour the model is built around.
  ASSERT_TRUE(peers.try_reserve(busy, ResourceVector{880, 880},
                                SimTime::seconds(5)));
  const auto sel =
      select(inst, {busy, idle}, SimTime::minutes(10), SimTime::seconds(10));
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, busy);
}

TEST_F(SelectFixture, BandwidthFilterApplies) {
  const auto inst = make_instance(10, 10, 2000);  // needs 2 Mbps
  // Find candidates whose pair bandwidth to `me` differs.
  std::vector<PeerId> slow, fast;
  for (int i = 0; i < 200 && (slow.empty() || fast.empty()); ++i) {
    const PeerId p = add_candidate(900, 100);
    if (net.capacity_kbps(p, me) >= 2000) {
      if (fast.empty()) fast.push_back(p);
    } else if (slow.empty()) {
      slow.push_back(p);
    }
  }
  ASSERT_FALSE(slow.empty());
  ASSERT_FALSE(fast.empty());
  const auto sel = select(inst, {slow[0], fast[0]});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, fast[0]);
}

TEST_F(SelectFixture, DeadCandidatesSkippedAfterEpoch) {
  const auto inst = make_instance(50, 50, 50);
  const auto dead = add_candidate(900, 100);
  const auto alive = add_candidate(200, 100);
  peers.remove_peer(dead, SimTime::zero());
  const auto sel =
      select(inst, {dead, alive}, SimTime::minutes(10), SimTime::minutes(1));
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, alive);
}

TEST_F(SelectFixture, UnknownCandidatesUseRandomFallback) {
  const auto inst = make_instance(50, 50, 50);
  const auto u1 = add_candidate(500, 100, /*known=*/false);
  const auto u2 = add_candidate(500, 100, /*known=*/false);
  const auto sel = select(inst, {u1, u2});
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel.random_fallback);
  EXPECT_TRUE(sel.peer == u1 || sel.peer == u2);
}

TEST_F(SelectFixture, KnownQualifiedBeatsUnknown) {
  const auto inst = make_instance(50, 50, 50);
  const auto unknown = add_candidate(900, 100, /*known=*/false);
  const auto known = add_candidate(300, 100, /*known=*/true);
  const auto sel = select(inst, {unknown, known});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, known);
  EXPECT_FALSE(sel.random_fallback);
}

TEST_F(SelectFixture, FallsBackToUnknownWhenKnownUnqualified) {
  const auto inst = make_instance(50, 50, 50);
  const auto overloaded = add_candidate(100, 100, /*known=*/true);
  ASSERT_TRUE(peers.try_reserve(overloaded, ResourceVector{90, 90},
                                SimTime::minutes(-5)));
  const auto unknown = add_candidate(500, 100, /*known=*/false);
  const auto sel = select(inst, {overloaded, unknown});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, unknown);
  EXPECT_TRUE(sel.random_fallback);
}

TEST_F(SelectFixture, HopFailsWhenNothingWorkable) {
  const auto inst = make_instance(50, 50, 50);
  const auto overloaded = add_candidate(100, 100, /*known=*/true);
  ASSERT_TRUE(peers.try_reserve(overloaded, ResourceVector{90, 90},
                                SimTime::minutes(-5)));
  const auto sel = select(inst, {overloaded});
  EXPECT_FALSE(sel.ok());
}

TEST_F(SelectFixture, AblationDisablesUptimeFilter) {
  PeerSelector no_uptime(qos::TupleWeights({0.5, 0.5}, 0.0),
                         qos::ResourceSchema::paper(),
                         SelectorOptions{.use_uptime_filter = false});
  const auto inst = make_instance(50, 50, 50);
  const auto young_big = add_candidate(900, 2);
  const auto old_small = add_candidate(300, 60);
  const auto sel = no_uptime.select_hop(
      peers, net, table, me, inst, std::vector<PeerId>{young_big, old_small},
      SimTime::minutes(30), SimTime::zero(), rng);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, young_big);  // uptime ignored, Phi wins
}

TEST_F(SelectFixture, ReservoirAblationPickIsDeterministic) {
  // With Phi ranking ablated (use_phi_ranking=false) the selector
  // reservoir-samples a uniform survivor: the first qualified candidate is
  // taken without an RNG draw, and the k-th (k >= 2) replaces it when
  // rng.index(k) == 0. Pin the pick against a twin RNG replaying exactly
  // that draw pattern, so any change to the sampling scheme (or an extra
  // draw sneaking into the hot path) trips this test.
  PeerSelector sampler(qos::TupleWeights({0.5, 0.5}, 0.0),
                       qos::ResourceSchema::paper(),
                       SelectorOptions{.use_phi_ranking = false});
  const auto inst = make_instance(50, 50, 50);
  std::vector<PeerId> candidates;
  for (int i = 0; i < 8; ++i) candidates.push_back(add_candidate(900, 100));

  util::Rng twin(7);  // the fixture's rng seed, untouched so far
  PeerId expected = candidates[0];
  for (std::size_t k = 2; k <= candidates.size(); ++k) {
    if (twin.index(k) == 0) expected = candidates[k - 1];
  }

  const auto sel = sampler.select_hop(peers, net, table, me, inst, candidates,
                                      SimTime::minutes(10), SimTime::zero(),
                                      rng);
  ASSERT_TRUE(sel.ok());
  EXPECT_FALSE(sel.random_fallback);
  EXPECT_EQ(sel.peer, expected);
}

TEST_F(SelectFixture, RelaxedPassReplaysFilterOffRngStream) {
  // select_hop runs the qualification ladder as at most two passes over one
  // shared body (filter_pass): uptime filter on, then — only if that found
  // nobody AND the filter is enabled — a relaxed pass without it. With the
  // filter ablated there is exactly one pass, not a redundant second. Pin
  // the equivalence where it is observable: in reservoir mode the relaxed
  // pass must consume the *same* RNG draws as a filter-off single pass, so
  // identically-seeded RNGs pick the same peer and land in the same state.
  PeerSelector with_filter(qos::TupleWeights({0.5, 0.5}, 0.0),
                           qos::ResourceSchema::paper(),
                           SelectorOptions{.use_phi_ranking = false});
  PeerSelector no_filter(qos::TupleWeights({0.5, 0.5}, 0.0),
                         qos::ResourceSchema::paper(),
                         SelectorOptions{.use_uptime_filter = false,
                                         .use_phi_ranking = false});
  const auto inst = make_instance(50, 50, 50);
  // All candidates too young for a 30-minute session: the filtered pass
  // qualifies nobody (and draws nothing), forcing the relaxed pass.
  std::vector<PeerId> candidates;
  for (int i = 0; i < 8; ++i) candidates.push_back(add_candidate(900, 2));

  util::Rng filtered_rng(99), unfiltered_rng(99);
  const auto filtered = with_filter.select_hop(
      peers, net, table, me, inst, candidates, SimTime::minutes(30),
      SimTime::zero(), filtered_rng);
  const auto unfiltered = no_filter.select_hop(
      peers, net, table, me, inst, candidates, SimTime::minutes(30),
      SimTime::zero(), unfiltered_rng);
  ASSERT_TRUE(filtered.ok());
  ASSERT_TRUE(unfiltered.ok());
  EXPECT_EQ(filtered.peer, unfiltered.peer);
  // Same number of draws consumed: the streams stay in lockstep.
  EXPECT_EQ(filtered_rng.index(1'000'000), unfiltered_rng.index(1'000'000));
}

TEST_F(SelectFixture, ScratchReuseDoesNotLeakAcrossCalls) {
  // The selector keeps grow-only scratch (known/unknown partitions) across
  // calls; interleaving differently-sized candidate sets must not change
  // any later selection.
  const auto inst = make_instance(50, 50, 50);
  const auto big = add_candidate(900, 100);
  const auto mid = add_candidate(600, 100);
  const auto small = add_candidate(300, 100);
  const std::vector<PeerId> trio{big, mid, small};
  const auto first = select(inst, trio);
  ASSERT_TRUE(first.ok());

  // Dirty the scratch with a smaller set, then a larger one.
  (void)select(inst, {small});
  std::vector<PeerId> many = trio;
  for (int i = 0; i < 5; ++i) many.push_back(add_candidate(400, 100));
  (void)select(inst, many);

  const auto again = select(inst, trio);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.peer, first.peer);
}

TEST_F(SelectFixture, DeterministicTieBreakByPeerId) {
  const auto inst = make_instance(50, 50, 50);
  // Identical capacity and age; Phi differs only via pair bandwidth, so pick
  // two with equal bandwidth to force a tie.
  std::vector<PeerId> twins;
  PeerId first = add_candidate(400, 100);
  const double bw = net.capacity_kbps(first, me);
  twins.push_back(first);
  while (twins.size() < 2) {
    const PeerId p = add_candidate(400, 100);
    if (net.capacity_kbps(p, me) == bw) twins.push_back(p);
  }
  const auto sel = select(inst, twins);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.peer, std::min(twins[0], twins[1]));
}

}  // namespace
}  // namespace qsa::core
